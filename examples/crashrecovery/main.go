// Crash recovery: the paper's §5 future work, implemented — crash the
// provider in the middle of a run and verify, with the formal model,
// that persistent delivery survives. The stable store is a real
// write-ahead log on disk.
//
//	go run ./examples/crashrecovery
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"jmsharness/internal/broker"
	"jmsharness/internal/core"
	"jmsharness/internal/harness"
	"jmsharness/internal/jms"
	"jmsharness/internal/model"
	"jmsharness/internal/store"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	dir, err := os.MkdirTemp("", "jms-crash-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	walPath := filepath.Join(dir, "broker.wal")
	wal, err := store.OpenWAL(walPath, store.WALOptions{Sync: false})
	if err != nil {
		return err
	}
	defer wal.Close()

	provider, err := broker.New(broker.Options{Name: "crashy", Stable: wal})
	if err != nil {
		return err
	}
	defer provider.Close()

	cfg := harness.Config{
		Name:        "crash-recovery",
		Destination: jms.Queue("durable-orders"),
		Producers: []harness.ProducerConfig{
			{ID: "p1", Rate: 300, BodySize: 128, Mode: jms.Persistent},
		},
		Consumers:     []harness.ConsumerConfig{{ID: "c1"}},
		Warmup:        50 * time.Millisecond,
		Run:           600 * time.Millisecond,
		Warmdown:      400 * time.Millisecond,
		CrashAfter:    250 * time.Millisecond, // mid-run
		CrashDowntime: 50 * time.Millisecond,
	}
	fmt.Println("running persistent workload with a crash injected mid-run...")
	result, err := core.RunAndAnalyze(provider, cfg, core.DefaultOptions())
	if err != nil {
		return err
	}
	fmt.Printf("trace: %d sends, %d delivers, %d crash(es)\n",
		result.Stats.Sends, result.Stats.Delivers, result.Stats.Crashes)
	fmt.Print(result.Conformance)

	req, _ := result.Conformance.Result(model.PropRequiredMessages)
	if !result.OK() {
		return fmt.Errorf("persistent delivery violated across the crash")
	}
	fmt.Printf("\nevery required persistent message was delivered despite the crash (%s)\n", req.Detail)
	fmt.Printf("WAL on disk: %s\n", walPath)
	return nil
}
