// Cluster: a sharded broker federation used as a single provider —
// queues consistently hashed across three nodes (FIFO preserved on the
// owning shard), topic publishes forwarded to subscriber-hosting
// nodes, durable subscriptions surviving a node crash and restart, and
// the whole federation passing the formal conformance check.
//
//	go run ./examples/cluster
package main

import (
	"fmt"
	"log"
	"time"

	"jmsharness/internal/cluster"
	"jmsharness/internal/core"
	"jmsharness/internal/harness"
	"jmsharness/internal/jms"
	"jmsharness/internal/store"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Three in-process broker nodes, each with its own stable store,
	// federated behind one jms.ConnectionFactory. Everything below
	// speaks the plain JMS API; the sharding is invisible.
	stables := []store.Store{store.NewMemory(), store.NewMemory(), store.NewMemory()}
	c, err := cluster.NewLocal(3, cluster.LocalOptions{NamePrefix: "ex", Stables: stables})
	if err != nil {
		return err
	}
	defer c.Close()

	// Point-to-point: each queue lives entirely on the node the
	// consistent hash assigns it, so per-queue FIFO order holds.
	conn, err := c.CreateConnection()
	if err != nil {
		return err
	}
	defer conn.Close()
	if err := conn.SetClientID("cluster-example"); err != nil {
		return err
	}
	if err := conn.Start(); err != nil {
		return err
	}
	sess, err := conn.CreateSession(false, jms.AckAuto)
	if err != nil {
		return err
	}
	for q := 0; q < 6; q++ {
		dest := jms.Queue(fmt.Sprintf("ex.orders-%d", q))
		p, err := sess.CreateProducer(dest)
		if err != nil {
			return err
		}
		if err := p.Send(jms.NewTextMessage(fmt.Sprintf("order %d", q)), jms.DefaultSendOptions()); err != nil {
			return err
		}
		cons, err := sess.CreateConsumer(dest)
		if err != nil {
			return err
		}
		m, err := cons.Receive(time.Second)
		if err != nil {
			return err
		}
		fmt.Printf("queue %-12s -> node %d: %q\n", dest.Name(), c.QueueNode(dest.Name()), m.Body.(jms.TextBody))
		_ = cons.Close()
	}
	for _, ns := range c.Status().Nodes {
		fmt.Printf("node %s routed %d queue messages across %d queues\n", ns.Name, ns.Routed, ns.Queues)
	}

	// Durable pub/sub across a node crash: the subscription is pinned
	// to one shard; crash it, publish while it is down elsewhere is
	// impossible (its destinations error), restart it, and the durable
	// backlog is still there.
	sub, err := sess.CreateDurableSubscriber(jms.Topic("ex.prices"), "audit")
	if err != nil {
		return err
	}
	node := c.DurableNode("cluster-example", "audit")
	pub, err := sess.CreateProducer(jms.Topic("ex.prices"))
	if err != nil {
		return err
	}
	if err := pub.Send(jms.NewTextMessage("tick 1"), jms.DefaultSendOptions()); err != nil {
		return err
	}
	if m, err := sub.Receive(time.Second); err != nil {
		return err
	} else {
		fmt.Printf("durable on node %d received: %q\n", node, m.Body.(jms.TextBody))
	}
	c.CrashNode(node)
	fmt.Printf("node %d crashed; its destinations fail, the rest keep working\n", node)
	if err := c.RestartNode(node); err != nil {
		return err
	}
	fmt.Printf("node %d restarted from its stable store\n", node)
	_ = sub.Close()

	// The acceptance bar: the federation must be indistinguishable from
	// a single conforming provider under the formal model.
	cfg := harness.Config{
		Name:        "cluster-example",
		Destination: jms.Queue("ex.conformance"),
		Producers:   []harness.ProducerConfig{{ID: "p1", Rate: 200, BodySize: 64}},
		Consumers:   []harness.ConsumerConfig{{ID: "c1"}},
		Warmup:      20 * time.Millisecond,
		Run:         200 * time.Millisecond,
		Warmdown:    100 * time.Millisecond,
	}
	res, err := core.RunAndAnalyze(c, cfg, core.DefaultOptions())
	if err != nil {
		return err
	}
	fmt.Printf("conformance across %d nodes: ok=%t (%d messages delivered)\n",
		c.NumNodes(), res.Conformance.OK(), res.Stats.Delivers)
	if !res.Conformance.OK() {
		return fmt.Errorf("cluster violated the specification:\n%s", res.Conformance)
	}

	fmt.Println("done")
	return nil
}
