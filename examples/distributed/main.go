// Distributed: the full Figure-4 deployment on one machine — a broker
// behind the wire protocol, two test daemons, and the daemon prince
// coordinating a test whose producers and consumers run in different
// processes' roles, with clock synchronisation and merged-trace
// analysis.
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"time"

	"jmsharness/internal/broker"
	"jmsharness/internal/core"
	"jmsharness/internal/daemon"
	"jmsharness/internal/harness"
	"jmsharness/internal/jms"
	"jmsharness/internal/wire"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The provider under test, reachable over TCP.
	b, err := broker.New(broker.Options{Name: "shared", Profile: broker.ProviderB()})
	if err != nil {
		return err
	}
	defer b.Close()
	srv, err := wire.NewServer(b, "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv.Start()
	defer srv.Close()
	fmt.Printf("broker serving on %s\n", srv.Addr())

	// Two test daemons, as if on two machines.
	var addrs []string
	for _, name := range []string{"daemon-A", "daemon-B"} {
		d := daemon.NewDaemon(name, wire.NewFactory(srv.Addr()), nil)
		addr, err := d.Listen("127.0.0.1:0")
		if err != nil {
			return err
		}
		defer d.Close()
		fmt.Printf("%s on %s\n", name, addr)
		addrs = append(addrs, addr)
	}

	// The daemon prince schedules, coordinates, collects and analyses.
	prince, err := daemon.NewPrince(addrs, nil, nil)
	if err != nil {
		return err
	}
	defer prince.Close()
	if err := prince.SyncClocks(8); err != nil {
		return err
	}
	for _, c := range prince.Daemons() {
		fmt.Printf("clock offset of %s: %v\n", c.Name(), c.Offset())
	}

	cfg := harness.Config{
		Name:        "distributed-demo",
		Destination: jms.Queue("dist.orders"),
		Producers: []harness.ProducerConfig{
			{ID: "p1", Rate: 100, BodySize: 256},
			{ID: "p2", Rate: 100, BodySize: 256},
		},
		Consumers: []harness.ConsumerConfig{{ID: "c1"}, {ID: "c2"}},
		Warmup:    100 * time.Millisecond,
		Run:       800 * time.Millisecond,
		Warmdown:  500 * time.Millisecond,
	}
	fmt.Printf("\nscheduling %q across %d daemons...\n", cfg.Name, len(prince.Daemons()))
	res, err := prince.RunAndAnalyze(cfg, core.DefaultOptions())
	if err != nil {
		return err
	}
	fmt.Print(res)
	if !res.OK() {
		return fmt.Errorf("distributed test violated the specification")
	}
	fmt.Println("\ndistributed test conforms; merged trace stored in the prince's results DB")
	return nil
}
