// Request/reply: the classic MOM pattern built from temporary queues
// and the ReplyTo/CorrelationID headers — a worker pool serving a
// request queue, clients getting correlated replies on private
// temporary queues, all over the TCP wire protocol.
//
//	go run ./examples/requestreply
package main

import (
	"fmt"
	"log"
	"strings"
	"sync"
	"time"

	"jmsharness/internal/broker"
	"jmsharness/internal/jms"
	"jmsharness/internal/wire"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

const service = jms.Queue("shout-service")

// worker consumes requests and replies in upper case.
func worker(id int, factory jms.ConnectionFactory, stop <-chan struct{}, wg *sync.WaitGroup) {
	defer wg.Done()
	conn, err := factory.CreateConnection()
	if err != nil {
		log.Printf("worker %d: %v", id, err)
		return
	}
	defer conn.Close()
	if err := conn.Start(); err != nil {
		log.Printf("worker %d: %v", id, err)
		return
	}
	sess, err := conn.CreateSession(false, jms.AckAuto)
	if err != nil {
		log.Printf("worker %d: %v", id, err)
		return
	}
	cons, err := sess.CreateConsumer(service)
	if err != nil {
		log.Printf("worker %d: %v", id, err)
		return
	}
	replier, err := sess.CreateProducer(nil)
	if err != nil {
		log.Printf("worker %d: %v", id, err)
		return
	}
	for {
		select {
		case <-stop:
			return
		default:
		}
		req, err := cons.Receive(50 * time.Millisecond)
		if err != nil {
			return
		}
		if req == nil {
			continue
		}
		text := strings.ToUpper(string(req.Body.(jms.TextBody)))
		resp := jms.NewTextMessage(fmt.Sprintf("%s (worker %d)", text, id))
		if err := jms.Reply(replier, req, resp, jms.DefaultSendOptions()); err != nil {
			log.Printf("worker %d: reply: %v", id, err)
			return
		}
	}
}

func run() error {
	b, err := broker.New(broker.Options{Name: "rr"})
	if err != nil {
		return err
	}
	defer b.Close()
	srv, err := wire.NewServer(b, "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv.Start()
	defer srv.Close()
	factory := wire.NewFactory(srv.Addr())
	fmt.Printf("broker on %s\n", srv.Addr())

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 1; i <= 3; i++ {
		wg.Add(1)
		go worker(i, factory, stop, &wg)
	}
	defer func() {
		close(stop)
		wg.Wait()
	}()

	// Client with its own connection and a private temporary reply
	// queue.
	conn, err := factory.CreateConnection()
	if err != nil {
		return err
	}
	defer conn.Close()
	if err := conn.Start(); err != nil {
		return err
	}
	sess, err := conn.CreateSession(false, jms.AckAuto)
	if err != nil {
		return err
	}
	requestor, err := jms.NewRequestor(sess, service)
	if err != nil {
		return err
	}
	defer requestor.Close()
	fmt.Printf("replies arrive on %s\n\n", requestor.ReplyTo())

	for _, word := range []string{"hello", "message-oriented middleware", "reply"} {
		reply, err := requestor.Request(jms.NewTextMessage(word), jms.DefaultSendOptions(), 3*time.Second)
		if err != nil {
			return err
		}
		if reply == nil {
			return fmt.Errorf("request %q timed out", word)
		}
		fmt.Printf("%-32q -> %q\n", word, reply.Body.(jms.TextBody))
	}
	fmt.Println("\ndone")
	return nil
}
