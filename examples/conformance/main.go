// Conformance: run the automated analysis of the paper against a
// correct provider and against providers seeded with classic bugs, and
// show the formal model catching each one.
//
//	go run ./examples/conformance
package main

import (
	"fmt"
	"log"
	"time"

	"jmsharness/internal/broker"
	"jmsharness/internal/core"
	"jmsharness/internal/experiments"
	"jmsharness/internal/faults"
	"jmsharness/internal/harness"
	"jmsharness/internal/jms"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cfg := harness.Config{
		Name:        "conformance-demo",
		Destination: jms.Queue("demo"),
		Producers:   []harness.ProducerConfig{{ID: "p1", Rate: 400, BodySize: 64}},
		Consumers:   []harness.ConsumerConfig{{ID: "c1"}},
		Warmup:      50 * time.Millisecond,
		Run:         400 * time.Millisecond,
		Warmdown:    200 * time.Millisecond,
	}

	// 1. A correct provider passes every safety property.
	good, err := broker.New(broker.Options{Name: "good"})
	if err != nil {
		return err
	}
	res, err := core.RunAndAnalyze(good, cfg, core.DefaultOptions())
	if err != nil {
		return err
	}
	_ = good.Close()
	fmt.Println("== correct provider ==")
	fmt.Print(res.Conformance)

	// 2. A provider that silently drops every third message is caught
	// by Property 2 (required messages).
	bad, err := broker.New(broker.Options{Name: "bad"})
	if err != nil {
		return err
	}
	cfg.Name = "conformance-dropper"
	res, err = core.RunAndAnalyze(faults.NewDropper(bad, 3), cfg, core.DefaultOptions())
	if err != nil {
		return err
	}
	_ = bad.Close()
	fmt.Println("\n== provider that drops every 3rd message ==")
	fmt.Print(res.Conformance)

	// 3. The full fault-detection matrix across all seeded bug classes.
	fmt.Println("\n== fault-detection matrix ==")
	rows, err := experiments.ConformanceMatrix(1)
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatConformance(rows))
	return nil
}
