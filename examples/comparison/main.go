// Comparison: the vendor-independent performance comparison the paper
// builds the harness for — sweep demand against Provider I and
// Provider II (Figures 2 and 3) and run the footnote-9 three-provider
// comparison.
//
//	go run ./examples/comparison [-quick]
package main

import (
	"flag"
	"fmt"
	"log"

	"jmsharness/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "fewer demand points and shorter runs")
	flag.Parse()
	if err := run(*quick); err != nil {
		log.Fatal(err)
	}
}

func run(quick bool) error {
	scale := 1.0
	if quick {
		scale = 0.4
	}
	fig2 := experiments.Figure2Options(scale)
	fig3 := experiments.Figure3Options(scale)
	if quick {
		fig2.DemandsBps = []float64{50_000, 150_000, 300_000, 500_000}
		fig3.DemandsBps = fig2.DemandsBps
	}

	fmt.Println("Figure 2 — Provider I: both curves plateau at the sustainable rate")
	points, err := experiments.ThroughputSweep(fig2)
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatThroughputTable("provider-I, 1KiB messages", points))

	fmt.Println("\nFigure 3 — Provider II: subscriber throughput drops when over-stressed")
	points, err = experiments.ThroughputSweep(fig3)
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatThroughputTable("provider-II, 2500B messages", points))

	fmt.Println("\nFootnote 9 — three providers, up to a factor of 10 apart")
	rows, err := experiments.ProviderComparison(scale)
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatComparison(rows))
	return nil
}
