// Observability: instrument a broker and a harness run with the obs
// package — shared metrics registry, per-message span tracing, and the
// live HTTP introspection endpoint (/metricz, /spanz, /healthz).
//
//	go run ./examples/observability
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"time"

	"jmsharness/internal/broker"
	"jmsharness/internal/harness"
	"jmsharness/internal/jms"
	"jmsharness/internal/obs"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// One registry backs every component, so a single snapshot shows the
	// whole system. The span recorder tracks each message copy from
	// send to ack/expire.
	reg := obs.NewRegistry()
	spans := obs.NewSpans(reg, obs.DefaultMaxInFlight, obs.DefaultKeep)

	provider, err := broker.New(broker.Options{
		Name:    "observed",
		Metrics: reg,
		Spans:   spans,
	})
	if err != nil {
		return err
	}
	defer provider.Close()

	// Drive a short workload through the harness; WithMetrics publishes
	// live progress counters into the same registry.
	cfg := harness.Config{
		Name:        "observed-run",
		Destination: jms.Queue("obs.orders"),
		Producers: []harness.ProducerConfig{
			{ID: "p1", Rate: 400, BodySize: 256},
			{ID: "p2", Rate: 400, BodySize: 256},
		},
		Consumers: []harness.ConsumerConfig{{ID: "c1"}},
		Warmup:    50 * time.Millisecond,
		Run:       300 * time.Millisecond,
		Warmdown:  100 * time.Millisecond,
	}
	if _, err := harness.NewRunner(provider, nil).WithMetrics(reg).Run(cfg); err != nil {
		return err
	}

	// The broker's own view: a consistent Stats snapshot...
	st := provider.Stats()
	fmt.Printf("broker    sent=%d delivered=%d acked=%d expired=%d backlog=%d\n",
		st.Sent, st.Delivered, st.Acked, st.Expired, st.Backlog)

	// ...and the registry's: counters, gauges and latency histograms.
	snap := reg.Snapshot()
	fmt.Printf("harness   sent=%d recv=%d (p1=%d p2=%d)\n",
		snap.Counters["harness.sent"], snap.Counters["harness.recv"],
		snap.Counters["harness.sent.p1"], snap.Counters["harness.sent.p2"])
	sojourn := snap.Histograms["broker.sojourn_ns"]
	fmt.Printf("sojourn   n=%d mean=%v p95=%v\n", sojourn.Count,
		time.Duration(sojourn.Mean), time.Duration(sojourn.P95))

	// Completed spans: the full lifecycle of recent messages.
	for i, sp := range spans.Recent() {
		if i >= 3 {
			break
		}
		fmt.Printf("span      %s %s wait=%v outcome=%s\n", sp.MsgID, sp.Endpoint, sp.QueueWait(), sp.Outcome)
	}

	// The same data over HTTP, as jmsbrokerd -obs-addr serves it.
	h := obs.NewHandler(reg)
	h.HandleJSON("/spanz", func() any { return spans.Snapshot() })
	srv, err := obs.NewHTTPServer("127.0.0.1:0", h)
	if err != nil {
		return err
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/metricz")
	if err != nil {
		return err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	var metricz struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal(body, &metricz); err != nil {
		return fmt.Errorf("metricz is not valid JSON: %w", err)
	}
	fmt.Printf("/metricz  %d bytes, broker.sent=%d\n", len(body), metricz.Counters["broker.sent"])

	fmt.Println("done")
	return nil
}
