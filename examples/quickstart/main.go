// Quickstart: the messaging API in five minutes — point-to-point
// queues, publish/subscribe topics, durable subscribers, transactions
// and priorities against the in-process reference provider.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"jmsharness/internal/broker"
	"jmsharness/internal/jms"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A provider is anything implementing jms.ConnectionFactory; the
	// reference broker runs in-process.
	provider, err := broker.New(broker.Options{Name: "quickstart"})
	if err != nil {
		return err
	}
	defer provider.Close()

	conn, err := provider.CreateConnection()
	if err != nil {
		return err
	}
	defer conn.Close()
	if err := conn.SetClientID("quickstart-client"); err != nil {
		return err
	}
	if err := conn.Start(); err != nil {
		return err
	}
	sess, err := conn.CreateSession(false, jms.AckAuto)
	if err != nil {
		return err
	}

	// --- Point-to-point: a queue ---
	orders := jms.Queue("orders")
	producer, err := sess.CreateProducer(orders)
	if err != nil {
		return err
	}
	receiver, err := sess.CreateConsumer(orders)
	if err != nil {
		return err
	}
	msg := jms.NewTextMessage("order #1: 12 widgets")
	msg.SetProperty("customer", jms.Str("acme"))
	if err := producer.Send(msg, jms.DefaultSendOptions()); err != nil {
		return err
	}
	got, err := receiver.Receive(time.Second)
	if err != nil {
		return err
	}
	fmt.Printf("queue     %s -> %q (customer=%s)\n", got.ID, got.Body.(jms.TextBody), got.StringProperty("customer"))

	// --- Priorities: urgent messages overtake ---
	for _, p := range []jms.Priority{2, 9, 5} {
		m := jms.NewTextMessage(fmt.Sprintf("priority %d", p))
		if err := producer.Send(m, jms.SendOptions{Mode: jms.Persistent, Priority: p}); err != nil {
			return err
		}
	}
	for i := 0; i < 3; i++ {
		m, err := receiver.Receive(time.Second)
		if err != nil {
			return err
		}
		fmt.Printf("priority  delivered %q\n", m.Body.(jms.TextBody))
	}

	// --- Publish/subscribe: a topic with a durable subscriber ---
	prices := jms.Topic("prices")
	durable, err := sess.CreateDurableSubscriber(prices, "price-audit")
	if err != nil {
		return err
	}
	publisher, err := sess.CreateProducer(prices)
	if err != nil {
		return err
	}
	if err := publisher.Send(jms.NewTextMessage("AU: 42.0"), jms.DefaultSendOptions()); err != nil {
		return err
	}
	tick, err := durable.Receive(time.Second)
	if err != nil {
		return err
	}
	fmt.Printf("pubsub    durable subscriber got %q\n", tick.Body.(jms.TextBody))
	// The subscription outlives the subscriber: messages published while
	// it is closed are retained.
	if err := durable.Close(); err != nil {
		return err
	}
	if err := publisher.Send(jms.NewTextMessage("AU: 43.5"), jms.DefaultSendOptions()); err != nil {
		return err
	}
	reopened, err := sess.CreateDurableSubscriber(prices, "price-audit")
	if err != nil {
		return err
	}
	missed, err := reopened.Receive(time.Second)
	if err != nil {
		return err
	}
	fmt.Printf("pubsub    retained while inactive: %q\n", missed.Body.(jms.TextBody))

	// --- Transactions: all-or-nothing sends ---
	txSess, err := conn.CreateSession(true, 0)
	if err != nil {
		return err
	}
	txProducer, err := txSess.CreateProducer(orders)
	if err != nil {
		return err
	}
	if err := txProducer.Send(jms.NewTextMessage("rolled back"), jms.DefaultSendOptions()); err != nil {
		return err
	}
	if err := txSess.Rollback(); err != nil {
		return err
	}
	if err := txProducer.Send(jms.NewTextMessage("committed"), jms.DefaultSendOptions()); err != nil {
		return err
	}
	if err := txSess.Commit(); err != nil {
		return err
	}
	final, err := receiver.Receive(time.Second)
	if err != nil {
		return err
	}
	fmt.Printf("tx        only the committed send arrives: %q\n", final.Body.(jms.TextBody))
	if extra, err := receiver.Receive(100 * time.Millisecond); err != nil {
		return err
	} else if extra != nil {
		return fmt.Errorf("unexpected extra message %v", extra)
	}
	fmt.Println("done")
	return nil
}
