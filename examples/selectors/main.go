// Selectors: route messages with JMS message selectors (the SQL-92
// conditional subset) — header-based and property-based filtering,
// three-valued logic, and durable subscriptions with selectors.
//
//	go run ./examples/selectors
package main

import (
	"fmt"
	"log"
	"time"

	"jmsharness/internal/broker"
	"jmsharness/internal/jms"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func send(p jms.Producer, text string, pri jms.Priority, props map[string]jms.Value) error {
	m := jms.NewTextMessage(text)
	for k, v := range props {
		m.SetProperty(k, v)
	}
	return p.Send(m, jms.SendOptions{Mode: jms.Persistent, Priority: pri})
}

func drain(name string, c jms.Consumer) error {
	for {
		msg, err := c.Receive(100 * time.Millisecond)
		if err != nil {
			return err
		}
		if msg == nil {
			return nil
		}
		fmt.Printf("%-22s <- %q\n", name, msg.Body.(jms.TextBody))
	}
}

func run() error {
	provider, err := broker.New(broker.Options{Name: "selectors"})
	if err != nil {
		return err
	}
	defer provider.Close()
	conn, err := provider.CreateConnection()
	if err != nil {
		return err
	}
	defer conn.Close()
	if err := conn.Start(); err != nil {
		return err
	}
	sess, err := conn.CreateSession(false, jms.AckAuto)
	if err != nil {
		return err
	}

	orders := jms.Topic("orders")
	// Three filtered views of one topic.
	bigEU, err := sess.CreateConsumerWithSelector(orders,
		"region = 'EU' AND amount >= 1000")
	if err != nil {
		return err
	}
	urgent, err := sess.CreateConsumerWithSelector(orders,
		"JMSPriority >= 7 OR rush = TRUE")
	if err != nil {
		return err
	}
	discounted, err := sess.CreateConsumerWithSelector(orders,
		"code LIKE 'PROMO-%' AND discount BETWEEN 0.1 AND 0.5")
	if err != nil {
		return err
	}

	p, err := sess.CreateProducer(orders)
	if err != nil {
		return err
	}
	sends := []error{
		send(p, "big EU order", 4, map[string]jms.Value{
			"region": jms.Str("EU"), "amount": jms.Int64(5000)}),
		send(p, "small EU order", 4, map[string]jms.Value{
			"region": jms.Str("EU"), "amount": jms.Int64(50)}),
		send(p, "urgent US order", 9, map[string]jms.Value{
			"region": jms.Str("US"), "amount": jms.Int64(10)}),
		send(p, "rush flag order", 2, map[string]jms.Value{
			"region": jms.Str("AU"), "rush": jms.Bool(true)}),
		send(p, "promo order", 4, map[string]jms.Value{
			"code": jms.Str("PROMO-42"), "discount": jms.Float64(0.25)}),
		send(p, "expired promo", 4, map[string]jms.Value{
			"code": jms.Str("PROMO-43"), "discount": jms.Float64(0.8)}),
	}
	for _, err := range sends {
		if err != nil {
			return err
		}
	}
	if err := drain("big-EU", bigEU); err != nil {
		return err
	}
	if err := drain("urgent", urgent); err != nil {
		return err
	}
	if err := drain("discounted", discounted); err != nil {
		return err
	}

	// Three-valued logic: a missing property is unknown, not false —
	// "discount IS NULL" selects messages with no discount at all.
	nullCheck, err := sess.CreateConsumerWithSelector(orders, "discount IS NULL")
	if err != nil {
		return err
	}
	if err := send(p, "no discount field", 4, nil); err != nil {
		return err
	}
	if err := drain("discount-is-null", nullCheck); err != nil {
		return err
	}
	fmt.Println("done")
	return nil
}
