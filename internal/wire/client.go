package wire

import (
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"jmsharness/internal/jms"
	"jmsharness/internal/obs"
	"jmsharness/internal/stats"
)

// ErrCallTimeout marks a wire call that exceeded the factory's call
// timeout (WithCallTimeout): the server or the link stalled past the
// deadline, so the call was abandoned and its transport discarded.
var ErrCallTimeout = errors.New("wire: call timeout")

// ErrTxInterrupted marks a transacted session whose connection was
// lost mid-transaction: the staged work died with the server-side
// session, so the commit outcome is "rolled back" — the caller must
// treat the transaction as aborted and replay it if needed.
var ErrTxInterrupted = errors.New("wire: transaction interrupted by connection loss; treat as rolled back")

// errConnLost is the internal marker for a round trip that died with
// its transport. With reconnection enabled, retryable calls wait for a
// fresh transport and re-issue; otherwise it surfaces as jms.ErrClosed.
var errConnLost = errors.New("wire: connection lost")

// ReconnectPolicy configures automatic client-side reconnection.
// When enabled, a lost TCP connection is redialed with capped
// exponential backoff plus seeded jitter, and the connection's logical
// state — client ID, sessions, consumers, durable subscribers, started
// flag — is re-established on the new socket before calls resume.
// Non-transacted sends carry idempotency tokens so a retried send
// whose reply was lost cannot duplicate the message (Property 1 holds
// across resets); in-flight transactions are poisoned instead
// (ErrTxInterrupted), because their staged work died with the server
// connection.
type ReconnectPolicy struct {
	// Enabled turns reconnection on. Off (the default), a connection
	// loss is terminal, as a fail-fast harness expects.
	Enabled bool
	// MaxAttempts bounds redials per outage; zero means 8.
	MaxAttempts int
	// InitialBackoff is the first redial delay; zero means 10ms. Each
	// attempt doubles it, capped at MaxBackoff, plus uniform jitter of
	// up to one backoff step.
	InitialBackoff time.Duration
	// MaxBackoff caps the backoff; zero means 1s.
	MaxBackoff time.Duration
	// Seed drives the jitter generator.
	Seed uint64
}

func (p ReconnectPolicy) withDefaults() ReconnectPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 8
	}
	if p.InitialBackoff <= 0 {
		p.InitialBackoff = 10 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = time.Second
	}
	return p
}

// Factory implements jms.ConnectionFactory over the wire protocol: each
// CreateConnection dials one TCP connection to the broker server. It is
// the client half of the protocol bridge — to the harness it is
// indistinguishable from an in-process provider.
type Factory struct {
	addr        string
	dialTimeout time.Duration
	callTimeout time.Duration
	reconnect   ReconnectPolicy
	spans       obs.SpanRecorder
	pipeWindow  int

	reconnects atomic.Int64
}

// NewFactory returns a factory connecting to the broker server at addr.
func NewFactory(addr string) *Factory {
	return &Factory{addr: addr, dialTimeout: 5 * time.Second}
}

// WithCallTimeout bounds every request/reply round trip (receives get
// their server-side wait added on top). Zero, the default, means calls
// wait indefinitely. Returns the factory for chaining.
func (f *Factory) WithCallTimeout(d time.Duration) *Factory {
	f.callTimeout = d
	return f
}

// WithReconnect installs a reconnection policy (see ReconnectPolicy).
// Returns the factory for chaining.
func (f *Factory) WithReconnect(p ReconnectPolicy) *Factory {
	f.reconnect = p.withDefaults()
	f.reconnect.Enabled = p.Enabled
	return f
}

// WithSpans records a send-RPC hop span (wire round-trip time) for
// every producer send through this factory's connections. Trace
// context is stamped on outgoing messages regardless; the recorder
// only adds the client-side span. Returns the factory for chaining.
func (f *Factory) WithSpans(rec obs.SpanRecorder) *Factory {
	f.spans = rec
	return f
}

// WithPipelining enables credit-windowed pipelined sends on this
// factory's connections: non-transacted producers stream up to window
// uncompleted sends over the wire and collect completions
// asynchronously (see jms.AsyncProducer), instead of paying one
// blocking round trip per message. A window of 1 degenerates to
// blocking-send semantics; 0 (the default) disables pipelining
// entirely. The server may grant a smaller window than requested.
// Durability guarantees are unchanged — a completion resolves only
// after the provider has made the send durable — and reconnection
// replays the unacked window with its original idempotency tokens, so
// resets cannot duplicate messages. Returns the factory for chaining.
func (f *Factory) WithPipelining(window int) *Factory {
	if window < 0 {
		window = 0
	}
	if window > pipeMaxWindow {
		window = pipeMaxWindow
	}
	f.pipeWindow = window
	return f
}

// Reconnects reports how many successful reconnections this factory's
// connections have performed.
func (f *Factory) Reconnects() int64 { return f.reconnects.Load() }

var _ jms.ConnectionFactory = (*Factory)(nil)

// clientUIDBase namespaces send-dedup tokens across processes sharing
// one server; clientConnSeq disambiguates connections within a process
// (package-global, NOT per-factory — distinct factories sharing one
// server must never mint colliding tokens).
var (
	clientUIDBase = time.Now().UnixNano()
	clientConnSeq atomic.Uint64
)

// CreateConnection implements jms.ConnectionFactory.
func (f *Factory) CreateConnection() (jms.Connection, error) {
	sock, err := net.DialTimeout("tcp", f.addr, f.dialTimeout)
	if err != nil {
		return nil, fmt.Errorf("wire: dialing %s: %w", f.addr, err)
	}
	seq := clientConnSeq.Add(1)
	c := &clientConn{
		f:         f,
		seq:       seq,
		uid:       strconv.FormatInt(clientUIDBase, 36) + "-" + strconv.FormatUint(seq, 36),
		wake:      make(chan struct{}),
		sessions:  map[*clientSession]struct{}{},
		pipes:     map[*clientPipe]struct{}{},
		pipesByID: map[uint64]*clientPipe{},
	}
	c.acks = &ackBatcher{c: c}
	tr := newTransport(sock)
	c.tr = tr
	go tr.readLoop(c)
	return c, nil
}

// mapError rehydrates well-known provider errors from their wire string
// form so errors.Is works across the protocol boundary.
func mapError(msg string) error {
	known := []error{
		jms.ErrClosed, jms.ErrNotTransacted, jms.ErrTransacted,
		jms.ErrClientIDInUse, jms.ErrNoClientID, jms.ErrDurableActive,
		jms.ErrUnknownSubscription, jms.ErrInvalidDestination,
		jms.ErrInvalidSelector, jms.ErrInvalidArgument, jms.ErrOverloaded,
	}
	for _, e := range known {
		if strings.Contains(msg, e.Error()) {
			return fmt.Errorf("%w (remote: %s)", e, msg)
		}
	}
	return errors.New(msg)
}

// transport is one live TCP socket with its in-flight request table.
// A clientConn owns at most one transport at a time; reconnection
// replaces a failed transport with a fresh one.
type transport struct {
	sock net.Conn
	fw   *frameWriter // serialises request frames onto sock

	mu      sync.Mutex
	nextReq uint64
	pending map[uint64]chan reply
	failed  bool
}

func newTransport(sock net.Conn) *transport {
	return &transport{sock: sock, fw: newFrameWriter(sock), pending: map[uint64]chan reply{}}
}

// readLoop dispatches server frames — request replies to their waiting
// callers, pipelined-send completion batches to their pipes — and
// reports transport death to the owning connection.
func (t *transport) readLoop(c *clientConn) {
	for {
		payload, err := ReadFrame(t.sock)
		if err != nil {
			break
		}
		if len(payload) > 0 && payload[0] == opPipeCompletion {
			if c.applyPipeCompletions(payload) != nil {
				break
			}
			continue
		}
		rep, err := decodeReply(payload)
		if err != nil {
			break
		}
		t.mu.Lock()
		ch, ok := t.pending[rep.reqID]
		delete(t.pending, rep.reqID)
		t.mu.Unlock()
		if ok {
			ch <- rep
		}
	}
	t.fail()
	c.transportLost(t)
}

// fail closes the socket and releases every in-flight call with a
// lost-marker reply. Idempotent.
func (t *transport) fail() {
	t.mu.Lock()
	if t.failed {
		t.mu.Unlock()
		return
	}
	t.failed = true
	pending := t.pending
	t.pending = map[uint64]chan reply{}
	t.mu.Unlock()
	_ = t.sock.Close()
	for _, ch := range pending {
		ch <- reply{lost: true}
	}
}

// register allocates a request ID and its reply channel; ok is false
// when the transport has already failed.
func (t *transport) register() (reqID uint64, ch chan reply, ok bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.failed {
		return 0, nil, false
	}
	t.nextReq++
	ch = make(chan reply, 1)
	t.pending[t.nextReq] = ch
	return t.nextReq, ch, true
}

func (t *transport) unregister(reqID uint64) {
	t.mu.Lock()
	delete(t.pending, reqID)
	t.mu.Unlock()
}

// roundTrip performs one request/reply exchange on tr. timer, when
// non-nil, bounds the whole exchange. Returns errConnLost when the
// transport died under the call and ErrCallTimeout when timer fired.
func roundTrip(tr *transport, op byte, build func(*jms.Encoder), timer <-chan time.Time) (reply, error) {
	reqID, ch, ok := tr.register()
	if !ok {
		return reply{}, errConnLost
	}
	if err := tr.fw.writeRequest(op, reqID, build); err != nil {
		tr.unregister(reqID)
		tr.fail()
		return reply{}, errConnLost
	}
	select {
	case rep := <-ch:
		if rep.lost {
			return reply{}, errConnLost
		}
		return rep, nil
	case <-timer:
		tr.unregister(reqID)
		return reply{}, ErrCallTimeout
	}
}

// clientConn implements jms.Connection. Its transport may be replaced
// across reconnections; logical state (client ID, sessions, consumers)
// lives here and is re-established onto each new transport.
type clientConn struct {
	f   *Factory
	seq uint64
	uid string // namespaces this connection's send-dedup tokens

	acks *ackBatcher // coalesces session acknowledgements

	mu           sync.Mutex
	tr           *transport    // nil while disconnected
	wake         chan struct{} // closed and replaced on every state change
	closed       bool          // Close was called
	dead         error         // terminal failure; set once
	reconnecting bool
	clientID     string
	started      bool
	sessions     map[*clientSession]struct{}
	pipes        map[*clientPipe]struct{} // every pipe ever opened
	pipesByID    map[uint64]*clientPipe   // by current server pipe ID

	sendSeq atomic.Uint64
}

// registerPipe records a pipe's current server-side identity. The lock
// order is pipe.mu before conn.mu throughout the pipe code.
func (c *clientConn) registerPipe(pp *clientPipe, id uint64) {
	c.mu.Lock()
	c.pipes[pp] = struct{}{}
	c.pipesByID[id] = pp
	c.mu.Unlock()
}

// unregisterPipe drops a dead transport's pipe ID binding.
func (c *clientConn) unregisterPipe(id uint64, pp *clientPipe) {
	c.mu.Lock()
	if c.pipesByID[id] == pp {
		delete(c.pipesByID, id)
	}
	c.mu.Unlock()
}

// snapshotPipes lists the connection's pipes. Callers must not hold
// c.mu-ordered locks (see registerPipe).
func (c *clientConn) snapshotPipes() []*clientPipe {
	c.mu.Lock()
	defer c.mu.Unlock()
	pipes := make([]*clientPipe, 0, len(c.pipes))
	for pp := range c.pipes {
		pipes = append(pipes, pp)
	}
	return pipes
}

// applyPipeCompletions settles the entries of one opPipeCompletion
// frame. A non-nil return kills the transport (malformed frame).
func (c *clientConn) applyPipeCompletions(payload []byte) error {
	return decodePipeCompletions(payload, func(pc pipeCompletion) {
		c.mu.Lock()
		pp := c.pipesByID[pc.pipeID]
		c.mu.Unlock()
		if pp == nil {
			return // completion for a pipe of a dead incarnation
		}
		if pc.errMsg != "" {
			pp.complete(pc.seq, mapError(pc.errMsg), sendStamp{})
			return
		}
		pp.complete(pc.seq, nil, pc.stamp)
	})
}

var _ jms.Connection = (*clientConn)(nil)

// wakeLocked signals every state-change waiter. Callers hold mu.
func (c *clientConn) wakeLocked() {
	close(c.wake)
	c.wake = make(chan struct{})
}

func (c *clientConn) isClosed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

// transportLost records the death of tr. Without reconnection the
// connection dies with it (the seed's fail-fast semantics); with it, a
// single reconnect loop is started per outage. Pipes opened on tr are
// detached (their in-flight window survives for replay); if the loss
// is terminal, every in-flight pipelined send fails.
func (c *clientConn) transportLost(tr *transport) {
	c.mu.Lock()
	if c.tr == tr {
		c.tr = nil
		c.wakeLocked()
	}
	var terminal error
	switch {
	case c.closed:
		terminal = jms.ErrClosed
	case c.dead != nil:
		terminal = c.dead
	case !c.f.reconnect.Enabled:
		c.dead = fmt.Errorf("wire: connection lost: %w", jms.ErrClosed)
		terminal = c.dead
		c.wakeLocked()
	case !c.reconnecting:
		c.reconnecting = true
		go c.reconnectLoop()
	}
	c.mu.Unlock()
	for _, pp := range c.snapshotPipes() {
		pp.detach(tr)
		if terminal != nil {
			pp.failAll(terminal)
		}
	}
}

// fatal marks the connection permanently failed.
func (c *clientConn) fatal(err error) {
	c.mu.Lock()
	if c.dead == nil {
		c.dead = err
	}
	dead := c.dead
	c.reconnecting = false
	c.wakeLocked()
	c.mu.Unlock()
	for _, pp := range c.snapshotPipes() {
		pp.failAll(dead)
	}
}

// reconnectLoop redials with capped exponential backoff plus seeded
// jitter, re-establishes the connection's logical state on the new
// socket, and publishes the new transport. Exhausting the attempt
// budget is terminal.
func (c *clientConn) reconnectLoop() {
	pol := c.f.reconnect
	rng := stats.NewRNG(pol.Seed ^ (c.seq * 0x9E3779B97F4A7C15))
	backoff := pol.InitialBackoff
	var lastErr error
	for attempt := 1; attempt <= pol.MaxAttempts; attempt++ {
		if c.isClosed() {
			return
		}
		sock, err := net.DialTimeout("tcp", c.f.addr, c.f.dialTimeout)
		if err == nil {
			tr := newTransport(sock)
			go tr.readLoop(c)
			if err = c.reestablish(tr); err == nil {
				c.mu.Lock()
				if c.closed {
					c.mu.Unlock()
					tr.fail()
					return
				}
				c.tr = tr
				c.reconnecting = false
				c.wakeLocked()
				c.mu.Unlock()
				c.f.reconnects.Add(1)
				return
			}
			tr.fail()
		}
		lastErr = err
		if attempt == pol.MaxAttempts {
			break
		}
		// Jittered, capped exponential backoff. Transient re-establish
		// failures (e.g. the server still tearing down the old
		// connection's client ID or durable subscription) retry too.
		time.Sleep(backoff + time.Duration(rng.Float64()*float64(backoff)))
		if backoff *= 2; backoff > pol.MaxBackoff {
			backoff = pol.MaxBackoff
		}
	}
	c.fatal(fmt.Errorf("wire: reconnect to %s failed after %d attempts (%v): %w",
		c.f.addr, pol.MaxAttempts, lastErr, jms.ErrClosed))
}

// reestablish replays the connection's logical state onto a fresh
// transport: client ID, every open session, every consumer and durable
// subscriber, and the started flag. Dirty transactions are poisoned
// (their staged work died with the old server-side session); consumers
// of temporary queues are marked lost (temp queues are owned by the
// dead server-side connection).
func (c *clientConn) reestablish(tr *transport) error {
	timeout := c.f.callTimeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	raw := func(op byte, build func(*jms.Encoder)) (reply, error) {
		tm := time.NewTimer(timeout)
		defer tm.Stop()
		rep, err := roundTrip(tr, op, build, tm.C)
		if err != nil {
			return reply{}, err
		}
		if rep.err != "" {
			return reply{}, mapError(rep.err)
		}
		return rep, nil
	}
	c.mu.Lock()
	clientID := c.clientID
	started := c.started
	sessions := make([]*clientSession, 0, len(c.sessions))
	for s := range c.sessions {
		sessions = append(sessions, s)
	}
	c.mu.Unlock()
	if clientID != "" {
		if _, err := raw(opSetClientID, func(e *jms.Encoder) { e.String(clientID) }); err != nil {
			return fmt.Errorf("restoring client ID: %w", err)
		}
	}
	for _, s := range sessions {
		if err := s.reestablish(raw); err != nil {
			return err
		}
	}
	// Pipes replay after sessions (a pipe addresses its session's new
	// incarnation): each re-opens and re-sends its unacked window with
	// the original dedup tokens, so sends that reached the provider
	// before the reset settle from the dedup cache instead of applying
	// twice.
	for _, pp := range c.snapshotPipes() {
		if err := pp.reestablish(tr, raw); err != nil {
			return err
		}
	}
	if started {
		if _, err := raw(opStart, nil); err != nil {
			return fmt.Errorf("restarting connection: %w", err)
		}
	}
	return nil
}

// awaitTransport returns the live transport, blocking through an
// in-progress reconnection. timer, when non-nil, bounds the wait.
func (c *clientConn) awaitTransport(timer <-chan time.Time) (*transport, error) {
	for {
		c.mu.Lock()
		switch {
		case c.closed:
			c.mu.Unlock()
			return nil, jms.ErrClosed
		case c.dead != nil:
			err := c.dead
			c.mu.Unlock()
			return nil, err
		case c.tr != nil:
			tr := c.tr
			c.mu.Unlock()
			return tr, nil
		}
		wake := c.wake
		c.mu.Unlock()
		select {
		case <-wake:
		case <-timer:
			return nil, fmt.Errorf("%w: waiting for reconnection", ErrCallTimeout)
		}
	}
}

// call performs one request/reply round trip. retry marks the
// operation safe to re-issue on a fresh transport after a connection
// loss (everything except Commit: a lost commit's outcome is unknown,
// and retrying would commit an empty transaction while the real one
// was rolled back). extra widens the call deadline for operations with
// a legitimate server-side wait (blocking receives).
func (c *clientConn) call(op byte, build func(*jms.Encoder), retry bool, extra time.Duration) (reply, error) {
	var timer <-chan time.Time
	if ct := c.f.callTimeout; ct > 0 {
		tm := time.NewTimer(ct + extra)
		defer tm.Stop()
		timer = tm.C
	}
	for {
		tr, err := c.awaitTransport(timer)
		if err != nil {
			return reply{}, err
		}
		rep, err := roundTrip(tr, op, build, timer)
		switch {
		case err == nil:
			if rep.err != "" {
				return reply{}, mapError(rep.err)
			}
			return rep, nil
		case errors.Is(err, errConnLost):
			// Clear the dead transport now (the readLoop's own report
			// may still be in flight) so the retry waits instead of
			// spinning on the corpse.
			c.transportLost(tr)
			if retry && c.f.reconnect.Enabled {
				continue
			}
			return reply{}, fmt.Errorf("wire: connection lost: %w", jms.ErrClosed)
		default:
			// Call timeout: the transport may deliver this reply
			// arbitrarily late, so it cannot be trusted for later
			// calls — kill it and let reconnection (if enabled) build
			// a fresh one.
			tr.fail()
			return reply{}, fmt.Errorf("%w: op %d after %v", ErrCallTimeout, op, c.f.callTimeout+extra)
		}
	}
}

// callOK performs a round trip that carries no reply body.
func (c *clientConn) callOK(op byte, build func(*jms.Encoder), retry bool) error {
	_, err := c.call(op, build, retry, 0)
	return err
}

// SetClientID implements jms.Connection.
func (c *clientConn) SetClientID(id string) error {
	if err := c.callOK(opSetClientID, func(e *jms.Encoder) { e.String(id) }, true); err != nil {
		return err
	}
	c.mu.Lock()
	c.clientID = id
	c.mu.Unlock()
	return nil
}

// ClientID implements jms.Connection.
func (c *clientConn) ClientID() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.clientID
}

// CreateSession implements jms.Connection.
func (c *clientConn) CreateSession(transacted bool, ackMode jms.AckMode) (jms.Session, error) {
	if !transacted && !ackMode.Valid() {
		return nil, fmt.Errorf("%w: ack mode %d", jms.ErrInvalidArgument, ackMode)
	}
	rep, err := c.call(opCreateSession, func(e *jms.Encoder) {
		e.Bool(transacted)
		e.Byte(byte(ackMode))
	}, true, 0)
	if err != nil {
		return nil, err
	}
	id := rep.body.Uvarint()
	if err := rep.body.Err(); err != nil {
		return nil, fmt.Errorf("wire: decoding session reply: %w", err)
	}
	s := &clientSession{conn: c, transacted: transacted, ackMode: ackMode, consumers: map[*clientConsumer]struct{}{}}
	s.id.Store(id)
	c.mu.Lock()
	c.sessions[s] = struct{}{}
	c.mu.Unlock()
	return s, nil
}

// Start implements jms.Connection.
func (c *clientConn) Start() error {
	if err := c.callOK(opStart, nil, true); err != nil {
		return err
	}
	c.mu.Lock()
	c.started = true
	c.mu.Unlock()
	return nil
}

// Stop implements jms.Connection.
func (c *clientConn) Stop() error {
	if err := c.callOK(opStop, nil, true); err != nil {
		return err
	}
	c.mu.Lock()
	c.started = false
	c.mu.Unlock()
	return nil
}

// Close implements jms.Connection.
func (c *clientConn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	tr := c.tr
	c.tr = nil
	c.wakeLocked()
	c.mu.Unlock()
	if tr != nil {
		// Best effort: tell the server, then tear down locally.
		tm := time.NewTimer(time.Second)
		_, _ = roundTrip(tr, opCloseConn, nil, tm.C)
		tm.Stop()
		tr.fail()
	}
	for _, pp := range c.snapshotPipes() {
		pp.failAll(jms.ErrClosed)
	}
	return nil
}

// clientSession implements jms.Session over the wire. Its server-side
// ID is re-assigned on every reconnection; frame builders load it at
// build time so a retried call addresses the current incarnation.
type clientSession struct {
	conn       *clientConn
	transacted bool
	ackMode    jms.AckMode
	id         atomic.Uint64

	mu        sync.Mutex
	closed    bool
	txDirty   bool // transacted: work staged in the open transaction
	txBroken  bool // transacted: the open transaction died with a transport
	consumers map[*clientConsumer]struct{}
}

var _ jms.Session = (*clientSession)(nil)

// Transacted implements jms.Session.
func (s *clientSession) Transacted() bool { return s.transacted }

// AckMode implements jms.Session.
func (s *clientSession) AckMode() jms.AckMode { return s.ackMode }

func (s *clientSession) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// markDirty records transacted work staged on the server.
func (s *clientSession) markDirty() {
	if !s.transacted {
		return
	}
	s.mu.Lock()
	s.txDirty = true
	s.mu.Unlock()
}

// reestablish recreates this session (and its consumers) on a fresh
// transport, poisoning any open transaction.
func (s *clientSession) reestablish(raw func(byte, func(*jms.Encoder)) (reply, error)) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	if s.transacted && s.txDirty {
		s.txBroken = true
		s.txDirty = false
	}
	consumers := make([]*clientConsumer, 0, len(s.consumers))
	for cc := range s.consumers {
		consumers = append(consumers, cc)
	}
	s.mu.Unlock()
	rep, err := raw(opCreateSession, func(e *jms.Encoder) {
		e.Bool(s.transacted)
		e.Byte(byte(s.ackMode))
	})
	if err != nil {
		return fmt.Errorf("recreating session: %w", err)
	}
	id := rep.body.Uvarint()
	if err := rep.body.Err(); err != nil {
		return fmt.Errorf("wire: decoding session reply: %w", err)
	}
	s.id.Store(id)
	for _, cc := range consumers {
		if err := cc.reestablish(raw); err != nil {
			return err
		}
	}
	return nil
}

// CreateProducer implements jms.Session. Producers are client-side
// objects; the server creates its producer lazily on first send.
func (s *clientSession) CreateProducer(dest jms.Destination) (jms.Producer, error) {
	if s.isClosed() {
		return nil, jms.ErrClosed
	}
	return &clientProducer{sess: s, dest: dest}, nil
}

// CreateConsumer implements jms.Session.
func (s *clientSession) CreateConsumer(dest jms.Destination) (jms.Consumer, error) {
	return s.CreateConsumerWithSelector(dest, "")
}

// CreateConsumerWithSelector implements jms.Session.
func (s *clientSession) CreateConsumerWithSelector(dest jms.Destination, selectorExpr string) (jms.Consumer, error) {
	if dest == nil {
		return nil, fmt.Errorf("%w: nil destination", jms.ErrInvalidDestination)
	}
	return s.createConsumer(dest, false, "", selectorExpr)
}

// CreateDurableSubscriber implements jms.Session.
func (s *clientSession) CreateDurableSubscriber(topic jms.Topic, name string) (jms.Consumer, error) {
	return s.createConsumer(topic, true, name, "")
}

// CreateDurableSubscriberWithSelector implements jms.Session.
func (s *clientSession) CreateDurableSubscriberWithSelector(topic jms.Topic, name, selectorExpr string) (jms.Consumer, error) {
	return s.createConsumer(topic, true, name, selectorExpr)
}

func (s *clientSession) createConsumer(dest jms.Destination, durable bool, subName, selectorExpr string) (jms.Consumer, error) {
	if s.isClosed() {
		return nil, jms.ErrClosed
	}
	rep, err := s.conn.call(opCreateConsumer, func(e *jms.Encoder) {
		e.Uvarint(s.id.Load())
		e.String(dest.String())
		e.Bool(durable)
		e.String(subName)
		e.String(selectorExpr)
	}, true, 0)
	if err != nil {
		return nil, err
	}
	id := rep.body.Uvarint()
	endpoint := rep.body.String()
	if err := rep.body.Err(); err != nil {
		return nil, fmt.Errorf("wire: decoding consumer reply: %w", err)
	}
	cc := &clientConsumer{
		sess: s, dest: dest, durable: durable, subName: subName,
		selector: selectorExpr, endpoint: endpoint, done: make(chan struct{}),
	}
	cc.id.Store(id)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, jms.ErrClosed
	}
	s.consumers[cc] = struct{}{}
	s.mu.Unlock()
	return cc, nil
}

// CreateTemporaryQueue implements jms.Session. The temporary queue is
// owned by this client's server-side connection and is deleted when the
// connection closes (including a connection lost to a network fault —
// reconnection does not restore temporary queues).
func (s *clientSession) CreateTemporaryQueue() (jms.Queue, error) {
	if s.isClosed() {
		return "", jms.ErrClosed
	}
	rep, err := s.conn.call(opCreateTempQueue, func(e *jms.Encoder) { e.Uvarint(s.id.Load()) }, true, 0)
	if err != nil {
		return "", err
	}
	name := rep.body.String()
	if err := rep.body.Err(); err != nil {
		return "", fmt.Errorf("wire: decoding temp-queue reply: %w", err)
	}
	return jms.Queue(name), nil
}

// CreateBrowser implements jms.Session. Each Enumerate is one browse
// round trip; the snapshot is taken server-side.
func (s *clientSession) CreateBrowser(queue jms.Queue, selectorExpr string) (jms.Browser, error) {
	if s.isClosed() {
		return nil, jms.ErrClosed
	}
	br := &clientBrowser{sess: s, queue: queue, selector: selectorExpr}
	// Probe immediately so an invalid selector or queue fails at
	// creation, matching the in-process provider.
	if _, err := br.Enumerate(); err != nil {
		return nil, err
	}
	return br, nil
}

// clientBrowser implements jms.Browser over the wire.
type clientBrowser struct {
	sess     *clientSession
	queue    jms.Queue
	selector string

	mu     sync.Mutex
	closed bool
}

var _ jms.Browser = (*clientBrowser)(nil)

// Queue implements jms.Browser.
func (b *clientBrowser) Queue() jms.Queue { return b.queue }

// Enumerate implements jms.Browser.
func (b *clientBrowser) Enumerate() ([]*jms.Message, error) {
	b.mu.Lock()
	closed := b.closed
	b.mu.Unlock()
	if closed || b.sess.isClosed() {
		return nil, jms.ErrClosed
	}
	rep, err := b.sess.conn.call(opBrowse, func(e *jms.Encoder) {
		e.Uvarint(b.sess.id.Load())
		e.String(b.queue.Name())
		e.String(b.selector)
	}, true, 0)
	if err != nil {
		return nil, err
	}
	n := rep.body.Uvarint()
	if err := rep.body.Err(); err != nil {
		return nil, fmt.Errorf("wire: decoding browse reply: %w", err)
	}
	msgs := make([]*jms.Message, 0, n)
	for i := uint64(0); i < n; i++ {
		var m jms.Message
		m.DecodeFrom(rep.body)
		if err := rep.body.Err(); err != nil {
			return nil, fmt.Errorf("wire: decoding browsed message: %w", err)
		}
		msgs = append(msgs, &m)
	}
	return msgs, nil
}

// Close implements jms.Browser.
func (b *clientBrowser) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.closed = true
	return nil
}

// Unsubscribe implements jms.Session.
func (s *clientSession) Unsubscribe(name string) error {
	return s.conn.callOK(opUnsubscribe, func(e *jms.Encoder) {
		e.Uvarint(s.id.Load())
		e.String(name)
	}, true)
}

// Commit implements jms.Session. A commit is never retried across a
// reconnection: if the transport died after the request was sent, the
// outcome is unknown server-side, and re-issuing it would commit a
// fresh, empty transaction while reporting success for the staged work
// that was rolled back. A transaction already poisoned by a
// reconnection fails with ErrTxInterrupted.
func (s *clientSession) Commit() error {
	if !s.transacted {
		return jms.ErrNotTransacted
	}
	if s.isClosed() {
		return jms.ErrClosed
	}
	s.mu.Lock()
	if s.txBroken {
		s.txBroken = false
		s.mu.Unlock()
		return ErrTxInterrupted
	}
	s.mu.Unlock()
	err := s.conn.callOK(opCommit, func(e *jms.Encoder) { e.Uvarint(s.id.Load()) }, false)
	if err == nil {
		s.mu.Lock()
		s.txDirty = false
		s.mu.Unlock()
		return nil
	}
	// A commit that dies with its transport is never retried (a retry
	// would commit the fresh, empty server-side transaction while the
	// staged one rolled back). The connection itself recovers, so
	// surface the typed interruption instead of a generic closed error.
	if errors.Is(err, jms.ErrClosed) && s.conn.f.reconnect.Enabled && !s.conn.isClosed() {
		s.mu.Lock()
		s.txDirty, s.txBroken = false, false
		s.mu.Unlock()
		return fmt.Errorf("%w (%v)", ErrTxInterrupted, err)
	}
	return err
}

// Rollback implements jms.Session. Unlike Commit, rollback is safe to
// retry: after a reconnection the fresh server-side transaction is
// empty, and rolling it back is the outcome the caller asked for.
func (s *clientSession) Rollback() error {
	if !s.transacted {
		return jms.ErrNotTransacted
	}
	if s.isClosed() {
		return jms.ErrClosed
	}
	err := s.conn.callOK(opRollback, func(e *jms.Encoder) { e.Uvarint(s.id.Load()) }, true)
	if err == nil {
		s.mu.Lock()
		s.txDirty = false
		s.txBroken = false
		s.mu.Unlock()
	}
	return err
}

// Acknowledge implements jms.Session. Acknowledgements ride the
// connection's ack batcher: concurrent calls from the sessions
// multiplexed on this connection coalesce into one opAckBatch round
// trip, and the call blocks until that round trip settles (AckClient
// semantics are untouched — when Acknowledge returns, the server has
// acked). Retrying an ack after a reconnection is safe: the old
// session's unacked set died with it and those messages are
// redelivered with the JMSRedelivered flag, which the conformance
// model exempts from the no-duplicates property.
func (s *clientSession) Acknowledge() error {
	if s.transacted {
		return jms.ErrTransacted
	}
	if s.isClosed() {
		return jms.ErrClosed
	}
	return s.conn.acks.acknowledge(s)
}

// Recover implements jms.Session.
func (s *clientSession) Recover() error {
	if s.transacted {
		return jms.ErrTransacted
	}
	return s.sessionOp(opRecover)
}

func (s *clientSession) sessionOp(op byte) error {
	if s.isClosed() {
		return jms.ErrClosed
	}
	return s.conn.callOK(op, func(e *jms.Encoder) { e.Uvarint(s.id.Load()) }, true)
}

// Close implements jms.Session.
func (s *clientSession) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	s.conn.mu.Lock()
	delete(s.conn.sessions, s)
	s.conn.mu.Unlock()
	return s.conn.callOK(opCloseSession, func(e *jms.Encoder) { e.Uvarint(s.id.Load()) }, true)
}

// clientProducer implements jms.Producer over the wire.
type clientProducer struct {
	sess *clientSession
	dest jms.Destination

	mu     sync.Mutex
	closed bool
	pipe   *clientPipe // lazily created when pipelining is enabled
}

var (
	_ jms.Producer      = (*clientProducer)(nil)
	_ jms.AsyncProducer = (*clientProducer)(nil)
)

// Destination implements jms.Producer.
func (p *clientProducer) Destination() jms.Destination { return p.dest }

// pipelined reports whether this producer's sends flow through a
// credit-windowed pipe (factory opted in; transacted sessions stay on
// the classic path — their sends are staged server-side and carry no
// idempotency tokens, so windowed replay cannot protect them).
func (p *clientProducer) pipelined() bool {
	return p.sess.conn.f.pipeWindow > 0 && !p.sess.transacted && p.dest != nil
}

// getPipe lazily creates the producer's pipe.
func (p *clientProducer) getPipe() (*clientPipe, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, jms.ErrClosed
	}
	if p.pipe == nil {
		p.pipe = &clientPipe{
			sess:     p.sess,
			dest:     p.dest,
			destStr:  p.dest.String(),
			inflight: map[uint64]*pipeInflight{},
		}
	}
	return p.pipe, nil
}

// SendAsync implements jms.AsyncProducer. With pipelining enabled the
// send is streamed inside the credit window and the returned
// completion resolves when the server settles it; otherwise it
// degenerates to the blocking send.
func (p *clientProducer) SendAsync(msg *jms.Message, opts jms.SendOptions) (jms.Completion, error) {
	if p.dest == nil {
		return nil, fmt.Errorf("%w: unidentified producer requires SendTo", jms.ErrInvalidDestination)
	}
	if !p.pipelined() {
		if err := p.SendTo(p.dest, msg, opts); err != nil {
			return nil, err
		}
		return jms.CompletedSend, nil
	}
	return p.sendPipelined(msg, opts)
}

// sendPipelined stages one send on the producer's pipe.
func (p *clientProducer) sendPipelined(msg *jms.Message, opts jms.SendOptions) (jms.Completion, error) {
	if p.sess.isClosed() {
		return nil, jms.ErrClosed
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	pipe, err := p.getPipe()
	if err != nil {
		return nil, err
	}
	return pipe.send(msg, opts)
}

// Send implements jms.Producer. With pipelining enabled it is exactly
// a window-of-1 use of the pipe: stage the send, wait for its
// completion.
func (p *clientProducer) Send(msg *jms.Message, opts jms.SendOptions) error {
	if p.dest == nil {
		return fmt.Errorf("%w: unidentified producer requires SendTo", jms.ErrInvalidDestination)
	}
	if p.pipelined() {
		comp, err := p.sendPipelined(msg, opts)
		if err != nil {
			return err
		}
		return comp()
	}
	return p.SendTo(p.dest, msg, opts)
}

// SendTo implements jms.Producer. Non-transacted sends carry a
// per-send idempotency token: if the reply is lost to a connection
// reset and the send retried on a fresh transport, the server
// recognises the token and returns the original message's stamps
// instead of enqueuing a duplicate — exactly-once across resets.
// Transacted sends carry no token: their staging died with the old
// transaction, so the retry must genuinely re-send.
func (p *clientProducer) SendTo(dest jms.Destination, msg *jms.Message, opts jms.SendOptions) error {
	p.mu.Lock()
	closed := p.closed
	p.mu.Unlock()
	if closed || p.sess.isClosed() {
		return jms.ErrClosed
	}
	if dest == nil {
		return fmt.Errorf("%w: nil destination", jms.ErrInvalidDestination)
	}
	if err := opts.Validate(); err != nil {
		return err
	}
	s := p.sess
	// The trace context is stamped once, here, before the request is
	// built: the reconnect-retry loop inside call re-encodes the same
	// message object, so a retried send reuses — never re-mints — its
	// trace ID, keeping retries and the dedup-replayed original under
	// one trace.
	tid := obs.StampTrace(msg)
	rpcStart := time.Now()
	var token string
	if !s.transacted {
		token = s.conn.uid + "/" + strconv.FormatUint(s.conn.sendSeq.Add(1), 36)
	}
	rep, err := s.conn.call(opSend, func(e *jms.Encoder) {
		e.Uvarint(s.id.Load())
		e.String(token)
		e.String(dest.String())
		encodeSendOptions(e, opts)
		msg.EncodeTo(e)
	}, true, 0)
	if err != nil {
		return err
	}
	// Dirty only after the reply: work is staged in whichever server-
	// side transaction actually executed the send. Marking before the
	// call would let a concurrent reestablish poison a session whose
	// send had not staged anything yet (it retries into the fresh
	// transaction and commits there).
	s.markDirty()
	msg.ID = rep.body.String()
	msg.Timestamp = rep.body.Time()
	msg.Expiration = rep.body.Time()
	msg.Destination = dest
	msg.Mode = opts.Mode
	msg.Priority = opts.Priority
	if err := rep.body.Err(); err != nil {
		return fmt.Errorf("wire: decoding send reply: %w", err)
	}
	if rec := s.conn.f.spans; rec != nil {
		rec.RecordHop(obs.Span{
			TraceID:  tid,
			Hop:      obs.MessageTraceHop(msg),
			Kind:     obs.KindSendRPC,
			Node:     "wire-client",
			MsgID:    msg.ID,
			Endpoint: dest.String(),
			SentAt:   rpcStart,
			EndedAt:  time.Now(),
		})
	}
	return nil
}

// Close implements jms.Producer.
func (p *clientProducer) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.closed = true
	return nil
}

// clientConsumer implements jms.Consumer over the wire using pull-mode
// receive RPCs: each Receive is one round trip (chunked at receiveCap
// for long or indefinite waits), which keeps JMS acknowledgement and
// expiry semantics exact at the cost of a round trip per message. The
// server-side consumer ID is re-assigned on reconnection.
type clientConsumer struct {
	sess     *clientSession
	dest     jms.Destination
	durable  bool
	subName  string
	selector string
	id       atomic.Uint64

	mu         sync.Mutex
	endpoint   string
	listenStop chan struct{}
	listenerWG sync.WaitGroup
	closed     bool
	lost       bool // unrecoverable across reconnect (temporary destination)
	done       chan struct{}
}

var _ jms.Consumer = (*clientConsumer)(nil)

// Destination implements jms.Consumer.
func (c *clientConsumer) Destination() jms.Destination { return c.dest }

// EndpointID implements jms.Consumer.
func (c *clientConsumer) EndpointID() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.endpoint
}

func (c *clientConsumer) isClosed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

// unavailable reports why the consumer cannot serve (nil if it can).
func (c *clientConsumer) unavailable() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return jms.ErrClosed
	}
	if c.lost {
		return fmt.Errorf("wire: consumer on temporary destination %s did not survive reconnect: %w", c.dest, jms.ErrClosed)
	}
	return nil
}

// reestablish recreates the server-side consumer after a reconnection.
// Consumers of temporary queues cannot be restored — the queue was
// owned by the dead server-side connection — and are marked lost so
// their next use fails cleanly.
func (c *clientConsumer) reestablish(raw func(byte, func(*jms.Encoder)) (reply, error)) error {
	c.mu.Lock()
	if c.closed || c.lost {
		c.mu.Unlock()
		return nil
	}
	if strings.HasPrefix(c.dest.Name(), "TEMP.") {
		c.lost = true
		c.mu.Unlock()
		return nil
	}
	c.mu.Unlock()
	rep, err := raw(opCreateConsumer, func(e *jms.Encoder) {
		e.Uvarint(c.sess.id.Load())
		e.String(c.dest.String())
		e.Bool(c.durable)
		e.String(c.subName)
		e.String(c.selector)
	})
	if err != nil {
		return fmt.Errorf("recreating consumer on %s: %w", c.dest, err)
	}
	id := rep.body.Uvarint()
	endpoint := rep.body.String()
	if err := rep.body.Err(); err != nil {
		return fmt.Errorf("wire: decoding consumer reply: %w", err)
	}
	c.id.Store(id)
	c.mu.Lock()
	c.endpoint = endpoint
	c.mu.Unlock()
	return nil
}

// Receive implements jms.Consumer.
func (c *clientConsumer) Receive(timeout time.Duration) (*jms.Message, error) {
	indefinite := timeout <= 0
	deadline := time.Now().Add(timeout)
	for {
		if err := c.unavailable(); err != nil {
			return nil, err
		}
		chunk := receiveCap
		if !indefinite {
			remaining := time.Until(deadline)
			if remaining <= 0 {
				return nil, nil
			}
			if remaining < chunk {
				chunk = remaining
			}
		}
		msg, ok, err := c.receiveOnce(chunk, false)
		if err != nil {
			return nil, err
		}
		if ok {
			return msg, nil
		}
		if !indefinite && !time.Now().Before(deadline) {
			return nil, nil
		}
	}
}

// ReceiveNoWait implements jms.Consumer.
func (c *clientConsumer) ReceiveNoWait() (*jms.Message, error) {
	if err := c.unavailable(); err != nil {
		return nil, err
	}
	msg, _, err := c.receiveOnce(0, true)
	return msg, err
}

func (c *clientConsumer) receiveOnce(timeout time.Duration, noWait bool) (*jms.Message, bool, error) {
	// Round the wire timeout up: rounding a sub-millisecond remainder
	// down to zero would read as "no timeout" on the server.
	timeoutMs := int64((timeout + time.Millisecond - 1) / time.Millisecond)
	// The server legitimately holds the reply for up to the requested
	// wait, so that wait is added on top of the call timeout.
	rep, err := c.sess.conn.call(opReceive, func(e *jms.Encoder) {
		e.Uvarint(c.id.Load())
		e.Varint(timeoutMs)
		e.Bool(noWait)
	}, true, timeout)
	if err != nil {
		return nil, false, err
	}
	has := rep.body.Bool()
	if !has {
		if err := rep.body.Err(); err != nil {
			return nil, false, fmt.Errorf("wire: decoding receive reply: %w", err)
		}
		return nil, false, nil
	}
	var msg jms.Message
	msg.DecodeFrom(rep.body)
	if err := rep.body.Err(); err != nil {
		return nil, false, fmt.Errorf("wire: decoding received message: %w", err)
	}
	c.sess.markDirty()
	return &msg, true, nil
}

// SetListener implements jms.Consumer with a client-side dispatch
// goroutine.
func (c *clientConsumer) SetListener(l jms.Listener) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return jms.ErrClosed
	}
	if c.listenStop != nil {
		stop := c.listenStop
		c.listenStop = nil
		c.mu.Unlock()
		close(stop)
		c.listenerWG.Wait()
		c.mu.Lock()
	}
	if l == nil {
		c.mu.Unlock()
		return nil
	}
	stop := make(chan struct{})
	c.listenStop = stop
	c.listenerWG.Add(1)
	c.mu.Unlock()
	go func() {
		defer c.listenerWG.Done()
		for {
			select {
			case <-stop:
				return
			case <-c.done:
				return
			default:
			}
			msg, err := c.Receive(100 * time.Millisecond)
			if err != nil {
				return
			}
			if msg != nil {
				l(msg)
			}
		}
	}()
	return nil
}

// Close implements jms.Consumer.
func (c *clientConsumer) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	lost := c.lost
	close(c.done)
	stop := c.listenStop
	c.listenStop = nil
	c.mu.Unlock()
	if stop != nil {
		close(stop)
	}
	c.listenerWG.Wait()
	c.sess.mu.Lock()
	delete(c.sess.consumers, c)
	c.sess.mu.Unlock()
	if lost {
		// The server-side consumer died with the old connection.
		return nil
	}
	return c.sess.conn.callOK(opCloseConsumer, func(e *jms.Encoder) { e.Uvarint(c.id.Load()) }, true)
}
