package wire

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"jmsharness/internal/jms"
)

// Factory implements jms.ConnectionFactory over the wire protocol: each
// CreateConnection dials one TCP connection to the broker server. It is
// the client half of the protocol bridge — to the harness it is
// indistinguishable from an in-process provider.
type Factory struct {
	addr        string
	dialTimeout time.Duration
}

// NewFactory returns a factory connecting to the broker server at addr.
func NewFactory(addr string) *Factory {
	return &Factory{addr: addr, dialTimeout: 5 * time.Second}
}

var _ jms.ConnectionFactory = (*Factory)(nil)

// CreateConnection implements jms.ConnectionFactory.
func (f *Factory) CreateConnection() (jms.Connection, error) {
	sock, err := net.DialTimeout("tcp", f.addr, f.dialTimeout)
	if err != nil {
		return nil, fmt.Errorf("wire: dialing %s: %w", f.addr, err)
	}
	c := &clientConn{
		sock:    sock,
		fw:      newFrameWriter(sock),
		pending: map[uint64]chan reply{},
		done:    make(chan struct{}),
	}
	go c.readLoop()
	return c, nil
}

// mapError rehydrates well-known provider errors from their wire string
// form so errors.Is works across the protocol boundary.
func mapError(msg string) error {
	known := []error{
		jms.ErrClosed, jms.ErrNotTransacted, jms.ErrTransacted,
		jms.ErrClientIDInUse, jms.ErrNoClientID, jms.ErrDurableActive,
		jms.ErrUnknownSubscription, jms.ErrInvalidDestination,
		jms.ErrInvalidSelector, jms.ErrInvalidArgument,
	}
	for _, e := range known {
		if strings.Contains(msg, e.Error()) {
			return fmt.Errorf("%w (remote: %s)", e, msg)
		}
	}
	return errors.New(msg)
}

// clientConn implements jms.Connection over one TCP socket.
type clientConn struct {
	sock net.Conn
	fw   *frameWriter // serialises request frames onto sock

	mu       sync.Mutex
	nextReq  uint64
	pending  map[uint64]chan reply
	clientID string
	closed   bool
	connErr  error
	done     chan struct{}
}

var _ jms.Connection = (*clientConn)(nil)

// readLoop dispatches server replies to their waiting callers.
func (c *clientConn) readLoop() {
	for {
		payload, err := ReadFrame(c.sock)
		if err != nil {
			c.failAll(err)
			return
		}
		rep, err := decodeReply(payload)
		if err != nil {
			c.failAll(err)
			return
		}
		c.mu.Lock()
		ch, ok := c.pending[rep.reqID]
		delete(c.pending, rep.reqID)
		c.mu.Unlock()
		if ok {
			ch <- rep
		}
	}
}

// failAll terminates every in-flight call after a connection failure.
func (c *clientConn) failAll(err error) {
	c.mu.Lock()
	if c.connErr == nil {
		c.connErr = err
	}
	pending := c.pending
	c.pending = map[uint64]chan reply{}
	alreadyClosed := c.closed
	c.closed = true
	c.mu.Unlock()
	if !alreadyClosed {
		close(c.done)
		_ = c.sock.Close()
	}
	for _, ch := range pending {
		ch <- reply{err: jms.ErrClosed.Error()}
	}
}

// call performs one request/reply round trip.
func (c *clientConn) call(op byte, build func(*jms.Encoder)) (reply, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return reply{}, jms.ErrClosed
	}
	c.nextReq++
	reqID := c.nextReq
	ch := make(chan reply, 1)
	c.pending[reqID] = ch
	c.mu.Unlock()

	if err := c.fw.writeRequest(op, reqID, build); err != nil {
		c.mu.Lock()
		delete(c.pending, reqID)
		c.mu.Unlock()
		c.failAll(err)
		return reply{}, fmt.Errorf("wire: %w", jms.ErrClosed)
	}
	rep := <-ch
	if rep.err != "" {
		return reply{}, mapError(rep.err)
	}
	return rep, nil
}

// callOK performs a round trip that carries no reply body.
func (c *clientConn) callOK(op byte, build func(*jms.Encoder)) error {
	_, err := c.call(op, build)
	return err
}

// SetClientID implements jms.Connection.
func (c *clientConn) SetClientID(id string) error {
	if err := c.callOK(opSetClientID, func(e *jms.Encoder) { e.String(id) }); err != nil {
		return err
	}
	c.mu.Lock()
	c.clientID = id
	c.mu.Unlock()
	return nil
}

// ClientID implements jms.Connection.
func (c *clientConn) ClientID() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.clientID
}

// CreateSession implements jms.Connection.
func (c *clientConn) CreateSession(transacted bool, ackMode jms.AckMode) (jms.Session, error) {
	if !transacted && !ackMode.Valid() {
		return nil, fmt.Errorf("%w: ack mode %d", jms.ErrInvalidArgument, ackMode)
	}
	rep, err := c.call(opCreateSession, func(e *jms.Encoder) {
		e.Bool(transacted)
		e.Byte(byte(ackMode))
	})
	if err != nil {
		return nil, err
	}
	id := rep.body.Uvarint()
	if err := rep.body.Err(); err != nil {
		return nil, fmt.Errorf("wire: decoding session reply: %w", err)
	}
	return &clientSession{conn: c, id: id, transacted: transacted, ackMode: ackMode}, nil
}

// Start implements jms.Connection.
func (c *clientConn) Start() error { return c.callOK(opStart, nil) }

// Stop implements jms.Connection.
func (c *clientConn) Stop() error { return c.callOK(opStop, nil) }

// Close implements jms.Connection.
func (c *clientConn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.mu.Unlock()
	// Best effort: tell the server, then tear down locally.
	_ = c.callOK(opCloseConn, nil)
	c.failAll(jms.ErrClosed)
	return nil
}

// clientSession implements jms.Session over the wire.
type clientSession struct {
	conn       *clientConn
	id         uint64
	transacted bool
	ackMode    jms.AckMode

	mu     sync.Mutex
	closed bool
}

var _ jms.Session = (*clientSession)(nil)

// Transacted implements jms.Session.
func (s *clientSession) Transacted() bool { return s.transacted }

// AckMode implements jms.Session.
func (s *clientSession) AckMode() jms.AckMode { return s.ackMode }

func (s *clientSession) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// CreateProducer implements jms.Session. Producers are client-side
// objects; the server creates its producer lazily on first send.
func (s *clientSession) CreateProducer(dest jms.Destination) (jms.Producer, error) {
	if s.isClosed() {
		return nil, jms.ErrClosed
	}
	return &clientProducer{sess: s, dest: dest}, nil
}

// CreateConsumer implements jms.Session.
func (s *clientSession) CreateConsumer(dest jms.Destination) (jms.Consumer, error) {
	return s.CreateConsumerWithSelector(dest, "")
}

// CreateConsumerWithSelector implements jms.Session.
func (s *clientSession) CreateConsumerWithSelector(dest jms.Destination, selectorExpr string) (jms.Consumer, error) {
	if dest == nil {
		return nil, fmt.Errorf("%w: nil destination", jms.ErrInvalidDestination)
	}
	return s.createConsumer(dest, false, "", selectorExpr)
}

// CreateDurableSubscriber implements jms.Session.
func (s *clientSession) CreateDurableSubscriber(topic jms.Topic, name string) (jms.Consumer, error) {
	return s.createConsumer(topic, true, name, "")
}

// CreateDurableSubscriberWithSelector implements jms.Session.
func (s *clientSession) CreateDurableSubscriberWithSelector(topic jms.Topic, name, selectorExpr string) (jms.Consumer, error) {
	return s.createConsumer(topic, true, name, selectorExpr)
}

func (s *clientSession) createConsumer(dest jms.Destination, durable bool, subName, selectorExpr string) (jms.Consumer, error) {
	if s.isClosed() {
		return nil, jms.ErrClosed
	}
	rep, err := s.conn.call(opCreateConsumer, func(e *jms.Encoder) {
		e.Uvarint(s.id)
		e.String(dest.String())
		e.Bool(durable)
		e.String(subName)
		e.String(selectorExpr)
	})
	if err != nil {
		return nil, err
	}
	id := rep.body.Uvarint()
	endpoint := rep.body.String()
	if err := rep.body.Err(); err != nil {
		return nil, fmt.Errorf("wire: decoding consumer reply: %w", err)
	}
	return &clientConsumer{sess: s, id: id, dest: dest, endpoint: endpoint, done: make(chan struct{})}, nil
}

// CreateTemporaryQueue implements jms.Session. The temporary queue is
// owned by this client's server-side connection and is deleted when the
// connection closes.
func (s *clientSession) CreateTemporaryQueue() (jms.Queue, error) {
	if s.isClosed() {
		return "", jms.ErrClosed
	}
	rep, err := s.conn.call(opCreateTempQueue, func(e *jms.Encoder) { e.Uvarint(s.id) })
	if err != nil {
		return "", err
	}
	name := rep.body.String()
	if err := rep.body.Err(); err != nil {
		return "", fmt.Errorf("wire: decoding temp-queue reply: %w", err)
	}
	return jms.Queue(name), nil
}

// CreateBrowser implements jms.Session. Each Enumerate is one browse
// round trip; the snapshot is taken server-side.
func (s *clientSession) CreateBrowser(queue jms.Queue, selectorExpr string) (jms.Browser, error) {
	if s.isClosed() {
		return nil, jms.ErrClosed
	}
	br := &clientBrowser{sess: s, queue: queue, selector: selectorExpr}
	// Probe immediately so an invalid selector or queue fails at
	// creation, matching the in-process provider.
	if _, err := br.Enumerate(); err != nil {
		return nil, err
	}
	return br, nil
}

// clientBrowser implements jms.Browser over the wire.
type clientBrowser struct {
	sess     *clientSession
	queue    jms.Queue
	selector string

	mu     sync.Mutex
	closed bool
}

var _ jms.Browser = (*clientBrowser)(nil)

// Queue implements jms.Browser.
func (b *clientBrowser) Queue() jms.Queue { return b.queue }

// Enumerate implements jms.Browser.
func (b *clientBrowser) Enumerate() ([]*jms.Message, error) {
	b.mu.Lock()
	closed := b.closed
	b.mu.Unlock()
	if closed || b.sess.isClosed() {
		return nil, jms.ErrClosed
	}
	rep, err := b.sess.conn.call(opBrowse, func(e *jms.Encoder) {
		e.Uvarint(b.sess.id)
		e.String(b.queue.Name())
		e.String(b.selector)
	})
	if err != nil {
		return nil, err
	}
	n := rep.body.Uvarint()
	if err := rep.body.Err(); err != nil {
		return nil, fmt.Errorf("wire: decoding browse reply: %w", err)
	}
	msgs := make([]*jms.Message, 0, n)
	for i := uint64(0); i < n; i++ {
		var m jms.Message
		m.DecodeFrom(rep.body)
		if err := rep.body.Err(); err != nil {
			return nil, fmt.Errorf("wire: decoding browsed message: %w", err)
		}
		msgs = append(msgs, &m)
	}
	return msgs, nil
}

// Close implements jms.Browser.
func (b *clientBrowser) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.closed = true
	return nil
}

// Unsubscribe implements jms.Session.
func (s *clientSession) Unsubscribe(name string) error {
	return s.conn.callOK(opUnsubscribe, func(e *jms.Encoder) {
		e.Uvarint(s.id)
		e.String(name)
	})
}

// Commit implements jms.Session.
func (s *clientSession) Commit() error {
	if !s.transacted {
		return jms.ErrNotTransacted
	}
	return s.sessionOp(opCommit)
}

// Rollback implements jms.Session.
func (s *clientSession) Rollback() error {
	if !s.transacted {
		return jms.ErrNotTransacted
	}
	return s.sessionOp(opRollback)
}

// Acknowledge implements jms.Session.
func (s *clientSession) Acknowledge() error {
	if s.transacted {
		return jms.ErrTransacted
	}
	return s.sessionOp(opAck)
}

// Recover implements jms.Session.
func (s *clientSession) Recover() error {
	if s.transacted {
		return jms.ErrTransacted
	}
	return s.sessionOp(opRecover)
}

func (s *clientSession) sessionOp(op byte) error {
	if s.isClosed() {
		return jms.ErrClosed
	}
	return s.conn.callOK(op, func(e *jms.Encoder) { e.Uvarint(s.id) })
}

// Close implements jms.Session.
func (s *clientSession) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	return s.conn.callOK(opCloseSession, func(e *jms.Encoder) { e.Uvarint(s.id) })
}

// clientProducer implements jms.Producer over the wire.
type clientProducer struct {
	sess *clientSession
	dest jms.Destination

	mu     sync.Mutex
	closed bool
}

var _ jms.Producer = (*clientProducer)(nil)

// Destination implements jms.Producer.
func (p *clientProducer) Destination() jms.Destination { return p.dest }

// Send implements jms.Producer.
func (p *clientProducer) Send(msg *jms.Message, opts jms.SendOptions) error {
	if p.dest == nil {
		return fmt.Errorf("%w: unidentified producer requires SendTo", jms.ErrInvalidDestination)
	}
	return p.SendTo(p.dest, msg, opts)
}

// SendTo implements jms.Producer.
func (p *clientProducer) SendTo(dest jms.Destination, msg *jms.Message, opts jms.SendOptions) error {
	p.mu.Lock()
	closed := p.closed
	p.mu.Unlock()
	if closed || p.sess.isClosed() {
		return jms.ErrClosed
	}
	if dest == nil {
		return fmt.Errorf("%w: nil destination", jms.ErrInvalidDestination)
	}
	if err := opts.Validate(); err != nil {
		return err
	}
	rep, err := p.sess.conn.call(opSend, func(e *jms.Encoder) {
		e.Uvarint(p.sess.id)
		e.String(dest.String())
		encodeSendOptions(e, opts)
		msg.EncodeTo(e)
	})
	if err != nil {
		return err
	}
	msg.ID = rep.body.String()
	msg.Timestamp = rep.body.Time()
	msg.Expiration = rep.body.Time()
	msg.Destination = dest
	msg.Mode = opts.Mode
	msg.Priority = opts.Priority
	if err := rep.body.Err(); err != nil {
		return fmt.Errorf("wire: decoding send reply: %w", err)
	}
	return nil
}

// Close implements jms.Producer.
func (p *clientProducer) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.closed = true
	return nil
}

// clientConsumer implements jms.Consumer over the wire using pull-mode
// receive RPCs: each Receive is one round trip (chunked at receiveCap
// for long or indefinite waits), which keeps JMS acknowledgement and
// expiry semantics exact at the cost of a round trip per message.
type clientConsumer struct {
	sess     *clientSession
	id       uint64
	dest     jms.Destination
	endpoint string

	mu         sync.Mutex
	listenStop chan struct{}
	listenerWG sync.WaitGroup
	closed     bool
	done       chan struct{}
}

var _ jms.Consumer = (*clientConsumer)(nil)

// Destination implements jms.Consumer.
func (c *clientConsumer) Destination() jms.Destination { return c.dest }

// EndpointID implements jms.Consumer.
func (c *clientConsumer) EndpointID() string { return c.endpoint }

func (c *clientConsumer) isClosed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

// Receive implements jms.Consumer.
func (c *clientConsumer) Receive(timeout time.Duration) (*jms.Message, error) {
	indefinite := timeout <= 0
	deadline := time.Now().Add(timeout)
	for {
		if c.isClosed() {
			return nil, jms.ErrClosed
		}
		chunk := receiveCap
		if !indefinite {
			remaining := time.Until(deadline)
			if remaining <= 0 {
				return nil, nil
			}
			if remaining < chunk {
				chunk = remaining
			}
		}
		msg, ok, err := c.receiveOnce(chunk, false)
		if err != nil {
			return nil, err
		}
		if ok {
			return msg, nil
		}
		if !indefinite && !time.Now().Before(deadline) {
			return nil, nil
		}
	}
}

// ReceiveNoWait implements jms.Consumer.
func (c *clientConsumer) ReceiveNoWait() (*jms.Message, error) {
	if c.isClosed() {
		return nil, jms.ErrClosed
	}
	msg, _, err := c.receiveOnce(0, true)
	return msg, err
}

func (c *clientConsumer) receiveOnce(timeout time.Duration, noWait bool) (*jms.Message, bool, error) {
	// Round the wire timeout up: rounding a sub-millisecond remainder
	// down to zero would read as "no timeout" on the server.
	timeoutMs := int64((timeout + time.Millisecond - 1) / time.Millisecond)
	rep, err := c.sess.conn.call(opReceive, func(e *jms.Encoder) {
		e.Uvarint(c.id)
		e.Varint(timeoutMs)
		e.Bool(noWait)
	})
	if err != nil {
		return nil, false, err
	}
	has := rep.body.Bool()
	if !has {
		if err := rep.body.Err(); err != nil {
			return nil, false, fmt.Errorf("wire: decoding receive reply: %w", err)
		}
		return nil, false, nil
	}
	var msg jms.Message
	msg.DecodeFrom(rep.body)
	if err := rep.body.Err(); err != nil {
		return nil, false, fmt.Errorf("wire: decoding received message: %w", err)
	}
	return &msg, true, nil
}

// SetListener implements jms.Consumer with a client-side dispatch
// goroutine.
func (c *clientConsumer) SetListener(l jms.Listener) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return jms.ErrClosed
	}
	if c.listenStop != nil {
		stop := c.listenStop
		c.listenStop = nil
		c.mu.Unlock()
		close(stop)
		c.listenerWG.Wait()
		c.mu.Lock()
	}
	if l == nil {
		c.mu.Unlock()
		return nil
	}
	stop := make(chan struct{})
	c.listenStop = stop
	c.listenerWG.Add(1)
	c.mu.Unlock()
	go func() {
		defer c.listenerWG.Done()
		for {
			select {
			case <-stop:
				return
			case <-c.done:
				return
			default:
			}
			msg, err := c.Receive(100 * time.Millisecond)
			if err != nil {
				return
			}
			if msg != nil {
				l(msg)
			}
		}
	}()
	return nil
}

// Close implements jms.Consumer.
func (c *clientConsumer) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	close(c.done)
	stop := c.listenStop
	c.listenStop = nil
	c.mu.Unlock()
	if stop != nil {
		close(stop)
	}
	c.listenerWG.Wait()
	return c.sess.conn.callOK(opCloseConsumer, func(e *jms.Encoder) { e.Uvarint(c.id) })
}
