package wire

import (
	"errors"
	"runtime"
	"testing"
	"time"

	"jmsharness/internal/broker"
	"jmsharness/internal/jms"
)

// TestWireServerDeathMidStream kills the wire server while a client is
// blocked in Receive and mid-way through a send workload: every blocked
// or subsequent call must return a clean error — no hang, no panic —
// and the client must not leak its reader/dispatcher goroutines.
func TestWireServerDeathMidStream(t *testing.T) {
	before := runtime.NumGoroutine()

	b, err := broker.New(broker.Options{Name: "doomed"})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	srv, err := NewServer(b, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	factory := NewFactory(srv.Addr())

	conn, err := factory.CreateConnection()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Start(); err != nil {
		t.Fatal(err)
	}
	sess, err := conn.CreateSession(false, jms.AckAuto)
	if err != nil {
		t.Fatal(err)
	}
	p, err := sess.CreateProducer(jms.Queue("doomed.q"))
	if err != nil {
		t.Fatal(err)
	}
	c, err := sess.CreateConsumer(jms.Queue("doomed.idle"))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Send(jms.NewTextMessage("pre-crash"), jms.DefaultSendOptions()); err != nil {
		t.Fatal(err)
	}

	// Park a consumer in a long Receive, then kill the server under it.
	recvErr := make(chan error, 1)
	go func() {
		_, err := c.Receive(30 * time.Second)
		recvErr <- err
	}()
	time.Sleep(50 * time.Millisecond)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	select {
	case err := <-recvErr:
		if err == nil {
			t.Error("blocked Receive returned a message from a dead server")
		} else if !errors.Is(err, jms.ErrClosed) {
			t.Logf("blocked Receive returned non-ErrClosed error (acceptable): %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocked Receive did not unblock after server death")
	}

	// Every subsequent operation errors cleanly and promptly.
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := p.Send(jms.NewTextMessage("post-crash"), jms.DefaultSendOptions()); err == nil {
			t.Error("send after server death succeeded")
		}
		if _, err := sess.CreateConsumer(jms.Queue("doomed.late")); err == nil {
			t.Error("create consumer after server death succeeded")
		}
		if err := conn.Close(); err != nil {
			t.Logf("close after server death: %v", err)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("post-death operations hung")
	}

	// The client's background goroutines must wind down once the
	// connection is gone; allow the runtime a moment to reap them.
	deadline := time.Now().Add(3 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutine leak after server death: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
