package wire

import (
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"jmsharness/internal/broker"
	"jmsharness/internal/chaos"
	"jmsharness/internal/jms"
)

// startProxiedServer brings up broker + wire server + chaos proxy and
// returns the proxy, a reconnect-enabled factory dialing through it,
// and an idempotent teardown (also registered as a test cleanup, for
// tests that need everything down before a goroutine-leak check).
func startProxiedServer(t *testing.T) (*chaos.Proxy, *Factory, func()) {
	t.Helper()
	b, err := broker.New(broker.Options{Name: "chaotic"})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(b, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	proxy, err := chaos.New(chaos.Options{Target: srv.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	teardown := sync.OnceFunc(func() {
		_ = proxy.Close()
		_ = srv.Close()
		_ = b.Close()
	})
	t.Cleanup(teardown)
	f := NewFactory(proxy.Addr()).
		WithCallTimeout(5 * time.Second).
		WithReconnect(ReconnectPolicy{Enabled: true, Seed: 42})
	return proxy, f, teardown
}

// TestReconnectSurvivesReset resets every TCP connection mid-workload:
// with reconnection on, client-acknowledge consumption, and persistent
// delivery, every message sent must still arrive — duplicates are
// allowed only when flagged Redelivered, exactly the model exemption.
func TestReconnectSurvivesReset(t *testing.T) {
	proxy, f, _ := startProxiedServer(t)
	conn, err := f.CreateConnection()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Start(); err != nil {
		t.Fatal(err)
	}
	sess, err := conn.CreateSession(false, jms.AckClient)
	if err != nil {
		t.Fatal(err)
	}
	q := jms.Queue("reset.q")
	p, err := sess.CreateProducer(q)
	if err != nil {
		t.Fatal(err)
	}
	c, err := sess.CreateConsumer(q)
	if err != nil {
		t.Fatal(err)
	}

	const total = 40
	opts := jms.DefaultSendOptions()
	opts.Mode = jms.Persistent
	for i := 0; i < total; i++ {
		if err := p.Send(jms.NewTextMessage(fmt.Sprintf("m%d", i)), opts); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
		if i == total/2 {
			proxy.ResetAll()
		}
	}
	seen := map[string]bool{}
	for len(seen) < total {
		msg, err := c.Receive(5 * time.Second)
		if err != nil {
			t.Fatalf("receive after %d/%d: %v", len(seen), total, err)
		}
		if msg == nil {
			t.Fatalf("receive timed out after %d/%d", len(seen), total)
		}
		body := string(msg.Body.(jms.TextBody))
		if seen[body] && !msg.Redelivered {
			t.Fatalf("duplicate %q without Redelivered flag", body)
		}
		seen[body] = true
		if err := sess.Acknowledge(); err != nil {
			t.Fatalf("ack: %v", err)
		}
	}
	if f.Reconnects() < 1 {
		t.Errorf("Reconnects() = %d, want >= 1", f.Reconnects())
	}
}

// TestReconnectDuringActiveConsumption runs concurrent producer and
// consumer goroutines through repeated connection resets (run under
// -race in CI): every successfully-sent message must be received, and
// the client's background goroutines must not leak.
func TestReconnectDuringActiveConsumption(t *testing.T) {
	before := runtime.NumGoroutine()

	var teardown func()
	func() {
		var proxy *chaos.Proxy
		var f *Factory
		proxy, f, teardown = startProxiedServer(t)
		conn, err := f.CreateConnection()
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		if err := conn.Start(); err != nil {
			t.Fatal(err)
		}
		prodSess, err := conn.CreateSession(false, jms.AckAuto)
		if err != nil {
			t.Fatal(err)
		}
		consSess, err := conn.CreateSession(false, jms.AckClient)
		if err != nil {
			t.Fatal(err)
		}
		q := jms.Queue("churn.q")
		p, err := prodSess.CreateProducer(q)
		if err != nil {
			t.Fatal(err)
		}
		c, err := consSess.CreateConsumer(q)
		if err != nil {
			t.Fatal(err)
		}

		const total = 60
		opts := jms.DefaultSendOptions()
		opts.Mode = jms.Persistent

		var wg sync.WaitGroup
		sendErr := make(chan error, 1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < total; i++ {
				if err := p.Send(jms.NewTextMessage(fmt.Sprintf("m%d", i)), opts); err != nil {
					sendErr <- fmt.Errorf("send %d: %w", i, err)
					return
				}
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, at := range []int{1, 2, 3} {
				time.Sleep(time.Duration(at) * 30 * time.Millisecond)
				proxy.ResetAll()
			}
		}()

		seen := map[string]bool{}
		deadline := time.Now().Add(30 * time.Second)
		for len(seen) < total && time.Now().Before(deadline) {
			msg, err := c.Receive(5 * time.Second)
			if err != nil {
				t.Fatalf("receive after %d/%d: %v", len(seen), total, err)
			}
			if msg == nil {
				continue
			}
			body := string(msg.Body.(jms.TextBody))
			if seen[body] && !msg.Redelivered {
				t.Fatalf("duplicate %q without Redelivered flag", body)
			}
			seen[body] = true
			if err := consSess.Acknowledge(); err != nil {
				t.Fatalf("ack: %v", err)
			}
		}
		wg.Wait()
		select {
		case err := <-sendErr:
			t.Fatal(err)
		default:
		}
		if len(seen) != total {
			t.Fatalf("received %d distinct messages, want %d", len(seen), total)
		}
		if f.Reconnects() < 1 {
			t.Errorf("Reconnects() = %d, want >= 1", f.Reconnects())
		}
	}()
	teardown()

	// Everything is closed; background goroutines must wind down.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	t.Fatalf("goroutine leak after reconnect churn: %d before, %d after\n%s",
		before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
}

// TestCallTimeoutStalledServer points a client at a listener that
// accepts and then never replies: calls must fail with ErrCallTimeout
// instead of hanging.
func TestCallTimeoutStalledServer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var held []net.Conn
	var mu sync.Mutex
	done := make(chan struct{})
	defer close(done)
	go func() {
		for {
			sock, err := ln.Accept()
			if err != nil {
				return
			}
			mu.Lock()
			held = append(held, sock) // keep open, read nothing, reply never
			mu.Unlock()
			select {
			case <-done:
				return
			default:
			}
		}
	}()
	defer func() {
		mu.Lock()
		for _, s := range held {
			s.Close()
		}
		mu.Unlock()
	}()

	f := NewFactory(ln.Addr().String()).WithCallTimeout(150 * time.Millisecond)
	conn, err := f.CreateConnection()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	start := time.Now()
	_, err = conn.CreateSession(false, jms.AckAuto)
	if !errors.Is(err, ErrCallTimeout) {
		t.Fatalf("stalled call: got %v, want ErrCallTimeout", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("timeout took %v", elapsed)
	}
}

// TestTxInterrupted loses a connection with a transaction in flight:
// the staged work died with the server-side session, so Commit must
// refuse with ErrTxInterrupted, and the next transaction must work.
func TestTxInterrupted(t *testing.T) {
	proxy, f, _ := startProxiedServer(t)
	conn, err := f.CreateConnection()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Start(); err != nil {
		t.Fatal(err)
	}
	sess, err := conn.CreateSession(true, jms.AckAuto)
	if err != nil {
		t.Fatal(err)
	}
	q := jms.Queue("tx.q")
	p, err := sess.CreateProducer(q)
	if err != nil {
		t.Fatal(err)
	}
	c, err := sess.CreateConsumer(q)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Send(jms.NewTextMessage("staged"), jms.DefaultSendOptions()); err != nil {
		t.Fatal(err)
	}
	proxy.ResetAll()
	err = sess.Commit()
	if !errors.Is(err, ErrTxInterrupted) {
		t.Fatalf("commit across reset: got %v, want ErrTxInterrupted", err)
	}
	// The interrupted transaction rolled back: nothing was delivered,
	// and the session is usable for a fresh transaction.
	if err := p.Send(jms.NewTextMessage("retried"), jms.DefaultSendOptions()); err != nil {
		t.Fatal(err)
	}
	if err := sess.Commit(); err != nil {
		t.Fatalf("commit after interruption: %v", err)
	}
	msg, err := c.Receive(5 * time.Second)
	if err != nil || msg == nil {
		t.Fatalf("receive: %v, %v", msg, err)
	}
	if got := string(msg.Body.(jms.TextBody)); got != "retried" {
		t.Fatalf("got %q, want %q (staged send must not survive the reset)", got, "retried")
	}
	if err := sess.Commit(); err != nil {
		t.Fatal(err)
	}
	if extra, _ := c.ReceiveNoWait(); extra != nil {
		t.Fatalf("unexpected extra message %v", extra)
	}
}

// TestOverloadRejectAcrossWire checks the typed overload error survives
// the protocol boundary: errors.Is(err, jms.ErrOverloaded) on the
// client side of a bounded reject-policy broker.
func TestOverloadRejectAcrossWire(t *testing.T) {
	b, err := broker.New(broker.Options{
		Name:            "bounded",
		MailboxCapacity: 1,
		Overload:        broker.OverloadReject,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(b, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	t.Cleanup(func() {
		_ = srv.Close()
		_ = b.Close()
	})
	conn, err := NewFactory(srv.Addr()).CreateConnection()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	sess, err := conn.CreateSession(false, jms.AckAuto)
	if err != nil {
		t.Fatal(err)
	}
	p, err := sess.CreateProducer(jms.Queue("narrow"))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Send(jms.NewTextMessage("fits"), jms.DefaultSendOptions()); err != nil {
		t.Fatal(err)
	}
	err = p.Send(jms.NewTextMessage("overflow"), jms.DefaultSendOptions())
	if !errors.Is(err, jms.ErrOverloaded) {
		t.Fatalf("send to full queue over wire: got %v, want ErrOverloaded", err)
	}
}
