// Package wire implements a TCP wire protocol for the jms API: a broker
// server (Server) that fronts any jms.ConnectionFactory, and a client
// provider (Factory) that implements the same jms API over a socket.
//
// The paper tested commercial providers through their vendor protocols;
// with no JMS bindings in Go, this package is the "protocol bridge" that
// lets the harness exercise a *remote, networked* provider — real
// sockets, real latency, real partial failure — rather than only the
// in-process reference broker.
//
// Protocol. Each jms.Connection maps to one TCP connection. Frames are
// length-prefixed: a 4-byte little-endian payload length followed by the
// payload. A payload starts with an opcode byte; requests carry a
// client-assigned request ID and receive exactly one opReply with the
// same ID. Requests may be served out of order (the server handles each
// in its own goroutine), so a blocking receive does not head-of-line
// block the other sessions multiplexed on the connection.
package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sync"
	"time"

	"jmsharness/internal/jms"
)

// Opcodes. Client→server requests unless noted.
const (
	opSetClientID byte = iota + 1
	opStart
	opStop
	opCloseConn
	opCreateSession
	opCloseSession
	opSend
	opCreateConsumer
	opCloseConsumer
	opReceive
	opAck
	opRecover
	opCommit
	opRollback
	opUnsubscribe
	opBrowse
	opCreateTempQueue
	opReply // server→client: reply to a request
)

// maxFrameSize bounds a frame payload; larger frames indicate protocol
// corruption or abuse.
const maxFrameSize = 16 << 20

// receiveCap bounds one server-side blocking receive so a vanished
// client cannot pin a handler goroutine forever; clients re-issue
// receives to realise longer timeouts.
const receiveCap = 10 * time.Second

// WriteFrame writes one length-prefixed frame.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > maxFrameSize {
		return fmt.Errorf("wire: frame of %d bytes exceeds limit", len(payload))
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("wire: writing frame header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("wire: writing frame payload: %w", err)
	}
	return nil
}

// ReadFrame reads one length-prefixed frame.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err // io.EOF passes through for clean shutdown
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxFrameSize {
		return nil, fmt.Errorf("wire: frame of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("wire: reading frame payload: %w", err)
	}
	return payload, nil
}

// frameWriter serialises frame writes onto one socket. The header and
// payload are staged in a reused bufio.Writer and flushed together, so
// each frame costs a single syscall (the bare WriteFrame pays two), and
// the mutex keeps frames from concurrent senders whole.
type frameWriter struct {
	mu sync.Mutex
	bw *bufio.Writer
}

func newFrameWriter(w io.Writer) *frameWriter {
	return &frameWriter{bw: bufio.NewWriterSize(w, 32<<10)}
}

// writeFrame writes one complete frame and flushes it to the socket.
func (fw *frameWriter) writeFrame(payload []byte) error {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	if err := WriteFrame(fw.bw, payload); err != nil {
		return err
	}
	return fw.bw.Flush()
}

// encPool recycles frame-encoding buffers across requests and replies;
// the hot send/receive path would otherwise allocate a fresh encoder
// buffer per frame. Pooled as *[]byte so Put itself does not allocate.
var encPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 256)
	return &b
}}

// maxPooledEncBuf caps what encoding buffers are returned to the pool,
// so one oversized message does not pin its buffer forever.
const maxPooledEncBuf = 64 << 10

// writeRequest encodes a request frame into a pooled buffer and writes
// it out.
func (fw *frameWriter) writeRequest(op byte, reqID uint64, build func(*jms.Encoder)) error {
	buf := encPool.Get().(*[]byte)
	e := jms.NewEncoder((*buf)[:0])
	e.Byte(op)
	e.Uvarint(reqID)
	if build != nil {
		build(e)
	}
	err := fw.writeFrame(e.Bytes())
	putEncBuf(buf, e.Bytes())
	return err
}

// writeReply encodes an opReply frame into a pooled buffer and writes
// it out, returning the payload length for traffic accounting.
func (fw *frameWriter) writeReply(reqID uint64, errMsg string, build func(*jms.Encoder)) (int, error) {
	buf := encPool.Get().(*[]byte)
	payload := appendReply((*buf)[:0], reqID, errMsg, build)
	err := fw.writeFrame(payload)
	n := len(payload)
	putEncBuf(buf, payload)
	return n, err
}

// putEncBuf returns an encoding buffer (possibly regrown to payload) to
// the pool.
func putEncBuf(buf *[]byte, payload []byte) {
	if cap(payload) > maxPooledEncBuf {
		return
	}
	*buf = payload
	encPool.Put(buf)
}

// request is a decoded client request.
type request struct {
	op    byte
	reqID uint64
	body  *jms.Decoder
}

// encodeRequest builds a request frame payload: op, reqID, then body.
func encodeRequest(op byte, reqID uint64, build func(*jms.Encoder)) []byte {
	e := jms.NewEncoder(make([]byte, 0, 64))
	e.Byte(op)
	e.Uvarint(reqID)
	if build != nil {
		build(e)
	}
	return e.Bytes()
}

// decodeRequest parses a request frame payload.
func decodeRequest(payload []byte) (request, error) {
	if len(payload) == 0 {
		return request{}, fmt.Errorf("wire: empty frame")
	}
	d := jms.NewDecoder(payload[1:])
	reqID := d.Uvarint()
	if err := d.Err(); err != nil {
		return request{}, fmt.Errorf("wire: malformed request: %w", err)
	}
	return request{op: payload[0], reqID: reqID, body: d}, nil
}

// Reply statuses.
const (
	statusOK byte = iota + 1
	statusError
)

// appendReply appends an opReply frame payload to buf.
func appendReply(buf []byte, reqID uint64, errMsg string, build func(*jms.Encoder)) []byte {
	e := jms.NewEncoder(buf)
	e.Byte(opReply)
	e.Uvarint(reqID)
	if errMsg != "" {
		e.Byte(statusError)
		e.String(errMsg)
		return e.Bytes()
	}
	e.Byte(statusOK)
	if build != nil {
		build(e)
	}
	return e.Bytes()
}

// encodeReply builds an opReply frame payload.
func encodeReply(reqID uint64, errMsg string, build func(*jms.Encoder)) []byte {
	return appendReply(make([]byte, 0, 64), reqID, errMsg, build)
}

// reply is a decoded server reply. lost marks a synthetic reply
// delivered by a failing transport to release its in-flight callers —
// it never comes off the wire.
type reply struct {
	reqID uint64
	err   string
	body  *jms.Decoder
	lost  bool
}

// decodeReply parses an opReply frame payload (including the opcode
// byte).
func decodeReply(payload []byte) (reply, error) {
	if len(payload) == 0 || payload[0] != opReply {
		return reply{}, fmt.Errorf("wire: expected reply frame")
	}
	d := jms.NewDecoder(payload[1:])
	reqID := d.Uvarint()
	status := d.Byte()
	if err := d.Err(); err != nil {
		return reply{}, fmt.Errorf("wire: malformed reply: %w", err)
	}
	switch status {
	case statusOK:
		return reply{reqID: reqID, body: d}, nil
	case statusError:
		msg := d.String()
		if err := d.Err(); err != nil {
			return reply{}, fmt.Errorf("wire: malformed error reply: %w", err)
		}
		return reply{reqID: reqID, err: msg}, nil
	default:
		return reply{}, fmt.Errorf("wire: unknown reply status %d", status)
	}
}

// encodeSendOptions appends send options.
func encodeSendOptions(e *jms.Encoder, opts jms.SendOptions) {
	e.Byte(byte(opts.Mode))
	e.Byte(byte(opts.Priority))
	e.Varint(int64(opts.TTL))
}

// decodeSendOptions reads send options.
func decodeSendOptions(d *jms.Decoder) jms.SendOptions {
	return jms.SendOptions{
		Mode:     jms.DeliveryMode(d.Byte()),
		Priority: jms.Priority(d.Byte()),
		TTL:      time.Duration(d.Varint()),
	}
}
