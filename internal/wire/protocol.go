// Package wire implements a TCP wire protocol for the jms API: a broker
// server (Server) that fronts any jms.ConnectionFactory, and a client
// provider (Factory) that implements the same jms API over a socket.
//
// The paper tested commercial providers through their vendor protocols;
// with no JMS bindings in Go, this package is the "protocol bridge" that
// lets the harness exercise a *remote, networked* provider — real
// sockets, real latency, real partial failure — rather than only the
// in-process reference broker.
//
// Protocol. Each jms.Connection maps to one TCP connection. Frames are
// length-prefixed: a 4-byte little-endian payload length followed by the
// payload. A payload starts with an opcode byte; requests carry a
// client-assigned request ID and receive exactly one opReply with the
// same ID. Requests may be served out of order (the server handles each
// in its own goroutine), so a blocking receive does not head-of-line
// block the other sessions multiplexed on the connection.
package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"
	"time"

	"jmsharness/internal/jms"
)

// Opcodes. Client→server requests unless noted.
const (
	opSetClientID byte = iota + 1
	opStart
	opStop
	opCloseConn
	opCreateSession
	opCloseSession
	opSend
	opCreateConsumer
	opCloseConsumer
	opReceive
	opAck
	opRecover
	opCommit
	opRollback
	opUnsubscribe
	opBrowse
	opCreateTempQueue
	opReply // server→client: reply to a request
	// Pipelined extensions. A pipe is one credit-windowed async send
	// stream: the client opens it with opPipeOpen (a normal
	// request/reply that grants the window), then streams opPipeSend
	// frames — which carry NO individual replies — up to the granted
	// window of uncompleted sends. The server settles sends in batched
	// opPipeCompletion frames (server→client, matched by per-pipe
	// sequence number, not request ID). opAckBatch coalesces several
	// sessions' acknowledgements into one round trip.
	opPipeOpen
	opPipeSend
	opPipeCompletion
	opAckBatch
)

// maxFrameSize bounds a frame payload; larger frames indicate protocol
// corruption or abuse.
const maxFrameSize = 16 << 20

// receiveCap bounds one server-side blocking receive so a vanished
// client cannot pin a handler goroutine forever; clients re-issue
// receives to realise longer timeouts.
const receiveCap = 10 * time.Second

// WriteFrame writes one length-prefixed frame.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > maxFrameSize {
		return fmt.Errorf("wire: frame of %d bytes exceeds limit", len(payload))
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("wire: writing frame header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("wire: writing frame payload: %w", err)
	}
	return nil
}

// ReadFrame reads one length-prefixed frame.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err // io.EOF passes through for clean shutdown
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxFrameSize {
		return nil, fmt.Errorf("wire: frame of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("wire: reading frame payload: %w", err)
	}
	return payload, nil
}

// frameWriter serialises frame writes onto one socket and coalesces
// concurrent frames behind one syscall. Each frame (header + payload)
// is staged whole under the mutex; the first staging goroutine becomes
// the flusher and loops writing whatever has accumulated, so frames
// staged by other goroutines while a Write syscall is in flight ride
// the flusher's next pass instead of paying their own syscall. That is
// what makes pipelined sends and batched completions cheap: N frames
// from N goroutines cost far fewer than N Write calls.
//
// A frame staged while a flusher is active returns nil immediately —
// its bytes are guaranteed to be carried by that flusher (or the write
// error is made visible by closing the socket, which the connection's
// read side observes as a transport failure).
type frameWriter struct {
	mu       sync.Mutex
	w        io.Writer
	buf      []byte // frames staged for the next flush
	spare    []byte // recycled flush buffer (double-buffering)
	flushing bool   // a flusher currently owns the socket
	err      error  // sticky first write error
	flushes  int64  // Write syscalls issued
}

func newFrameWriter(w io.Writer) *frameWriter {
	return &frameWriter{w: w}
}

// writeFrame stages one complete frame and ensures it reaches the
// socket: either this caller flushes it (possibly together with frames
// staged meanwhile) or an already-active flusher carries it.
func (fw *frameWriter) writeFrame(payload []byte) error {
	fw.mu.Lock()
	if err := fw.stageLocked(payload); err != nil || fw.flushing {
		fw.mu.Unlock()
		return err
	}
	fw.flushing = true
	err := fw.flushLocked()
	fw.mu.Unlock()
	return err
}

// stageFrame stages one complete frame and returns without waiting for
// the socket write: if no flusher is active, a background one is
// started. This is the pipelined-send path — a tight send loop stages
// frame after frame while the flusher's Write syscall is in flight, so
// consecutive frames coalesce into one syscall instead of paying one
// each. Write failures surface by closing the socket, which the
// connection's read side reports as a transport loss.
func (fw *frameWriter) stageFrame(payload []byte) error {
	fw.mu.Lock()
	if err := fw.stageLocked(payload); err != nil || fw.flushing {
		fw.mu.Unlock()
		return err
	}
	fw.flushing = true
	fw.mu.Unlock()
	go func() {
		fw.mu.Lock()
		_ = fw.flushLocked()
		fw.mu.Unlock()
	}()
	return nil
}

// stageLocked appends one frame to the staging buffer. Callers hold
// mu.
func (fw *frameWriter) stageLocked(payload []byte) error {
	if len(payload) > maxFrameSize {
		return fmt.Errorf("wire: frame of %d bytes exceeds limit", len(payload))
	}
	if fw.err != nil {
		return fw.err
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	fw.buf = append(fw.buf, hdr[:]...)
	fw.buf = append(fw.buf, payload...)
	return nil
}

// flushLocked drains the staging buffer, releasing mu around each
// Write syscall so frames keep staging meanwhile. Callers hold mu and
// must have claimed flushing; it is cleared on return. Returns the
// first write error (also made sticky).
func (fw *frameWriter) flushLocked() error {
	var err error
	for err == nil && len(fw.buf) > 0 {
		out := fw.buf
		fw.buf = fw.spare[:0]
		fw.spare = nil
		fw.flushes++
		fw.mu.Unlock()
		_, err = fw.w.Write(out)
		fw.mu.Lock()
		if cap(out) <= maxPooledEncBuf {
			fw.spare = out[:0]
		}
	}
	fw.flushing = false
	if err != nil && fw.err == nil {
		fw.err = err
		// Frames staged behind the failure would silently vanish; kill
		// the socket so the connection's read loop reports the loss.
		if c, ok := fw.w.(io.Closer); ok {
			_ = c.Close()
		}
	}
	return err
}

// flushCount reports how many socket Write calls the writer has made.
func (fw *frameWriter) flushCount() int64 {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	return fw.flushes
}

// encPool recycles frame-encoding buffers across requests and replies;
// the hot send/receive path would otherwise allocate a fresh encoder
// buffer per frame. Pooled as *[]byte so Put itself does not allocate.
var encPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 256)
	return &b
}}

// maxPooledEncBuf caps what encoding buffers are returned to the pool,
// so one oversized message does not pin its buffer forever.
const maxPooledEncBuf = 64 << 10

// writeRequest encodes a request frame into a pooled buffer and writes
// it out.
func (fw *frameWriter) writeRequest(op byte, reqID uint64, build func(*jms.Encoder)) error {
	buf := encPool.Get().(*[]byte)
	e := jms.NewEncoder((*buf)[:0])
	e.Byte(op)
	e.Uvarint(reqID)
	if build != nil {
		build(e)
	}
	err := fw.writeFrame(e.Bytes())
	putEncBuf(buf, e.Bytes())
	return err
}

// stageRequest encodes a request frame into a pooled buffer and stages
// it for an asynchronous flush (see stageFrame). The payload is copied
// into the staging buffer before return, so recycling the encode buffer
// immediately is safe.
func (fw *frameWriter) stageRequest(op byte, reqID uint64, build func(*jms.Encoder)) error {
	buf := encPool.Get().(*[]byte)
	e := jms.NewEncoder((*buf)[:0])
	e.Byte(op)
	e.Uvarint(reqID)
	if build != nil {
		build(e)
	}
	err := fw.stageFrame(e.Bytes())
	putEncBuf(buf, e.Bytes())
	return err
}

// writeReply encodes an opReply frame into a pooled buffer and writes
// it out, returning the payload length for traffic accounting.
func (fw *frameWriter) writeReply(reqID uint64, errMsg string, build func(*jms.Encoder)) (int, error) {
	buf := encPool.Get().(*[]byte)
	payload := appendReply((*buf)[:0], reqID, errMsg, build)
	err := fw.writeFrame(payload)
	n := len(payload)
	putEncBuf(buf, payload)
	return n, err
}

// putEncBuf returns an encoding buffer (possibly regrown to payload) to
// the pool.
func putEncBuf(buf *[]byte, payload []byte) {
	if cap(payload) > maxPooledEncBuf {
		return
	}
	*buf = payload
	encPool.Put(buf)
}

// request is a decoded client request.
type request struct {
	op    byte
	reqID uint64
	body  *jms.Decoder
}

// encodeRequest builds a request frame payload: op, reqID, then body.
func encodeRequest(op byte, reqID uint64, build func(*jms.Encoder)) []byte {
	e := jms.NewEncoder(make([]byte, 0, 64))
	e.Byte(op)
	e.Uvarint(reqID)
	if build != nil {
		build(e)
	}
	return e.Bytes()
}

// decodeRequest parses a request frame payload.
func decodeRequest(payload []byte) (request, error) {
	if len(payload) == 0 {
		return request{}, fmt.Errorf("wire: empty frame")
	}
	d := jms.NewDecoder(payload[1:])
	reqID := d.Uvarint()
	if err := d.Err(); err != nil {
		return request{}, fmt.Errorf("wire: malformed request: %w", err)
	}
	return request{op: payload[0], reqID: reqID, body: d}, nil
}

// Reply statuses.
const (
	statusOK byte = iota + 1
	statusError
)

// appendReply appends an opReply frame payload to buf.
func appendReply(buf []byte, reqID uint64, errMsg string, build func(*jms.Encoder)) []byte {
	e := jms.NewEncoder(buf)
	e.Byte(opReply)
	e.Uvarint(reqID)
	if errMsg != "" {
		e.Byte(statusError)
		e.String(errMsg)
		return e.Bytes()
	}
	e.Byte(statusOK)
	if build != nil {
		build(e)
	}
	return e.Bytes()
}

// encodeReply builds an opReply frame payload.
func encodeReply(reqID uint64, errMsg string, build func(*jms.Encoder)) []byte {
	return appendReply(make([]byte, 0, 64), reqID, errMsg, build)
}

// reply is a decoded server reply. lost marks a synthetic reply
// delivered by a failing transport to release its in-flight callers —
// it never comes off the wire.
type reply struct {
	reqID uint64
	err   string
	body  *jms.Decoder
	lost  bool
}

// decodeReply parses an opReply frame payload (including the opcode
// byte).
func decodeReply(payload []byte) (reply, error) {
	if len(payload) == 0 || payload[0] != opReply {
		return reply{}, fmt.Errorf("wire: expected reply frame")
	}
	d := jms.NewDecoder(payload[1:])
	reqID := d.Uvarint()
	status := d.Byte()
	if err := d.Err(); err != nil {
		return reply{}, fmt.Errorf("wire: malformed reply: %w", err)
	}
	switch status {
	case statusOK:
		return reply{reqID: reqID, body: d}, nil
	case statusError:
		msg := d.String()
		if err := d.Err(); err != nil {
			return reply{}, fmt.Errorf("wire: malformed error reply: %w", err)
		}
		return reply{reqID: reqID, err: msg}, nil
	default:
		return reply{}, fmt.Errorf("wire: unknown reply status %d", status)
	}
}

// Pipelining limits.
const (
	// pipeMaxWindow caps the credit window a server grants per pipe.
	pipeMaxWindow = 1024
	// pipeCompletionBatch caps how many completions ride one
	// opPipeCompletion frame.
	pipeCompletionBatch = 256
	// ackBatchMax caps how many session acknowledgements one
	// opAckBatch round trip carries.
	ackBatchMax = 256
)

// pipeCompletion is one settled pipelined send, identified by its pipe
// and the client-assigned sequence number of the send.
type pipeCompletion struct {
	pipeID uint64
	seq    uint64
	errMsg string
	stamp  sendStamp
}

// appendPipeCompletions appends an opPipeCompletion frame payload
// carrying the batch.
func appendPipeCompletions(buf []byte, batch []pipeCompletion) []byte {
	e := jms.NewEncoder(buf)
	e.Byte(opPipeCompletion)
	e.Uvarint(uint64(len(batch)))
	for _, c := range batch {
		e.Uvarint(c.pipeID)
		e.Uvarint(c.seq)
		if c.errMsg != "" {
			e.Byte(statusError)
			e.String(c.errMsg)
			continue
		}
		e.Byte(statusOK)
		e.String(c.stamp.id)
		e.Time(c.stamp.timestamp)
		e.Time(c.stamp.expiration)
	}
	return e.Bytes()
}

// decodePipeCompletions parses an opPipeCompletion frame payload
// (including the opcode byte) and invokes apply for each entry.
func decodePipeCompletions(payload []byte, apply func(pipeCompletion)) error {
	d := jms.NewDecoder(payload[1:])
	n := d.Uvarint()
	if err := d.Err(); err != nil {
		return fmt.Errorf("wire: malformed completion batch: %w", err)
	}
	for i := uint64(0); i < n; i++ {
		var c pipeCompletion
		c.pipeID = d.Uvarint()
		c.seq = d.Uvarint()
		switch d.Byte() {
		case statusError:
			c.errMsg = d.String()
			if c.errMsg == "" {
				c.errMsg = "wire: pipelined send failed"
			}
		case statusOK:
			c.stamp.id = d.String()
			c.stamp.timestamp = d.Time()
			c.stamp.expiration = d.Time()
		}
		if err := d.Err(); err != nil {
			return fmt.Errorf("wire: malformed completion entry: %w", err)
		}
		apply(c)
	}
	return nil
}

// encodeSendOptions appends send options.
func encodeSendOptions(e *jms.Encoder, opts jms.SendOptions) {
	e.Byte(byte(opts.Mode))
	e.Byte(byte(opts.Priority))
	e.Varint(int64(opts.TTL))
}

// decodeSendOptions reads send options.
func decodeSendOptions(d *jms.Decoder) jms.SendOptions {
	return jms.SendOptions{
		Mode:     jms.DeliveryMode(d.Byte()),
		Priority: jms.Priority(d.Byte()),
		TTL:      time.Duration(d.Varint()),
	}
}
