// Package wire implements a TCP wire protocol for the jms API: a broker
// server (Server) that fronts any jms.ConnectionFactory, and a client
// provider (Factory) that implements the same jms API over a socket.
//
// The paper tested commercial providers through their vendor protocols;
// with no JMS bindings in Go, this package is the "protocol bridge" that
// lets the harness exercise a *remote, networked* provider — real
// sockets, real latency, real partial failure — rather than only the
// in-process reference broker.
//
// Protocol. Each jms.Connection maps to one TCP connection. Frames are
// length-prefixed: a 4-byte little-endian payload length followed by the
// payload. A payload starts with an opcode byte; requests carry a
// client-assigned request ID and receive exactly one opReply with the
// same ID. Requests may be served out of order (the server handles each
// in its own goroutine), so a blocking receive does not head-of-line
// block the other sessions multiplexed on the connection.
package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"time"

	"jmsharness/internal/jms"
)

// Opcodes. Client→server requests unless noted.
const (
	opSetClientID byte = iota + 1
	opStart
	opStop
	opCloseConn
	opCreateSession
	opCloseSession
	opSend
	opCreateConsumer
	opCloseConsumer
	opReceive
	opAck
	opRecover
	opCommit
	opRollback
	opUnsubscribe
	opBrowse
	opCreateTempQueue
	opReply // server→client: reply to a request
)

// maxFrameSize bounds a frame payload; larger frames indicate protocol
// corruption or abuse.
const maxFrameSize = 16 << 20

// receiveCap bounds one server-side blocking receive so a vanished
// client cannot pin a handler goroutine forever; clients re-issue
// receives to realise longer timeouts.
const receiveCap = 10 * time.Second

// WriteFrame writes one length-prefixed frame.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > maxFrameSize {
		return fmt.Errorf("wire: frame of %d bytes exceeds limit", len(payload))
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("wire: writing frame header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("wire: writing frame payload: %w", err)
	}
	return nil
}

// ReadFrame reads one length-prefixed frame.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err // io.EOF passes through for clean shutdown
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxFrameSize {
		return nil, fmt.Errorf("wire: frame of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("wire: reading frame payload: %w", err)
	}
	return payload, nil
}

// request is a decoded client request.
type request struct {
	op    byte
	reqID uint64
	body  *jms.Decoder
}

// encodeRequest builds a request frame payload: op, reqID, then body.
func encodeRequest(op byte, reqID uint64, build func(*jms.Encoder)) []byte {
	e := jms.NewEncoder(make([]byte, 0, 64))
	e.Byte(op)
	e.Uvarint(reqID)
	if build != nil {
		build(e)
	}
	return e.Bytes()
}

// decodeRequest parses a request frame payload.
func decodeRequest(payload []byte) (request, error) {
	if len(payload) == 0 {
		return request{}, fmt.Errorf("wire: empty frame")
	}
	d := jms.NewDecoder(payload[1:])
	reqID := d.Uvarint()
	if err := d.Err(); err != nil {
		return request{}, fmt.Errorf("wire: malformed request: %w", err)
	}
	return request{op: payload[0], reqID: reqID, body: d}, nil
}

// Reply statuses.
const (
	statusOK byte = iota + 1
	statusError
)

// encodeReply builds an opReply frame payload.
func encodeReply(reqID uint64, errMsg string, build func(*jms.Encoder)) []byte {
	e := jms.NewEncoder(make([]byte, 0, 64))
	e.Byte(opReply)
	e.Uvarint(reqID)
	if errMsg != "" {
		e.Byte(statusError)
		e.String(errMsg)
		return e.Bytes()
	}
	e.Byte(statusOK)
	if build != nil {
		build(e)
	}
	return e.Bytes()
}

// reply is a decoded server reply.
type reply struct {
	reqID uint64
	err   string
	body  *jms.Decoder
}

// decodeReply parses an opReply frame payload (including the opcode
// byte).
func decodeReply(payload []byte) (reply, error) {
	if len(payload) == 0 || payload[0] != opReply {
		return reply{}, fmt.Errorf("wire: expected reply frame")
	}
	d := jms.NewDecoder(payload[1:])
	reqID := d.Uvarint()
	status := d.Byte()
	if err := d.Err(); err != nil {
		return reply{}, fmt.Errorf("wire: malformed reply: %w", err)
	}
	switch status {
	case statusOK:
		return reply{reqID: reqID, body: d}, nil
	case statusError:
		msg := d.String()
		if err := d.Err(); err != nil {
			return reply{}, fmt.Errorf("wire: malformed error reply: %w", err)
		}
		return reply{reqID: reqID, err: msg}, nil
	default:
		return reply{}, fmt.Errorf("wire: unknown reply status %d", status)
	}
}

// encodeSendOptions appends send options.
func encodeSendOptions(e *jms.Encoder, opts jms.SendOptions) {
	e.Byte(byte(opts.Mode))
	e.Byte(byte(opts.Priority))
	e.Varint(int64(opts.TTL))
}

// decodeSendOptions reads send options.
func decodeSendOptions(d *jms.Decoder) jms.SendOptions {
	return jms.SendOptions{
		Mode:     jms.DeliveryMode(d.Byte()),
		Priority: jms.Priority(d.Byte()),
		TTL:      time.Duration(d.Varint()),
	}
}
