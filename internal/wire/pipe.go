package wire

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"jmsharness/internal/jms"
	"jmsharness/internal/obs"
)

// clientPipe is the client half of one pipelined producer: a credit
// window of in-flight sends awaiting batched completions. Sends are
// staged onto the wire without individual replies; the server settles
// them via opPipeCompletion frames matched by sequence number. When
// the transport dies, the unacked window stays registered and is
// replayed — with the original dedup tokens — onto the next transport,
// so a send that reached the provider before the reset settles from
// the server's dedup cache instead of applying twice.
type clientPipe struct {
	sess    *clientSession
	dest    jms.Destination
	destStr string

	mu       sync.Mutex
	tr       *transport // transport the pipe is open on; nil = needs (re)open
	id       uint64     // server pipe ID on tr
	window   int        // granted credit window
	credit   chan struct{}
	nextSeq  uint64
	inflight map[uint64]*pipeInflight
}

// pipeInflight is one send awaiting its completion.
type pipeInflight struct {
	seq   uint64
	token string
	msg   *jms.Message
	opts  jms.SendOptions
	done  chan struct{}
	err   error
	stamp sendStamp
}

// lockOpen acquires pp.mu with the pipe open on a live transport,
// (re)opening it if needed. On success it returns with pp.mu HELD; on
// error the lock is released. Crucially, pp.mu is never held while
// waiting for a reconnection: the reconnect loop's reestablish pass
// needs pp.mu to replay the window, and the new transport is only
// published after that pass — holding the lock through the wait would
// deadlock until the call timeout. The opPipeOpen round trip itself
// runs under pp.mu, which serialises sends on this producer — exactly
// the per-producer FIFO the pipe must keep anyway — and cannot block
// on reconnection (a dying transport fails its pending calls).
func (pp *clientPipe) lockOpen() error {
	c := pp.sess.conn
	var timer <-chan time.Time
	var tm *time.Timer
	for {
		pp.mu.Lock()
		if pp.tr != nil {
			if tm != nil {
				tm.Stop()
			}
			return nil
		}
		pp.mu.Unlock()
		if tm == nil {
			if ct := c.f.callTimeout; ct > 0 {
				tm = time.NewTimer(ct)
				timer = tm.C
			}
		}
		tr, err := c.awaitTransport(timer)
		if err != nil {
			if tm != nil {
				tm.Stop()
			}
			return err
		}
		pp.mu.Lock()
		if pp.tr != nil { // reestablish re-opened it meanwhile
			if tm != nil {
				tm.Stop()
			}
			return nil
		}
		rep, err := roundTrip(tr, opPipeOpen, func(e *jms.Encoder) {
			e.Uvarint(pp.sess.id.Load())
			e.String(pp.destStr)
			e.Uvarint(uint64(c.f.pipeWindow))
		}, timer)
		switch {
		case err == nil:
			if rep.err != "" {
				pp.mu.Unlock()
				if tm != nil {
					tm.Stop()
				}
				return mapError(rep.err)
			}
			if oerr := pp.openedLocked(tr, rep); oerr != nil {
				pp.mu.Unlock()
				if tm != nil {
					tm.Stop()
				}
				return oerr
			}
			if tm != nil {
				tm.Stop()
			}
			return nil
		case errors.Is(err, ErrCallTimeout):
			pp.mu.Unlock()
			tr.fail()
			if tm != nil {
				tm.Stop()
			}
			return fmt.Errorf("%w: opening pipe", ErrCallTimeout)
		default: // transport died under the open
			pp.mu.Unlock()
			c.transportLost(tr)
			if !c.f.reconnect.Enabled {
				if tm != nil {
					tm.Stop()
				}
				return fmt.Errorf("wire: connection lost: %w", jms.ErrClosed)
			}
		}
	}
}

// openedLocked installs the server's pipe grant. Callers hold pp.mu.
func (pp *clientPipe) openedLocked(tr *transport, rep reply) error {
	id := rep.body.Uvarint()
	granted := int(rep.body.Uvarint())
	if err := rep.body.Err(); err != nil {
		return fmt.Errorf("wire: decoding pipe-open reply: %w", err)
	}
	if granted < 1 {
		granted = 1
	}
	pp.id = id
	pp.tr = tr
	if pp.credit == nil {
		// The window is fixed by the first grant; the server's cap is
		// deterministic, so re-opens grant the same number.
		pp.window = granted
		pp.credit = make(chan struct{}, granted)
	}
	pp.sess.conn.registerPipe(pp, id)
	return nil
}

// send stages one pipelined send and returns its completion. The
// returned jms.Completion blocks until the server settles the send
// (or the factory's call timeout elapses).
func (pp *clientPipe) send(msg *jms.Message, opts jms.SendOptions) (jms.Completion, error) {
	c := pp.sess.conn
	// Stamp the trace once: a replay re-encodes the same message, so a
	// retried send reuses — never re-mints — its trace ID.
	tid := obs.StampTrace(msg)
	rpcStart := time.Now()
	if err := pp.lockOpen(); err != nil {
		return nil, err
	}
	credit := pp.credit
	pp.mu.Unlock()
	// One credit per uncompleted send; released when it settles. The
	// window is what bounds both the server-side queue and the replay
	// set, so the acquire is unconditional — a full window frees as
	// completions arrive, and a dead connection fails every in-flight
	// entry, which also frees it.
	credit <- struct{}{}
	if err := pp.lockOpen(); err != nil {
		<-credit
		return nil, err
	}
	pp.nextSeq++
	seq := pp.nextSeq
	inf := &pipeInflight{
		seq:   seq,
		token: c.uid + "/" + strconv.FormatUint(c.sendSeq.Add(1), 36),
		msg:   msg,
		opts:  opts,
		done:  make(chan struct{}),
	}
	pp.inflight[seq] = inf
	tr := pp.tr
	// stageRequest (not writeRequest): the frame is staged and flushed
	// by a background flusher, so a tight send loop coalesces many
	// frames into one syscall instead of paying one each.
	err := tr.fw.stageRequest(opPipeSend, seq, func(e *jms.Encoder) {
		e.Uvarint(pp.id)
		e.String(inf.token)
		encodeSendOptions(e, opts)
		msg.EncodeTo(e)
	})
	pp.mu.Unlock()
	if err != nil {
		// The transport died under the write. The entry stays in the
		// window: reconnection (when enabled) replays it with the same
		// token, and a dead connection fails it.
		c.transportLost(tr)
	}
	return func() error {
		var timer <-chan time.Time
		if ct := c.f.callTimeout; ct > 0 {
			tm := time.NewTimer(ct)
			defer tm.Stop()
			timer = tm.C
		}
		select {
		case <-inf.done:
		case <-timer:
			pp.timeoutEntry(inf)
			<-inf.done
		}
		if inf.err != nil {
			return inf.err
		}
		msg.ID = inf.stamp.id
		msg.Timestamp = inf.stamp.timestamp
		msg.Expiration = inf.stamp.expiration
		msg.Destination = pp.dest
		msg.Mode = opts.Mode
		msg.Priority = opts.Priority
		if rec := c.f.spans; rec != nil {
			rec.RecordHop(obs.Span{
				TraceID:  tid,
				Hop:      obs.MessageTraceHop(msg),
				Kind:     obs.KindSendRPC,
				Node:     "wire-client",
				MsgID:    msg.ID,
				Endpoint: pp.destStr,
				SentAt:   rpcStart,
				EndedAt:  time.Now(),
			})
		}
		return nil
	}, nil
}

// complete settles one in-flight send from a server completion.
// Unknown sequence numbers (late completions for entries already timed
// out or failed) are ignored.
func (pp *clientPipe) complete(seq uint64, err error, stamp sendStamp) {
	pp.mu.Lock()
	inf, ok := pp.inflight[seq]
	if !ok {
		pp.mu.Unlock()
		return
	}
	delete(pp.inflight, seq)
	inf.err = err
	inf.stamp = stamp
	close(inf.done)
	credit := pp.credit
	pp.mu.Unlock()
	<-credit
}

// timeoutEntry resolves one entry as timed out (if still pending) and
// recycles the transport — a server that sat on a completion past the
// call timeout cannot be trusted for later frames, mirroring the
// blocking path's handling.
func (pp *clientPipe) timeoutEntry(inf *pipeInflight) {
	pp.mu.Lock()
	if _, ok := pp.inflight[inf.seq]; !ok {
		pp.mu.Unlock()
		return
	}
	delete(pp.inflight, inf.seq)
	inf.err = fmt.Errorf("%w: pipelined send", ErrCallTimeout)
	close(inf.done)
	credit := pp.credit
	tr := pp.tr
	pp.mu.Unlock()
	<-credit
	if tr != nil {
		tr.fail()
		pp.sess.conn.transportLost(tr)
	}
}

// detach notes the death of tr: the pipe must be re-opened before the
// next send, and the dead incarnation's ID stops resolving.
func (pp *clientPipe) detach(tr *transport) {
	pp.mu.Lock()
	if pp.tr != tr {
		pp.mu.Unlock()
		return
	}
	pp.tr = nil
	oldID := pp.id
	pp.mu.Unlock()
	pp.sess.conn.unregisterPipe(oldID, pp)
}

// failAll resolves every in-flight send with err (terminal connection
// failure).
func (pp *clientPipe) failAll(err error) {
	pp.mu.Lock()
	entries := make([]*pipeInflight, 0, len(pp.inflight))
	for _, inf := range pp.inflight {
		entries = append(entries, inf)
	}
	pp.inflight = map[uint64]*pipeInflight{}
	for _, inf := range entries {
		inf.err = err
		close(inf.done)
	}
	credit := pp.credit
	pp.mu.Unlock()
	for range entries {
		<-credit
	}
}

// reestablish re-opens the pipe on a fresh transport and replays the
// unacked window, oldest send first, with the original tokens. The
// server's dedup cache turns replays of sends that actually reached
// the provider into stamp echoes, so nothing applies twice. A pipe
// with nothing in flight stays detached and re-opens lazily on its
// next send.
func (pp *clientPipe) reestablish(tr *transport, raw func(byte, func(*jms.Encoder)) (reply, error)) error {
	pp.mu.Lock()
	defer pp.mu.Unlock()
	if pp.sess.isClosed() || pp.tr != nil || len(pp.inflight) == 0 {
		return nil
	}
	rep, err := raw(opPipeOpen, func(e *jms.Encoder) {
		e.Uvarint(pp.sess.id.Load())
		e.String(pp.destStr)
		e.Uvarint(uint64(pp.sess.conn.f.pipeWindow))
	})
	if err != nil {
		return fmt.Errorf("reopening pipe to %s: %w", pp.destStr, err)
	}
	if err := pp.openedLocked(tr, rep); err != nil {
		return err
	}
	seqs := make([]uint64, 0, len(pp.inflight))
	for seq := range pp.inflight {
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	for _, seq := range seqs {
		inf := pp.inflight[seq]
		err := tr.fw.stageRequest(opPipeSend, seq, func(e *jms.Encoder) {
			e.Uvarint(pp.id)
			e.String(inf.token)
			encodeSendOptions(e, inf.opts)
			inf.msg.EncodeTo(e)
		})
		if err != nil {
			return fmt.Errorf("replaying pipelined send: %w", err)
		}
	}
	return nil
}

// ackBatcher coalesces concurrent session acknowledgements on one
// connection into opAckBatch round trips. The first caller becomes the
// flusher and carries every acknowledgement queued while its batch's
// round trip runs — so a lone Acknowledge pays exactly one RPC with no
// added latency, and N concurrent ones collapse into a handful of
// RPCs. Every caller blocks until its batch's round trip settles,
// which is what preserves AckClient semantics: when Acknowledge
// returns, the acks are on the server.
type ackBatcher struct {
	c *clientConn

	mu       sync.Mutex
	queue    []*ackWaiter
	flushing bool
}

type ackWaiter struct {
	sess *clientSession
	done chan struct{}
	err  error
}

// acknowledge enqueues one session acknowledgement and blocks until
// the batch carrying it completes.
func (ab *ackBatcher) acknowledge(s *clientSession) error {
	w := &ackWaiter{sess: s, done: make(chan struct{})}
	ab.mu.Lock()
	ab.queue = append(ab.queue, w)
	if ab.flushing {
		ab.mu.Unlock()
		<-w.done
		return w.err
	}
	ab.flushing = true
	for len(ab.queue) > 0 {
		batch := ab.queue
		if len(batch) > ackBatchMax {
			batch = batch[:ackBatchMax]
		}
		ab.queue = ab.queue[len(batch):]
		ab.mu.Unlock()
		ab.flush(batch)
		ab.mu.Lock()
	}
	ab.flushing = false
	ab.mu.Unlock()
	<-w.done
	return w.err
}

// flush performs one opAckBatch round trip for batch, deduplicating
// sessions (acknowledging a session once covers every waiter on it:
// Acknowledge acks all messages delivered so far, which includes
// everything delivered before any of the coalesced calls began).
func (ab *ackBatcher) flush(batch []*ackWaiter) {
	sessions := make([]*clientSession, 0, len(batch))
	index := make(map[*clientSession]int, len(batch))
	for _, w := range batch {
		if _, ok := index[w.sess]; !ok {
			index[w.sess] = len(sessions)
			sessions = append(sessions, w.sess)
		}
	}
	// Session IDs are loaded at build time so a retry after a
	// reconnection addresses the sessions' new incarnations.
	rep, err := ab.c.call(opAckBatch, func(e *jms.Encoder) {
		e.Uvarint(uint64(len(sessions)))
		for _, s := range sessions {
			e.Uvarint(s.id.Load())
		}
	}, true, 0)
	errs := make([]error, len(sessions))
	if err != nil {
		for i := range errs {
			errs[i] = err
		}
	} else {
		for i := range sessions {
			if msg := rep.body.String(); msg != "" {
				errs[i] = mapError(msg)
			}
		}
		if derr := rep.body.Err(); derr != nil {
			for i := range errs {
				if errs[i] == nil {
					errs[i] = fmt.Errorf("wire: decoding ack-batch reply: %w", derr)
				}
			}
		}
	}
	for _, w := range batch {
		w.err = errs[index[w.sess]]
		close(w.done)
	}
}
