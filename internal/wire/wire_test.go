package wire

import (
	"bytes"
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"jmsharness/internal/analysis"
	"jmsharness/internal/broker"
	"jmsharness/internal/harness"
	"jmsharness/internal/jms"
	"jmsharness/internal/model"
)

// startServer brings up a broker + wire server on a loopback port and
// returns a connected client factory.
func startServer(t *testing.T, profile broker.Profile) (*broker.Broker, *Factory) {
	t.Helper()
	b, err := broker.New(broker.Options{Name: "wired", Profile: profile})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(b, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	t.Cleanup(func() {
		_ = srv.Close()
		_ = b.Close()
	})
	return b, NewFactory(srv.Addr())
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{{}, {1}, make([]byte, 100000)}
	for _, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range payloads {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Errorf("frame length %d, want %d", len(got), len(want))
		}
	}
}

func TestFrameRejectsOversize(t *testing.T) {
	if err := WriteFrame(&bytes.Buffer{}, make([]byte, maxFrameSize+1)); err == nil {
		t.Error("oversize write accepted")
	}
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := ReadFrame(&buf); err == nil {
		t.Error("oversize read accepted")
	}
}

// TestServerDropsHostileFrame connects a raw socket to a live server
// and sends a frame header claiming ~4GB: the server must drop the
// connection (no allocation, no reply) rather than trust the length.
func TestServerDropsHostileFrame(t *testing.T) {
	_, f := startServer(t, broker.Profile{})
	sock, err := net.Dial("tcp", f.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer sock.Close()
	if _, err := sock.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF}); err != nil {
		t.Fatal(err)
	}
	_ = sock.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if n, err := sock.Read(buf); err == nil {
		t.Fatalf("server replied %d bytes to a hostile frame; want connection close", n)
	}
}

func TestRequestReplyCodec(t *testing.T) {
	payload := encodeRequest(opSend, 42, func(e *jms.Encoder) { e.String("hello") })
	req, err := decodeRequest(payload)
	if err != nil {
		t.Fatal(err)
	}
	if req.op != opSend || req.reqID != 42 || req.body.String() != "hello" {
		t.Error("request round trip failed")
	}

	rep, err := decodeReply(encodeReply(7, "", func(e *jms.Encoder) { e.Uvarint(9) }))
	if err != nil {
		t.Fatal(err)
	}
	if rep.reqID != 7 || rep.err != "" || rep.body.Uvarint() != 9 {
		t.Error("ok reply round trip failed")
	}

	rep, err = decodeReply(encodeReply(8, "boom", nil))
	if err != nil {
		t.Fatal(err)
	}
	if rep.reqID != 8 || rep.err != "boom" {
		t.Error("error reply round trip failed")
	}

	if _, err := decodeReply([]byte{opSend}); err == nil {
		t.Error("non-reply frame accepted as reply")
	}
	if _, err := decodeRequest(nil); err == nil {
		t.Error("empty request accepted")
	}
}

func TestMapError(t *testing.T) {
	if !errors.Is(mapError("jms: closed (something)"), jms.ErrClosed) {
		t.Error("closed not mapped")
	}
	if !errors.Is(mapError("x jms: durable subscription has an active subscriber"), jms.ErrDurableActive) {
		t.Error("durable-active not mapped")
	}
	if errors.Is(mapError("random failure"), jms.ErrClosed) {
		t.Error("unknown error over-mapped")
	}
}

func TestWireQueueSendReceive(t *testing.T) {
	_, factory := startServer(t, broker.Unlimited())
	conn, err := factory.CreateConnection()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Start(); err != nil {
		t.Fatal(err)
	}
	sess, err := conn.CreateSession(false, jms.AckAuto)
	if err != nil {
		t.Fatal(err)
	}
	q := jms.Queue("wq")
	p, err := sess.CreateProducer(q)
	if err != nil {
		t.Fatal(err)
	}
	c, err := sess.CreateConsumer(q)
	if err != nil {
		t.Fatal(err)
	}
	if c.EndpointID() != "queue:wq" {
		t.Errorf("endpoint = %q", c.EndpointID())
	}
	msg := jms.NewTextMessage("over the wire")
	msg.SetProperty("k", jms.Int64(5))
	if err := p.Send(msg, jms.DefaultSendOptions()); err != nil {
		t.Fatal(err)
	}
	if msg.ID == "" || msg.Timestamp.IsZero() {
		t.Error("send reply did not reflect provider headers")
	}
	got, err := c.Receive(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatal("receive timed out")
	}
	if got.Body.(jms.TextBody) != "over the wire" {
		t.Errorf("body = %v", got.Body)
	}
	if got.Int64Property("k") != 5 {
		t.Error("properties lost in transit")
	}
	if got.ID != msg.ID {
		t.Errorf("IDs differ: %q vs %q", got.ID, msg.ID)
	}
}

func TestWireReceiveTimeout(t *testing.T) {
	_, factory := startServer(t, broker.Unlimited())
	conn, err := factory.CreateConnection()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Start(); err != nil {
		t.Fatal(err)
	}
	sess, err := conn.CreateSession(false, jms.AckAuto)
	if err != nil {
		t.Fatal(err)
	}
	c, err := sess.CreateConsumer(jms.Queue("empty"))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	msg, err := c.Receive(80 * time.Millisecond)
	if err != nil || msg != nil {
		t.Fatalf("got %v, %v", msg, err)
	}
	if time.Since(start) < 60*time.Millisecond {
		t.Error("returned too early")
	}
	msg, err = c.ReceiveNoWait()
	if err != nil || msg != nil {
		t.Fatalf("ReceiveNoWait got %v, %v", msg, err)
	}
}

func TestWireTransactions(t *testing.T) {
	_, factory := startServer(t, broker.Unlimited())
	conn, err := factory.CreateConnection()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Start(); err != nil {
		t.Fatal(err)
	}
	txSess, err := conn.CreateSession(true, 0)
	if err != nil {
		t.Fatal(err)
	}
	rxSess, err := conn.CreateSession(false, jms.AckAuto)
	if err != nil {
		t.Fatal(err)
	}
	q := jms.Queue("wtx")
	p, err := txSess.CreateProducer(q)
	if err != nil {
		t.Fatal(err)
	}
	c, err := rxSess.CreateConsumer(q)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Send(jms.NewTextMessage("staged"), jms.DefaultSendOptions()); err != nil {
		t.Fatal(err)
	}
	if msg, err := c.Receive(50 * time.Millisecond); err != nil || msg != nil {
		t.Fatalf("uncommitted visible: %v, %v", msg, err)
	}
	if err := txSess.Commit(); err != nil {
		t.Fatal(err)
	}
	msg, err := c.Receive(2 * time.Second)
	if err != nil || msg == nil {
		t.Fatalf("after commit: %v, %v", msg, err)
	}
	// Rollback path.
	if err := p.Send(jms.NewTextMessage("doomed"), jms.DefaultSendOptions()); err != nil {
		t.Fatal(err)
	}
	if err := txSess.Rollback(); err != nil {
		t.Fatal(err)
	}
	if msg, err := c.Receive(50 * time.Millisecond); err != nil || msg != nil {
		t.Fatalf("rolled-back visible: %v, %v", msg, err)
	}
	// Local guards.
	if err := rxSess.Commit(); !errors.Is(err, jms.ErrNotTransacted) {
		t.Errorf("commit on non-tx: %v", err)
	}
	if err := txSess.Acknowledge(); !errors.Is(err, jms.ErrTransacted) {
		t.Errorf("ack on tx: %v", err)
	}
}

func TestWireDurableSubscriber(t *testing.T) {
	_, factory := startServer(t, broker.Unlimited())
	conn, err := factory.CreateConnection()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.SetClientID("wire-client"); err != nil {
		t.Fatal(err)
	}
	if conn.ClientID() != "wire-client" {
		t.Error("client ID not cached")
	}
	if err := conn.Start(); err != nil {
		t.Fatal(err)
	}
	sess, err := conn.CreateSession(false, jms.AckAuto)
	if err != nil {
		t.Fatal(err)
	}
	topic := jms.Topic("wt")
	sub, err := sess.CreateDurableSubscriber(topic, "watch")
	if err != nil {
		t.Fatal(err)
	}
	if sub.EndpointID() != "sub:wire-client:watch" {
		t.Errorf("endpoint = %q", sub.EndpointID())
	}
	if err := sub.Close(); err != nil {
		t.Fatal(err)
	}
	p, err := sess.CreateProducer(topic)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Send(jms.NewTextMessage("while away"), jms.DefaultSendOptions()); err != nil {
		t.Fatal(err)
	}
	sub2, err := sess.CreateDurableSubscriber(topic, "watch")
	if err != nil {
		t.Fatal(err)
	}
	msg, err := sub2.Receive(2 * time.Second)
	if err != nil || msg == nil {
		t.Fatalf("durable redelivery: %v, %v", msg, err)
	}
	if err := sub2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sess.Unsubscribe("watch"); err != nil {
		t.Fatal(err)
	}
	if err := sess.Unsubscribe("watch"); !errors.Is(err, jms.ErrUnknownSubscription) {
		t.Errorf("double unsubscribe: %v", err)
	}
}

func TestWireListener(t *testing.T) {
	_, factory := startServer(t, broker.Unlimited())
	conn, err := factory.CreateConnection()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Start(); err != nil {
		t.Fatal(err)
	}
	sess, err := conn.CreateSession(false, jms.AckAuto)
	if err != nil {
		t.Fatal(err)
	}
	q := jms.Queue("wl")
	c, err := sess.CreateConsumer(q)
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan string, 5)
	if err := c.SetListener(func(m *jms.Message) {
		got <- string(m.Body.(jms.TextBody))
	}); err != nil {
		t.Fatal(err)
	}
	p, err := sess.CreateProducer(q)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Send(jms.NewTextMessage("async"), jms.DefaultSendOptions()); err != nil {
		t.Fatal(err)
	}
	select {
	case v := <-got:
		if v != "async" {
			t.Errorf("got %q", v)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("listener never fired")
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestWireClientAckRecover(t *testing.T) {
	_, factory := startServer(t, broker.Unlimited())
	conn, err := factory.CreateConnection()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Start(); err != nil {
		t.Fatal(err)
	}
	sess, err := conn.CreateSession(false, jms.AckClient)
	if err != nil {
		t.Fatal(err)
	}
	q := jms.Queue("wca")
	p, err := sess.CreateProducer(q)
	if err != nil {
		t.Fatal(err)
	}
	c, err := sess.CreateConsumer(q)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Send(jms.NewTextMessage("x"), jms.DefaultSendOptions()); err != nil {
		t.Fatal(err)
	}
	if msg, err := c.Receive(2 * time.Second); err != nil || msg == nil {
		t.Fatalf("first receive: %v, %v", msg, err)
	}
	if err := sess.Recover(); err != nil {
		t.Fatal(err)
	}
	msg, err := c.Receive(2 * time.Second)
	if err != nil || msg == nil || !msg.Redelivered {
		t.Fatalf("redelivery: %v, %v", msg, err)
	}
	if err := sess.Acknowledge(); err != nil {
		t.Fatal(err)
	}
}

func TestWireConnectionCloseUnblocksClient(t *testing.T) {
	_, factory := startServer(t, broker.Unlimited())
	conn, err := factory.CreateConnection()
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Start(); err != nil {
		t.Fatal(err)
	}
	sess, err := conn.CreateSession(false, jms.AckAuto)
	if err != nil {
		t.Fatal(err)
	}
	c, err := sess.CreateConsumer(jms.Queue("blocked"))
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		_, err := c.Receive(30 * time.Second)
		errCh <- err
	}()
	time.Sleep(50 * time.Millisecond)
	if err := conn.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		if !errors.Is(err, jms.ErrClosed) {
			t.Errorf("blocked receive returned %v", err)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("blocked receive did not unblock")
	}
	// Operations after close fail fast.
	if _, err := conn.CreateSession(false, jms.AckAuto); !errors.Is(err, jms.ErrClosed) {
		t.Errorf("create session after close: %v", err)
	}
}

func TestWireServerCrashPropagates(t *testing.T) {
	b, factory := startServer(t, broker.Unlimited())
	conn, err := factory.CreateConnection()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Start(); err != nil {
		t.Fatal(err)
	}
	sess, err := conn.CreateSession(false, jms.AckAuto)
	if err != nil {
		t.Fatal(err)
	}
	p, err := sess.CreateProducer(jms.Queue("q"))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Send(jms.NewTextMessage("pre"), jms.DefaultSendOptions()); err != nil {
		t.Fatal(err)
	}
	b.Crash()
	if err := p.Send(jms.NewTextMessage("post"), jms.DefaultSendOptions()); err == nil {
		t.Error("send to crashed broker succeeded")
	}
}

// TestWireHarnessEndToEnd runs the full harness + formal model against
// the provider reached over the wire — the protocol-bridge configuration
// of the reproduction.
func TestWireHarnessEndToEnd(t *testing.T) {
	_, factory := startServer(t, broker.Unlimited())
	cfg := harness.Config{
		Name:        "wire-e2e",
		Destination: jms.Queue("wireq"),
		Producers: []harness.ProducerConfig{
			{ID: "p1", Rate: 200, BodySize: 64},
			{ID: "p2", Rate: 200, BodySize: 64, Transacted: true, TxBatch: 5},
		},
		Consumers: []harness.ConsumerConfig{{ID: "c1"}, {ID: "c2"}},
		Warmup:    20 * time.Millisecond,
		Run:       250 * time.Millisecond,
		Warmdown:  250 * time.Millisecond,
	}
	tr, err := harness.NewRunner(factory, nil).Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	report, err := model.Check(tr, model.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() {
		t.Fatalf("wire provider failed conformance:\n%s", report)
	}
	m, err := analysis.Analyze(tr, analysis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Consumer.Count == 0 {
		t.Error("nothing delivered over the wire")
	}
	if m.Delay.Mean <= 0 {
		t.Error("no delay measured")
	}
}

func TestWirePubSubEndToEnd(t *testing.T) {
	_, factory := startServer(t, broker.Unlimited())
	cfg := harness.Config{
		Name:        "wire-pubsub",
		Destination: jms.Topic("wiret"),
		Producers:   []harness.ProducerConfig{{ID: "pub", Rate: 200, BodySize: 32}},
		Consumers: []harness.ConsumerConfig{
			{ID: "s1"},
			{ID: "d1", Durable: true, SubName: "wd", ClientID: "wc1"},
		},
		Warmup:   20 * time.Millisecond,
		Run:      200 * time.Millisecond,
		Warmdown: 250 * time.Millisecond,
	}
	tr, err := harness.NewRunner(factory, nil).Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	report, err := model.Check(tr, model.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() {
		t.Fatalf("wire pub/sub failed conformance:\n%s", report)
	}
}

func TestWireSelectors(t *testing.T) {
	_, factory := startServer(t, broker.Unlimited())
	conn, err := factory.CreateConnection()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.SetClientID("selc"); err != nil {
		t.Fatal(err)
	}
	if err := conn.Start(); err != nil {
		t.Fatal(err)
	}
	sess, err := conn.CreateSession(false, jms.AckAuto)
	if err != nil {
		t.Fatal(err)
	}
	topic := jms.Topic("wsel")
	eu, err := sess.CreateConsumerWithSelector(topic, "region = 'EU'")
	if err != nil {
		t.Fatal(err)
	}
	p, err := sess.CreateProducer(topic)
	if err != nil {
		t.Fatal(err)
	}
	us := jms.NewTextMessage("us")
	us.SetProperty("region", jms.Str("US"))
	if err := p.Send(us, jms.DefaultSendOptions()); err != nil {
		t.Fatal(err)
	}
	euMsg := jms.NewTextMessage("eu")
	euMsg.SetProperty("region", jms.Str("EU"))
	if err := p.Send(euMsg, jms.DefaultSendOptions()); err != nil {
		t.Fatal(err)
	}
	got, err := eu.Receive(2 * time.Second)
	if err != nil || got == nil {
		t.Fatalf("receive: %v, %v", got, err)
	}
	if got.Body.(jms.TextBody) != "eu" {
		t.Errorf("selector leaked: got %q", got.Body)
	}
	// Invalid selector errors propagate over the wire.
	if _, err := sess.CreateConsumerWithSelector(topic, "broken ("); !errors.Is(err, jms.ErrInvalidSelector) {
		t.Errorf("invalid selector over wire: %v", err)
	}
	// Durable + selector over the wire.
	dur, err := sess.CreateDurableSubscriberWithSelector(topic, "wd", "region = 'EU'")
	if err != nil {
		t.Fatal(err)
	}
	if dur.EndpointID() != "sub:selc:wd" {
		t.Errorf("endpoint = %q", dur.EndpointID())
	}
}

func TestWireQueueBrowser(t *testing.T) {
	_, factory := startServer(t, broker.Unlimited())
	conn, err := factory.CreateConnection()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Start(); err != nil {
		t.Fatal(err)
	}
	sess, err := conn.CreateSession(false, jms.AckAuto)
	if err != nil {
		t.Fatal(err)
	}
	q := jms.Queue("wbrowse")
	p, err := sess.CreateProducer(q)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := p.Send(jms.NewTextMessage("queued"), jms.DefaultSendOptions()); err != nil {
			t.Fatal(err)
		}
	}
	br, err := sess.CreateBrowser(q, "")
	if err != nil {
		t.Fatal(err)
	}
	msgs, err := br.Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 3 {
		t.Errorf("browsed %d over the wire", len(msgs))
	}
	// Still consumable afterwards.
	c, err := sess.CreateConsumer(q)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		msg, err := c.Receive(2 * time.Second)
		if err != nil || msg == nil {
			t.Fatalf("consume %d after browse: %v, %v", i, msg, err)
		}
	}
	if _, err := sess.CreateBrowser(q, "bad ("); !errors.Is(err, jms.ErrInvalidSelector) {
		t.Errorf("invalid selector over wire: %v", err)
	}
	if err := br.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := br.Enumerate(); !errors.Is(err, jms.ErrClosed) {
		t.Errorf("enumerate after close: %v", err)
	}
}

func TestWireTemporaryQueueAndRequestReply(t *testing.T) {
	_, factory := startServer(t, broker.Unlimited())

	// Server side of the echo service, over the wire.
	serverConn, err := factory.CreateConnection()
	if err != nil {
		t.Fatal(err)
	}
	defer serverConn.Close()
	if err := serverConn.Start(); err != nil {
		t.Fatal(err)
	}
	serverSess, err := serverConn.CreateSession(false, jms.AckAuto)
	if err != nil {
		t.Fatal(err)
	}
	service := jms.Queue("wire-echo")
	serverCons, err := serverSess.CreateConsumer(service)
	if err != nil {
		t.Fatal(err)
	}
	replyProd, err := serverSess.CreateProducer(nil)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			req, err := serverCons.Receive(50 * time.Millisecond)
			if err != nil {
				return
			}
			if req == nil {
				continue
			}
			if err := jms.Reply(replyProd, req, jms.NewTextMessage("pong"), jms.DefaultSendOptions()); err != nil {
				t.Errorf("reply: %v", err)
				return
			}
		}
	}()
	defer func() {
		close(stop)
		<-done
	}()

	// Client side: requestor over its own wire connection.
	clientConn, err := factory.CreateConnection()
	if err != nil {
		t.Fatal(err)
	}
	defer clientConn.Close()
	if err := clientConn.Start(); err != nil {
		t.Fatal(err)
	}
	clientSess, err := clientConn.CreateSession(false, jms.AckAuto)
	if err != nil {
		t.Fatal(err)
	}
	requestor, err := jms.NewRequestor(clientSess, service)
	if err != nil {
		t.Fatal(err)
	}
	defer requestor.Close()
	if !strings.HasPrefix(requestor.ReplyTo().Name(), "TEMP.") {
		t.Errorf("reply-to = %q", requestor.ReplyTo())
	}
	reply, err := requestor.Request(jms.NewTextMessage("ping"), jms.DefaultSendOptions(), 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if reply == nil || reply.Body.(jms.TextBody) != "pong" {
		t.Fatalf("reply = %v", reply)
	}
	// Ownership is enforced across the wire too.
	if _, err := serverSess.CreateConsumer(requestor.ReplyTo()); !errors.Is(err, jms.ErrInvalidDestination) {
		t.Errorf("foreign temp consumer over wire: %v", err)
	}
}
