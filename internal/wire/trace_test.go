package wire

import (
	"fmt"
	"testing"
	"time"

	"jmsharness/internal/broker"
	"jmsharness/internal/jms"
	"jmsharness/internal/obs"
)

// startTracedServer is startServer with one span recorder shared by
// the broker, the wire server and the client factory — the in-process
// equivalent of a fully traced deployment.
func startTracedServer(t *testing.T) (*obs.Spans, *Factory) {
	t.Helper()
	reg := obs.NewRegistry()
	spans := obs.NewSpans(reg, obs.DefaultMaxInFlight, obs.DefaultKeep)
	b, err := broker.New(broker.Options{Name: "traced", Spans: spans})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(b, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv.WithSpans(spans)
	srv.Start()
	t.Cleanup(func() {
		_ = srv.Close()
		_ = b.Close()
	})
	return spans, NewFactory(srv.Addr()).WithSpans(spans)
}

// TestWireTraceRoundTrip sends one message across the wire and checks
// the trace context survives end to end: the consumer sees the
// producer's trace ID with the hop counter advanced by the server, and
// the recorder links the client RPC, the server receive, and the broker
// enqueue lifecycle under that one trace ID.
func TestWireTraceRoundTrip(t *testing.T) {
	spans, f := startTracedServer(t)
	conn, err := f.CreateConnection()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Start(); err != nil {
		t.Fatal(err)
	}
	sess, err := conn.CreateSession(false, jms.AckAuto)
	if err != nil {
		t.Fatal(err)
	}
	q := jms.Queue("trace.q")
	p, err := sess.CreateProducer(q)
	if err != nil {
		t.Fatal(err)
	}
	c, err := sess.CreateConsumer(q)
	if err != nil {
		t.Fatal(err)
	}

	sent := jms.NewTextMessage("traced")
	if err := p.Send(sent, jms.DefaultSendOptions()); err != nil {
		t.Fatal(err)
	}
	tid := obs.MessageTraceID(sent)
	if tid == "" {
		t.Fatal("send did not stamp a trace ID on the caller's message")
	}

	got, err := c.Receive(5 * time.Second)
	if err != nil || got == nil {
		t.Fatalf("receive: msg=%v err=%v", got, err)
	}
	if gotID := obs.MessageTraceID(got); gotID != tid {
		t.Errorf("consumer trace ID = %q, want %q", gotID, tid)
	}
	if hop := obs.MessageTraceHop(got); hop != 1 {
		t.Errorf("consumer hop = %d, want 1 (advanced once by the server)", hop)
	}

	// The completed spans (RPC and server-recv immediately, the enqueue
	// lifecycle once the auto-ack settles) must all link under tid.
	want := map[string]bool{obs.KindSendRPC: false, obs.KindServerRecv: false, obs.KindEnqueue: false}
	deadline := time.Now().Add(5 * time.Second)
	for {
		for _, sp := range spans.Recent() {
			if sp.TraceID == tid {
				want[sp.Kind] = true
			}
		}
		missing := 0
		for _, seen := range want {
			if !seen {
				missing++
			}
		}
		if missing == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace %s incomplete after 5s: %+v", tid, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestReconnectRetryReusesTraceID resets every TCP connection
// mid-workload: a send retried across the reconnect must carry the
// SAME trace ID as the original attempt (the retry is the same logical
// message), while distinct sends still get distinct IDs.
func TestReconnectRetryReusesTraceID(t *testing.T) {
	proxy, f, _ := startProxiedServer(t)
	conn, err := f.CreateConnection()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Start(); err != nil {
		t.Fatal(err)
	}
	sess, err := conn.CreateSession(false, jms.AckClient)
	if err != nil {
		t.Fatal(err)
	}
	q := jms.Queue("trace.retry.q")
	p, err := sess.CreateProducer(q)
	if err != nil {
		t.Fatal(err)
	}
	c, err := sess.CreateConsumer(q)
	if err != nil {
		t.Fatal(err)
	}

	const total = 20
	opts := jms.DefaultSendOptions()
	opts.Mode = jms.Persistent
	sentID := map[string]string{} // body -> trace ID reflected onto the sent message
	for i := 0; i < total; i++ {
		m := jms.NewTextMessage(fmt.Sprintf("m%d", i))
		if err := p.Send(m, opts); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
		sentID[fmt.Sprintf("m%d", i)] = obs.MessageTraceID(m)
		if i == total/2 {
			proxy.ResetAll()
		}
	}
	distinct := map[string]bool{}
	for _, id := range sentID {
		if id == "" {
			t.Fatal("a send left no trace ID on its message")
		}
		distinct[id] = true
	}
	if len(distinct) != total {
		t.Fatalf("%d sends produced %d distinct trace IDs: a retry re-minted", total, len(distinct))
	}

	seen := map[string]bool{}
	for len(seen) < total {
		msg, err := c.Receive(5 * time.Second)
		if err != nil || msg == nil {
			t.Fatalf("receive after %d/%d: msg=%v err=%v", len(seen), total, msg, err)
		}
		body := string(msg.Body.(jms.TextBody))
		if want := sentID[body]; obs.MessageTraceID(msg) != want {
			t.Errorf("%s arrived with trace %q, want %q (retry re-minted mid-flight)",
				body, obs.MessageTraceID(msg), want)
		}
		seen[body] = true
		if err := sess.Acknowledge(); err != nil {
			t.Fatalf("ack: %v", err)
		}
	}
	if f.Reconnects() < 1 {
		t.Errorf("Reconnects() = %d, want >= 1", f.Reconnects())
	}
}
