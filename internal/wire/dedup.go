package wire

import (
	"sync"
	"time"
)

// dedupCapacity bounds the send-dedup cache. The retry window a token
// must survive is one reconnection (milliseconds of traffic), so a few
// thousand completed sends of slack is generous while keeping the
// cache O(1) memory.
const dedupCapacity = 8192

// sendStamp is the provider-assigned header set of a completed send,
// replayed verbatim to a deduplicated retry.
type sendStamp struct {
	id         string
	timestamp  time.Time
	expiration time.Time
}

// dedupEntry tracks one token: done closes when its send settles; ok
// distinguishes a committed send (stamp valid) from an aborted one.
type dedupEntry struct {
	done  chan struct{}
	stamp sendStamp
	ok    bool
}

// sendDedup makes client send retries idempotent across reconnects.
// A reconnecting client re-issues any send whose reply it never saw,
// carrying the same token; if the original actually reached the
// provider, replaying its stamps instead of re-sending keeps Delivery
// Integrity (Property 1) exactly-once across connection resets. The
// cache is server-level — it must outlive the per-connection state
// that dies with the TCP connection — and FIFO-bounded.
type sendDedup struct {
	mu      sync.Mutex
	entries map[string]*dedupEntry
	order   []string // FIFO eviction ring over inserted tokens
	next    int
}

func newSendDedup() *sendDedup {
	return &sendDedup{entries: map[string]*dedupEntry{}}
}

// begin claims token. If the token's send already completed, its stamp
// is returned with hit=true. If another send with the same token is in
// flight (the original racing its own retry), begin waits for that
// outcome. Otherwise the caller owns the token and must settle it by
// calling exactly one of commit (send reached the provider) or abort
// (send failed; a retry may try again).
func (d *sendDedup) begin(token string) (stamp sendStamp, hit bool, commit func(sendStamp), abort func()) {
	for {
		d.mu.Lock()
		if e, ok := d.entries[token]; ok {
			select {
			case <-e.done:
				if e.ok {
					st := e.stamp
					d.mu.Unlock()
					return st, true, nil, nil
				}
				// The previous attempt failed; this retry takes over.
				delete(d.entries, token)
				d.mu.Unlock()
				continue
			default:
			}
			done := e.done
			d.mu.Unlock()
			<-done
			continue
		}
		e := &dedupEntry{done: make(chan struct{})}
		d.entries[token] = e
		d.recordLocked(token)
		d.mu.Unlock()
		commit = func(st sendStamp) {
			d.mu.Lock()
			e.stamp = st
			e.ok = true
			close(e.done)
			d.mu.Unlock()
		}
		abort = func() {
			d.mu.Lock()
			if d.entries[token] == e {
				delete(d.entries, token)
			}
			close(e.done)
			d.mu.Unlock()
		}
		return sendStamp{}, false, commit, abort
	}
}

// recordLocked notes token in the eviction ring, dropping the oldest
// tracked token once the ring is full. Callers hold mu.
func (d *sendDedup) recordLocked(token string) {
	if len(d.order) < dedupCapacity {
		d.order = append(d.order, token)
		return
	}
	delete(d.entries, d.order[d.next])
	d.order[d.next] = token
	d.next = (d.next + 1) % dedupCapacity
}
