package wire

import (
	"sync"
	"time"

	"jmsharness/internal/obs"
)

// Bounds on the send-dedup cache. The retry window a token must
// survive is one reconnection (milliseconds to low seconds of
// traffic), so a few thousand completed sends of count slack plus a
// generous age ceiling keeps the cache O(1) memory even under
// pipelined retry storms.
const (
	dedupCapacity = 8192
	dedupMaxAge   = 2 * time.Minute
)

// sendStamp is the provider-assigned header set of a completed send,
// replayed verbatim to a deduplicated retry.
type sendStamp struct {
	id         string
	timestamp  time.Time
	expiration time.Time
}

// dedupEntry tracks one token: done closes when its send settles; ok
// distinguishes a committed send (stamp valid) from an aborted one.
type dedupEntry struct {
	done  chan struct{}
	stamp sendStamp
	ok    bool
}

// dedupRecord is one insertion-ordered eviction queue slot.
type dedupRecord struct {
	token string
	at    time.Time
}

// sendDedup makes client send retries idempotent across reconnects.
// A reconnecting client re-issues any send whose reply (or pipelined
// completion) it never saw, carrying the same token; if the original
// actually reached the provider, replaying its stamps instead of
// re-sending keeps Delivery Integrity (Property 1) exactly-once across
// connection resets. The cache is server-level — it must outlive the
// per-connection state that dies with the TCP connection — and bounded
// by both count and age: settled tokens are evicted once the cache
// exceeds dedupCapacity or the token is older than dedupMaxAge.
// Unsettled (in-flight) tokens are never evicted: a retry racing its
// original must observe the original's outcome.
type sendDedup struct {
	mu      sync.Mutex
	entries map[string]*dedupEntry
	queue   []dedupRecord // insertion-ordered eviction queue
	gauge   *obs.Gauge    // optional wire.dedup_entries
	now     func() time.Time
}

func newSendDedup() *sendDedup {
	return &sendDedup{entries: map[string]*dedupEntry{}, now: time.Now}
}

// setGauge publishes the live entry count on g.
func (d *sendDedup) setGauge(g *obs.Gauge) {
	d.mu.Lock()
	d.gauge = g
	d.publishLocked()
	d.mu.Unlock()
}

// size reports the live entry count.
func (d *sendDedup) size() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.entries)
}

// begin claims token. If the token's send already completed, its stamp
// is returned with hit=true. If another send with the same token is in
// flight (the original racing its own retry), begin waits for that
// outcome. Otherwise the caller owns the token and must settle it by
// calling exactly one of commit (send reached the provider) or abort
// (send failed; a retry may try again).
func (d *sendDedup) begin(token string) (stamp sendStamp, hit bool, commit func(sendStamp), abort func()) {
	for {
		d.mu.Lock()
		if e, ok := d.entries[token]; ok {
			select {
			case <-e.done:
				if e.ok {
					st := e.stamp
					d.mu.Unlock()
					return st, true, nil, nil
				}
				// The previous attempt failed; this retry takes over.
				delete(d.entries, token)
				d.mu.Unlock()
				continue
			default:
			}
			done := e.done
			d.mu.Unlock()
			<-done
			continue
		}
		e := &dedupEntry{done: make(chan struct{})}
		d.entries[token] = e
		d.recordLocked(token)
		d.publishLocked()
		d.mu.Unlock()
		commit = func(st sendStamp) {
			d.mu.Lock()
			e.stamp = st
			e.ok = true
			close(e.done)
			d.mu.Unlock()
		}
		abort = func() {
			d.mu.Lock()
			if d.entries[token] == e {
				delete(d.entries, token)
				d.publishLocked()
			}
			close(e.done)
			d.mu.Unlock()
		}
		return sendStamp{}, false, commit, abort
	}
}

// recordLocked notes token in the eviction queue and evicts what the
// count and age bounds no longer cover. Callers hold mu.
func (d *sendDedup) recordLocked(token string) {
	d.queue = append(d.queue, dedupRecord{token: token, at: d.now()})
	now := d.now()
	// Scan at most one pass over the queue: entries that are still in
	// flight are re-queued rather than evicted, and re-queued entries
	// must not be revisited (over count with every entry unsettled, the
	// loop would otherwise spin forever).
	scans := len(d.queue)
	for i := 0; i < scans && len(d.queue) > 0; i++ {
		overCount := len(d.queue) > dedupCapacity
		overAge := now.Sub(d.queue[0].at) > dedupMaxAge
		if !overCount && !overAge {
			break
		}
		rec := d.queue[0]
		d.queue = d.queue[1:]
		e, ok := d.entries[rec.token]
		if !ok {
			continue // aborted or superseded; nothing left to evict
		}
		select {
		case <-e.done:
			delete(d.entries, rec.token)
		default:
			// Still in flight — keep it, behind the settled entries.
			d.queue = append(d.queue, rec)
		}
	}
	d.publishLocked()
}

// publishLocked mirrors the entry count onto the gauge. Callers hold
// mu.
func (d *sendDedup) publishLocked() {
	if d.gauge != nil {
		d.gauge.Set(int64(len(d.entries)))
	}
}
