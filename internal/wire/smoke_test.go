package wire

import (
	"os"
	"testing"
	"time"

	"jmsharness/internal/broker"
	"jmsharness/internal/jms"
)

// TestPipelinedFasterThanBlocking is ci.sh's JMSPIPE smoke stage: the
// same send workload must run strictly faster through the credit
// window than through blocking round trips. The margin is large on any
// hardware — the blocking arm pays one TCP round trip per message, the
// pipelined arm one per window — but wall-clock comparisons still
// flake under arbitrary scheduler pressure, so the stage is opt-in
// (JMSPIPE_SMOKE=1) and each arm keeps the best of three runs.
func TestPipelinedFasterThanBlocking(t *testing.T) {
	if os.Getenv("JMSPIPE_SMOKE") == "" {
		t.Skip("set JMSPIPE_SMOKE=1 to run the pipelining smoke comparison")
	}
	_, f := startServer(t, broker.Profile{})
	const (
		messages = 512
		window   = 64
		rounds   = 3
	)
	payload := make([]byte, 256)
	opts := jms.DefaultSendOptions()

	producer := func(f *Factory, queue string) jms.Producer {
		t.Helper()
		conn, err := f.CreateConnection()
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = conn.Close() })
		if err := conn.Start(); err != nil {
			t.Fatal(err)
		}
		sess, err := conn.CreateSession(false, jms.AckAuto)
		if err != nil {
			t.Fatal(err)
		}
		p, err := sess.CreateProducer(jms.Queue(queue))
		if err != nil {
			t.Fatal(err)
		}
		return p
	}

	best := func(run func() time.Duration) time.Duration {
		min := time.Duration(0)
		for i := 0; i < rounds; i++ {
			if d := run(); min == 0 || d < min {
				min = d
			}
		}
		return min
	}

	bp := producer(f, "smoke-blocking")
	blocking := best(func() time.Duration {
		start := time.Now()
		for i := 0; i < messages; i++ {
			if err := bp.Send(jms.NewBytesMessage(payload), opts); err != nil {
				t.Fatal(err)
			}
		}
		return time.Since(start)
	})

	pp := producer(f.WithPipelining(window), "smoke-pipelined")
	ap, ok := pp.(jms.AsyncProducer)
	if !ok {
		t.Fatal("pipelined wire producer is not an AsyncProducer")
	}
	pipelined := best(func() time.Duration {
		start := time.Now()
		pending := make([]jms.Completion, 0, window)
		settle := func() {
			for _, comp := range pending {
				if err := comp(); err != nil {
					t.Fatal(err)
				}
			}
			pending = pending[:0]
		}
		for i := 0; i < messages; i++ {
			comp, err := ap.SendAsync(jms.NewBytesMessage(payload), opts)
			if err != nil {
				t.Fatal(err)
			}
			pending = append(pending, comp)
			if len(pending) == window {
				settle()
			}
		}
		settle()
		return time.Since(start)
	})

	t.Logf("blocking %v, pipelined %v for %d sends", blocking, pipelined, messages)
	if pipelined >= blocking {
		t.Fatalf("pipelined sends (%v) not faster than blocking (%v)", pipelined, blocking)
	}
}
