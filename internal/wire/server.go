package wire

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"jmsharness/internal/jms"
	"jmsharness/internal/obs"
)

// serverMetrics instruments the wire server: connection churn, request
// throughput and raw frame bytes in each direction (metric names under
// "wire.*").
type serverMetrics struct {
	connsActive  *obs.Gauge
	connsTotal   *obs.Counter
	requests     *obs.Counter
	reqErrors    *obs.Counter
	bytesIn      *obs.Counter
	bytesOut     *obs.Counter
	pipeSends    *obs.Counter
	dedupEntries *obs.Gauge
}

func newServerMetrics(reg *obs.Registry) *serverMetrics {
	return &serverMetrics{
		connsActive:  reg.Gauge("wire.conns_active"),
		connsTotal:   reg.Counter("wire.conns_total"),
		requests:     reg.Counter("wire.requests"),
		reqErrors:    reg.Counter("wire.request_errors"),
		bytesIn:      reg.Counter("wire.bytes_in"),
		bytesOut:     reg.Counter("wire.bytes_out"),
		pipeSends:    reg.Counter("wire.pipe_sends"),
		dedupEntries: reg.Gauge("wire.dedup_entries"),
	}
}

// Server fronts a jms provider (usually the reference broker) with the
// wire protocol. Each accepted TCP connection is backed by one real
// provider connection; sessions, producers and consumers are created on
// demand and addressed by server-assigned IDs.
type Server struct {
	inner    jms.ConnectionFactory
	listener net.Listener
	met      *serverMetrics
	spans    obs.SpanRecorder
	// dedup makes tokenised send retries idempotent across client
	// reconnections; it must outlive individual connections.
	dedup *sendDedup

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	// connWG counts per-connection handlers; Serve waits on it before
	// returning. The background Serve goroutine spawned by Start must
	// NOT share this group — Serve waiting on its own registration
	// would deadlock the goroutine forever after Close.
	connWG sync.WaitGroup
}

// NewServer returns a server fronting inner, listening on addr
// (e.g. "127.0.0.1:0"). Serve must be called to accept connections.
func NewServer(inner jms.ConnectionFactory, addr string) (*Server, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: listening on %s: %w", addr, err)
	}
	s := &Server{
		inner:    inner,
		listener: l,
		met:      newServerMetrics(obs.NewRegistry()),
		dedup:    newSendDedup(),
		conns:    map[net.Conn]struct{}{},
	}
	s.dedup.setGauge(s.met.dedupEntries)
	return s, nil
}

// WithMetrics re-homes the server's instruments in reg (so broker and
// wire metrics share one /metricz). Call before Serve/Start; returns
// the server for chaining.
func (s *Server) WithMetrics(reg *obs.Registry) *Server {
	s.met = newServerMetrics(reg)
	s.dedup.setGauge(s.met.dedupEntries)
	return s
}

// WithSpans records a server-receive hop span (decode → provider
// enqueue) for every send request. The hop counter on the message is
// advanced regardless — that is what links a client's send RPC to the
// broker's enqueue span — the recorder only adds the server-side span.
// Call before Serve/Start; returns the server for chaining.
func (s *Server) WithSpans(rec obs.SpanRecorder) *Server {
	s.spans = rec
	return s
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.listener.Addr().String() }

// Serve accepts connections until Close. It always returns a non-nil
// error; after Close the error wraps net.ErrClosed.
func (s *Server) Serve() error {
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			s.connWG.Wait()
			return fmt.Errorf("wire: accept: %w", err)
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			s.connWG.Wait()
			return fmt.Errorf("wire: accept: %w", net.ErrClosed)
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.connWG.Add(1)
		go func() {
			defer s.connWG.Done()
			s.handleConn(conn)
		}()
	}
}

// Start runs Serve on a background goroutine and returns immediately.
func (s *Server) Start() {
	go func() { _ = s.Serve() }()
}

// Close stops accepting and tears down every client connection.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	err := s.listener.Close()
	for _, c := range conns {
		_ = c.Close()
	}
	return err
}

func (s *Server) removeConn(c net.Conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.conns, c)
}

// connState is the server-side state of one client connection.
type connState struct {
	srv  *Server
	sock net.Conn
	fw   *frameWriter // serialises reply frames onto sock

	// compCh carries settled pipelined sends to the completion
	// batcher, which coalesces them into opPipeCompletion frames.
	compCh chan pipeCompletion
	compWG sync.WaitGroup
	pipeWG sync.WaitGroup

	mu        sync.Mutex
	jmsConn   jms.Connection
	sessions  map[uint64]*sessState
	consumers map[uint64]jms.Consumer
	pipes     map[uint64]*srvPipe
	nextID    uint64
	reqWG     sync.WaitGroup
}

// srvPipe is the server half of one pipelined send stream: a channel
// of decoded sends fed in arrival order by the connection's read loop
// and drained by a dedicated worker, so per-producer FIFO survives the
// fan-out that ordinary requests get.
type srvPipe struct {
	id      uint64
	prod    jms.Producer
	destStr string
	window  int
	ch      chan pipeSendReq
}

// pipeSendReq is one decoded opPipeSend frame.
type pipeSendReq struct {
	seq      uint64
	token    string
	opts     jms.SendOptions
	msg      jms.Message
	decodeAt time.Time
}

// sessState is one server-side session with its lazily created
// producers.
type sessState struct {
	sess      jms.Session
	producers map[string]jms.Producer // by destination string
}

func (s *Server) handleConn(sock net.Conn) {
	defer s.removeConn(sock)
	defer sock.Close()

	s.met.connsTotal.Inc()
	s.met.connsActive.Inc()
	defer s.met.connsActive.Dec()

	jmsConn, err := s.inner.CreateConnection()
	if err != nil {
		// Nothing useful to report without a request to reply to.
		return
	}
	st := &connState{
		srv:       s,
		sock:      sock,
		fw:        newFrameWriter(sock),
		compCh:    make(chan pipeCompletion, pipeCompletionBatch),
		jmsConn:   jmsConn,
		sessions:  map[uint64]*sessState{},
		consumers: map[uint64]jms.Consumer{},
		pipes:     map[uint64]*srvPipe{},
	}
	st.compWG.Add(1)
	go st.runCompletionBatcher()
	defer func() {
		// Close the JMS connection first: it unblocks any dispatch
		// goroutine parked in a consumer Receive, so a dying socket
		// doesn't pin this handler for the rest of a receive timeout.
		_ = jmsConn.Close()
		st.reqWG.Wait()
		// Pipes next: the read loop (sole writer to pipe channels) has
		// exited, so closing them lets workers drain, settle their
		// staged sends, and release the completion batcher.
		st.mu.Lock()
		pipes := st.pipes
		st.pipes = map[uint64]*srvPipe{}
		st.mu.Unlock()
		for _, p := range pipes {
			close(p.ch)
		}
		st.pipeWG.Wait()
		close(st.compCh)
		st.compWG.Wait()
	}()

	for {
		payload, err := ReadFrame(sock)
		if err != nil {
			return
		}
		s.met.bytesIn.Add(int64(len(payload)) + 4)
		req, err := decodeRequest(payload)
		if err != nil {
			return
		}
		s.met.requests.Inc()
		if req.op == opCloseConn {
			st.sendReply(req.reqID, "", nil)
			return
		}
		if req.op == opPipeSend {
			// Pipelined sends are queued inline, in arrival order — a
			// goroutine per frame (the ordinary dispatch) would lose
			// the per-producer FIFO the pipe promises. A well-behaved
			// client holds at most the granted window of uncompleted
			// sends, so the queue insert never blocks for long.
			if !st.handlePipeSend(req) {
				return
			}
			continue
		}
		st.reqWG.Add(1)
		go func() {
			defer st.reqWG.Done()
			st.dispatch(req)
		}()
	}
}

// sendReply writes one reply frame.
func (st *connState) sendReply(reqID uint64, errMsg string, build func(*jms.Encoder)) {
	if errMsg != "" {
		st.srv.met.reqErrors.Inc()
	}
	n, _ := st.fw.writeReply(reqID, errMsg, build)
	st.srv.met.bytesOut.Add(int64(n) + 4)
}

// dispatch serves one request and sends its reply.
func (st *connState) dispatch(req request) {
	switch req.op {
	case opSetClientID:
		id := req.body.String()
		if err := req.body.Err(); err != nil {
			st.sendReply(req.reqID, err.Error(), nil)
			return
		}
		st.replyErr(req.reqID, st.jmsConn.SetClientID(id))

	case opStart:
		st.replyErr(req.reqID, st.jmsConn.Start())

	case opStop:
		st.replyErr(req.reqID, st.jmsConn.Stop())

	case opCreateSession:
		transacted := req.body.Bool()
		ackMode := jms.AckMode(req.body.Byte())
		if err := req.body.Err(); err != nil {
			st.sendReply(req.reqID, err.Error(), nil)
			return
		}
		sess, err := st.jmsConn.CreateSession(transacted, ackMode)
		if err != nil {
			st.sendReply(req.reqID, err.Error(), nil)
			return
		}
		st.mu.Lock()
		st.nextID++
		id := st.nextID
		st.sessions[id] = &sessState{sess: sess, producers: map[string]jms.Producer{}}
		st.mu.Unlock()
		st.sendReply(req.reqID, "", func(e *jms.Encoder) { e.Uvarint(id) })

	case opCloseSession:
		id := req.body.Uvarint()
		ss, err := st.session(id)
		if err != nil {
			st.sendReply(req.reqID, err.Error(), nil)
			return
		}
		st.mu.Lock()
		delete(st.sessions, id)
		st.mu.Unlock()
		st.replyErr(req.reqID, ss.sess.Close())

	case opSend:
		st.handleSend(req)

	case opCreateConsumer:
		st.handleCreateConsumer(req)

	case opCloseConsumer:
		id := req.body.Uvarint()
		st.mu.Lock()
		cons, ok := st.consumers[id]
		delete(st.consumers, id)
		st.mu.Unlock()
		if !ok {
			st.sendReply(req.reqID, "wire: unknown consumer", nil)
			return
		}
		st.replyErr(req.reqID, cons.Close())

	case opReceive:
		st.handleReceive(req)

	case opAck:
		st.sessionOp(req, func(s jms.Session) error { return s.Acknowledge() })

	case opRecover:
		st.sessionOp(req, func(s jms.Session) error { return s.Recover() })

	case opCommit:
		st.sessionOp(req, func(s jms.Session) error { return s.Commit() })

	case opRollback:
		st.sessionOp(req, func(s jms.Session) error { return s.Rollback() })

	case opBrowse:
		st.handleBrowse(req)

	case opCreateTempQueue:
		id := req.body.Uvarint()
		ss, err := st.session(id)
		if err != nil {
			st.sendReply(req.reqID, err.Error(), nil)
			return
		}
		q, err := ss.sess.CreateTemporaryQueue()
		if err != nil {
			st.sendReply(req.reqID, err.Error(), nil)
			return
		}
		st.sendReply(req.reqID, "", func(e *jms.Encoder) { e.String(q.Name()) })

	case opPipeOpen:
		st.handlePipeOpen(req)

	case opAckBatch:
		st.handleAckBatch(req)

	case opUnsubscribe:
		id := req.body.Uvarint()
		name := req.body.String()
		if err := req.body.Err(); err != nil {
			st.sendReply(req.reqID, err.Error(), nil)
			return
		}
		ss, err := st.session(id)
		if err != nil {
			st.sendReply(req.reqID, err.Error(), nil)
			return
		}
		st.replyErr(req.reqID, ss.sess.Unsubscribe(name))

	default:
		st.sendReply(req.reqID, fmt.Sprintf("wire: unknown opcode %d", req.op), nil)
	}
}

func (st *connState) replyErr(reqID uint64, err error) {
	if err != nil {
		st.sendReply(reqID, err.Error(), nil)
		return
	}
	st.sendReply(reqID, "", nil)
}

func (st *connState) session(id uint64) (*sessState, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	ss, ok := st.sessions[id]
	if !ok {
		return nil, errors.New("wire: unknown session")
	}
	return ss, nil
}

func (st *connState) sessionOp(req request, op func(jms.Session) error) {
	id := req.body.Uvarint()
	if err := req.body.Err(); err != nil {
		st.sendReply(req.reqID, err.Error(), nil)
		return
	}
	ss, err := st.session(id)
	if err != nil {
		st.sendReply(req.reqID, err.Error(), nil)
		return
	}
	st.replyErr(req.reqID, op(ss.sess))
}

func (st *connState) handleSend(req request) {
	sessID := req.body.Uvarint()
	token := req.body.String()
	destStr := req.body.String()
	opts := decodeSendOptions(req.body)
	var msg jms.Message
	msg.DecodeFrom(req.body)
	if err := req.body.Err(); err != nil {
		st.sendReply(req.reqID, err.Error(), nil)
		return
	}
	// Crossing the wire is one trace hop: advance the counter before
	// the provider sees the message, so the broker's enqueue span and
	// the client's send RPC carry distinct hop numbers under one trace
	// ID. (StampTrace downstream preserves routed context.)
	decodeAt := time.Now()
	hop := obs.AdvanceTraceHop(&msg)
	dest, err := jms.ParseDestination(destStr)
	if err != nil {
		st.sendReply(req.reqID, err.Error(), nil)
		return
	}
	ss, err := st.session(sessID)
	if err != nil {
		st.sendReply(req.reqID, err.Error(), nil)
		return
	}
	// Tokenised sends are idempotent across reconnections: a retry of
	// a send that already reached the provider replays the original
	// stamps instead of enqueuing a duplicate.
	var commit func(sendStamp)
	var abort func()
	if token != "" {
		var stamp sendStamp
		var hit bool
		stamp, hit, commit, abort = st.srv.dedup.begin(token)
		if hit {
			st.sendReply(req.reqID, "", func(e *jms.Encoder) {
				e.String(stamp.id)
				e.Time(stamp.timestamp)
				e.Time(stamp.expiration)
			})
			return
		}
	}
	fail := func(errMsg string) {
		if abort != nil {
			abort()
		}
		st.sendReply(req.reqID, errMsg, nil)
	}
	st.mu.Lock()
	prod, ok := ss.producers[destStr]
	if !ok {
		prod, err = ss.sess.CreateProducer(dest)
		if err == nil {
			ss.producers[destStr] = prod
		}
	}
	st.mu.Unlock()
	if err != nil {
		fail(err.Error())
		return
	}
	if err := prod.Send(&msg, opts); err != nil {
		fail(err.Error())
		return
	}
	if commit != nil {
		commit(sendStamp{id: msg.ID, timestamp: msg.Timestamp, expiration: msg.Expiration})
	}
	if st.srv.spans != nil {
		st.srv.spans.RecordHop(obs.Span{
			TraceID:  obs.MessageTraceID(&msg),
			Hop:      hop,
			Kind:     obs.KindServerRecv,
			Node:     "wire-server",
			MsgID:    msg.ID,
			Endpoint: destStr,
			SentAt:   decodeAt,
			EndedAt:  time.Now(),
		})
	}
	// Reflect the provider-assigned headers back to the client.
	st.sendReply(req.reqID, "", func(e *jms.Encoder) {
		e.String(msg.ID)
		e.Time(msg.Timestamp)
		e.Time(msg.Expiration)
	})
}

// handlePipeOpen creates a pipelined send stream: its own provider
// producer, a send queue sized to the granted credit window, and a
// worker goroutine that stages sends in order.
func (st *connState) handlePipeOpen(req request) {
	sessID := req.body.Uvarint()
	destStr := req.body.String()
	want := req.body.Uvarint()
	if err := req.body.Err(); err != nil {
		st.sendReply(req.reqID, err.Error(), nil)
		return
	}
	dest, err := jms.ParseDestination(destStr)
	if err != nil {
		st.sendReply(req.reqID, err.Error(), nil)
		return
	}
	ss, err := st.session(sessID)
	if err != nil {
		st.sendReply(req.reqID, err.Error(), nil)
		return
	}
	prod, err := ss.sess.CreateProducer(dest)
	if err != nil {
		st.sendReply(req.reqID, err.Error(), nil)
		return
	}
	window := int(want)
	if window < 1 {
		window = 1
	}
	if window > pipeMaxWindow {
		window = pipeMaxWindow
	}
	p := &srvPipe{prod: prod, destStr: destStr, window: window, ch: make(chan pipeSendReq, window)}
	st.mu.Lock()
	st.nextID++
	p.id = st.nextID
	st.pipes[p.id] = p
	st.mu.Unlock()
	st.pipeWG.Add(1)
	go st.runPipe(p)
	st.sendReply(req.reqID, "", func(e *jms.Encoder) {
		e.Uvarint(p.id)
		e.Uvarint(uint64(window))
	})
}

// handlePipeSend decodes one pipelined send (the frame's request-ID
// slot carries the client's per-pipe sequence number) and queues it on
// its pipe. A false return means the frame was unintelligible and the
// connection must die — there is no reply channel to carry the error.
func (st *connState) handlePipeSend(req request) bool {
	pipeID := req.body.Uvarint()
	token := req.body.String()
	opts := decodeSendOptions(req.body)
	var msg jms.Message
	msg.DecodeFrom(req.body)
	if err := req.body.Err(); err != nil {
		return false
	}
	st.srv.met.pipeSends.Inc()
	st.mu.Lock()
	p, ok := st.pipes[pipeID]
	st.mu.Unlock()
	if !ok {
		st.complete(pipeCompletion{pipeID: pipeID, seq: req.reqID, errMsg: "wire: unknown pipe"})
		return true
	}
	p.ch <- pipeSendReq{seq: req.reqID, token: token, opts: opts, msg: msg, decodeAt: time.Now()}
	return true
}

// runPipe drains one pipe's send queue: deduplicates retried tokens,
// stages each send with the provider (asynchronously when the provider
// supports jms.AsyncProducer), and hands the durability wait to a
// per-pipe waiter so the next send stages while the previous one
// commits. Both stages are FIFO, preserving per-producer order.
func (st *connState) runPipe(p *srvPipe) {
	defer st.pipeWG.Done()
	type stagedSend struct {
		seq    uint64
		wait   jms.Completion
		commit func(sendStamp)
		abort  func()
		stamp  sendStamp
	}
	waitCh := make(chan stagedSend, p.window)
	var waiterWG sync.WaitGroup
	waiterWG.Add(1)
	go func() {
		defer waiterWG.Done()
		for w := range waitCh {
			if err := w.wait(); err != nil {
				if w.abort != nil {
					w.abort()
				}
				st.complete(pipeCompletion{pipeID: p.id, seq: w.seq, errMsg: err.Error()})
				continue
			}
			if w.commit != nil {
				w.commit(w.stamp)
			}
			st.complete(pipeCompletion{pipeID: p.id, seq: w.seq, stamp: w.stamp})
		}
	}()
	ap, async := p.prod.(jms.AsyncProducer)
	for req := range p.ch {
		var commit func(sendStamp)
		var abort func()
		if req.token != "" {
			var stamp sendStamp
			var hit bool
			stamp, hit, commit, abort = st.srv.dedup.begin(req.token)
			if hit {
				// A replayed send whose original already reached the
				// provider: settle with the original stamps, apply
				// nothing — exactly-once across the reconnect.
				st.complete(pipeCompletion{pipeID: p.id, seq: req.seq, stamp: stamp})
				continue
			}
		}
		msg := req.msg
		hop := obs.AdvanceTraceHop(&msg)
		var wait jms.Completion
		var err error
		if async {
			wait, err = ap.SendAsync(&msg, req.opts)
		} else {
			err = p.prod.Send(&msg, req.opts)
			wait = jms.CompletedSend
		}
		if err != nil {
			if abort != nil {
				abort()
			}
			st.complete(pipeCompletion{pipeID: p.id, seq: req.seq, errMsg: err.Error()})
			continue
		}
		if st.srv.spans != nil {
			st.srv.spans.RecordHop(obs.Span{
				TraceID:  obs.MessageTraceID(&msg),
				Hop:      hop,
				Kind:     obs.KindServerRecv,
				Node:     "wire-server",
				MsgID:    msg.ID,
				Endpoint: p.destStr,
				SentAt:   req.decodeAt,
				EndedAt:  time.Now(),
			})
		}
		waitCh <- stagedSend{
			seq: req.seq, wait: wait, commit: commit, abort: abort,
			stamp: sendStamp{id: msg.ID, timestamp: msg.Timestamp, expiration: msg.Expiration},
		}
	}
	close(waitCh)
	waiterWG.Wait()
}

// complete queues one settled pipelined send for the batcher.
func (st *connState) complete(c pipeCompletion) {
	st.compCh <- c
}

// runCompletionBatcher coalesces settled sends into opPipeCompletion
// frames: it takes one completion, drains whatever else is immediately
// available (up to pipeCompletionBatch), and writes them as one frame.
// Under load the batches grow naturally; an isolated completion ships
// alone with no added latency.
func (st *connState) runCompletionBatcher() {
	defer st.compWG.Done()
	batch := make([]pipeCompletion, 0, pipeCompletionBatch)
	var buf []byte
	for c := range st.compCh {
		batch = append(batch[:0], c)
	drain:
		for len(batch) < pipeCompletionBatch {
			select {
			case c2, ok := <-st.compCh:
				if !ok {
					break drain
				}
				batch = append(batch, c2)
			default:
				break drain
			}
		}
		buf = appendPipeCompletions(buf[:0], batch)
		if err := st.fw.writeFrame(buf); err != nil {
			// The socket is gone; drain silently so workers can finish.
			continue
		}
		st.srv.met.bytesOut.Add(int64(len(buf)) + 4)
	}
}

// handleAckBatch acknowledges several sessions in one round trip. The
// reply carries one status string per requested session, in order.
func (st *connState) handleAckBatch(req request) {
	n := req.body.Uvarint()
	if err := req.body.Err(); err != nil {
		st.sendReply(req.reqID, err.Error(), nil)
		return
	}
	if n > ackBatchMax {
		st.sendReply(req.reqID, fmt.Sprintf("wire: ack batch of %d exceeds limit", n), nil)
		return
	}
	ids := make([]uint64, 0, n)
	for i := uint64(0); i < n; i++ {
		ids = append(ids, req.body.Uvarint())
	}
	if err := req.body.Err(); err != nil {
		st.sendReply(req.reqID, err.Error(), nil)
		return
	}
	st.sendReply(req.reqID, "", func(e *jms.Encoder) {
		for _, id := range ids {
			ss, err := st.session(id)
			if err == nil {
				err = ss.sess.Acknowledge()
			}
			if err != nil {
				e.String(err.Error())
			} else {
				e.String("")
			}
		}
	})
}

func (st *connState) handleCreateConsumer(req request) {
	sessID := req.body.Uvarint()
	destStr := req.body.String()
	durable := req.body.Bool()
	subName := req.body.String()
	selectorExpr := req.body.String()
	if err := req.body.Err(); err != nil {
		st.sendReply(req.reqID, err.Error(), nil)
		return
	}
	dest, err := jms.ParseDestination(destStr)
	if err != nil {
		st.sendReply(req.reqID, err.Error(), nil)
		return
	}
	ss, err := st.session(sessID)
	if err != nil {
		st.sendReply(req.reqID, err.Error(), nil)
		return
	}
	var cons jms.Consumer
	if durable {
		topic, ok := dest.(jms.Topic)
		if !ok {
			st.sendReply(req.reqID, jms.ErrInvalidDestination.Error(), nil)
			return
		}
		cons, err = ss.sess.CreateDurableSubscriberWithSelector(topic, subName, selectorExpr)
	} else {
		cons, err = ss.sess.CreateConsumerWithSelector(dest, selectorExpr)
	}
	if err != nil {
		st.sendReply(req.reqID, err.Error(), nil)
		return
	}
	st.mu.Lock()
	st.nextID++
	id := st.nextID
	st.consumers[id] = cons
	st.mu.Unlock()
	st.sendReply(req.reqID, "", func(e *jms.Encoder) {
		e.Uvarint(id)
		e.String(cons.EndpointID())
	})
}

// handleBrowse serves a one-shot queue-browse snapshot; the server-side
// browser is created and closed per request, so browsing is stateless
// on the wire.
func (st *connState) handleBrowse(req request) {
	sessID := req.body.Uvarint()
	queueName := req.body.String()
	selectorExpr := req.body.String()
	if err := req.body.Err(); err != nil {
		st.sendReply(req.reqID, err.Error(), nil)
		return
	}
	ss, err := st.session(sessID)
	if err != nil {
		st.sendReply(req.reqID, err.Error(), nil)
		return
	}
	br, err := ss.sess.CreateBrowser(jms.Queue(queueName), selectorExpr)
	if err != nil {
		st.sendReply(req.reqID, err.Error(), nil)
		return
	}
	msgs, err := br.Enumerate()
	_ = br.Close()
	if err != nil {
		st.sendReply(req.reqID, err.Error(), nil)
		return
	}
	st.sendReply(req.reqID, "", func(e *jms.Encoder) {
		e.Uvarint(uint64(len(msgs)))
		for _, m := range msgs {
			m.EncodeTo(e)
		}
	})
}

func (st *connState) handleReceive(req request) {
	consID := req.body.Uvarint()
	timeoutMs := req.body.Varint()
	noWait := req.body.Bool()
	if err := req.body.Err(); err != nil {
		st.sendReply(req.reqID, err.Error(), nil)
		return
	}
	st.mu.Lock()
	cons, ok := st.consumers[consID]
	st.mu.Unlock()
	if !ok {
		st.sendReply(req.reqID, "wire: unknown consumer", nil)
		return
	}
	var (
		msg *jms.Message
		err error
	)
	if noWait {
		msg, err = cons.ReceiveNoWait()
	} else {
		timeout := time.Duration(timeoutMs) * time.Millisecond
		if timeout <= 0 || timeout > receiveCap {
			timeout = receiveCap
		}
		msg, err = cons.Receive(timeout)
	}
	if err != nil {
		st.sendReply(req.reqID, err.Error(), nil)
		return
	}
	st.sendReply(req.reqID, "", func(e *jms.Encoder) {
		if msg == nil {
			e.Bool(false)
			return
		}
		e.Bool(true)
		msg.EncodeTo(e)
	})
}
