package wire

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"jmsharness/internal/broker"
	"jmsharness/internal/jms"
	"jmsharness/internal/obs"
)

// text extracts a TextBody payload.
func text(m *jms.Message) string {
	b, _ := m.Body.(jms.TextBody)
	return string(b)
}

// TestPipelinedSendOrderAndCompletion streams a few hundred async
// sends through a credit window and checks the pipelined contract:
// every completion resolves nil with provider stamps applied, and the
// consumer sees the exact send order (per-producer FIFO end to end).
func TestPipelinedSendOrderAndCompletion(t *testing.T) {
	_, f := startServer(t, broker.Profile{})
	f.WithPipelining(64)
	conn, err := f.CreateConnection()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Start(); err != nil {
		t.Fatal(err)
	}
	sess, err := conn.CreateSession(false, jms.AckAuto)
	if err != nil {
		t.Fatal(err)
	}
	q := jms.Queue("pipe.order")
	p, err := sess.CreateProducer(q)
	if err != nil {
		t.Fatal(err)
	}
	ap, ok := p.(jms.AsyncProducer)
	if !ok {
		t.Fatal("wire producer does not implement jms.AsyncProducer")
	}

	const n = 300
	comps := make([]jms.Completion, 0, n)
	msgs := make([]*jms.Message, 0, n)
	for i := 0; i < n; i++ {
		m := jms.NewTextMessage(fmt.Sprintf("m%d", i))
		comp, err := ap.SendAsync(m, jms.DefaultSendOptions())
		if err != nil {
			t.Fatalf("SendAsync %d: %v", i, err)
		}
		comps = append(comps, comp)
		msgs = append(msgs, m)
	}
	for i, comp := range comps {
		if err := comp(); err != nil {
			t.Fatalf("completion %d: %v", i, err)
		}
		if msgs[i].ID == "" || msgs[i].Timestamp.IsZero() {
			t.Fatalf("send %d completed without stamps: id=%q", i, msgs[i].ID)
		}
	}

	c, err := sess.CreateConsumer(q)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		m, err := c.Receive(2 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if m == nil {
			t.Fatalf("missing message %d", i)
		}
		want := fmt.Sprintf("m%d", i)
		if got := text(m); got != want {
			t.Fatalf("position %d: got %q, want %q (pipelined sends reordered)", i, got, want)
		}
	}
}

// TestPipelinedBlockingSendIsWindowOfOne checks that plain Send still
// works with pipelining enabled (stage + wait = the classic
// semantics) and stamps the message.
func TestPipelinedBlockingSendIsWindowOfOne(t *testing.T) {
	_, f := startServer(t, broker.Profile{})
	f.WithPipelining(8)
	conn, err := f.CreateConnection()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Start(); err != nil {
		t.Fatal(err)
	}
	sess, err := conn.CreateSession(false, jms.AckAuto)
	if err != nil {
		t.Fatal(err)
	}
	q := jms.Queue("pipe.blocking")
	p, err := sess.CreateProducer(q)
	if err != nil {
		t.Fatal(err)
	}
	m := jms.NewTextMessage("solo")
	if err := p.Send(m, jms.DefaultSendOptions()); err != nil {
		t.Fatal(err)
	}
	if m.ID == "" {
		t.Fatal("blocking pipelined send returned without stamps")
	}
	c, err := sess.CreateConsumer(q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Receive(2 * time.Second)
	if err != nil || got == nil || text(got) != "solo" {
		t.Fatalf("got %v, %v", got, err)
	}
}

// TestPipelinedReplayNoDuplicates resets every TCP connection while a
// pipelined producer is mid-window. Reconnection must replay the
// unacked window with the original dedup tokens, so the consumer sees
// every message exactly once — a duplicate apply on replay is exactly
// the bug the server's dedup cache exists to prevent.
func TestPipelinedReplayNoDuplicates(t *testing.T) {
	proxy, f, _ := startProxiedServer(t)
	f.WithPipelining(32)
	conn, err := f.CreateConnection()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Start(); err != nil {
		t.Fatal(err)
	}
	sess, err := conn.CreateSession(false, jms.AckAuto)
	if err != nil {
		t.Fatal(err)
	}
	q := jms.Queue("pipe.replay")
	p, err := sess.CreateProducer(q)
	if err != nil {
		t.Fatal(err)
	}
	ap := p.(jms.AsyncProducer)

	const n = 200
	comps := make([]jms.Completion, 0, n)
	for i := 0; i < n; i++ {
		comp, err := ap.SendAsync(jms.NewTextMessage(fmt.Sprintf("r%d", i)), jms.DefaultSendOptions())
		if err != nil {
			t.Fatalf("SendAsync %d: %v", i, err)
		}
		comps = append(comps, comp)
		if i == n/3 || i == 2*n/3 {
			proxy.ResetAll() // kill the link with a full window in flight
		}
	}
	for i, comp := range comps {
		if err := comp(); err != nil {
			t.Fatalf("completion %d failed across reconnect: %v", i, err)
		}
	}

	c, err := sess.CreateConsumer(q)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	for {
		m, err := c.Receive(time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if m == nil {
			break
		}
		seen[text(m)]++
	}
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("r%d", i)
		switch seen[key] {
		case 0:
			t.Errorf("message %q lost across reconnect", key)
		case 1:
		default:
			t.Errorf("message %q applied %d times (replay duplicated)", key, seen[key])
		}
		delete(seen, key)
	}
	for key, cnt := range seen {
		t.Errorf("unexpected message %q x%d", key, cnt)
	}
}

// TestPipelinedTransactedFallsBack checks that transacted sessions
// bypass the pipe: SendAsync buffers in the transaction like Send and
// nothing is visible before commit.
func TestPipelinedTransactedFallsBack(t *testing.T) {
	_, f := startServer(t, broker.Profile{})
	f.WithPipelining(16)
	conn, err := f.CreateConnection()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Start(); err != nil {
		t.Fatal(err)
	}
	sess, err := conn.CreateSession(true, 0)
	if err != nil {
		t.Fatal(err)
	}
	q := jms.Queue("pipe.tx")
	p, err := sess.CreateProducer(q)
	if err != nil {
		t.Fatal(err)
	}
	comp, err := p.(jms.AsyncProducer).SendAsync(jms.NewTextMessage("tx"), jms.DefaultSendOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := comp(); err != nil {
		t.Fatal(err)
	}
	other, err := conn.CreateSession(false, jms.AckAuto)
	if err != nil {
		t.Fatal(err)
	}
	c, err := other.CreateConsumer(q)
	if err != nil {
		t.Fatal(err)
	}
	if m, err := c.Receive(100 * time.Millisecond); err != nil || m != nil {
		t.Fatalf("uncommitted transacted send visible: %v, %v", m, err)
	}
	if err := sess.Commit(); err != nil {
		t.Fatal(err)
	}
	m, err := c.Receive(2 * time.Second)
	if err != nil || m == nil || text(m) != "tx" {
		t.Fatalf("got %v, %v after commit", m, err)
	}
}

// TestAckBatchCoalesces drives concurrent AckClient sessions through
// the connection's ack batcher and checks semantics: every Acknowledge
// returns only after its acks are on the server, so nothing is
// redelivered after a recover.
func TestAckBatchCoalesces(t *testing.T) {
	_, f := startServer(t, broker.Profile{})
	conn, err := f.CreateConnection()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Start(); err != nil {
		t.Fatal(err)
	}

	const sessions = 8
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sess, err := conn.CreateSession(false, jms.AckClient)
			if err != nil {
				errs <- err
				return
			}
			q := jms.Queue(fmt.Sprintf("ackb.%d", i))
			p, err := sess.CreateProducer(q)
			if err != nil {
				errs <- err
				return
			}
			c, err := sess.CreateConsumer(q)
			if err != nil {
				errs <- err
				return
			}
			for round := 0; round < 5; round++ {
				if err := p.Send(jms.NewTextMessage("x"), jms.DefaultSendOptions()); err != nil {
					errs <- err
					return
				}
				m, err := c.Receive(2 * time.Second)
				if err != nil || m == nil {
					errs <- fmt.Errorf("session %d round %d: %v, %v", i, round, m, err)
					return
				}
				if err := sess.Acknowledge(); err != nil {
					errs <- fmt.Errorf("session %d ack: %w", i, err)
					return
				}
			}
			// Everything acknowledged: a recover must redeliver nothing.
			if err := sess.Recover(); err != nil {
				errs <- err
				return
			}
			if m, err := c.Receive(100 * time.Millisecond); err != nil || m != nil {
				errs <- fmt.Errorf("session %d: acked message redelivered: %v, %v", i, m, err)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// gatedWriter blocks its first Write until released, so a test can
// deterministically pile frames up behind an in-flight syscall.
type gatedWriter struct {
	first   sync.Once
	entered chan struct{} // closed when the first Write starts
	release chan struct{} // the first Write returns when this closes
	mu      sync.Mutex
	writes  int
	bytes   int
}

func (g *gatedWriter) Write(p []byte) (int, error) {
	var gate bool
	g.first.Do(func() { gate = true })
	if gate {
		close(g.entered)
		<-g.release
	}
	g.mu.Lock()
	g.writes++
	g.bytes += len(p)
	g.mu.Unlock()
	return len(p), nil
}

// TestFrameWriterCoalescesFlushes stages N frames while the socket
// write is blocked and asserts they drain in far fewer syscalls than
// frames: the first frame pays one Write, the N staged behind it share
// exactly one more.
func TestFrameWriterCoalescesFlushes(t *testing.T) {
	g := &gatedWriter{entered: make(chan struct{}), release: make(chan struct{})}
	fw := newFrameWriter(g)

	firstDone := make(chan error, 1)
	go func() { firstDone <- fw.writeFrame([]byte("frame-0")) }()
	<-g.entered // the flusher is now parked inside Write

	const n = 64
	var queued sync.WaitGroup
	for i := 1; i <= n; i++ {
		queued.Add(1)
		go func(i int) {
			defer queued.Done()
			if err := fw.writeFrame([]byte(fmt.Sprintf("frame-%d", i))); err != nil {
				t.Errorf("writeFrame %d: %v", i, err)
			}
		}(i)
	}
	// Staged frames return without flushing themselves: wait for all N
	// to be queued behind the blocked flusher before releasing it.
	queued.Wait()
	close(g.release)
	if err := <-firstDone; err != nil {
		t.Fatal(err)
	}
	// The flusher loops until the staging buffer is empty before
	// writeFrame(frame-0) returns, so all N+1 frames are out now.
	flushes := fw.flushCount()
	if flushes != 2 {
		t.Errorf("%d frames drained in %d flushes, want exactly 2 (1 blocked + 1 coalesced)", n+1, flushes)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	wantBytes := 0
	for i := 0; i <= n; i++ {
		wantBytes += 4 + len(fmt.Sprintf("frame-%d", i))
	}
	if g.bytes != wantBytes {
		t.Errorf("wrote %d bytes, want %d (frames lost or torn)", g.bytes, wantBytes)
	}
}

// TestDedupEvictionBounds checks both dedup bounds: count (the oldest
// settled tokens fall out past dedupCapacity) and age (a settled token
// older than dedupMaxAge is evicted on the next insert), and that the
// gauge tracks the live entry count. In-flight tokens survive both
// bounds.
func TestDedupEvictionBounds(t *testing.T) {
	now := time.Unix(1000, 0)
	d := newSendDedup()
	d.now = func() time.Time { return now }
	reg := obs.NewRegistry()
	g := reg.Gauge("wire.dedup_entries")
	d.setGauge(g)

	// An in-flight token must never be evicted.
	_, hit, commitFlight, _ := d.begin("inflight")
	if hit {
		t.Fatal("fresh token hit")
	}

	for i := 0; i < dedupCapacity+100; i++ {
		_, hit, commit, _ := d.begin(fmt.Sprintf("tok%d", i))
		if hit {
			t.Fatalf("fresh token %d hit", i)
		}
		commit(sendStamp{id: fmt.Sprintf("id%d", i)})
	}
	if got := d.size(); got > dedupCapacity+1 {
		t.Errorf("dedup grew to %d entries, capacity %d", got, dedupCapacity)
	}
	if g.Value() != int64(d.size()) {
		t.Errorf("gauge %d != size %d", g.Value(), d.size())
	}
	// The oldest settled tokens are gone; a replay of one re-runs the
	// send (fresh claim, not a hit). The newest survive as hits.
	if _, hit, _, abort := d.begin("tok0"); hit {
		t.Error("evicted token still hits")
	} else {
		abort()
	}
	if stamp, hit, _, _ := d.begin(fmt.Sprintf("tok%d", dedupCapacity+99)); !hit {
		t.Error("recent token evicted")
	} else if stamp.id != fmt.Sprintf("id%d", dedupCapacity+99) {
		t.Errorf("wrong stamp %q replayed", stamp.id)
	}
	// The in-flight token survived the count pressure.
	commitFlight(sendStamp{id: "flight"})
	if stamp, hit, _, _ := d.begin("inflight"); !hit || stamp.id != "flight" {
		t.Errorf("in-flight token evicted under count pressure: hit=%v stamp=%q", hit, stamp.id)
	}

	// Age: advance past dedupMaxAge; the next insert sweeps everything
	// settled out.
	now = now.Add(dedupMaxAge + time.Second)
	_, _, commit, _ := d.begin("fresh")
	commit(sendStamp{id: "f"})
	if got := d.size(); got != 1 {
		t.Errorf("age eviction left %d entries, want 1", got)
	}
	if g.Value() != 1 {
		t.Errorf("gauge %d after age eviction, want 1", g.Value())
	}
	if _, hit, _, abort := d.begin(fmt.Sprintf("tok%d", dedupCapacity+99)); hit {
		t.Error("aged-out token still hits")
	} else {
		abort()
	}
}

// TestPipelinedSendsShareFlushes asserts the satellite contract on the
// live path: N pipelined sends produce far fewer client-side socket
// flushes than N. The credit window keeps many frames in flight, so
// the coalescing frameWriter batches them.
func TestPipelinedSendsShareFlushes(t *testing.T) {
	_, f := startServer(t, broker.Profile{})
	f.WithPipelining(128)
	conn, err := f.CreateConnection()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Start(); err != nil {
		t.Fatal(err)
	}
	sess, err := conn.CreateSession(false, jms.AckAuto)
	if err != nil {
		t.Fatal(err)
	}
	p, err := sess.CreateProducer(jms.Queue("pipe.flush"))
	if err != nil {
		t.Fatal(err)
	}
	ap := p.(jms.AsyncProducer)

	cc := conn.(*clientConn)
	cc.mu.Lock()
	fw := cc.tr.fw
	cc.mu.Unlock()
	before := fw.flushCount()

	const n = 512
	comps := make([]jms.Completion, 0, n)
	for i := 0; i < n; i++ {
		comp, err := ap.SendAsync(jms.NewTextMessage("f"), jms.DefaultSendOptions())
		if err != nil {
			t.Fatal(err)
		}
		comps = append(comps, comp)
	}
	for _, comp := range comps {
		if err := comp(); err != nil {
			t.Fatal(err)
		}
	}
	flushes := fw.flushCount() - before
	// The bound is deliberately loose (scheduling decides how many
	// frames pile up per syscall) but must be well under one flush per
	// send; in practice it is a small fraction.
	if flushes >= n {
		t.Errorf("%d pipelined sends cost %d flushes, want ≪ %d", n, flushes, n)
	}
	t.Logf("%d pipelined sends in %d socket flushes", n, flushes)
}
