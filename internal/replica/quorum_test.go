package replica

import (
	"fmt"
	"testing"
	"time"

	"jmsharness/internal/chaos"
	"jmsharness/internal/jms"
	"jmsharness/internal/obs"
)

// rankedFollowers resolves a queue's primary and its follower fan-out
// in ranking order, failing the test when the topology is too small.
func rankedFollowers(t *testing.T, m *Manager, q jms.Queue, want int) (primary int, followers []int) {
	t.Helper()
	primary = m.Cluster().QueueNode(q.Name())
	followers = m.followersFor(primary, "queue:"+q.Name())
	if len(followers) < want {
		t.Fatalf("queue %s has %d followers, want >= %d", q, len(followers), want)
	}
	return primary, followers
}

// TestOneWayPartitionDoesNotPromote is the witness-quorum safety test:
// one node loses its own path to the primary (so its local view crosses
// the miss threshold), but every other witness still reaches it. A
// majority never forms, so the primary must NOT be declared dead — the
// exact false-promotion the single-observer detector was vulnerable to.
func TestOneWayPartitionDoesNotPromote(t *testing.T) {
	lp := newLinkProxies(t)
	m := newTestManager(t, 3, Options{
		Seed:            31,
		HeartbeatEvery:  10 * time.Millisecond,
		HeartbeatMisses: 3,
		WrapLink:        lp.wrap,
	})
	c := m.Cluster()
	q := jms.Queue("oneway")
	primary, _ := rankedFollowers(t, m, q, 1)
	observer := (primary + 1) % 3

	sess := openSession(t, c)
	sendText(t, sess, q, "pre")

	// Cut only the observer→primary links (data and probes both route
	// through the same proxy); the rest of the mesh stays healthy.
	poll(t, 2*time.Second, "observer link dialed", func() bool { return lp.get(observer, primary) != nil })
	lp.get(observer, primary).Partition(chaos.Both)

	// Let many detection budgets elapse: the observer's view crosses the
	// threshold, but with only 1 of 2 live witnesses voting there is no
	// majority.
	victimName := m.nodes[primary].name
	poll(t, 5*time.Second, "observer suspicion surfaces", func() bool {
		st := c.Status()
		if st.Replication == nil {
			return false
		}
		for _, s := range st.Replication.Suspected {
			if s.Node == victimName && s.Votes >= 1 {
				return true
			}
		}
		return false
	})
	time.Sleep(300 * time.Millisecond) // 10 full detection budgets
	if got := m.Promotions(); got != 0 {
		t.Fatalf("promotions = %d after one-way partition, want 0", got)
	}
	if c.NodeDown(primary) {
		t.Fatal("primary marked down on a minority view")
	}
	// The primary still serves: a fresh client reads the backlog.
	if got := drainText(t, openSession(t, c), q, 500*time.Millisecond); !got["pre"] {
		t.Fatal("primary stopped serving under a minority suspicion")
	}
}

// TestFullPartitionPromotesMostCaughtUp partitions the preferred
// follower's link first (so it lags), then fully partitions the
// primary: the witness majority forms, promotion fires within the
// detection budget, and the MOST-CAUGHT-UP follower — not the ring's
// next-preferred one — is elected and pinned as the new primary.
func TestFullPartitionPromotesMostCaughtUp(t *testing.T) {
	lp := newLinkProxies(t)
	m := newTestManager(t, 4, Options{
		Seed:              47,
		HeartbeatEvery:    10 * time.Millisecond,
		HeartbeatMisses:   3,
		SyncTimeout:       100 * time.Millisecond,
		ReplicationFactor: 2,
		QuorumSize:        1,
		WrapLink:          lp.wrap,
	})
	c := m.Cluster()
	q := jms.Queue("caughtup")
	primary, followers := rankedFollowers(t, m, q, 2)
	preferred, other := followers[0], followers[1]

	poll(t, 2*time.Second, "preferred-follower link dialed", func() bool {
		return lp.get(primary, preferred) != nil
	})
	sess := openSession(t, c)
	sendText(t, sess, q, "covered-0") // prove live sessions on both links

	// Lag the ring-preferred follower: its link partitions, the other
	// follower keeps acknowledging, so the quorum (Q=1) stays met and
	// sends succeed with the OTHER follower strictly more caught up.
	lp.get(primary, preferred).Partition(chaos.Both)
	bodies := []string{"covered-0"}
	for i := 1; i <= 10; i++ {
		body := fmt.Sprintf("covered-%d", i)
		bodies = append(bodies, body)
		sendText(t, sess, q, body)
	}
	primaryName := m.nodes[primary].name
	poll(t, 5*time.Second, "other follower acks the backlog", func() bool {
		return m.nodes[other].server.lastAppliedFrom(primaryName) >
			m.nodes[preferred].server.lastAppliedFrom(primaryName)
	})

	// Full partition of the primary: every link to and from it drops.
	// Probes among the three surviving witnesses keep exchanging votes,
	// so the majority forms and promotion must fire.
	start := time.Now()
	for j := 0; j < 4; j++ {
		if j == primary {
			continue
		}
		for _, key := range [][2]int{{primary, j}, {j, primary}} {
			if p := lp.get(key[0], key[1]); p != nil {
				p.Partition(chaos.Both)
			}
		}
	}
	poll(t, 5*time.Second, "promotion", func() bool { return m.Promotions() > 0 })
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("promotion took %v, far past the 30ms detection budget", elapsed)
	}
	if !c.NodeDown(primary) {
		t.Fatal("fully partitioned primary not marked down")
	}
	// The election must land on the most-caught-up follower, overriding
	// the ring order (which prefers the lagging one) via the pin.
	if got := c.QueueNode(q.Name()); got != other {
		t.Fatalf("queue routed to node %d after promotion, want most-caught-up follower %d (ring-preferred was %d)",
			got, other, preferred)
	}
	got := drainText(t, openSession(t, c), q, 500*time.Millisecond)
	for _, body := range bodies {
		if !got[body] {
			t.Errorf("acked message %q lost in most-caught-up promotion", body)
		}
	}
}

// TestUnquorateWritesVisible drives a write whose quorum becomes
// unreachable: with R=2, Q=2 and one follower link partitioned, the
// send degrades the dead link after SyncTimeout and proceeds — counted
// in replica.unquorate_writes and visible as quorum-unmet in /clusterz,
// never silent.
func TestUnquorateWritesVisible(t *testing.T) {
	lp := newLinkProxies(t)
	reg := obs.NewRegistry()
	m := newTestManager(t, 3, Options{
		Seed:              59,
		HeartbeatEvery:    10 * time.Millisecond,
		HeartbeatMisses:   10000, // no promotion in this test
		SyncTimeout:       100 * time.Millisecond,
		ReplicationFactor: 2,
		QuorumSize:        2,
		Metrics:           reg,
		WrapLink:          lp.wrap,
	})
	c := m.Cluster()
	q := jms.Queue("unq")
	primary, followers := rankedFollowers(t, m, q, 2)

	sess := openSession(t, c)
	sendText(t, sess, q, "full-quorum") // both links session-established

	lp.get(primary, followers[1]).Partition(chaos.Both)
	start := time.Now()
	sendText(t, sess, q, "under-quorum") // must succeed, visibly degraded
	if waited := time.Since(start); waited < 80*time.Millisecond {
		t.Fatalf("under-quorum send returned in %v; barrier did not wait for the second ack", waited)
	}
	poll(t, 2*time.Second, "unquorate write counted", func() bool {
		return reg.Counter("replica.unquorate_writes").Value() > 0
	})

	st := c.Status()
	if st.Replication == nil {
		t.Fatal("no replication status")
	}
	if st.Replication.ReplicationFactor != 2 || st.Replication.QuorumSize != 2 {
		t.Fatalf("status R/Q = %d/%d, want 2/2",
			st.Replication.ReplicationFactor, st.Replication.QuorumSize)
	}
	for _, dr := range st.Replication.Destinations {
		if dr.Endpoint != "queue:"+q.Name() {
			continue
		}
		if len(dr.Followers) != 2 {
			t.Fatalf("destination lists %d followers, want 2", len(dr.Followers))
		}
		degraded := 0
		for _, fs := range dr.Followers {
			if fs.Degraded {
				degraded++
			}
		}
		if degraded != 1 {
			t.Fatalf("%d degraded followers in status, want 1", degraded)
		}
		if dr.QuorumMet {
			t.Fatal("status reports quorum met with a degraded link under Q=2")
		}
		return
	}
	t.Fatalf("destination queue:%s missing from replication status", q.Name())
}

// TestLaggingFollowerPinsTrimFloor is the multi-follower retention
// regression: with R=2 the trim floor must be the minimum acked offset
// across ALL of a node's followers. A partitioned (degraded) second
// follower pins retention, so after it heals it catches up by ordinary
// replay — never the snapshot-resync path.
func TestLaggingFollowerPinsTrimFloor(t *testing.T) {
	lp := newLinkProxies(t)
	m := newTestManager(t, 3, Options{
		Seed:              67,
		HeartbeatEvery:    10 * time.Millisecond,
		HeartbeatMisses:   10000, // no promotion in this test
		SyncTimeout:       50 * time.Millisecond,
		ReplicationFactor: 2,
		QuorumSize:        1,
		WrapLink:          lp.wrap,
	})
	c := m.Cluster()
	q := jms.Queue("trimfloor")
	primary, followers := rankedFollowers(t, m, q, 2)
	laggard := followers[1]

	sess := openSession(t, c)
	sendText(t, sess, q, "warmup")
	lagLink := m.nodes[primary].senders[laggard]
	lp.get(primary, laggard).Partition(chaos.Both)

	// Churn well past streamTrimBatch: the healthy follower acks it all
	// and satisfies the quorum, so the laggard just silently falls
	// behind — its floor must still hold retention back.
	churn := make([]string, streamTrimBatch)
	for i := range churn {
		churn[i] = fmt.Sprintf("churn-%03d", i)
	}
	sendText(t, sess, q, churn...)
	if got := drainText(t, sess, q, 500*time.Millisecond); len(got) != len(churn)+1 {
		t.Fatalf("drained %d messages, want %d", len(got), len(churn)+1)
	}
	poll(t, 2*time.Second, "laggard accumulates lag", func() bool {
		return lagLink.lagRecords() > 0
	})
	stream := m.nodes[primary].stream
	lagLink.mu.Lock()
	lagAck := lagLink.ackedThroughLocked()
	lagLink.mu.Unlock()
	if retained := stream.OldestRetained(); retained > lagAck {
		t.Fatalf("retention trimmed to %d past the lagging follower's ack %d", retained, lagAck)
	}

	// Heal: the laggard must catch up by replaying the retained history,
	// not by a snapshot resync (needReset stays false throughout).
	lp.get(primary, laggard).Heal()
	poll(t, 10*time.Second, "laggard catches up after heal", func() bool {
		return !lagLink.isDegraded() && lagLink.lagRecords() == 0
	})
	lagLink.mu.Lock()
	needReset := lagLink.needReset
	lagLink.mu.Unlock()
	if needReset {
		t.Fatal("healed laggard fell into snapshot resync; retention floor did not hold")
	}
	if cursor := m.nodes[laggard].server.lastAppliedFrom(m.nodes[primary].name); cursor < stream.LastSeq() {
		t.Fatalf("laggard cursor %d below stream head %d after heal", cursor, stream.LastSeq())
	}
}
