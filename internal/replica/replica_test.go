package replica

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"jmsharness/internal/chaos"
	"jmsharness/internal/jms"
	"jmsharness/internal/store"
)

// poll spins until cond holds or the deadline passes.
func poll(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func newTestManager(t *testing.T, n int, opts Options) *Manager {
	t.Helper()
	m, err := NewLocal(n, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = m.Close() })
	return m
}

func openSession(t *testing.T, f jms.ConnectionFactory) jms.Session {
	t.Helper()
	conn, err := f.CreateConnection()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = conn.Close() })
	if err := conn.Start(); err != nil {
		t.Fatal(err)
	}
	sess, err := conn.CreateSession(false, jms.AckAuto)
	if err != nil {
		t.Fatal(err)
	}
	return sess
}

func sendText(t *testing.T, sess jms.Session, dest jms.Destination, bodies ...string) {
	t.Helper()
	p, err := sess.CreateProducer(dest)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for _, body := range bodies {
		if err := p.Send(jms.NewTextMessage(body), jms.DefaultSendOptions()); err != nil {
			t.Fatalf("send %q: %v", body, err)
		}
	}
}

// drainText receives until a timeout and returns the set of bodies.
func drainText(t *testing.T, sess jms.Session, dest jms.Destination, per time.Duration) map[string]bool {
	t.Helper()
	cons, err := sess.CreateConsumer(dest)
	if err != nil {
		t.Fatal(err)
	}
	defer cons.Close()
	got := map[string]bool{}
	for {
		msg, err := cons.Receive(per)
		if err != nil || msg == nil {
			return got
		}
		got[string(msg.Body.(jms.TextBody))] = true
	}
}

// dialFollower opens a raw replication session to srv posing as source,
// returning the reader and the follower's cumulative cursor.
func dialFollower(t *testing.T, srv *repServer, source string, reset bool) (net.Conn, *bufio.Reader, uint64) {
	t.Helper()
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	e := jms.NewEncoder([]byte{frHello})
	e.String(source)
	e.Bool(reset)
	if err := writeFrame(conn, e.Bytes()); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	payload, err := readFrame(br)
	if err != nil {
		t.Fatal(err)
	}
	if payload[0] != frHelloAck {
		t.Fatalf("expected helloAck, got frame type %d", payload[0])
	}
	d := jms.NewDecoder(payload[1:])
	last := d.Uvarint()
	if err := d.Err(); err != nil {
		t.Fatal(err)
	}
	return conn, br, last
}

// recordPayload encodes one add-message store record.
func recordPayload(id uint64, body string) []byte {
	e := jms.NewEncoder(nil)
	store.AppendOp(e, store.Op{
		Kind:     store.OpAddMessage,
		ID:       store.RecordID(id),
		Endpoint: "queue:q",
		Msg:      jms.NewTextMessage(body),
	})
	return e.Bytes()
}

// shipRecord frames and sends one record, then waits for its ack.
func shipRecord(t *testing.T, conn net.Conn, br *bufio.Reader, seq uint64, rec []byte) uint64 {
	t.Helper()
	e := jms.NewEncoder([]byte{frRecord})
	e.Uvarint(seq)
	e.Blob(rec)
	if err := writeFrame(conn, e.Bytes()); err != nil {
		t.Fatal(err)
	}
	payload, err := readFrame(br)
	if err != nil {
		t.Fatal(err)
	}
	if payload[0] != frAck {
		t.Fatalf("expected ack, got frame type %d", payload[0])
	}
	d := jms.NewDecoder(payload[1:])
	acked := d.Uvarint()
	if err := d.Err(); err != nil {
		t.Fatal(err)
	}
	return acked
}

// newBareServer builds a repServer with no cluster behind it, for
// protocol-level tests.
func newBareServer(t *testing.T) *repServer {
	t.Helper()
	m := &Manager{nodes: []*replNode{{name: "bare-0"}}}
	srv, err := newRepServer(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv
}

// TestFollowerCatchUpMidStream drives the follower protocol directly: a
// reconnecting source resumes from the follower's cumulative cursor, a
// mid-stream offset, and only the suffix is applied — once.
func TestFollowerCatchUpMidStream(t *testing.T) {
	srv := newBareServer(t)
	conn, br, last := dialFollower(t, srv, "src", false)
	if last != 0 {
		t.Fatalf("fresh follower cursor = %d, want 0", last)
	}
	for seq := uint64(1); seq <= 3; seq++ {
		if acked := shipRecord(t, conn, br, seq, recordPayload(seq, fmt.Sprintf("m-%d", seq))); acked != seq {
			t.Fatalf("ack = %d, want %d", acked, seq)
		}
	}
	conn.Close()

	conn2, br2, last := dialFollower(t, srv, "src", false)
	defer conn2.Close()
	if last != 3 {
		t.Fatalf("cursor after reconnect = %d, want 3", last)
	}
	// Replay an already-applied record (the sender resends from its own
	// notion of progress) plus two new ones; the replay must be a no-op.
	shipRecord(t, conn2, br2, 3, recordPayload(3, "m-3"))
	shipRecord(t, conn2, br2, 4, recordPayload(4, "m-4"))
	if acked := shipRecord(t, conn2, br2, 5, recordPayload(5, "m-5")); acked != 5 {
		t.Fatalf("ack = %d, want 5", acked)
	}
	snap, err := srv.snapshotSource("src")
	if err != nil {
		t.Fatal(err)
	}
	msgs := snap.Messages["queue:q"]
	if len(msgs) != 5 {
		t.Fatalf("follower holds %d messages, want 5 (no loss, no double-apply)", len(msgs))
	}
	for i, sm := range msgs {
		if want := fmt.Sprintf("m-%d", i+1); string(sm.Msg.Body.(jms.TextBody)) != want {
			t.Fatalf("message %d = %q, want %q", i, sm.Msg.Body, want)
		}
	}
}

// TestFollowerRejectsTornTail corrupts a record frame's checksum: the
// follower must drop the link without applying it, keep its cursor, and
// apply the clean retransmission exactly once.
func TestFollowerRejectsTornTail(t *testing.T) {
	srv := newBareServer(t)
	conn, br, _ := dialFollower(t, srv, "src", false)
	shipRecord(t, conn, br, 1, recordPayload(1, "good"))

	// Hand-frame record 2 with its CRC bytes zeroed — a torn tail.
	e := jms.NewEncoder([]byte{frRecord})
	e.Uvarint(2)
	e.Blob(recordPayload(2, "torn"))
	payload := e.Bytes()
	var hdr [16]byte
	frame := append(hdr[:0], byte(len(payload)))
	frame = append(frame, payload...)
	frame = append(frame, 0, 0, 0, 0)
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	if _, err := readFrame(br); err == nil {
		t.Fatal("follower acked a torn frame")
	}
	conn.Close()
	if got := srv.lastAppliedFrom("src"); got != 1 {
		t.Fatalf("cursor after torn frame = %d, want 1", got)
	}

	conn2, br2, last := dialFollower(t, srv, "src", false)
	defer conn2.Close()
	if last != 1 {
		t.Fatalf("cursor on reconnect = %d, want 1", last)
	}
	shipRecord(t, conn2, br2, 2, recordPayload(2, "retry"))
	snap, err := srv.snapshotSource("src")
	if err != nil {
		t.Fatal(err)
	}
	msgs := snap.Messages["queue:q"]
	if len(msgs) != 2 {
		t.Fatalf("follower holds %d messages, want 2", len(msgs))
	}
	if body := string(msgs[1].Msg.Body.(jms.TextBody)); body != "retry" {
		t.Fatalf("second message = %q; torn payload must not survive", body)
	}
}

// linkProxies lazily interposes one chaos proxy per replication link.
type linkProxies struct {
	mu sync.Mutex
	m  map[[2]int]*chaos.Proxy
}

func newLinkProxies(t *testing.T) *linkProxies {
	lp := &linkProxies{m: map[[2]int]*chaos.Proxy{}}
	t.Cleanup(func() {
		lp.mu.Lock()
		defer lp.mu.Unlock()
		for _, p := range lp.m {
			_ = p.Close()
		}
	})
	return lp
}

func (lp *linkProxies) wrap(from, to int, addr string) string {
	lp.mu.Lock()
	defer lp.mu.Unlock()
	key := [2]int{from, to}
	if p, ok := lp.m[key]; ok {
		return p.Addr()
	}
	p, err := chaos.New(chaos.Options{Target: addr})
	if err != nil {
		return addr // fall back to the direct link
	}
	lp.m[key] = p
	return p.Addr()
}

func (lp *linkProxies) get(from, to int) *chaos.Proxy {
	lp.mu.Lock()
	defer lp.mu.Unlock()
	return lp.m[[2]int{from, to}]
}

// TestFailoverPreservesPersistentMessages is the tentpole end-to-end:
// persistent messages across several queues, the node owning one of
// them is killed, the failure detector promotes its follower, and a
// fresh client receives every message — zero acked persistent loss.
func TestFailoverPreservesPersistentMessages(t *testing.T) {
	m := newTestManager(t, 3, Options{
		Seed:            11,
		HeartbeatEvery:  10 * time.Millisecond,
		HeartbeatMisses: 3,
	})
	c := m.Cluster()
	sess := openSession(t, c)
	queues := []jms.Queue{"fo-a", "fo-b", "fo-c"}
	want := map[jms.Queue][]string{}
	for qi, q := range queues {
		for i := 0; i < 10; i++ {
			body := fmt.Sprintf("q%d-m%02d", qi, i)
			want[q] = append(want[q], body)
		}
		sendText(t, sess, q, want[q]...)
	}
	victim := c.QueueNode(queues[0].Name())
	epochBefore := c.RoutingEpoch()

	if !c.CrashNode(victim) {
		t.Fatal("CrashNode refused")
	}
	poll(t, 5*time.Second, "promotion", func() bool { return m.Promotions() > 0 })
	if got := c.RoutingEpoch(); got <= epochBefore {
		t.Fatalf("routing epoch = %d, want > %d after promotion", got, epochBefore)
	}
	if !c.NodeDown(victim) {
		t.Fatal("victim not marked down")
	}
	if err := c.RestartNode(victim); !errors.Is(err, jms.ErrFenced) {
		t.Fatalf("restarting fenced node: err = %v, want ErrFenced", err)
	}

	sess2 := openSession(t, c)
	for _, q := range queues {
		if newOwner := c.QueueNode(q.Name()); newOwner == victim {
			t.Fatalf("queue %s still routed to dead node %d", q, victim)
		}
		got := drainText(t, sess2, q, 500*time.Millisecond)
		for _, body := range want[q] {
			if !got[body] {
				t.Errorf("queue %s: message %q lost in failover", q, body)
			}
		}
	}
	st := c.Status()
	if st.Replication == nil || st.Replication.Promotions < 1 {
		t.Fatal("cluster status missing replication promotion evidence")
	}
	if st.Epoch <= epochBefore {
		t.Fatalf("status epoch = %d, want > %d", st.Epoch, epochBefore)
	}
}

// TestPromotionDoesNotAckUnreplicated kills a primary while a producer
// is blocked waiting for replication of a record its partitioned
// follower never received: the send must FAIL (the record was never
// covered) and the message must not surface after failover.
func TestPromotionDoesNotAckUnreplicated(t *testing.T) {
	lp := newLinkProxies(t)
	m := newTestManager(t, 3, Options{
		Seed:            23,
		HeartbeatEvery:  10 * time.Millisecond,
		HeartbeatMisses: 3,
		SyncTimeout:     30 * time.Second, // far beyond the detection budget
		WrapLink:        lp.wrap,
	})
	c := m.Cluster()
	q := jms.Queue("unacked")
	primary := c.QueueNode(q.Name())
	follower := m.followerFor(primary, "queue:"+q.Name())
	if follower < 0 {
		t.Fatal("no follower for queue")
	}
	poll(t, 2*time.Second, "replication link dialed", func() bool { return lp.get(primary, follower) != nil })
	// Prove the link has a live session before partitioning: a covered
	// send returns only after the follower acknowledged it. Partitioning
	// straight after the first dial can race the link handshake — the
	// helloAck blackholes, no session establishes, and the in-flight
	// record below would never reach the link's pending window.
	sess := openSession(t, c)
	sendText(t, sess, q, "warmup")
	lp.get(primary, follower).Partition(chaos.Both)

	sendErr := make(chan error, 1)
	go func() {
		p, err := sess.CreateProducer(q)
		if err != nil {
			sendErr <- err
			return
		}
		sendErr <- p.Send(jms.NewTextMessage("in-flight"), jms.DefaultSendOptions())
	}()
	link := m.nodes[primary].senders[follower]
	poll(t, 5*time.Second, "send blocked in replication barrier", func() bool {
		link.mu.Lock()
		defer link.mu.Unlock()
		return len(link.pending) > 0
	})
	// The send is now blocked in the semisync barrier. Kill the primary;
	// CrashNode itself blocks behind the in-flight send, the detector
	// notices the wedged broker, promotes, and promotion halts the dead
	// node's links — releasing the send with an error.
	crashed := make(chan struct{})
	go func() {
		c.CrashNode(primary)
		close(crashed)
	}()
	select {
	case err := <-sendErr:
		if err == nil {
			t.Fatal("send of an unreplicated record reported success")
		}
		if !errors.Is(err, ErrHalted) {
			t.Fatalf("send err = %v, want ErrHalted in chain", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("send still blocked after promotion")
	}
	<-crashed
	poll(t, 5*time.Second, "promotion", func() bool { return m.Promotions() > 0 })

	sess2 := openSession(t, c)
	if got := drainText(t, sess2, q, 300*time.Millisecond); got["in-flight"] {
		t.Fatal("unacknowledged record surfaced after failover")
	}
}

// TestReplicationLinkPartitionHealsDegraded partitions a replication
// link mid-traffic: sends degrade (succeed without cover) after
// SyncTimeout, the link heals and catches up, and a failover after the
// heal still loses nothing — the chaos-on-replication-link story.
func TestReplicationLinkPartitionHealsDegraded(t *testing.T) {
	lp := newLinkProxies(t)
	m := newTestManager(t, 3, Options{
		Seed:            42,
		HeartbeatEvery:  10 * time.Millisecond,
		HeartbeatMisses: 3,
		SyncTimeout:     100 * time.Millisecond,
		WrapLink:        lp.wrap,
	})
	c := m.Cluster()
	q := jms.Queue("healme")
	primary := c.QueueNode(q.Name())
	follower := m.followerFor(primary, "queue:"+q.Name())
	poll(t, 2*time.Second, "replication link dialed", func() bool { return lp.get(primary, follower) != nil })

	sess := openSession(t, c)
	sendText(t, sess, q, "before-partition")

	link := m.nodes[primary].senders[follower]
	lp.get(primary, follower).Partition(chaos.Both)
	start := time.Now()
	sendText(t, sess, q, "during-partition") // must succeed, degraded
	if waited := time.Since(start); waited < 80*time.Millisecond {
		t.Fatalf("degraded send returned in %v; semisync barrier did not engage", waited)
	}
	poll(t, 2*time.Second, "link degraded", link.isDegraded)

	lp.get(primary, follower).Heal()
	poll(t, 5*time.Second, "follower caught up", func() bool {
		return !link.isDegraded() && link.lagRecords() == 0
	})

	sendText(t, sess, q, "after-heal")
	c.CrashNode(primary)
	poll(t, 5*time.Second, "promotion", func() bool { return m.Promotions() > 0 })

	got := drainText(t, openSession(t, c), q, 500*time.Millisecond)
	for _, body := range []string{"before-partition", "during-partition", "after-heal"} {
		if !got[body] {
			t.Errorf("message %q lost across partition+heal+failover", body)
		}
	}
}

// TestSuspectedNodeSurfacedInStatus crashes a broker under a detector
// whose promotion threshold is far away: the node must appear in the
// cluster status as suspected (pinged and missing, not yet promoted)
// and clear again once it restarts healthy.
func TestSuspectedNodeSurfacedInStatus(t *testing.T) {
	m := newTestManager(t, 3, Options{
		Seed:            19,
		HeartbeatEvery:  10 * time.Millisecond,
		HeartbeatMisses: 10000, // suspicion only; never promote in this test
	})
	c := m.Cluster()
	victim := 1
	victimName := m.nodes[victim].name
	if !c.CrashNode(victim) {
		t.Fatal("CrashNode refused")
	}
	suspicionOf := func(name string) int {
		st := c.Status()
		if st.Replication == nil {
			return 0
		}
		for _, s := range st.Replication.Suspected {
			if s.Node == name {
				return s.Misses
			}
		}
		return 0
	}
	poll(t, 5*time.Second, "crashed node suspected", func() bool {
		return suspicionOf(victimName) > 0
	})
	if got := m.Promotions(); got != 0 {
		t.Fatalf("promotions = %d, want 0 (threshold not reached)", got)
	}
	if down := c.NodeDown(victim); down {
		t.Fatal("suspected node marked down before the threshold")
	}
	if err := c.RestartNode(victim); err != nil {
		t.Fatalf("restart below threshold: %v", err)
	}
	poll(t, 5*time.Second, "suspicion cleared after restart", func() bool {
		return suspicionOf(victimName) == 0
	})
}

// TestDurableSubscriptionFailover replicates a durable subscription and
// its backlog: after the hosting node dies, the promoted follower
// serves the subscription's pending messages, flagged redelivered only
// if they had been handed out.
func TestDurableSubscriptionFailover(t *testing.T) {
	m := newTestManager(t, 3, Options{
		Seed:            7,
		HeartbeatEvery:  10 * time.Millisecond,
		HeartbeatMisses: 3,
	})
	c := m.Cluster()
	conn, err := c.CreateConnection()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = conn.Close() })
	if err := conn.SetClientID("dur-client"); err != nil {
		t.Fatal(err)
	}
	if err := conn.Start(); err != nil {
		t.Fatal(err)
	}
	sess, err := conn.CreateSession(false, jms.AckAuto)
	if err != nil {
		t.Fatal(err)
	}
	topic := jms.Topic("events")
	sub, err := sess.CreateDurableSubscriber(topic, "keep")
	if err != nil {
		t.Fatal(err)
	}
	_ = sub.Close() // backlog accumulates while inactive
	sendText(t, sess, topic, "e-1", "e-2", "e-3")

	victim := c.DurableNode("dur-client", "keep")
	c.CrashNode(victim)
	poll(t, 5*time.Second, "promotion", func() bool { return m.Promotions() > 0 })

	_ = conn.Close() // release the client ID for the reconnecting client
	conn2, err := c.CreateConnection()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = conn2.Close() })
	if err := conn2.SetClientID("dur-client"); err != nil {
		t.Fatal(err)
	}
	if err := conn2.Start(); err != nil {
		t.Fatal(err)
	}
	sess2, err := conn2.CreateSession(false, jms.AckAuto)
	if err != nil {
		t.Fatal(err)
	}
	sub2, err := sess2.CreateDurableSubscriber(topic, "keep")
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for i := 0; i < 3; i++ {
		msg, err := sub2.Receive(3 * time.Second)
		if err != nil || msg == nil {
			t.Fatalf("receive %d after failover: msg=%v err=%v", i, msg, err)
		}
		got[string(msg.Body.(jms.TextBody))] = true
	}
	for _, body := range []string{"e-1", "e-2", "e-3"} {
		if !got[body] {
			t.Errorf("durable backlog message %q lost in failover", body)
		}
	}
}
