package replica

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"sync"
	"time"

	"jmsharness/internal/jms"
	"jmsharness/internal/store"
)

// The replication wire protocol: length-prefixed crc-checked frames
// over a plain TCP connection, one connection per primary→follower
// link, in the same uvarint-len | payload | crc32 shape as the WAL's
// on-disk records. The payload's first byte is the frame type.
//
//	hello     sender → server   String(source node name), Bool(reset)
//	helloAck  server → sender   Uvarint(lastApplied cumulative seq)
//	record    sender → server   Uvarint(seq), Blob(store record payload)
//	ack       server → sender   Uvarint(lastApplied cumulative seq)
//	ping      probe  → server   Uvarint(prober node), Uvarint(suspicion bitmap)
//	pong      server → probe    Bool(broker healthy), Uvarint(server's suspicion bitmap)
//	snapBegin sender → server   (empty; reset sessions only)
//	snapEntry sender → server   store record payload (no seq)
//	snapEnd   sender → server   Uvarint(cut seq the snapshot equals)
//
// The server acknowledges cumulatively: an ack for sequence s covers
// every record at or below s. Sequence numbers are the source stream's,
// so they are monotonic but gappy on any one link (records owned by a
// different follower are skipped, not shipped).
//
// The snapshot frames carry a resync whose replay window was trimmed
// out of the source's record stream (Stream.TrimTo): instead of
// replaying from sequence 0 — records that no longer exist — the
// sender ships an atomic snapshot of its store filtered to the
// endpoints this peer follows, then streams normally from the cut.
// Only a reset session may carry them: the peer has already dropped
// this source's state, so installing the snapshot is a rebuild, never
// an overwrite of live follower state.
//
// Ping/pong double as the witness-vote exchange for the partition-
// tolerant failure detector (detector.go): each side piggybacks its
// current suspicion bitmap, so every probe round also gossips who
// suspects whom. An empty-payload ping (the PR 7 wire format) is still
// answered — it just carries no vote.
const (
	frHello byte = iota + 1
	frHelloAck
	frRecord
	frAck
	frPing
	frPong
	frSnapBegin
	frSnapEntry
	frSnapEnd
)

// maxFrame bounds a frame payload; larger is a corrupt length prefix.
const maxFrame = 4 << 20

// linkIOTimeout bounds any single frame write (and handshake reads) so
// a blackholed connection fails fast instead of wedging a session.
const linkIOTimeout = time.Second

var errBadFrame = errors.New("replica: frame checksum mismatch")

// writeFrame sends one frame: uvarint payload length, payload, crc32 of
// the payload. A torn or bit-flipped frame fails the follower's
// checksum and drops the link — replication resumes from the last acked
// offset on the next connection, never applying the torn tail.
func writeFrame(conn net.Conn, payload []byte) error {
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(payload)))
	buf := make([]byte, 0, n+len(payload)+4)
	buf = append(buf, hdr[:n]...)
	buf = append(buf, payload...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
	if err := conn.SetWriteDeadline(time.Now().Add(linkIOTimeout)); err != nil {
		return err
	}
	_, err := conn.Write(buf)
	return err
}

// readFrame reads one frame and verifies its checksum.
func readFrame(br *bufio.Reader) ([]byte, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if n > maxFrame {
		return nil, fmt.Errorf("replica: frame length %d exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(br, payload); err != nil {
		return nil, err
	}
	var crc [4]byte
	if _, err := io.ReadFull(br, crc[:]); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint32(crc[:]) != crc32.ChecksumIEEE(payload) {
		return nil, errBadFrame
	}
	return payload, nil
}

// inbound is the follower-side state for one source node: its own
// replica store (so one peer's resync never disturbs another's state),
// the id-translating applier, and the cumulative apply cursor.
type inbound struct {
	mu sync.Mutex
	// gen invalidates stale sessions: a new hello (or a reset, or a
	// seal) bumps it, and a session that captured an older gen stops
	// applying. Two racing connections can therefore never interleave
	// applies.
	gen         uint64
	store       *store.Memory
	app         store.Applier
	lastApplied uint64
	// sealed freezes the inbound permanently: set when the source is
	// declared dead, just before its state is adopted, so the adoption
	// snapshot is final even if a zombie sender is still flushing.
	sealed bool
}

// repServer is one node's replication listener: it answers liveness
// probes for its broker and hosts one inbound follower stream per
// source peer.
type repServer struct {
	m    *Manager
	node int
	ln   net.Listener

	mu       sync.Mutex
	inbounds map[string]*inbound
	conns    map[net.Conn]struct{}
	closed   bool

	wg sync.WaitGroup
}

func newRepServer(m *Manager, node int) (*repServer, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("replica: node %d listener: %w", node, err)
	}
	s := &repServer{
		m:        m,
		node:     node,
		ln:       ln,
		inbounds: map[string]*inbound{},
		conns:    map[net.Conn]struct{}{},
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listener's dial address.
func (s *repServer) Addr() string { return s.ln.Addr().String() }

func (s *repServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

func (s *repServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	br := bufio.NewReader(conn)
	_ = conn.SetReadDeadline(time.Now().Add(linkIOTimeout))
	payload, err := readFrame(br)
	if err != nil || len(payload) == 0 {
		return
	}
	switch payload[0] {
	case frPing:
		// A liveness probe: pong carries whether this node's broker is
		// actually serving, so a crashed (or fenced) broker reads as
		// dead even while the replication listener survives. A witness-
		// carrying ping also delivers the prober's suspicion bitmap
		// (recorded as its vote) and the pong answers with ours, so
		// votes propagate in both directions of every probe.
		var bitmap uint64
		if len(payload) > 1 {
			d := jms.NewDecoder(payload[1:])
			prober := d.Uvarint()
			bits := d.Uvarint()
			if d.Err() == nil && s.node < len(s.m.det) {
				s.m.det[s.node].recordVote(int(prober), bits)
			}
		}
		if s.node < len(s.m.det) {
			bitmap = s.m.det[s.node].bitmap(s.m.opts.HeartbeatMisses)
		}
		healthy := false
		if b := s.m.brokerOf(s.node); b != nil {
			healthy = b.Healthy()
		}
		e := jms.NewEncoder([]byte{frPong})
		e.Bool(healthy)
		e.Uvarint(bitmap)
		_ = writeFrame(conn, e.Bytes())
	case frHello:
		d := jms.NewDecoder(payload[1:])
		source := d.String()
		reset := d.Bool()
		if d.Err() != nil {
			return
		}
		s.follow(conn, br, source, reset)
	}
}

// inboundFor returns (creating if needed) the inbound for a source.
func (s *repServer) inboundFor(source string) *inbound {
	s.mu.Lock()
	defer s.mu.Unlock()
	inb := s.inbounds[source]
	if inb == nil {
		mem := store.NewMemory()
		inb = &inbound{store: mem, app: store.Applier{Dst: mem}}
		s.inbounds[source] = inb
	}
	return inb
}

// follow runs the follower side of one replication session.
func (s *repServer) follow(conn net.Conn, br *bufio.Reader, source string, reset bool) {
	inb := s.inboundFor(source)
	inb.mu.Lock()
	if inb.sealed {
		inb.mu.Unlock()
		return
	}
	inb.gen++
	gen := inb.gen
	if reset {
		// Full resync: the sender replays its stream from the start
		// (typically because this node just became the follower for
		// endpoints whose records it never received, and the cumulative
		// cursor cannot express the gap). Drop everything previously
		// received from this source and rebuild.
		mem := store.NewMemory()
		inb.store = mem
		inb.app = store.Applier{Dst: mem}
		inb.lastApplied = 0
	}
	last := inb.lastApplied
	inb.mu.Unlock()

	e := jms.NewEncoder([]byte{frHelloAck})
	e.Uvarint(last)
	if writeFrame(conn, e.Bytes()) != nil {
		return
	}
	// A snapshot may only open a reset session, before any record: it
	// wholesale-replaces this source's state, which is safe exactly when
	// that state was just dropped and nothing new has been applied.
	snapAllowed := reset
	inSnap := false
	for {
		// Generous idle deadline: an idle healthy link redials
		// occasionally, a dead one gets collected.
		_ = conn.SetReadDeadline(time.Now().Add(30 * time.Second))
		payload, err := readFrame(br)
		if err != nil || len(payload) == 0 {
			return // includes errBadFrame: a torn frame drops the link unapplied
		}
		switch payload[0] {
		case frSnapBegin:
			if !snapAllowed {
				return
			}
			inSnap = true
			inb.mu.Lock()
			if inb.gen != gen || inb.sealed {
				inb.mu.Unlock()
				return
			}
			mem := store.NewMemory()
			inb.store = mem
			inb.app = store.Applier{Dst: mem}
			inb.lastApplied = 0
			inb.mu.Unlock()
		case frSnapEntry:
			if !inSnap {
				return
			}
			op, derr := store.DecodeOp(payload[1:])
			if derr != nil {
				return
			}
			inb.mu.Lock()
			if inb.gen != gen || inb.sealed {
				inb.mu.Unlock()
				return
			}
			if aerr := inb.app.Apply(op); aerr != nil {
				inb.mu.Unlock()
				s.m.event("follower %d: snapshot apply from %s failed: %v", s.node, source, aerr)
				return
			}
			inb.mu.Unlock()
		case frSnapEnd:
			if !inSnap {
				return
			}
			inSnap = false
			snapAllowed = false
			d := jms.NewDecoder(payload[1:])
			cut := d.Uvarint()
			if d.Err() != nil {
				return
			}
			inb.mu.Lock()
			if inb.gen != gen || inb.sealed {
				inb.mu.Unlock()
				return
			}
			inb.lastApplied = cut
			inb.mu.Unlock()
			e := jms.NewEncoder([]byte{frAck})
			e.Uvarint(cut)
			if writeFrame(conn, e.Bytes()) != nil {
				return
			}
		case frRecord:
			if inSnap {
				return
			}
			snapAllowed = false
			d := jms.NewDecoder(payload[1:])
			seq := d.Uvarint()
			rec := d.Blob()
			if d.Err() != nil {
				return
			}
			inb.mu.Lock()
			if inb.gen != gen || inb.sealed {
				inb.mu.Unlock()
				return
			}
			if seq > inb.lastApplied {
				op, derr := store.DecodeOp(rec)
				if derr != nil {
					inb.mu.Unlock()
					return
				}
				if aerr := inb.app.Apply(op); aerr != nil {
					inb.mu.Unlock()
					s.m.event("follower %d: apply from %s failed: %v", s.node, source, aerr)
					return
				}
				inb.lastApplied = seq
			}
			last := inb.lastApplied
			inb.mu.Unlock()
			e := jms.NewEncoder([]byte{frAck})
			e.Uvarint(last)
			if writeFrame(conn, e.Bytes()) != nil {
				return
			}
		default:
			return
		}
	}
}

// sealSource permanently freezes the inbound from a source declared
// dead, so the adoption snapshot that follows cannot race a still-
// flushing zombie sender.
func (s *repServer) sealSource(source string) {
	inb := s.inboundFor(source)
	inb.mu.Lock()
	inb.sealed = true
	inb.gen++
	inb.mu.Unlock()
}

// snapshotSource returns the replicated state received from source, or
// nil when nothing was ever received.
func (s *repServer) snapshotSource(source string) (*store.State, error) {
	s.mu.Lock()
	inb := s.inbounds[source]
	s.mu.Unlock()
	if inb == nil {
		return nil, nil
	}
	inb.mu.Lock()
	defer inb.mu.Unlock()
	return inb.store.Snapshot()
}

// lastAppliedFrom reports the cumulative apply cursor for a source (for
// tests and status).
func (s *repServer) lastAppliedFrom(source string) uint64 {
	s.mu.Lock()
	inb := s.inbounds[source]
	s.mu.Unlock()
	if inb == nil {
		return 0
	}
	inb.mu.Lock()
	defer inb.mu.Unlock()
	return inb.lastApplied
}

// Close stops the listener and force-closes every live session.
func (s *repServer) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	s.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
}
