package replica

import (
	"fmt"
	"testing"
	"time"

	"jmsharness/internal/jms"
	"jmsharness/internal/store"
)

// TestSnapshotResyncProtocol drives the snapshot frames directly: a
// reset session ships snapBegin, entries and snapEnd with a cut, the
// follower installs the state and sets its cumulative cursor to the
// cut, and a plain reconnect resumes from there.
func TestSnapshotResyncProtocol(t *testing.T) {
	srv := newBareServer(t)
	conn, br, last := dialFollower(t, srv, "src", true)
	if last != 0 {
		t.Fatalf("reset handshake cursor = %d, want 0", last)
	}
	if err := writeFrame(conn, []byte{frSnapBegin}); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		e := jms.NewEncoder([]byte{frSnapEntry})
		store.AppendOp(e, store.Op{
			Kind:     store.OpAddMessage,
			ID:       store.RecordID(i),
			Endpoint: "queue:q",
			Msg:      jms.NewTextMessage(fmt.Sprintf("snap-%d", i)),
		})
		if err := writeFrame(conn, e.Bytes()); err != nil {
			t.Fatal(err)
		}
	}
	e := jms.NewEncoder([]byte{frSnapEnd})
	e.Uvarint(40)
	if err := writeFrame(conn, e.Bytes()); err != nil {
		t.Fatal(err)
	}
	payload, err := readFrame(br)
	if err != nil {
		t.Fatal(err)
	}
	if payload[0] != frAck {
		t.Fatalf("expected ack after snapEnd, got frame type %d", payload[0])
	}
	d := jms.NewDecoder(payload[1:])
	if acked := d.Uvarint(); d.Err() != nil || acked != 40 {
		t.Fatalf("snapshot ack = %d (err %v), want 40", acked, d.Err())
	}
	// Records at or below the cut are duplicates of snapshot state and
	// must not re-apply; records above it apply normally.
	shipRecord(t, conn, br, 38, recordPayload(38, "stale"))
	shipRecord(t, conn, br, 41, recordPayload(41, "after-cut"))
	conn.Close()

	conn2, br2, last := dialFollower(t, srv, "src", false)
	defer conn2.Close()
	if last != 41 {
		t.Fatalf("cursor after snapshot resync = %d, want 41", last)
	}
	_ = br2
	snap, err := srv.snapshotSource("src")
	if err != nil {
		t.Fatal(err)
	}
	msgs := snap.Messages["queue:q"]
	if len(msgs) != 4 {
		t.Fatalf("follower holds %d messages, want 4 (3 snapshot + 1 streamed)", len(msgs))
	}
	for i, want := range []string{"snap-1", "snap-2", "snap-3", "after-cut"} {
		if got := string(msgs[i].Msg.Body.(jms.TextBody)); got != want {
			t.Fatalf("message %d = %q, want %q", i, got, want)
		}
	}
}

// TestSnapshotRejectedWithoutReset makes sure a snapshot cannot
// overwrite live follower state: snapBegin on a non-reset session must
// drop the link, leaving the previously applied records intact.
func TestSnapshotRejectedWithoutReset(t *testing.T) {
	srv := newBareServer(t)
	conn, br, _ := dialFollower(t, srv, "src", false)
	shipRecord(t, conn, br, 1, recordPayload(1, "keep"))
	if err := writeFrame(conn, []byte{frSnapBegin}); err != nil {
		t.Fatal(err)
	}
	if _, err := readFrame(br); err == nil {
		t.Fatal("follower kept serving after a snapshot on a non-reset session")
	}
	conn.Close()
	if got := srv.lastAppliedFrom("src"); got != 1 {
		t.Fatalf("cursor after rejected snapshot = %d, want 1", got)
	}
	snap, err := srv.snapshotSource("src")
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Messages["queue:q"]) != 1 {
		t.Fatal("rejected snapshot disturbed existing follower state")
	}
}

// TestStreamTrimAfterAcks is the retention fix end to end: a working
// replicated queue's committed-record stream must not grow without
// bound — once the follower has acknowledged enough history, the
// stream trims to the acknowledged floor.
func TestStreamTrimAfterAcks(t *testing.T) {
	m := newTestManager(t, 2, Options{Seed: 5})
	c := m.Cluster()
	q := jms.Queue("trim-q")
	primary := c.QueueNode(q.Name())

	sess := openSession(t, c)
	// Each consumed message costs several stream records (add, mark
	// delivered, remove), so this comfortably crosses streamTrimBatch.
	const n = streamTrimBatch
	bodies := make([]string, n)
	for i := range bodies {
		bodies[i] = fmt.Sprintf("m-%03d", i)
	}
	sendText(t, sess, q, bodies...)
	got := drainText(t, sess, q, 500*time.Millisecond)
	if len(got) != n {
		t.Fatalf("drained %d messages, want %d", len(got), n)
	}

	stream := m.nodes[primary].stream
	poll(t, 5*time.Second, "stream retention trim", func() bool {
		return stream.OldestRetained() >= streamTrimBatch
	})
	if lastSeq := stream.LastSeq(); lastSeq < uint64(2*n) {
		t.Fatalf("stream head = %d, want >= %d (trim must not rewind the head)", lastSeq, 2*n)
	}
}

// TestResyncAfterTrimPreservesBacklog is the regression the snapshot
// resync exists for: trim the stream past the full history, then force
// a full resync (what every promotion does to surviving links). Before
// the fix the link looped forever on ErrStreamTrimmed; now it ships a
// snapshot cut, the follower resumes from the acknowledged offset, and
// a real failover still serves the surviving backlog.
func TestResyncAfterTrimPreservesBacklog(t *testing.T) {
	m := newTestManager(t, 3, Options{
		Seed:            13,
		HeartbeatEvery:  10 * time.Millisecond,
		HeartbeatMisses: 3,
	})
	c := m.Cluster()
	q := jms.Queue("resync-q")
	primary := c.QueueNode(q.Name())
	follower := m.followerFor(primary, "queue:"+q.Name())
	if follower < 0 {
		t.Fatal("no follower for queue")
	}

	sess := openSession(t, c)
	churn := make([]string, streamTrimBatch)
	for i := range churn {
		churn[i] = fmt.Sprintf("churn-%03d", i)
	}
	sendText(t, sess, q, churn...)
	if got := drainText(t, sess, q, 500*time.Millisecond); len(got) != len(churn) {
		t.Fatalf("drained %d churn messages, want %d", len(got), len(churn))
	}
	stream := m.nodes[primary].stream
	poll(t, 5*time.Second, "stream retention trim", func() bool {
		return stream.OldestRetained() >= streamTrimBatch
	})

	keep := []string{"keep-0", "keep-1", "keep-2", "keep-3", "keep-4"}
	sendText(t, sess, q, keep...)

	// Force the full resync a promotion would: the replay window is
	// gone, so the link must rebuild the follower from a snapshot cut.
	link := m.nodes[primary].senders[follower]
	link.forceResync()
	poll(t, 5*time.Second, "snapshot resync catches up", func() bool {
		link.mu.Lock()
		resyncPending := link.needReset
		link.mu.Unlock()
		return !resyncPending && link.lagRecords() == 0
	})
	snap, err := m.nodes[follower].server.snapshotSource(m.nodes[primary].name)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(snap.Messages["queue:"+q.Name()]); got != len(keep) {
		t.Fatalf("follower holds %d backlog messages after snapshot resync, want %d", got, len(keep))
	}

	// And the point of it all: failover off the trimmed primary still
	// serves every surviving message.
	if !c.CrashNode(primary) {
		t.Fatal("CrashNode refused")
	}
	poll(t, 5*time.Second, "promotion", func() bool { return m.Promotions() > 0 })
	got := drainText(t, openSession(t, c), q, 500*time.Millisecond)
	for _, body := range keep {
		if !got[body] {
			t.Errorf("message %q lost across trim + resync + failover", body)
		}
	}
}
