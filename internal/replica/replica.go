// Package replica adds per-destination replication and automated
// failover to the broker cluster: every destination gets a primary (its
// consistent-hash owner) plus one follower — the next distinct node in
// the key's ring-walk order — that consumes the primary's committed
// record stream (sends, acknowledges, delivered-markers, expirations)
// over a dedicated TCP replication link with sequence numbers, acked
// offsets and crc-checked frames.
//
// Replication is semi-synchronous: a store mutation returns to the
// producer only after its record is durable locally AND acknowledged by
// the destination's follower. If the follower cannot acknowledge within
// SyncTimeout the link degrades — the primary keeps serving without
// replication cover (availability over strict sync, as in MySQL
// semisync) and re-attaches automatically once the follower catches
// back up. A heartbeat failure detector probes every node's liveness;
// after HeartbeatMisses consecutive misses the node is declared dead:
// its destinations' followers adopt the replicated backlog, the routing
// ring remaps (cluster.MarkNodeDown) and the dead node is fenced so a
// zombie primary cannot accept writes under stale routing. Reconnecting
// clients land on the promoted follower; messages the old primary had
// handed out but not seen acknowledged arrive flagged JMSRedelivered,
// so the conformance model's duplicate/FIFO exemptions apply exactly as
// in single-node crash recovery.
package replica

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"jmsharness/internal/broker"
	"jmsharness/internal/cluster"
	"jmsharness/internal/obs"
	"jmsharness/internal/store"
)

// ErrHalted is returned to a producer whose record could not be
// replicated because its node's replication was stopped (the node was
// declared dead mid-write). The record is durable locally but was never
// acknowledged to the client — the classic indeterminate send.
var ErrHalted = errors.New("replica: replication halted")

// Options configures NewLocal.
type Options struct {
	// Profile, Placement, Metrics, Spans and Seed are handed to
	// cluster.NewLocal. Placement must implement RankedPlacement for
	// follower selection; nil means the default hash ring.
	Profile   broker.Profile
	Placement cluster.Placement
	Metrics   *obs.Registry
	Spans     obs.SpanRecorder
	Seed      uint64
	// HeartbeatEvery is the failure detector's probe interval (default
	// 100ms); HeartbeatMisses the consecutive misses that declare a
	// node dead (default 5). Detection budget ≈ Every × Misses. The
	// defaults are deliberately conservative — a false positive fences
	// a healthy node permanently, so the budget must absorb scheduler
	// and fsync stalls on a loaded host; controlled experiments pass
	// tighter values explicitly.
	HeartbeatEvery  time.Duration
	HeartbeatMisses int
	// SyncTimeout bounds how long a producer waits for its record's
	// follower acknowledgement before the link degrades (default 2s).
	SyncTimeout time.Duration
	// OpenStore supplies node i's stable store and the committed-record
	// stream feeding its replication links. Nil means an in-memory
	// store decorated with store.NewStreamed; a WAL-backed node passes
	// store.WALOptions.Stream instead.
	OpenStore func(i int) (store.Store, *store.Stream, error)
	// WrapLink rewrites the dial address of the from→to replication
	// link, letting experiments interpose a chaos proxy on inter-node
	// links. Nil means direct connection. Called on every dial.
	WrapLink func(from, to int, addr string) string
}

// replNode is one node's replication state. The state this node holds
// as a follower of its peers lives in its repServer, one store per
// source, so resyncing one peer never disturbs another's data.
type replNode struct {
	name string
	// stable is the node's replicated store (what its broker writes
	// through); stream its committed-record feed.
	stable  *replicatedStore
	stream  *store.Stream
	broker  *broker.Broker
	server  *repServer
	senders map[int]*sender
}

// Manager owns a replicated local cluster: the cluster itself, one
// replication server and follower store per node, the inter-node
// senders, and the failure detector.
type Manager struct {
	opts  Options
	c     *cluster.Cluster
	nodes []*replNode

	promotions         atomic.Int64
	lastPromotionEpoch atomic.Int64

	met struct {
		promotions *obs.Counter
		lag        *obs.Gauge
	}

	// pmu serializes promotions.
	pmu sync.Mutex

	mu        sync.Mutex
	endpoints map[string]bool // endpoints observed in replication traffic
	events    []string
	suspicion map[int]int // node -> consecutive heartbeat misses (below threshold)
	closed    bool

	stop chan struct{}
}

// NewLocal builds an n-node replicated cluster of in-process brokers
// (n ≥ 2 for replication to exist; n == 1 degenerates to a plain
// cluster). Close shuts everything down.
func NewLocal(n int, opts Options) (*Manager, error) {
	if n <= 0 {
		return nil, fmt.Errorf("replica: need n > 0 nodes, got %d", n)
	}
	if opts.HeartbeatEvery <= 0 {
		opts.HeartbeatEvery = 100 * time.Millisecond
	}
	if opts.HeartbeatMisses <= 0 {
		opts.HeartbeatMisses = 5
	}
	if opts.SyncTimeout <= 0 {
		opts.SyncTimeout = 2 * time.Second
	}
	if opts.OpenStore == nil {
		opts.OpenStore = func(int) (store.Store, *store.Stream, error) {
			s := store.NewStream()
			return store.NewStreamed(store.NewMemory(), s), s, nil
		}
	}
	reg := opts.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	m := &Manager{
		opts:      opts,
		nodes:     make([]*replNode, n),
		endpoints: map[string]bool{},
		suspicion: map[int]int{},
		stop:      make(chan struct{}),
	}
	m.met.promotions = reg.Counter("replica.promotions")
	m.met.lag = reg.Gauge("replica.lag_records")

	fail := func(err error) (*Manager, error) {
		m.teardown()
		return nil, err
	}
	stables := make([]store.Store, n)
	for i := 0; i < n; i++ {
		base, stream, err := opts.OpenStore(i)
		if err != nil {
			return fail(err)
		}
		node := &replNode{
			stream:  stream,
			senders: map[int]*sender{},
		}
		node.stable = &replicatedStore{inner: base, stream: stream, m: m, node: i}
		m.nodes[i] = node
		stables[i] = node.stable
	}
	c, err := cluster.NewLocal(n, cluster.LocalOptions{
		NamePrefix: "replica",
		Profile:    opts.Profile,
		Stables:    stables,
		Placement:  opts.Placement,
		Metrics:    opts.Metrics,
		Spans:      opts.Spans,
		Seed:       opts.Seed,
	})
	if err != nil {
		return fail(err)
	}
	m.c = c
	for i := 0; i < n; i++ {
		m.nodes[i].name = c.NodeName(i)
		b, ok := c.NodeFactory(i).(*broker.Broker)
		if !ok {
			_ = c.Close()
			return fail(fmt.Errorf("replica: node %d is not an in-process broker", i))
		}
		m.nodes[i].broker = b
	}
	// Servers start only after every node's broker handle is in place,
	// so liveness probes never observe a half-built manager.
	for i := 0; i < n; i++ {
		srv, err := newRepServer(m, i)
		if err != nil {
			return fail(err)
		}
		m.nodes[i].server = srv
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			s := newSender(m, i, j)
			m.nodes[i].senders[j] = s
			go s.run()
		}
	}
	c.SetReplicationStatus(m.replicationStatus)
	go m.detect()
	return m, nil
}

// Cluster returns the replicated cluster; it implements
// jms.ConnectionFactory and the harness's NodeCrasher, so a harness run
// against it can kill a node and exercise promotion end to end.
func (m *Manager) Cluster() *cluster.Cluster { return m.c }

// Promotions returns how many follower promotions have happened.
func (m *Manager) Promotions() int64 { return m.promotions.Load() }

// Events returns the replication event log (promotions, degradations,
// resyncs), oldest first.
func (m *Manager) Events() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]string(nil), m.events...)
}

// event appends one timestamped line to the event log.
func (m *Manager) event(format string, args ...any) {
	m.mu.Lock()
	m.events = append(m.events, fmt.Sprintf(format, args...))
	m.mu.Unlock()
}

// observeEndpoint records an endpoint seen in replication traffic, for
// the /clusterz destination table.
func (m *Manager) observeEndpoint(ep string) {
	m.mu.Lock()
	if !m.endpoints[ep] {
		m.endpoints[ep] = true
	}
	m.mu.Unlock()
}

// rankedFor maps a stored endpoint to its live node ranking using the
// router's own key derivation: "queue:<name>" is already the queue's
// placement key; "sub:<clientID>:<subName>" maps to the durable key.
// Unknown endpoint shapes get no replication.
func (m *Manager) rankedFor(ep string) []int {
	if name, ok := strings.CutPrefix(ep, "queue:"); ok {
		return m.c.RankedLiveQueue(name)
	}
	if rest, ok := strings.CutPrefix(ep, "sub:"); ok {
		if cid, sub, ok := strings.Cut(rest, ":"); ok {
			return m.c.RankedLiveDurable(cid, sub)
		}
	}
	return nil
}

// followerFor returns the node that must replicate endpoint ep for the
// copy held on node from: the first live node in ep's ranking that is
// not from itself; -1 when no such node exists (single survivor).
func (m *Manager) followerFor(from int, ep string) int {
	for _, n := range m.rankedFor(ep) {
		if n != from {
			return n
		}
	}
	return -1
}

// waitReplicated blocks until node from's committed records up to seq
// are acknowledged by ep's follower (or the link degrades, or the
// node's replication halts). The semisync write barrier.
func (m *Manager) waitReplicated(from int, ep string, seq uint64) error {
	m.observeEndpoint(ep)
	to := m.followerFor(from, ep)
	if to < 0 {
		return nil
	}
	s := m.nodes[from].senders[to]
	if s == nil {
		return nil
	}
	return s.waitFor(seq)
}

// linkAddr resolves the dial address of the from→to replication link,
// applying the chaos interposition hook when configured.
func (m *Manager) linkAddr(from, to int) string {
	addr := m.nodes[to].server.Addr()
	if m.opts.WrapLink != nil {
		return m.opts.WrapLink(from, to, addr)
	}
	return addr
}

// detect is the heartbeat failure detector: every HeartbeatEvery it
// probes each live node's replication server (which answers for its
// broker's health); HeartbeatMisses consecutive misses trigger
// promotion of the node's destinations to their followers.
func (m *Manager) detect() {
	misses := make([]int, len(m.nodes))
	ticker := time.NewTicker(m.opts.HeartbeatEvery)
	defer ticker.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-ticker.C:
		}
		// Probe concurrently so one wedged peer (a full dial timeout)
		// cannot starve the other nodes' probe cadence.
		ok := make([]bool, len(m.nodes))
		var wg sync.WaitGroup
		for i := range m.nodes {
			if m.c.NodeDown(i) {
				continue
			}
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				ok[i] = m.pingNode(i)
			}(i)
		}
		wg.Wait()
		for i := range m.nodes {
			if m.c.NodeDown(i) {
				m.setSuspicion(i, 0)
				continue
			}
			if ok[i] {
				misses[i] = 0
				m.setSuspicion(i, 0)
				continue
			}
			misses[i]++
			if misses[i] >= m.opts.HeartbeatMisses {
				misses[i] = 0
				m.setSuspicion(i, 0)
				m.promote(i)
				continue
			}
			m.setSuspicion(i, misses[i])
		}
	}
}

// setSuspicion publishes node i's consecutive heartbeat-miss count for
// /clusterz: non-zero marks the node suspected (pinged and missing, not
// yet promoted); zero clears it.
func (m *Manager) setSuspicion(i, misses int) {
	m.mu.Lock()
	if misses == 0 {
		delete(m.suspicion, i)
	} else {
		m.suspicion[i] = misses
	}
	m.mu.Unlock()
}

// promote fails node dead over to its followers: each live node adopts
// the dead node's destinations it was following, routing remaps
// (MarkNodeDown fences the dead node and bumps the epoch), and every
// replication link resyncs against the new follower assignment.
func (m *Manager) promote(dead int) {
	m.pmu.Lock()
	defer m.pmu.Unlock()
	if m.c.NodeDown(dead) || m.isClosed() {
		return
	}
	deadName := m.nodes[dead].name
	m.event("detector: node %s declared dead", deadName)
	// Seal first: every live node permanently stops applying records
	// from the dead source, so the adoption snapshots below are final
	// even if a zombie sender is still flushing. Records sealed out
	// were never acknowledged to their producers (their semisync waits
	// end in ErrHalted below), so dropping them loses nothing acked.
	for j := range m.nodes {
		if j != dead {
			m.nodes[j].server.sealSource(deadName)
		}
	}
	// Adoption next, while RankedLive still ranks the dead node
	// primary: for every replicated endpoint the dead node owned, its
	// follower (the first live node after it in ranking order) adopts
	// the replicated backlog into its own broker — re-persisting it
	// through its own replicated store, which re-covers the data on the
	// follower's follower.
	for j := range m.nodes {
		if j == dead {
			continue
		}
		subset, err := m.adoptionSet(dead, j)
		if err != nil {
			m.event("promotion: snapshot on %s failed: %v", m.nodes[j].name, err)
			continue
		}
		if subset == nil {
			continue
		}
		if err := m.nodes[j].broker.Adopt(subset); err != nil {
			m.event("promotion: adopt on %s failed: %v", m.nodes[j].name, err)
			continue
		}
		m.event("promotion: %s adopted %d endpoints from %s",
			m.nodes[j].name, len(subset.Messages), m.nodes[dead].name)
	}
	// Release every producer blocked on replication involving the dead
	// node — its own senders halt with an error (in-flight unreplicated
	// records must NOT be acknowledged to producers), links toward it
	// detach (their records re-cover via the resync below).
	for i, node := range m.nodes {
		for to, s := range node.senders {
			if i == dead {
				s.halt()
			} else if to == dead {
				s.markPeerDead()
			}
		}
	}
	// Now flip routing: fences the dead node, remaps its destinations.
	epoch := m.c.MarkNodeDown(dead)
	m.lastPromotionEpoch.Store(epoch)
	m.promotions.Add(1)
	m.met.promotions.Inc()
	m.event("promotion: routing epoch %d, node %s fenced", epoch, m.nodes[dead].name)
	// Follower assignments changed for every endpoint the dead node
	// owned or followed; surviving links full-resync so the new
	// followers receive the history they skipped.
	for i, node := range m.nodes {
		if i == dead || m.c.NodeDown(i) {
			continue
		}
		for to, s := range node.senders {
			if to == dead || m.c.NodeDown(to) {
				continue
			}
			s.forceResync()
		}
	}
}

// adoptionSet extracts from node j's follower state for the dead
// source the endpoints the dead node owned (ranking it primary).
// Returns nil when empty.
func (m *Manager) adoptionSet(dead, j int) (*store.State, error) {
	snap, err := m.nodes[j].server.snapshotSource(m.nodes[dead].name)
	if err != nil || snap == nil {
		return nil, err
	}
	owns := func(ep string) bool {
		ranked := m.rankedFor(ep)
		return len(ranked) > 0 && ranked[0] == dead
	}
	subset := &store.State{Messages: map[string][]store.StoredMessage{}}
	for ep, msgs := range snap.Messages {
		if owns(ep) {
			subset.Messages[ep] = msgs
		}
	}
	for _, sub := range snap.Subscriptions {
		if owns("sub:" + sub.ClientID + ":" + sub.Name) {
			subset.Subscriptions = append(subset.Subscriptions, sub)
		}
	}
	if len(subset.Messages) == 0 && len(subset.Subscriptions) == 0 {
		return nil, nil
	}
	return subset, nil
}

// updateLag refreshes the replica.lag_records gauge with the worst
// per-link record lag.
func (m *Manager) updateLag() {
	var worst int64
	for i, node := range m.nodes {
		if m.c != nil && m.c.NodeDown(i) {
			continue
		}
		for to, s := range node.senders {
			if m.c != nil && m.c.NodeDown(to) {
				continue
			}
			if lag := s.lagRecords(); lag > worst {
				worst = lag
			}
		}
	}
	m.met.lag.Set(worst)
}

// streamTrimBatch is how many fully acknowledged records accumulate
// before a retention trim runs, amortizing TrimTo's copy of the
// retained suffix across many acks.
const streamTrimBatch = 256

// maybeTrim advances node from's committed-record stream retention to
// the lowest acknowledged position across its live links, bounding the
// stream's memory to the unacknowledged suffix. Halted or detached
// links never acknowledge again and must not pin retention forever,
// and a link awaiting reset rebuilds from a snapshot cut rather than
// the retained history, so none of those constrain the floor. A link
// the trim outruns anyway (racing a mid-reset session) fails its
// subscribe with ErrStreamTrimmed and converges through the snapshot
// resync path.
func (m *Manager) maybeTrim(from int) {
	node := m.nodes[from]
	floor := node.stream.LastSeq()
	for _, s := range node.senders {
		s.mu.Lock()
		live := !s.halted && !s.peerDead && !s.needReset
		acked := s.ackedThroughLocked()
		s.mu.Unlock()
		if live && acked < floor {
			floor = acked
		}
	}
	if floor >= node.stream.OldestRetained()+streamTrimBatch {
		node.stream.TrimTo(floor)
	}
}

// replicationStatus builds the /clusterz Replication section.
func (m *Manager) replicationStatus() *cluster.ReplicationStatus {
	st := &cluster.ReplicationStatus{
		Promotions:         m.promotions.Load(),
		LastPromotionEpoch: m.lastPromotionEpoch.Load(),
	}
	m.mu.Lock()
	eps := make([]string, 0, len(m.endpoints))
	for ep := range m.endpoints {
		eps = append(eps, ep)
	}
	for i, misses := range m.suspicion {
		st.Suspected = append(st.Suspected, cluster.NodeSuspicion{
			Node: m.nodes[i].name, Misses: misses,
		})
	}
	m.mu.Unlock()
	for i := 1; i < len(st.Suspected); i++ {
		for j := i; j > 0 && st.Suspected[j].Node < st.Suspected[j-1].Node; j-- {
			st.Suspected[j], st.Suspected[j-1] = st.Suspected[j-1], st.Suspected[j]
		}
	}
	sortStrings(eps)
	for _, ep := range eps {
		ranked := m.rankedFor(ep)
		if len(ranked) == 0 {
			continue
		}
		dr := cluster.DestinationReplica{Endpoint: ep, Primary: ranked[0], Follower: -1}
		for _, n := range ranked[1:] {
			if n != ranked[0] {
				dr.Follower = n
				break
			}
		}
		st.Destinations = append(st.Destinations, dr)
	}
	for i, node := range m.nodes {
		if m.c.NodeDown(i) {
			continue
		}
		for to, s := range node.senders {
			if m.c.NodeDown(to) {
				continue
			}
			st.Links = append(st.Links, cluster.ReplicaLink{
				From:       node.name,
				To:         m.nodes[to].name,
				LagRecords: s.lagRecords(),
				LagBytes:   s.lagBytes(),
				Degraded:   s.isDegraded(),
			})
		}
	}
	return st
}

// sortStrings is sort.Strings without dragging sort into every file.
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func (m *Manager) isClosed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.closed
}

// Close stops the detector, halts every link (releasing blocked
// producers), closes the replication servers, the cluster and the
// stores.
func (m *Manager) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	m.mu.Unlock()
	close(m.stop)
	return m.teardown()
}

// teardown releases everything that has been constructed so far (also
// the error path of NewLocal, where later fields may be nil).
func (m *Manager) teardown() error {
	for _, node := range m.nodes {
		if node == nil {
			continue
		}
		for _, s := range node.senders {
			s.halt()
		}
	}
	var first error
	for _, node := range m.nodes {
		if node == nil || node.server == nil {
			continue
		}
		node.server.Close()
	}
	if m.c != nil {
		if err := m.c.Close(); err != nil && first == nil {
			first = err
		}
	}
	for _, node := range m.nodes {
		if node == nil || node.stable == nil {
			continue
		}
		if err := node.stable.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// brokerOf returns node i's broker, nil while construction is still in
// flight (the replication servers start before the cluster exists).
func (m *Manager) brokerOf(i int) *broker.Broker {
	if i < 0 || i >= len(m.nodes) || m.nodes[i] == nil {
		return nil
	}
	return m.nodes[i].broker
}
