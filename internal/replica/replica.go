// Package replica adds per-destination replication and automated
// failover to the broker cluster: every destination gets a primary (its
// consistent-hash owner) plus ReplicationFactor followers — the next R
// distinct nodes in the key's ring-walk order — that consume the
// primary's committed record stream (sends, acknowledges,
// delivered-markers, expirations) over dedicated TCP replication links
// with sequence numbers, acked offsets and crc-checked frames.
//
// Replication is semi-synchronous with quorum acknowledgement: a store
// mutation returns to the producer only after its record is durable
// locally AND acknowledged by QuorumSize of the destination's
// followers. A follower that cannot acknowledge within SyncTimeout
// degrades its link — the write barrier stops counting it until it
// catches back up (availability over strict sync, as in MySQL
// semisync) — and when enough links degrade that the quorum is
// unreachable the write proceeds under visibly reduced cover
// (replica.unquorate_writes counts it; /clusterz shows quorum unmet),
// never silently: one partitioned link cannot drop all redundancy the
// way a single-follower scheme does.
//
// Failure detection is witness-based and partition-tolerant. Every
// node runs its own probe loop against each peer, dialing through the
// same (chaos-wrappable) links replication uses; probes piggyback the
// prober's suspicion bitmap and the pong returns the responder's, so
// each node accumulates its peers' votes only over links that actually
// work. A node is declared dead — and promote() fires — only when a
// majority of the live witnesses agree, so a one-way partition of a
// single observer can never false-promote a primary the rest of the
// cluster still reaches. On promotion the most-caught-up live follower
// (highest replication cursor for the dead source) is elected the new
// primary per endpoint, pinned into the routing ring, and the
// remaining followers force-resync to it; the routing ring remaps
// (cluster.MarkNodeDown) and the dead node is fenced so a zombie
// primary cannot accept writes under stale routing. Reconnecting
// clients land on the promoted follower; messages the old primary had
// handed out but not seen acknowledged arrive flagged JMSRedelivered,
// so the conformance model's duplicate/FIFO exemptions apply exactly as
// in single-node crash recovery.
package replica

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"jmsharness/internal/broker"
	"jmsharness/internal/cluster"
	"jmsharness/internal/obs"
	"jmsharness/internal/store"
)

// ErrHalted is returned to a producer whose record could not be
// replicated because its node's replication was stopped (the node was
// declared dead mid-write). The record is durable locally but was never
// acknowledged to the client — the classic indeterminate send.
var ErrHalted = errors.New("replica: replication halted")

// Options configures NewLocal.
type Options struct {
	// Profile, Placement, Metrics, Spans and Seed are handed to
	// cluster.NewLocal. Placement must implement RankedPlacement for
	// follower selection; nil means the default hash ring.
	Profile   broker.Profile
	Placement cluster.Placement
	Metrics   *obs.Registry
	Spans     obs.SpanRecorder
	Seed      uint64
	// HeartbeatEvery is the failure detector's probe interval (default
	// 100ms); HeartbeatMisses the consecutive misses that declare a
	// node dead (default 5). Detection budget ≈ Every × Misses. The
	// defaults are deliberately conservative — a false positive fences
	// a healthy node permanently, so the budget must absorb scheduler
	// and fsync stalls on a loaded host; controlled experiments pass
	// tighter values explicitly.
	HeartbeatEvery  time.Duration
	HeartbeatMisses int
	// SyncTimeout bounds how long a producer waits for its record's
	// quorum of follower acknowledgements before the slow links degrade
	// (default 2s).
	SyncTimeout time.Duration
	// ReplicationFactor is how many distinct follower nodes every
	// destination fans out to — the next R live nodes in its ring-walk
	// order after the primary (default 1, clamped to n-1). QuorumSize
	// is how many of those followers must acknowledge a record before
	// the semisync barrier releases (default: a majority of the factor,
	// ceil(R/2); clamped to [1, ReplicationFactor]). A write whose
	// quorum becomes unreachable — enough links degraded, partitioned
	// or detached — proceeds under reduced cover and is counted in
	// replica.unquorate_writes, so redundancy loss is visible before it
	// becomes data loss.
	ReplicationFactor int
	QuorumSize        int
	// OpenStore supplies node i's stable store and the committed-record
	// stream feeding its replication links. Nil means an in-memory
	// store decorated with store.NewStreamed; a WAL-backed node passes
	// store.WALOptions.Stream instead.
	OpenStore func(i int) (store.Store, *store.Stream, error)
	// WrapLink rewrites the dial address of the from→to replication
	// link, letting experiments interpose a chaos proxy on inter-node
	// links. Nil means direct connection. Called on every dial.
	WrapLink func(from, to int, addr string) string
}

// replNode is one node's replication state. The state this node holds
// as a follower of its peers lives in its repServer, one store per
// source, so resyncing one peer never disturbs another's data.
type replNode struct {
	name string
	// stable is the node's replicated store (what its broker writes
	// through); stream its committed-record feed.
	stable  *replicatedStore
	stream  *store.Stream
	broker  *broker.Broker
	server  *repServer
	senders map[int]*sender

	// ackMu/ackCh wake the node's quorum barriers (waitReplicated)
	// whenever any of its links makes progress; every sender broadcast
	// feeds it.
	ackMu sync.Mutex
	ackCh chan struct{}
}

// ackWake returns the channel the next link-progress broadcast closes.
// Grab it before observing link state so no wakeup can be lost.
func (n *replNode) ackWake() chan struct{} {
	n.ackMu.Lock()
	defer n.ackMu.Unlock()
	return n.ackCh
}

// wakeWaiters wakes every quorum barrier blocked on this node's links.
func (n *replNode) wakeWaiters() {
	n.ackMu.Lock()
	close(n.ackCh)
	n.ackCh = make(chan struct{})
	n.ackMu.Unlock()
}

// Manager owns a replicated local cluster: the cluster itself, one
// replication server and follower store per node, the inter-node
// senders, and the failure detector.
type Manager struct {
	opts  Options
	c     *cluster.Cluster
	nodes []*replNode

	promotions         atomic.Int64
	lastPromotionEpoch atomic.Int64

	met struct {
		promotions *obs.Counter
		lag        *obs.Gauge
		unquorate  *obs.Counter
	}

	// det holds each node's private witness view (probe misses and
	// peer votes); det[i] is updated only by probes and pongs that
	// traversed node i's own links.
	det []*peerView

	// pmu serializes promotions.
	pmu sync.Mutex

	mu        sync.Mutex
	endpoints map[string]bool // endpoints observed in replication traffic
	events    []string
	closed    bool

	stop chan struct{}
}

// NewLocal builds an n-node replicated cluster of in-process brokers
// (n ≥ 2 for replication to exist; n == 1 degenerates to a plain
// cluster). Close shuts everything down.
func NewLocal(n int, opts Options) (*Manager, error) {
	if n <= 0 {
		return nil, fmt.Errorf("replica: need n > 0 nodes, got %d", n)
	}
	if opts.HeartbeatEvery <= 0 {
		opts.HeartbeatEvery = 100 * time.Millisecond
	}
	if opts.HeartbeatMisses <= 0 {
		opts.HeartbeatMisses = 5
	}
	if opts.SyncTimeout <= 0 {
		opts.SyncTimeout = 2 * time.Second
	}
	if opts.ReplicationFactor < 1 {
		opts.ReplicationFactor = 1
	}
	if max := n - 1; max > 0 && opts.ReplicationFactor > max {
		opts.ReplicationFactor = max
	}
	if opts.QuorumSize < 1 {
		opts.QuorumSize = (opts.ReplicationFactor + 1) / 2
	}
	if opts.QuorumSize > opts.ReplicationFactor {
		opts.QuorumSize = opts.ReplicationFactor
	}
	if opts.OpenStore == nil {
		opts.OpenStore = func(int) (store.Store, *store.Stream, error) {
			s := store.NewStream()
			return store.NewStreamed(store.NewMemory(), s), s, nil
		}
	}
	reg := opts.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	m := &Manager{
		opts:      opts,
		nodes:     make([]*replNode, n),
		endpoints: map[string]bool{},
		det:       make([]*peerView, n),
		stop:      make(chan struct{}),
	}
	for i := range m.det {
		m.det[i] = newPeerView(n)
	}
	m.met.promotions = reg.Counter("replica.promotions")
	m.met.lag = reg.Gauge("replica.lag_records")
	m.met.unquorate = reg.Counter("replica.unquorate_writes")

	fail := func(err error) (*Manager, error) {
		m.teardown()
		return nil, err
	}
	stables := make([]store.Store, n)
	for i := 0; i < n; i++ {
		base, stream, err := opts.OpenStore(i)
		if err != nil {
			return fail(err)
		}
		node := &replNode{
			stream:  stream,
			senders: map[int]*sender{},
			ackCh:   make(chan struct{}),
		}
		node.stable = &replicatedStore{inner: base, stream: stream, m: m, node: i}
		m.nodes[i] = node
		stables[i] = node.stable
	}
	c, err := cluster.NewLocal(n, cluster.LocalOptions{
		NamePrefix: "replica",
		Profile:    opts.Profile,
		Stables:    stables,
		Placement:  opts.Placement,
		Metrics:    opts.Metrics,
		Spans:      opts.Spans,
		Seed:       opts.Seed,
	})
	if err != nil {
		return fail(err)
	}
	m.c = c
	for i := 0; i < n; i++ {
		m.nodes[i].name = c.NodeName(i)
		b, ok := c.NodeFactory(i).(*broker.Broker)
		if !ok {
			_ = c.Close()
			return fail(fmt.Errorf("replica: node %d is not an in-process broker", i))
		}
		m.nodes[i].broker = b
	}
	// Servers start only after every node's broker handle is in place,
	// so liveness probes never observe a half-built manager.
	for i := 0; i < n; i++ {
		srv, err := newRepServer(m, i)
		if err != nil {
			return fail(err)
		}
		m.nodes[i].server = srv
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			s := newSender(m, i, j)
			m.nodes[i].senders[j] = s
			go s.run()
		}
	}
	c.SetReplicationStatus(m.replicationStatus)
	// One witness loop per node: each probes its peers over its own
	// links and promotes only on a majority of live witnesses, so the
	// detector has no single point of failure (and no magically
	// partition-proof view).
	for i := 0; i < n; i++ {
		go m.detectFrom(i)
	}
	return m, nil
}

// Cluster returns the replicated cluster; it implements
// jms.ConnectionFactory and the harness's NodeCrasher, so a harness run
// against it can kill a node and exercise promotion end to end.
func (m *Manager) Cluster() *cluster.Cluster { return m.c }

// Promotions returns how many follower promotions have happened.
func (m *Manager) Promotions() int64 { return m.promotions.Load() }

// Events returns the replication event log (promotions, degradations,
// resyncs), oldest first.
func (m *Manager) Events() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]string(nil), m.events...)
}

// event appends one timestamped line to the event log.
func (m *Manager) event(format string, args ...any) {
	m.mu.Lock()
	m.events = append(m.events, fmt.Sprintf(format, args...))
	m.mu.Unlock()
}

// observeEndpoint records an endpoint seen in replication traffic, for
// the /clusterz destination table.
func (m *Manager) observeEndpoint(ep string) {
	m.mu.Lock()
	if !m.endpoints[ep] {
		m.endpoints[ep] = true
	}
	m.mu.Unlock()
}

// rankedFor maps a stored endpoint to its live node ranking using the
// router's own key derivation: "queue:<name>" is already the queue's
// placement key; "sub:<clientID>:<subName>" maps to the durable key.
// Unknown endpoint shapes get no replication.
func (m *Manager) rankedFor(ep string) []int {
	if name, ok := strings.CutPrefix(ep, "queue:"); ok {
		return m.c.RankedLiveQueue(name)
	}
	if rest, ok := strings.CutPrefix(ep, "sub:"); ok {
		if cid, sub, ok := strings.Cut(rest, ":"); ok {
			return m.c.RankedLiveDurable(cid, sub)
		}
	}
	return nil
}

// followersFor returns the nodes that must replicate endpoint ep for
// the copy held on node from: the first ReplicationFactor live nodes
// in ep's ranking that are not from itself, in ranking order. Empty
// when no other node is live (single survivor).
func (m *Manager) followersFor(from int, ep string) []int {
	out := make([]int, 0, m.opts.ReplicationFactor)
	for _, n := range m.rankedFor(ep) {
		if n != from {
			out = append(out, n)
			if len(out) >= m.opts.ReplicationFactor {
				break
			}
		}
	}
	return out
}

// followerFor is the most-preferred follower, -1 when none exists.
func (m *Manager) followerFor(from int, ep string) int {
	if fs := m.followersFor(from, ep); len(fs) > 0 {
		return fs[0]
	}
	return -1
}

// shipsTo reports whether the from→to link carries endpoint ep under
// the current follower assignment.
func (m *Manager) shipsTo(from int, ep string, to int) bool {
	for _, n := range m.followersFor(from, ep) {
		if n == to {
			return true
		}
	}
	return false
}

// waitReplicated blocks until node from's committed records up to seq
// are acknowledged by a quorum of ep's followers, the quorum becomes
// unreachable (enough links degraded or detached: the write proceeds
// under visibly reduced cover), or the node's replication halts
// (ErrHalted: the producer must not see the write succeed). The
// semisync write barrier.
func (m *Manager) waitReplicated(from int, ep string, seq uint64) error {
	m.observeEndpoint(ep)
	targets := m.followersFor(from, ep)
	if len(targets) == 0 {
		return nil
	}
	need := m.opts.QuorumSize
	if need > len(targets) {
		need = len(targets)
	}
	node := m.nodes[from]
	timer := time.NewTimer(m.opts.SyncTimeout)
	defer timer.Stop()
	for {
		// Grab the wake channel before observing link state, so a
		// concurrent ack between observation and select still wakes us.
		wake := node.ackWake()
		acked, reachable := 0, 0
		var waiting []*sender
		halted := false
		for _, to := range targets {
			s := node.senders[to]
			if s == nil {
				continue
			}
			s.mu.Lock()
			switch {
			case s.halted:
				halted = true
			case s.peerDead || s.degraded:
				// Detached from the barrier until it catches back up;
				// contributes nothing to the quorum.
			case s.ackedThroughLocked() >= seq:
				acked++
				reachable++
			default:
				reachable++
				waiting = append(waiting, s)
			}
			s.mu.Unlock()
		}
		switch {
		case halted:
			return ErrHalted
		case acked >= need:
			return nil
		case reachable < need:
			// The quorum is unreachable right now. Degrade visibly —
			// the write is acknowledged with less cover than configured
			// — rather than blocking availability on links that will
			// not answer.
			m.met.unquorate.Inc()
			return nil
		}
		select {
		case <-wake:
		case <-timer.C:
			// The shared sync budget expired: degrade every link still
			// owing an ack (they re-attach when caught up), which
			// resolves the barrier one way or the other on the next
			// pass.
			for _, s := range waiting {
				s.setDegraded()
			}
		}
	}
}

// linkAddr resolves the dial address of the from→to replication link,
// applying the chaos interposition hook when configured.
func (m *Manager) linkAddr(from, to int) string {
	addr := m.nodes[to].server.Addr()
	if m.opts.WrapLink != nil {
		return m.opts.WrapLink(from, to, addr)
	}
	return addr
}

// promote fails node dead over to its followers: for every endpoint
// the dead node owned, the most-caught-up live follower (highest
// replication cursor for the dead source) is elected its new primary,
// adopts the replicated backlog and is pinned into the routing ring;
// routing then remaps (MarkNodeDown fences the dead node and bumps the
// epoch), and every surviving replication link resyncs against the new
// follower assignment.
func (m *Manager) promote(dead int) {
	m.pmu.Lock()
	defer m.pmu.Unlock()
	if m.c.NodeDown(dead) || m.isClosed() {
		return
	}
	deadName := m.nodes[dead].name
	m.event("detector: node %s declared dead", deadName)
	// Seal first: every live node permanently stops applying records
	// from the dead source, so the adoption snapshots below are final
	// even if a zombie sender is still flushing. Records sealed out
	// were never acknowledged to their producers (their semisync waits
	// end in ErrHalted below), so dropping them loses nothing acked.
	for j := range m.nodes {
		if j != dead {
			m.nodes[j].server.sealSource(deadName)
		}
	}
	// Election and adoption next, while RankedLive still ranks the dead
	// node primary. Snapshot every live node's follower state for the
	// dead source together with its cumulative apply cursor; for each
	// endpoint the dead node owned, the live holder with the highest
	// cursor — the most-caught-up follower — is elected its new
	// primary. (Followers of one source apply its records in sequence
	// order, so a higher cursor holds a superset of a lower one's
	// applied prefix; the laggard's copy is discarded and rebuilt by the
	// post-promotion resync.) The winner adopts the backlog into its own
	// broker — re-persisting it through its own replicated store, which
	// re-covers the data on the winner's followers — and is pinned into
	// the routing ring, since the most-caught-up node is not necessarily
	// the ring's next-live node.
	subsets := m.electAdopters(dead)
	for j := range m.nodes {
		subset := subsets[j]
		if subset == nil {
			continue
		}
		if err := m.nodes[j].broker.Adopt(subset); err != nil {
			m.event("promotion: adopt on %s failed: %v", m.nodes[j].name, err)
			continue
		}
		m.event("promotion: %s adopted %d endpoints from %s",
			m.nodes[j].name, len(subset.Messages)+len(subset.Subscriptions), m.nodes[dead].name)
	}
	// Release every producer blocked on replication involving the dead
	// node — its own senders halt with an error (in-flight unreplicated
	// records must NOT be acknowledged to producers), links toward it
	// detach (their records re-cover via the resync below).
	for i, node := range m.nodes {
		for to, s := range node.senders {
			if i == dead {
				s.halt()
			} else if to == dead {
				s.markPeerDead()
			}
		}
	}
	// Now flip routing: fences the dead node, remaps its destinations.
	epoch := m.c.MarkNodeDown(dead)
	m.lastPromotionEpoch.Store(epoch)
	m.promotions.Add(1)
	m.met.promotions.Inc()
	m.event("promotion: routing epoch %d, node %s fenced", epoch, m.nodes[dead].name)
	// Follower assignments changed for every endpoint the dead node
	// owned or followed; surviving links full-resync so the new
	// followers receive the history they skipped.
	for i, node := range m.nodes {
		if i == dead || m.c.NodeDown(i) {
			continue
		}
		for to, s := range node.senders {
			if to == dead || m.c.NodeDown(to) {
				continue
			}
			s.forceResync()
		}
	}
}

// electAdopters builds the per-node adoption sets for a promotion: for
// every endpoint the dead node owned (ranking it primary), the live
// follower holding it with the highest replication cursor for the dead
// source wins, ranking order breaking ties. The winner is pinned into
// the cluster's routing (PinQueue/PinDurable) so sends, receives and
// the post-promotion follower fan-out all agree on the new primary.
func (m *Manager) electAdopters(dead int) map[int]*store.State {
	deadName := m.nodes[dead].name
	type holder struct {
		snap   *store.State
		cursor uint64
	}
	holders := map[int]*holder{}
	for j := range m.nodes {
		if j == dead || m.c.NodeDown(j) {
			continue
		}
		snap, err := m.nodes[j].server.snapshotSource(deadName)
		if err != nil {
			m.event("promotion: snapshot on %s failed: %v", m.nodes[j].name, err)
			continue
		}
		if snap == nil {
			continue
		}
		holders[j] = &holder{snap: snap, cursor: m.nodes[j].server.lastAppliedFrom(deadName)}
	}
	owns := func(ep string) bool {
		ranked := m.rankedFor(ep)
		return len(ranked) > 0 && ranked[0] == dead
	}
	// mostCaughtUp walks ep's ranking (which covers every live node) so
	// equal cursors resolve to the ring's preferred follower.
	mostCaughtUp := func(ep string, has func(*store.State) bool) int {
		best, bestCursor := -1, uint64(0)
		for _, j := range m.rankedFor(ep) {
			h := holders[j]
			if j == dead || h == nil || !has(h.snap) {
				continue
			}
			if best == -1 || h.cursor > bestCursor {
				best, bestCursor = j, h.cursor
			}
		}
		return best
	}
	subsets := map[int]*store.State{}
	ensure := func(j int) *store.State {
		if subsets[j] == nil {
			subsets[j] = &store.State{Messages: map[string][]store.StoredMessage{}}
		}
		return subsets[j]
	}
	pin := func(ep string, j int) {
		if name, ok := strings.CutPrefix(ep, "queue:"); ok {
			m.c.PinQueue(name, j)
		} else if rest, ok := strings.CutPrefix(ep, "sub:"); ok {
			if cid, sub, ok := strings.Cut(rest, ":"); ok {
				m.c.PinDurable(cid, sub, j)
			}
		}
	}
	// Deterministic endpoint order: the union of every holder's
	// endpoints, sorted. Ownership is decided for every endpoint BEFORE
	// any pin lands — a pin reorders the ranking, which would flip
	// owns() for an endpoint whose messages were just adopted but whose
	// subscription record is still pending.
	msgEps := map[string]bool{}
	subEps := map[string]bool{}
	for _, h := range holders {
		for ep := range h.snap.Messages {
			msgEps[ep] = true
		}
		for _, sub := range h.snap.Subscriptions {
			subEps["sub:"+sub.ClientID+":"+sub.Name] = true
		}
	}
	owned := map[string]bool{}
	for ep := range msgEps {
		owned[ep] = owns(ep)
	}
	for ep := range subEps {
		if _, ok := owned[ep]; !ok {
			owned[ep] = owns(ep)
		}
	}
	for _, ep := range sortedKeys(msgEps) {
		if !owned[ep] || subEps[ep] {
			continue // sub endpoints: one election below covers both
		}
		j := mostCaughtUp(ep, func(s *store.State) bool { return len(s.Messages[ep]) > 0 })
		if j < 0 {
			continue
		}
		ensure(j).Messages[ep] = holders[j].snap.Messages[ep]
		pin(ep, j)
	}
	// A durable subscription and its backlog must land on ONE node: a
	// single election covers the subscription record and any pending
	// messages, so the pin, the record and the backlog always agree.
	for _, ep := range sortedKeys(subEps) {
		if !owned[ep] {
			continue
		}
		hasSub := func(s *store.State) bool {
			for _, sub := range s.Subscriptions {
				if "sub:"+sub.ClientID+":"+sub.Name == ep {
					return true
				}
			}
			return false
		}
		j := mostCaughtUp(ep, func(s *store.State) bool {
			return hasSub(s) || len(s.Messages[ep]) > 0
		})
		if j < 0 {
			continue
		}
		for _, sub := range holders[j].snap.Subscriptions {
			if "sub:"+sub.ClientID+":"+sub.Name == ep {
				ensure(j).Subscriptions = append(ensure(j).Subscriptions, sub)
				break
			}
		}
		if msgs := holders[j].snap.Messages[ep]; len(msgs) > 0 {
			ensure(j).Messages[ep] = msgs
		}
		pin(ep, j)
	}
	return subsets
}

// sortedKeys returns a set's keys in sorted order.
func sortedKeys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sortStrings(out)
	return out
}

// updateLag refreshes the replica.lag_records gauge with the worst
// per-link record lag.
func (m *Manager) updateLag() {
	var worst int64
	for i, node := range m.nodes {
		if m.c != nil && m.c.NodeDown(i) {
			continue
		}
		for to, s := range node.senders {
			if m.c != nil && m.c.NodeDown(to) {
				continue
			}
			if lag := s.lagRecords(); lag > worst {
				worst = lag
			}
		}
	}
	m.met.lag.Set(worst)
}

// streamTrimBatch is how many fully acknowledged records accumulate
// before a retention trim runs, amortizing TrimTo's copy of the
// retained suffix across many acks.
const streamTrimBatch = 256

// maybeTrim advances node from's committed-record stream retention to
// the lowest acknowledged position across its live links — the minimum
// over ALL of the node's followers, so with a multi-follower fan-out a
// lagging (even degraded) second follower pins retention and catches
// up by ordinary replay instead of being snapshot-resync'd on every
// trim. Halted or detached links never acknowledge again and must not
// pin retention forever, and a link awaiting reset rebuilds from a
// snapshot cut rather than the retained history, so none of those
// constrain the floor. A link the trim outruns anyway (racing a
// mid-reset session) fails its subscribe with ErrStreamTrimmed and
// converges through the snapshot resync path.
func (m *Manager) maybeTrim(from int) {
	node := m.nodes[from]
	floor := node.stream.LastSeq()
	for _, s := range node.senders {
		s.mu.Lock()
		live := !s.halted && !s.peerDead && !s.needReset
		acked := s.ackedThroughLocked()
		s.mu.Unlock()
		if live && acked < floor {
			floor = acked
		}
	}
	if floor >= node.stream.OldestRetained()+streamTrimBatch {
		node.stream.TrimTo(floor)
	}
}

// replicationStatus builds the /clusterz Replication section: the
// quorum configuration, aggregated witness suspicion (worst miss count
// and current vote tally per node), and per-destination quorum cover —
// every follower with its acked offset and link health, plus whether
// enough healthy links exist right now to satisfy the quorum. Lost
// redundancy is visible here before it becomes lost data.
func (m *Manager) replicationStatus() *cluster.ReplicationStatus {
	st := &cluster.ReplicationStatus{
		Promotions:         m.promotions.Load(),
		LastPromotionEpoch: m.lastPromotionEpoch.Load(),
		ReplicationFactor:  m.opts.ReplicationFactor,
		QuorumSize:         m.opts.QuorumSize,
	}
	m.mu.Lock()
	eps := make([]string, 0, len(m.endpoints))
	for ep := range m.endpoints {
		eps = append(eps, ep)
	}
	m.mu.Unlock()
	// Suspicion is the aggregate of the per-node witness views: a node
	// is suspected when any live peer is currently missing its probes;
	// Votes counts the witnesses already past their promotion
	// threshold, showing how close the quorum is to firing.
	threshold := m.opts.HeartbeatMisses
	for t := range m.nodes {
		if m.c.NodeDown(t) {
			continue
		}
		worst, votes := 0, 0
		for w := range m.nodes {
			if w == t || m.c.NodeDown(w) {
				continue
			}
			m.det[w].mu.Lock()
			miss := m.det[w].misses[t]
			m.det[w].mu.Unlock()
			if miss > worst {
				worst = miss
			}
			if miss >= threshold {
				votes++
			}
		}
		if worst > 0 {
			st.Suspected = append(st.Suspected, cluster.NodeSuspicion{
				Node: m.nodes[t].name, Misses: worst, Votes: votes,
			})
		}
	}
	for i := 1; i < len(st.Suspected); i++ {
		for j := i; j > 0 && st.Suspected[j].Node < st.Suspected[j-1].Node; j-- {
			st.Suspected[j], st.Suspected[j-1] = st.Suspected[j-1], st.Suspected[j]
		}
	}
	sortStrings(eps)
	for _, ep := range eps {
		ranked := m.rankedFor(ep)
		if len(ranked) == 0 {
			continue
		}
		primary := ranked[0]
		dr := cluster.DestinationReplica{Endpoint: ep, Primary: primary, Follower: -1}
		targets := m.followersFor(primary, ep)
		healthy := 0
		for _, to := range targets {
			s := m.nodes[primary].senders[to]
			if s == nil {
				continue
			}
			fs := cluster.FollowerStatus{
				Node:     to,
				Acked:    m.nodes[to].server.lastAppliedFrom(m.nodes[primary].name),
				Degraded: s.isDegraded(),
			}
			if !fs.Degraded {
				healthy++
			}
			dr.Followers = append(dr.Followers, fs)
		}
		if len(targets) > 0 {
			dr.Follower = targets[0]
		}
		need := m.opts.QuorumSize
		if need > len(targets) {
			need = len(targets)
		}
		dr.QuorumSize = need
		dr.QuorumMet = len(targets) > 0 && healthy >= need
		st.Destinations = append(st.Destinations, dr)
	}
	for i, node := range m.nodes {
		if m.c.NodeDown(i) {
			continue
		}
		for to, s := range node.senders {
			if m.c.NodeDown(to) {
				continue
			}
			st.Links = append(st.Links, cluster.ReplicaLink{
				From:       node.name,
				To:         m.nodes[to].name,
				LagRecords: s.lagRecords(),
				LagBytes:   s.lagBytes(),
				Degraded:   s.isDegraded(),
			})
		}
	}
	return st
}

// sortStrings is sort.Strings without dragging sort into every file.
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func (m *Manager) isClosed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.closed
}

// Close stops the detector, halts every link (releasing blocked
// producers), closes the replication servers, the cluster and the
// stores.
func (m *Manager) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	m.mu.Unlock()
	close(m.stop)
	return m.teardown()
}

// teardown releases everything that has been constructed so far (also
// the error path of NewLocal, where later fields may be nil).
func (m *Manager) teardown() error {
	for _, node := range m.nodes {
		if node == nil {
			continue
		}
		for _, s := range node.senders {
			s.halt()
		}
	}
	var first error
	for _, node := range m.nodes {
		if node == nil || node.server == nil {
			continue
		}
		node.server.Close()
	}
	if m.c != nil {
		if err := m.c.Close(); err != nil && first == nil {
			first = err
		}
	}
	for _, node := range m.nodes {
		if node == nil || node.stable == nil {
			continue
		}
		if err := node.stable.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// brokerOf returns node i's broker, nil while construction is still in
// flight (the replication servers start before the cluster exists).
func (m *Manager) brokerOf(i int) *broker.Broker {
	if i < 0 || i >= len(m.nodes) || m.nodes[i] == nil {
		return nil
	}
	return m.nodes[i].broker
}
