package replica

import (
	"bufio"
	"net"
	"sync"
	"time"

	"jmsharness/internal/jms"
	"jmsharness/internal/store"
)

// pendingRec is one record shipped on a link and not yet acknowledged.
type pendingRec struct {
	seq  uint64
	size int64
}

// sender is the primary side of one from→to replication link. It
// subscribes to its node's committed-record stream, ships the records
// whose endpoint the peer follows, and tracks the peer's cumulative
// acknowledgement so producers can wait for quorum replication cover
// (Manager.waitReplicated counts acked links). It reconnects forever
// until the link is halted (its own node died) or the peer is declared
// dead.
type sender struct {
	m        *Manager
	from, to int
	stream   *store.Stream

	stop chan struct{} // closed by halt

	mu   sync.Mutex
	wake chan struct{} // closed and replaced on every progress change
	conn net.Conn      // live session's connection, closed to force re-handshake
	// pending are shipped-but-unacked records in sequence order;
	// lastProcessed is the newest stream seq demuxed (shipped or
	// skipped). Acknowledged-through is pending[0]-1 when pending is
	// non-empty, else lastProcessed.
	pending       []pendingRec
	lastProcessed uint64
	// degraded: the peer failed to acknowledge within SyncTimeout;
	// producers proceed without replication cover until the link
	// catches back up (semisync degradation, not an error).
	degraded bool
	// resyncGen counts forceResync requests; needReset holds until a
	// handshake carrying the reset reaches the peer.
	resyncGen uint64
	needReset bool
	peerDead  bool
	halted    bool
}

func newSender(m *Manager, from, to int) *sender {
	return &sender{
		m:      m,
		from:   from,
		to:     to,
		stream: m.nodes[from].stream,
		stop:   make(chan struct{}),
		wake:   make(chan struct{}),
	}
}

// broadcastLocked wakes every waiter blocked on this link's progress:
// the link-local wake channel (tests, catch-up watchers) and the
// node-level channel the quorum barrier sleeps on — any link's
// progress may complete a Q-of-R quorum, so the barrier listens to the
// node, not to one sender.
func (s *sender) broadcastLocked() {
	close(s.wake)
	s.wake = make(chan struct{})
	s.m.nodes[s.from].wakeWaiters()
}

// ackedThroughLocked is the highest stream seq known replicated.
func (s *sender) ackedThroughLocked() uint64 {
	if len(s.pending) > 0 {
		return s.pending[0].seq - 1
	}
	return s.lastProcessed
}

// lagRecords is the link's record lag: stream head minus acked-through.
func (s *sender) lagRecords() int64 {
	s.mu.Lock()
	acked := s.ackedThroughLocked()
	s.mu.Unlock()
	last := s.stream.LastSeq()
	if last <= acked {
		return 0
	}
	return int64(last - acked)
}

// lagBytes is the payload byte count of the unacked stream suffix.
func (s *sender) lagBytes() int64 {
	s.mu.Lock()
	acked := s.ackedThroughLocked()
	s.mu.Unlock()
	return s.stream.SizeOfRange(acked)
}

func (s *sender) isDegraded() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.degraded || s.peerDead
}

// setDegraded flips the link into degraded mode (peer too slow or
// unreachable); producers stop waiting on it until it catches up.
func (s *sender) setDegraded() {
	s.mu.Lock()
	if !s.degraded && !s.halted && !s.peerDead {
		s.degraded = true
		s.broadcastLocked()
		s.mu.Unlock()
		s.m.event("link %d->%d: degraded (no follower ack within %v)", s.from, s.to, s.m.opts.SyncTimeout)
		return
	}
	s.mu.Unlock()
}

// halt stops the link with prejudice: every blocked producer gets
// ErrHalted. Used when this sender's own node is declared dead (its
// in-flight unreplicated records must never be acked to clients) and on
// manager shutdown.
func (s *sender) halt() {
	s.mu.Lock()
	if s.halted {
		s.mu.Unlock()
		return
	}
	s.halted = true
	close(s.stop)
	if s.conn != nil {
		s.conn.Close()
	}
	s.broadcastLocked()
	s.mu.Unlock()
}

// markPeerDead detaches the link from a peer declared dead: blocked
// producers proceed (their records re-cover on the post-promotion
// resync toward the new follower) and the dial loop exits.
func (s *sender) markPeerDead() {
	s.mu.Lock()
	if s.peerDead || s.halted {
		s.mu.Unlock()
		return
	}
	s.peerDead = true
	if s.conn != nil {
		s.conn.Close()
	}
	s.broadcastLocked()
	s.mu.Unlock()
}

// forceResync makes the next session replay the stream from the start
// with a reset handshake (the peer drops this source's state first).
// Needed whenever follower assignment changes: the cumulative cursor
// cannot express records that were skipped while another node was the
// follower.
func (s *sender) forceResync() {
	s.mu.Lock()
	s.needReset = true
	s.resyncGen++
	if s.conn != nil {
		s.conn.Close() // current session ends; redial re-handshakes
	}
	s.mu.Unlock()
}

// run dials and runs replication sessions until the link dies.
func (s *sender) run() {
	backoff := 5 * time.Millisecond
	for {
		s.mu.Lock()
		dead := s.halted || s.peerDead
		s.mu.Unlock()
		if dead {
			return
		}
		if err := s.connect(); err == nil {
			backoff = 5 * time.Millisecond
			continue
		}
		select {
		case <-s.stop:
			return
		case <-time.After(backoff):
		}
		if backoff < 200*time.Millisecond {
			backoff *= 2
		}
	}
}

// connect runs one session; nil means a clean teardown (forced resync
// or shutdown), an error means dial/handshake/session failure.
func (s *sender) connect() error {
	conn, err := net.DialTimeout("tcp", s.m.linkAddr(s.from, s.to), linkIOTimeout)
	if err != nil {
		return err
	}
	defer conn.Close()
	s.mu.Lock()
	if s.halted || s.peerDead {
		s.mu.Unlock()
		return nil
	}
	s.conn = conn
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.conn = nil
		s.mu.Unlock()
	}()
	return s.session(conn)
}

func (s *sender) session(conn net.Conn) error {
	s.mu.Lock()
	reset := s.needReset
	gen := s.resyncGen
	s.mu.Unlock()

	e := jms.NewEncoder([]byte{frHello})
	e.String(s.m.nodes[s.from].name)
	e.Bool(reset)
	if err := writeFrame(conn, e.Bytes()); err != nil {
		return err
	}
	br := bufio.NewReader(conn)
	_ = conn.SetReadDeadline(time.Now().Add(linkIOTimeout))
	payload, err := readFrame(br)
	if err != nil {
		return err
	}
	if len(payload) == 0 || payload[0] != frHelloAck {
		return errBadFrame
	}
	d := jms.NewDecoder(payload[1:])
	lastApplied := d.Uvarint()
	if err := d.Err(); err != nil {
		return err
	}
	// The reset reached the peer; clear the flag unless another
	// forceResync raced in since the handshake started.
	if reset {
		s.mu.Lock()
		if s.resyncGen == gen {
			s.needReset = false
		}
		s.mu.Unlock()
		lastApplied = 0
		// A trimmed stream cannot replay from zero — the history is
		// gone. Ship an atomic snapshot cut of the store instead and
		// stream from the cut.
		if s.stream.OldestRetained() > 0 {
			cut, serr := s.sendSnapshot(conn)
			if serr != nil {
				s.mu.Lock()
				s.needReset = true
				s.resyncGen++
				s.mu.Unlock()
				return serr
			}
			lastApplied = cut
		}
	}
	sub, err := s.stream.Subscribe(lastApplied)
	if err != nil {
		s.mu.Lock()
		s.needReset = true
		s.resyncGen++
		s.mu.Unlock()
		return err // position trimmed: next session full-resyncs
	}
	defer sub.Close()
	s.mu.Lock()
	s.pending = s.pending[:0]
	s.lastProcessed = lastApplied
	s.broadcastLocked()
	s.mu.Unlock()

	// The ack reader ends the session on any inbound error; the
	// stopOrDone combiner translates either teardown path into a stop
	// for the stream subscriber.
	sessDone := make(chan struct{})
	var once sync.Once
	endSession := func() { once.Do(func() { close(sessDone) }) }
	defer endSession()
	go func() {
		defer endSession()
		for {
			_ = conn.SetReadDeadline(time.Time{})
			payload, err := readFrame(br)
			if err != nil || len(payload) == 0 || payload[0] != frAck {
				return
			}
			d := jms.NewDecoder(payload[1:])
			seq := d.Uvarint()
			if d.Err() != nil {
				return
			}
			s.onAck(seq)
		}
	}()
	stopOrDone := make(chan struct{})
	go func() {
		select {
		case <-s.stop:
		case <-sessDone:
		}
		close(stopOrDone)
	}()

	for {
		batch, err := sub.Next(stopOrDone)
		if err != nil {
			return err // stream closed or trimmed
		}
		if batch == nil {
			return nil // session torn down or sender stopping
		}
		for _, rec := range batch {
			op, derr := store.DecodeOp(rec.Payload)
			if derr != nil {
				return derr
			}
			ship := s.m.shipsTo(s.from, op.EndpointOf(), s.to)
			if ship {
				s.mu.Lock()
				s.pending = append(s.pending, pendingRec{seq: rec.Seq, size: int64(len(rec.Payload))})
				s.mu.Unlock()
				e := jms.NewEncoder([]byte{frRecord})
				e.Uvarint(rec.Seq)
				e.Blob(rec.Payload)
				if werr := writeFrame(conn, e.Bytes()); werr != nil {
					return werr
				}
			}
			s.mu.Lock()
			s.lastProcessed = rec.Seq
			if !ship && len(s.pending) == 0 {
				// Skipped records advance acked-through directly.
				s.broadcastLocked()
			}
			s.mu.Unlock()
		}
		s.m.updateLag()
		s.m.maybeTrim(s.from)
	}
}

// sendSnapshot opens a reset session whose replay window was trimmed:
// it ships an atomic snapshot of this node's store — filtered to the
// endpoints the peer follows, encoded as ordinary store ops — and
// returns the stream cut the snapshot is exactly consistent with. The
// caller subscribes from the cut.
func (s *sender) sendSnapshot(conn net.Conn) (uint64, error) {
	snap, cut, err := s.m.nodes[s.from].stable.snapshotCut()
	if err != nil {
		return 0, err
	}
	if err := writeFrame(conn, []byte{frSnapBegin}); err != nil {
		return 0, err
	}
	entry := func(op store.Op) error {
		e := jms.NewEncoder([]byte{frSnapEntry})
		store.AppendOp(e, op)
		return writeFrame(conn, e.Bytes())
	}
	for ep, msgs := range snap.Messages {
		if !s.m.shipsTo(s.from, ep, s.to) {
			continue
		}
		for _, sm := range msgs {
			if err := entry(store.Op{Kind: store.OpAddMessage, ID: sm.ID, Endpoint: ep, Msg: sm.Msg}); err != nil {
				return 0, err
			}
			if sm.Delivered {
				if err := entry(store.Op{Kind: store.OpMarkDelivered, ID: sm.ID, Endpoint: ep}); err != nil {
					return 0, err
				}
			}
		}
	}
	for _, sub := range snap.Subscriptions {
		if !s.m.shipsTo(s.from, "sub:"+sub.ClientID+":"+sub.Name, s.to) {
			continue
		}
		if err := entry(store.Op{Kind: store.OpAddSubscription, Sub: sub}); err != nil {
			return 0, err
		}
	}
	e := jms.NewEncoder([]byte{frSnapEnd})
	e.Uvarint(cut)
	if err := writeFrame(conn, e.Bytes()); err != nil {
		return 0, err
	}
	s.m.event("link %d->%d: snapshot resync at stream cut %d", s.from, s.to, cut)
	return cut, nil
}

// onAck processes the peer's cumulative acknowledgement.
func (s *sender) onAck(seq uint64) {
	s.mu.Lock()
	drop := 0
	for drop < len(s.pending) && s.pending[drop].seq <= seq {
		drop++
	}
	if drop > 0 {
		s.pending = append(s.pending[:0], s.pending[drop:]...)
	}
	if s.degraded && len(s.pending) == 0 && s.lastProcessed == s.stream.LastSeq() {
		s.degraded = false
		s.mu.Unlock()
		s.m.event("link %d->%d: follower caught up, sync restored", s.from, s.to)
		s.mu.Lock()
	}
	s.broadcastLocked()
	s.mu.Unlock()
	s.m.updateLag()
	s.m.maybeTrim(s.from)
}
