package replica

// Partition-tolerant failure detection. PR 7's detector was a single
// in-process loop pinging every node: one observer, so a one-way
// partition of that observer's view (or of the node the loop happened
// to run near) could false-promote, and the loop itself was a single
// point of failure. Here every node runs its own prober goroutine
// (detectFrom) and the per-node views are exchanged as witness votes:
// each ping frame carries the prober's current suspicion bitmap, each
// pong answers with the responder's. promote() fires only when a
// majority of the live witnesses agree the target is dead, so a lone
// observer with a broken inbound path cannot take down a healthy
// primary, and losing any one detector loop loses one witness, not the
// control plane.
//
// Probes are sent through linkAddr — the same WrapLink-interposable
// path the replication data links dial — so a chaos proxy that
// partitions a replication link partitions the probes with it. That is
// deliberate: the detector observes exactly the connectivity the data
// plane has, which is what the promotion decision is about.

import (
	"bufio"
	"net"
	"sync"
	"time"

	"jmsharness/internal/jms"
)

// peerView is one node's local evidence about its peers: consecutive
// probe misses per target, plus the latest suspicion bitmap received
// from each witness and when it arrived. Votes expire (witnessQuorum's
// freshness window) so a stale bitmap from before a heal cannot keep
// condemning a recovered node.
type peerView struct {
	mu     sync.Mutex
	misses []int       // consecutive failed probes, per target
	votes  []uint64    // last suspicion bitmap received, per witness
	voteAt []time.Time // when that bitmap arrived
}

func newPeerView(n int) *peerView {
	return &peerView{
		misses: make([]int, n),
		votes:  make([]uint64, n),
		voteAt: make([]time.Time, n),
	}
}

// bitmap encodes which targets this view currently suspects (miss
// count at or past threshold) as a bit set, for piggybacking on ping
// frames.
func (v *peerView) bitmap(threshold int) uint64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	var b uint64
	for t, miss := range v.misses {
		if miss >= threshold {
			b |= 1 << uint(t)
		}
	}
	return b
}

func (v *peerView) observe(t int, ok bool) {
	v.mu.Lock()
	if ok {
		v.misses[t] = 0
	} else if v.misses[t] < 1<<30 {
		v.misses[t]++
	}
	v.mu.Unlock()
}

// recordVote stores witness w's latest suspicion bitmap. Called both
// when w's ping arrives at this node and when w's pong answers one of
// ours, so votes flow even across one-way partitions.
func (v *peerView) recordVote(w int, bits uint64) {
	v.mu.Lock()
	if w >= 0 && w < len(v.votes) {
		v.votes[w] = bits
		v.voteAt[w] = time.Now()
	}
	v.mu.Unlock()
}

// detectFrom is node i's prober loop: each tick it pings every live
// peer through the (possibly chaos-wrapped) link path, folds the
// results into its view, and checks whether any peer has reached
// witness quorum for promotion.
func (m *Manager) detectFrom(i int) {
	ticker := time.NewTicker(m.opts.HeartbeatEvery)
	defer ticker.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-ticker.C:
		}
		if m.c.NodeDown(i) {
			continue
		}
		view := m.det[i]
		var wg sync.WaitGroup
		for j := range m.nodes {
			if j == i || m.c.NodeDown(j) {
				continue
			}
			wg.Add(1)
			go func(j int) {
				defer wg.Done()
				view.observe(j, m.pingPeer(i, j))
			}(j)
		}
		wg.Wait()
		for t := range m.nodes {
			if t == i || m.c.NodeDown(t) {
				continue
			}
			if m.witnessQuorum(i, t) {
				m.promote(t)
			}
		}
	}
}

// witnessQuorum reports whether, from node i's vantage point, a
// majority of the live witnesses currently agree that node t is dead.
// Witnesses are all live nodes other than t (i's own view counts —
// it is a witness like any other). A remote vote counts only if its
// bitmap flags t and it arrived within the freshness window; a silent
// or stale witness is a non-vote, which biases toward NOT promoting —
// the safe direction.
func (m *Manager) witnessQuorum(i, t int) bool {
	threshold := m.opts.HeartbeatMisses
	view := m.det[i]
	view.mu.Lock()
	if view.misses[t] < threshold {
		view.mu.Unlock()
		return false
	}
	bits := append([]uint64(nil), view.votes...)
	at := append([]time.Time(nil), view.voteAt...)
	view.mu.Unlock()

	// Votes older than a full detection cycle (threshold misses at the
	// probe cadence, doubled for slack) may predate a heal.
	fresh := 2 * m.opts.HeartbeatEvery * time.Duration(threshold)
	if fresh < 2*m.opts.HeartbeatEvery {
		fresh = 2 * m.opts.HeartbeatEvery
	}
	now := time.Now()
	witnesses, votes := 0, 0
	for w := range m.nodes {
		if w == t || m.c.NodeDown(w) {
			continue
		}
		witnesses++
		switch {
		case w == i:
			votes++
		case now.Sub(at[w]) <= fresh && bits[w]&(1<<uint(t)) != 0:
			votes++
		}
	}
	return votes >= witnesses/2+1
}

// pingPeer sends one witness-carrying ping from node `from` to node
// `to` over the link path and reports whether a healthy pong came
// back. The pong's piggybacked bitmap is folded into from's view as
// to's vote.
func (m *Manager) pingPeer(from, to int) bool {
	timeout := m.opts.HeartbeatEvery
	if timeout < 10*time.Millisecond {
		timeout = 10 * time.Millisecond
	}
	conn, err := net.DialTimeout("tcp", m.linkAddr(from, to), timeout)
	if err != nil {
		return false
	}
	defer conn.Close()
	e := jms.NewEncoder([]byte{frPing})
	e.Uvarint(uint64(from))
	e.Uvarint(m.det[from].bitmap(m.opts.HeartbeatMisses))
	if err := writeFrame(conn, e.Bytes()); err != nil {
		return false
	}
	_ = conn.SetReadDeadline(time.Now().Add(timeout))
	payload, err := readFrame(bufio.NewReader(conn))
	if err != nil || len(payload) == 0 || payload[0] != frPong {
		return false
	}
	d := jms.NewDecoder(payload[1:])
	healthy := d.Bool()
	if d.Err() != nil {
		return false
	}
	if rest := d.Uvarint(); d.Err() == nil {
		m.det[from].recordVote(to, rest)
	}
	return healthy
}
