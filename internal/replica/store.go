package replica

import (
	"jmsharness/internal/jms"
	"jmsharness/internal/store"
)

// replicatedStore decorates a node's stable store with the semisync
// replication barrier: every mutation first commits locally (and
// publishes to the node's committed-record stream), then blocks until
// the endpoint's follower has acknowledged the stream through that
// record. The stream sequence to wait for is read *after* the inner
// call returns — both the WAL group-commit loop and the Streamed
// decorator publish before releasing the caller, so LastSeq() is
// guaranteed to cover this mutation.
type replicatedStore struct {
	inner  store.Store
	stream *store.Stream
	m      *Manager
	node   int
}

var _ store.Store = (*replicatedStore)(nil)

func (r *replicatedStore) barrier(endpoint string) error {
	return r.m.waitReplicated(r.node, endpoint, r.stream.LastSeq())
}

func (r *replicatedStore) AddMessage(endpoint string, msg *jms.Message) (store.RecordID, error) {
	id, err := r.inner.AddMessage(endpoint, msg)
	if err != nil {
		return 0, err
	}
	return id, r.barrier(endpoint)
}

func (r *replicatedStore) RemoveMessage(endpoint string, id store.RecordID) error {
	if err := r.inner.RemoveMessage(endpoint, id); err != nil {
		return err
	}
	return r.barrier(endpoint)
}

func (r *replicatedStore) MarkDelivered(endpoint string, id store.RecordID) error {
	if err := r.inner.MarkDelivered(endpoint, id); err != nil {
		return err
	}
	return r.barrier(endpoint)
}

func (r *replicatedStore) AddSubscription(sub store.SubscriptionRecord) error {
	if err := r.inner.AddSubscription(sub); err != nil {
		return err
	}
	return r.barrier("sub:" + sub.ClientID + ":" + sub.Name)
}

func (r *replicatedStore) RemoveSubscription(clientID, name string) error {
	if err := r.inner.RemoveSubscription(clientID, name); err != nil {
		return err
	}
	return r.barrier("sub:" + clientID + ":" + name)
}

func (r *replicatedStore) Snapshot() (*store.State, error) { return r.inner.Snapshot() }

func (r *replicatedStore) Close() error { return r.inner.Close() }
