package replica

import (
	"sync"

	"jmsharness/internal/jms"
	"jmsharness/internal/store"
)

// replicatedStore decorates a node's stable store with the semisync
// replication barrier: every mutation first commits locally (and
// publishes to the node's committed-record stream), then blocks until
// the endpoint's follower has acknowledged the stream through that
// record. The stream sequence to wait for is read *after* the inner
// call returns — both the WAL group-commit loop and the Streamed
// decorator publish before releasing the caller, so LastSeq() is
// guaranteed to cover this mutation.
type replicatedStore struct {
	inner  store.Store
	stream *store.Stream
	m      *Manager
	node   int
	// cutMu makes snapshotCut an atomic cut of the record stream: every
	// mutation holds the read side across the inner call (which commits
	// AND publishes before returning), so the write side observes a
	// store with no mutation between commit and publication — the
	// snapshot then corresponds exactly to stream position LastSeq().
	cutMu sync.RWMutex
}

var _ store.Store = (*replicatedStore)(nil)

func (r *replicatedStore) barrier(endpoint string) error {
	return r.m.waitReplicated(r.node, endpoint, r.stream.LastSeq())
}

// snapshotCut returns the store's state together with the stream
// sequence it is exactly consistent with: every record ≤ cut is
// reflected in the state, no record > cut is. Senders use it to resync
// a follower whose replay window was trimmed away.
func (r *replicatedStore) snapshotCut() (*store.State, uint64, error) {
	r.cutMu.Lock()
	defer r.cutMu.Unlock()
	snap, err := r.inner.Snapshot()
	if err != nil {
		return nil, 0, err
	}
	return snap, r.stream.LastSeq(), nil
}

func (r *replicatedStore) AddMessage(endpoint string, msg *jms.Message) (store.RecordID, error) {
	r.cutMu.RLock()
	id, err := r.inner.AddMessage(endpoint, msg)
	r.cutMu.RUnlock()
	if err != nil {
		return 0, err
	}
	return id, r.barrier(endpoint)
}

func (r *replicatedStore) RemoveMessage(endpoint string, id store.RecordID) error {
	r.cutMu.RLock()
	err := r.inner.RemoveMessage(endpoint, id)
	r.cutMu.RUnlock()
	if err != nil {
		return err
	}
	return r.barrier(endpoint)
}

func (r *replicatedStore) MarkDelivered(endpoint string, id store.RecordID) error {
	r.cutMu.RLock()
	err := r.inner.MarkDelivered(endpoint, id)
	r.cutMu.RUnlock()
	if err != nil {
		return err
	}
	return r.barrier(endpoint)
}

func (r *replicatedStore) AddSubscription(sub store.SubscriptionRecord) error {
	r.cutMu.RLock()
	err := r.inner.AddSubscription(sub)
	r.cutMu.RUnlock()
	if err != nil {
		return err
	}
	return r.barrier("sub:" + sub.ClientID + ":" + sub.Name)
}

func (r *replicatedStore) RemoveSubscription(clientID, name string) error {
	r.cutMu.RLock()
	err := r.inner.RemoveSubscription(clientID, name)
	r.cutMu.RUnlock()
	if err != nil {
		return err
	}
	return r.barrier("sub:" + clientID + ":" + name)
}

func (r *replicatedStore) Snapshot() (*store.State, error) { return r.inner.Snapshot() }

func (r *replicatedStore) Close() error { return r.inner.Close() }
