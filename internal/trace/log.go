package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// Writer logs events, one JSON document per line, assigning per-node
// sequence numbers. It is safe for concurrent use by the producer and
// consumer goroutines of a test. "As each message is sent and received,
// these events are logged to disk, along with the unique message
// identifier and a timestamp" (§4).
type Writer struct {
	node string
	now  func() time.Time

	mu  sync.Mutex
	seq int64
	w   *bufio.Writer
	c   io.Closer
	err error
}

// NewWriter returns a Writer that logs events for node to w. now
// supplies timestamps; if nil, time.Now is used.
func NewWriter(node string, w io.Writer, now func() time.Time) *Writer {
	if now == nil {
		now = time.Now
	}
	tw := &Writer{node: node, now: now, w: bufio.NewWriterSize(w, 1<<16)}
	if c, ok := w.(io.Closer); ok {
		tw.c = c
	}
	return tw
}

// CreateFileWriter creates (truncating) a log file at path and returns a
// Writer over it.
func CreateFileWriter(node, path string, now func() time.Time) (*Writer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("trace: creating log %s: %w", path, err)
	}
	return NewWriter(node, f, now), nil
}

// Log stamps ev with the node, the next sequence number, and the current
// time (if ev.Time is zero), then appends it to the log. Errors are
// sticky and reported by Close.
func (w *Writer) Log(ev Event) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return
	}
	w.seq++
	ev.Seq = w.seq
	ev.Node = w.node
	if ev.Time.IsZero() {
		ev.Time = w.now()
	}
	data, err := json.Marshal(ev)
	if err != nil {
		w.err = fmt.Errorf("trace: encoding event: %w", err)
		return
	}
	if _, err := w.w.Write(data); err != nil {
		w.err = fmt.Errorf("trace: writing event: %w", err)
		return
	}
	if err := w.w.WriteByte('\n'); err != nil {
		w.err = fmt.Errorf("trace: writing event: %w", err)
	}
}

// Node returns the writer's node identifier.
func (w *Writer) Node() string { return w.node }

// Count returns the number of events logged so far.
func (w *Writer) Count() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seq
}

// Flush writes buffered events through to the underlying writer.
func (w *Writer) Flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if err := w.w.Flush(); err != nil {
		w.err = fmt.Errorf("trace: flushing log: %w", err)
	}
	return w.err
}

// Close flushes and closes the log, returning the first error
// encountered over the writer's lifetime.
func (w *Writer) Close() error {
	flushErr := w.Flush()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.c != nil {
		if err := w.c.Close(); err != nil && w.err == nil {
			w.err = fmt.Errorf("trace: closing log: %w", err)
		}
		w.c = nil
	}
	if flushErr != nil {
		return flushErr
	}
	return w.err
}

// ReadLog parses a JSON-lines event log.
func ReadLog(r io.Reader) ([]Event, error) {
	var events []Event
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 0, 1<<16), 1<<22)
	line := 0
	for scanner.Scan() {
		line++
		raw := scanner.Bytes()
		if len(raw) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(raw, &ev); err != nil {
			return nil, fmt.Errorf("trace: log line %d: %w", line, err)
		}
		events = append(events, ev)
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("trace: reading log: %w", err)
	}
	return events, nil
}

// ReadLogFile parses the event log at path.
func ReadLogFile(path string) ([]Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: opening log %s: %w", path, err)
	}
	defer f.Close()
	return ReadLog(f)
}

// Collector is an in-memory event sink used when the harness runs tests
// in-process (no per-machine log files to collect). It implements the
// same logging interface as Writer.
type Collector struct {
	node string
	now  func() time.Time

	mu     sync.Mutex
	seq    int64
	events []Event
}

// NewCollector returns an in-memory collector for node.
func NewCollector(node string, now func() time.Time) *Collector {
	if now == nil {
		now = time.Now
	}
	return &Collector{node: node, now: now}
}

// Log stamps and stores ev.
func (c *Collector) Log(ev Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seq++
	ev.Seq = c.seq
	ev.Node = c.node
	if ev.Time.IsZero() {
		ev.Time = c.now()
	}
	c.events = append(c.events, ev)
}

// Node returns the collector's node identifier.
func (c *Collector) Node() string { return c.node }

// Events returns a copy of the collected events.
func (c *Collector) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Event, len(c.events))
	copy(out, c.events)
	return out
}

// Logger is the event sink interface shared by Writer and Collector.
type Logger interface {
	// Log records one event, stamping node, sequence and time.
	Log(ev Event)
	// Node returns the logger's node identifier.
	Node() string
}

var (
	_ Logger = (*Writer)(nil)
	_ Logger = (*Collector)(nil)
)
