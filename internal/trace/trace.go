package trace

import (
	"fmt"
	"sort"
	"time"
)

// Trace is a merged execution trace: the union of all nodes' event logs,
// in a single global order. Build one with Merge.
type Trace struct {
	// Events is sorted by (adjusted) time, with (node, seq) breaking
	// ties, which preserves per-node program order.
	Events []Event
}

// Merge combines per-node event logs into a single Trace. offsets maps a
// node name to the estimated offset of that node's clock relative to the
// reference clock (as produced by clock.Sync); the offset is *subtracted*
// from that node's timestamps so all events land on the reference
// timeline. Nodes absent from offsets are assumed synchronised.
func Merge(logs [][]Event, offsets map[string]time.Duration) *Trace {
	total := 0
	for _, l := range logs {
		total += len(l)
	}
	all := make([]Event, 0, total)
	for _, l := range logs {
		for _, ev := range l {
			if off, ok := offsets[ev.Node]; ok && off != 0 {
				ev.Time = ev.Time.Add(-off)
			}
			all = append(all, ev)
		}
	}
	sort.SliceStable(all, func(i, j int) bool {
		if !all[i].Time.Equal(all[j].Time) {
			return all[i].Time.Before(all[j].Time)
		}
		if all[i].Node != all[j].Node {
			return all[i].Node < all[j].Node
		}
		return all[i].Seq < all[j].Seq
	})
	return &Trace{Events: all}
}

// Filter returns the events satisfying keep, in trace order.
func (t *Trace) Filter(keep func(*Event) bool) []Event {
	var out []Event
	for i := range t.Events {
		if keep(&t.Events[i]) {
			out = append(out, t.Events[i])
		}
	}
	return out
}

// ByType returns the events of the given type, in trace order.
func (t *Trace) ByType(typ EventType) []Event {
	return t.Filter(func(e *Event) bool { return e.Type == typ })
}

// CommittedTx returns the set of transaction IDs with a commit event.
// Definition 1/2: transactional sends and receives only count once their
// transaction commits.
func (t *Trace) CommittedTx() map[string]bool {
	committed := map[string]bool{}
	for i := range t.Events {
		if t.Events[i].Type == EventCommit && t.Events[i].Err == "" {
			committed[t.Events[i].TxID] = true
		}
	}
	return committed
}

// PhaseBounds returns the start time of the named phase and the start
// time of the phase after it (i.e. the half-open interval during which
// the phase was active). ok is false if the phase marker is absent.
func (t *Trace) PhaseBounds(phase string) (start, end time.Time, ok bool) {
	found := false
	for i := range t.Events {
		ev := &t.Events[i]
		if ev.Type != EventPhase {
			continue
		}
		if ev.Detail == phase {
			start = ev.Time
			found = true
		} else if found {
			return start, ev.Time, true
		}
	}
	if found {
		// Phase ran to the end of the trace.
		return start, t.Events[len(t.Events)-1].Time, true
	}
	return time.Time{}, time.Time{}, false
}

// HasCrash reports whether the trace contains an injected provider crash
// (which relaxes the required-delivery obligations of non-persistent
// messages).
func (t *Trace) HasCrash() bool {
	for i := range t.Events {
		if t.Events[i].Type == EventCrash {
			return true
		}
	}
	return false
}

// CrashWindows returns the [crash, recovered) intervals in the trace. A
// crash with no subsequent recovery extends to the end of the trace.
func (t *Trace) CrashWindows() [][2]time.Time {
	var windows [][2]time.Time
	var open *time.Time
	for i := range t.Events {
		ev := &t.Events[i]
		switch ev.Type {
		case EventCrash:
			if open == nil {
				tm := ev.Time
				open = &tm
			}
		case EventRecovered:
			if open != nil {
				windows = append(windows, [2]time.Time{*open, ev.Time})
				open = nil
			}
		}
	}
	if open != nil && len(t.Events) > 0 {
		windows = append(windows, [2]time.Time{*open, t.Events[len(t.Events)-1].Time})
	}
	return windows
}

// Validate performs structural sanity checks on the trace: every
// deliver names a consumer, endpoint and message; every send-start has
// a matching send-end on the same node; sequence numbers are per-node
// monotonic. It returns a descriptive error for the first problem.
func (t *Trace) Validate() error {
	lastSeq := map[string]int64{}
	openSends := map[string]string{} // msgUID -> node with unmatched send-start
	for i := range t.Events {
		ev := &t.Events[i]
		if ev.Node == "" {
			return fmt.Errorf("trace: event %d has no node", i)
		}
		if ev.Seq <= lastSeq[ev.Node] {
			return fmt.Errorf("trace: node %s sequence not monotonic at event %d (seq %d after %d)",
				ev.Node, i, ev.Seq, lastSeq[ev.Node])
		}
		lastSeq[ev.Node] = ev.Seq
		switch ev.Type {
		case EventSendStart:
			if ev.MsgUID == "" || ev.Producer == "" {
				return fmt.Errorf("trace: send-start event %d missing message or producer", i)
			}
			openSends[ev.MsgUID] = ev.Node
		case EventSendEnd:
			if _, ok := openSends[ev.MsgUID]; !ok {
				return fmt.Errorf("trace: send-end for %s without send-start", ev.MsgUID)
			}
			delete(openSends, ev.MsgUID)
		case EventDeliver:
			if ev.MsgUID == "" || ev.Consumer == "" || ev.Endpoint == "" {
				return fmt.Errorf("trace: deliver event %d missing message, consumer or endpoint", i)
			}
		}
	}
	if len(openSends) > 0 {
		for uid := range openSends {
			return fmt.Errorf("trace: send-start for %s has no send-end", uid)
		}
	}
	return nil
}

// Stats summarises a trace for reporting.
type Stats struct {
	Events    int
	Nodes     int
	Sends     int
	Delivers  int
	Commits   int
	Aborts    int
	Crashes   int
	Producers int
	Consumers int
}

// Summarize computes trace-level counters.
func (t *Trace) Summarize() Stats {
	nodes := map[string]bool{}
	producers := map[string]bool{}
	consumers := map[string]bool{}
	s := Stats{Events: len(t.Events)}
	for i := range t.Events {
		ev := &t.Events[i]
		nodes[ev.Node] = true
		switch ev.Type {
		case EventSendEnd:
			if ev.Err == "" {
				s.Sends++
			}
			producers[ev.Producer] = true
		case EventDeliver:
			s.Delivers++
			consumers[ev.Consumer] = true
		case EventCommit:
			s.Commits++
		case EventAbort:
			s.Aborts++
		case EventCrash:
			s.Crashes++
		}
	}
	s.Nodes = len(nodes)
	s.Producers = len(producers)
	s.Consumers = len(consumers)
	return s
}
