package trace

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"jmsharness/internal/jms"
)

func TestEventTypeStrings(t *testing.T) {
	types := []EventType{
		EventSendStart, EventSendEnd, EventDeliver, EventAck, EventCommit,
		EventAbort, EventConsumerOpen, EventConsumerClose, EventSubscribe,
		EventUnsubscribe, EventCrash, EventRecovered, EventPhase,
	}
	seen := map[string]bool{}
	for _, typ := range types {
		s := typ.String()
		if strings.HasPrefix(s, "EventType(") {
			t.Errorf("type %d has no name", typ)
		}
		if seen[s] {
			t.Errorf("duplicate name %q", s)
		}
		seen[s] = true
	}
	if !strings.HasPrefix(EventType(200).String(), "EventType(") {
		t.Error("unknown type should format numerically")
	}
}

func TestMessageUID(t *testing.T) {
	if got := MessageUID("p1", 42); got != "p1/42" {
		t.Errorf("MessageUID = %q", got)
	}
}

func TestEndpointNames(t *testing.T) {
	if EndpointForQueue("q") != "queue:q" {
		t.Error("queue endpoint wrong")
	}
	if EndpointForDurable("cid", "sub") != "sub:cid:sub" {
		t.Error("durable endpoint wrong")
	}
	if EndpointForNonDurable("c9") != "sub:anon:c9" {
		t.Error("non-durable endpoint wrong")
	}
}

func TestBodyChecksum(t *testing.T) {
	a := BodyChecksum(jms.TextBody("hello"))
	b := BodyChecksum(jms.TextBody("hello"))
	c := BodyChecksum(jms.TextBody("world"))
	if a != b {
		t.Error("checksum not deterministic")
	}
	if a == c {
		t.Error("different bodies should (almost surely) differ")
	}
	if BodyChecksum(nil) != 0 {
		t.Error("nil body checksum should be 0")
	}
}

func TestWriterAssignsSeqAndNode(t *testing.T) {
	var buf bytes.Buffer
	now := time.Unix(100, 0)
	w := NewWriter("node-a", &buf, func() time.Time { return now })
	w.Log(Event{Type: EventSendStart, MsgUID: "p/1", Producer: "p"})
	w.Log(Event{Type: EventSendEnd, MsgUID: "p/1", Producer: "p"})
	if w.Count() != 2 {
		t.Errorf("Count = %d", w.Count())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := ReadLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("read %d events", len(events))
	}
	if events[0].Seq != 1 || events[1].Seq != 2 {
		t.Error("sequence numbers not assigned")
	}
	if events[0].Node != "node-a" {
		t.Error("node not stamped")
	}
	if !events[0].Time.Equal(now) {
		t.Error("time not stamped")
	}
}

func TestWriterPreservesExplicitTime(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter("n", &buf, nil)
	explicit := time.Unix(7, 0).UTC()
	w.Log(Event{Type: EventPhase, Time: explicit, Detail: PhaseRun})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := ReadLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !events[0].Time.Equal(explicit) {
		t.Errorf("time = %v, want %v", events[0].Time, explicit)
	}
}

func TestFileWriterRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.log")
	w, err := CreateFileWriter("n1", path, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		w.Log(Event{Type: EventDeliver, MsgUID: MessageUID("p", int64(i)),
			Consumer: "c", Endpoint: "queue:q", MsgSeq: int64(i)})
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := ReadLogFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 100 {
		t.Fatalf("read %d events", len(events))
	}
	if events[42].MsgSeq != 42 {
		t.Error("payload fields not round-tripped")
	}
}

func TestReadLogRejectsGarbage(t *testing.T) {
	if _, err := ReadLog(strings.NewReader("not json\n")); err == nil {
		t.Error("garbage log should fail to parse")
	}
}

func TestReadLogSkipsBlankLines(t *testing.T) {
	events, err := ReadLog(strings.NewReader("\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 0 {
		t.Error("blank lines should produce no events")
	}
}

func TestCollector(t *testing.T) {
	c := NewCollector("mem", nil)
	c.Log(Event{Type: EventAck})
	c.Log(Event{Type: EventAck})
	events := c.Events()
	if len(events) != 2 || events[1].Seq != 2 || events[0].Node != "mem" {
		t.Errorf("unexpected events %+v", events)
	}
	// Returned slice must be a copy.
	events[0].Node = "tampered"
	if c.Events()[0].Node != "mem" {
		t.Error("Events returned aliased storage")
	}
}

func mkEvent(node string, seq int64, at int64, typ EventType) Event {
	return Event{Node: node, Seq: seq, Time: time.Unix(at, 0), Type: typ}
}

func TestMergeOrdersAndAdjusts(t *testing.T) {
	a := []Event{mkEvent("a", 1, 10, EventAck), mkEvent("a", 2, 20, EventAck)}
	b := []Event{mkEvent("b", 1, 12, EventAck)} // b's clock is 5s fast
	tr := Merge([][]Event{a, b}, map[string]time.Duration{"b": 5 * time.Second})
	if len(tr.Events) != 3 {
		t.Fatalf("merged %d events", len(tr.Events))
	}
	// b's event lands at t=7, before both of a's.
	if tr.Events[0].Node != "b" {
		t.Errorf("order after skew adjust: %v", tr.Events)
	}
	if !tr.Events[0].Time.Equal(time.Unix(7, 0)) {
		t.Errorf("adjusted time = %v", tr.Events[0].Time)
	}
}

func TestMergeTieBreaksBySeq(t *testing.T) {
	a := []Event{mkEvent("a", 2, 10, EventAck)}
	b := []Event{mkEvent("a", 1, 10, EventCommit)}
	tr := Merge([][]Event{a, b}, nil)
	if tr.Events[0].Seq != 1 {
		t.Error("equal timestamps should order by seq")
	}
}

func TestCommittedTx(t *testing.T) {
	tr := &Trace{Events: []Event{
		{Node: "n", Seq: 1, Type: EventCommit, TxID: "t1"},
		{Node: "n", Seq: 2, Type: EventAbort, TxID: "t2"},
		{Node: "n", Seq: 3, Type: EventCommit, TxID: "t3", Err: "boom"},
	}}
	committed := tr.CommittedTx()
	if !committed["t1"] || committed["t2"] || committed["t3"] {
		t.Errorf("committed = %v", committed)
	}
}

func TestPhaseBounds(t *testing.T) {
	tr := &Trace{Events: []Event{
		{Node: "n", Seq: 1, Time: time.Unix(0, 0), Type: EventPhase, Detail: PhaseWarmup},
		{Node: "n", Seq: 2, Time: time.Unix(10, 0), Type: EventPhase, Detail: PhaseRun},
		{Node: "n", Seq: 3, Time: time.Unix(20, 0), Type: EventPhase, Detail: PhaseWarmdown},
		{Node: "n", Seq: 4, Time: time.Unix(30, 0), Type: EventPhase, Detail: PhaseDone},
	}}
	start, end, ok := tr.PhaseBounds(PhaseRun)
	if !ok || !start.Equal(time.Unix(10, 0)) || !end.Equal(time.Unix(20, 0)) {
		t.Errorf("run bounds = %v..%v ok=%v", start, end, ok)
	}
	if _, _, ok := tr.PhaseBounds("nonexistent"); ok {
		t.Error("missing phase should report !ok")
	}
	// Last phase extends to end of trace.
	start, end, ok = tr.PhaseBounds(PhaseDone)
	if !ok || !start.Equal(time.Unix(30, 0)) || !end.Equal(time.Unix(30, 0)) {
		t.Errorf("done bounds = %v..%v ok=%v", start, end, ok)
	}
}

func TestCrashWindows(t *testing.T) {
	tr := &Trace{Events: []Event{
		{Node: "n", Seq: 1, Time: time.Unix(0, 0), Type: EventAck},
		{Node: "n", Seq: 2, Time: time.Unix(5, 0), Type: EventCrash},
		{Node: "n", Seq: 3, Time: time.Unix(8, 0), Type: EventRecovered},
		{Node: "n", Seq: 4, Time: time.Unix(12, 0), Type: EventCrash},
		{Node: "n", Seq: 5, Time: time.Unix(15, 0), Type: EventAck},
	}}
	if !tr.HasCrash() {
		t.Error("HasCrash should be true")
	}
	windows := tr.CrashWindows()
	if len(windows) != 2 {
		t.Fatalf("windows = %v", windows)
	}
	if !windows[0][0].Equal(time.Unix(5, 0)) || !windows[0][1].Equal(time.Unix(8, 0)) {
		t.Errorf("first window = %v", windows[0])
	}
	if !windows[1][1].Equal(time.Unix(15, 0)) {
		t.Errorf("open window should extend to trace end: %v", windows[1])
	}
}

func TestValidateCatchesProblems(t *testing.T) {
	good := &Trace{Events: []Event{
		{Node: "n", Seq: 1, Type: EventSendStart, MsgUID: "p/1", Producer: "p"},
		{Node: "n", Seq: 2, Type: EventSendEnd, MsgUID: "p/1", Producer: "p"},
		{Node: "m", Seq: 1, Type: EventDeliver, MsgUID: "p/1", Consumer: "c", Endpoint: "queue:q"},
	}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid trace rejected: %v", err)
	}
	bad := []*Trace{
		{Events: []Event{{Seq: 1, Type: EventAck}}},                                                 // no node
		{Events: []Event{{Node: "n", Seq: 2, Type: EventAck}, {Node: "n", Seq: 1, Type: EventAck}}}, // seq regression
		{Events: []Event{{Node: "n", Seq: 1, Type: EventSendStart, MsgUID: "p/1", Producer: "p"}}},  // unmatched send
		{Events: []Event{{Node: "n", Seq: 1, Type: EventSendEnd, MsgUID: "p/1"}}},                   // end without start
		{Events: []Event{{Node: "n", Seq: 1, Type: EventDeliver, MsgUID: "p/1"}}},                   // deliver missing fields
		{Events: []Event{{Node: "n", Seq: 1, Type: EventSendStart, Producer: "p"}}},                 // send missing msg
	}
	for i, tr := range bad {
		if err := tr.Validate(); err == nil {
			t.Errorf("bad trace %d accepted", i)
		}
	}
}

func TestSummarize(t *testing.T) {
	tr := &Trace{Events: []Event{
		{Node: "a", Seq: 1, Type: EventSendEnd, Producer: "p1"},
		{Node: "a", Seq: 2, Type: EventSendEnd, Producer: "p1", Err: "x"},
		{Node: "b", Seq: 1, Type: EventDeliver, Consumer: "c1"},
		{Node: "b", Seq: 2, Type: EventCommit},
		{Node: "b", Seq: 3, Type: EventAbort},
		{Node: "b", Seq: 4, Type: EventCrash},
	}}
	s := tr.Summarize()
	want := Stats{Events: 6, Nodes: 2, Sends: 1, Delivers: 1, Commits: 1,
		Aborts: 1, Crashes: 1, Producers: 1, Consumers: 1}
	if s != want {
		t.Errorf("Summarize = %+v, want %+v", s, want)
	}
}

func TestFilterAndByType(t *testing.T) {
	tr := &Trace{Events: []Event{
		{Node: "n", Seq: 1, Type: EventAck},
		{Node: "n", Seq: 2, Type: EventCommit},
		{Node: "n", Seq: 3, Type: EventAck},
	}}
	acks := tr.ByType(EventAck)
	if len(acks) != 2 {
		t.Errorf("ByType found %d acks", len(acks))
	}
	odd := tr.Filter(func(e *Event) bool { return e.Seq%2 == 1 })
	if len(odd) != 2 {
		t.Errorf("Filter found %d odd-seq events", len(odd))
	}
}
