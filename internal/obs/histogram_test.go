package obs

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// exactQuantile is the reference implementation: the nearest-rank
// q-quantile of the raw samples.
func exactQuantile(sorted []int64, q float64) int64 {
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// quantileBand is the error a fixed-bucket estimate is allowed: the
// bucket containing the exact quantile, widened by one bucket on each
// side (a rank landing exactly on a cumulative-count boundary can push
// the interpolated estimate into a neighboring bucket). The overflow
// bucket's upper edge is the observed max — that is what the estimator
// reports there.
func quantileBand(bounds []int64, maxv, exact int64) (int64, int64) {
	i := sort.Search(len(bounds), func(j int) bool { return bounds[j] >= exact })
	lo := int64(0)
	if i >= 2 {
		lo = bounds[i-2]
	}
	hi := maxv
	if i+1 < len(bounds) {
		hi = bounds[i+1]
	}
	if hi < maxv && i+1 >= len(bounds) {
		hi = maxv
	}
	return lo, hi
}

// distributions the estimator must handle: flat mass (every bucket
// holds a slice), two far-apart modes (quantiles jump a bucket gap),
// and a heavy tail (high quantiles land in exponentially wide buckets
// and the overflow).
var quantileDistributions = []struct {
	name string
	gen  func(r *rand.Rand) int64
}{
	{"uniform", func(r *rand.Rand) int64 {
		return 1 + r.Int63n(1_000_000_000)
	}},
	{"bimodal", func(r *rand.Rand) int64 {
		if r.Intn(2) == 0 {
			return 10_000 + r.Int63n(2_000)
		}
		return 100_000_000 + r.Int63n(20_000_000)
	}},
	{"heavy-tail", func(r *rand.Rand) int64 {
		// Log-uniform over ~7 decades: the p99 sits deep in the tail,
		// occasionally past the last finite bucket bound.
		return int64(math.Pow(10, 3+7*r.Float64()))
	}},
}

// TestHistogramQuantilesWithinBucketResolution is the property the
// delay/QoS pipeline leans on: for any input shape, the histogram's
// p50/p95/p99 estimates agree with the exact sorted-sample quantiles
// to within bucket resolution. Samples are observed from concurrent
// writers so the lock-free hot path is exercised under -race.
func TestHistogramQuantilesWithinBucketResolution(t *testing.T) {
	const n = 20_000
	for _, dist := range quantileDistributions {
		t.Run(dist.name, func(t *testing.T) {
			r := rand.New(rand.NewSource(42))
			samples := make([]int64, n)
			for i := range samples {
				samples[i] = dist.gen(r)
			}

			h := NewHistogram(nil) // DurationBounds
			var wg sync.WaitGroup
			const writers = 4
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(part []int64) {
					defer wg.Done()
					for _, v := range part {
						h.Observe(v)
					}
				}(samples[w*n/writers : (w+1)*n/writers])
			}
			wg.Wait()

			sorted := append([]int64(nil), samples...)
			sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
			snap := h.Snapshot()

			if snap.Count != n {
				t.Fatalf("count = %d, want %d", snap.Count, n)
			}
			if snap.Min != sorted[0] || snap.Max != sorted[n-1] {
				t.Fatalf("min/max = %d/%d, want %d/%d", snap.Min, snap.Max, sorted[0], sorted[n-1])
			}
			var sum int64
			for _, v := range samples {
				sum += v
			}
			if snap.Sum != sum {
				t.Fatalf("sum = %d, want %d", snap.Sum, sum)
			}

			bounds := DurationBounds()
			for _, tc := range []struct {
				q   float64
				got int64
			}{{0.50, snap.P50}, {0.95, snap.P95}, {0.99, snap.P99}} {
				exact := exactQuantile(sorted, tc.q)
				lo, hi := quantileBand(bounds, snap.Max, exact)
				if tc.got < lo || tc.got > hi {
					t.Errorf("p%.0f = %d outside bucket-resolution band [%d, %d] around exact %d",
						tc.q*100, tc.got, lo, hi, exact)
				}
			}
		})
	}
}

// TestHistogramQuantileMonotonicity: for every distribution the
// estimated quantiles must be ordered — a quantile estimator that
// crosses over under interpolation is lying about the distribution.
func TestHistogramQuantileMonotonicity(t *testing.T) {
	for _, dist := range quantileDistributions {
		t.Run(dist.name, func(t *testing.T) {
			r := rand.New(rand.NewSource(7))
			h := NewHistogram(nil)
			for i := 0; i < 5_000; i++ {
				h.Observe(dist.gen(r))
			}
			snap := h.Snapshot()
			if snap.P50 > snap.P95 || snap.P95 > snap.P99 {
				t.Fatalf("quantiles not monotone: p50=%d p95=%d p99=%d", snap.P50, snap.P95, snap.P99)
			}
			if snap.P99 > snap.Max || snap.P50 < snap.Min {
				t.Fatalf("quantiles escape [min, max]: min=%d p50=%d p99=%d max=%d",
					snap.Min, snap.P50, snap.P99, snap.Max)
			}
		})
	}
}
