package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WritePrometheus renders a registry snapshot in the Prometheus text
// exposition format: counters and gauges as-is, histograms as summaries
// (quantile series plus _sum and _count). Metric names are sanitised to
// the Prometheus charset (dots become underscores), and families are
// emitted in sorted order so scrapes diff cleanly.
func WritePrometheus(w io.Writer, snap Snapshot) error {
	names := make([]string, 0, len(snap.Counters))
	for name := range snap.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		p := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", p, p, snap.Counters[name]); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range snap.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		p := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", p, p, snap.Gauges[name]); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range snap.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := snap.Histograms[name]
		p := promName(name)
		if _, err := fmt.Fprintf(w,
			"# TYPE %s summary\n%s{quantile=\"0.5\"} %d\n%s{quantile=\"0.95\"} %d\n%s{quantile=\"0.99\"} %d\n%s_sum %d\n%s_count %d\n",
			p, p, h.P50, p, h.P95, p, h.P99, p, h.Sum, p, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// promName maps a registry metric name onto the Prometheus charset
// [a-zA-Z0-9_:]; anything else becomes an underscore.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
