// Package obs is the runtime observability layer: a dependency-free
// metrics registry (atomic counters, gauges and fixed-bucket latency
// histograms with snapshot/reset semantics), a per-message span
// recorder tracking the send → enqueue → deliver → ack/expire
// lifecycle, and a small HTTP introspection server (/metricz JSON,
// /healthz, net/http/pprof).
//
// The paper's whole method is observing a black-box provider from the
// outside; this package makes the harness's own runtime components —
// broker, wire server, harness workers, daemons — observable from the
// inside while a run is in flight. Instruments are plain atomics so the
// hot paths pay one atomic add per event; the span recorder has a no-op
// implementation for when tracing is disabled.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds d (d must be >= 0 for the counter to stay monotonic; this is
// not enforced).
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// reset zeroes the counter (registry Reset only; counters are otherwise
// monotonic).
func (c *Counter) reset() { c.v.Store(0) }

// Gauge is an atomic instantaneous value that can go up and down. The
// zero value is ready to use.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds d (negative to decrease).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Registry is a named collection of instruments. Instruments are
// created on first use and shared thereafter: Counter("x") returns the
// same *Counter from every caller, so concurrent components can
// contribute to one metric. A Registry is safe for concurrent use; the
// instrument fast paths (Add/Inc/Observe) are lock-free.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
	}
}

// Counter returns the counter registered under name, creating it if
// needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it
// with the given bucket upper bounds if needed (nil bounds choose
// DurationBounds). Bounds are fixed at creation; later callers get the
// existing histogram regardless of the bounds they pass.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = NewHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of every instrument in a registry,
// shaped for JSON encoding (the /metricz payload).
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures every instrument. Values are read atomically per
// instrument; the snapshot as a whole is not a consistent cut across
// instruments (concurrent writers may land between reads), which is the
// usual contract for scrape-style metrics.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	counters := make([]struct {
		name string
		c    *Counter
	}, 0, len(r.counters))
	for name, c := range r.counters {
		counters = append(counters, struct {
			name string
			c    *Counter
		}{name, c})
	}
	gauges := make([]struct {
		name string
		g    *Gauge
	}, 0, len(r.gauges))
	for name, g := range r.gauges {
		gauges = append(gauges, struct {
			name string
			g    *Gauge
		}{name, g})
	}
	hists := make([]struct {
		name string
		h    *Histogram
	}, 0, len(r.histograms))
	for name, h := range r.histograms {
		hists = append(hists, struct {
			name string
			h    *Histogram
		}{name, h})
	}
	r.mu.Unlock()

	s := Snapshot{
		Counters:   make(map[string]int64, len(counters)),
		Gauges:     make(map[string]int64, len(gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(hists)),
	}
	for _, e := range counters {
		s.Counters[e.name] = e.c.Value()
	}
	for _, e := range gauges {
		s.Gauges[e.name] = e.g.Value()
	}
	for _, e := range hists {
		s.Histograms[e.name] = e.h.Snapshot()
	}
	return s
}

// Reset zeroes every instrument, preserving registrations (existing
// *Counter/*Gauge/*Histogram pointers stay valid). Concurrent writers
// may interleave with the reset; totals afterwards count only events
// that raced past it.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.reset()
	}
	for _, g := range r.gauges {
		g.Set(0)
	}
	for _, h := range r.histograms {
		h.Reset()
	}
}

// Names returns the sorted names of all registered instruments, for
// stable rendering.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.histograms))
	for name := range r.counters {
		names = append(names, name)
	}
	for name := range r.gauges {
		names = append(names, name)
	}
	for name := range r.histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
