package obs

import (
	"crypto/rand"
	"encoding/binary"
	"strconv"
	"sync/atomic"

	"jmsharness/internal/jms"
)

// Trace context rides on every message as two reserved application
// properties, so it survives anything the message itself survives: the
// wire codec, WAL persistence and crash recovery, and topic fan-out
// clones all round-trip properties verbatim. No wire or WAL format
// change was needed to make tracing distributed.
const (
	// TraceIDProperty carries the logical message's trace identifier,
	// minted once at the outermost producer layer.
	TraceIDProperty = "JMSXTraceID"
	// TraceHopProperty carries the hop counter: how many process or
	// node boundaries (wire server decode, cluster forward) the message
	// has crossed since the mint. Its presence — not its value — marks
	// the trace context as established: StampTrace will not re-mint a
	// message that carries the hop key, which is how a retry or an
	// inner producer layer reuses the outer layer's trace ID while a
	// caller reusing one message object across logical sends still
	// gets a fresh trace per send.
	TraceHopProperty = "JMSXTraceHop"
)

// traceSeq disambiguates trace IDs within a process; traceBase
// namespaces them across processes (seeded once, randomly).
var (
	traceSeq  atomic.Uint64
	traceBase = func() uint64 {
		var b [8]byte
		if _, err := rand.Read(b[:]); err != nil {
			return 0x9e3779b97f4a7c15 // fixed namespace; seq still disambiguates
		}
		return binary.LittleEndian.Uint64(b[:])
	}()
)

// traceBaseHex is the namespace prefix, rendered once: minting runs on
// the traced send hot path, so the per-call work is one AppendUint.
var traceBaseHex = func() string {
	b := make([]byte, 0, 17)
	for shift := 60; shift >= 0; shift -= 4 {
		b = append(b, "0123456789abcdef"[(traceBase>>uint(shift))&0xf])
	}
	return string(append(b, '-'))
}()

// MintTraceID returns a fresh process-unique trace identifier.
func MintTraceID() string {
	return string(strconv.AppendUint([]byte(traceBaseHex), traceSeq.Add(1), 16))
}

// MessageTraceID returns m's trace ID, or "" if untraced.
func MessageTraceID(m *jms.Message) string {
	return m.StringProperty(TraceIDProperty)
}

// MessageTraceHop returns m's hop counter (0 for a message that has
// not crossed a boundary, or carries no trace context at all).
func MessageTraceHop(m *jms.Message) int64 {
	return m.Int64Property(TraceHopProperty)
}

// StampTrace establishes m's trace context at a producer-send entry
// point and returns the trace ID. A message already carrying routed
// context (the hop property, set by a wire server or cluster front-end
// upstream) keeps its trace ID; anything else — including a message
// object reused across sends — is stamped with a fresh one, mirroring
// how JMS re-stamps the provider message ID on every send.
func StampTrace(m *jms.Message) string {
	if _, routed := m.Property(TraceHopProperty); routed {
		if id := m.StringProperty(TraceIDProperty); id != "" {
			return id
		}
	}
	id := MintTraceID()
	m.SetProperty(TraceIDProperty, jms.Str(id))
	return id
}

// AdvanceTraceHop marks one boundary crossing: it increments m's hop
// counter (establishing the trace context if the message had none) and
// returns the new hop number. Called by the wire server on decode and
// by the cluster front-end on each routed or forwarded copy.
func AdvanceTraceHop(m *jms.Message) int64 {
	if m.StringProperty(TraceIDProperty) == "" {
		m.SetProperty(TraceIDProperty, jms.Str(MintTraceID()))
	}
	hop := m.Int64Property(TraceHopProperty) + 1
	m.SetProperty(TraceHopProperty, jms.Int64(hop))
	return hop
}

// ClearTraceRouting removes the hop marker from m, returning it to
// "unrouted" state so the next producer-layer send re-mints. Cluster
// front-ends call this after routing the caller's own message object
// (whose stamps must reflect back to the caller) so reuse of that
// object starts a new trace.
func ClearTraceRouting(m *jms.Message) {
	delete(m.Properties, TraceHopProperty)
}
