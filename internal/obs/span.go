package obs

import (
	"sort"
	"sync"
	"time"
)

// Outcome is how a message span ended.
type Outcome uint8

// Span outcomes.
const (
	// OutcomeAcked: the delivery was finalised (acknowledged, committed,
	// or auto-acked).
	OutcomeAcked Outcome = iota + 1
	// OutcomeExpired: the message's time-to-live elapsed undelivered.
	OutcomeExpired
	// OutcomeDropped: the message was discarded for another reason
	// (subscription closed, temporary queue deleted, crash).
	OutcomeDropped
)

// String renders the outcome.
func (o Outcome) String() string {
	switch o {
	case OutcomeAcked:
		return "acked"
	case OutcomeExpired:
		return "expired"
	case OutcomeDropped:
		return "dropped"
	default:
		return "unknown"
	}
}

// Span kinds: what stage of a message's journey a span covers. One
// logical message yields one KindEnqueue span per (broker, endpoint)
// copy plus zero or more one-shot hop spans, all linked by TraceID.
const (
	// KindEnqueue is a broker-side lifecycle span: enqueue → deliver →
	// ack/expire/drop, with the WAL-commit wait folded in.
	KindEnqueue = "enqueue"
	// KindSendRPC is a wire client's send round trip (SentAt → EndedAt
	// is the wire RTT, including the server-side enqueue).
	KindSendRPC = "send_rpc"
	// KindServerRecv is the wire server's decode-and-enqueue of one
	// send request.
	KindServerRecv = "server_recv"
	// KindForward is a cluster front-end routing or forwarding one
	// message copy to a node.
	KindForward = "forward"
)

// OutcomeOK marks a completed one-shot hop span (no lifecycle).
const OutcomeOK = "ok"

// SpanStart carries everything known about a message copy at enqueue
// time; see SpanRecorder.Begin.
type SpanStart struct {
	MsgID    string
	Endpoint string
	// TraceID and Hop are the message's trace context (see
	// StampTrace); zero values mean the message was untraced.
	TraceID string
	Hop     int64
	// Node names the broker recording the span.
	Node string
	// SentAt is the provider send timestamp, EnqueuedAt the mailbox
	// arrival time.
	SentAt     time.Time
	EnqueuedAt time.Time
	// WALWait is how long the enqueue blocked on the stable store's
	// commit (zero for non-persistent messages or memory stores).
	WALWait time.Duration
}

// SpanRecorder receives the lifecycle transitions of each message copy
// routed through a broker — enqueue (Begin), deliver (Deliver), and
// ack/expire/drop (End), keyed by (message ID, endpoint) — plus
// completed one-shot hop spans (RecordHop) from the wire and cluster
// layers. A message published to a topic fans out into one span per
// matching subscription. Implementations must be safe for concurrent
// use.
type SpanRecorder interface {
	// Begin opens the lifecycle span for one enqueued message copy.
	Begin(st SpanStart)
	// Deliver stamps the span's delivery to a consumer. redelivered
	// marks a repeat delivery (recovered session, reconnect), which is
	// accounted separately from the first-delivery queue wait.
	Deliver(msgID, endpoint string, at time.Time, redelivered bool)
	// End closes the span with its outcome.
	End(msgID, endpoint string, at time.Time, o Outcome)
	// RecordHop records a completed one-shot hop span (a client send
	// RPC, a server decode, a cluster forward) that has no
	// deliver/ack lifecycle of its own.
	RecordHop(sp Span)
}

// nopRecorder is the disabled recorder: every method is an empty,
// inlinable no-op, so instrumented hot paths pay only a nil-free
// interface call when tracing is off.
type nopRecorder struct{}

func (nopRecorder) Begin(SpanStart)                         {}
func (nopRecorder) Deliver(string, string, time.Time, bool) {}
func (nopRecorder) End(string, string, time.Time, Outcome)  {}
func (nopRecorder) RecordHop(Span)                          {}

// NopSpans returns the shared no-op recorder.
func NopSpans() SpanRecorder { return nopRecorder{} }

// Span is one recorded span: either a message copy's broker-side
// lifecycle (KindEnqueue) or a completed one-shot hop.
type Span struct {
	TraceID string `json:"trace_id,omitempty"`
	Hop     int64  `json:"hop"`
	Kind    string `json:"kind"`
	Node    string `json:"node,omitempty"`

	MsgID    string `json:"msg_id"`
	Endpoint string `json:"endpoint"`
	// Timestamps carry Go's monotonic clock reading when recorded from
	// a live broker, so durations derived from them are immune to wall
	// clock steps. For one-shot hop spans SentAt is the hop's start and
	// EndedAt its completion.
	SentAt      time.Time `json:"sent_at"`
	EnqueuedAt  time.Time `json:"enqueued_at"`
	DeliveredAt time.Time `json:"delivered_at"`
	EndedAt     time.Time `json:"ended_at"`
	// WALWaitNs is the stable-store commit wait paid inside the
	// enqueue (KindEnqueue spans only).
	WALWaitNs int64 `json:"wal_wait_ns,omitempty"`
	// Redeliveries counts repeat deliveries of this copy.
	Redeliveries int    `json:"redeliveries,omitempty"`
	Outcome      string `json:"outcome"`
}

// QueueWait returns enqueue → delivery (or end, if never delivered).
// One-shot hop spans, which never enqueue, report 0.
func (s Span) QueueWait() time.Duration {
	if s.EnqueuedAt.IsZero() {
		return 0
	}
	if !s.DeliveredAt.IsZero() {
		return s.DeliveredAt.Sub(s.EnqueuedAt)
	}
	if !s.EndedAt.IsZero() {
		return s.EndedAt.Sub(s.EnqueuedAt)
	}
	return 0
}

// Settle returns delivery → end, or 0 if the span never settled.
func (s Span) Settle() time.Duration {
	if s.DeliveredAt.IsZero() || s.EndedAt.IsZero() {
		return 0
	}
	return s.EndedAt.Sub(s.DeliveredAt)
}

// Duration returns the span's total extent: SentAt (or EnqueuedAt) to
// EndedAt.
func (s Span) Duration() time.Duration {
	start := s.SentAt
	if start.IsZero() {
		start = s.EnqueuedAt
	}
	if start.IsZero() || s.EndedAt.IsZero() {
		return 0
	}
	return s.EndedAt.Sub(start)
}

// SpanSink receives completed spans from a Spans recorder. Emit must be
// safe for concurrent use and must not block for long: it runs on
// broker hot paths (under no recorder lock, but on the acking
// goroutine).
type SpanSink interface {
	Emit(sp Span)
}

// Spans is the live SpanRecorder: a bounded in-flight table feeding
// latency histograms in a Registry ("span.queue_wait_ns": enqueue →
// first delivery; "span.redelivery_wait_ns": enqueue → repeat
// delivery; "span.settle_ns": deliver → ack) and, on completion, every
// attached SpanSink. A RingSink of recent completed spans is always
// attached, backing Recent and the /spanz trace view. When the
// in-flight table is full, new spans are counted but not tracked
// ("span.overflow"), bounding memory under any load.
type Spans struct {
	queueWait  *Histogram
	redelivery *Histogram
	settle     *Histogram
	begun      *Counter
	ended      *Counter
	hops       *Counter
	overflow   *Counter
	inFlight   *Gauge

	mu    sync.Mutex
	live  map[spanKey]*Span
	limit int
	ring  *RingSink
	sinks []SpanSink
}

type spanKey struct {
	msgID    string
	endpoint string
}

// DefaultMaxInFlight bounds the in-flight span table.
const DefaultMaxInFlight = 16384

// DefaultKeep is how many completed spans the ring retains.
const DefaultKeep = 256

// NewSpans returns a live recorder registering its instruments in reg.
// maxInFlight bounds the in-flight table (<=0 chooses
// DefaultMaxInFlight); keep is the completed-span ring size (<=0
// chooses DefaultKeep). Additional sinks (a JSONLSink, say) attach with
// Tee before the recorder is shared.
func NewSpans(reg *Registry, maxInFlight, keep int) *Spans {
	if maxInFlight <= 0 {
		maxInFlight = DefaultMaxInFlight
	}
	if keep <= 0 {
		keep = DefaultKeep
	}
	ring := NewRingSink(keep)
	return &Spans{
		queueWait:  reg.Histogram("span.queue_wait_ns", nil),
		redelivery: reg.Histogram("span.redelivery_wait_ns", nil),
		settle:     reg.Histogram("span.settle_ns", nil),
		begun:      reg.Counter("span.begun"),
		ended:      reg.Counter("span.ended"),
		hops:       reg.Counter("span.hops"),
		overflow:   reg.Counter("span.overflow"),
		inFlight:   reg.Gauge("span.in_flight"),
		live:       make(map[spanKey]*Span, 64),
		limit:      maxInFlight,
		ring:       ring,
		sinks:      []SpanSink{ring},
	}
}

var _ SpanRecorder = (*Spans)(nil)

// Tee attaches an additional sink receiving every completed span.
// Attach sinks before the recorder is handed to a broker; Tee is not
// synchronised against concurrent recording.
func (s *Spans) Tee(sink SpanSink) { s.sinks = append(s.sinks, sink) }

// emit fans one completed span out to every sink. Callers must not
// hold s.mu (a sink may be arbitrarily slow).
func (s *Spans) emit(sp Span) {
	for _, sink := range s.sinks {
		sink.Emit(sp)
	}
}

// Begin implements SpanRecorder.
func (s *Spans) Begin(st SpanStart) {
	s.begun.Inc()
	k := spanKey{st.MsgID, st.Endpoint}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.live[k]; !exists && len(s.live) >= s.limit {
		s.overflow.Inc()
		return
	}
	s.live[k] = &Span{
		TraceID:    st.TraceID,
		Hop:        st.Hop,
		Kind:       KindEnqueue,
		Node:       st.Node,
		MsgID:      st.MsgID,
		Endpoint:   st.Endpoint,
		SentAt:     st.SentAt,
		EnqueuedAt: st.EnqueuedAt,
		WALWaitNs:  int64(st.WALWait),
	}
	s.inFlight.Set(int64(len(s.live)))
}

// Deliver implements SpanRecorder. The span tracks the latest delivery;
// a redelivery is observed under span.redelivery_wait_ns so the
// first-delivery queue-wait histogram is never double-counted.
func (s *Spans) Deliver(msgID, endpoint string, at time.Time, redelivered bool) {
	k := spanKey{msgID, endpoint}
	s.mu.Lock()
	sp, ok := s.live[k]
	var wait time.Duration
	if ok {
		sp.DeliveredAt = at
		if redelivered {
			sp.Redeliveries++
		}
		wait = at.Sub(sp.EnqueuedAt)
	}
	s.mu.Unlock()
	if !ok {
		return
	}
	if redelivered {
		s.redelivery.ObserveDuration(wait)
	} else {
		s.queueWait.ObserveDuration(wait)
	}
}

// End implements SpanRecorder.
func (s *Spans) End(msgID, endpoint string, at time.Time, o Outcome) {
	s.ended.Inc()
	k := spanKey{msgID, endpoint}
	s.mu.Lock()
	sp, ok := s.live[k]
	if !ok {
		s.mu.Unlock()
		return
	}
	delete(s.live, k)
	sp.EndedAt = at
	sp.Outcome = o.String()
	s.inFlight.Set(int64(len(s.live)))
	done := *sp
	s.mu.Unlock()
	if o == OutcomeAcked && !done.DeliveredAt.IsZero() {
		s.settle.ObserveDuration(at.Sub(done.DeliveredAt))
	}
	s.emit(done)
}

// RecordHop implements SpanRecorder.
func (s *Spans) RecordHop(sp Span) {
	s.hops.Inc()
	if sp.Outcome == "" {
		sp.Outcome = OutcomeOK
	}
	s.emit(sp)
}

// InFlight returns the number of open spans.
func (s *Spans) InFlight() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.live)
}

// Recent returns the completed spans still in the ring, newest first.
func (s *Spans) Recent() []Span { return s.ring.Recent() }

// SpanzSnapshot is the /spanz payload.
type SpanzSnapshot struct {
	InFlight int `json:"in_flight"`
	// Recent are the completed spans still in the ring, newest first.
	Recent []Span `json:"recent"`
	// Traces groups the ring's spans into recent multi-hop traces
	// (two or more causally linked spans), per-hop durations included.
	Traces []TraceView `json:"traces,omitempty"`
}

// TraceView is one multi-hop trace assembled from recent spans.
type TraceView struct {
	TraceID string    `json:"trace_id"`
	Hops    []HopView `json:"hops"`
}

// HopView is one span of a trace, reduced to its per-hop durations.
type HopView struct {
	Hop          int64  `json:"hop"`
	Kind         string `json:"kind"`
	Node         string `json:"node,omitempty"`
	Endpoint     string `json:"endpoint"`
	MsgID        string `json:"msg_id"`
	DurationNs   int64  `json:"duration_ns"`
	QueueWaitNs  int64  `json:"queue_wait_ns,omitempty"`
	WALWaitNs    int64  `json:"wal_wait_ns,omitempty"`
	SettleNs     int64  `json:"settle_ns,omitempty"`
	Redeliveries int    `json:"redeliveries,omitempty"`
	Outcome      string `json:"outcome"`
}

// maxSnapshotTraces bounds the /spanz trace view.
const maxSnapshotTraces = 32

// AssembleTraces groups spans by trace ID and returns the multi-hop
// traces (>= 2 spans), hops ordered causally (hop counter, then start
// time), newest trace first, at most limit traces (<=0: no limit).
func AssembleTraces(spans []Span, limit int) []TraceView {
	byID := make(map[string][]Span)
	var order []string // first-seen order; spans arrive newest first
	for _, sp := range spans {
		if sp.TraceID == "" {
			continue
		}
		if _, seen := byID[sp.TraceID]; !seen {
			order = append(order, sp.TraceID)
		}
		byID[sp.TraceID] = append(byID[sp.TraceID], sp)
	}
	var out []TraceView
	for _, id := range order {
		group := byID[id]
		if len(group) < 2 {
			continue
		}
		sort.Slice(group, func(i, j int) bool {
			if group[i].Hop != group[j].Hop {
				return group[i].Hop < group[j].Hop
			}
			return group[i].SentAt.Before(group[j].SentAt)
		})
		tv := TraceView{TraceID: id, Hops: make([]HopView, 0, len(group))}
		for _, sp := range group {
			tv.Hops = append(tv.Hops, HopView{
				Hop:          sp.Hop,
				Kind:         sp.Kind,
				Node:         sp.Node,
				Endpoint:     sp.Endpoint,
				MsgID:        sp.MsgID,
				DurationNs:   int64(sp.Duration()),
				QueueWaitNs:  int64(sp.QueueWait()),
				WALWaitNs:    sp.WALWaitNs,
				SettleNs:     int64(sp.Settle()),
				Redeliveries: sp.Redeliveries,
				Outcome:      sp.Outcome,
			})
		}
		out = append(out, tv)
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out
}

// Snapshot returns the recorder's introspection payload.
func (s *Spans) Snapshot() SpanzSnapshot {
	recent := s.Recent()
	return SpanzSnapshot{
		InFlight: s.InFlight(),
		Recent:   recent,
		Traces:   AssembleTraces(recent, maxSnapshotTraces),
	}
}
