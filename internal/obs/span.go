package obs

import (
	"sync"
	"time"
)

// Outcome is how a message span ended.
type Outcome uint8

// Span outcomes.
const (
	// OutcomeAcked: the delivery was finalised (acknowledged, committed,
	// or auto-acked).
	OutcomeAcked Outcome = iota + 1
	// OutcomeExpired: the message's time-to-live elapsed undelivered.
	OutcomeExpired
	// OutcomeDropped: the message was discarded for another reason
	// (subscription closed, temporary queue deleted, crash).
	OutcomeDropped
)

// String renders the outcome.
func (o Outcome) String() string {
	switch o {
	case OutcomeAcked:
		return "acked"
	case OutcomeExpired:
		return "expired"
	case OutcomeDropped:
		return "dropped"
	default:
		return "unknown"
	}
}

// SpanRecorder receives the lifecycle transitions of each message copy
// routed through a broker: send → enqueue (Begin), deliver (Deliver),
// and ack/expire/drop (End). A message published to a topic fans out
// into one span per matching subscription, keyed by (message ID,
// endpoint). Implementations must be safe for concurrent use.
type SpanRecorder interface {
	// Begin opens the span for one enqueued message copy. sentAt is the
	// provider send timestamp, enqueuedAt the mailbox arrival time.
	Begin(msgID, endpoint string, sentAt, enqueuedAt time.Time)
	// Deliver stamps the span's delivery to a consumer. Redelivery
	// restamps (the span tracks the latest delivery).
	Deliver(msgID, endpoint string, at time.Time)
	// End closes the span with its outcome.
	End(msgID, endpoint string, at time.Time, o Outcome)
}

// nopRecorder is the disabled recorder: every method is an empty,
// inlinable no-op, so instrumented hot paths pay only a nil-free
// interface call when tracing is off.
type nopRecorder struct{}

func (nopRecorder) Begin(string, string, time.Time, time.Time) {}
func (nopRecorder) Deliver(string, string, time.Time)          {}
func (nopRecorder) End(string, string, time.Time, Outcome)     {}

// NopSpans returns the shared no-op recorder.
func NopSpans() SpanRecorder { return nopRecorder{} }

// Span is one message copy's recorded lifecycle.
type Span struct {
	MsgID    string `json:"msg_id"`
	Endpoint string `json:"endpoint"`
	// Timestamps carry Go's monotonic clock reading when recorded from
	// a live broker, so durations derived from them are immune to wall
	// clock steps.
	SentAt      time.Time `json:"sent_at"`
	EnqueuedAt  time.Time `json:"enqueued_at"`
	DeliveredAt time.Time `json:"delivered_at"`
	EndedAt     time.Time `json:"ended_at"`
	Outcome     string    `json:"outcome"`
}

// QueueWait returns enqueue → delivery (or end, if never delivered).
func (s Span) QueueWait() time.Duration {
	if !s.DeliveredAt.IsZero() {
		return s.DeliveredAt.Sub(s.EnqueuedAt)
	}
	if !s.EndedAt.IsZero() {
		return s.EndedAt.Sub(s.EnqueuedAt)
	}
	return 0
}

// Spans is the live SpanRecorder: a bounded in-flight table plus a ring
// of recently completed spans, feeding two latency histograms in a
// Registry ("span.queue_wait_ns": enqueue → deliver; "span.settle_ns":
// deliver → ack). When the in-flight table is full, new spans are
// counted but not tracked ("span.overflow"), bounding memory under any
// load.
type Spans struct {
	queueWait *Histogram
	settle    *Histogram
	begun     *Counter
	ended     *Counter
	overflow  *Counter
	inFlight  *Gauge

	mu    sync.Mutex
	live  map[spanKey]*Span
	limit int
	ring  []Span
	next  int
	total int
}

type spanKey struct {
	msgID    string
	endpoint string
}

// DefaultMaxInFlight bounds the in-flight span table.
const DefaultMaxInFlight = 16384

// DefaultKeep is how many completed spans the ring retains.
const DefaultKeep = 256

// NewSpans returns a live recorder registering its instruments in reg.
// maxInFlight bounds the in-flight table (<=0 chooses
// DefaultMaxInFlight); keep is the completed-span ring size (<=0
// chooses DefaultKeep).
func NewSpans(reg *Registry, maxInFlight, keep int) *Spans {
	if maxInFlight <= 0 {
		maxInFlight = DefaultMaxInFlight
	}
	if keep <= 0 {
		keep = DefaultKeep
	}
	return &Spans{
		queueWait: reg.Histogram("span.queue_wait_ns", nil),
		settle:    reg.Histogram("span.settle_ns", nil),
		begun:     reg.Counter("span.begun"),
		ended:     reg.Counter("span.ended"),
		overflow:  reg.Counter("span.overflow"),
		inFlight:  reg.Gauge("span.in_flight"),
		live:      make(map[spanKey]*Span, 64),
		limit:     maxInFlight,
		ring:      make([]Span, keep),
	}
}

var _ SpanRecorder = (*Spans)(nil)

// Begin implements SpanRecorder.
func (s *Spans) Begin(msgID, endpoint string, sentAt, enqueuedAt time.Time) {
	s.begun.Inc()
	k := spanKey{msgID, endpoint}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.live[k]; !exists && len(s.live) >= s.limit {
		s.overflow.Inc()
		return
	}
	s.live[k] = &Span{MsgID: msgID, Endpoint: endpoint, SentAt: sentAt, EnqueuedAt: enqueuedAt}
	s.inFlight.Set(int64(len(s.live)))
}

// Deliver implements SpanRecorder.
func (s *Spans) Deliver(msgID, endpoint string, at time.Time) {
	k := spanKey{msgID, endpoint}
	s.mu.Lock()
	sp, ok := s.live[k]
	var wait time.Duration
	if ok {
		sp.DeliveredAt = at
		wait = at.Sub(sp.EnqueuedAt)
	}
	s.mu.Unlock()
	if ok {
		s.queueWait.ObserveDuration(wait)
	}
}

// End implements SpanRecorder.
func (s *Spans) End(msgID, endpoint string, at time.Time, o Outcome) {
	s.ended.Inc()
	k := spanKey{msgID, endpoint}
	s.mu.Lock()
	sp, ok := s.live[k]
	if !ok {
		s.mu.Unlock()
		return
	}
	delete(s.live, k)
	sp.EndedAt = at
	sp.Outcome = o.String()
	s.ring[s.next] = *sp
	s.next = (s.next + 1) % len(s.ring)
	s.total++
	s.inFlight.Set(int64(len(s.live)))
	delivered := sp.DeliveredAt
	s.mu.Unlock()
	if o == OutcomeAcked && !delivered.IsZero() {
		s.settle.ObserveDuration(at.Sub(delivered))
	}
}

// InFlight returns the number of open spans.
func (s *Spans) InFlight() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.live)
}

// Recent returns the completed spans still in the ring, newest first.
func (s *Spans) Recent() []Span {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.total
	if n > len(s.ring) {
		n = len(s.ring)
	}
	out := make([]Span, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, s.ring[(s.next-i+len(s.ring))%len(s.ring)])
	}
	return out
}

// SpanzSnapshot is the /spanz payload.
type SpanzSnapshot struct {
	InFlight int    `json:"in_flight"`
	Recent   []Span `json:"recent"`
}

// Snapshot returns the recorder's introspection payload.
func (s *Spans) Snapshot() SpanzSnapshot {
	return SpanzSnapshot{InFlight: s.InFlight(), Recent: s.Recent()}
}
