package obs

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func TestJSONLSinkRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spans.jsonl")
	reg := NewRegistry()
	sink, err := NewJSONLSink(path, 1.0, reg)
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Unix(100, 0).UTC()
	want := Span{
		TraceID: "t-1", Hop: 2, Kind: KindEnqueue, Node: "b0",
		MsgID: "m-1", Endpoint: "queue:orders",
		SentAt: t0, EnqueuedAt: t0.Add(time.Millisecond),
		DeliveredAt: t0.Add(2 * time.Millisecond), EndedAt: t0.Add(3 * time.Millisecond),
		WALWaitNs: 12345, Outcome: OutcomeAcked.String(),
	}
	sink.Emit(want)
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	spans, err := ReadSpanFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 1 {
		t.Fatalf("read %d spans, want 1", len(spans))
	}
	if spans[0] != want {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", spans[0], want)
	}
	if got := reg.Counter("trace.sink_written").Value(); got != 1 {
		t.Errorf("sink_written = %d, want 1", got)
	}
}

func TestJSONLSinkConcurrent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spans.jsonl")
	sink, err := NewJSONLSink(path, 1.0, nil)
	if err != nil {
		t.Fatal(err)
	}
	const (
		goroutines = 8
		perG       = 500
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				sink.Emit(Span{
					TraceID: fmt.Sprintf("t-%d-%d", g, i),
					MsgID:   fmt.Sprintf("m-%d-%d", g, i),
					Kind:    KindEnqueue, Endpoint: "queue:x", Outcome: OutcomeAcked.String(),
				})
			}
		}(g)
	}
	wg.Wait()
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	spans, err := ReadSpanFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != goroutines*perG {
		t.Errorf("read %d spans, want %d", len(spans), goroutines*perG)
	}
	if sink.Dropped() != 0 {
		t.Errorf("dropped = %d, want 0", sink.Dropped())
	}
}

func TestJSONLSinkSamplingIsTraceCoherent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spans.jsonl")
	reg := NewRegistry()
	sink, err := NewJSONLSink(path, 0.25, reg)
	if err != nil {
		t.Fatal(err)
	}
	// Each trace emits three hops; sampling must keep or drop all
	// three together, never export a partial trace.
	const traces = 400
	for i := 0; i < traces; i++ {
		tid := fmt.Sprintf("trace-%d", i)
		for hop := int64(0); hop < 3; hop++ {
			sink.Emit(Span{TraceID: tid, Hop: hop, Kind: KindForward, MsgID: fmt.Sprintf("m-%d", i)})
		}
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	spans, err := ReadSpanFile(path)
	if err != nil {
		t.Fatal(err)
	}
	hops := map[string]int{}
	for _, sp := range spans {
		hops[sp.TraceID]++
	}
	if len(hops) == 0 || len(hops) == traces {
		t.Fatalf("sampled %d of %d traces; rate 0.25 should keep a strict subset", len(hops), traces)
	}
	for tid, n := range hops {
		if n != 3 {
			t.Errorf("trace %s exported %d of its 3 hops: sampling is not trace-coherent", tid, n)
		}
	}
	kept := int64(len(spans))
	out := reg.Counter("trace.sink_sampled_out").Value()
	if kept+out != traces*3 {
		t.Errorf("written %d + sampled_out %d != emitted %d", kept, out, traces*3)
	}
}

func TestJSONLSinkEmitAfterCloseCountsDropped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spans.jsonl")
	sink, err := NewJSONLSink(path, 1.0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	sink.Emit(Span{TraceID: "t", MsgID: "m"})
	if got := sink.Dropped(); got != 1 {
		t.Errorf("dropped = %d, want 1", got)
	}
}

func TestReadSpanFileRejectsMalformedLines(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.jsonl")
	data := `{"trace_id":"t1","msg_id":"m1","kind":"enqueue","endpoint":"queue:x","sent_at":"2026-01-01T00:00:00Z","enqueued_at":"2026-01-01T00:00:00Z","delivered_at":"0001-01-01T00:00:00Z","ended_at":"2026-01-01T00:00:01Z","outcome":"acked","hop":0}
this is not json
`
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSpanFile(path); err == nil {
		t.Fatal("malformed line parsed without error")
	}
}

func TestRingSinkKeepsNewest(t *testing.T) {
	r := NewRingSink(2)
	for i := 0; i < 3; i++ {
		r.Emit(Span{MsgID: fmt.Sprintf("m%d", i)})
	}
	recent := r.Recent()
	if len(recent) != 2 || recent[0].MsgID != "m2" || recent[1].MsgID != "m1" {
		t.Errorf("recent = %+v, want m2,m1", recent)
	}
}
