package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"sync"
)

// RingSink keeps the last keep completed spans in memory: the bounded,
// allocation-free sink backing /spanz. It is safe for concurrent use.
type RingSink struct {
	mu    sync.Mutex
	ring  []Span
	next  int
	total int
}

// NewRingSink returns a ring retaining the last keep spans (<=0
// chooses DefaultKeep).
func NewRingSink(keep int) *RingSink {
	if keep <= 0 {
		keep = DefaultKeep
	}
	return &RingSink{ring: make([]Span, keep)}
}

var _ SpanSink = (*RingSink)(nil)

// Emit implements SpanSink.
func (r *RingSink) Emit(sp Span) {
	r.mu.Lock()
	r.ring[r.next] = sp
	r.next = (r.next + 1) % len(r.ring)
	r.total++
	r.mu.Unlock()
}

// Recent returns the spans still in the ring, newest first.
func (r *RingSink) Recent() []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.total
	if n > len(r.ring) {
		n = len(r.ring)
	}
	out := make([]Span, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, r.ring[(r.next-i+len(r.ring))%len(r.ring)])
	}
	return out
}

// JSONLSink writes completed spans to a file as JSON lines — the
// durable export feeding offline per-hop analysis (jmsanalyze -spans,
// the jmsbench per-hop breakdown). Writes go through a buffered writer;
// Close flushes. It is safe for concurrent use.
//
// Sampling is head-based and trace-coherent: the keep/drop decision
// hashes the trace ID, so either every span of a trace is exported or
// none are — a sampled trace is never missing hops. Spans dropped by
// sampling count under "trace.sink_sampled_out"; spans lost to write
// errors (or emitted after Close) count under "trace.sink_dropped",
// and the first write error sticks, turning subsequent emits into
// counted drops rather than repeated failures.
type JSONLSink struct {
	sampleBar uint64 // keep iff hash(traceID) <= sampleBar

	written *Counter
	sampled *Counter
	dropped *Counter

	mu     sync.Mutex
	f      *os.File
	w      *bufio.Writer
	enc    *json.Encoder
	err    error
	closed bool
}

var _ SpanSink = (*JSONLSink)(nil)

// NewJSONLSink opens (truncating) path and returns a sink exporting
// spans to it. sample in (0,1] is the head-based sampling rate (values
// outside the range mean 1.0: export everything). Instruments register
// in reg ("trace.sink_written", "trace.sink_sampled_out",
// "trace.sink_dropped"); a nil reg keeps them private.
func NewJSONLSink(path string, sample float64, reg *Registry) (*JSONLSink, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: opening span export %s: %w", path, err)
	}
	if reg == nil {
		reg = NewRegistry()
	}
	bar := uint64(math.MaxUint64)
	if sample > 0 && sample < 1 {
		bar = uint64(sample * float64(math.MaxUint64))
	}
	s := &JSONLSink{
		sampleBar: bar,
		written:   reg.Counter("trace.sink_written"),
		sampled:   reg.Counter("trace.sink_sampled_out"),
		dropped:   reg.Counter("trace.sink_dropped"),
		f:         f,
		w:         bufio.NewWriterSize(f, 64<<10),
	}
	s.enc = json.NewEncoder(s.w)
	return s, nil
}

// keep decides the head-based sampling for one span. Untraced spans
// hash their message ID so they sample at the same rate.
func (s *JSONLSink) keep(sp Span) bool {
	if s.sampleBar == math.MaxUint64 {
		return true
	}
	key := sp.TraceID
	if key == "" {
		key = sp.MsgID
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	return h.Sum64() <= s.sampleBar
}

// Emit implements SpanSink.
func (s *JSONLSink) Emit(sp Span) {
	if !s.keep(sp) {
		s.sampled.Inc()
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil || s.closed {
		s.dropped.Inc()
		return
	}
	if err := s.enc.Encode(sp); err != nil {
		s.err = err
		s.dropped.Inc()
		return
	}
	s.written.Inc()
}

// Close flushes and closes the export file, returning the first write
// error encountered over the sink's lifetime.
func (s *JSONLSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return s.err
	}
	s.closed = true
	if err := s.w.Flush(); err != nil && s.err == nil {
		s.err = err
	}
	if err := s.f.Close(); err != nil && s.err == nil {
		s.err = err
	}
	return s.err
}

// Dropped returns how many spans were lost to write errors or
// post-close emits (not sampling).
func (s *JSONLSink) Dropped() int64 { return s.dropped.Value() }

// ReadSpanFile parses a JSONL span export written by a JSONLSink. Every
// line must parse as a span; a malformed line is an error, not a skip,
// so export corruption cannot silently thin an analysis.
func ReadSpanFile(path string) ([]Span, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("obs: opening span file %s: %w", path, err)
	}
	defer f.Close()
	var spans []Span
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var sp Span
		if err := json.Unmarshal(sc.Bytes(), &sp); err != nil {
			return nil, fmt.Errorf("obs: %s line %d: %w", path, line, err)
		}
		spans = append(spans, sp)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: reading %s: %w", path, err)
	}
	return spans, nil
}
