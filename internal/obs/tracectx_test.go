package obs

import (
	"testing"

	"jmsharness/internal/jms"
)

func TestMintTraceIDUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		id := MintTraceID()
		if seen[id] {
			t.Fatalf("duplicate trace ID %s", id)
		}
		seen[id] = true
	}
}

func TestStampTraceMintsFreshPerSend(t *testing.T) {
	// A message object reused across sends (the bench workers do this)
	// must get a distinct trace per logical send.
	m := jms.NewTextMessage("x")
	first := StampTrace(m)
	if first == "" || MessageTraceID(m) != first {
		t.Fatalf("stamp did not set the trace property: %q", first)
	}
	second := StampTrace(m)
	if second == first {
		t.Error("re-stamping an unrouted message reused the trace ID")
	}
}

func TestStampTraceKeepsRoutedContext(t *testing.T) {
	// Once a boundary advanced the hop counter, downstream producer
	// layers must reuse — not re-mint — the trace ID.
	m := jms.NewTextMessage("x")
	id := StampTrace(m)
	if hop := AdvanceTraceHop(m); hop != 1 {
		t.Fatalf("first hop = %d, want 1", hop)
	}
	if kept := StampTrace(m); kept != id {
		t.Errorf("stamp after routing re-minted: %s != %s", kept, id)
	}
	if hop := AdvanceTraceHop(m); hop != 2 {
		t.Errorf("second hop = %d, want 2", hop)
	}
}

func TestAdvanceTraceHopEstablishesContext(t *testing.T) {
	// A message arriving at a boundary without context (an untraced
	// producer) still gets a trace, so its downstream hops link up.
	m := jms.NewTextMessage("x")
	if hop := AdvanceTraceHop(m); hop != 1 {
		t.Fatalf("hop = %d, want 1", hop)
	}
	if MessageTraceID(m) == "" {
		t.Error("advance did not establish a trace ID")
	}
}

func TestClearTraceRoutingRestartsTraces(t *testing.T) {
	m := jms.NewTextMessage("x")
	id := StampTrace(m)
	AdvanceTraceHop(m)
	ClearTraceRouting(m)
	if hop := MessageTraceHop(m); hop != 0 {
		t.Errorf("hop after clear = %d, want 0", hop)
	}
	if next := StampTrace(m); next == id {
		t.Error("stamp after clear reused the routed trace ID")
	}
}

func TestTraceContextSurvivesClone(t *testing.T) {
	m := jms.NewTextMessage("x")
	id := StampTrace(m)
	AdvanceTraceHop(m)
	c := m.Clone()
	if MessageTraceID(c) != id || MessageTraceHop(c) != 1 {
		t.Errorf("clone lost trace context: id=%q hop=%d", MessageTraceID(c), MessageTraceHop(c))
	}
	// Advancing the clone must not touch the original (fan-out copies
	// advance independently).
	AdvanceTraceHop(c)
	if MessageTraceHop(m) != 1 {
		t.Errorf("advancing a clone mutated the original (hop=%d)", MessageTraceHop(m))
	}
}
