package obs

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-bucket histogram safe under concurrent writers.
// Buckets are defined by ascending upper bounds; an implicit overflow
// bucket catches values above the last bound. Observe is lock-free: one
// binary search plus a handful of atomic adds, suitable for hot paths.
//
// Bounds are int64s in whatever unit the caller observes; the broker
// and span recorder use nanoseconds.
type Histogram struct {
	bounds []int64 // ascending upper bounds (inclusive)
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64
	min    atomic.Int64
	max    atomic.Int64
}

// DurationBounds returns the default latency bucket bounds: powers of
// two from 1µs to ~68s, in nanoseconds.
func DurationBounds() []int64 {
	out := make([]int64, 0, 27)
	for ns := int64(1000); ns <= int64(68*time.Second); ns *= 2 {
		out = append(out, ns)
	}
	return out
}

// NewHistogram returns a histogram with the given ascending upper
// bounds (nil chooses DurationBounds). Bounds are copied and sorted
// defensively.
func NewHistogram(bounds []int64) *Histogram {
	if len(bounds) == 0 {
		bounds = DurationBounds()
	} else {
		bounds = append([]int64(nil), bounds...)
		sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })
	}
	h := &Histogram{
		bounds: bounds,
		counts: make([]atomic.Int64, len(bounds)+1),
	}
	h.min.Store(math.MaxInt64)
	h.max.Store(math.MinInt64)
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	i := sort.Search(len(h.bounds), func(i int) bool { return h.bounds[i] >= v })
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// ObserveDuration records one duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// Reset zeroes the histogram. Concurrent observers may interleave, as
// for Registry.Reset.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
	h.min.Store(math.MaxInt64)
	h.max.Store(math.MinInt64)
}

// Bucket is one histogram bucket in a snapshot.
type Bucket struct {
	// UpperBound is the bucket's inclusive upper bound; the overflow
	// bucket reports math.MaxInt64.
	UpperBound int64 `json:"le"`
	// Count is the number of observations in this bucket.
	Count int64 `json:"n"`
}

// HistogramSnapshot is a point-in-time copy of a histogram. Quantiles
// are estimated by linear interpolation within the containing bucket.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Sum   int64   `json:"sum"`
	Min   int64   `json:"min"`
	Max   int64   `json:"max"`
	Mean  float64 `json:"mean"`
	P50   int64   `json:"p50"`
	P95   int64   `json:"p95"`
	P99   int64   `json:"p99"`
	// Buckets lists only non-empty buckets to keep payloads small.
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot captures the histogram. As with Registry.Snapshot, the copy
// is per-field atomic but not a consistent cut under concurrent writes.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
	}
	if s.Count == 0 {
		return s
	}
	s.Min = h.min.Load()
	s.Max = h.max.Load()
	s.Mean = float64(s.Sum) / float64(s.Count)
	counts := make([]int64, len(h.counts))
	var total int64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
		if counts[i] > 0 {
			ub := int64(math.MaxInt64)
			if i < len(h.bounds) {
				ub = h.bounds[i]
			}
			s.Buckets = append(s.Buckets, Bucket{UpperBound: ub, Count: counts[i]})
		}
	}
	s.P50 = h.quantile(counts, total, 0.50)
	s.P95 = h.quantile(counts, total, 0.95)
	s.P99 = h.quantile(counts, total, 0.99)
	return s
}

// quantile estimates the q-quantile from a counts copy by walking the
// cumulative distribution and interpolating linearly inside the
// containing bucket. The overflow bucket reports the observed max.
func (h *Histogram) quantile(counts []int64, total int64, q float64) int64 {
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum int64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		prev := cum
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i >= len(h.bounds) {
			return h.max.Load()
		}
		lo := int64(0)
		if i > 0 {
			lo = h.bounds[i-1]
		}
		hi := h.bounds[i]
		frac := (rank - float64(prev)) / float64(c)
		v := lo + int64(frac*float64(hi-lo))
		// Interpolation assumes the bucket is filled to its bounds; the
		// true quantile can never escape the observed extremes, so clamp
		// (a partially filled edge bucket otherwise overshoots the max).
		if mx := h.max.Load(); v > mx {
			v = mx
		}
		if mn := h.min.Load(); v < mn {
			v = mn
		}
		return v
	}
	return h.max.Load()
}
