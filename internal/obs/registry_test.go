package obs

import (
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	g := r.Gauge("depth")
	g.Set(10)
	g.Inc()
	g.Dec()
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Errorf("gauge = %d, want 7", got)
	}
	// Get-or-create returns the same instrument.
	if r.Counter("ops") != c {
		t.Error("Counter(name) did not return the existing counter")
	}
	if r.Gauge("depth") != g {
		t.Error("Gauge(name) did not return the existing gauge")
	}
}

func TestRegistryConcurrent(t *testing.T) {
	const (
		goroutines = 16
		perG       = 2000
	)
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Get-or-create races with other writers on purpose.
			c := r.Counter("shared.counter")
			g := r.Gauge("shared.gauge")
			h := r.Histogram("shared.hist", nil)
			for j := 0; j < perG; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(int64(j))
			}
		}()
	}
	// Concurrent readers while writers run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			_ = r.Snapshot()
		}
	}()
	wg.Wait()

	snap := r.Snapshot()
	want := int64(goroutines * perG)
	if got := snap.Counters["shared.counter"]; got != want {
		t.Errorf("counter = %d, want %d", got, want)
	}
	if got := snap.Gauges["shared.gauge"]; got != want {
		t.Errorf("gauge = %d, want %d", got, want)
	}
	if got := snap.Histograms["shared.hist"].Count; got != want {
		t.Errorf("histogram count = %d, want %d", got, want)
	}
}

func TestRegistryReset(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n")
	c.Add(9)
	h := r.Histogram("lat", nil)
	h.Observe(123)
	r.Reset()
	if c.Value() != 0 {
		t.Errorf("counter after reset = %d", c.Value())
	}
	if got := h.Snapshot().Count; got != 0 {
		t.Errorf("histogram count after reset = %d", got)
	}
}

func TestHistogramSnapshot(t *testing.T) {
	h := NewHistogram([]int64{10, 100, 1000})
	for _, v := range []int64{1, 5, 50, 500, 5000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 {
		t.Errorf("count = %d, want 5", s.Count)
	}
	if s.Sum != 5556 {
		t.Errorf("sum = %d, want 5556", s.Sum)
	}
	if s.Min != 1 || s.Max != 5000 {
		t.Errorf("min/max = %d/%d, want 1/5000", s.Min, s.Max)
	}
	if s.Mean < 1111 || s.Mean > 1112 {
		t.Errorf("mean = %g, want ~1111.2", s.Mean)
	}
	// Non-empty buckets only: le=10 {1,5}, le=100 {50}, le=1000 {500},
	// overflow {5000}.
	if len(s.Buckets) != 4 {
		t.Fatalf("buckets = %d, want 4", len(s.Buckets))
	}
	var n int64
	for _, b := range s.Buckets {
		n += b.Count
	}
	if n != s.Count {
		t.Errorf("bucket counts sum to %d, want %d", n, s.Count)
	}
	// P50 of {1,5,50,500,5000} lands in the <=100 bucket; quantiles are
	// interpolated, so just check ordering and range.
	if s.P50 <= 0 || s.P50 > s.P95 || s.P95 > s.P99 {
		t.Errorf("quantiles out of order: p50=%d p95=%d p99=%d", s.P50, s.P95, s.P99)
	}
	if s.P99 > s.Max {
		t.Errorf("p99=%d exceeds max=%d", s.P99, s.Max)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(nil)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for j := int64(0); j < 5000; j++ {
				h.Observe(seed*1000 + j)
			}
		}(int64(i))
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != 40000 {
		t.Errorf("count = %d, want 40000", s.Count)
	}
	if s.Min != 0 {
		t.Errorf("min = %d, want 0", s.Min)
	}
	if s.Max != 7*1000+4999 {
		t.Errorf("max = %d, want %d", s.Max, 7*1000+4999)
	}
}

func TestSpansLifecycle(t *testing.T) {
	r := NewRegistry()
	s := NewSpans(r, 4, 8)
	t0 := time.Unix(100, 0)
	s.Begin(SpanStart{MsgID: "m1", Endpoint: "q:orders", TraceID: "t1", Hop: 2, Node: "b0", SentAt: t0, EnqueuedAt: t0.Add(time.Millisecond), WALWait: 200 * time.Microsecond})
	if got := s.InFlight(); got != 1 {
		t.Errorf("in flight = %d, want 1", got)
	}
	s.Deliver("m1", "q:orders", t0.Add(3*time.Millisecond), false)
	s.End("m1", "q:orders", t0.Add(5*time.Millisecond), OutcomeAcked)
	if got := s.InFlight(); got != 0 {
		t.Errorf("in flight after end = %d, want 0", got)
	}
	recent := s.Recent()
	if len(recent) != 1 {
		t.Fatalf("recent = %d spans, want 1", len(recent))
	}
	sp := recent[0]
	if sp.MsgID != "m1" || sp.Endpoint != "q:orders" || sp.Outcome != "acked" {
		t.Errorf("unexpected span %+v", sp)
	}
	if sp.TraceID != "t1" || sp.Hop != 2 || sp.Node != "b0" || sp.Kind != KindEnqueue {
		t.Errorf("trace context not carried: %+v", sp)
	}
	if sp.WALWaitNs != int64(200*time.Microsecond) {
		t.Errorf("wal wait = %d, want %d", sp.WALWaitNs, int64(200*time.Microsecond))
	}
	if got := sp.QueueWait(); got != 2*time.Millisecond {
		t.Errorf("queue wait = %v, want 2ms", got)
	}
	if got := r.Counter("span.ended").Value(); got != 1 {
		t.Errorf("span.ended = %d, want 1", got)
	}
	hs := r.Histogram("span.queue_wait_ns", nil).Snapshot()
	if hs.Count != 1 || hs.Min != int64(2*time.Millisecond) {
		t.Errorf("queue_wait histogram = %+v", hs)
	}
}

func TestSpansOverflowAndRing(t *testing.T) {
	r := NewRegistry()
	s := NewSpans(r, 2, 2)
	t0 := time.Unix(0, 0)
	s.Begin(SpanStart{MsgID: "a", Endpoint: "q:x", SentAt: t0, EnqueuedAt: t0})
	s.Begin(SpanStart{MsgID: "b", Endpoint: "q:x", SentAt: t0, EnqueuedAt: t0})
	s.Begin(SpanStart{MsgID: "c", Endpoint: "q:x", SentAt: t0, EnqueuedAt: t0}) // over the in-flight cap: dropped
	if got := s.InFlight(); got != 2 {
		t.Errorf("in flight = %d, want 2", got)
	}
	if got := r.Counter("span.overflow").Value(); got != 1 {
		t.Errorf("overflow = %d, want 1", got)
	}
	s.End("a", "q:x", t0, OutcomeExpired)
	s.End("b", "q:x", t0, OutcomeDropped)
	// Ending an untracked span is a no-op.
	s.End("c", "q:x", t0, OutcomeAcked)
	recent := s.Recent()
	if len(recent) != 2 {
		t.Fatalf("recent = %d spans, want 2 (ring size)", len(recent))
	}
	// Newest first.
	if recent[0].MsgID != "b" || recent[1].MsgID != "a" {
		t.Errorf("recent order = %s,%s want b,a", recent[0].MsgID, recent[1].MsgID)
	}
}

func TestSpansConcurrent(t *testing.T) {
	r := NewRegistry()
	s := NewSpans(r, DefaultMaxInFlight, DefaultKeep)
	var wg sync.WaitGroup
	t0 := time.Unix(0, 0)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				msg := string(rune('a'+id)) + "-msg"
				s.Begin(SpanStart{MsgID: msg, Endpoint: "q:x", SentAt: t0, EnqueuedAt: t0})
				s.Deliver(msg, "q:x", t0.Add(time.Microsecond), false)
				s.End(msg, "q:x", t0.Add(2*time.Microsecond), OutcomeAcked)
			}
		}(i)
	}
	// Readers race with the writers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			_ = s.Snapshot()
		}
	}()
	wg.Wait()
}
