package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"
)

// Handler serves a registry's introspection endpoints:
//
//	/metricz      registry snapshot as JSON
//	/healthz      plain-text liveness ("ok")
//	/debug/pprof  the standard Go profiler endpoints
//
// Extra JSON endpoints (e.g. a span recorder's /spanz) attach with
// HandleJSON. Handler implements http.Handler, so it works both behind
// NewHTTPServer and under httptest.
type Handler struct {
	reg     *Registry
	mux     *http.ServeMux
	started time.Time
}

// NewHandler returns a handler for reg.
func NewHandler(reg *Registry) *Handler {
	h := &Handler{reg: reg, mux: http.NewServeMux(), started: time.Now()}
	h.mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	// /metricz negotiates its representation: JSON by default, the
	// Prometheus text exposition when the client asks for text/plain
	// (a scraper's Accept header) without also accepting JSON.
	h.mux.HandleFunc("/metricz", func(w http.ResponseWriter, r *http.Request) {
		accept := r.Header.Get("Accept")
		if strings.Contains(accept, "text/plain") && !strings.Contains(accept, "application/json") {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			if err := WritePrometheus(w, reg.Snapshot()); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		payload := struct {
			Now      time.Time `json:"now"`
			UptimeNs int64     `json:"uptime_ns"`
			Snapshot
		}{time.Now(), int64(time.Since(h.started)), reg.Snapshot()}
		if err := enc.Encode(payload); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	h.mux.HandleFunc("/debug/pprof/", pprof.Index)
	h.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	h.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	h.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	h.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return h
}

// HandleJSON serves fn's return value as indented JSON at path.
func (h *Handler) HandleJSON(path string, fn func() any) {
	h.mux.HandleFunc(path, func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(fn()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mux.ServeHTTP(w, r)
}

// HTTPServer is a live introspection endpoint: a Handler bound to a TCP
// listener, serving in the background until Close.
type HTTPServer struct {
	*Handler
	listener net.Listener
	srv      *http.Server
}

// NewHTTPServer starts serving handler's introspection endpoints on
// addr (e.g. "127.0.0.1:0"); the bound address is available from Addr.
// Attach any extra endpoints (HandleJSON) before calling this.
func NewHTTPServer(addr string, handler *Handler) (*HTTPServer, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listening on %s: %w", addr, err)
	}
	h := &HTTPServer{Handler: handler, listener: l}
	// A stuck or malicious scraper must not pin a connection forever:
	// bound the header read and each response write. WriteTimeout stays
	// generous because /debug/pprof/profile legitimately streams for
	// its ?seconds= window (30s by default).
	h.srv = &http.Server{
		Handler:           h.Handler,
		ReadHeaderTimeout: 10 * time.Second,
		WriteTimeout:      2 * time.Minute,
	}
	go func() { _ = h.srv.Serve(l) }()
	return h, nil
}

// Addr returns the server's listen address.
func (h *HTTPServer) Addr() string { return h.listener.Addr().String() }

// Close stops the server.
func (h *HTTPServer) Close() error { return h.srv.Close() }
