package obs_test

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"jmsharness/internal/broker"
	"jmsharness/internal/jms"
	"jmsharness/internal/obs"
)

// getJSON fetches url and decodes the response body into out.
func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type = %q", ct)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decoding %s: %v", url, err)
	}
}

// TestMetriczAfterPubSubRun drives a real broker through a small
// queue workload and checks that /metricz serves valid JSON whose
// broker counters reflect the run.
func TestMetriczAfterPubSubRun(t *testing.T) {
	reg := obs.NewRegistry()
	spans := obs.NewSpans(reg, 0, 0)
	b, err := broker.New(broker.Options{Name: "t", Metrics: reg, Spans: spans})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	conn, err := b.CreateConnection()
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Start(); err != nil {
		t.Fatal(err)
	}
	sess, err := conn.CreateSession(false, jms.AckAuto)
	if err != nil {
		t.Fatal(err)
	}
	q := jms.Queue("obs.test")
	p, err := sess.CreateProducer(q)
	if err != nil {
		t.Fatal(err)
	}
	c, err := sess.CreateConsumer(q)
	if err != nil {
		t.Fatal(err)
	}
	const n = 10
	for i := 0; i < n; i++ {
		if err := p.Send(jms.NewTextMessage("m"), jms.DefaultSendOptions()); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		msg, err := c.Receive(time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if msg == nil {
			t.Fatalf("receive %d timed out", i)
		}
	}

	h := obs.NewHandler(reg)
	h.HandleJSON("/spanz", func() any { return spans.Snapshot() })
	srv := httptest.NewServer(h)
	defer srv.Close()

	var metricz struct {
		Now      time.Time                        `json:"now"`
		UptimeNs int64                            `json:"uptime_ns"`
		Counters map[string]int64                 `json:"counters"`
		Gauges   map[string]int64                 `json:"gauges"`
		Hists    map[string]obs.HistogramSnapshot `json:"histograms"`
	}
	getJSON(t, srv.URL+"/metricz", &metricz)
	if metricz.Now.IsZero() {
		t.Error("metricz has no timestamp")
	}
	if got := metricz.Counters["broker.sent"]; got != n {
		t.Errorf("broker.sent = %d, want %d", got, n)
	}
	if got := metricz.Counters["broker.delivered"]; got != n {
		t.Errorf("broker.delivered = %d, want %d", got, n)
	}
	if got := metricz.Counters["broker.acked"]; got != n {
		t.Errorf("broker.acked = %d, want %d", got, n)
	}
	if got := metricz.Gauges["broker.backlog"]; got != 0 {
		t.Errorf("broker.backlog = %d, want 0", got)
	}
	if got := metricz.Hists["broker.sojourn_ns"].Count; got != n {
		t.Errorf("sojourn count = %d, want %d", got, n)
	}

	var spanz obs.SpanzSnapshot
	getJSON(t, srv.URL+"/spanz", &spanz)
	if spanz.InFlight != 0 {
		t.Errorf("spanz in_flight = %d, want 0", spanz.InFlight)
	}
	if len(spanz.Recent) != n {
		t.Errorf("spanz recent = %d spans, want %d", len(spanz.Recent), n)
	}
	for _, sp := range spanz.Recent {
		if sp.Outcome != "acked" {
			t.Errorf("span %s outcome = %q, want acked", sp.MsgID, sp.Outcome)
		}
	}

	// Liveness endpoint.
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz = %s", resp.Status)
	}

	// Broker.Stats agrees with the registry view.
	stats := b.Stats()
	if stats.Sent != n || stats.Delivered != n || stats.Acked != n || stats.Backlog != 0 {
		t.Errorf("stats = %+v", stats)
	}
}
