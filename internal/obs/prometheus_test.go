package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestWritePrometheus(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("broker.enqueued").Add(7)
	reg.Gauge("broker.backlog").Set(3)
	h := reg.Histogram("wal.commit_wait_ns", nil)
	for i := int64(1); i <= 100; i++ {
		h.Observe(i * 1000)
	}
	var b strings.Builder
	if err := WritePrometheus(&b, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE broker_enqueued counter\nbroker_enqueued 7\n",
		"# TYPE broker_backlog gauge\nbroker_backlog 3\n",
		"# TYPE wal_commit_wait_ns summary\n",
		`wal_commit_wait_ns{quantile="0.5"}`,
		`wal_commit_wait_ns{quantile="0.99"}`,
		"wal_commit_wait_ns_count 100\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"broker.enqueued":  "broker_enqueued",
		"span.in_flight":   "span_in_flight",
		"9lives":           "_9lives",
		"wire:rpc-latency": "wire:rpc_latency",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestMetriczContentNegotiation(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x.total").Inc()
	h := NewHandler(reg)

	// Default (no Accept, or a JSON-accepting client) stays JSON.
	for _, accept := range []string{"", "application/json", "text/plain, application/json"} {
		req := httptest.NewRequest("GET", "/metricz", nil)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
			t.Errorf("Accept=%q: Content-Type = %q, want application/json", accept, ct)
		}
		var payload struct {
			Counters map[string]int64 `json:"counters"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &payload); err != nil {
			t.Errorf("Accept=%q: body is not JSON: %v", accept, err)
		}
	}

	// A text-only scraper gets the Prometheus exposition.
	req := httptest.NewRequest("GET", "/metricz", nil)
	req.Header.Set("Accept", "text/plain")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain", ct)
	}
	if body := rec.Body.String(); !strings.Contains(body, "# TYPE x_total counter") {
		t.Errorf("exposition missing counter family:\n%s", body)
	}
}
