package broker

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"jmsharness/internal/jms"
)

// newBoundedBroker returns a broker whose mailboxes hold at most cap
// entries, with the given overload policy.
func newBoundedBroker(t *testing.T, cap int, pol OverloadPolicy) *Broker {
	t.Helper()
	b, err := New(Options{Name: "bounded", MailboxCapacity: cap, Overload: pol})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = b.Close() })
	return b
}

func TestOverloadRejectQueue(t *testing.T) {
	b := newBoundedBroker(t, 2, OverloadReject)
	_, sess := openSession(t, b, false, jms.AckAuto)
	q := jms.Queue("narrow")
	p, err := sess.CreateProducer(q)
	if err != nil {
		t.Fatal(err)
	}
	mustSend(t, p, "a", jms.DefaultSendOptions())
	mustSend(t, p, "b", jms.DefaultSendOptions())
	err = p.Send(jms.NewTextMessage("c"), jms.DefaultSendOptions())
	if !errors.Is(err, jms.ErrOverloaded) {
		t.Fatalf("third send: got %v, want ErrOverloaded", err)
	}
	if got := b.Metrics().Snapshot().Counters["broker.overload_rejections"]; got != 1 {
		t.Errorf("overload_rejections = %d, want 1", got)
	}
	// Draining one entry frees a slot.
	c, err := sess.CreateConsumer(q)
	if err != nil {
		t.Fatal(err)
	}
	if got := mustReceiveText(t, c, time.Second); got != "a" {
		t.Fatalf("got %q", got)
	}
	mustSend(t, p, "c", jms.DefaultSendOptions())
}

func TestOverloadBlockQueueUnblocksOnReceive(t *testing.T) {
	b := newBoundedBroker(t, 1, OverloadBlock)
	_, sess := openSession(t, b, false, jms.AckAuto)
	q := jms.Queue("narrow")
	p, err := sess.CreateProducer(q)
	if err != nil {
		t.Fatal(err)
	}
	mustSend(t, p, "first", jms.DefaultSendOptions())
	sent := make(chan error, 1)
	go func() { sent <- p.Send(jms.NewTextMessage("second"), jms.DefaultSendOptions()) }()
	select {
	case err := <-sent:
		t.Fatalf("send to full queue returned early: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	c, err := sess.CreateConsumer(q)
	if err != nil {
		t.Fatal(err)
	}
	if got := mustReceiveText(t, c, time.Second); got != "first" {
		t.Fatalf("got %q", got)
	}
	select {
	case err := <-sent:
		if err != nil {
			t.Fatalf("blocked send: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("send still blocked after space freed")
	}
	if got := mustReceiveText(t, c, time.Second); got != "second" {
		t.Fatalf("got %q", got)
	}
}

func TestOverloadBlockedSenderSeesClose(t *testing.T) {
	b := newBoundedBroker(t, 1, OverloadBlock)
	_, sess := openSession(t, b, false, jms.AckAuto)
	p, err := sess.CreateProducer(jms.Queue("narrow"))
	if err != nil {
		t.Fatal(err)
	}
	mustSend(t, p, "fill", jms.DefaultSendOptions())
	sent := make(chan error, 1)
	go func() { sent <- p.Send(jms.NewTextMessage("parked"), jms.DefaultSendOptions()) }()
	time.Sleep(50 * time.Millisecond)
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-sent:
		if !errors.Is(err, jms.ErrClosed) {
			t.Fatalf("blocked send after Close: got %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocked send did not observe broker Close")
	}
}

func TestOverloadTopicAllOrNothing(t *testing.T) {
	b := newBoundedBroker(t, 1, OverloadReject)
	_, sess := openSession(t, b, false, jms.AckAuto)
	topic := jms.Topic("alerts")
	fast, err := sess.CreateConsumer(topic)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.CreateConsumer(topic); err != nil { // slow, never drained
		t.Fatal(err)
	}
	p, err := sess.CreateProducer(topic)
	if err != nil {
		t.Fatal(err)
	}
	mustSend(t, p, "m1", jms.DefaultSendOptions()) // fills both subscriptions
	if got := mustReceiveText(t, fast, time.Second); got != "m1" {
		t.Fatalf("got %q", got)
	}
	// fast has room again, slow is still full: the publish must be
	// all-or-nothing, delivering to neither.
	err = p.Send(jms.NewTextMessage("m2"), jms.DefaultSendOptions())
	if !errors.Is(err, jms.ErrOverloaded) {
		t.Fatalf("publish with one full subscriber: got %v, want ErrOverloaded", err)
	}
	if msg, err := fast.ReceiveNoWait(); err != nil || msg != nil {
		t.Fatalf("rejected publish leaked a copy to the fast subscriber: %v, %v", msg, err)
	}
}

func TestOverloadRedeliveryExemptFromBound(t *testing.T) {
	// Rollback must always be able to return entries, even to a full
	// mailbox; the transient overshoot then refuses new sends until the
	// backlog drains below capacity again.
	b := newBoundedBroker(t, 1, OverloadReject)
	_, prodSess := openSession(t, b, false, jms.AckAuto)
	conn, err := b.CreateConnection()
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Start(); err != nil {
		t.Fatal(err)
	}
	consSess, err := conn.CreateSession(true, jms.AckAuto)
	if err != nil {
		t.Fatal(err)
	}
	q := jms.Queue("narrow")
	p, err := prodSess.CreateProducer(q)
	if err != nil {
		t.Fatal(err)
	}
	c, err := consSess.CreateConsumer(q)
	if err != nil {
		t.Fatal(err)
	}
	// Feed two messages through the capacity-1 mailbox into an open
	// transaction, then roll back: both return at once, overshooting.
	mustSend(t, p, "m1", jms.DefaultSendOptions())
	if got := mustReceiveText(t, c, time.Second); got != "m1" {
		t.Fatalf("got %q", got)
	}
	mustSend(t, p, "m2", jms.DefaultSendOptions())
	if got := mustReceiveText(t, c, time.Second); got != "m2" {
		t.Fatalf("got %q", got)
	}
	if err := consSess.Rollback(); err != nil {
		t.Fatal(err)
	}
	// Occupancy 2 > capacity 1: new sends are refused until drained...
	err = p.Send(jms.NewTextMessage("m3"), jms.DefaultSendOptions())
	if !errors.Is(err, jms.ErrOverloaded) {
		t.Fatalf("send over an overshot mailbox: got %v, want ErrOverloaded", err)
	}
	// ...but both redelivered entries are there, in order.
	got1 := mustReceiveText(t, c, time.Second)
	got2 := mustReceiveText(t, c, time.Second)
	if got1 != "m1" || got2 != "m2" {
		t.Fatalf("redelivery got %q, %q", got1, got2)
	}
	if err := consSess.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestOverloadManyBlockedProducers(t *testing.T) {
	b := newBoundedBroker(t, 4, OverloadBlock)
	_, sess := openSession(t, b, false, jms.AckAuto)
	q := jms.Queue("narrow")
	const total = 40
	errs := make(chan error, total)
	for i := 0; i < total; i++ {
		go func(i int) {
			conn, err := b.CreateConnection()
			if err != nil {
				errs <- err
				return
			}
			s, err := conn.CreateSession(false, jms.AckAuto)
			if err != nil {
				errs <- err
				return
			}
			p, err := s.CreateProducer(q)
			if err != nil {
				errs <- err
				return
			}
			errs <- p.Send(jms.NewTextMessage(fmt.Sprintf("m%d", i)), jms.DefaultSendOptions())
		}(i)
	}
	c, err := sess.CreateConsumer(q)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for i := 0; i < total; i++ {
		got := mustReceiveText(t, c, 5*time.Second)
		if seen[got] {
			t.Fatalf("duplicate %q", got)
		}
		seen[got] = true
	}
	for i := 0; i < total; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("producer: %v", err)
		}
	}
	if len(seen) != total {
		t.Fatalf("received %d distinct messages, want %d", len(seen), total)
	}
}
