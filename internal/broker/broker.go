// Package broker is the reference JMS provider: a complete in-memory
// message broker implementing the jms API, with queues, topics, durable
// subscriptions, transacted sessions, the three acknowledgement modes,
// ten-level priority delivery, time-to-live expiry, and persistent
// delivery backed by a stable store (internal/store).
//
// Two capabilities exist purely so the provider can serve as the system
// under test for the paper's harness:
//
//   - Performance profiles (Profile) impose configurable service rates
//     and latency on the send and delivery paths, reproducing the
//     markedly different throughput shapes of the paper's Figures 2–3.
//   - Crash injection (Crash/Restart) discards all volatile state while
//     preserving the stable store, implementing the §5 future-work
//     feature ("initiate a system or program crash and then recover")
//     needed to fully test persistent delivery mode.
package broker

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"jmsharness/internal/clock"
	"jmsharness/internal/jms"
	"jmsharness/internal/obs"
	"jmsharness/internal/selector"
	"jmsharness/internal/stats"
	"jmsharness/internal/store"
	"jmsharness/internal/trace"
)

// Options configures a Broker.
type Options struct {
	// Name labels the broker and prefixes provider-assigned message IDs.
	Name string
	// Profile shapes send/delivery performance; the zero profile (or
	// Unlimited()) applies no shaping.
	Profile Profile
	// Stable is the stable store for persistent messages and durable
	// subscriptions. Nil means an in-memory stable store.
	Stable store.Store
	// Clock is the broker's time source. Nil means the real clock.
	Clock clock.Clock
	// Seed seeds the latency-jitter generator.
	Seed uint64
	// Metrics receives the broker's instruments (counters under
	// "broker.*"). Nil means a private registry, still readable through
	// Metrics()/Stats(); pass a shared registry to aggregate broker and
	// wire-server metrics on one /metricz endpoint.
	Metrics *obs.Registry
	// Spans receives per-message lifecycle spans. Nil disables span
	// recording (a no-op recorder keeps the hot paths branch-free).
	Spans obs.SpanRecorder
	// MailboxCapacity bounds every per-destination mailbox (queues and
	// topic subscriptions alike). 0 means unbounded. Redelivery and
	// crash recovery are exempt: returning already-accepted messages
	// never blocks or fails, so a mailbox can transiently exceed the
	// bound and simply refuses new sends until drained.
	MailboxCapacity int
	// Overload selects what a send does when its destination mailbox is
	// full (only meaningful with MailboxCapacity > 0).
	Overload OverloadPolicy
}

// OverloadPolicy selects the behaviour of a send that finds its
// destination mailbox full.
type OverloadPolicy int

const (
	// OverloadBlock parks the producer until space frees up — classic
	// backpressure. The default.
	OverloadBlock OverloadPolicy = iota
	// OverloadReject fails the send immediately with an error wrapping
	// jms.ErrOverloaded.
	OverloadReject
)

func (p OverloadPolicy) String() string {
	switch p {
	case OverloadBlock:
		return "block"
	case OverloadReject:
		return "reject"
	default:
		return fmt.Sprintf("OverloadPolicy(%d)", int(p))
	}
}

// Broker is an in-memory JMS provider. It implements
// jms.ConnectionFactory. A Broker is safe for concurrent use.
type Broker struct {
	name     string
	profile  Profile
	clk      clock.Clock
	stable   store.Store
	mbCap    int
	overload OverloadPolicy

	sendBucket    *stats.TokenBucket
	deliverBucket *stats.TokenBucket

	jitterMu sync.Mutex
	jitter   *stats.RNG

	reg   *obs.Registry
	met   brokerMetrics
	spans obs.SpanRecorder
	// traceOn gates the per-send trace-context work (mint + property
	// lookups) so a tracing-disabled broker pays only no-op calls on
	// the hot path.
	traceOn bool

	msgSeq      atomic.Int64
	consumerSeq atomic.Int64

	// mu guards the destination registry (queues/topics/subs), the
	// connection registries, and the crashed/closed lifecycle flags. The
	// hot paths — enqueueToQueue and publishToTopic — take it in read
	// mode and hold that read lock through persist+push, so sends to
	// distinct destinations proceed in parallel (each mailbox and the
	// stable store do their own locking) while Crash/Restart/Close take
	// the write side as a quiesce epoch: once the write lock is held, no
	// send is mid-flight, so recovery always sees a consistent world.
	// Cold control-plane paths (consumer/subscription/temp-queue
	// management) simply take the write lock.
	mu         sync.RWMutex
	queues     map[string]*mailbox
	topics     map[string]map[string]*subscription // topic -> endpoint -> sub
	subs       map[string]*subscription            // endpoint -> sub
	conns      map[*connection]struct{}
	clientIDs  map[string]*connection
	tempOwners map[string]*connection // temporary queue name -> owner
	crashed    bool
	closed     bool
	// fenced marks a broker superseded by failover (see Fence): it
	// refuses connections and cannot restart, so a stale primary can
	// never re-accept writes for destinations promoted elsewhere.
	fenced bool
}

// subscription is the state of one topic subscription (durable or the
// artificial subscription of a non-durable subscriber).
type subscription struct {
	endpoint  string
	topicName string
	durable   bool
	clientID  string
	subName   string
	mb        *mailbox
	active    bool // a consumer currently holds the subscription
	// sel filters published messages into the subscription; selExpr is
	// its source form (part of a durable subscription's identity).
	sel     *selector.Selector
	selExpr string
}

// accepts reports whether the subscription's selector admits msg.
func (s *subscription) accepts(msg *jms.Message) bool {
	return s.sel == nil || s.sel.Matches(msg)
}

// brokerMetrics resolves the broker's instruments once at construction
// so the hot paths pay one pointer dereference plus one atomic op per
// event.
type brokerMetrics struct {
	sent      *obs.Counter // messages accepted by send
	enqueued  *obs.Counter // mailbox entries created (topic fan-out counts each copy)
	delivered *obs.Counter // entries handed to consumers (redelivery counts again)
	acked     *obs.Counter // deliveries finalised
	expired   *obs.Counter // entries dropped by TTL expiry
	backlog   *obs.Gauge   // entries currently buffered

	overloadRejects *obs.Counter // sends rejected by OverloadReject

	sendThrottle    *obs.Histogram // send-path throttle wait, ns
	deliverThrottle *obs.Histogram // delivery-path throttle wait, ns
	sojourn         *obs.Histogram // enqueue → pop mailbox residence, ns
	overloadWait    *obs.Histogram // OverloadBlock full-mailbox wait, ns
}

func newBrokerMetrics(reg *obs.Registry) brokerMetrics {
	return brokerMetrics{
		sent:            reg.Counter("broker.sent"),
		enqueued:        reg.Counter("broker.enqueued"),
		delivered:       reg.Counter("broker.delivered"),
		acked:           reg.Counter("broker.acked"),
		expired:         reg.Counter("broker.expired"),
		backlog:         reg.Gauge("broker.backlog"),
		overloadRejects: reg.Counter("broker.overload_rejections"),
		sendThrottle:    reg.Histogram("broker.send_throttle_ns", nil),
		deliverThrottle: reg.Histogram("broker.deliver_throttle_ns", nil),
		sojourn:         reg.Histogram("broker.sojourn_ns", nil),
		overloadWait:    reg.Histogram("broker.overload_block_ns", nil),
	}
}

// New returns a started broker.
func New(opts Options) (*Broker, error) {
	if err := opts.Profile.Validate(); err != nil {
		return nil, err
	}
	if opts.Name == "" {
		opts.Name = "broker"
	}
	if opts.Stable == nil {
		opts.Stable = store.NewMemory()
	}
	if opts.Clock == nil {
		opts.Clock = clock.Real()
	}
	if opts.Metrics == nil {
		opts.Metrics = obs.NewRegistry()
	}
	// The typed-nil check matters: a caller holding a nil *obs.Spans
	// (span tracing disabled) still produces a non-nil interface here.
	if s, ok := opts.Spans.(*obs.Spans); opts.Spans == nil || (ok && s == nil) {
		opts.Spans = obs.NopSpans()
	}
	traceOn := opts.Spans != obs.NopSpans()
	if opts.MailboxCapacity < 0 {
		return nil, fmt.Errorf("broker: negative MailboxCapacity %d", opts.MailboxCapacity)
	}
	if opts.Overload != OverloadBlock && opts.Overload != OverloadReject {
		return nil, fmt.Errorf("broker: unknown overload policy %d", int(opts.Overload))
	}
	b := &Broker{
		name:       opts.Name,
		profile:    opts.Profile,
		clk:        opts.Clock,
		stable:     opts.Stable,
		mbCap:      opts.MailboxCapacity,
		overload:   opts.Overload,
		jitter:     stats.NewRNG(opts.Seed),
		reg:        opts.Metrics,
		met:        newBrokerMetrics(opts.Metrics),
		spans:      opts.Spans,
		traceOn:    traceOn,
		queues:     map[string]*mailbox{},
		topics:     map[string]map[string]*subscription{},
		subs:       map[string]*subscription{},
		conns:      map[*connection]struct{}{},
		clientIDs:  map[string]*connection{},
		tempOwners: map[string]*connection{},
	}
	now := func() time.Time { return b.clk.Now() }
	if opts.Profile.SendRate > 0 {
		bucket, err := stats.NewTokenBucket(opts.Profile.SendRate, opts.Profile.SendBurst, now)
		if err != nil {
			return nil, err
		}
		b.sendBucket = bucket
	}
	if opts.Profile.DeliverRate > 0 {
		bucket, err := stats.NewTokenBucket(opts.Profile.DeliverRate, opts.Profile.DeliverBurst, now)
		if err != nil {
			return nil, err
		}
		b.deliverBucket = bucket
	}
	if err := b.recoverLocked(); err != nil {
		return nil, err
	}
	return b, nil
}

var _ jms.ConnectionFactory = (*Broker)(nil)

// Name returns the broker's name.
func (b *Broker) Name() string { return b.name }

// Profile returns the broker's performance profile.
func (b *Broker) Profile() Profile { return b.profile }

// Metrics returns the broker's metrics registry (the one passed in
// Options, or the private registry created for it).
func (b *Broker) Metrics() *obs.Registry { return b.reg }

// Stats is a snapshot of the broker-wide message counters.
type Stats struct {
	// Sent counts messages accepted by send (one per send, before any
	// topic fan-out).
	Sent int64 `json:"sent"`
	// Enqueued counts mailbox entries created; a topic publish counts
	// once per matching subscription.
	Enqueued int64 `json:"enqueued"`
	// Delivered counts entries handed to consumers; a redelivered entry
	// counts each time.
	Delivered int64 `json:"delivered"`
	// Acked counts deliveries finalised (acknowledged, committed, or
	// auto-acked).
	Acked int64 `json:"acked"`
	// Expired counts entries dropped because their time-to-live elapsed
	// before delivery.
	Expired int64 `json:"expired"`
	// Backlog is the number of entries currently buffered.
	Backlog int64 `json:"backlog"`
}

// Stats returns a snapshot of the broker's counters. Each field is read
// atomically; the snapshot is not a consistent cut across fields.
func (b *Broker) Stats() Stats {
	return Stats{
		Sent:      b.met.sent.Value(),
		Enqueued:  b.met.enqueued.Value(),
		Delivered: b.met.delivered.Value(),
		Acked:     b.met.acked.Value(),
		Expired:   b.met.expired.Value(),
		Backlog:   b.met.backlog.Value(),
	}
}

// Pending returns the broker-wide count of buffered messages.
//
// Deprecated: use Stats().Backlog.
func (b *Broker) Pending() int { return int(b.Stats().Backlog) }

// ExpiredDropped returns the count of messages dropped because they
// expired before delivery.
//
// Deprecated: use Stats().Expired.
func (b *Broker) ExpiredDropped() int64 { return b.Stats().Expired }

// CreateConnection implements jms.ConnectionFactory.
func (b *Broker) CreateConnection() (jms.Connection, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, fmt.Errorf("broker %s: %w", b.name, jms.ErrClosed)
	}
	if b.fenced {
		return nil, fmt.Errorf("broker %s: %w", b.name, jms.ErrFenced)
	}
	if b.crashed {
		return nil, fmt.Errorf("broker %s: crashed and not restarted", b.name)
	}
	c := newConnection(b)
	b.conns[c] = struct{}{}
	return c, nil
}

// Crash simulates a provider failure: every connection, session and
// consumer is forcibly closed and all volatile state (non-persistent
// messages, non-durable subscriptions, in-flight transactions) is lost.
// The stable store is untouched. The broker rejects new connections
// until Restart.
func (b *Broker) Crash() {
	b.mu.Lock()
	if b.crashed || b.closed {
		b.mu.Unlock()
		return
	}
	b.crashed = true
	conns := make([]*connection, 0, len(b.conns))
	for c := range b.conns {
		conns = append(conns, c)
	}
	b.conns = map[*connection]struct{}{}
	b.clientIDs = map[string]*connection{}
	b.tempOwners = map[string]*connection{}
	queues := b.queues
	subs := b.subs
	b.queues = map[string]*mailbox{}
	b.topics = map[string]map[string]*subscription{}
	b.subs = map[string]*subscription{}
	b.mu.Unlock()

	for _, c := range conns {
		c.forceClose()
	}
	for name, mb := range queues {
		mb.close()
		b.endStranded(mb, trace.EndpointForQueue(name), true)
	}
	for _, s := range subs {
		s.mb.close()
		b.endStranded(s.mb, s.endpoint, true)
	}
	b.met.backlog.Set(0)
}

// Restart recovers the broker after a Crash: durable subscriptions and
// pending persistent messages are rebuilt from the stable store.
func (b *Broker) Restart() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return fmt.Errorf("broker %s: %w", b.name, jms.ErrClosed)
	}
	if b.fenced {
		return fmt.Errorf("broker %s: %w", b.name, jms.ErrFenced)
	}
	if !b.crashed {
		return fmt.Errorf("broker %s: restart without crash", b.name)
	}
	b.crashed = false
	return b.recoverLocked()
}

// recoverLocked rebuilds durable state from the stable store. Callers
// hold b.mu (or have exclusive access during New).
func (b *Broker) recoverLocked() error {
	st, err := b.stable.Snapshot()
	if err != nil {
		return fmt.Errorf("broker %s: recovering: %w", b.name, err)
	}
	now := b.clk.Now()
	for _, rec := range st.Subscriptions {
		var sel *selector.Selector
		if rec.Selector != "" {
			sel, err = selector.Parse(rec.Selector)
			if err != nil {
				return fmt.Errorf("broker %s: recovering subscription %s: %w", b.name, rec.Key(), err)
			}
		}
		sub := &subscription{
			endpoint:  trace.EndpointForDurable(rec.ClientID, rec.Name),
			topicName: rec.Topic,
			durable:   true,
			clientID:  rec.ClientID,
			subName:   rec.Name,
			mb:        newMailbox(b.mbCap),
			sel:       sel,
			selExpr:   rec.Selector,
		}
		b.subs[sub.endpoint] = sub
		if b.topics[rec.Topic] == nil {
			b.topics[rec.Topic] = map[string]*subscription{}
		}
		b.topics[rec.Topic][sub.endpoint] = sub
	}
	for ep, msgs := range st.Messages {
		var mb *mailbox
		if dest, err := jms.ParseDestination(ep); err == nil && dest.Kind() == jms.KindQueue {
			mb = b.queueLocked(dest.Name())
		} else if sub, ok := b.subs[ep]; ok {
			mb = sub.mb
		} else {
			// Stored messages for an endpoint that no longer exists
			// (e.g. an unsubscribed durable subscription); drop them.
			for _, sm := range msgs {
				if err := b.stable.RemoveMessage(ep, sm.ID); err != nil {
					return fmt.Errorf("broker %s: dropping orphan record: %w", b.name, err)
				}
			}
			continue
		}
		for _, sm := range msgs {
			if sm.Delivered {
				// The message was handed to a consumer before the crash
				// but never acknowledged; JMS requires its post-recovery
				// redelivery to carry the JMSRedelivered flag.
				sm.Msg.Redelivered = true
			}
			mb.push(entry{msg: sm.Msg, rec: sm.ID, persisted: true, enqueuedAt: now})
			b.met.enqueued.Inc()
			b.met.backlog.Inc()
			// Recovered messages kept their trace properties through the
			// WAL round trip, so post-crash spans stay linked to the
			// original trace.
			b.spans.Begin(b.spanStart(sm.Msg, ep, now, 0))
		}
	}
	return nil
}

// Close shuts the broker down permanently.
func (b *Broker) Close() error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil
	}
	b.closed = true
	conns := make([]*connection, 0, len(b.conns))
	for c := range b.conns {
		conns = append(conns, c)
	}
	b.conns = map[*connection]struct{}{}
	queues := b.queues
	subs := b.subs
	b.mu.Unlock()
	for _, c := range conns {
		c.forceClose()
	}
	for name, mb := range queues {
		mb.close()
		b.endStranded(mb, trace.EndpointForQueue(name), false)
	}
	for _, s := range subs {
		s.mb.close()
		b.endStranded(s.mb, s.endpoint, false)
	}
	return nil
}

// endStranded closes out the spans of messages still buffered when
// their mailbox shut down: they will never be delivered, so their
// lifecycle ends as a drop. Without this a closed broker strands its
// undelivered spans in the recorder's bounded in-flight table, starving
// every later Begin against the same recorder. On a crash
// (keepPersisted) spans of persisted messages stay open: Restart
// re-begins them under the same key, keeping the trace continuous.
func (b *Broker) endStranded(mb *mailbox, ep string, keepPersisted bool) {
	if b.spans == obs.NopSpans() {
		return
	}
	now := b.clk.Now()
	for _, e := range mb.drain() {
		if keepPersisted && e.persisted {
			continue
		}
		b.spans.End(e.msg.ID, ep, now, obs.OutcomeDropped)
	}
}

// queueLocked returns (creating if needed) the queue mailbox. Callers
// hold b.mu.
func (b *Broker) queueLocked(name string) *mailbox {
	mb, ok := b.queues[name]
	if !ok {
		mb = newMailbox(b.mbCap)
		b.queues[name] = mb
	}
	return mb
}

// nextMessageID assigns a provider message identifier.
func (b *Broker) nextMessageID() string {
	return fmt.Sprintf("ID:%s-%d", b.name, b.msgSeq.Add(1))
}

// nextID assigns a broker-unique identifier with the given prefix.
func (b *Broker) nextID(prefix string) string {
	return fmt.Sprintf("%s-%s%d", b.name, prefix, b.consumerSeq.Add(1))
}

// nextConsumerID assigns a broker-unique consumer identifier.
func (b *Broker) nextConsumerID() string { return b.nextID("c") }

// throttleSend blocks the caller for the send path's service time.
func (b *Broker) throttleSend() {
	if b.sendBucket == nil {
		return
	}
	if wait := b.sendBucket.Reserve(); wait > 0 {
		b.met.sendThrottle.ObserveDuration(wait)
		b.clk.Sleep(wait)
	}
}

// throttleDeliver blocks the caller for the delivery path's service
// time, including the backlog penalty.
func (b *Broker) throttleDeliver() {
	var wait time.Duration
	if b.deliverBucket != nil {
		wait = b.deliverBucket.Reserve()
	}
	if p := b.profile.BacklogPenalty; p > 0 {
		wait += time.Duration(b.met.backlog.Value()) * p
	}
	if wait > 0 {
		b.met.deliverThrottle.ObserveDuration(wait)
		b.clk.Sleep(wait)
	}
}

// deliveryLatency returns the minimum time a message must have spent in
// the broker before delivery, including jitter.
func (b *Broker) deliveryLatency() time.Duration {
	lat := b.profile.BaseLatency
	if j := b.profile.LatencyJitter; j > 0 {
		b.jitterMu.Lock()
		lat += time.Duration(b.jitter.Float64() * float64(j))
		b.jitterMu.Unlock()
	}
	return lat
}

// noopWait is the completion of a send with nothing left to wait for.
var noopWait = func() error { return nil }

// send routes one message to its destination's mailbox(es) and blocks
// until it is fully accepted (durably recorded, for persistent mode).
func (b *Broker) send(dest jms.Destination, msg *jms.Message, opts jms.SendOptions) error {
	wait, err := b.sendStaged(dest, msg, opts)
	if err != nil {
		return err
	}
	return wait()
}

// sendStaged routes one message to its destination's mailbox(es),
// returning before persistent copies are durable: the returned wait
// closure (call it exactly once) blocks until every copy's stable
// record is committed. The message is stamped with its provider ID,
// timestamp and expiration before return, and the mailbox push happens
// here too, under the same read-side quiesce lock as the blocking path
// — only the group-commit wait moves out, so a pipelined producer can
// keep a window of sends inside one fsync domain. A consumer can
// therefore receive a staged message before its producer's wait
// returns; if the commit then fails, that is the delivery of a failed
// send, which JMS's send indeterminacy already permits (and the
// conformance model already accepts).
func (b *Broker) sendStaged(dest jms.Destination, msg *jms.Message, opts jms.SendOptions) (func() error, error) {
	if dest == nil {
		return nil, fmt.Errorf("%w: no destination", jms.ErrInvalidDestination)
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	now := b.clk.Now()
	m := msg.Clone()
	m.ID = b.nextMessageID()
	m.Destination = dest
	m.Mode = opts.Mode
	m.Priority = opts.Priority
	m.Timestamp = now
	if opts.TTL > 0 {
		m.Expiration = now.Add(opts.TTL)
	} else {
		m.Expiration = time.Time{}
	}
	// Reflect the provider-assigned headers back into the caller's
	// message, as JMS send does.
	msg.ID = m.ID
	msg.Destination = dest
	msg.Mode = opts.Mode
	msg.Priority = opts.Priority
	msg.Timestamp = m.Timestamp
	msg.Expiration = m.Expiration

	if b.traceOn {
		// Establish the message's trace context (fresh unless a wire
		// server or cluster front-end already routed it) and reflect
		// the ID back like the other provider stamps, so the caller
		// can correlate its send with the exported spans.
		tid := obs.StampTrace(m)
		msg.SetProperty(obs.TraceIDProperty, jms.Str(tid))
	}

	b.throttleSend()

	var wait func() error
	var err error
	switch dest.Kind() {
	case jms.KindQueue:
		wait, err = b.enqueueToQueue(dest.Name(), m, now)
	case jms.KindTopic:
		wait, err = b.publishToTopic(dest.Name(), m, now)
	default:
		err = fmt.Errorf("%w: kind %v", jms.ErrInvalidDestination, dest.Kind())
	}
	if err != nil {
		return nil, err
	}
	b.met.sent.Inc()
	return wait, nil
}

func (b *Broker) enqueueToQueue(name string, m *jms.Message, now time.Time) (func() error, error) {
	// Fast path: the queue already exists, so a read lock suffices and
	// sends to distinct queues run fully in parallel. The read lock is
	// held through persist+push: that is the quiesce contract with
	// Crash/Restart/Close (which take the write side), and overlapping
	// read-side holders are exactly what lets the WAL's group committer
	// batch their fsyncs. Queue creation is rare; it briefly upgrades to
	// the write lock and retries.
	for {
		b.mu.RLock()
		if b.closed || b.crashed {
			b.mu.RUnlock()
			return nil, fmt.Errorf("broker %s: %w", b.name, jms.ErrClosed)
		}
		mb, ok := b.queues[name]
		if !ok {
			b.mu.RUnlock()
			b.mu.Lock()
			if !b.closed && !b.crashed {
				b.queueLocked(name)
			}
			b.mu.Unlock()
			continue
		}
		if !mb.tryReserve() {
			// Full mailbox. The wait (or the rejection) happens strictly
			// after RUnlock: blocking while holding the read side would
			// deadlock Crash/Close, whose write-lock quiesce must be able
			// to close the very mailbox this send is waiting on.
			space := mb.spaceChan()
			b.mu.RUnlock()
			if err := b.overloaded(trace.EndpointForQueue(name), space); err != nil {
				return nil, err
			}
			continue
		}
		wait, err := b.enqueueEntry(mb, name, m, now)
		b.mu.RUnlock()
		return wait, err
	}
}

// overloaded handles a send that found its destination mailbox full:
// under OverloadReject it returns a typed error immediately; under
// OverloadBlock it parks on space until occupancy drops (or the mailbox
// closes), then returns nil so the caller's retry loop revalidates the
// world. Callers must NOT hold b.mu.
func (b *Broker) overloaded(endpoint string, space <-chan struct{}) error {
	if b.overload == OverloadReject {
		b.met.overloadRejects.Inc()
		return fmt.Errorf("broker %s: %s mailbox full: %w", b.name, endpoint, jms.ErrOverloaded)
	}
	start := b.clk.Now()
	<-space
	b.met.overloadWait.ObserveDuration(b.clk.Now().Sub(start))
	return nil
}

// enqueueEntry persists (if required) and buffers one message on a
// queue mailbox, consuming the caller's tryReserve claim, and returns
// the durability wait. Callers hold b.mu in read mode. On a staged
// store only the record's ordering happens here — the span's WALWait
// then reports the staging cost, with the true commit wait visible in
// the store's wal.commit_wait_ns histogram.
func (b *Broker) enqueueEntry(mb *mailbox, name string, m *jms.Message, now time.Time) (func() error, error) {
	e := entry{msg: m, enqueuedAt: now}
	ep := trace.EndpointForQueue(name)
	wait := noopWait
	var walWait time.Duration
	if m.Mode == jms.Persistent {
		persistStart := b.clk.Now()
		rec, w, err := b.addStable(ep, m)
		if err != nil {
			mb.unreserve()
			return nil, fmt.Errorf("broker %s: persisting to %s: %w", b.name, ep, err)
		}
		walWait = b.clk.Now().Sub(persistStart)
		e.rec, e.persisted = rec, true
		wait = w
	}
	mb.pushReserved(e)
	b.met.enqueued.Inc()
	b.met.backlog.Inc()
	b.spans.Begin(b.spanStart(m, ep, now, walWait))
	return wait, nil
}

// addStable records one persistent copy on the stable store, staged
// when the store supports it (the wait closure then carries the group
// commit), blocking otherwise.
func (b *Broker) addStable(ep string, m *jms.Message) (store.RecordID, func() error, error) {
	if st, ok := b.stable.(store.Staged); ok {
		return st.AddMessageStaged(ep, m)
	}
	rec, err := b.stable.AddMessage(ep, m)
	if err != nil {
		return 0, nil, err
	}
	return rec, noopWait, nil
}

// spanStart assembles the Begin payload for one enqueued copy; the
// trace-context property lookups run only when tracing is on.
func (b *Broker) spanStart(m *jms.Message, ep string, now time.Time, walWait time.Duration) obs.SpanStart {
	st := obs.SpanStart{
		MsgID:      m.ID,
		Endpoint:   ep,
		SentAt:     m.Timestamp,
		EnqueuedAt: now,
		WALWait:    walWait,
	}
	if b.traceOn {
		st.TraceID = obs.MessageTraceID(m)
		st.Hop = obs.MessageTraceHop(m)
		st.Node = b.name
	}
	return st
}

func (b *Broker) publishToTopic(name string, m *jms.Message, now time.Time) (func() error, error) {
	// The read lock is held through the whole fan-out, for the same
	// quiesce contract as enqueueToQueue; publishes to distinct topics
	// (and queue sends) proceed concurrently. Under a bounded profile
	// the publish first claims one slot on every matching subscription,
	// so admission is all-or-nothing: a publish either fans out to all
	// matching subscribers or (one being full) blocks/rejects without
	// partially delivering.
	for {
		b.mu.RLock()
		if b.closed || b.crashed {
			b.mu.RUnlock()
			return nil, fmt.Errorf("broker %s: %w", b.name, jms.ErrClosed)
		}
		var matched []*subscription
		for _, s := range b.topics[name] {
			if s.accepts(m) {
				matched = append(matched, s)
			}
		}
		full := -1
		for i, s := range matched {
			if !s.mb.tryReserve() {
				full = i
				break
			}
		}
		if full >= 0 {
			for _, s := range matched[:full] {
				s.mb.unreserve()
			}
			space := matched[full].mb.spaceChan()
			ep := matched[full].endpoint
			b.mu.RUnlock()
			if err := b.overloaded(ep, space); err != nil {
				return nil, err
			}
			continue
		}
		var waits []func() error
		for i, s := range matched {
			copyMsg := m.Clone()
			e := entry{msg: copyMsg, enqueuedAt: now}
			var walWait time.Duration
			if m.Mode == jms.Persistent && s.durable {
				persistStart := b.clk.Now()
				rec, w, err := b.addStable(s.endpoint, copyMsg)
				if err != nil {
					// Release the claims not yet converted into entries;
					// copies already fanned out stay delivered, matching
					// the pre-bounded partial-failure behaviour. Copies
					// already staged must still settle: their waits are
					// drained here so each runs exactly once.
					for _, rest := range matched[i:] {
						rest.mb.unreserve()
					}
					b.mu.RUnlock()
					for _, w := range waits {
						_ = w()
					}
					return nil, fmt.Errorf("broker %s: persisting to %s: %w", b.name, s.endpoint, err)
				}
				walWait = b.clk.Now().Sub(persistStart)
				e.rec, e.persisted = rec, true
				if w != nil {
					waits = append(waits, w)
				}
			}
			s.mb.pushReserved(e)
			b.met.enqueued.Inc()
			b.met.backlog.Inc()
			b.spans.Begin(b.spanStart(copyMsg, s.endpoint, now, walWait))
		}
		b.mu.RUnlock()
		if len(waits) == 0 {
			return noopWait, nil
		}
		return func() error {
			var first error
			for _, w := range waits {
				if err := w(); err != nil && first == nil {
					first = err
				}
			}
			return first
		}, nil
	}
}

// ackEntry finalises consumption of one delivered entry, removing its
// stable record if persistent.
func (b *Broker) ackEntry(endpoint string, e entry) error {
	b.met.acked.Inc()
	b.spans.End(e.msg.ID, endpoint, b.clk.Now(), obs.OutcomeAcked)
	if !e.persisted {
		return nil
	}
	if err := b.stable.RemoveMessage(endpoint, e.rec); err != nil {
		return fmt.Errorf("broker %s: acking on %s: %w", b.name, endpoint, err)
	}
	return nil
}

// ackEntries finalises consumption of a batch of delivered entries in
// one pass: every persistent record's remove is staged on the stable
// store first, then the durability waits are drained together, so a
// batch of N acknowledgements shares one group commit instead of
// paying N sequential fsync round trips. On a store without staged
// removes it degrades to the sequential blocking path. Returns the
// first error; later entries are still acknowledged.
func (b *Broker) ackEntries(entries []deliveredEntry) error {
	st, staged := b.stable.(store.Staged)
	if !staged || len(entries) < 2 {
		var first error
		for _, d := range entries {
			if err := b.ackEntry(d.endpoint, d.e); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	now := b.clk.Now()
	waits := make([]func() error, 0, len(entries))
	var first error
	for _, d := range entries {
		b.met.acked.Inc()
		b.spans.End(d.e.msg.ID, d.endpoint, now, obs.OutcomeAcked)
		if !d.e.persisted {
			continue
		}
		wait, err := st.RemoveMessageStaged(d.endpoint, d.e.rec)
		if err != nil {
			if first == nil {
				first = fmt.Errorf("broker %s: acking on %s: %w", b.name, d.endpoint, err)
			}
			continue
		}
		waits = append(waits, wait)
	}
	for _, w := range waits {
		if err := w(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// dropExpired accounts for entries dropped by a mailbox pop because
// their time-to-live elapsed.
func (b *Broker) dropExpired(endpoint string, dropped []entry) {
	if len(dropped) == 0 {
		return
	}
	now := b.clk.Now()
	for _, e := range dropped {
		b.met.backlog.Dec()
		b.met.expired.Inc()
		b.spans.End(e.msg.ID, endpoint, now, obs.OutcomeExpired)
		if e.persisted {
			// Best effort: an expired persistent message's record is
			// removed; failure only delays cleanup until the next
			// recovery, it cannot affect correctness.
			_ = b.stable.RemoveMessage(endpoint, e.rec)
		}
	}
}

// dropEntries accounts for entries discarded outside delivery (deleted
// temporary queues, closed subscriptions): backlog shrinks and their
// spans end as dropped.
func (b *Broker) dropEntries(endpoint string, drained []entry) {
	if len(drained) == 0 {
		return
	}
	now := b.clk.Now()
	b.met.backlog.Add(int64(-len(drained)))
	for _, e := range drained {
		b.spans.End(e.msg.ID, endpoint, now, obs.OutcomeDropped)
	}
}

// connectionClosed removes c from the broker's registries.
func (b *Broker) connectionClosed(c *connection) {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.conns, c)
	if c.clientID != "" && b.clientIDs[c.clientID] == c {
		delete(b.clientIDs, c.clientID)
	}
}

// createTempQueue allocates a connection-scoped temporary queue.
func (b *Broker) createTempQueue(c *connection) (string, error) {
	name := "TEMP." + b.nextID("tq")
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed || b.crashed {
		return "", fmt.Errorf("broker %s: %w", b.name, jms.ErrClosed)
	}
	b.queues[name] = newMailbox(b.mbCap)
	b.tempOwners[name] = c
	return name, nil
}

// tempQueueOwner returns the owning connection of a temporary queue.
func (b *Broker) tempQueueOwner(name string) (*connection, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	c, ok := b.tempOwners[name]
	return c, ok
}

// deleteTempQueue removes a temporary queue and its pending messages
// when its owning connection closes.
func (b *Broker) deleteTempQueue(name string) {
	b.mu.Lock()
	mb, ok := b.queues[name]
	delete(b.queues, name)
	delete(b.tempOwners, name)
	b.mu.Unlock()
	if !ok {
		return
	}
	drained := mb.drain()
	ep := trace.EndpointForQueue(name)
	b.dropEntries(ep, drained)
	for _, e := range drained {
		if e.persisted {
			// Best effort, as for expired persistent messages.
			_ = b.stable.RemoveMessage(ep, e.rec)
		}
	}
	mb.close()
}

// registerClientID claims id for connection c.
func (b *Broker) registerClientID(id string, c *connection) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if holder, ok := b.clientIDs[id]; ok && holder != c {
		return jms.ErrClientIDInUse
	}
	b.clientIDs[id] = c
	return nil
}

// openNonDurable creates the artificial subscription backing a
// non-durable subscriber.
func (b *Broker) openNonDurable(topicName, consumerID string, sel *selector.Selector, selExpr string) (*subscription, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed || b.crashed {
		return nil, fmt.Errorf("broker %s: %w", b.name, jms.ErrClosed)
	}
	sub := &subscription{
		endpoint:  trace.EndpointForNonDurable(consumerID),
		topicName: topicName,
		mb:        newMailbox(b.mbCap),
		active:    true,
		sel:       sel,
		selExpr:   selExpr,
	}
	b.subs[sub.endpoint] = sub
	if b.topics[topicName] == nil {
		b.topics[topicName] = map[string]*subscription{}
	}
	b.topics[topicName][sub.endpoint] = sub
	return sub, nil
}

// closeNonDurable terminates a non-durable subscription, dropping its
// pending messages.
func (b *Broker) closeNonDurable(sub *subscription) {
	b.mu.Lock()
	delete(b.subs, sub.endpoint)
	if subs, ok := b.topics[sub.topicName]; ok {
		delete(subs, sub.endpoint)
	}
	b.mu.Unlock()
	b.dropEntries(sub.endpoint, sub.mb.drain())
	sub.mb.close()
}

// openDurable creates or re-activates the durable subscription
// (clientID, name) on topicName. Changing the topic or the selector of
// an existing subscription name is equivalent to unsubscribing and
// resubscribing, as in JMS.
func (b *Broker) openDurable(clientID, name, topicName string, sel *selector.Selector, selExpr string) (*subscription, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed || b.crashed {
		return nil, fmt.Errorf("broker %s: %w", b.name, jms.ErrClosed)
	}
	ep := trace.EndpointForDurable(clientID, name)
	if sub, ok := b.subs[ep]; ok {
		if sub.active {
			return nil, jms.ErrDurableActive
		}
		if sub.topicName == topicName && sub.selExpr == selExpr {
			sub.active = true
			return sub, nil
		}
		// Topic or selector changed: delete the old subscription and
		// fall through to create a fresh one.
		if err := b.deleteDurableLocked(sub); err != nil {
			return nil, err
		}
	}
	// Accepted trade-off: persisting the subscription is a blocking
	// group commit — an fsync on a sync WAL — under the broker write
	// lock, stalling every send/publish for its duration. Durable
	// open/unsubscribe are rare control-plane events, and holding the
	// lock keeps the registry and the stable store in lockstep; moving
	// the persist outside would need a reservation protocol so racing
	// opens/unsubscribes of the same name cannot persist out of order.
	if err := b.stable.AddSubscription(store.SubscriptionRecord{
		ClientID: clientID, Name: name, Topic: topicName, Selector: selExpr,
	}); err != nil {
		return nil, fmt.Errorf("broker %s: recording subscription: %w", b.name, err)
	}
	sub := &subscription{
		endpoint:  ep,
		topicName: topicName,
		durable:   true,
		clientID:  clientID,
		subName:   name,
		mb:        newMailbox(b.mbCap),
		active:    true,
		sel:       sel,
		selExpr:   selExpr,
	}
	b.subs[ep] = sub
	if b.topics[topicName] == nil {
		b.topics[topicName] = map[string]*subscription{}
	}
	b.topics[topicName][ep] = sub
	return sub, nil
}

// deactivateDurable releases the active claim on a durable subscription;
// the subscription keeps accumulating messages.
func (b *Broker) deactivateDurable(sub *subscription) {
	b.mu.Lock()
	defer b.mu.Unlock()
	sub.active = false
}

// unsubscribeDurable deletes the durable subscription (clientID, name).
func (b *Broker) unsubscribeDurable(clientID, name string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	ep := trace.EndpointForDurable(clientID, name)
	sub, ok := b.subs[ep]
	if !ok {
		return jms.ErrUnknownSubscription
	}
	if sub.active {
		return jms.ErrDurableActive
	}
	return b.deleteDurableLocked(sub)
}

// deleteDurableLocked removes a durable subscription and its state.
// Callers hold b.mu.
func (b *Broker) deleteDurableLocked(sub *subscription) error {
	if err := b.stable.RemoveSubscription(sub.clientID, sub.subName); err != nil {
		return fmt.Errorf("broker %s: deleting subscription: %w", b.name, err)
	}
	delete(b.subs, sub.endpoint)
	if subs, ok := b.topics[sub.topicName]; ok {
		delete(subs, sub.endpoint)
	}
	b.dropEntries(sub.endpoint, sub.mb.drain())
	sub.mb.close()
	return nil
}
