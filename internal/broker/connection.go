package broker

import (
	"fmt"
	"sync"
	"time"

	"jmsharness/internal/jms"
	"jmsharness/internal/selector"
	"jmsharness/internal/trace"
)

// connection implements jms.Connection for the in-memory broker.
type connection struct {
	b *Broker

	mu         sync.Mutex
	clientID   string
	started    bool
	startWake  chan struct{}
	sessions   map[*session]struct{}
	tempQueues []string
	closed     bool
	done       chan struct{}
}

func newConnection(b *Broker) *connection {
	return &connection{
		b:         b,
		startWake: make(chan struct{}),
		sessions:  map[*session]struct{}{},
		done:      make(chan struct{}),
	}
}

var _ jms.Connection = (*connection)(nil)

// SetClientID implements jms.Connection.
func (c *connection) SetClientID(id string) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return jms.ErrClosed
	}
	if c.clientID != "" {
		c.mu.Unlock()
		return fmt.Errorf("%w: client ID already set to %q", jms.ErrInvalidArgument, c.clientID)
	}
	if len(c.sessions) > 0 {
		c.mu.Unlock()
		return fmt.Errorf("%w: client ID must be set before creating sessions", jms.ErrInvalidArgument)
	}
	c.mu.Unlock()
	if err := c.b.registerClientID(id, c); err != nil {
		return err
	}
	c.mu.Lock()
	c.clientID = id
	c.mu.Unlock()
	return nil
}

// ClientID implements jms.Connection.
func (c *connection) ClientID() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.clientID
}

// CreateSession implements jms.Connection.
func (c *connection) CreateSession(transacted bool, ackMode jms.AckMode) (jms.Session, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, jms.ErrClosed
	}
	if !transacted && !ackMode.Valid() {
		return nil, fmt.Errorf("%w: ack mode %d", jms.ErrInvalidArgument, ackMode)
	}
	s := &session{
		conn:       c,
		b:          c.b,
		id:         c.b.nextID("s"),
		transacted: transacted,
		ackMode:    ackMode,
		producers:  map[*producer]struct{}{},
		consumers:  map[*consumer]struct{}{},
	}
	c.sessions[s] = struct{}{}
	return s, nil
}

// Start implements jms.Connection.
func (c *connection) Start() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return jms.ErrClosed
	}
	if !c.started {
		c.started = true
		close(c.startWake)
		c.startWake = make(chan struct{})
	}
	return nil
}

// Stop implements jms.Connection.
func (c *connection) Stop() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return jms.ErrClosed
	}
	c.started = false
	return nil
}

// startState returns whether delivery is enabled and a channel closed at
// the next start/stop transition.
func (c *connection) startState() (bool, <-chan struct{}) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.started, c.startWake
}

// Close implements jms.Connection: a graceful close that rolls back
// in-progress transactions and completes lazy acknowledgements.
func (c *connection) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	close(c.done)
	sessions := make([]*session, 0, len(c.sessions))
	for s := range c.sessions {
		sessions = append(sessions, s)
	}
	c.sessions = map[*session]struct{}{}
	temps := c.tempQueues
	c.tempQueues = nil
	c.mu.Unlock()
	var firstErr error
	for _, s := range sessions {
		if err := s.closeGraceful(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for _, name := range temps {
		c.b.deleteTempQueue(name)
	}
	c.b.connectionClosed(c)
	return firstErr
}

// forceClose abandons the connection without any acknowledgement or
// redelivery side effects; used on broker crash and shutdown.
func (c *connection) forceClose() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	close(c.done)
	sessions := make([]*session, 0, len(c.sessions))
	for s := range c.sessions {
		sessions = append(sessions, s)
	}
	c.sessions = map[*session]struct{}{}
	c.mu.Unlock()
	for _, s := range sessions {
		s.forceClose()
	}
}

func (c *connection) removeSession(s *session) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.sessions, s)
}

// stagedSend is a transactional send awaiting commit.
type stagedSend struct {
	dest jms.Destination
	msg  *jms.Message
	opts jms.SendOptions
}

// deliveredEntry records a delivery pending acknowledgement.
type deliveredEntry struct {
	endpoint string
	mb       *mailbox
	e        entry
}

// dupsOKBatch is how many deliveries a dups-ok session accumulates
// before lazily acknowledging them.
const dupsOKBatch = 10

// session implements jms.Session.
type session struct {
	conn *connection
	b    *Broker
	id   string

	transacted bool
	ackMode    jms.AckMode

	mu         sync.Mutex
	txCount    int64
	txID       string
	txSends    []stagedSend
	txReceives []deliveredEntry
	unacked    []deliveredEntry
	producers  map[*producer]struct{}
	consumers  map[*consumer]struct{}
	closed     bool
}

var _ jms.Session = (*session)(nil)

// Transacted implements jms.Session.
func (s *session) Transacted() bool { return s.transacted }

// AckMode implements jms.Session.
func (s *session) AckMode() jms.AckMode { return s.ackMode }

// CurrentTxID returns the identifier of the session's current
// transaction, assigning one if needed. It is exposed so the test
// harness can log commit/abort events against the operations they
// contain. Returns "" for non-transacted sessions.
func (s *session) CurrentTxID() string {
	if !s.transacted {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.currentTxLocked()
}

func (s *session) currentTxLocked() string {
	if s.txID == "" {
		s.txCount++
		s.txID = fmt.Sprintf("%s-tx%d", s.id, s.txCount)
	}
	return s.txID
}

// CreateProducer implements jms.Session.
func (s *session) CreateProducer(dest jms.Destination) (jms.Producer, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, jms.ErrClosed
	}
	p := &producer{sess: s, dest: dest}
	s.producers[p] = struct{}{}
	return p, nil
}

// CreateConsumer implements jms.Session.
func (s *session) CreateConsumer(dest jms.Destination) (jms.Consumer, error) {
	return s.CreateConsumerWithSelector(dest, "")
}

// CreateConsumerWithSelector implements jms.Session.
func (s *session) CreateConsumerWithSelector(dest jms.Destination, selectorExpr string) (jms.Consumer, error) {
	if dest == nil {
		return nil, fmt.Errorf("%w: nil destination", jms.ErrInvalidDestination)
	}
	sel, err := parseSelector(selectorExpr)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, jms.ErrClosed
	}
	s.mu.Unlock()

	id := s.b.nextConsumerID()
	var (
		mb       *mailbox
		sub      *subscription
		endpoint string
		queueSel *selector.Selector
	)
	switch dest.Kind() {
	case jms.KindQueue:
		s.b.mu.Lock()
		if s.b.closed || s.b.crashed {
			s.b.mu.Unlock()
			return nil, fmt.Errorf("broker %s: %w", s.b.name, jms.ErrClosed)
		}
		if owner, isTemp := s.b.tempOwners[dest.Name()]; isTemp && owner != s.conn {
			s.b.mu.Unlock()
			return nil, fmt.Errorf("%w: temporary queue %q belongs to another connection",
				jms.ErrInvalidDestination, dest.Name())
		}
		mb = s.b.queueLocked(dest.Name())
		s.b.mu.Unlock()
		endpoint = trace.EndpointForQueue(dest.Name())
		queueSel = sel // queue receivers filter at pop time
	case jms.KindTopic:
		sub, err = s.b.openNonDurable(dest.Name(), id, sel, selectorExpr)
		if err != nil {
			return nil, err
		}
		mb = sub.mb
		endpoint = sub.endpoint
	default:
		return nil, fmt.Errorf("%w: kind %v", jms.ErrInvalidDestination, dest.Kind())
	}

	c := newConsumer(s, dest, id, endpoint, mb, sub, queueSel)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		if sub != nil {
			s.b.closeNonDurable(sub)
		}
		return nil, jms.ErrClosed
	}
	s.consumers[c] = struct{}{}
	s.mu.Unlock()
	return c, nil
}

// CreateDurableSubscriber implements jms.Session.
func (s *session) CreateDurableSubscriber(topic jms.Topic, name string) (jms.Consumer, error) {
	return s.CreateDurableSubscriberWithSelector(topic, name, "")
}

// CreateDurableSubscriberWithSelector implements jms.Session.
func (s *session) CreateDurableSubscriberWithSelector(topic jms.Topic, name, selectorExpr string) (jms.Consumer, error) {
	sel, err := parseSelector(selectorExpr)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, jms.ErrClosed
	}
	s.mu.Unlock()
	clientID := s.conn.ClientID()
	if clientID == "" {
		return nil, jms.ErrNoClientID
	}
	if name == "" {
		return nil, fmt.Errorf("%w: empty subscription name", jms.ErrInvalidArgument)
	}
	sub, err := s.b.openDurable(clientID, name, topic.Name(), sel, selectorExpr)
	if err != nil {
		return nil, err
	}
	c := newConsumer(s, topic, s.b.nextConsumerID(), sub.endpoint, sub.mb, sub, nil)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.b.deactivateDurable(sub)
		return nil, jms.ErrClosed
	}
	s.consumers[c] = struct{}{}
	s.mu.Unlock()
	return c, nil
}

// CreateTemporaryQueue implements jms.Session.
func (s *session) CreateTemporaryQueue() (jms.Queue, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return "", jms.ErrClosed
	}
	s.mu.Unlock()
	name, err := s.b.createTempQueue(s.conn)
	if err != nil {
		return "", err
	}
	s.conn.mu.Lock()
	if s.conn.closed {
		s.conn.mu.Unlock()
		s.b.deleteTempQueue(name)
		return "", jms.ErrClosed
	}
	s.conn.tempQueues = append(s.conn.tempQueues, name)
	s.conn.mu.Unlock()
	return jms.Queue(name), nil
}

// CreateBrowser implements jms.Session.
func (s *session) CreateBrowser(queue jms.Queue, selectorExpr string) (jms.Browser, error) {
	sel, err := parseSelector(selectorExpr)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, jms.ErrClosed
	}
	s.mu.Unlock()
	s.b.mu.Lock()
	if s.b.closed || s.b.crashed {
		s.b.mu.Unlock()
		return nil, fmt.Errorf("broker %s: %w", s.b.name, jms.ErrClosed)
	}
	mb := s.b.queueLocked(queue.Name())
	s.b.mu.Unlock()
	return &browser{sess: s, queue: queue, mb: mb, sel: sel}, nil
}

// browser implements jms.Browser over a queue mailbox snapshot.
type browser struct {
	sess  *session
	queue jms.Queue
	mb    *mailbox
	sel   *selector.Selector

	mu     sync.Mutex
	closed bool
}

var _ jms.Browser = (*browser)(nil)

// Queue implements jms.Browser.
func (b *browser) Queue() jms.Queue { return b.queue }

// Enumerate implements jms.Browser.
func (b *browser) Enumerate() ([]*jms.Message, error) {
	b.mu.Lock()
	closed := b.closed
	b.mu.Unlock()
	if closed || b.sess.isClosed() {
		return nil, jms.ErrClosed
	}
	var match func(*jms.Message) bool
	if b.sel != nil {
		match = b.sel.Matches
	}
	return b.mb.snapshot(b.sess.b.clk.Now(), match), nil
}

// Close implements jms.Browser.
func (b *browser) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.closed = true
	return nil
}

// parseSelector compiles a selector expression, mapping syntax errors
// to jms.ErrInvalidSelector. An empty expression yields nil.
func parseSelector(expr string) (*selector.Selector, error) {
	sel, err := selector.Parse(expr)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", jms.ErrInvalidSelector, err)
	}
	if sel.IsEmpty() {
		return nil, nil
	}
	return sel, nil
}

// Unsubscribe implements jms.Session.
func (s *session) Unsubscribe(name string) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return jms.ErrClosed
	}
	s.mu.Unlock()
	clientID := s.conn.ClientID()
	if clientID == "" {
		return jms.ErrNoClientID
	}
	return s.b.unsubscribeDurable(clientID, name)
}

// Commit implements jms.Session.
func (s *session) Commit() error {
	if !s.transacted {
		return jms.ErrNotTransacted
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return jms.ErrClosed
	}
	sends := s.txSends
	receives := s.txReceives
	s.txSends = nil
	s.txReceives = nil
	s.txID = ""
	s.mu.Unlock()

	// Sends enter the provider at commit time (Definition 1: a
	// transactional message is "sent" when its transaction commits).
	for _, st := range sends {
		if err := s.b.send(st.dest, st.msg, st.opts); err != nil {
			return fmt.Errorf("broker: commit sending to %v: %w", st.dest, err)
		}
	}
	if err := s.b.ackEntries(receives); err != nil {
		return err
	}
	return nil
}

// Rollback implements jms.Session.
func (s *session) Rollback() error {
	if !s.transacted {
		return jms.ErrNotTransacted
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return jms.ErrClosed
	}
	receives := s.txReceives
	s.txSends = nil
	s.txReceives = nil
	s.txID = ""
	s.mu.Unlock()
	s.redeliver(receives)
	return nil
}

// redeliver returns delivered-but-unacknowledged entries to their
// mailboxes, marked redelivered, preserving delivery order.
func (s *session) redeliver(entries []deliveredEntry) {
	byMailbox := map[*mailbox][]entry{}
	var order []*mailbox
	for _, d := range entries {
		d.e.msg.Redelivered = true
		if _, seen := byMailbox[d.mb]; !seen {
			order = append(order, d.mb)
		}
		byMailbox[d.mb] = append(byMailbox[d.mb], d.e)
	}
	for _, mb := range order {
		mb.pushFront(byMailbox[mb])
		s.b.met.backlog.Add(int64(len(byMailbox[mb])))
	}
}

// Acknowledge implements jms.Session.
func (s *session) Acknowledge() error {
	if s.transacted {
		return jms.ErrTransacted
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return jms.ErrClosed
	}
	unacked := s.unacked
	s.unacked = nil
	s.mu.Unlock()
	// Batched: all staged removes share one group commit instead of
	// paying one blocking WAL round trip per message.
	return s.b.ackEntries(unacked)
}

// Recover implements jms.Session.
func (s *session) Recover() error {
	if s.transacted {
		return jms.ErrTransacted
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return jms.ErrClosed
	}
	unacked := s.unacked
	s.unacked = nil
	s.mu.Unlock()
	s.redeliver(unacked)
	return nil
}

// recordDelivery books one delivered entry according to the session's
// acknowledgement discipline. Called on the consumer's goroutine after a
// successful pop.
func (s *session) recordDelivery(d deliveredEntry) error {
	s.mu.Lock()
	if s.transacted {
		s.currentTxLocked()
		s.txReceives = append(s.txReceives, d)
		s.mu.Unlock()
		return nil
	}
	switch s.ackMode {
	case jms.AckAuto:
		s.mu.Unlock()
		return s.b.ackEntry(d.endpoint, d.e)
	case jms.AckDupsOK:
		s.unacked = append(s.unacked, d)
		if len(s.unacked) < dupsOKBatch {
			s.mu.Unlock()
			return nil
		}
		batch := s.unacked
		s.unacked = nil
		s.mu.Unlock()
		return s.b.ackEntries(batch)
	default: // AckClient
		s.unacked = append(s.unacked, d)
		s.mu.Unlock()
		return nil
	}
}

// Close implements jms.Session.
func (s *session) Close() error {
	err := s.closeGraceful()
	s.conn.removeSession(s)
	return err
}

// closeGraceful closes the session with JMS semantics: in-progress
// transactions roll back; client-ack unacknowledged messages are
// redelivered; dups-ok lazy acknowledgements complete.
func (s *session) closeGraceful() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	consumers := make([]*consumer, 0, len(s.consumers))
	for c := range s.consumers {
		consumers = append(consumers, c)
	}
	s.consumers = map[*consumer]struct{}{}
	s.producers = map[*producer]struct{}{}
	txReceives := s.txReceives
	unacked := s.unacked
	s.txSends = nil
	s.txReceives = nil
	s.unacked = nil
	s.mu.Unlock()

	for _, c := range consumers {
		c.closeInternal(true)
	}
	var firstErr error
	if s.transacted {
		s.redeliver(txReceives)
	} else {
		switch s.ackMode {
		case jms.AckClient:
			s.redeliver(unacked)
		default:
			if err := s.b.ackEntries(unacked); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

// forceClose abandons the session without side effects (broker crash).
func (s *session) forceClose() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	consumers := make([]*consumer, 0, len(s.consumers))
	for c := range s.consumers {
		consumers = append(consumers, c)
	}
	s.consumers = map[*consumer]struct{}{}
	s.producers = map[*producer]struct{}{}
	s.txSends = nil
	s.txReceives = nil
	s.unacked = nil
	s.mu.Unlock()
	for _, c := range consumers {
		c.closeInternal(false)
	}
}

func (s *session) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

func (s *session) removeConsumer(c *consumer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.consumers, c)
}

// producer implements jms.Producer.
type producer struct {
	sess *session
	dest jms.Destination

	mu     sync.Mutex
	closed bool
}

var (
	_ jms.Producer      = (*producer)(nil)
	_ jms.AsyncProducer = (*producer)(nil)
)

// Destination implements jms.Producer.
func (p *producer) Destination() jms.Destination { return p.dest }

// Send implements jms.Producer.
func (p *producer) Send(msg *jms.Message, opts jms.SendOptions) error {
	if p.dest == nil {
		return fmt.Errorf("%w: unidentified producer requires SendTo", jms.ErrInvalidDestination)
	}
	return p.SendTo(p.dest, msg, opts)
}

// SendTo implements jms.Producer.
func (p *producer) SendTo(dest jms.Destination, msg *jms.Message, opts jms.SendOptions) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return jms.ErrClosed
	}
	p.mu.Unlock()
	if dest == nil {
		return fmt.Errorf("%w: nil destination", jms.ErrInvalidDestination)
	}
	if err := opts.Validate(); err != nil {
		return err
	}
	s := p.sess
	if s.isClosed() {
		return jms.ErrClosed
	}
	if s.transacted {
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return jms.ErrClosed
		}
		s.currentTxLocked()
		s.txSends = append(s.txSends, stagedSend{dest: dest, msg: msg.Clone(), opts: opts})
		s.mu.Unlock()
		return nil
	}
	return s.b.send(dest, msg, opts)
}

// SendAsync implements jms.AsyncProducer: the message is stamped,
// persisted-in-order and enqueued before return, with the durability
// wait handed back as the completion. On a transacted session sends
// are buffered until commit exactly as Send does, so the completion is
// immediate.
func (p *producer) SendAsync(msg *jms.Message, opts jms.SendOptions) (jms.Completion, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, jms.ErrClosed
	}
	p.mu.Unlock()
	if p.dest == nil {
		return nil, fmt.Errorf("%w: unidentified producer requires SendTo", jms.ErrInvalidDestination)
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	s := p.sess
	if s.isClosed() {
		return nil, jms.ErrClosed
	}
	if s.transacted {
		if err := p.SendTo(p.dest, msg, opts); err != nil {
			return nil, err
		}
		return jms.CompletedSend, nil
	}
	wait, err := s.b.sendStaged(p.dest, msg, opts)
	if err != nil {
		return nil, err
	}
	return jms.Completion(wait), nil
}

// Close implements jms.Producer.
func (p *producer) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.closed = true
	return nil
}

// consumer implements jms.Consumer.
type consumer struct {
	sess     *session
	dest     jms.Destination
	id       string
	endpoint string
	mb       *mailbox
	sub      *subscription      // nil for queue receivers
	sel      *selector.Selector // queue-receiver selector, nil for none

	mu         sync.Mutex
	listener   jms.Listener
	listenerWG sync.WaitGroup
	listenStop chan struct{}
	closed     bool
	done       chan struct{}
}

func newConsumer(s *session, dest jms.Destination, id, endpoint string, mb *mailbox, sub *subscription, sel *selector.Selector) *consumer {
	return &consumer{
		sess:     s,
		dest:     dest,
		id:       id,
		endpoint: endpoint,
		mb:       mb,
		sub:      sub,
		sel:      sel,
		done:     make(chan struct{}),
	}
}

var _ jms.Consumer = (*consumer)(nil)

// Destination implements jms.Consumer.
func (c *consumer) Destination() jms.Destination { return c.dest }

// EndpointID implements jms.Consumer.
func (c *consumer) EndpointID() string { return c.endpoint }

// Receive implements jms.Consumer.
func (c *consumer) Receive(timeout time.Duration) (*jms.Message, error) {
	return c.receive(timeout, false)
}

// ReceiveNoWait implements jms.Consumer.
func (c *consumer) ReceiveNoWait() (*jms.Message, error) {
	return c.receive(0, true)
}

func (c *consumer) receive(timeout time.Duration, noWait bool) (*jms.Message, error) {
	b := c.sess.b
	var deadline time.Time
	hasDeadline := timeout > 0
	if hasDeadline {
		deadline = b.clk.Now().Add(timeout)
	}
	for {
		if c.isClosed() || c.sess.isClosed() {
			return nil, jms.ErrClosed
		}
		started, startWake := c.sess.conn.startState()
		if started {
			var match func(*jms.Message) bool
			if c.sel != nil {
				match = c.sel.Matches
			}
			now := b.clk.Now()
			e, dropped, ok := c.mb.tryPop(now, match)
			b.dropExpired(c.endpoint, dropped)
			if ok {
				b.met.backlog.Dec()
				b.met.delivered.Inc()
				b.met.sojourn.ObserveDuration(now.Sub(e.enqueuedAt))
				b.spans.Deliver(e.msg.ID, c.endpoint, now, e.msg.Redelivered)
				if e.rec != 0 {
					// Mark delivery in stable storage before handing the
					// message over, so a crash with the acknowledgement
					// still pending redelivers it flagged JMSRedelivered.
					if err := b.stable.MarkDelivered(c.endpoint, e.rec); err != nil {
						return nil, err
					}
				}
				b.throttleDeliver()
				if lat := b.deliveryLatency(); lat > 0 {
					avail := e.enqueuedAt.Add(lat)
					if now := b.clk.Now(); now.Before(avail) {
						b.clk.Sleep(avail.Sub(now))
					}
				}
				if err := c.sess.recordDelivery(deliveredEntry{endpoint: c.endpoint, mb: c.mb, e: e}); err != nil {
					return nil, err
				}
				return e.msg.Clone(), nil
			}
		}
		if noWait {
			return nil, nil
		}
		var timer <-chan time.Time
		if hasDeadline {
			remaining := deadline.Sub(b.clk.Now())
			if remaining <= 0 {
				return nil, nil
			}
			timer = b.clk.After(remaining)
		}
		mbWake := c.mb.waitChan()
		select {
		case <-c.done:
			return nil, jms.ErrClosed
		case <-mbWake:
		case <-startWake:
		case <-timer:
			return nil, nil
		}
	}
}

// SetListener implements jms.Consumer. The listener runs on a dedicated
// goroutine that is joined when the listener is replaced or the consumer
// closed.
func (c *consumer) SetListener(l jms.Listener) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return jms.ErrClosed
	}
	if c.listenStop != nil {
		stop := c.listenStop
		c.listenStop = nil
		c.mu.Unlock()
		close(stop)
		c.listenerWG.Wait()
		c.mu.Lock()
	}
	c.listener = l
	if l == nil {
		c.mu.Unlock()
		return nil
	}
	stop := make(chan struct{})
	c.listenStop = stop
	c.listenerWG.Add(1)
	c.mu.Unlock()
	go c.dispatch(l, stop)
	return nil
}

// dispatch pulls messages and invokes the listener until stopped.
func (c *consumer) dispatch(l jms.Listener, stop chan struct{}) {
	defer c.listenerWG.Done()
	const poll = 50 * time.Millisecond
	for {
		select {
		case <-stop:
			return
		case <-c.done:
			return
		default:
		}
		msg, err := c.receive(poll, false)
		if err != nil {
			return
		}
		if msg != nil {
			l(msg)
		}
	}
}

// Close implements jms.Consumer.
func (c *consumer) Close() error {
	c.closeInternal(true)
	c.sess.removeConsumer(c)
	return nil
}

// closeInternal tears the consumer down. graceful distinguishes a normal
// close (subscription lifecycle honoured) from crash abandonment.
func (c *consumer) closeInternal(graceful bool) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	close(c.done)
	stop := c.listenStop
	c.listenStop = nil
	c.mu.Unlock()
	if stop != nil {
		close(stop)
	}
	c.listenerWG.Wait()
	if c.sub != nil && graceful {
		if c.sub.durable {
			c.sess.b.deactivateDurable(c.sub)
		} else {
			c.sess.b.closeNonDurable(c.sub)
		}
	}
}

func (c *consumer) isClosed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}
