package broker

import (
	"fmt"
	"time"
)

// Profile shapes a broker's performance characteristics so the harness
// can be exercised against providers with markedly different behaviour,
// as the paper observed across MQSeries, WebLogic and SonicMQ
// ("performance differences of a factor of 10 in some cases",
// footnote 9). Send and delivery are modelled as service pipelines: a
// caller blocks for the pipeline's service time (JMS sends are
// synchronous calls — the paper's footnote 6 notes some providers
// implement delivery "via a series of synchronous calls").
//
// Two parameter regimes reproduce the two published throughput shapes:
//
//   - Provider I (Figure 2): SendRate == DeliverRate and no backlog
//     penalty. Producers are back-pressured at exactly the sustainable
//     delivery rate, so publisher and subscriber curves plateau
//     together.
//   - Provider II (Figure 3): SendRate > DeliverRate plus a per-message
//     BacklogPenalty. The broker accepts messages faster than it can
//     deliver them; the growing backlog makes each delivery more
//     expensive (paging, index pressure), so subscriber throughput
//     *drops* once the system is over-stressed.
type Profile struct {
	// Name labels the profile in reports.
	Name string
	// SendRate is the send/publish service rate in messages per second;
	// 0 means unlimited.
	SendRate float64
	// SendBurst is the token-bucket depth of the send path.
	SendBurst float64
	// DeliverRate is the delivery service rate in messages per second;
	// 0 means unlimited.
	DeliverRate float64
	// DeliverBurst is the token-bucket depth of the delivery path.
	DeliverBurst float64
	// BacklogPenalty adds this much service time to each delivery per
	// message of broker-wide backlog, modelling thrash under overload.
	BacklogPenalty time.Duration
	// BaseLatency is the minimum end-to-end delivery latency.
	BaseLatency time.Duration
	// LatencyJitter adds up to this much uniformly distributed extra
	// latency per delivery.
	LatencyJitter time.Duration
}

// Validate reports whether the profile is well formed.
func (p Profile) Validate() error {
	if p.SendRate < 0 || p.DeliverRate < 0 {
		return fmt.Errorf("broker: negative rate in profile %q", p.Name)
	}
	if p.SendRate > 0 && p.SendBurst <= 0 {
		return fmt.Errorf("broker: profile %q has send rate but no burst", p.Name)
	}
	if p.DeliverRate > 0 && p.DeliverBurst <= 0 {
		return fmt.Errorf("broker: profile %q has deliver rate but no burst", p.Name)
	}
	if p.BacklogPenalty < 0 || p.BaseLatency < 0 || p.LatencyJitter < 0 {
		return fmt.Errorf("broker: negative duration in profile %q", p.Name)
	}
	return nil
}

// Unlimited is the profile used for functional testing: no rate shaping
// at all.
func Unlimited() Profile {
	return Profile{Name: "unlimited"}
}

// ProviderI reproduces the Figure 2 shape: a modest provider whose send
// path is back-pressured at its delivery rate, so publisher and
// subscriber throughput both plateau at the sustainable rate (≈45
// msgs/s in the paper) as demand rises.
func ProviderI() Profile {
	return Profile{
		Name:         "provider-I",
		SendRate:     45,
		SendBurst:    5,
		DeliverRate:  45,
		DeliverBurst: 5,
		BaseLatency:  2 * time.Millisecond,
	}
}

// ProviderII reproduces the Figure 3 shape: a faster provider (peak in
// the 150–180 msgs/s region, as in the paper) with no ingress flow
// control — sends are accepted as fast as clients offer them, so
// publisher throughput tracks demand — and a delivery cost that grows
// with the backlog, so subscriber throughput *drops* once the system is
// over-stressed.
func ProviderII() Profile {
	return Profile{
		Name:           "provider-II",
		DeliverRate:    150,
		DeliverBurst:   5,
		BacklogPenalty: 300 * time.Microsecond,
		BaseLatency:    time.Millisecond,
	}
}

// ProviderA is the fast provider of the footnote-9 three-way comparison.
func ProviderA() Profile {
	return Profile{
		Name:         "provider-A",
		SendRate:     500,
		SendBurst:    25,
		DeliverRate:  500,
		DeliverBurst: 25,
		BaseLatency:  500 * time.Microsecond,
	}
}

// ProviderB is the mid-range provider of the three-way comparison.
func ProviderB() Profile {
	return Profile{
		Name:         "provider-B",
		SendRate:     150,
		SendBurst:    10,
		DeliverRate:  150,
		DeliverBurst: 10,
		BaseLatency:  2 * time.Millisecond,
	}
}

// ProviderC is the slow provider of the three-way comparison — roughly a
// factor of 10 below ProviderA, as the paper reports.
func ProviderC() Profile {
	return Profile{
		Name:         "provider-C",
		SendRate:     50,
		SendBurst:    5,
		DeliverRate:  50,
		DeliverBurst: 5,
		BaseLatency:  5 * time.Millisecond,
	}
}

// ProfileByName looks up a built-in profile for CLI use.
func ProfileByName(name string) (Profile, error) {
	switch name {
	case "unlimited", "":
		return Unlimited(), nil
	case "provider-I", "provider-i", "I":
		return ProviderI(), nil
	case "provider-II", "provider-ii", "II":
		return ProviderII(), nil
	case "provider-A", "A":
		return ProviderA(), nil
	case "provider-B", "B":
		return ProviderB(), nil
	case "provider-C", "C":
		return ProviderC(), nil
	default:
		return Profile{}, fmt.Errorf("broker: unknown profile %q", name)
	}
}
