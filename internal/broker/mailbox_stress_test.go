package broker

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"jmsharness/internal/jms"
)

// stressMsg builds a message with an ID encoding its producer and
// per-producer sequence number, so consumers can verify FIFO order.
func stressMsg(producer, seq int, prio jms.Priority) *jms.Message {
	m := jms.NewTextMessage("stress")
	m.ID = fmt.Sprintf("p%d-%d", producer, seq)
	m.Priority = prio
	return m
}

// TestMailboxConcurrentStress hammers one mailbox with parallel pushers
// and poppers across all ten priorities (run under -race in ci). It
// asserts the mailbox loses nothing, duplicates nothing, and preserves
// FIFO order per (producer, priority) stream as seen by any one
// consumer — the ordering the per-priority buckets promise and
// conformance Property 3 checks end to end. (Cross-consumer order is
// unconstrained, as in JMS with competing consumers.)
func TestMailboxConcurrentStress(t *testing.T) {
	mb := newMailbox(0)
	const producers = 8
	const perProducer = 2000
	const consumers = 8

	producersDone := make(chan struct{})
	var pwg sync.WaitGroup
	for p := 0; p < producers; p++ {
		pwg.Add(1)
		go func(p int) {
			defer pwg.Done()
			for i := 0; i < perProducer; i++ {
				prio := jms.Priority(p % jms.NumPriorities)
				mb.push(entry{msg: stressMsg(p, i, prio), enqueuedAt: time.Now()})
			}
		}(p)
	}
	go func() {
		pwg.Wait()
		close(producersDone)
	}()

	var mu sync.Mutex
	received := map[string]int{}
	var cwg sync.WaitGroup
	for c := 0; c < consumers; c++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			lastSeq := map[string]int{} // "producer/priority" -> last seq seen
			for {
				e, dropped, ok := mb.tryPop(time.Now(), nil)
				if len(dropped) != 0 {
					t.Errorf("unexpected expiry drops: %d", len(dropped))
					return
				}
				if !ok {
					select {
					case <-producersDone:
						if mb.pending() == 0 {
							return
						}
					case <-mb.waitChan():
					}
					continue
				}
				var prod, seq int
				if _, err := fmt.Sscanf(e.msg.ID, "p%d-%d", &prod, &seq); err != nil {
					t.Errorf("bad message ID %q: %v", e.msg.ID, err)
					return
				}
				key := fmt.Sprintf("%d/%d", prod, e.msg.Priority)
				if last, seen := lastSeq[key]; seen && seq <= last {
					t.Errorf("stream %s delivered out of order: %d after %d", key, seq, last)
					return
				}
				lastSeq[key] = seq
				mu.Lock()
				received[e.msg.ID]++
				mu.Unlock()
			}
		}()
	}
	cwg.Wait()
	if t.Failed() {
		return
	}

	if got, want := len(received), producers*perProducer; got != want {
		t.Fatalf("received %d distinct messages, want %d", got, want)
	}
	for id, n := range received {
		if n != 1 {
			t.Fatalf("message %s delivered %d times", id, n)
		}
	}
	if mb.pending() != 0 {
		t.Fatalf("mailbox still holds %d entries", mb.pending())
	}
}

// TestMailboxPushFrontUnderLoad interleaves redelivery (pushFront, as
// session rollback uses) with concurrent pushes and pops and verifies
// conservation: every entry that went in is delivered exactly once,
// even while entries bounce back to the head of the queue.
func TestMailboxPushFrontUnderLoad(t *testing.T) {
	mb := newMailbox(0)
	const total = 5000

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < total; i++ {
			mb.push(entry{msg: stressMsg(0, i, jms.PriorityDefault), enqueuedAt: time.Now()})
		}
	}()

	received := map[string]int{}
	pops := 0
	wg.Add(1)
	go func() {
		defer wg.Done()
		for len(received) < total {
			e, _, ok := mb.tryPop(time.Now(), nil)
			if !ok {
				select {
				case <-mb.waitChan():
				case <-time.After(50 * time.Millisecond):
				}
				continue
			}
			pops++
			if pops%7 == 0 {
				// "Roll back" this delivery: the entry returns to the
				// front and must come out again later.
				mb.pushFront([]entry{e})
				continue
			}
			received[e.msg.ID]++
		}
	}()
	wg.Wait()

	if len(received) != total {
		t.Fatalf("received %d distinct messages, want %d", len(received), total)
	}
	for id, n := range received {
		if n != 1 {
			t.Fatalf("message %s delivered %d times", id, n)
		}
	}
}

// TestMailboxCompaction pushes and pops through far more entries than
// stay resident, ensuring the head-indexed buckets reclaim their dead
// prefix (the pop path would otherwise leak one slot per message).
func TestMailboxCompaction(t *testing.T) {
	mb := newMailbox(0)
	const rounds = 10000
	for i := 0; i < rounds; i++ {
		mb.push(entry{msg: stressMsg(0, i, jms.PriorityDefault), enqueuedAt: time.Now()})
		if i%2 == 1 { // pop every other push, building a standing backlog
			if _, _, ok := mb.tryPop(time.Now(), nil); !ok {
				t.Fatalf("pop %d: mailbox unexpectedly empty", i)
			}
		}
	}
	mb.mu.Lock()
	q := &mb.buckets[jms.PriorityDefault]
	live, backing, head := q.size(), len(q.items), q.head
	mb.mu.Unlock()
	if live != rounds/2 {
		t.Fatalf("queue holds %d entries, want %d", live, rounds/2)
	}
	if head >= 64 && head*2 >= backing {
		t.Fatalf("dead prefix not reclaimed: head=%d backing=%d", head, backing)
	}
}
