package broker

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"jmsharness/internal/jms"
	"jmsharness/internal/store"
)

// newTestBroker returns an unlimited-profile broker backed by an
// in-memory stable store.
func newTestBroker(t *testing.T) *Broker {
	t.Helper()
	b, err := New(Options{Name: "test"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = b.Close() })
	return b
}

// openSession creates a started connection and a session on b.
func openSession(t *testing.T, b *Broker, transacted bool, ack jms.AckMode) (jms.Connection, jms.Session) {
	t.Helper()
	conn, err := b.CreateConnection()
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Start(); err != nil {
		t.Fatal(err)
	}
	sess, err := conn.CreateSession(transacted, ack)
	if err != nil {
		t.Fatal(err)
	}
	return conn, sess
}

func mustSend(t *testing.T, p jms.Producer, text string, opts jms.SendOptions) {
	t.Helper()
	if err := p.Send(jms.NewTextMessage(text), opts); err != nil {
		t.Fatalf("send %q: %v", text, err)
	}
}

func mustReceiveText(t *testing.T, c jms.Consumer, timeout time.Duration) string {
	t.Helper()
	msg, err := c.Receive(timeout)
	if err != nil {
		t.Fatalf("receive: %v", err)
	}
	if msg == nil {
		t.Fatal("receive timed out")
	}
	body, ok := msg.Body.(jms.TextBody)
	if !ok {
		t.Fatalf("unexpected body %T", msg.Body)
	}
	return string(body)
}

func TestQueueSendReceive(t *testing.T) {
	b := newTestBroker(t)
	_, sess := openSession(t, b, false, jms.AckAuto)
	q := jms.Queue("orders")
	p, err := sess.CreateProducer(q)
	if err != nil {
		t.Fatal(err)
	}
	c, err := sess.CreateConsumer(q)
	if err != nil {
		t.Fatal(err)
	}
	mustSend(t, p, "hello", jms.DefaultSendOptions())
	if got := mustReceiveText(t, c, time.Second); got != "hello" {
		t.Errorf("got %q", got)
	}
}

func TestQueueWaitsForReceiver(t *testing.T) {
	b := newTestBroker(t)
	_, sess := openSession(t, b, false, jms.AckAuto)
	q := jms.Queue("parking")
	p, err := sess.CreateProducer(q)
	if err != nil {
		t.Fatal(err)
	}
	mustSend(t, p, "waiting", jms.DefaultSendOptions())
	// Message waits at the queue until a receiver appears.
	c, err := sess.CreateConsumer(q)
	if err != nil {
		t.Fatal(err)
	}
	if got := mustReceiveText(t, c, time.Second); got != "waiting" {
		t.Errorf("got %q", got)
	}
}

func TestSendAssignsHeaders(t *testing.T) {
	b := newTestBroker(t)
	_, sess := openSession(t, b, false, jms.AckAuto)
	p, err := sess.CreateProducer(jms.Queue("q"))
	if err != nil {
		t.Fatal(err)
	}
	msg := jms.NewTextMessage("x")
	opts := jms.SendOptions{Mode: jms.NonPersistent, Priority: 7, TTL: time.Hour}
	before := time.Now()
	if err := p.Send(msg, opts); err != nil {
		t.Fatal(err)
	}
	if msg.ID == "" || !strings.HasPrefix(msg.ID, "ID:test-") {
		t.Errorf("ID = %q", msg.ID)
	}
	if msg.Mode != jms.NonPersistent || msg.Priority != 7 {
		t.Errorf("headers = %v/%v", msg.Mode, msg.Priority)
	}
	if msg.Timestamp.Before(before) {
		t.Error("timestamp not assigned")
	}
	if !msg.Expiration.Equal(msg.Timestamp.Add(time.Hour)) {
		t.Errorf("expiration = %v", msg.Expiration)
	}
}

func TestSendValidation(t *testing.T) {
	b := newTestBroker(t)
	_, sess := openSession(t, b, false, jms.AckAuto)
	p, err := sess.CreateProducer(jms.Queue("q"))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Send(jms.NewTextMessage("x"), jms.SendOptions{Mode: 9, Priority: 4}); err == nil {
		t.Error("invalid mode accepted")
	}
	if err := p.Send(jms.NewTextMessage("x"), jms.SendOptions{Mode: jms.Persistent, Priority: 14}); err == nil {
		t.Error("invalid priority accepted")
	}
}

func TestUnidentifiedProducer(t *testing.T) {
	b := newTestBroker(t)
	_, sess := openSession(t, b, false, jms.AckAuto)
	p, err := sess.CreateProducer(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Send(jms.NewTextMessage("x"), jms.DefaultSendOptions()); err == nil {
		t.Error("Send on unidentified producer should fail")
	}
	c, err := sess.CreateConsumer(jms.Queue("explicit"))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.SendTo(jms.Queue("explicit"), jms.NewTextMessage("y"), jms.DefaultSendOptions()); err != nil {
		t.Fatal(err)
	}
	if got := mustReceiveText(t, c, time.Second); got != "y" {
		t.Errorf("got %q", got)
	}
}

func TestPubSubFanout(t *testing.T) {
	b := newTestBroker(t)
	_, sess := openSession(t, b, false, jms.AckAuto)
	topic := jms.Topic("news")
	c1, err := sess.CreateConsumer(topic)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := sess.CreateConsumer(topic)
	if err != nil {
		t.Fatal(err)
	}
	p, err := sess.CreateProducer(topic)
	if err != nil {
		t.Fatal(err)
	}
	mustSend(t, p, "flash", jms.DefaultSendOptions())
	if got := mustReceiveText(t, c1, time.Second); got != "flash" {
		t.Errorf("c1 got %q", got)
	}
	if got := mustReceiveText(t, c2, time.Second); got != "flash" {
		t.Errorf("c2 got %q", got)
	}
	if c1.EndpointID() == c2.EndpointID() {
		t.Error("non-durable subscribers must have distinct endpoints")
	}
}

func TestPubSubNoSubscribersDropsMessage(t *testing.T) {
	b := newTestBroker(t)
	_, sess := openSession(t, b, false, jms.AckAuto)
	p, err := sess.CreateProducer(jms.Topic("void"))
	if err != nil {
		t.Fatal(err)
	}
	mustSend(t, p, "unheard", jms.DefaultSendOptions())
	if b.Stats().Backlog != 0 {
		t.Errorf("Backlog = %d", b.Stats().Backlog)
	}
	// A subscriber joining later gets nothing.
	c, err := sess.CreateConsumer(jms.Topic("void"))
	if err != nil {
		t.Fatal(err)
	}
	msg, err := c.Receive(50 * time.Millisecond)
	if err != nil || msg != nil {
		t.Errorf("late subscriber got %v, %v", msg, err)
	}
}

func TestNonDurableSubscriberMissesWhileClosed(t *testing.T) {
	b := newTestBroker(t)
	_, sess := openSession(t, b, false, jms.AckAuto)
	topic := jms.Topic("t")
	c, err := sess.CreateConsumer(topic)
	if err != nil {
		t.Fatal(err)
	}
	p, err := sess.CreateProducer(topic)
	if err != nil {
		t.Fatal(err)
	}
	mustSend(t, p, "one", jms.DefaultSendOptions())
	if got := mustReceiveText(t, c, time.Second); got != "one" {
		t.Fatalf("got %q", got)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	mustSend(t, p, "two", jms.DefaultSendOptions())
	c2, err := sess.CreateConsumer(topic)
	if err != nil {
		t.Fatal(err)
	}
	msg, err := c2.Receive(50 * time.Millisecond)
	if err != nil || msg != nil {
		t.Errorf("message published while closed should be missed, got %v", msg)
	}
}

func TestReceiveTimeout(t *testing.T) {
	b := newTestBroker(t)
	_, sess := openSession(t, b, false, jms.AckAuto)
	c, err := sess.CreateConsumer(jms.Queue("empty"))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	msg, err := c.Receive(50 * time.Millisecond)
	if err != nil || msg != nil {
		t.Fatalf("got %v, %v", msg, err)
	}
	if elapsed := time.Since(start); elapsed < 40*time.Millisecond {
		t.Errorf("returned after %v, should have waited", elapsed)
	}
}

func TestReceiveNoWait(t *testing.T) {
	b := newTestBroker(t)
	_, sess := openSession(t, b, false, jms.AckAuto)
	q := jms.Queue("q")
	c, err := sess.CreateConsumer(q)
	if err != nil {
		t.Fatal(err)
	}
	msg, err := c.ReceiveNoWait()
	if err != nil || msg != nil {
		t.Fatalf("empty queue: got %v, %v", msg, err)
	}
	p, err := sess.CreateProducer(q)
	if err != nil {
		t.Fatal(err)
	}
	mustSend(t, p, "x", jms.DefaultSendOptions())
	msg, err = c.ReceiveNoWait()
	if err != nil || msg == nil {
		t.Fatalf("after send: got %v, %v", msg, err)
	}
}

func TestConnectionStartGatesDelivery(t *testing.T) {
	b := newTestBroker(t)
	conn, err := b.CreateConnection()
	if err != nil {
		t.Fatal(err)
	}
	sess, err := conn.CreateSession(false, jms.AckAuto)
	if err != nil {
		t.Fatal(err)
	}
	q := jms.Queue("gated")
	p, err := sess.CreateProducer(q)
	if err != nil {
		t.Fatal(err)
	}
	c, err := sess.CreateConsumer(q)
	if err != nil {
		t.Fatal(err)
	}
	mustSend(t, p, "x", jms.DefaultSendOptions())
	// Connection not started: delivery must not happen.
	msg, err := c.Receive(50 * time.Millisecond)
	if err != nil || msg != nil {
		t.Fatalf("delivery before Start: %v, %v", msg, err)
	}
	// A blocked receiver must wake when the connection starts.
	got := make(chan string, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		got <- mustReceiveText(t, c, 2*time.Second)
	}()
	time.Sleep(20 * time.Millisecond)
	if err := conn.Start(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if g := <-got; g != "x" {
		t.Errorf("got %q", g)
	}
	// Stop pauses again.
	if err := conn.Stop(); err != nil {
		t.Fatal(err)
	}
	mustSend(t, p, "y", jms.DefaultSendOptions())
	msg, err = c.Receive(50 * time.Millisecond)
	if err != nil || msg != nil {
		t.Fatalf("delivery after Stop: %v, %v", msg, err)
	}
}

func TestPriorityDelivery(t *testing.T) {
	b := newTestBroker(t)
	_, sess := openSession(t, b, false, jms.AckAuto)
	q := jms.Queue("pri")
	p, err := sess.CreateProducer(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, pri := range []jms.Priority{1, 9, 4, 0, 9} {
		msg := jms.NewTextMessage(string(rune('0' + pri)))
		if err := p.Send(msg, jms.SendOptions{Mode: jms.Persistent, Priority: pri}); err != nil {
			t.Fatal(err)
		}
	}
	c, err := sess.CreateConsumer(q)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for i := 0; i < 5; i++ {
		got = append(got, mustReceiveText(t, c, time.Second))
	}
	want := []string{"9", "9", "4", "1", "0"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("delivery order %v, want %v", got, want)
		}
	}
}

func TestFIFOWithinPriority(t *testing.T) {
	b := newTestBroker(t)
	_, sess := openSession(t, b, false, jms.AckAuto)
	q := jms.Queue("fifo")
	p, err := sess.CreateProducer(q)
	if err != nil {
		t.Fatal(err)
	}
	const n = 100
	for i := 0; i < n; i++ {
		mustSend(t, p, string(rune('a'+i%26)), jms.DefaultSendOptions())
	}
	c, err := sess.CreateConsumer(q)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if got := mustReceiveText(t, c, time.Second); got != string(rune('a'+i%26)) {
			t.Fatalf("position %d: got %q", i, got)
		}
	}
}

func TestExpiredMessageNotDelivered(t *testing.T) {
	b := newTestBroker(t)
	_, sess := openSession(t, b, false, jms.AckAuto)
	q := jms.Queue("ttl")
	p, err := sess.CreateProducer(q)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Send(jms.NewTextMessage("dies"), jms.SendOptions{
		Mode: jms.Persistent, Priority: 4, TTL: time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	mustSend(t, p, "lives", jms.DefaultSendOptions())
	time.Sleep(10 * time.Millisecond)
	c, err := sess.CreateConsumer(q)
	if err != nil {
		t.Fatal(err)
	}
	if got := mustReceiveText(t, c, time.Second); got != "lives" {
		t.Errorf("got %q, expired message delivered", got)
	}
	if b.Stats().Expired != 1 {
		t.Errorf("Expired = %d", b.Stats().Expired)
	}
}

func TestTransactedSendCommit(t *testing.T) {
	b := newTestBroker(t)
	_, txSess := openSession(t, b, true, 0)
	_, rxSess := openSession(t, b, false, jms.AckAuto)
	q := jms.Queue("txq")
	p, err := txSess.CreateProducer(q)
	if err != nil {
		t.Fatal(err)
	}
	c, err := rxSess.CreateConsumer(q)
	if err != nil {
		t.Fatal(err)
	}
	mustSend(t, p, "staged", jms.DefaultSendOptions())
	// Not visible before commit.
	msg, err := c.Receive(50 * time.Millisecond)
	if err != nil || msg != nil {
		t.Fatalf("uncommitted send visible: %v, %v", msg, err)
	}
	if err := txSess.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := mustReceiveText(t, c, time.Second); got != "staged" {
		t.Errorf("got %q", got)
	}
}

func TestTransactedSendRollback(t *testing.T) {
	b := newTestBroker(t)
	_, txSess := openSession(t, b, true, 0)
	_, rxSess := openSession(t, b, false, jms.AckAuto)
	q := jms.Queue("txq2")
	p, err := txSess.CreateProducer(q)
	if err != nil {
		t.Fatal(err)
	}
	c, err := rxSess.CreateConsumer(q)
	if err != nil {
		t.Fatal(err)
	}
	mustSend(t, p, "discarded", jms.DefaultSendOptions())
	if err := txSess.Rollback(); err != nil {
		t.Fatal(err)
	}
	msg, err := c.Receive(50 * time.Millisecond)
	if err != nil || msg != nil {
		t.Fatalf("rolled-back send delivered: %v, %v", msg, err)
	}
	// The transaction after rollback works normally.
	mustSend(t, p, "kept", jms.DefaultSendOptions())
	if err := txSess.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := mustReceiveText(t, c, time.Second); got != "kept" {
		t.Errorf("got %q", got)
	}
}

func TestTransactedReceiveRollbackRedelivers(t *testing.T) {
	b := newTestBroker(t)
	_, sendSess := openSession(t, b, false, jms.AckAuto)
	_, rxSess := openSession(t, b, true, 0)
	q := jms.Queue("txrx")
	p, err := sendSess.CreateProducer(q)
	if err != nil {
		t.Fatal(err)
	}
	mustSend(t, p, "m1", jms.DefaultSendOptions())
	c, err := rxSess.CreateConsumer(q)
	if err != nil {
		t.Fatal(err)
	}
	msg, err := c.Receive(time.Second)
	if err != nil || msg == nil {
		t.Fatalf("receive: %v, %v", msg, err)
	}
	if msg.Redelivered {
		t.Error("first delivery marked redelivered")
	}
	if err := rxSess.Rollback(); err != nil {
		t.Fatal(err)
	}
	again, err := c.Receive(time.Second)
	if err != nil || again == nil {
		t.Fatalf("redelivery: %v, %v", again, err)
	}
	if !again.Redelivered {
		t.Error("redelivered message not flagged")
	}
	if again.Body.(jms.TextBody) != "m1" {
		t.Errorf("redelivered wrong message %v", again)
	}
	if err := rxSess.Commit(); err != nil {
		t.Fatal(err)
	}
	final, err := c.Receive(50 * time.Millisecond)
	if err != nil || final != nil {
		t.Fatalf("message delivered after commit: %v", final)
	}
}

func TestCommitOnNonTransactedFails(t *testing.T) {
	b := newTestBroker(t)
	_, sess := openSession(t, b, false, jms.AckAuto)
	if err := sess.Commit(); !errors.Is(err, jms.ErrNotTransacted) {
		t.Errorf("Commit = %v", err)
	}
	if err := sess.Rollback(); !errors.Is(err, jms.ErrNotTransacted) {
		t.Errorf("Rollback = %v", err)
	}
}

func TestAcknowledgeOnTransactedFails(t *testing.T) {
	b := newTestBroker(t)
	_, sess := openSession(t, b, true, 0)
	if err := sess.Acknowledge(); !errors.Is(err, jms.ErrTransacted) {
		t.Errorf("Acknowledge = %v", err)
	}
	if err := sess.Recover(); !errors.Is(err, jms.ErrTransacted) {
		t.Errorf("Recover = %v", err)
	}
}

func TestClientAckRecoverRedelivers(t *testing.T) {
	b := newTestBroker(t)
	_, sess := openSession(t, b, false, jms.AckClient)
	q := jms.Queue("ca")
	p, err := sess.CreateProducer(q)
	if err != nil {
		t.Fatal(err)
	}
	c, err := sess.CreateConsumer(q)
	if err != nil {
		t.Fatal(err)
	}
	mustSend(t, p, "a", jms.DefaultSendOptions())
	mustSend(t, p, "b", jms.DefaultSendOptions())
	if got := mustReceiveText(t, c, time.Second); got != "a" {
		t.Fatalf("got %q", got)
	}
	if got := mustReceiveText(t, c, time.Second); got != "b" {
		t.Fatalf("got %q", got)
	}
	if err := sess.Recover(); err != nil {
		t.Fatal(err)
	}
	// Both messages redelivered, in order, flagged.
	m1, err := c.Receive(time.Second)
	if err != nil || m1 == nil || !m1.Redelivered || m1.Body.(jms.TextBody) != "a" {
		t.Fatalf("first redelivery: %v, %v", m1, err)
	}
	m2, err := c.Receive(time.Second)
	if err != nil || m2 == nil || !m2.Redelivered || m2.Body.(jms.TextBody) != "b" {
		t.Fatalf("second redelivery: %v, %v", m2, err)
	}
	if err := sess.Acknowledge(); err != nil {
		t.Fatal(err)
	}
	if err := sess.Recover(); err != nil {
		t.Fatal(err)
	}
	msg, err := c.Receive(50 * time.Millisecond)
	if err != nil || msg != nil {
		t.Fatalf("acked message redelivered: %v", msg)
	}
}

func TestClientAckSessionCloseRedelivers(t *testing.T) {
	b := newTestBroker(t)
	conn, sess := openSession(t, b, false, jms.AckClient)
	q := jms.Queue("cac")
	p, err := sess.CreateProducer(q)
	if err != nil {
		t.Fatal(err)
	}
	c, err := sess.CreateConsumer(q)
	if err != nil {
		t.Fatal(err)
	}
	mustSend(t, p, "orphan", jms.DefaultSendOptions())
	if got := mustReceiveText(t, c, time.Second); got != "orphan" {
		t.Fatalf("got %q", got)
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	// New session sees the unacknowledged message again.
	sess2, err := conn.CreateSession(false, jms.AckAuto)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := sess2.CreateConsumer(q)
	if err != nil {
		t.Fatal(err)
	}
	msg, err := c2.Receive(time.Second)
	if err != nil || msg == nil || !msg.Redelivered {
		t.Fatalf("redelivery after close: %v, %v", msg, err)
	}
}

func TestDurableSubscriberAccumulatesWhileInactive(t *testing.T) {
	b := newTestBroker(t)
	conn, err := b.CreateConnection()
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.SetClientID("client-1"); err != nil {
		t.Fatal(err)
	}
	if err := conn.Start(); err != nil {
		t.Fatal(err)
	}
	sess, err := conn.CreateSession(false, jms.AckAuto)
	if err != nil {
		t.Fatal(err)
	}
	topic := jms.Topic("dur")
	sub, err := sess.CreateDurableSubscriber(topic, "watcher")
	if err != nil {
		t.Fatal(err)
	}
	p, err := sess.CreateProducer(topic)
	if err != nil {
		t.Fatal(err)
	}
	mustSend(t, p, "while-active", jms.DefaultSendOptions())
	if got := mustReceiveText(t, sub, time.Second); got != "while-active" {
		t.Fatalf("got %q", got)
	}
	if err := sub.Close(); err != nil {
		t.Fatal(err)
	}
	mustSend(t, p, "while-inactive", jms.DefaultSendOptions())
	sub2, err := sess.CreateDurableSubscriber(topic, "watcher")
	if err != nil {
		t.Fatal(err)
	}
	if got := mustReceiveText(t, sub2, time.Second); got != "while-inactive" {
		t.Errorf("got %q", got)
	}
	if sub2.EndpointID() != "sub:client-1:watcher" {
		t.Errorf("endpoint = %q", sub2.EndpointID())
	}
}

func TestDurableSubscriberRequiresClientID(t *testing.T) {
	b := newTestBroker(t)
	_, sess := openSession(t, b, false, jms.AckAuto)
	if _, err := sess.CreateDurableSubscriber(jms.Topic("t"), "s"); !errors.Is(err, jms.ErrNoClientID) {
		t.Errorf("err = %v", err)
	}
}

func TestDurableActiveConflict(t *testing.T) {
	b := newTestBroker(t)
	conn, err := b.CreateConnection()
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.SetClientID("c"); err != nil {
		t.Fatal(err)
	}
	if err := conn.Start(); err != nil {
		t.Fatal(err)
	}
	sess, err := conn.CreateSession(false, jms.AckAuto)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.CreateDurableSubscriber(jms.Topic("t"), "s"); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.CreateDurableSubscriber(jms.Topic("t"), "s"); !errors.Is(err, jms.ErrDurableActive) {
		t.Errorf("second activation: %v", err)
	}
	if err := sess.Unsubscribe("s"); !errors.Is(err, jms.ErrDurableActive) {
		t.Errorf("unsubscribe while active: %v", err)
	}
}

func TestUnsubscribeDeletesSubscription(t *testing.T) {
	b := newTestBroker(t)
	conn, err := b.CreateConnection()
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.SetClientID("c"); err != nil {
		t.Fatal(err)
	}
	if err := conn.Start(); err != nil {
		t.Fatal(err)
	}
	sess, err := conn.CreateSession(false, jms.AckAuto)
	if err != nil {
		t.Fatal(err)
	}
	topic := jms.Topic("t")
	sub, err := sess.CreateDurableSubscriber(topic, "s")
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.Close(); err != nil {
		t.Fatal(err)
	}
	p, err := sess.CreateProducer(topic)
	if err != nil {
		t.Fatal(err)
	}
	mustSend(t, p, "pending", jms.DefaultSendOptions())
	if err := sess.Unsubscribe("s"); err != nil {
		t.Fatal(err)
	}
	if err := sess.Unsubscribe("s"); !errors.Is(err, jms.ErrUnknownSubscription) {
		t.Errorf("double unsubscribe: %v", err)
	}
	// Resubscribing starts fresh: the pending message is gone.
	sub2, err := sess.CreateDurableSubscriber(topic, "s")
	if err != nil {
		t.Fatal(err)
	}
	msg, err := sub2.Receive(50 * time.Millisecond)
	if err != nil || msg != nil {
		t.Errorf("stale message after unsubscribe: %v", msg)
	}
}

func TestDurableTopicChangeResetsSubscription(t *testing.T) {
	b := newTestBroker(t)
	conn, err := b.CreateConnection()
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.SetClientID("c"); err != nil {
		t.Fatal(err)
	}
	if err := conn.Start(); err != nil {
		t.Fatal(err)
	}
	sess, err := conn.CreateSession(false, jms.AckAuto)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := sess.CreateDurableSubscriber(jms.Topic("t1"), "s")
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.Close(); err != nil {
		t.Fatal(err)
	}
	p1, err := sess.CreateProducer(jms.Topic("t1"))
	if err != nil {
		t.Fatal(err)
	}
	mustSend(t, p1, "old-topic", jms.DefaultSendOptions())
	// Reopen on a different topic: equivalent to unsubscribe+create.
	sub2, err := sess.CreateDurableSubscriber(jms.Topic("t2"), "s")
	if err != nil {
		t.Fatal(err)
	}
	msg, err := sub2.Receive(50 * time.Millisecond)
	if err != nil || msg != nil {
		t.Errorf("message from old topic survived: %v", msg)
	}
	p2, err := sess.CreateProducer(jms.Topic("t2"))
	if err != nil {
		t.Fatal(err)
	}
	mustSend(t, p2, "new-topic", jms.DefaultSendOptions())
	if got := mustReceiveText(t, sub2, time.Second); got != "new-topic" {
		t.Errorf("got %q", got)
	}
}

func TestClientIDExclusivity(t *testing.T) {
	b := newTestBroker(t)
	c1, err := b.CreateConnection()
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.SetClientID("dup"); err != nil {
		t.Fatal(err)
	}
	c2, err := b.CreateConnection()
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.SetClientID("dup"); !errors.Is(err, jms.ErrClientIDInUse) {
		t.Errorf("duplicate client ID: %v", err)
	}
	// Released on close.
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c2.SetClientID("dup"); err != nil {
		t.Errorf("client ID not released on close: %v", err)
	}
}

func TestSetClientIDAfterSessionFails(t *testing.T) {
	b := newTestBroker(t)
	conn, err := b.CreateConnection()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.CreateSession(false, jms.AckAuto); err != nil {
		t.Fatal(err)
	}
	if err := conn.SetClientID("late"); err == nil {
		t.Error("SetClientID after CreateSession should fail")
	}
}

func TestClosedSemantics(t *testing.T) {
	b := newTestBroker(t)
	conn, sess := openSession(t, b, false, jms.AckAuto)
	q := jms.Queue("q")
	p, err := sess.CreateProducer(q)
	if err != nil {
		t.Fatal(err)
	}
	c, err := sess.CreateConsumer(q)
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Close(); err != nil {
		t.Fatal(err)
	}
	if err := conn.Close(); err != nil {
		t.Error("second close should be a no-op")
	}
	if err := p.Send(jms.NewTextMessage("x"), jms.DefaultSendOptions()); !errors.Is(err, jms.ErrClosed) {
		t.Errorf("send after close: %v", err)
	}
	if _, err := c.Receive(10 * time.Millisecond); !errors.Is(err, jms.ErrClosed) {
		t.Errorf("receive after close: %v", err)
	}
	if _, err := conn.CreateSession(false, jms.AckAuto); !errors.Is(err, jms.ErrClosed) {
		t.Errorf("create session after close: %v", err)
	}
	if _, err := sess.CreateProducer(q); !errors.Is(err, jms.ErrClosed) {
		t.Errorf("create producer after close: %v", err)
	}
}

func TestReceiveUnblocksOnClose(t *testing.T) {
	b := newTestBroker(t)
	_, sess := openSession(t, b, false, jms.AckAuto)
	c, err := sess.CreateConsumer(jms.Queue("q"))
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		_, err := c.Receive(5 * time.Second)
		errCh <- err
	}()
	time.Sleep(20 * time.Millisecond)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		if !errors.Is(err, jms.ErrClosed) {
			t.Errorf("blocked receive returned %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocked receive did not unblock on close")
	}
}

func TestListenerDispatch(t *testing.T) {
	b := newTestBroker(t)
	_, sess := openSession(t, b, false, jms.AckAuto)
	q := jms.Queue("async")
	c, err := sess.CreateConsumer(q)
	if err != nil {
		t.Fatal(err)
	}
	received := make(chan string, 10)
	if err := c.SetListener(func(m *jms.Message) {
		received <- string(m.Body.(jms.TextBody))
	}); err != nil {
		t.Fatal(err)
	}
	p, err := sess.CreateProducer(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, text := range []string{"a", "b", "c"} {
		mustSend(t, p, text, jms.DefaultSendOptions())
	}
	for _, want := range []string{"a", "b", "c"} {
		select {
		case got := <-received:
			if got != want {
				t.Errorf("got %q, want %q", got, want)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("listener did not receive message")
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentQueueReceiversExactlyOnce(t *testing.T) {
	b := newTestBroker(t)
	_, sess := openSession(t, b, false, jms.AckAuto)
	q := jms.Queue("work")
	p, err := sess.CreateProducer(q)
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	const workers = 4
	var mu sync.Mutex
	seen := map[string]int{}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		c, err := sess.CreateConsumer(q)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(c jms.Consumer) {
			defer wg.Done()
			for {
				msg, err := c.Receive(200 * time.Millisecond)
				if err != nil || msg == nil {
					return
				}
				mu.Lock()
				seen[msg.ID]++
				mu.Unlock()
			}
		}(c)
	}
	for i := 0; i < n; i++ {
		mustSend(t, p, "job", jms.DefaultSendOptions())
	}
	wg.Wait()
	if len(seen) != n {
		t.Errorf("delivered %d distinct messages, want %d", len(seen), n)
	}
	for id, count := range seen {
		if count != 1 {
			t.Errorf("message %s delivered %d times", id, count)
		}
	}
}

func TestCrashLosesNonPersistentKeepsPersistent(t *testing.T) {
	stable := store.NewMemory()
	b, err := New(Options{Name: "crashy", Stable: stable})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	_, sess := openSession(t, b, false, jms.AckAuto)
	q := jms.Queue("mixed")
	p, err := sess.CreateProducer(q)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Send(jms.NewTextMessage("durable"), jms.SendOptions{Mode: jms.Persistent, Priority: 4}); err != nil {
		t.Fatal(err)
	}
	if err := p.Send(jms.NewTextMessage("volatile"), jms.SendOptions{Mode: jms.NonPersistent, Priority: 4}); err != nil {
		t.Fatal(err)
	}

	b.Crash()
	if _, err := b.CreateConnection(); err == nil {
		t.Error("crashed broker accepted a connection")
	}
	if err := b.Restart(); err != nil {
		t.Fatal(err)
	}

	_, sess2 := openSession(t, b, false, jms.AckAuto)
	c, err := sess2.CreateConsumer(q)
	if err != nil {
		t.Fatal(err)
	}
	if got := mustReceiveText(t, c, time.Second); got != "durable" {
		t.Errorf("got %q", got)
	}
	msg, err := c.Receive(50 * time.Millisecond)
	if err != nil || msg != nil {
		t.Errorf("non-persistent message survived crash: %v", msg)
	}
}

func TestCrashPreservesDurableSubscription(t *testing.T) {
	b, err := New(Options{Name: "crashy2"})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	conn, err := b.CreateConnection()
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.SetClientID("c"); err != nil {
		t.Fatal(err)
	}
	if err := conn.Start(); err != nil {
		t.Fatal(err)
	}
	sess, err := conn.CreateSession(false, jms.AckAuto)
	if err != nil {
		t.Fatal(err)
	}
	topic := jms.Topic("t")
	sub, err := sess.CreateDurableSubscriber(topic, "s")
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.Close(); err != nil {
		t.Fatal(err)
	}
	p, err := sess.CreateProducer(topic)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Send(jms.NewTextMessage("before-crash"), jms.SendOptions{Mode: jms.Persistent, Priority: 4}); err != nil {
		t.Fatal(err)
	}

	b.Crash()
	if err := b.Restart(); err != nil {
		t.Fatal(err)
	}

	conn2, err := b.CreateConnection()
	if err != nil {
		t.Fatal(err)
	}
	if err := conn2.SetClientID("c"); err != nil {
		t.Fatal(err)
	}
	if err := conn2.Start(); err != nil {
		t.Fatal(err)
	}
	sess2, err := conn2.CreateSession(false, jms.AckAuto)
	if err != nil {
		t.Fatal(err)
	}
	sub2, err := sess2.CreateDurableSubscriber(topic, "s")
	if err != nil {
		t.Fatal(err)
	}
	if got := mustReceiveText(t, sub2, time.Second); got != "before-crash" {
		t.Errorf("got %q", got)
	}
}

func TestCrashAbandonsUnackedWithoutAcking(t *testing.T) {
	b, err := New(Options{Name: "crashy3"})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	_, sess := openSession(t, b, false, jms.AckClient)
	q := jms.Queue("q")
	p, err := sess.CreateProducer(q)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Send(jms.NewTextMessage("precious"), jms.SendOptions{Mode: jms.Persistent, Priority: 4}); err != nil {
		t.Fatal(err)
	}
	c, err := sess.CreateConsumer(q)
	if err != nil {
		t.Fatal(err)
	}
	// Delivered but never acknowledged.
	if got := mustReceiveText(t, c, time.Second); got != "precious" {
		t.Fatal("setup failed")
	}
	b.Crash()
	if err := b.Restart(); err != nil {
		t.Fatal(err)
	}
	// The persistent message must be redelivered after recovery.
	_, sess2 := openSession(t, b, false, jms.AckAuto)
	c2, err := sess2.CreateConsumer(q)
	if err != nil {
		t.Fatal(err)
	}
	if got := mustReceiveText(t, c2, time.Second); got != "precious" {
		t.Errorf("got %q", got)
	}
}

func TestRestartWithoutCrashFails(t *testing.T) {
	b := newTestBroker(t)
	if err := b.Restart(); err == nil {
		t.Error("Restart without Crash should fail")
	}
}

func TestProfileValidation(t *testing.T) {
	bad := []Profile{
		{Name: "neg", SendRate: -1},
		{Name: "noburst", SendRate: 10},
		{Name: "nodburst", DeliverRate: 10},
		{Name: "neglat", BaseLatency: -time.Second},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("profile %q should be invalid", p.Name)
		}
		if _, err := New(Options{Profile: p}); err == nil {
			t.Errorf("New with profile %q should fail", p.Name)
		}
	}
	for _, p := range []Profile{Unlimited(), ProviderI(), ProviderII(), ProviderA(), ProviderB(), ProviderC()} {
		if err := p.Validate(); err != nil {
			t.Errorf("built-in profile %q invalid: %v", p.Name, err)
		}
	}
}

func TestProfileByName(t *testing.T) {
	for _, name := range []string{"unlimited", "provider-I", "provider-II", "provider-A", "provider-B", "provider-C"} {
		p, err := ProfileByName(name)
		if err != nil {
			t.Errorf("ProfileByName(%q): %v", name, err)
		}
		if p.Name != name && name != "unlimited" {
			t.Errorf("ProfileByName(%q).Name = %q", name, p.Name)
		}
	}
	if _, err := ProfileByName("bogus"); err == nil {
		t.Error("unknown profile should error")
	}
}

func TestProfileThrottlesThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	profile := Profile{Name: "slow", SendRate: 100, SendBurst: 1}
	b, err := New(Options{Name: "throttled", Profile: profile})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	_, sess := openSession(t, b, false, jms.AckAuto)
	p, err := sess.CreateProducer(jms.Queue("q"))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	const n = 20
	for i := 0; i < n; i++ {
		mustSend(t, p, "x", jms.DefaultSendOptions())
	}
	elapsed := time.Since(start)
	// 20 messages at 100/s should take ~190ms (first is free).
	if elapsed < 150*time.Millisecond {
		t.Errorf("20 sends at 100/s took only %v", elapsed)
	}
}

func TestDupsOKBatchAcks(t *testing.T) {
	b := newTestBroker(t)
	_, sess := openSession(t, b, false, jms.AckDupsOK)
	q := jms.Queue("lazy")
	p, err := sess.CreateProducer(q)
	if err != nil {
		t.Fatal(err)
	}
	c, err := sess.CreateConsumer(q)
	if err != nil {
		t.Fatal(err)
	}
	// Fewer than a batch: messages stay unacked; Recover redelivers them
	// (the duplicate-delivery window dups-ok permits).
	for i := 0; i < dupsOKBatch-1; i++ {
		mustSend(t, p, "m", jms.DefaultSendOptions())
	}
	for i := 0; i < dupsOKBatch-1; i++ {
		if got := mustReceiveText(t, c, time.Second); got != "m" {
			t.Fatal("setup failed")
		}
	}
	if err := sess.Recover(); err != nil {
		t.Fatal(err)
	}
	msg, err := c.Receive(time.Second)
	if err != nil || msg == nil || !msg.Redelivered {
		t.Fatalf("dups-ok unacked should redeliver: %v, %v", msg, err)
	}
	// A full batch triggers lazy ack; subsequent Recover redelivers
	// nothing from that batch. Drain the redelivered tail first.
	for {
		m, err := c.Receive(100 * time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if m == nil {
			break
		}
	}
}
