package broker

import (
	"errors"
	"testing"
	"time"

	"jmsharness/internal/jms"
)

// sendWithProps sends a text message with properties.
func sendWithProps(t *testing.T, p jms.Producer, text string, props map[string]jms.Value, opts jms.SendOptions) {
	t.Helper()
	m := jms.NewTextMessage(text)
	for k, v := range props {
		m.SetProperty(k, v)
	}
	if err := p.Send(m, opts); err != nil {
		t.Fatalf("send %q: %v", text, err)
	}
}

func TestInvalidSelectorRejected(t *testing.T) {
	b := newTestBroker(t)
	_, sess := openSession(t, b, false, jms.AckAuto)
	if _, err := sess.CreateConsumerWithSelector(jms.Queue("q"), "price >"); !errors.Is(err, jms.ErrInvalidSelector) {
		t.Errorf("err = %v", err)
	}
	if _, err := sess.CreateDurableSubscriberWithSelector(jms.Topic("t"), "s", "(a"); !errors.Is(err, jms.ErrInvalidSelector) {
		t.Errorf("durable err = %v", err)
	}
}

func TestQueueSelectorFiltersAndLeavesRest(t *testing.T) {
	b := newTestBroker(t)
	_, sess := openSession(t, b, false, jms.AckAuto)
	q := jms.Queue("selq")
	p, err := sess.CreateProducer(q)
	if err != nil {
		t.Fatal(err)
	}
	sendWithProps(t, p, "eu-1", map[string]jms.Value{"region": jms.Str("EU")}, jms.DefaultSendOptions())
	sendWithProps(t, p, "us-1", map[string]jms.Value{"region": jms.Str("US")}, jms.DefaultSendOptions())
	sendWithProps(t, p, "eu-2", map[string]jms.Value{"region": jms.Str("EU")}, jms.DefaultSendOptions())

	euOnly, err := sess.CreateConsumerWithSelector(q, "region = 'EU'")
	if err != nil {
		t.Fatal(err)
	}
	if got := mustReceiveText(t, euOnly, time.Second); got != "eu-1" {
		t.Errorf("first EU message = %q", got)
	}
	if got := mustReceiveText(t, euOnly, time.Second); got != "eu-2" {
		t.Errorf("second EU message = %q", got)
	}
	if msg, err := euOnly.Receive(50 * time.Millisecond); err != nil || msg != nil {
		t.Errorf("EU consumer got extra %v, %v", msg, err)
	}
	// The non-matching message is still on the queue for others.
	all, err := sess.CreateConsumer(q)
	if err != nil {
		t.Fatal(err)
	}
	if got := mustReceiveText(t, all, time.Second); got != "us-1" {
		t.Errorf("unfiltered consumer got %q, want the US message", got)
	}
}

func TestQueueSelectorOnHeaders(t *testing.T) {
	b := newTestBroker(t)
	_, sess := openSession(t, b, false, jms.AckAuto)
	q := jms.Queue("hdrq")
	p, err := sess.CreateProducer(q)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Send(jms.NewTextMessage("low"), jms.SendOptions{Mode: jms.Persistent, Priority: 2}); err != nil {
		t.Fatal(err)
	}
	if err := p.Send(jms.NewTextMessage("high"), jms.SendOptions{Mode: jms.Persistent, Priority: 8}); err != nil {
		t.Fatal(err)
	}
	urgent, err := sess.CreateConsumerWithSelector(q, "JMSPriority >= 5")
	if err != nil {
		t.Fatal(err)
	}
	if got := mustReceiveText(t, urgent, time.Second); got != "high" {
		t.Errorf("urgent consumer got %q", got)
	}
	if msg, err := urgent.Receive(50 * time.Millisecond); err != nil || msg != nil {
		t.Errorf("urgent consumer got extra %v", msg)
	}
}

func TestTopicSelectorFiltersAtSubscription(t *testing.T) {
	b := newTestBroker(t)
	_, sess := openSession(t, b, false, jms.AckAuto)
	topic := jms.Topic("selt")
	eu, err := sess.CreateConsumerWithSelector(topic, "region = 'EU'")
	if err != nil {
		t.Fatal(err)
	}
	us, err := sess.CreateConsumerWithSelector(topic, "region = 'US'")
	if err != nil {
		t.Fatal(err)
	}
	p, err := sess.CreateProducer(topic)
	if err != nil {
		t.Fatal(err)
	}
	sendWithProps(t, p, "to-eu", map[string]jms.Value{"region": jms.Str("EU")}, jms.DefaultSendOptions())
	sendWithProps(t, p, "to-us", map[string]jms.Value{"region": jms.Str("US")}, jms.DefaultSendOptions())
	if got := mustReceiveText(t, eu, time.Second); got != "to-eu" {
		t.Errorf("EU subscriber got %q", got)
	}
	if got := mustReceiveText(t, us, time.Second); got != "to-us" {
		t.Errorf("US subscriber got %q", got)
	}
	if msg, err := eu.Receive(50 * time.Millisecond); err != nil || msg != nil {
		t.Errorf("EU subscriber got cross-traffic %v", msg)
	}
	// Non-matching messages never entered the subscription's buffer.
	if b.Stats().Backlog != 0 {
		t.Errorf("Backlog = %d, filtered messages buffered", b.Stats().Backlog)
	}
}

func TestDurableSelectorIsPartOfIdentity(t *testing.T) {
	b := newTestBroker(t)
	conn, err := b.CreateConnection()
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.SetClientID("c"); err != nil {
		t.Fatal(err)
	}
	if err := conn.Start(); err != nil {
		t.Fatal(err)
	}
	sess, err := conn.CreateSession(false, jms.AckAuto)
	if err != nil {
		t.Fatal(err)
	}
	topic := jms.Topic("dst")
	sub, err := sess.CreateDurableSubscriberWithSelector(topic, "s", "kind = 'a'")
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.Close(); err != nil {
		t.Fatal(err)
	}
	p, err := sess.CreateProducer(topic)
	if err != nil {
		t.Fatal(err)
	}
	sendWithProps(t, p, "a-while-inactive", map[string]jms.Value{"kind": jms.Str("a")}, jms.DefaultSendOptions())
	// Reopening with a different selector resets the subscription: the
	// retained message is gone.
	sub2, err := sess.CreateDurableSubscriberWithSelector(topic, "s", "kind = 'b'")
	if err != nil {
		t.Fatal(err)
	}
	if msg, err := sub2.Receive(50 * time.Millisecond); err != nil || msg != nil {
		t.Errorf("selector change should reset subscription, got %v", msg)
	}
	// Same selector reattaches.
	if err := sub2.Close(); err != nil {
		t.Fatal(err)
	}
	sendWithProps(t, p, "b-while-inactive", map[string]jms.Value{"kind": jms.Str("b")}, jms.DefaultSendOptions())
	sub3, err := sess.CreateDurableSubscriberWithSelector(topic, "s", "kind = 'b'")
	if err != nil {
		t.Fatal(err)
	}
	if got := mustReceiveText(t, sub3, time.Second); got != "b-while-inactive" {
		t.Errorf("reattached subscriber got %q", got)
	}
}

func TestDurableSelectorSurvivesCrash(t *testing.T) {
	b, err := New(Options{Name: "selcrash"})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	conn, err := b.CreateConnection()
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.SetClientID("c"); err != nil {
		t.Fatal(err)
	}
	if err := conn.Start(); err != nil {
		t.Fatal(err)
	}
	sess, err := conn.CreateSession(false, jms.AckAuto)
	if err != nil {
		t.Fatal(err)
	}
	topic := jms.Topic("ct")
	sub, err := sess.CreateDurableSubscriberWithSelector(topic, "s", "kind = 'keep'")
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.Close(); err != nil {
		t.Fatal(err)
	}
	b.Crash()
	if err := b.Restart(); err != nil {
		t.Fatal(err)
	}
	// After recovery the subscription still filters.
	conn2, err := b.CreateConnection()
	if err != nil {
		t.Fatal(err)
	}
	if err := conn2.SetClientID("c"); err != nil {
		t.Fatal(err)
	}
	if err := conn2.Start(); err != nil {
		t.Fatal(err)
	}
	sess2, err := conn2.CreateSession(false, jms.AckAuto)
	if err != nil {
		t.Fatal(err)
	}
	p, err := sess2.CreateProducer(topic)
	if err != nil {
		t.Fatal(err)
	}
	sendWithProps(t, p, "drop-me", map[string]jms.Value{"kind": jms.Str("other")}, jms.DefaultSendOptions())
	sendWithProps(t, p, "keep-me", map[string]jms.Value{"kind": jms.Str("keep")}, jms.DefaultSendOptions())
	sub2, err := sess2.CreateDurableSubscriberWithSelector(topic, "s", "kind = 'keep'")
	if err != nil {
		t.Fatal(err)
	}
	if got := mustReceiveText(t, sub2, time.Second); got != "keep-me" {
		t.Errorf("recovered subscription delivered %q", got)
	}
	if msg, err := sub2.Receive(50 * time.Millisecond); err != nil || msg != nil {
		t.Errorf("recovered subscription leaked %v", msg)
	}
}

func TestSelectorExpiredStillDropped(t *testing.T) {
	// Expired messages are dropped during a filtered pop even when they
	// do not match the selector.
	b := newTestBroker(t)
	_, sess := openSession(t, b, false, jms.AckAuto)
	q := jms.Queue("selexp")
	p, err := sess.CreateProducer(q)
	if err != nil {
		t.Fatal(err)
	}
	doomed := jms.NewTextMessage("doomed")
	doomed.SetProperty("keep", jms.Bool(false))
	if err := p.Send(doomed, jms.SendOptions{Mode: jms.Persistent, Priority: 4, TTL: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	sendWithProps(t, p, "wanted", map[string]jms.Value{"keep": jms.Bool(true)}, jms.DefaultSendOptions())
	time.Sleep(5 * time.Millisecond)
	c, err := sess.CreateConsumerWithSelector(q, "keep = TRUE")
	if err != nil {
		t.Fatal(err)
	}
	if got := mustReceiveText(t, c, time.Second); got != "wanted" {
		t.Errorf("got %q", got)
	}
	if b.Stats().Expired != 1 {
		t.Errorf("Expired = %d", b.Stats().Expired)
	}
	if b.Stats().Backlog != 0 {
		t.Errorf("Backlog = %d", b.Stats().Backlog)
	}
}

func TestQueueBrowser(t *testing.T) {
	b := newTestBroker(t)
	_, sess := openSession(t, b, false, jms.AckAuto)
	q := jms.Queue("browseq")
	p, err := sess.CreateProducer(q)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Send(jms.NewTextMessage("low"), jms.SendOptions{Mode: jms.Persistent, Priority: 1}); err != nil {
		t.Fatal(err)
	}
	if err := p.Send(jms.NewTextMessage("high"), jms.SendOptions{Mode: jms.Persistent, Priority: 9}); err != nil {
		t.Fatal(err)
	}
	br, err := sess.CreateBrowser(q, "")
	if err != nil {
		t.Fatal(err)
	}
	msgs, err := br.Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 2 {
		t.Fatalf("browsed %d messages", len(msgs))
	}
	// Delivery order: priority descending.
	if msgs[0].Body.(jms.TextBody) != "high" || msgs[1].Body.(jms.TextBody) != "low" {
		t.Errorf("browse order: %v, %v", msgs[0].Body, msgs[1].Body)
	}
	// Browsing does not consume.
	again, err := br.Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != 2 {
		t.Errorf("second browse saw %d messages", len(again))
	}
	// Mutating a browsed copy does not affect the queue.
	msgs[0].Body = jms.TextBody("tampered")
	c, err := sess.CreateConsumer(q)
	if err != nil {
		t.Fatal(err)
	}
	if got := mustReceiveText(t, c, time.Second); got != "high" {
		t.Errorf("consumed %q after tampering with browsed copy", got)
	}
	if br.Queue() != q {
		t.Error("Queue() mismatch")
	}
	if err := br.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := br.Enumerate(); !errors.Is(err, jms.ErrClosed) {
		t.Errorf("enumerate after close: %v", err)
	}
}

func TestQueueBrowserSelector(t *testing.T) {
	b := newTestBroker(t)
	_, sess := openSession(t, b, false, jms.AckAuto)
	q := jms.Queue("browsesel")
	p, err := sess.CreateProducer(q)
	if err != nil {
		t.Fatal(err)
	}
	sendWithProps(t, p, "eu", map[string]jms.Value{"region": jms.Str("EU")}, jms.DefaultSendOptions())
	sendWithProps(t, p, "us", map[string]jms.Value{"region": jms.Str("US")}, jms.DefaultSendOptions())
	br, err := sess.CreateBrowser(q, "region = 'EU'")
	if err != nil {
		t.Fatal(err)
	}
	msgs, err := br.Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 1 || msgs[0].Body.(jms.TextBody) != "eu" {
		t.Errorf("filtered browse = %v", msgs)
	}
	if _, err := sess.CreateBrowser(q, "broken ("); !errors.Is(err, jms.ErrInvalidSelector) {
		t.Errorf("invalid browse selector: %v", err)
	}
}
