package broker

import (
	"fmt"

	"jmsharness/internal/jms"
	"jmsharness/internal/selector"
	"jmsharness/internal/store"
	"jmsharness/internal/trace"
)

// This file is the broker's side of destination failover
// (internal/replica): fencing a superseded primary and adopting a dead
// peer's replicated state into a promoted follower.

// Fence permanently refuses service: new connections fail with
// jms.ErrFenced and existing ones are force-closed. The failure
// detector fences a node when it declares it dead — if the node was
// merely partitioned and still alive, fencing stops it from accepting
// writes under routing the rest of the cluster has already moved past.
// Fencing is sticky across Crash: a fenced broker cannot Restart.
func (b *Broker) Fence() {
	b.mu.Lock()
	if b.closed || b.fenced {
		b.mu.Unlock()
		return
	}
	b.fenced = true
	alreadyDead := b.crashed
	b.mu.Unlock()
	if !alreadyDead {
		// A live zombie: tear down exactly as a crash does, so every
		// client is disconnected and volatile state is discarded. The
		// fenced flag keeps Restart and CreateConnection refusing.
		b.Crash()
	}
}

// Fenced reports whether the broker has been fenced.
func (b *Broker) Fenced() bool {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.fenced
}

// Healthy reports whether the broker is serving: not crashed, not
// fenced, not closed. The replication failure detector's liveness
// probes read it.
func (b *Broker) Healthy() bool {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return !b.crashed && !b.fenced && !b.closed
}

// Adopt merges a dead primary's replicated durable state into this
// broker: every subscription and pending message in st is persisted to
// this broker's own stable store (re-replicating it to this node's
// followers when the store is replicated) and made live for delivery.
// Messages the old primary had handed to a consumer arrive flagged
// JMSRedelivered, exactly as in single-node crash recovery — the
// paper's Property 5 boundary between a duplicate and a redelivery.
func (b *Broker) Adopt(st *store.State) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed || b.crashed || b.fenced {
		return fmt.Errorf("broker %s: adopt on dead broker: %w", b.name, jms.ErrClosed)
	}
	now := b.clk.Now()
	for _, rec := range st.Subscriptions {
		ep := trace.EndpointForDurable(rec.ClientID, rec.Name)
		if _, ok := b.subs[ep]; ok {
			continue // already hosted here (e.g. re-promotion)
		}
		var sel *selector.Selector
		var err error
		if rec.Selector != "" {
			sel, err = selector.Parse(rec.Selector)
			if err != nil {
				return fmt.Errorf("broker %s: adopting subscription %s: %w", b.name, rec.Key(), err)
			}
		}
		if err := b.stable.AddSubscription(rec); err != nil {
			return fmt.Errorf("broker %s: adopting subscription %s: %w", b.name, rec.Key(), err)
		}
		sub := &subscription{
			endpoint:  ep,
			topicName: rec.Topic,
			durable:   true,
			clientID:  rec.ClientID,
			subName:   rec.Name,
			mb:        newMailbox(b.mbCap),
			sel:       sel,
			selExpr:   rec.Selector,
		}
		b.subs[ep] = sub
		if b.topics[rec.Topic] == nil {
			b.topics[rec.Topic] = map[string]*subscription{}
		}
		b.topics[rec.Topic][ep] = sub
	}
	for ep, msgs := range st.Messages {
		var mb *mailbox
		if dest, err := jms.ParseDestination(ep); err == nil && dest.Kind() == jms.KindQueue {
			mb = b.queueLocked(dest.Name())
		} else if sub, ok := b.subs[ep]; ok {
			mb = sub.mb
		} else {
			continue // orphaned endpoint (unsubscribed before the crash)
		}
		for _, sm := range msgs {
			id, err := b.stable.AddMessage(ep, sm.Msg)
			if err != nil {
				return fmt.Errorf("broker %s: adopting message on %s: %w", b.name, ep, err)
			}
			if sm.Delivered {
				if err := b.stable.MarkDelivered(ep, id); err != nil {
					return fmt.Errorf("broker %s: adopting delivery mark on %s: %w", b.name, ep, err)
				}
				sm.Msg.Redelivered = true
			}
			// Like crash recovery, adoption is exempt from the mailbox
			// bound: the messages were already accepted by the cluster.
			mb.push(entry{msg: sm.Msg, rec: id, persisted: true, enqueuedAt: now})
			b.met.enqueued.Inc()
			b.met.backlog.Inc()
			b.spans.Begin(b.spanStart(sm.Msg, ep, now, 0))
		}
	}
	return nil
}
