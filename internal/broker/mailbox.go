package broker

import (
	"sync"
	"time"

	"jmsharness/internal/jms"
	"jmsharness/internal/store"
)

// entry is one message pending in a mailbox, together with the stable-
// store record backing it (for persistent messages) and the time it
// became available.
type entry struct {
	msg        *jms.Message
	rec        store.RecordID // 0 if not persisted
	persisted  bool
	enqueuedAt time.Time
}

// mailbox is the pending-message buffer of one consumer group (a queue
// or a subscription): ten priority-ordered FIFO buckets plus a
// generation-channel wakeup for blocked receivers. Higher priorities are
// served first (the broker's best effort at the JMS priority
// requirement); within a priority bucket, arrival order is preserved,
// which yields the FIFO-per-producer ordering that Property 3 checks.
type mailbox struct {
	mu      sync.Mutex
	buckets [jms.NumPriorities][]entry
	wake    chan struct{}
	closed  bool
	size    int
}

func newMailbox() *mailbox {
	return &mailbox{wake: make(chan struct{})}
}

// wakeAllLocked signals every blocked receiver. Callers hold mu.
func (mb *mailbox) wakeAllLocked() {
	close(mb.wake)
	mb.wake = make(chan struct{})
}

// push appends an entry at the tail of its priority bucket.
func (mb *mailbox) push(e entry) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if mb.closed {
		return
	}
	p := e.msg.Priority
	mb.buckets[p] = append(mb.buckets[p], e)
	mb.size++
	mb.wakeAllLocked()
}

// pushFront returns entries to the head of their buckets, preserving
// their relative order (used for redelivery after rollback, Recover, or
// consumer close). entries must be in original delivery order.
func (mb *mailbox) pushFront(entries []entry) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if mb.closed {
		return
	}
	for i := len(entries) - 1; i >= 0; i-- {
		e := entries[i]
		p := e.msg.Priority
		mb.buckets[p] = append([]entry{e}, mb.buckets[p]...)
		mb.size++
	}
	if len(entries) > 0 {
		mb.wakeAllLocked()
	}
}

// tryPop removes and returns the highest-priority available entry
// accepted by match (nil accepts everything). Non-matching entries are
// left in place for other consumers, as JMS queue selectors require.
// Expired entries are dropped regardless of match (and returned in
// dropped so the broker can clean up their stable records). ok is false
// if nothing is available.
func (mb *mailbox) tryPop(now time.Time, match func(*jms.Message) bool) (e entry, dropped []entry, ok bool) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if mb.closed {
		return entry{}, nil, false
	}
	for p := int(jms.PriorityHighest); p >= 0; p-- {
		bucket := mb.buckets[p]
		for i := 0; i < len(bucket); {
			head := bucket[i]
			if head.msg.Expired(now) {
				dropped = append(dropped, head)
				bucket = append(bucket[:i], bucket[i+1:]...)
				mb.size--
				continue
			}
			if match != nil && !match(head.msg) {
				i++
				continue
			}
			bucket = append(bucket[:i], bucket[i+1:]...)
			mb.size--
			mb.buckets[p] = bucket
			return head, dropped, true
		}
		mb.buckets[p] = bucket
	}
	return entry{}, dropped, false
}

// waitChan returns a channel closed at the next state change.
func (mb *mailbox) waitChan() <-chan struct{} {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	return mb.wake
}

// snapshot returns copies of the pending messages in delivery order
// (priority descending, arrival order within a priority), skipping
// expired ones, for queue browsing.
func (mb *mailbox) snapshot(now time.Time, match func(*jms.Message) bool) []*jms.Message {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	var out []*jms.Message
	for p := int(jms.PriorityHighest); p >= 0; p-- {
		for _, e := range mb.buckets[p] {
			if e.msg.Expired(now) {
				continue
			}
			if match != nil && !match(e.msg) {
				continue
			}
			out = append(out, e.msg.Clone())
		}
	}
	return out
}

// drain removes and returns every pending entry (used when deleting a
// subscription or recovering state).
func (mb *mailbox) drain() []entry {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	var out []entry
	for p := 0; p < jms.NumPriorities; p++ {
		out = append(out, mb.buckets[p]...)
		mb.buckets[p] = nil
	}
	mb.size = 0
	return out
}

// close marks the mailbox closed and wakes all receivers.
func (mb *mailbox) close() {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if mb.closed {
		return
	}
	mb.closed = true
	mb.wakeAllLocked()
}

// pending returns the number of buffered entries.
func (mb *mailbox) pending() int {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	return mb.size
}
