package broker

import (
	"sync"
	"time"

	"jmsharness/internal/jms"
	"jmsharness/internal/store"
)

// entry is one message pending in a mailbox, together with the stable-
// store record backing it (for persistent messages) and the time it
// became available.
type entry struct {
	msg        *jms.Message
	rec        store.RecordID // 0 if not persisted
	persisted  bool
	enqueuedAt time.Time
}

// bucketQ is one priority bucket: a FIFO queue of entries backed by a
// head-indexed slice so the common case — pop at the head — is O(1)
// instead of the O(n) memmove a naive slice-shift pays. Under an
// unthrottled producer a mailbox can buffer millions of entries; with
// slice-shift pops, every receive copied the entire backlog and
// consumer throughput collapsed as the backlog grew (the saturation
// experiment measured consumers at <1% of producer rate). The head
// index makes pop cost independent of backlog depth; the storage is
// compacted when the dead prefix dominates, keeping memory bounded by
// the live entries.
type bucketQ struct {
	items []entry
	head  int
}

// size returns the number of queued entries.
func (q *bucketQ) size() int { return len(q.items) - q.head }

// at returns the i-th queued entry (0 = head).
func (q *bucketQ) at(i int) *entry { return &q.items[q.head+i] }

// push appends an entry at the tail.
func (q *bucketQ) push(e entry) { q.items = append(q.items, e) }

// removeAt removes and returns the i-th queued entry. Removal at the
// head is O(1); mid-queue removal (selector skips, expiry inside the
// queue) shifts the tail.
func (q *bucketQ) removeAt(i int) entry {
	idx := q.head + i
	e := q.items[idx]
	if idx == q.head {
		q.items[idx] = entry{} // release the message for GC
		q.head++
		q.compact()
		return e
	}
	copy(q.items[idx:], q.items[idx+1:])
	q.items[len(q.items)-1] = entry{}
	q.items = q.items[:len(q.items)-1]
	return e
}

// compact reclaims the dead prefix once it dominates the backing array,
// bounding memory at O(live entries) with amortised O(1) cost per pop.
func (q *bucketQ) compact() {
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
		return
	}
	if q.head >= 64 && q.head*2 >= len(q.items) {
		n := copy(q.items, q.items[q.head:])
		for j := n; j < len(q.items); j++ {
			q.items[j] = entry{}
		}
		q.items = q.items[:n]
		q.head = 0
	}
}

// pushFront prepends a block of entries, preserving their order (used
// to return redelivered entries to the head of the queue). The dead
// prefix is reused when large enough; otherwise the slice is rebuilt.
func (q *bucketQ) pushFront(entries []entry) {
	if len(entries) == 0 {
		return
	}
	if q.head >= len(entries) {
		q.head -= len(entries)
		copy(q.items[q.head:], entries)
		return
	}
	merged := make([]entry, 0, q.size()+len(entries))
	merged = append(merged, entries...)
	merged = append(merged, q.items[q.head:]...)
	q.items, q.head = merged, 0
}

// drain removes and returns every queued entry in order.
func (q *bucketQ) drain() []entry {
	out := append([]entry(nil), q.items[q.head:]...)
	q.items = nil
	q.head = 0
	return out
}

// mailbox is the pending-message buffer of one consumer group (a queue
// or a subscription): ten priority-ordered FIFO buckets plus a
// generation-channel wakeup for blocked receivers. Higher priorities are
// served first (the broker's best effort at the JMS priority
// requirement); within a priority bucket, arrival order is preserved,
// which yields the FIFO-per-producer ordering that Property 3 checks.
//
// Each mailbox has its own lock, so sends, receives and acks on
// distinct destinations never contend: the broker-wide registry lock
// only locates the mailbox, and all queue/subscription traffic then
// proceeds in parallel per destination.
//
// A mailbox may be bounded (capacity > 0): ordinary sends must then
// claim a slot with tryReserve before pushing, and blocked senders
// wait on spaceChan for occupancy to drop. Redelivery (pushFront) and
// crash recovery bypass the bound — returning already-accepted
// messages must never block or fail — so a mailbox can transiently
// exceed its capacity and simply refuses new sends until drained.
type mailbox struct {
	mu       sync.Mutex
	buckets  [jms.NumPriorities]bucketQ
	wake     chan struct{}
	space    chan struct{} // closed and replaced when occupancy drops
	closed   bool
	size     int
	capacity int // 0 = unbounded
	reserved int // send slots claimed but not yet pushed
}

func newMailbox(capacity int) *mailbox {
	return &mailbox{wake: make(chan struct{}), space: make(chan struct{}), capacity: capacity}
}

// wakeAllLocked signals every blocked receiver. Callers hold mu.
func (mb *mailbox) wakeAllLocked() {
	close(mb.wake)
	mb.wake = make(chan struct{})
}

// wakeSpaceLocked signals every sender blocked on a full mailbox.
// Callers hold mu.
func (mb *mailbox) wakeSpaceLocked() {
	if mb.capacity <= 0 {
		return
	}
	close(mb.space)
	mb.space = make(chan struct{})
}

// tryReserve claims one send slot on a bounded mailbox, reporting
// false when it is full. Unbounded and closed mailboxes always accept
// (a push to a closed mailbox silently drops, matching the unbounded
// path). A successful reservation must be settled with pushReserved or
// unreserve.
func (mb *mailbox) tryReserve() bool {
	if mb.capacity <= 0 {
		return true
	}
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if mb.closed {
		return true
	}
	if mb.size+mb.reserved >= mb.capacity {
		return false
	}
	mb.reserved++
	return true
}

// unreserve releases an unused reservation.
func (mb *mailbox) unreserve() {
	if mb.capacity <= 0 {
		return
	}
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if mb.reserved > 0 {
		mb.reserved--
		mb.wakeSpaceLocked()
	}
}

// spaceChan returns a channel closed the next time occupancy drops,
// for senders blocked on a full mailbox.
func (mb *mailbox) spaceChan() <-chan struct{} {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	return mb.space
}

// push appends an entry at the tail of its priority bucket.
func (mb *mailbox) push(e entry) { mb.pushEntry(e, false) }

// pushReserved appends an entry, converting a tryReserve claim into
// occupancy.
func (mb *mailbox) pushReserved(e entry) { mb.pushEntry(e, true) }

func (mb *mailbox) pushEntry(e entry, reserved bool) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if reserved && mb.reserved > 0 {
		mb.reserved--
	}
	if mb.closed {
		return
	}
	mb.buckets[e.msg.Priority].push(e)
	mb.size++
	mb.wakeAllLocked()
}

// pushFront returns entries to the head of their buckets, preserving
// their relative order (used for redelivery after rollback, Recover, or
// consumer close). entries must be in original delivery order.
func (mb *mailbox) pushFront(entries []entry) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if mb.closed || len(entries) == 0 {
		return
	}
	// Group by priority, preserving order within each group.
	var byPriority [jms.NumPriorities][]entry
	for _, e := range entries {
		p := e.msg.Priority
		byPriority[p] = append(byPriority[p], e)
	}
	for p := range byPriority {
		if len(byPriority[p]) > 0 {
			mb.buckets[p].pushFront(byPriority[p])
			mb.size += len(byPriority[p])
		}
	}
	mb.wakeAllLocked()
}

// tryPop removes and returns the highest-priority available entry
// accepted by match (nil accepts everything). Non-matching entries are
// left in place for other consumers, as JMS queue selectors require.
// Expired entries are dropped regardless of match (and returned in
// dropped so the broker can clean up their stable records). ok is false
// if nothing is available.
func (mb *mailbox) tryPop(now time.Time, match func(*jms.Message) bool) (e entry, dropped []entry, ok bool) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if mb.closed {
		return entry{}, nil, false
	}
	for p := int(jms.PriorityHighest); p >= 0; p-- {
		q := &mb.buckets[p]
		for i := 0; i < q.size(); {
			head := q.at(i)
			if head.msg.Expired(now) {
				dropped = append(dropped, q.removeAt(i))
				mb.size--
				mb.wakeSpaceLocked()
				continue
			}
			if match != nil && !match(head.msg) {
				i++
				continue
			}
			e = q.removeAt(i)
			mb.size--
			mb.wakeSpaceLocked()
			return e, dropped, true
		}
	}
	return entry{}, dropped, false
}

// waitChan returns a channel closed at the next state change.
func (mb *mailbox) waitChan() <-chan struct{} {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	return mb.wake
}

// snapshot returns copies of the pending messages in delivery order
// (priority descending, arrival order within a priority), skipping
// expired ones, for queue browsing.
func (mb *mailbox) snapshot(now time.Time, match func(*jms.Message) bool) []*jms.Message {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	var out []*jms.Message
	for p := int(jms.PriorityHighest); p >= 0; p-- {
		q := &mb.buckets[p]
		for i := 0; i < q.size(); i++ {
			e := q.at(i)
			if e.msg.Expired(now) {
				continue
			}
			if match != nil && !match(e.msg) {
				continue
			}
			out = append(out, e.msg.Clone())
		}
	}
	return out
}

// drain removes and returns every pending entry (used when deleting a
// subscription or recovering state).
func (mb *mailbox) drain() []entry {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	var out []entry
	for p := 0; p < jms.NumPriorities; p++ {
		out = append(out, mb.buckets[p].drain()...)
	}
	mb.size = 0
	mb.wakeSpaceLocked()
	return out
}

// close marks the mailbox closed and wakes all receivers.
func (mb *mailbox) close() {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if mb.closed {
		return
	}
	mb.closed = true
	mb.wakeAllLocked()
	// Senders blocked on a full mailbox must also wake: their retry
	// loop observes the closed/crashed state and errors out.
	mb.wakeSpaceLocked()
}

// pending returns the number of buffered entries.
func (mb *mailbox) pending() int {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	return mb.size
}
