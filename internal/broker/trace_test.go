package broker

import (
	"testing"
	"time"

	"jmsharness/internal/jms"
	"jmsharness/internal/obs"
)

// newTracedBroker returns a broker recording spans into a fresh
// registry shared with the recorder.
func newTracedBroker(t *testing.T) (*obs.Registry, *obs.Spans, *Broker) {
	t.Helper()
	reg := obs.NewRegistry()
	spans := obs.NewSpans(reg, obs.DefaultMaxInFlight, obs.DefaultKeep)
	b, err := New(Options{Name: "traced", Metrics: reg, Spans: spans})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = b.Close() })
	return reg, spans, b
}

// TestBrokerStampsTraceContext checks a plain broker send stamps the
// trace ID onto the message and the completed span carries it.
func TestBrokerStampsTraceContext(t *testing.T) {
	_, spans, b := newTracedBroker(t)
	_, sess := openSession(t, b, false, jms.AckAuto)
	q := jms.Queue("trace")
	p, err := sess.CreateProducer(q)
	if err != nil {
		t.Fatal(err)
	}
	c, err := sess.CreateConsumer(q)
	if err != nil {
		t.Fatal(err)
	}
	m := jms.NewTextMessage("x")
	if err := p.Send(m, jms.DefaultSendOptions()); err != nil {
		t.Fatal(err)
	}
	tid := obs.MessageTraceID(m)
	if tid == "" {
		t.Fatal("send did not stamp a trace ID")
	}
	got, err := c.Receive(time.Second)
	if err != nil || got == nil {
		t.Fatalf("receive: msg=%v err=%v", got, err)
	}
	if obs.MessageTraceID(got) != tid {
		t.Errorf("delivered trace ID = %q, want %q", obs.MessageTraceID(got), tid)
	}
	deadline := time.Now().Add(3 * time.Second)
	for {
		found := false
		for _, sp := range spans.Recent() {
			if sp.TraceID == tid && sp.Kind == obs.KindEnqueue && sp.Outcome == "acked" {
				found = true
			}
		}
		if found {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no acked enqueue span carries the trace ID")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRedeliveryWaitSeparateFromQueueWait recovers a client-ack session
// and checks the redelivery re-observation lands in
// span.redelivery_wait_ns — NOT a second (enqueue-relative, so wildly
// inflated) sample in span.queue_wait_ns.
func TestRedeliveryWaitSeparateFromQueueWait(t *testing.T) {
	reg, spans, b := newTracedBroker(t)
	_, sess := openSession(t, b, false, jms.AckClient)
	q := jms.Queue("redeliver")
	p, err := sess.CreateProducer(q)
	if err != nil {
		t.Fatal(err)
	}
	c, err := sess.CreateConsumer(q)
	if err != nil {
		t.Fatal(err)
	}
	mustSend(t, p, "again", jms.DefaultSendOptions())
	if got := mustReceiveText(t, c, time.Second); got != "again" {
		t.Fatalf("got %q", got)
	}
	if err := sess.Recover(); err != nil {
		t.Fatal(err)
	}
	m, err := c.Receive(time.Second)
	if err != nil || m == nil || !m.Redelivered {
		t.Fatalf("redelivery: %v, %v", m, err)
	}
	if err := sess.Acknowledge(); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(3 * time.Second)
	for reg.Counter("span.ended").Value() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("span never ended")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := reg.Histogram("span.queue_wait_ns", nil).Snapshot().Count; got != 1 {
		t.Errorf("queue_wait samples = %d, want 1 (first delivery only)", got)
	}
	if got := reg.Histogram("span.redelivery_wait_ns", nil).Snapshot().Count; got != 1 {
		t.Errorf("redelivery_wait samples = %d, want 1", got)
	}
	var sp obs.Span
	for _, s := range spans.Recent() {
		if s.Endpoint == "queue:redeliver" {
			sp = s
		}
	}
	if sp.Redeliveries != 1 {
		t.Errorf("span redeliveries = %d, want 1", sp.Redeliveries)
	}
}
