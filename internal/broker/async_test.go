package broker

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"jmsharness/internal/jms"
	"jmsharness/internal/store"
)

// TestSendAsyncOrderAndCompletion pipelines persistent sends through a
// sharded WAL and checks the async contract: stamps assigned at staging,
// per-producer order preserved end to end, every completion resolves
// nil.
func TestSendAsyncOrderAndCompletion(t *testing.T) {
	w, err := store.OpenSharded(filepath.Join(t.TempDir(), "async.wal"), 2, store.WALOptions{Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(Options{Name: "async", Stable: w})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	_, sess := openSession(t, b, false, jms.AckAuto)
	q := jms.Queue("pipeline")
	p, err := sess.CreateProducer(q)
	if err != nil {
		t.Fatal(err)
	}
	ap, ok := p.(jms.AsyncProducer)
	if !ok {
		t.Fatal("broker producer does not implement jms.AsyncProducer")
	}

	const n = 64
	completions := make([]jms.Completion, 0, n)
	for i := 0; i < n; i++ {
		msg := jms.NewTextMessage(fmt.Sprintf("m%d", i))
		c, err := ap.SendAsync(msg, jms.SendOptions{Mode: jms.Persistent, Priority: jms.PriorityDefault})
		if err != nil {
			t.Fatalf("SendAsync %d: %v", i, err)
		}
		if msg.ID == "" || msg.Timestamp.IsZero() {
			t.Fatalf("send %d not stamped at staging: id=%q ts=%v", i, msg.ID, msg.Timestamp)
		}
		completions = append(completions, c)
	}
	for i, c := range completions {
		if err := c(); err != nil {
			t.Fatalf("completion %d: %v", i, err)
		}
	}

	c, err := sess.CreateConsumer(q)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		want := fmt.Sprintf("m%d", i)
		if got := mustReceiveText(t, c, time.Second); got != want {
			t.Fatalf("position %d: got %q, want %q (async sends reordered)", i, got, want)
		}
	}
}

// TestSendAsyncTransactedBuffersUntilCommit checks the transacted
// fallback: SendAsync buffers like Send, completes immediately, and the
// message only enters the provider at commit.
func TestSendAsyncTransactedBuffersUntilCommit(t *testing.T) {
	b := newTestBroker(t)
	_, sess := openSession(t, b, true, jms.AckAuto)
	q := jms.Queue("txq")
	p, err := sess.CreateProducer(q)
	if err != nil {
		t.Fatal(err)
	}
	ap := p.(jms.AsyncProducer)
	comp, err := ap.SendAsync(jms.NewTextMessage("tx"), jms.DefaultSendOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := comp(); err != nil {
		t.Fatal(err)
	}
	_, other := openSession(t, b, false, jms.AckAuto)
	c, err := other.CreateConsumer(q)
	if err != nil {
		t.Fatal(err)
	}
	if m, err := c.Receive(50 * time.Millisecond); err != nil || m != nil {
		t.Fatalf("uncommitted async send visible: msg=%v err=%v", m, err)
	}
	if err := sess.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := mustReceiveText(t, c, time.Second); got != "tx" {
		t.Errorf("got %q after commit", got)
	}
}
