package broker

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"jmsharness/internal/jms"
)

func TestTemporaryQueueBasics(t *testing.T) {
	b := newTestBroker(t)
	conn, sess := openSession(t, b, false, jms.AckAuto)
	tq, err := sess.CreateTemporaryQueue()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(tq.Name(), "TEMP.") {
		t.Errorf("temp queue name = %q", tq.Name())
	}
	// Usable like a normal queue by its owner.
	p, err := sess.CreateProducer(tq)
	if err != nil {
		t.Fatal(err)
	}
	c, err := sess.CreateConsumer(tq)
	if err != nil {
		t.Fatal(err)
	}
	mustSend(t, p, "tmp", jms.DefaultSendOptions())
	if got := mustReceiveText(t, c, time.Second); got != "tmp" {
		t.Errorf("got %q", got)
	}
	_ = conn
}

func TestTemporaryQueueOwnership(t *testing.T) {
	b := newTestBroker(t)
	_, sess1 := openSession(t, b, false, jms.AckAuto)
	_, sess2 := openSession(t, b, false, jms.AckAuto)
	tq, err := sess1.CreateTemporaryQueue()
	if err != nil {
		t.Fatal(err)
	}
	// Another connection may SEND to the temp queue (that is the whole
	// point of ReplyTo)...
	p2, err := sess2.CreateProducer(tq)
	if err != nil {
		t.Fatal(err)
	}
	mustSend(t, p2, "reply", jms.DefaultSendOptions())
	// ...but may not CONSUME from it.
	if _, err := sess2.CreateConsumer(tq); !errors.Is(err, jms.ErrInvalidDestination) {
		t.Errorf("foreign consumer: %v", err)
	}
	c1, err := sess1.CreateConsumer(tq)
	if err != nil {
		t.Fatal(err)
	}
	if got := mustReceiveText(t, c1, time.Second); got != "reply" {
		t.Errorf("owner got %q", got)
	}
}

func TestTemporaryQueueDeletedOnConnectionClose(t *testing.T) {
	b := newTestBroker(t)
	conn, sess := openSession(t, b, false, jms.AckAuto)
	tq, err := sess.CreateTemporaryQueue()
	if err != nil {
		t.Fatal(err)
	}
	p, err := sess.CreateProducer(tq)
	if err != nil {
		t.Fatal(err)
	}
	mustSend(t, p, "stranded", jms.DefaultSendOptions())
	if b.Stats().Backlog != 1 {
		t.Fatalf("Backlog = %d", b.Stats().Backlog)
	}
	if err := conn.Close(); err != nil {
		t.Fatal(err)
	}
	if b.Stats().Backlog != 0 {
		t.Errorf("temp queue contents survived connection close: Backlog = %d", b.Stats().Backlog)
	}
	// Ownership entry is gone: a new connection may not consume...
	_, sess2 := openSession(t, b, false, jms.AckAuto)
	c2, err := sess2.CreateConsumer(tq)
	if err != nil {
		t.Fatalf("temp name after deletion should behave as a fresh queue: %v", err)
	}
	if msg, err := c2.Receive(50 * time.Millisecond); err != nil || msg != nil {
		t.Errorf("stale message leaked: %v", msg)
	}
}

func TestRequestReply(t *testing.T) {
	b := newTestBroker(t)
	_, clientSess := openSession(t, b, false, jms.AckAuto)
	_, serverSess := openSession(t, b, false, jms.AckAuto)

	service := jms.Queue("echo-service")

	// Server: consume requests, reply with the reversed text.
	serverCons, err := serverSess.CreateConsumer(service)
	if err != nil {
		t.Fatal(err)
	}
	replyProd, err := serverSess.CreateProducer(nil)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			req, err := serverCons.Receive(50 * time.Millisecond)
			if err != nil {
				return
			}
			if req == nil {
				continue
			}
			text := []byte(req.Body.(jms.TextBody))
			for i, j := 0, len(text)-1; i < j; i, j = i+1, j-1 {
				text[i], text[j] = text[j], text[i]
			}
			if err := jms.Reply(replyProd, req, jms.NewTextMessage(string(text)), jms.DefaultSendOptions()); err != nil {
				t.Errorf("reply: %v", err)
				return
			}
		}
	}()
	defer func() {
		close(stop)
		wg.Wait()
	}()

	requestor, err := jms.NewRequestor(clientSess, service)
	if err != nil {
		t.Fatal(err)
	}
	defer requestor.Close()
	for _, word := range []string{"hello", "jms", "abc"} {
		reply, err := requestor.Request(jms.NewTextMessage(word), jms.DefaultSendOptions(), 2*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if reply == nil {
			t.Fatalf("request %q timed out", word)
		}
		want := reverse(word)
		if got := string(reply.Body.(jms.TextBody)); got != want {
			t.Errorf("reply = %q, want %q", got, want)
		}
	}
	// Timeout path: a request to a dead service returns (nil, nil).
	deadReq, err := jms.NewRequestor(clientSess, jms.Queue("nobody-home"))
	if err != nil {
		t.Fatal(err)
	}
	defer deadReq.Close()
	reply, err := deadReq.Request(jms.NewTextMessage("x"), jms.DefaultSendOptions(), 60*time.Millisecond)
	if err != nil || reply != nil {
		t.Errorf("dead service: %v, %v", reply, err)
	}
}

func reverse(s string) string {
	b := []byte(s)
	for i, j := 0, len(b)-1; i < j; i, j = i+1, j-1 {
		b[i], b[j] = b[j], b[i]
	}
	return string(b)
}

func TestReplyWithoutReplyTo(t *testing.T) {
	b := newTestBroker(t)
	_, sess := openSession(t, b, false, jms.AckAuto)
	p, err := sess.CreateProducer(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := jms.Reply(p, jms.NewTextMessage("no reply-to"), jms.NewTextMessage("r"), jms.DefaultSendOptions()); !errors.Is(err, jms.ErrInvalidDestination) {
		t.Errorf("err = %v", err)
	}
}
