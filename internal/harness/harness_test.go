package harness

import (
	"testing"
	"time"

	"jmsharness/internal/analysis"
	"jmsharness/internal/broker"
	"jmsharness/internal/jms"
	"jmsharness/internal/model"
	"jmsharness/internal/stats"
	"jmsharness/internal/trace"
)

func newBroker(t *testing.T, profile broker.Profile) *broker.Broker {
	t.Helper()
	b, err := broker.New(broker.Options{Name: "hb", Profile: profile})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = b.Close() })
	return b
}

// runAndCheck runs a config against a fresh unlimited broker and
// requires every safety property to hold.
func runAndCheck(t *testing.T, cfg Config, mcfg model.Config) *trace.Trace {
	t.Helper()
	b := newBroker(t, broker.Unlimited())
	runner := NewRunner(b, nil)
	tr, err := runner.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	report, err := model.Check(tr, mcfg)
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() {
		t.Fatalf("safety violations:\n%s", report)
	}
	return tr
}

func TestQueueEndToEnd(t *testing.T) {
	cfg := Config{
		Name:        "queue-basic",
		Destination: jms.Queue("orders"),
		Producers: []ProducerConfig{
			{ID: "p1", Rate: 400, BodySize: 64},
			{ID: "p2", Rate: 400, BodySize: 64},
		},
		Consumers: []ConsumerConfig{
			{ID: "c1"},
			{ID: "c2"},
		},
		Warmup:   20 * time.Millisecond,
		Run:      200 * time.Millisecond,
		Warmdown: 150 * time.Millisecond,
	}
	tr := runAndCheck(t, cfg, model.DefaultConfig())
	s := tr.Summarize()
	if s.Sends < 20 {
		t.Errorf("only %d sends", s.Sends)
	}
	if s.Delivers != s.Sends {
		t.Errorf("sends=%d delivers=%d: queue should deliver everything", s.Sends, s.Delivers)
	}
	m, err := analysis.Analyze(tr, analysis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Producer.PerSecond <= 0 || m.Consumer.PerSecond <= 0 {
		t.Errorf("throughput: %v / %v", m.Producer, m.Consumer)
	}
	if m.Delay.N == 0 || m.Delay.Mean <= 0 {
		t.Errorf("delay: %v", m.Delay)
	}
}

func TestPubSubFanoutEndToEnd(t *testing.T) {
	cfg := Config{
		Name:        "pubsub-fanout",
		Destination: jms.Topic("prices"),
		Producers:   []ProducerConfig{{ID: "pub", Rate: 300, BodySize: 32}},
		Consumers:   []ConsumerConfig{{ID: "s1"}, {ID: "s2"}, {ID: "s3"}},
		Warmup:      20 * time.Millisecond,
		Run:         200 * time.Millisecond,
		Warmdown:    150 * time.Millisecond,
	}
	tr := runAndCheck(t, cfg, model.DefaultConfig())
	s := tr.Summarize()
	// Each subscriber gets every message published while subscribed.
	if s.Delivers < 2*s.Sends {
		t.Errorf("sends=%d delivers=%d: expected ~3x fanout", s.Sends, s.Delivers)
	}
}

func TestDurableSubscriberEndToEnd(t *testing.T) {
	cfg := Config{
		Name:        "durable",
		Destination: jms.Topic("audit"),
		Producers:   []ProducerConfig{{ID: "pub", Rate: 200, BodySize: 32}},
		Consumers: []ConsumerConfig{
			{ID: "d1", Durable: true, SubName: "watcher", ClientID: "client-A"},
		},
		Warmup:   20 * time.Millisecond,
		Run:      150 * time.Millisecond,
		Warmdown: 100 * time.Millisecond,
	}
	tr := runAndCheck(t, cfg, model.DefaultConfig())
	subs := tr.ByType(trace.EventSubscribe)
	if len(subs) != 1 {
		t.Errorf("subscribe events = %d", len(subs))
	}
	if subs[0].Endpoint != "sub:client-A:watcher" {
		t.Errorf("endpoint = %q", subs[0].Endpoint)
	}
}

func TestTransactedProducersAndConsumers(t *testing.T) {
	cfg := Config{
		Name:        "tx",
		Destination: jms.Queue("txq"),
		Producers: []ProducerConfig{
			{ID: "p1", Rate: 500, BodySize: 32, Transacted: true, TxBatch: 5, AbortEvery: 3},
		},
		Consumers: []ConsumerConfig{
			{ID: "c1", Transacted: true, TxBatch: 4},
		},
		Warmup:   20 * time.Millisecond,
		Run:      250 * time.Millisecond,
		Warmdown: 200 * time.Millisecond,
	}
	tr := runAndCheck(t, cfg, model.DefaultConfig())
	s := tr.Summarize()
	if s.Commits == 0 || s.Aborts == 0 {
		t.Errorf("commits=%d aborts=%d: abort schedule did not fire", s.Commits, s.Aborts)
	}
	// Messages in aborted producer transactions must not be delivered:
	// model.Check above verifies integrity; sanity-check that some sends
	// were indeed discarded.
	w, err := model.Extract(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.AttemptedByUID) <= len(w.SendByUID) {
		t.Errorf("attempted=%d sent=%d: aborted sends should not count as sent",
			len(w.AttemptedByUID), len(w.SendByUID))
	}
}

func TestAckModesEndToEnd(t *testing.T) {
	for _, mode := range []jms.AckMode{jms.AckAuto, jms.AckClient, jms.AckDupsOK} {
		t.Run(mode.String(), func(t *testing.T) {
			cfg := Config{
				Name:        "ack-" + mode.String(),
				Destination: jms.Queue("ackq-" + mode.String()),
				Producers:   []ProducerConfig{{ID: "p1", Rate: 300, BodySize: 16}},
				Consumers:   []ConsumerConfig{{ID: "c1", AckMode: mode}},
				Warmup:      10 * time.Millisecond,
				Run:         150 * time.Millisecond,
				Warmdown:    100 * time.Millisecond,
			}
			mcfg := model.DefaultConfig()
			mcfg.AllowDuplicates = mode == jms.AckDupsOK
			runAndCheck(t, cfg, mcfg)
		})
	}
}

func TestAllBodyKinds(t *testing.T) {
	kinds := []jms.BodyKind{jms.BodyText, jms.BodyBytes, jms.BodyMap, jms.BodyStream, jms.BodyObject}
	producers := make([]ProducerConfig, 0, len(kinds))
	for _, k := range kinds {
		producers = append(producers, ProducerConfig{
			ID: "p-" + k.String(), Rate: 150, BodyKind: k, BodySize: 100,
		})
	}
	cfg := Config{
		Name:        "bodies",
		Destination: jms.Queue("bodies"),
		Producers:   producers,
		Consumers:   []ConsumerConfig{{ID: "c1"}},
		Warmup:      10 * time.Millisecond,
		Run:         150 * time.Millisecond,
		Warmdown:    100 * time.Millisecond,
	}
	// Integrity checksums across all five body kinds are verified by the
	// model check inside runAndCheck.
	runAndCheck(t, cfg, model.DefaultConfig())
}

func TestPacingProfiles(t *testing.T) {
	cfg := Config{
		Name:        "profiles",
		Destination: jms.Queue("paced"),
		Producers: []ProducerConfig{
			{ID: "steady", Rate: 300, Profile: stats.ProfileSteady},
			{ID: "burst", Rate: 300, Profile: stats.ProfileBurst, BurstSize: 10},
			{ID: "poisson", Rate: 300, Profile: stats.ProfilePoisson},
		},
		Consumers: []ConsumerConfig{{ID: "c1"}},
		Warmup:    10 * time.Millisecond,
		Run:       200 * time.Millisecond,
		Warmdown:  150 * time.Millisecond,
	}
	tr := runAndCheck(t, cfg, model.DefaultConfig())
	m, err := analysis.Analyze(tr, analysis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"steady", "burst", "poisson"} {
		if m.PerProducer[id].Count == 0 {
			t.Errorf("producer %s sent nothing", id)
		}
	}
}

func TestExpiryConfiguration(t *testing.T) {
	// The paper's stock expiry test: TTL alternating between 1ms (should
	// expire) and 0 (never expires), against a provider with enough
	// latency that 1ms messages die in transit.
	profile := broker.Profile{Name: "slowish", BaseLatency: 15 * time.Millisecond}
	b, err := broker.New(broker.Options{Name: "exp", Profile: profile})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	cfg := Config{
		Name:        "expiry",
		Destination: jms.Queue("expq"),
		Producers: []ProducerConfig{
			{ID: "p1", Rate: 300, BodySize: 16, TTLs: []time.Duration{0, time.Millisecond}},
		},
		Consumers: []ConsumerConfig{{ID: "c1"}},
		Warmup:    10 * time.Millisecond,
		Run:       200 * time.Millisecond,
		Warmdown:  150 * time.Millisecond,
	}
	runner := NewRunner(b, nil)
	tr, err := runner.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	report, err := model.Check(tr, model.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() {
		t.Fatalf("correct provider failed expiry:\n%s", report)
	}
	res, ok := report.Result(model.PropExpiredMessages)
	if !ok || res.Skipped != "" {
		t.Fatalf("expiry property not evaluated: %+v", res)
	}
	if b.Stats().Expired == 0 {
		t.Error("no messages actually expired; test configuration too fast")
	}
}

func TestCrashRecoveryEndToEnd(t *testing.T) {
	// The paper's §5 future work, implemented: crash the provider
	// mid-run; persistent messages must still satisfy Property 2.
	b := newBroker(t, broker.Unlimited())
	cfg := Config{
		Name:        "crash",
		Destination: jms.Queue("crashq"),
		Producers:   []ProducerConfig{{ID: "p1", Rate: 300, BodySize: 32, Mode: jms.Persistent}},
		Consumers:   []ConsumerConfig{{ID: "c1"}},
		Warmup:      10 * time.Millisecond,
		Run:         300 * time.Millisecond,
		Warmdown:    250 * time.Millisecond,
		CrashAfter:  100 * time.Millisecond,
	}
	runner := NewRunner(b, nil)
	tr, err := runner.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.HasCrash() {
		t.Fatal("no crash event recorded")
	}
	report, err := model.Check(tr, model.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() {
		t.Fatalf("persistent delivery across crash failed:\n%s", report)
	}
	s := tr.Summarize()
	if s.Sends < 10 || s.Delivers < 10 {
		t.Errorf("too little traffic around the crash: %+v", s)
	}
}

func TestCrashInjectionUnsupported(t *testing.T) {
	// A provider without Crash/Restart must be rejected, not silently
	// skipped.
	b := newBroker(t, broker.Unlimited())
	runner := NewRunner(nonCrashable{b}, nil)
	cfg := Config{
		Name:        "nocrash",
		Destination: jms.Queue("q"),
		Producers:   []ProducerConfig{{ID: "p1", Rate: 100}},
		Run:         50 * time.Millisecond,
		CrashAfter:  10 * time.Millisecond,
	}
	if _, err := runner.Run(cfg); err == nil {
		t.Error("crash injection against non-crashable provider should fail")
	}
}

// nonCrashable hides the broker's Crash/Restart methods.
type nonCrashable struct {
	factory jms.ConnectionFactory
}

func (n nonCrashable) CreateConnection() (jms.Connection, error) {
	return n.factory.CreateConnection()
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Name: "empty", Run: time.Second},
		{Name: "norun", Producers: []ProducerConfig{{ID: "p", Rate: 1, Destination: jms.Queue("q")}}},
		{Name: "noid", Run: time.Second, Producers: []ProducerConfig{{Rate: 1, Destination: jms.Queue("q")}}},
		{Name: "dup", Run: time.Second, Destination: jms.Queue("q"),
			Producers: []ProducerConfig{{ID: "x", Rate: 1}, {ID: "x", Rate: 1}}},
		{Name: "norate", Run: time.Second, Destination: jms.Queue("q"),
			Producers: []ProducerConfig{{ID: "p"}}},
		{Name: "nodest", Run: time.Second,
			Producers: []ProducerConfig{{ID: "p", Rate: 1}}},
		{Name: "badpri", Run: time.Second, Destination: jms.Queue("q"),
			Producers: []ProducerConfig{{ID: "p", Rate: 1, Priorities: []jms.Priority{42}}}},
		{Name: "durq", Run: time.Second, Destination: jms.Queue("q"),
			Consumers: []ConsumerConfig{{ID: "c", Durable: true, SubName: "s", ClientID: "x"}}},
		{Name: "durmissing", Run: time.Second, Destination: jms.Topic("t"),
			Consumers: []ConsumerConfig{{ID: "c", Durable: true}}},
		{Name: "txack", Run: time.Second, Destination: jms.Queue("q"),
			Consumers: []ConsumerConfig{{ID: "c", Transacted: true, AckMode: jms.AckClient}}},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %q should be invalid", cfg.Name)
		}
	}
}

func TestRunnerRejectsInvalidConfig(t *testing.T) {
	b := newBroker(t, broker.Unlimited())
	if _, err := NewRunner(b, nil).Run(Config{Name: "bad"}); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestBodyFor(t *testing.T) {
	rng := stats.NewRNG(1)
	kinds := []jms.BodyKind{jms.BodyText, jms.BodyBytes, jms.BodyMap, jms.BodyStream, jms.BodyObject}
	for _, k := range kinds {
		body := bodyFor(k, 100, rng)
		if body.Kind() != k {
			t.Errorf("bodyFor(%v) returned %v", k, body.Kind())
		}
		if body.Size() < 50 {
			t.Errorf("bodyFor(%v) size %d too small", k, body.Size())
		}
	}
}

func TestTraceValidatesStructurally(t *testing.T) {
	cfg := Config{
		Name:        "structural",
		Destination: jms.Queue("sq"),
		Producers:   []ProducerConfig{{ID: "p1", Rate: 200, BodySize: 8}},
		Consumers:   []ConsumerConfig{{ID: "c1"}},
		Warmup:      10 * time.Millisecond,
		Run:         100 * time.Millisecond,
		Warmdown:    80 * time.Millisecond,
	}
	b := newBroker(t, broker.Unlimited())
	tr, err := NewRunner(b, nil).Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Errorf("harness produced structurally invalid trace: %v", err)
	}
	// Phase markers present and ordered.
	for _, phase := range []string{trace.PhaseWarmup, trace.PhaseRun, trace.PhaseWarmdown, trace.PhaseDone} {
		if _, _, ok := tr.PhaseBounds(phase); !ok {
			t.Errorf("phase %s missing", phase)
		}
	}
}

func TestCyclingQueueConsumerConforms(t *testing.T) {
	// A queue receiver that disconnects and reconnects repeatedly: the
	// messages wait at the queue (point-to-point semantics), so every
	// required message is still delivered.
	cfg := Config{
		Name:        "cycle-queue",
		Destination: jms.Queue("cycleq"),
		Producers:   []ProducerConfig{{ID: "p1", Rate: 300, BodySize: 32}},
		Consumers:   []ConsumerConfig{{ID: "c1", CycleEvery: 60 * time.Millisecond}},
		Warmup:      20 * time.Millisecond,
		Run:         300 * time.Millisecond,
		Warmdown:    250 * time.Millisecond,
	}
	tr := runAndCheck(t, cfg, model.DefaultConfig())
	closes := tr.Filter(func(e *trace.Event) bool {
		return e.Type == trace.EventConsumerClose && e.Detail == "cycle"
	})
	if len(closes) < 2 {
		t.Errorf("only %d cycles happened", len(closes))
	}
}

func TestCyclingDurableSubscriberConforms(t *testing.T) {
	// A durable subscriber that cycles: messages published while it is
	// away accumulate and must all be delivered (required-messages holds
	// across the gaps).
	cfg := Config{
		Name:        "cycle-durable",
		Destination: jms.Topic("cyclet"),
		Producers:   []ProducerConfig{{ID: "p1", Rate: 300, BodySize: 32}},
		Consumers: []ConsumerConfig{
			{ID: "d1", Durable: true, SubName: "cyc", ClientID: "cycle-client",
				CycleEvery: 60 * time.Millisecond},
		},
		Warmup:   20 * time.Millisecond,
		Run:      300 * time.Millisecond,
		Warmdown: 250 * time.Millisecond,
	}
	tr := runAndCheck(t, cfg, model.DefaultConfig())
	s := tr.Summarize()
	// Everything sent must eventually be delivered to the durable
	// subscription despite the churn.
	if s.Delivers < s.Sends {
		t.Errorf("sends=%d delivers=%d: durable cycling lost messages", s.Sends, s.Delivers)
	}
}

func TestCyclingNonDurableSubscriberConforms(t *testing.T) {
	// A cycling non-durable subscriber becomes a fresh artificial
	// subscription each time; messages published in the gaps are
	// legitimately missed (subscription latency bracketing), which the
	// model must accept without violations.
	cfg := Config{
		Name:        "cycle-nondurable",
		Destination: jms.Topic("cyclen"),
		Producers:   []ProducerConfig{{ID: "p1", Rate: 300, BodySize: 32}},
		Consumers:   []ConsumerConfig{{ID: "s1", CycleEvery: 50 * time.Millisecond}},
		Warmup:      20 * time.Millisecond,
		Run:         300 * time.Millisecond,
		Warmdown:    200 * time.Millisecond,
	}
	tr := runAndCheck(t, cfg, model.DefaultConfig())
	// Distinct endpoints per incarnation.
	endpoints := map[string]bool{}
	for _, ev := range tr.ByType(trace.EventConsumerOpen) {
		endpoints[ev.Endpoint] = true
	}
	if len(endpoints) < 2 {
		t.Errorf("cycling non-durable subscriber reused endpoints: %v", endpoints)
	}
	s := tr.Summarize()
	if s.Delivers >= s.Sends {
		t.Log("note: no messages fell into cycle gaps this run")
	}
}

func TestCyclingTransactedConsumerConforms(t *testing.T) {
	cfg := Config{
		Name:        "cycle-tx",
		Destination: jms.Queue("cycletx"),
		Producers:   []ProducerConfig{{ID: "p1", Rate: 300, BodySize: 32}},
		Consumers: []ConsumerConfig{
			{ID: "c1", Transacted: true, TxBatch: 4, CycleEvery: 70 * time.Millisecond},
		},
		Warmup:   20 * time.Millisecond,
		Run:      300 * time.Millisecond,
		Warmdown: 250 * time.Millisecond,
	}
	runAndCheck(t, cfg, model.DefaultConfig())
}
