package harness

import (
	"testing"
	"time"

	"jmsharness/internal/analysis"
	"jmsharness/internal/broker"
	"jmsharness/internal/jms"
	"jmsharness/internal/model"
)

// TestSelectorEndToEnd runs a mixed-priority workload where one
// consumer only takes high-priority messages (via a header selector) and
// another takes the rest. The formal model must account for the
// selectors: each group is only owed the messages its selector admits.
func TestSelectorEndToEnd(t *testing.T) {
	b, err := broker.New(broker.Options{Name: "selharness"})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	cfg := Config{
		Name:        "selector-split",
		Destination: jms.Topic("selsplit"),
		Producers: []ProducerConfig{
			{ID: "p1", Rate: 400, BodySize: 32, Priorities: []jms.Priority{1, 8}},
		},
		Consumers: []ConsumerConfig{
			{ID: "urgent", Selector: "JMSPriority >= 5"},
			{ID: "bulk", Selector: "JMSPriority < 5"},
			{ID: "all"},
		},
		Warmup:   20 * time.Millisecond,
		Run:      200 * time.Millisecond,
		Warmdown: 150 * time.Millisecond,
	}
	tr, err := NewRunner(b, nil).Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	report, err := model.Check(tr, model.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() {
		t.Fatalf("selector workload failed conformance:\n%s", report)
	}
	m, err := analysis.Analyze(tr, analysis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	urgent := m.PerConsumer["urgent"].Count
	bulk := m.PerConsumer["bulk"].Count
	all := m.PerConsumer["all"].Count
	if urgent == 0 || bulk == 0 || all == 0 {
		t.Fatalf("counts: urgent=%d bulk=%d all=%d", urgent, bulk, all)
	}
	// The unfiltered subscriber sees roughly what the split pair sees
	// combined; the subscriptions open at slightly different instants,
	// so allow a subscription-latency tail of a few tens of
	// milliseconds' worth of traffic (the conformance check above is
	// the authoritative correctness assertion).
	if diff := all - (urgent + bulk); diff > 25 || diff < -25 {
		t.Errorf("all=%d vs urgent+bulk=%d", all, urgent+bulk)
	}
	// Split ratio roughly even (priorities alternate).
	if urgent*2 < bulk || bulk*2 < urgent {
		t.Errorf("lopsided split: urgent=%d bulk=%d", urgent, bulk)
	}
}

// TestSelectorRequiredMessagesExemption verifies the model does not
// demand messages a group's selector rejects: with only the urgent
// consumer subscribed, low-priority messages are simply never owed to
// it.
func TestSelectorRequiredMessagesExemption(t *testing.T) {
	b, err := broker.New(broker.Options{Name: "selexempt"})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	cfg := Config{
		Name:        "selector-exempt",
		Destination: jms.Topic("selex"),
		Producers: []ProducerConfig{
			{ID: "p1", Rate: 300, BodySize: 32, Priorities: []jms.Priority{1, 8}},
		},
		Consumers: []ConsumerConfig{
			{ID: "urgent", Selector: "JMSPriority >= 5"},
		},
		Warmup:   20 * time.Millisecond,
		Run:      200 * time.Millisecond,
		Warmdown: 150 * time.Millisecond,
	}
	tr, err := NewRunner(b, nil).Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	report, err := model.Check(tr, model.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Low-priority messages never reach the urgent group — that must
	// not be a required-messages violation.
	if !report.OK() {
		t.Fatalf("selector exemption not applied:\n%s", report)
	}
	res, _ := report.Result(model.PropRequiredMessages)
	if res.Checked == 0 {
		t.Error("nothing was checked at all")
	}
}

// TestSelectorDurableEndToEnd exercises a durable subscription with a
// selector through the harness, including the accumulate-while-inactive
// path (reconnect after crash keeps the same filtered subscription).
func TestSelectorDurableEndToEnd(t *testing.T) {
	b, err := broker.New(broker.Options{Name: "seldur"})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	cfg := Config{
		Name:        "selector-durable",
		Destination: jms.Topic("seldurt"),
		Producers: []ProducerConfig{
			{ID: "p1", Rate: 300, BodySize: 32, Priorities: []jms.Priority{1, 8}, Mode: jms.Persistent},
		},
		Consumers: []ConsumerConfig{
			{ID: "d1", Durable: true, SubName: "hot", ClientID: "sel-client", Selector: "JMSPriority >= 5"},
		},
		Warmup:     20 * time.Millisecond,
		Run:        300 * time.Millisecond,
		Warmdown:   250 * time.Millisecond,
		CrashAfter: 120 * time.Millisecond,
	}
	tr, err := NewRunner(b, nil).Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.HasCrash() {
		t.Fatal("no crash recorded")
	}
	report, err := model.Check(tr, model.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() {
		t.Fatalf("durable selector across crash failed:\n%s", report)
	}
}
