// Package harness runs configured tests against a JMS provider and
// produces execution traces for analysis. It is the "Test" box of the
// paper's Figure 4 architecture: "A test creates a variety of producers
// and consumers and starts sending and receiving messages. As each
// message is sent and received, these events are logged ... along with
// the unique message identifier and a timestamp. Individual producers
// and consumers can be configured with different message production,
// persistence, durability and other characteristics."
//
// A run has warm-up, run and warm-down periods (§3.2): producers send
// during warm-up and run; during warm-down they stop so consumers can
// drain the tail of unconsumed messages. Every configuration knob the
// paper names is available: message body type and size, priority,
// delivery mode, transactions (for producers and consumers),
// acknowledgement mode, durable subscriptions, and steady/burst/Poisson
// send profiles. Crash injection (the paper's §5 future work) is
// supported against providers that expose Crash/Restart; harness workers
// reconnect and keep logging, so persistent delivery across failures is
// tested end to end.
package harness

import (
	"fmt"
	"time"

	"jmsharness/internal/jms"
	"jmsharness/internal/stats"
)

// ProducerConfig describes one logical message producer.
type ProducerConfig struct {
	// ID is the logical producer identity used in trace events.
	ID string
	// Destination overrides the test-level destination.
	Destination jms.Destination
	// Rate is the target send rate in messages/second.
	Rate float64
	// Profile selects the pacing profile; zero means steady.
	Profile stats.Profile
	// BurstSize is the burst length for the burst profile.
	BurstSize int
	// BodyKind selects the message body type; zero means bytes.
	BodyKind jms.BodyKind
	// BodySize is the approximate body payload size in bytes.
	BodySize int
	// Priorities are assigned round-robin across sends; empty means
	// the default priority. Configuring several priorities at one rate
	// is how Property 4 is tested ("messages produced for the different
	// priorities are produced at the same rate").
	Priorities []jms.Priority
	// Mode is the delivery mode; zero means persistent.
	Mode jms.DeliveryMode
	// TTLs are assigned round-robin across sends; empty means no
	// expiration. The stock expiry configuration uses {0, 1ms}.
	TTLs []time.Duration
	// Transacted makes the producer's session transacted, committing
	// every TxBatch sends.
	Transacted bool
	// TxBatch is the transaction size; zero means 1.
	TxBatch int
	// AbortEvery rolls back every Nth transaction instead of committing
	// it (0 disables), to exercise Definition 1's committed-only rule.
	AbortEvery int
	// MaxMessages stops the producer after this many send attempts
	// (0 means unlimited). Scenario shrinking uses it to bound a repro
	// to a handful of messages.
	MaxMessages int
	// SendToTempOf, when non-empty, directs this producer at the
	// temporary queue currently owned by the named consumer (which must
	// have TempQueue set) instead of a configured destination — the
	// reply half of the request/reply pattern temporary queues exist
	// for. Sends are skipped while the consumer has no live temp queue.
	SendToTempOf string
}

// ConsumerConfig describes one logical message consumer.
type ConsumerConfig struct {
	// ID is the logical consumer identity used in trace events.
	ID string
	// Destination overrides the test-level destination.
	Destination jms.Destination
	// Durable subscribes durably (topics only) under SubName/ClientID.
	Durable  bool
	SubName  string
	ClientID string
	// Selector restricts the consumer to messages matching this JMS
	// message-selector expression ("" for all messages).
	Selector string
	// AckMode selects the acknowledgement mode; zero means auto.
	AckMode jms.AckMode
	// Transacted makes the consumer's session transacted, committing
	// every TxBatch receives.
	Transacted bool
	// TxBatch is the transaction size; zero means 1.
	TxBatch int
	// AbortEvery rolls back every Nth receive transaction (0 disables),
	// to exercise Definition 2's committed-only rule.
	AbortEvery int
	// CycleEvery, when positive, closes and reopens the consumer at
	// this interval — the paper's "connection and disconnection
	// behaviour" knob. Queue receivers and durable subscribers find
	// their messages waiting when they return; a non-durable subscriber
	// becomes a fresh artificial subscription each cycle, exercising
	// the first/last-message bracketing of Definitions 4–6.
	CycleEvery time.Duration
	// TempQueue makes the consumer create and consume from its own
	// temporary queue instead of a configured destination. The queue is
	// connection-scoped: cycling or a provider crash destroys it and the
	// reopened consumer owns a fresh one. Producers reach the current
	// queue via SendToTempOf.
	TempQueue bool
}

// FaultEvent schedules one provider failure injection during a run,
// generalising the single whole-provider CrashAfter to multiple events
// and — for providers implementing NodeCrasher, such as a cluster — to
// individual nodes.
type FaultEvent struct {
	// At is when the event fires, measured from test start.
	At time.Duration
	// Node selects the node to crash for NodeCrasher providers;
	// negative means the whole provider (Crashable).
	Node int
	// Downtime is how long the target stays down before Restart; zero
	// means 20ms.
	Downtime time.Duration
	// NoRestart leaves the target down for the rest of the run — a
	// permanent node kill. Against a replicated provider this is the
	// failover scenario: the node's destinations must be promoted to
	// their followers rather than recovered in place.
	NoRestart bool
}

// Config describes one test.
type Config struct {
	// Name labels the test.
	Name string
	// Node names the logical machine/process for trace events.
	Node string
	// Destination is the default destination for producers and
	// consumers that do not override it.
	Destination jms.Destination
	// Producers and Consumers describe the workload.
	Producers []ProducerConfig
	Consumers []ConsumerConfig
	// Warmup, Run and Warmdown are the three test periods (§3.2).
	Warmup   time.Duration
	Run      time.Duration
	Warmdown time.Duration
	// ReceiveTimeout is the consumer poll interval; zero means 20ms.
	ReceiveTimeout time.Duration
	// Seed makes workload generation reproducible.
	Seed uint64
	// CrashAfter, when positive and the provider supports crash
	// injection, crashes the provider that long after the test starts.
	CrashAfter time.Duration
	// CrashDowntime is how long the provider stays down; zero means
	// 20ms.
	CrashDowntime time.Duration
	// Faults schedules additional failure injections, possibly against
	// individual nodes of a federated provider.
	Faults []FaultEvent
}

// Validate reports whether the configuration is well formed.
func (c *Config) Validate() error {
	if len(c.Producers) == 0 && len(c.Consumers) == 0 {
		return fmt.Errorf("harness: test %q has no producers or consumers", c.Name)
	}
	if c.Run <= 0 {
		return fmt.Errorf("harness: test %q has no run period", c.Name)
	}
	if c.Warmup < 0 || c.Warmdown < 0 {
		return fmt.Errorf("harness: test %q has negative periods", c.Name)
	}
	tempOwners := map[string]bool{}
	for _, cc := range c.Consumers {
		if cc.TempQueue {
			tempOwners[cc.ID] = true
		}
	}
	ids := map[string]bool{}
	for i, p := range c.Producers {
		if p.ID == "" {
			return fmt.Errorf("harness: producer %d has no ID", i)
		}
		if ids[p.ID] {
			return fmt.Errorf("harness: duplicate producer ID %q", p.ID)
		}
		ids[p.ID] = true
		if p.Rate <= 0 {
			return fmt.Errorf("harness: producer %q has no rate", p.ID)
		}
		if p.SendToTempOf != "" {
			if p.Destination != nil {
				return fmt.Errorf("harness: producer %q has both a destination and SendToTempOf", p.ID)
			}
			if !tempOwners[p.SendToTempOf] {
				return fmt.Errorf("harness: producer %q targets temp queue of %q, which is not a TempQueue consumer",
					p.ID, p.SendToTempOf)
			}
		} else if p.Destination == nil && c.Destination == nil {
			return fmt.Errorf("harness: producer %q has no destination", p.ID)
		}
		if p.MaxMessages < 0 {
			return fmt.Errorf("harness: producer %q has negative MaxMessages", p.ID)
		}
		for _, pri := range p.Priorities {
			if !pri.Valid() {
				return fmt.Errorf("harness: producer %q has invalid priority %d", p.ID, pri)
			}
		}
	}
	for i, cc := range c.Consumers {
		if cc.ID == "" {
			return fmt.Errorf("harness: consumer %d has no ID", i)
		}
		if ids[cc.ID] {
			return fmt.Errorf("harness: duplicate consumer ID %q", cc.ID)
		}
		ids[cc.ID] = true
		dest := cc.Destination
		if dest == nil {
			dest = c.Destination
		}
		if cc.TempQueue {
			if cc.Durable {
				return fmt.Errorf("harness: consumer %q cannot be both durable and TempQueue", cc.ID)
			}
			if cc.Destination != nil {
				return fmt.Errorf("harness: TempQueue consumer %q must not configure a destination", cc.ID)
			}
		} else if dest == nil {
			return fmt.Errorf("harness: consumer %q has no destination", cc.ID)
		}
		if cc.Durable {
			if dest.Kind() != jms.KindTopic {
				return fmt.Errorf("harness: durable consumer %q requires a topic", cc.ID)
			}
			if cc.SubName == "" || cc.ClientID == "" {
				return fmt.Errorf("harness: durable consumer %q needs SubName and ClientID", cc.ID)
			}
		}
		if cc.Transacted && cc.AckMode != 0 {
			return fmt.Errorf("harness: consumer %q is transacted and has an ack mode", cc.ID)
		}
		if cc.CycleEvery < 0 {
			return fmt.Errorf("harness: consumer %q has negative cycle interval", cc.ID)
		}
	}
	for i, fe := range c.Faults {
		if fe.At <= 0 {
			return fmt.Errorf("harness: fault event %d has no fire time", i)
		}
		if fe.Downtime < 0 {
			return fmt.Errorf("harness: fault event %d has negative downtime", i)
		}
	}
	return nil
}

// normalized fills config defaults.
func (c *Config) normalized() Config {
	out := *c
	if out.Node == "" {
		out.Node = "node-1"
	}
	if out.ReceiveTimeout <= 0 {
		out.ReceiveTimeout = 20 * time.Millisecond
	}
	if out.CrashDowntime <= 0 {
		out.CrashDowntime = 20 * time.Millisecond
	}
	if out.Seed == 0 {
		out.Seed = 1
	}
	return out
}

// producerDefaults fills producer defaults.
func producerDefaults(p ProducerConfig, testDest jms.Destination) ProducerConfig {
	if p.Destination == nil && p.SendToTempOf == "" {
		p.Destination = testDest
	}
	if p.Profile == 0 {
		p.Profile = stats.ProfileSteady
	}
	if p.BodyKind == 0 {
		p.BodyKind = jms.BodyBytes
	}
	if p.BodySize <= 0 {
		p.BodySize = 128
	}
	if len(p.Priorities) == 0 {
		p.Priorities = []jms.Priority{jms.PriorityDefault}
	}
	if p.Mode == 0 {
		p.Mode = jms.Persistent
	}
	if len(p.TTLs) == 0 {
		p.TTLs = []time.Duration{0}
	}
	if p.TxBatch <= 0 {
		p.TxBatch = 1
	}
	return p
}

// consumerDefaults fills consumer defaults.
func consumerDefaults(cc ConsumerConfig, testDest jms.Destination) ConsumerConfig {
	if cc.Destination == nil && !cc.TempQueue {
		cc.Destination = testDest
	}
	if cc.AckMode == 0 {
		cc.AckMode = jms.AckAuto
	}
	if cc.TxBatch <= 0 {
		cc.TxBatch = 1
	}
	return cc
}
