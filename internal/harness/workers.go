package harness

import (
	"fmt"
	"time"

	"jmsharness/internal/jms"
	"jmsharness/internal/obs"
	"jmsharness/internal/stats"
	"jmsharness/internal/trace"
)

// bodyFor builds a message body of the configured kind and approximate
// size from the worker's deterministic generator.
func bodyFor(kind jms.BodyKind, size int, rng *stats.RNG) jms.Body {
	switch kind {
	case jms.BodyText:
		b := make([]byte, size)
		for i := range b {
			b[i] = byte('a' + rng.Intn(26))
		}
		return jms.TextBody(b)
	case jms.BodyMap:
		m := jms.MapBody{}
		chunk := size/4 + 1
		for i := 0; i < 4; i++ {
			data := make([]byte, chunk)
			rng.Bytes(data)
			m[fmt.Sprintf("field%d", i)] = jms.Bytes(data)
		}
		return m
	case jms.BodyStream:
		s := jms.StreamBody{}
		chunk := size/4 + 1
		for i := 0; i < 4; i++ {
			data := make([]byte, chunk)
			rng.Bytes(data)
			s = append(s, jms.Bytes(data))
		}
		return s
	case jms.BodyObject:
		data := make([]byte, size)
		rng.Bytes(data)
		return jms.ObjectBody{TypeName: "harness.Payload", Data: data}
	default: // jms.BodyBytes
		data := make([]byte, size)
		rng.Bytes(data)
		return jms.BytesBody(data)
	}
}

// Message properties used to carry the harness identity of a message.
const (
	propProducer = "jmstest.producer"
	propSeq      = "jmstest.seq"
)

// producerWorker drives one configured producer.
type producerWorker struct {
	runner    *Runner
	cfg       ProducerConfig
	log       trace.Logger
	seedBase  uint64
	stop      <-chan struct{}
	pollRetry time.Duration
	temps     *tempRegistry

	// metSent/metSentAll/metErrs publish live progress (per-producer,
	// aggregate, and send failures).
	metSent    *obs.Counter
	metSentAll *obs.Counter
	metErrs    *obs.Counter

	conn jms.Connection
	sess jms.Session
	prod jms.Producer
	// dest is the destination the current producer object targets: the
	// configured one, or the resolved temp queue for SendToTempOf.
	dest jms.Destination

	seq     int64
	txSize  int
	txNum   int
	txOpen  bool
	aborted int
}

func (w *producerWorker) run() {
	rng := stats.NewRNG(w.seedBase)
	pacer, err := stats.NewPacer(w.cfg.Profile, w.cfg.Rate, w.cfg.BurstSize, rng)
	if err != nil {
		// Validated configs cannot reach here; log and bail.
		w.log.Log(trace.Event{Type: trace.EventSendEnd, Producer: w.cfg.ID,
			Err: fmt.Sprintf("pacer: %v", err)})
		return
	}
	// Pace against an absolute schedule so per-sleep wakeup overshoot
	// does not accumulate into a systematic rate undershoot; if sends
	// fall behind (e.g. a slow provider releasing back-pressure), the
	// worker catches up with back-to-back sends.
	next := w.runner.clk.Now()
	for {
		next = next.Add(pacer.Next())
		if wait := next.Sub(w.runner.clk.Now()); wait > 0 {
			select {
			case <-w.stop:
				w.finish()
				return
			case <-w.runner.clk.After(wait):
			}
		} else {
			select {
			case <-w.stop:
				w.finish()
				return
			default:
			}
		}
		w.sendOne(rng)
		if w.cfg.MaxMessages > 0 && w.seq >= int64(w.cfg.MaxMessages) {
			w.finish()
			return
		}
	}
}

// connect (re)establishes the producer's connection, session and
// producer objects against the given destination.
func (w *producerWorker) connect(dest jms.Destination) error {
	conn, err := w.runner.factory.CreateConnection()
	if err != nil {
		return err
	}
	sess, err := conn.CreateSession(w.cfg.Transacted, jms.AckAuto)
	if err != nil {
		_ = conn.Close()
		return err
	}
	prod, err := sess.CreateProducer(dest)
	if err != nil {
		_ = conn.Close()
		return err
	}
	w.conn, w.sess, w.prod, w.dest = conn, sess, prod, dest
	return nil
}

func (w *producerWorker) teardown() {
	if w.conn != nil {
		_ = w.conn.Close()
	}
	w.conn, w.sess, w.prod = nil, nil, nil
	w.txOpen = false
	w.txSize = 0
}

// currentTxID names the producer's current harness-level transaction.
func (w *producerWorker) currentTxID() string {
	if !w.cfg.Transacted {
		return ""
	}
	if !w.txOpen {
		w.txNum++
		w.txOpen = true
	}
	return fmt.Sprintf("%s-tx%d", w.cfg.ID, w.txNum)
}

func (w *producerWorker) sendOne(rng *stats.RNG) {
	target := w.cfg.Destination
	if w.cfg.SendToTempOf != "" {
		target = w.temps.lookup(w.cfg.SendToTempOf)
		if target == nil {
			// The owning consumer has no live temp queue right now
			// (cycling, or reconnecting after a crash); skip this tick.
			return
		}
		if w.prod != nil && target.String() != w.dest.String() {
			// The owner reincarnated onto a fresh temp queue; finish any
			// open transaction and rebuild against the new one.
			w.finish()
		}
	}
	if w.prod == nil {
		if err := w.connect(target); err != nil {
			// Provider down (e.g. crashed); retry on the next tick.
			return
		}
	}
	w.seq++
	uid := trace.MessageUID(w.cfg.ID, w.seq)
	idx := int(w.seq)
	pri := w.cfg.Priorities[idx%len(w.cfg.Priorities)]
	ttl := w.cfg.TTLs[idx%len(w.cfg.TTLs)]
	msg := &jms.Message{Body: bodyFor(w.cfg.BodyKind, w.cfg.BodySize, rng)}
	msg.SetProperty(propProducer, jms.Str(w.cfg.ID))
	msg.SetProperty(propSeq, jms.Int64(w.seq))
	opts := jms.SendOptions{Mode: w.cfg.Mode, Priority: pri, TTL: ttl}
	txID := w.currentTxID()

	base := trace.Event{
		Producer:  w.cfg.ID,
		Dest:      w.dest.String(),
		MsgUID:    uid,
		MsgSeq:    w.seq,
		Priority:  pri,
		Mode:      w.cfg.Mode,
		TTL:       ttl,
		BodyBytes: msg.BodySize(),
		Checksum:  trace.BodyChecksum(msg.Body),
		TxID:      txID,
	}
	start := base
	start.Type = trace.EventSendStart
	w.log.Log(start)
	err := w.prod.Send(msg, opts)
	end := base
	end.Type = trace.EventSendEnd
	if err != nil {
		end.Err = err.Error()
	}
	w.log.Log(end)
	if err != nil {
		w.metErrs.Inc()
		w.teardown()
		return
	}
	w.metSent.Inc()
	w.metSentAll.Inc()
	if w.cfg.Transacted {
		w.txSize++
		if w.txSize >= w.cfg.TxBatch {
			w.completeTx(txID)
		}
	}
}

// completeTx commits (or, per AbortEvery, rolls back) the current
// transaction and logs the outcome.
func (w *producerWorker) completeTx(txID string) {
	w.txSize = 0
	w.txOpen = false
	abort := w.cfg.AbortEvery > 0 && w.txNum%w.cfg.AbortEvery == 0
	if abort {
		ev := trace.Event{Type: trace.EventAbort, Producer: w.cfg.ID, TxID: txID}
		if err := w.sess.Rollback(); err != nil {
			ev.Err = err.Error()
			w.log.Log(ev)
			w.teardown()
			return
		}
		w.log.Log(ev)
		return
	}
	ev := trace.Event{Type: trace.EventCommit, Producer: w.cfg.ID, TxID: txID}
	if err := w.sess.Commit(); err != nil {
		ev.Err = err.Error()
		w.log.Log(ev)
		w.teardown()
		return
	}
	w.log.Log(ev)
}

// finish completes any open transaction and closes the connection.
func (w *producerWorker) finish() {
	if w.cfg.Transacted && w.txOpen && w.sess != nil {
		w.completeTx(fmt.Sprintf("%s-tx%d", w.cfg.ID, w.txNum))
	}
	w.teardown()
}

// consumerWorker drives one configured consumer.
type consumerWorker struct {
	runner *Runner
	cfg    ConsumerConfig
	log    trace.Logger
	stop   <-chan struct{}
	poll   time.Duration
	temps  *tempRegistry

	conn jms.Connection
	sess jms.Session
	cons jms.Consumer
	// dest is the destination the live consumer reads from: the
	// configured one, or this incarnation's temporary queue.
	dest jms.Destination

	// metRecv/metRecvAll publish live progress (per-consumer and
	// aggregate deliveries).
	metRecv    *obs.Counter
	metRecvAll *obs.Counter

	subscribed bool
	openedAt   time.Time
	txSize     int
	txNum      int
	txOpen     bool
}

func (w *consumerWorker) run() {
	for {
		select {
		case <-w.stop:
			w.finish()
			return
		default:
		}
		if w.cons == nil {
			if err := w.connect(); err != nil {
				// Provider down; retry shortly.
				select {
				case <-w.stop:
					w.finish()
					return
				case <-w.runner.clk.After(w.poll):
				}
				continue
			}
		}
		if w.cfg.CycleEvery > 0 && w.runner.clk.Now().Sub(w.openedAt) >= w.cfg.CycleEvery {
			w.cycle()
			continue
		}
		msg, err := w.cons.Receive(w.poll)
		if err != nil {
			// The provider closed us (crash): record the close and
			// reconnect.
			w.log.Log(trace.Event{Type: trace.EventConsumerClose,
				Consumer: w.cfg.ID, Endpoint: w.cons.EndpointID(), Err: err.Error()})
			w.abandon()
			continue
		}
		if msg == nil {
			continue
		}
		w.deliver(msg)
	}
}

// connect (re)establishes the consumer and logs the open (and, for
// durable subscriptions, the subscribe).
func (w *consumerWorker) connect() error {
	conn, err := w.runner.factory.CreateConnection()
	if err != nil {
		return err
	}
	if w.cfg.Durable {
		if err := conn.SetClientID(w.cfg.ClientID); err != nil {
			_ = conn.Close()
			return err
		}
	}
	if err := conn.Start(); err != nil {
		_ = conn.Close()
		return err
	}
	ackMode := w.cfg.AckMode
	sess, err := conn.CreateSession(w.cfg.Transacted, ackMode)
	if err != nil {
		_ = conn.Close()
		return err
	}
	var cons jms.Consumer
	dest := w.cfg.Destination
	switch {
	case w.cfg.TempQueue:
		var tq jms.Queue
		tq, err = sess.CreateTemporaryQueue()
		if err != nil {
			_ = conn.Close()
			return err
		}
		dest = tq
		cons, err = sess.CreateConsumerWithSelector(tq, w.cfg.Selector)
	case w.cfg.Durable:
		topic, ok := w.cfg.Destination.(jms.Topic)
		if !ok {
			_ = conn.Close()
			return fmt.Errorf("harness: durable consumer %q destination is not a topic", w.cfg.ID)
		}
		cons, err = sess.CreateDurableSubscriberWithSelector(topic, w.cfg.SubName, w.cfg.Selector)
	default:
		cons, err = sess.CreateConsumerWithSelector(w.cfg.Destination, w.cfg.Selector)
	}
	if err != nil {
		_ = conn.Close()
		return err
	}
	w.conn, w.sess, w.cons, w.dest = conn, sess, cons, dest
	if w.cfg.Durable && !w.subscribed {
		w.subscribed = true
		w.log.Log(trace.Event{Type: trace.EventSubscribe, Consumer: w.cfg.ID,
			Endpoint: cons.EndpointID(), Dest: dest.String(),
			Selector: w.cfg.Selector})
	}
	w.log.Log(trace.Event{Type: trace.EventConsumerOpen, Consumer: w.cfg.ID,
		Endpoint: cons.EndpointID(), Dest: dest.String(),
		Selector: w.cfg.Selector})
	if w.cfg.TempQueue {
		// Publish only after the open event, so producers never see a
		// queue the trace does not yet know about.
		w.temps.publish(w.cfg.ID, dest)
	}
	w.openedAt = w.runner.clk.Now()
	return nil
}

// cycle closes the consumer cleanly (completing any open transaction)
// and lets the main loop reopen it — the configured disconnection/
// reconnection behaviour.
func (w *consumerWorker) cycle() {
	if w.cons == nil {
		return
	}
	if w.cfg.Transacted && w.txOpen {
		w.completeTx(fmt.Sprintf("%s-rtx%d", w.cfg.ID, w.txNum))
	}
	w.log.Log(trace.Event{Type: trace.EventConsumerClose,
		Consumer: w.cfg.ID, Endpoint: w.cons.EndpointID(), Detail: "cycle"})
	w.abandon()
}

// abandon drops a dead connection without logging (the close was already
// logged by the caller).
func (w *consumerWorker) abandon() {
	if w.cfg.TempQueue {
		// Closing the connection destroys the temp queue; unpublish it
		// first so producers stop resolving to it.
		w.temps.publish(w.cfg.ID, nil)
	}
	if w.conn != nil {
		_ = w.conn.Close()
	}
	w.conn, w.sess, w.cons = nil, nil, nil
	w.txOpen = false
	w.txSize = 0
}

// currentTxID names the consumer's current harness-level transaction.
func (w *consumerWorker) currentTxID() string {
	if !w.cfg.Transacted {
		return ""
	}
	if !w.txOpen {
		w.txNum++
		w.txOpen = true
	}
	return fmt.Sprintf("%s-rtx%d", w.cfg.ID, w.txNum)
}

// deliver logs one received message and applies the acknowledgement
// discipline.
func (w *consumerWorker) deliver(msg *jms.Message) {
	txID := w.currentTxID()
	var ttl time.Duration
	if !msg.Expiration.IsZero() && !msg.Timestamp.IsZero() {
		ttl = msg.Expiration.Sub(msg.Timestamp)
	}
	w.log.Log(trace.Event{
		Type:        trace.EventDeliver,
		Consumer:    w.cfg.ID,
		Producer:    msg.StringProperty(propProducer),
		Endpoint:    w.cons.EndpointID(),
		Dest:        w.dest.String(),
		MsgUID:      trace.MessageUID(msg.StringProperty(propProducer), msg.Int64Property(propSeq)),
		MsgSeq:      msg.Int64Property(propSeq),
		Priority:    msg.Priority,
		Mode:        msg.Mode,
		TTL:         ttl,
		BodyBytes:   msg.BodySize(),
		Checksum:    trace.BodyChecksum(msg.Body),
		Redelivered: msg.Redelivered,
		TxID:        txID,
	})
	w.metRecv.Inc()
	w.metRecvAll.Inc()
	switch {
	case w.cfg.Transacted:
		w.txSize++
		if w.txSize >= w.cfg.TxBatch {
			w.completeTx(txID)
		}
	case w.cfg.AckMode == jms.AckClient:
		if err := w.sess.Acknowledge(); err != nil {
			w.log.Log(trace.Event{Type: trace.EventAck, Consumer: w.cfg.ID, Err: err.Error()})
			w.abandon()
			return
		}
		w.log.Log(trace.Event{Type: trace.EventAck, Consumer: w.cfg.ID})
	}
}

// completeTx commits (or rolls back) the consumer's transaction.
func (w *consumerWorker) completeTx(txID string) {
	w.txSize = 0
	w.txOpen = false
	abort := w.cfg.AbortEvery > 0 && w.txNum%w.cfg.AbortEvery == 0
	if abort {
		ev := trace.Event{Type: trace.EventAbort, Consumer: w.cfg.ID, TxID: txID}
		if err := w.sess.Rollback(); err != nil {
			ev.Err = err.Error()
			w.log.Log(ev)
			w.abandon()
			return
		}
		w.log.Log(ev)
		return
	}
	ev := trace.Event{Type: trace.EventCommit, Consumer: w.cfg.ID, TxID: txID}
	if err := w.sess.Commit(); err != nil {
		ev.Err = err.Error()
		w.log.Log(ev)
		w.abandon()
		return
	}
	w.log.Log(ev)
}

// finish completes any open transaction, logs the final close, and
// closes the connection.
func (w *consumerWorker) finish() {
	if w.cons != nil {
		if w.cfg.Transacted && w.txOpen {
			w.completeTx(fmt.Sprintf("%s-rtx%d", w.cfg.ID, w.txNum))
		}
		w.log.Log(trace.Event{Type: trace.EventConsumerClose,
			Consumer: w.cfg.ID, Endpoint: w.cons.EndpointID()})
	}
	w.abandon()
}
