package harness

import (
	"fmt"
	"sync"
	"time"

	"jmsharness/internal/clock"
	"jmsharness/internal/jms"
	"jmsharness/internal/obs"
	"jmsharness/internal/trace"
)

// Crashable is implemented by providers that support failure injection
// (the paper's §5 future work: "initiate a system or program crash and
// then recover from the failure ... required to fully test persistent
// delivery mode").
type Crashable interface {
	// Crash discards the provider's volatile state and disconnects all
	// clients.
	Crash()
	// Restart recovers the provider from stable storage.
	Restart() error
}

// NodeCrasher is implemented by federated providers whose member nodes
// can fail independently (internal/cluster). Scheduled FaultEvents with
// a non-negative Node target one member; the rest of the federation
// keeps serving.
type NodeCrasher interface {
	// NumNodes returns the member count.
	NumNodes() int
	// CrashNode crashes member i, reporting whether it was up.
	CrashNode(i int) bool
	// RestartNode recovers member i from its stable store.
	RestartNode(i int) error
}

// tempRegistry publishes the temporary queue currently owned by each
// TempQueue consumer, so SendToTempOf producers can resolve it. Entries
// churn as consumers cycle or reconnect after a crash.
type tempRegistry struct {
	mu    sync.Mutex
	byown map[string]jms.Destination
}

func newTempRegistry() *tempRegistry {
	return &tempRegistry{byown: map[string]jms.Destination{}}
}

func (r *tempRegistry) publish(owner string, d jms.Destination) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if d == nil {
		delete(r.byown, owner)
		return
	}
	r.byown[owner] = d
}

func (r *tempRegistry) lookup(owner string) jms.Destination {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.byown[owner]
}

// Runner executes tests against a provider.
type Runner struct {
	factory jms.ConnectionFactory
	clk     clock.Clock
	reg     *obs.Registry
}

// NewRunner returns a runner for the given provider. clk may be nil for
// the real clock.
func NewRunner(factory jms.ConnectionFactory, clk clock.Clock) *Runner {
	if clk == nil {
		clk = clock.Real()
	}
	return &Runner{factory: factory, clk: clk}
}

// WithMetrics publishes live run progress into reg: aggregate counters
// "harness.sent"/"harness.recv" (plus error counts), per-worker
// counters "harness.sent.<producer>"/"harness.recv.<consumer>", and the
// "harness.workers_active" gauge. Returns the runner for chaining.
func (r *Runner) WithMetrics(reg *obs.Registry) *Runner {
	r.reg = reg
	return r
}

// Run executes one configured test and returns its merged trace. The
// trace is complete even when individual operations failed (failures are
// logged as events); Run only returns an error for configuration or
// orchestration problems.
func (r *Runner) Run(cfg Config) (*trace.Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.normalized()
	collector := trace.NewCollector(cfg.Node, func() time.Time { return r.clk.Now() })

	reg := r.reg
	if reg == nil {
		// A throwaway registry keeps the workers' instrument pointers
		// valid without nil checks on the hot path.
		reg = obs.NewRegistry()
	}
	sentTotal := reg.Counter("harness.sent")
	sendErrs := reg.Counter("harness.send_errors")
	recvTotal := reg.Counter("harness.recv")
	workers := reg.Gauge("harness.workers_active")

	stopProducing := make(chan struct{}) // closed at warm-down
	stopAll := make(chan struct{})       // closed at test end
	temps := newTempRegistry()

	var wg sync.WaitGroup
	for i := range cfg.Producers {
		pc := producerDefaults(cfg.Producers[i], cfg.Destination)
		w := &producerWorker{
			runner:     r,
			cfg:        pc,
			log:        collector,
			seedBase:   cfg.Seed + uint64(i)*7919,
			stop:       stopProducing,
			pollRetry:  cfg.ReceiveTimeout,
			temps:      temps,
			metSent:    reg.Counter("harness.sent." + pc.ID),
			metSentAll: sentTotal,
			metErrs:    sendErrs,
		}
		wg.Add(1)
		workers.Inc()
		go func() {
			defer wg.Done()
			defer workers.Dec()
			w.run()
		}()
	}
	for i := range cfg.Consumers {
		cc := consumerDefaults(cfg.Consumers[i], cfg.Destination)
		w := &consumerWorker{
			runner:     r,
			cfg:        cc,
			log:        collector,
			stop:       stopAll,
			poll:       cfg.ReceiveTimeout,
			temps:      temps,
			metRecv:    reg.Counter("harness.recv." + cc.ID),
			metRecvAll: recvTotal,
		}
		wg.Add(1)
		workers.Inc()
		go func() {
			defer wg.Done()
			defer workers.Dec()
			w.run()
		}()
	}

	// Failure injection: the legacy single whole-provider crash plus
	// any scheduled fault events, each on its own timer.
	faults := cfg.Faults
	if cfg.CrashAfter > 0 {
		faults = append([]FaultEvent{{At: cfg.CrashAfter, Node: -1, Downtime: cfg.CrashDowntime}}, faults...)
	}
	var crashWG sync.WaitGroup
	for _, fe := range faults {
		fe := fe
		if fe.Downtime <= 0 {
			fe.Downtime = cfg.CrashDowntime
		}
		if err := r.checkFaultTarget(fe); err != nil {
			close(stopProducing)
			close(stopAll)
			wg.Wait()
			return nil, fmt.Errorf("harness: test %q: %w", cfg.Name, err)
		}
		crashWG.Add(1)
		go func() {
			defer crashWG.Done()
			select {
			case <-stopAll:
				return
			case <-r.clk.After(fe.At):
			}
			r.injectFault(fe, collector)
		}()
	}

	// Drive the three periods.
	collector.Log(trace.Event{Type: trace.EventPhase, Detail: trace.PhaseWarmup})
	r.clk.Sleep(cfg.Warmup)
	collector.Log(trace.Event{Type: trace.EventPhase, Detail: trace.PhaseRun})
	r.clk.Sleep(cfg.Run)
	collector.Log(trace.Event{Type: trace.EventPhase, Detail: trace.PhaseWarmdown})
	close(stopProducing)
	r.clk.Sleep(cfg.Warmdown)
	close(stopAll)
	wg.Wait()
	crashWG.Wait()
	collector.Log(trace.Event{Type: trace.EventPhase, Detail: trace.PhaseDone})

	return trace.Merge([][]trace.Event{collector.Events()}, nil), nil
}

// checkFaultTarget verifies the provider can satisfy one fault event.
func (r *Runner) checkFaultTarget(fe FaultEvent) error {
	if fe.Node < 0 {
		if _, ok := r.factory.(Crashable); !ok {
			return fmt.Errorf("crash injection requested but provider %T does not support it", r.factory)
		}
		return nil
	}
	nc, ok := r.factory.(NodeCrasher)
	if !ok {
		return fmt.Errorf("node crash injection requested but provider %T does not support it", r.factory)
	}
	if fe.Node >= nc.NumNodes() {
		return fmt.Errorf("fault event targets node %d of a %d-node provider", fe.Node, nc.NumNodes())
	}
	return nil
}

// injectFault performs one crash/restart cycle and logs it. Targets were
// validated before the test started.
func (r *Runner) injectFault(fe FaultEvent, collector *trace.Collector) {
	if fe.Node < 0 {
		collector.Log(trace.Event{Type: trace.EventCrash, Detail: "injected"})
		r.factory.(Crashable).Crash()
		if fe.NoRestart {
			return
		}
		r.clk.Sleep(fe.Downtime)
		ev := trace.Event{Type: trace.EventRecovered}
		if err := r.factory.(Crashable).Restart(); err != nil {
			ev.Err = err.Error()
		}
		collector.Log(ev)
		return
	}
	nc := r.factory.(NodeCrasher)
	detail := fmt.Sprintf("injected node-%d", fe.Node)
	collector.Log(trace.Event{Type: trace.EventCrash, Detail: detail})
	nc.CrashNode(fe.Node)
	if fe.NoRestart {
		// A permanent kill: a replicated provider is expected to fail
		// the node's destinations over to their followers; the harness
		// deliberately never restarts it.
		return
	}
	r.clk.Sleep(fe.Downtime)
	ev := trace.Event{Type: trace.EventRecovered, Detail: detail}
	if err := nc.RestartNode(fe.Node); err != nil {
		ev.Err = err.Error()
	}
	collector.Log(ev)
}
