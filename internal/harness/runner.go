package harness

import (
	"fmt"
	"sync"
	"time"

	"jmsharness/internal/clock"
	"jmsharness/internal/jms"
	"jmsharness/internal/obs"
	"jmsharness/internal/trace"
)

// Crashable is implemented by providers that support failure injection
// (the paper's §5 future work: "initiate a system or program crash and
// then recover from the failure ... required to fully test persistent
// delivery mode").
type Crashable interface {
	// Crash discards the provider's volatile state and disconnects all
	// clients.
	Crash()
	// Restart recovers the provider from stable storage.
	Restart() error
}

// Runner executes tests against a provider.
type Runner struct {
	factory jms.ConnectionFactory
	clk     clock.Clock
	reg     *obs.Registry
}

// NewRunner returns a runner for the given provider. clk may be nil for
// the real clock.
func NewRunner(factory jms.ConnectionFactory, clk clock.Clock) *Runner {
	if clk == nil {
		clk = clock.Real()
	}
	return &Runner{factory: factory, clk: clk}
}

// WithMetrics publishes live run progress into reg: aggregate counters
// "harness.sent"/"harness.recv" (plus error counts), per-worker
// counters "harness.sent.<producer>"/"harness.recv.<consumer>", and the
// "harness.workers_active" gauge. Returns the runner for chaining.
func (r *Runner) WithMetrics(reg *obs.Registry) *Runner {
	r.reg = reg
	return r
}

// Run executes one configured test and returns its merged trace. The
// trace is complete even when individual operations failed (failures are
// logged as events); Run only returns an error for configuration or
// orchestration problems.
func (r *Runner) Run(cfg Config) (*trace.Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.normalized()
	collector := trace.NewCollector(cfg.Node, func() time.Time { return r.clk.Now() })

	reg := r.reg
	if reg == nil {
		// A throwaway registry keeps the workers' instrument pointers
		// valid without nil checks on the hot path.
		reg = obs.NewRegistry()
	}
	sentTotal := reg.Counter("harness.sent")
	sendErrs := reg.Counter("harness.send_errors")
	recvTotal := reg.Counter("harness.recv")
	workers := reg.Gauge("harness.workers_active")

	stopProducing := make(chan struct{}) // closed at warm-down
	stopAll := make(chan struct{})       // closed at test end

	var wg sync.WaitGroup
	for i := range cfg.Producers {
		pc := producerDefaults(cfg.Producers[i], cfg.Destination)
		w := &producerWorker{
			runner:     r,
			cfg:        pc,
			log:        collector,
			seedBase:   cfg.Seed + uint64(i)*7919,
			stop:       stopProducing,
			pollRetry:  cfg.ReceiveTimeout,
			metSent:    reg.Counter("harness.sent." + pc.ID),
			metSentAll: sentTotal,
			metErrs:    sendErrs,
		}
		wg.Add(1)
		workers.Inc()
		go func() {
			defer wg.Done()
			defer workers.Dec()
			w.run()
		}()
	}
	for i := range cfg.Consumers {
		cc := consumerDefaults(cfg.Consumers[i], cfg.Destination)
		w := &consumerWorker{
			runner:     r,
			cfg:        cc,
			log:        collector,
			stop:       stopAll,
			poll:       cfg.ReceiveTimeout,
			metRecv:    reg.Counter("harness.recv." + cc.ID),
			metRecvAll: recvTotal,
		}
		wg.Add(1)
		workers.Inc()
		go func() {
			defer wg.Done()
			defer workers.Dec()
			w.run()
		}()
	}

	// Crash injection, if requested and supported.
	var crashWG sync.WaitGroup
	if cfg.CrashAfter > 0 {
		crashable, ok := r.factory.(Crashable)
		if !ok {
			close(stopProducing)
			close(stopAll)
			wg.Wait()
			return nil, fmt.Errorf("harness: test %q requests crash injection but provider %T does not support it",
				cfg.Name, r.factory)
		}
		crashWG.Add(1)
		go func() {
			defer crashWG.Done()
			select {
			case <-stopAll:
				return
			case <-r.clk.After(cfg.CrashAfter):
			}
			collector.Log(trace.Event{Type: trace.EventCrash, Detail: "injected"})
			crashable.Crash()
			r.clk.Sleep(cfg.CrashDowntime)
			if err := crashable.Restart(); err != nil {
				collector.Log(trace.Event{Type: trace.EventRecovered, Err: err.Error()})
				return
			}
			collector.Log(trace.Event{Type: trace.EventRecovered})
		}()
	}

	// Drive the three periods.
	collector.Log(trace.Event{Type: trace.EventPhase, Detail: trace.PhaseWarmup})
	r.clk.Sleep(cfg.Warmup)
	collector.Log(trace.Event{Type: trace.EventPhase, Detail: trace.PhaseRun})
	r.clk.Sleep(cfg.Run)
	collector.Log(trace.Event{Type: trace.EventPhase, Detail: trace.PhaseWarmdown})
	close(stopProducing)
	r.clk.Sleep(cfg.Warmdown)
	close(stopAll)
	wg.Wait()
	crashWG.Wait()
	collector.Log(trace.Event{Type: trace.EventPhase, Detail: trace.PhaseDone})

	return trace.Merge([][]trace.Event{collector.Events()}, nil), nil
}
