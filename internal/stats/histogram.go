package stats

import (
	"fmt"
	"math"
	"strings"
)

// Histogram is a fixed-width-bucket histogram over [Lo, Hi) with overflow
// and underflow buckets. It backs the delay-histogram expectation model
// the paper lists as future work (§5): "constructing a histogram of
// message delays throughout the run period".
type Histogram struct {
	lo, hi  float64
	width   float64
	buckets []int64
	under   int64
	over    int64
	total   int64
}

// NewHistogram returns a histogram with n equal-width buckets spanning
// [lo, hi). It panics if n <= 0 or hi <= lo, which indicate programmer
// error in fixed configuration.
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic(fmt.Sprintf("stats: invalid histogram [%v,%v) n=%d", lo, hi, n))
	}
	return &Histogram{lo: lo, hi: hi, width: (hi - lo) / float64(n), buckets: make([]int64, n)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case x < h.lo:
		h.under++
	case x >= h.hi:
		h.over++
	default:
		i := int((x - h.lo) / h.width)
		if i >= len(h.buckets) { // guard against float rounding at hi
			i = len(h.buckets) - 1
		}
		h.buckets[i]++
	}
}

// Total returns the number of observations recorded.
func (h *Histogram) Total() int64 { return h.total }

// Count returns the number of observations in bucket i.
func (h *Histogram) Count(i int) int64 { return h.buckets[i] }

// NumBuckets returns the number of in-range buckets.
func (h *Histogram) NumBuckets() int { return len(h.buckets) }

// BucketBounds returns the [lo, hi) bounds of bucket i.
func (h *Histogram) BucketBounds(i int) (float64, float64) {
	lo := h.lo + float64(i)*h.width
	return lo, lo + h.width
}

// CDF returns the empirical probability that an observation is <= x.
func (h *Histogram) CDF(x float64) float64 {
	if h.total == 0 {
		return 0
	}
	if x < h.lo {
		return 0
	}
	count := h.under
	if x >= h.hi {
		return float64(h.total-h.over) / float64(h.total)
	}
	full := int((x - h.lo) / h.width)
	for i := 0; i < full && i < len(h.buckets); i++ {
		count += h.buckets[i]
	}
	if full < len(h.buckets) {
		frac := (x - (h.lo + float64(full)*h.width)) / h.width
		count += int64(frac * float64(h.buckets[full]))
	}
	return float64(count) / float64(h.total)
}

// Render returns a textual bar-chart rendering, used by cmd/jmsanalyze
// reports. width is the maximum bar length in characters.
func (h *Histogram) Render(width int) string {
	var b strings.Builder
	var maxCount int64
	for _, c := range h.buckets {
		if c > maxCount {
			maxCount = c
		}
	}
	for i, c := range h.buckets {
		lo, hi := h.BucketBounds(i)
		bar := 0
		if maxCount > 0 {
			bar = int(math.Round(float64(c) / float64(maxCount) * float64(width)))
		}
		fmt.Fprintf(&b, "[%10.3f,%10.3f) %8d %s\n", lo, hi, c, strings.Repeat("#", bar))
	}
	if h.under > 0 {
		fmt.Fprintf(&b, "underflow %d\n", h.under)
	}
	if h.over > 0 {
		fmt.Fprintf(&b, "overflow  %d\n", h.over)
	}
	return b.String()
}
