package stats

import (
	"math"
	"time"
)

// RNG is a small, fast, deterministic pseudo-random generator
// (xorshift64*). The harness needs reproducible workloads across runs and
// across machines, so it carries explicit generator state rather than
// using a shared global source.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. A zero seed is remapped to
// a fixed non-zero constant because xorshift has an all-zero fixed point.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// ExpDuration returns an exponentially distributed duration with the
// given mean, the inter-arrival law of a Poisson process.
func (r *RNG) ExpDuration(mean time.Duration) time.Duration {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return time.Duration(-math.Log(u) * float64(mean))
}

// NormFloat64 returns a standard normal variate (Box–Muller).
func (r *RNG) NormFloat64() float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Bytes fills p with pseudo-random bytes.
func (r *RNG) Bytes(p []byte) {
	for i := 0; i < len(p); i += 8 {
		v := r.Uint64()
		for j := 0; j < 8 && i+j < len(p); j++ {
			p[i+j] = byte(v >> (8 * j))
		}
	}
}
