// Package stats provides the statistical machinery used by the harness:
// streaming descriptive statistics (for the §3.2 performance measures),
// histograms (for the §5 delay-expectation models), inter-arrival-time
// generators for the steady/burst/Poisson send profiles, and a token
// bucket used by the provider performance profiles.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary accumulates streaming descriptive statistics using Welford's
// online algorithm, so a run's delay statistics can be computed without
// retaining every sample (the fix to the §4.1 analysis bottleneck).
// The zero value is an empty summary ready for use.
type Summary struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// Merge folds another summary into s (parallel Welford merge).
func (s *Summary) Merge(o Summary) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		*s = o
		return
	}
	n := s.n + o.n
	delta := o.mean - s.mean
	mean := s.mean + delta*float64(o.n)/float64(n)
	m2 := s.m2 + o.m2 + delta*delta*float64(s.n)*float64(o.n)/float64(n)
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
	s.n, s.mean, s.m2 = n, mean, m2
}

// N returns the number of observations.
func (s *Summary) N() int64 { return s.n }

// Mean returns the sample mean, or 0 for an empty summary.
func (s *Summary) Mean() float64 { return s.mean }

// Min returns the smallest observation, or 0 for an empty summary.
func (s *Summary) Min() float64 {
	if s.n == 0 {
		return 0
	}
	return s.min
}

// Max returns the largest observation, or 0 for an empty summary.
func (s *Summary) Max() float64 {
	if s.n == 0 {
		return 0
	}
	return s.max
}

// Variance returns the unbiased sample variance.
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Variance()) }

// String formats the summary as "n=… mean=… sd=… min=… max=…".
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f sd=%.3f min=%.3f max=%.3f",
		s.n, s.Mean(), s.StdDev(), s.Min(), s.Max())
}

// StdDevOf returns the sample standard deviation of xs. It is used for
// the fairness measure: "Unfairness is defined as the standard deviation
// of the per-producer or per-consumer mean delay."
func StdDevOf(xs []float64) float64 {
	var s Summary
	for _, x := range xs {
		s.Add(x)
	}
	return s.StdDev()
}

// MeanOf returns the arithmetic mean of xs, or 0 if empty.
func MeanOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation. xs need not be sorted; it is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// NormalCDF returns the standard normal cumulative distribution function
// evaluated after standardising x against mean mu and deviation sigma.
// It underlies the normal-distribution expectation model (§5 future work).
func NormalCDF(x, mu, sigma float64) float64 {
	if sigma <= 0 {
		if x < mu {
			return 0
		}
		return 1
	}
	return 0.5 * math.Erfc(-(x-mu)/(sigma*math.Sqrt2))
}
