package stats

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	if s.N() != 0 || s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 || s.StdDev() != 0 {
		t.Error("empty summary should be all zero")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Errorf("N = %d", s.N())
	}
	if s.Mean() != 5 {
		t.Errorf("Mean = %v", s.Mean())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	// Population sd is 2; sample sd = sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if math.Abs(s.StdDev()-want) > 1e-12 {
		t.Errorf("StdDev = %v, want %v", s.StdDev(), want)
	}
}

// TestSummaryMergeProperty: merging two summaries must equal summarising
// the concatenation.
func TestSummaryMergeProperty(t *testing.T) {
	f := func(a, b []float64) bool {
		var s1, s2, all Summary
		for _, x := range a {
			s1.Add(x)
			all.Add(x)
		}
		for _, x := range b {
			s2.Add(x)
			all.Add(x)
		}
		s1.Merge(s2)
		if s1.N() != all.N() {
			return false
		}
		if s1.N() == 0 {
			return true
		}
		closeEnough := func(x, y float64) bool {
			return math.Abs(x-y) <= 1e-9*(1+math.Abs(x)+math.Abs(y))
		}
		return closeEnough(s1.Mean(), all.Mean()) &&
			closeEnough(s1.Variance(), all.Variance()) &&
			s1.Min() == all.Min() && s1.Max() == all.Max()
	}
	cfg := &quick.Config{
		MaxCount: 200,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			gen := func() []float64 {
				xs := make([]float64, r.Intn(50))
				for i := range xs {
					xs[i] = (r.Float64() - 0.5) * 2e6
				}
				return xs
			}
			vals[0] = reflect.ValueOf(gen())
			vals[1] = reflect.ValueOf(gen())
		},
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestSummaryString(t *testing.T) {
	var s Summary
	s.Add(1)
	if s.String() == "" {
		t.Error("String should be non-empty")
	}
}

func TestStdDevOfAndMeanOf(t *testing.T) {
	if StdDevOf(nil) != 0 || MeanOf(nil) != 0 {
		t.Error("empty slices should yield 0")
	}
	if got := MeanOf([]float64{1, 2, 3}); got != 2 {
		t.Errorf("MeanOf = %v", got)
	}
	if got := StdDevOf([]float64{1, 2, 3}); math.Abs(got-1) > 1e-12 {
		t.Errorf("StdDevOf = %v", got)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {-1, 1}, {2, 4},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("empty quantile should be 0")
	}
	// Input must not be reordered.
	if xs[0] != 4 {
		t.Error("Quantile mutated its input")
	}
}

func TestNormalCDF(t *testing.T) {
	if got := NormalCDF(0, 0, 1); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("CDF(0) = %v", got)
	}
	if got := NormalCDF(1.96, 0, 1); math.Abs(got-0.975) > 1e-3 {
		t.Errorf("CDF(1.96) = %v", got)
	}
	if NormalCDF(1, 2, 0) != 0 || NormalCDF(3, 2, 0) != 1 {
		t.Error("degenerate sigma should behave as a step function")
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	h.Add(-1)
	h.Add(11)
	if h.Total() != 12 {
		t.Errorf("Total = %d", h.Total())
	}
	for i := 0; i < 10; i++ {
		if h.Count(i) != 1 {
			t.Errorf("bucket %d count = %d", i, h.Count(i))
		}
	}
	lo, hi := h.BucketBounds(3)
	if lo != 3 || hi != 4 {
		t.Errorf("bounds = [%v,%v)", lo, hi)
	}
	if h.NumBuckets() != 10 {
		t.Errorf("NumBuckets = %d", h.NumBuckets())
	}
}

func TestHistogramCDF(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 100; i++ {
		h.Add(float64(i%10) + 0.5)
	}
	if got := h.CDF(-1); got != 0 {
		t.Errorf("CDF(-1) = %v", got)
	}
	if got := h.CDF(100); got != 1 {
		t.Errorf("CDF(100) = %v", got)
	}
	if got := h.CDF(5); math.Abs(got-0.5) > 0.06 {
		t.Errorf("CDF(5) = %v, want ~0.5", got)
	}
}

func TestHistogramPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewHistogram(10, 0, 5)
}

func TestHistogramRender(t *testing.T) {
	h := NewHistogram(0, 2, 2)
	h.Add(0.5)
	h.Add(-1)
	h.Add(5)
	out := h.Render(20)
	if out == "" {
		t.Error("Render should produce output")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed should give same sequence")
		}
	}
	if NewRNG(0).Uint64() == 0 {
		t.Error("zero seed should be remapped")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 1000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRNGIntn(t *testing.T) {
	r := NewRNG(1)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Errorf("only %d of 7 values seen", len(seen))
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	r.Intn(0)
}

func TestRNGExpDurationMean(t *testing.T) {
	r := NewRNG(99)
	var sum time.Duration
	const n = 20000
	for i := 0; i < n; i++ {
		sum += r.ExpDuration(10 * time.Millisecond)
	}
	mean := sum / n
	if mean < 9*time.Millisecond || mean > 11*time.Millisecond {
		t.Errorf("mean = %v, want ~10ms", mean)
	}
}

func TestRNGNormFloat64Moments(t *testing.T) {
	r := NewRNG(7)
	var s Summary
	for i := 0; i < 20000; i++ {
		s.Add(r.NormFloat64())
	}
	if math.Abs(s.Mean()) > 0.05 {
		t.Errorf("mean = %v, want ~0", s.Mean())
	}
	if math.Abs(s.StdDev()-1) > 0.05 {
		t.Errorf("sd = %v, want ~1", s.StdDev())
	}
}

func TestRNGBytes(t *testing.T) {
	r := NewRNG(5)
	b := make([]byte, 33)
	r.Bytes(b)
	allZero := true
	for _, x := range b {
		if x != 0 {
			allZero = false
		}
	}
	if allZero {
		t.Error("Bytes produced all zeros")
	}
}
