package stats

import (
	"fmt"
	"sync"
	"time"
)

// Profile identifies a message-production pacing profile. The paper's
// harness configuration lets "the senders send messages in bursts or with
// a profile corresponding to a poisson distribution" in addition to a
// steady rate.
type Profile int

// Pacing profiles.
const (
	ProfileSteady  Profile = iota + 1 // fixed inter-send gap
	ProfileBurst                      // bursts of back-to-back sends separated by idle gaps
	ProfilePoisson                    // exponential inter-send gaps
)

// String returns the profile name.
func (p Profile) String() string {
	switch p {
	case ProfileSteady:
		return "steady"
	case ProfileBurst:
		return "burst"
	case ProfilePoisson:
		return "poisson"
	default:
		return fmt.Sprintf("Profile(%d)", int(p))
	}
}

// Pacer produces the sequence of inter-send gaps realising a profile at a
// target mean rate.
type Pacer struct {
	profile   Profile
	gap       time.Duration // mean inter-send gap
	burstSize int
	inBurst   int
	rng       *RNG
}

// NewPacer returns a pacer for the given profile and target rate in
// messages per second. burstSize is only used by ProfileBurst (a burst of
// burstSize sends back to back, then an idle gap restoring the mean
// rate). rate must be positive.
func NewPacer(profile Profile, rate float64, burstSize int, rng *RNG) (*Pacer, error) {
	if rate <= 0 {
		return nil, fmt.Errorf("stats: non-positive pacer rate %v", rate)
	}
	if profile == ProfileBurst && burstSize <= 0 {
		return nil, fmt.Errorf("stats: burst profile needs positive burst size, got %d", burstSize)
	}
	if profile == ProfilePoisson && rng == nil {
		return nil, fmt.Errorf("stats: poisson profile needs an RNG")
	}
	return &Pacer{
		profile:   profile,
		gap:       time.Duration(float64(time.Second) / rate),
		burstSize: burstSize,
		rng:       rng,
	}, nil
}

// Next returns the gap to wait before the next send.
func (p *Pacer) Next() time.Duration {
	switch p.profile {
	case ProfileBurst:
		p.inBurst++
		if p.inBurst < p.burstSize {
			return 0
		}
		p.inBurst = 0
		return p.gap * time.Duration(p.burstSize)
	case ProfilePoisson:
		return p.rng.ExpDuration(p.gap)
	default:
		return p.gap
	}
}

// TokenBucket is a thread-safe token-bucket rate limiter. The reference
// provider's performance profiles use it to impose a configurable service
// rate, which is what gives Figures 2 and 3 their saturation shapes.
type TokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
	now    func() time.Time
}

// NewTokenBucket returns a bucket refilled at rate tokens/second with the
// given burst capacity, starting full. now supplies the time source and
// must be non-nil.
func NewTokenBucket(rate, burst float64, now func() time.Time) (*TokenBucket, error) {
	if rate <= 0 || burst <= 0 {
		return nil, fmt.Errorf("stats: invalid token bucket rate=%v burst=%v", rate, burst)
	}
	if now == nil {
		return nil, fmt.Errorf("stats: token bucket needs a time source")
	}
	return &TokenBucket{rate: rate, burst: burst, tokens: burst, last: now(), now: now}, nil
}

// refillLocked brings the token count up to date. Callers hold mu.
func (b *TokenBucket) refillLocked(t time.Time) {
	elapsed := t.Sub(b.last).Seconds()
	if elapsed <= 0 {
		return
	}
	b.tokens += elapsed * b.rate
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.last = t
}

// TryTake removes one token if available, reporting whether it did.
func (b *TokenBucket) TryTake() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked(b.now())
	if b.tokens >= 1 {
		b.tokens--
		return true
	}
	return false
}

// Reserve removes one token, returning how long the caller must wait
// before proceeding (zero if a token was immediately available). Unlike
// TryTake it always succeeds, pushing the bucket into debt, which gives
// smooth pacing for blocking callers.
func (b *TokenBucket) Reserve() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked(b.now())
	b.tokens--
	if b.tokens >= 0 {
		return 0
	}
	return time.Duration(-b.tokens / b.rate * float64(time.Second))
}
