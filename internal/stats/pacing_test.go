package stats

import (
	"testing"
	"time"
)

func TestProfileString(t *testing.T) {
	cases := map[Profile]string{
		ProfileSteady:  "steady",
		ProfileBurst:   "burst",
		ProfilePoisson: "poisson",
		Profile(9):     "Profile(9)",
	}
	for p, want := range cases {
		if got := p.String(); got != want {
			t.Errorf("Profile(%d).String() = %q, want %q", p, got, want)
		}
	}
}

func TestNewPacerValidation(t *testing.T) {
	if _, err := NewPacer(ProfileSteady, 0, 0, nil); err == nil {
		t.Error("zero rate should error")
	}
	if _, err := NewPacer(ProfileBurst, 10, 0, nil); err == nil {
		t.Error("burst without size should error")
	}
	if _, err := NewPacer(ProfilePoisson, 10, 0, nil); err == nil {
		t.Error("poisson without RNG should error")
	}
}

func TestSteadyPacer(t *testing.T) {
	p, err := NewPacer(ProfileSteady, 100, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if gap := p.Next(); gap != 10*time.Millisecond {
			t.Errorf("gap = %v, want 10ms", gap)
		}
	}
}

func TestBurstPacerMeanRate(t *testing.T) {
	const burst = 5
	p, err := NewPacer(ProfileBurst, 100, burst, nil)
	if err != nil {
		t.Fatal(err)
	}
	var total time.Duration
	const rounds = 100
	zeros := 0
	for i := 0; i < rounds*burst; i++ {
		gap := p.Next()
		if gap == 0 {
			zeros++
		}
		total += gap
	}
	wantMean := 10 * time.Millisecond
	mean := total / (rounds * burst)
	if mean != wantMean {
		t.Errorf("mean gap = %v, want %v", mean, wantMean)
	}
	if zeros != rounds*(burst-1) {
		t.Errorf("zeros = %d, want %d", zeros, rounds*(burst-1))
	}
}

func TestPoissonPacerMeanRate(t *testing.T) {
	p, err := NewPacer(ProfilePoisson, 1000, 0, NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	var total time.Duration
	const n = 20000
	for i := 0; i < n; i++ {
		total += p.Next()
	}
	mean := total / n
	if mean < 900*time.Microsecond || mean > 1100*time.Microsecond {
		t.Errorf("mean gap = %v, want ~1ms", mean)
	}
}

func TestTokenBucketValidation(t *testing.T) {
	now := func() time.Time { return time.Unix(0, 0) }
	if _, err := NewTokenBucket(0, 1, now); err == nil {
		t.Error("zero rate should error")
	}
	if _, err := NewTokenBucket(1, 0, now); err == nil {
		t.Error("zero burst should error")
	}
	if _, err := NewTokenBucket(1, 1, nil); err == nil {
		t.Error("nil time source should error")
	}
}

func TestTokenBucketTryTake(t *testing.T) {
	current := time.Unix(0, 0)
	b, err := NewTokenBucket(10, 2, func() time.Time { return current })
	if err != nil {
		t.Fatal(err)
	}
	if !b.TryTake() || !b.TryTake() {
		t.Fatal("bucket should start full with burst=2")
	}
	if b.TryTake() {
		t.Fatal("bucket should be empty")
	}
	current = current.Add(100 * time.Millisecond) // refills 1 token at 10/s
	if !b.TryTake() {
		t.Fatal("bucket should have refilled one token")
	}
	if b.TryTake() {
		t.Fatal("bucket should be empty again")
	}
}

func TestTokenBucketRefillCap(t *testing.T) {
	current := time.Unix(0, 0)
	b, err := NewTokenBucket(1000, 3, func() time.Time { return current })
	if err != nil {
		t.Fatal(err)
	}
	current = current.Add(time.Hour)
	taken := 0
	for b.TryTake() {
		taken++
	}
	if taken != 3 {
		t.Errorf("took %d tokens, want burst cap 3", taken)
	}
}

func TestTokenBucketReserve(t *testing.T) {
	current := time.Unix(0, 0)
	b, err := NewTokenBucket(10, 1, func() time.Time { return current })
	if err != nil {
		t.Fatal(err)
	}
	if wait := b.Reserve(); wait != 0 {
		t.Errorf("first reserve should be immediate, got %v", wait)
	}
	w1 := b.Reserve()
	w2 := b.Reserve()
	if w1 <= 0 || w2 <= w1 {
		t.Errorf("reserve waits should grow: %v then %v", w1, w2)
	}
	if w1 != 100*time.Millisecond {
		t.Errorf("wait = %v, want 100ms at 10/s", w1)
	}
}
