// Package faults wraps a JMS provider with injectable misbehaviour:
// silently dropped messages, duplicates, reordering, payload corruption,
// ignored time-to-live, over-eager expiry, priority inversion, and the
// paper's "trivial JMS implementation — one that never delivers any
// messages". A conformance harness is only trustworthy if it catches
// broken providers, so the test suite runs the checkers of
// internal/model against each faulty wrapper and requires the seeded
// violation class (and only the expected classes) to be detected.
package faults

import (
	"sync"
	"time"

	"jmsharness/internal/jms"
)

// SendBehavior intercepts producer sends. Implementations are
// per-producer and need not be thread-safe beyond the session's own
// discipline.
type SendBehavior interface {
	// TransformSend may mutate the message or options before the real
	// send, or suppress the send entirely (pretending success).
	TransformSend(msg *jms.Message, opts *jms.SendOptions) (suppress bool)
}

// RecvBehavior intercepts consumer receives. Implementations are
// per-consumer.
type RecvBehavior interface {
	// TransformReceive maps one actually-received message to the
	// messages handed to the client, in order. Returning nil swallows
	// the message; returning extras releases previously stashed ones.
	TransformReceive(msg *jms.Message) []*jms.Message
}

// Flusher is an optional extension of RecvBehavior: when the underlying
// receive times out with nothing to deliver, Flush gives the behaviour a
// chance to release stashed messages instead of holding them forever
// (turning an intended delay into a drop).
type Flusher interface {
	// Flush returns stashed messages to deliver now.
	Flush() []*jms.Message
}

// Erroring is an optional extension of SendBehavior: after TransformSend
// suppresses a send, SendError decides the error surfaced to the caller.
// A nil error keeps the classic silent-drop semantics; a non-nil error
// models an overloaded provider rejecting the send outright — the
// message is not "sent" per Definition 1, so no delivery is owed.
type Erroring interface {
	// SendError returns the error to report for the suppressed send.
	SendError() error
}

// Factory wraps an inner provider with fault injection. Behaviours are
// created per producer/consumer so each keeps independent state.
type Factory struct {
	// Inner is the real provider.
	Inner jms.ConnectionFactory
	// NewSend creates the per-producer send behaviour; nil injects
	// nothing on the send path.
	NewSend func() SendBehavior
	// NewRecv creates the per-consumer receive behaviour; nil injects
	// nothing on the receive path.
	NewRecv func() RecvBehavior
}

var _ jms.ConnectionFactory = (*Factory)(nil)

// CreateConnection implements jms.ConnectionFactory.
func (f *Factory) CreateConnection() (jms.Connection, error) {
	conn, err := f.Inner.CreateConnection()
	if err != nil {
		return nil, err
	}
	return &faultConn{Connection: conn, f: f}, nil
}

// faultConn wraps a connection. Embedding is deliberate here: the
// wrapper forwards everything except session creation.
type faultConn struct {
	jms.Connection
	f *Factory
}

func (c *faultConn) CreateSession(transacted bool, ackMode jms.AckMode) (jms.Session, error) {
	sess, err := c.Connection.CreateSession(transacted, ackMode)
	if err != nil {
		return nil, err
	}
	return &faultSession{Session: sess, f: c.f}, nil
}

type faultSession struct {
	jms.Session
	f *Factory
}

func (s *faultSession) CreateProducer(dest jms.Destination) (jms.Producer, error) {
	p, err := s.Session.CreateProducer(dest)
	if err != nil {
		return nil, err
	}
	fp := &faultProducer{Producer: p}
	if s.f.NewSend != nil {
		fp.behavior = s.f.NewSend()
	}
	return fp, nil
}

func (s *faultSession) CreateConsumer(dest jms.Destination) (jms.Consumer, error) {
	c, err := s.Session.CreateConsumer(dest)
	if err != nil {
		return nil, err
	}
	return s.wrapConsumer(c), nil
}

func (s *faultSession) CreateConsumerWithSelector(dest jms.Destination, selectorExpr string) (jms.Consumer, error) {
	c, err := s.Session.CreateConsumerWithSelector(dest, selectorExpr)
	if err != nil {
		return nil, err
	}
	return s.wrapConsumer(c), nil
}

func (s *faultSession) CreateDurableSubscriber(topic jms.Topic, name string) (jms.Consumer, error) {
	c, err := s.Session.CreateDurableSubscriber(topic, name)
	if err != nil {
		return nil, err
	}
	return s.wrapConsumer(c), nil
}

func (s *faultSession) CreateDurableSubscriberWithSelector(topic jms.Topic, name, selectorExpr string) (jms.Consumer, error) {
	c, err := s.Session.CreateDurableSubscriberWithSelector(topic, name, selectorExpr)
	if err != nil {
		return nil, err
	}
	return s.wrapConsumer(c), nil
}

func (s *faultSession) wrapConsumer(c jms.Consumer) jms.Consumer {
	fc := &faultConsumer{Consumer: c}
	if s.f.NewRecv != nil {
		fc.behavior = s.f.NewRecv()
	}
	return fc
}

type faultProducer struct {
	jms.Producer
	behavior SendBehavior
}

func (p *faultProducer) Send(msg *jms.Message, opts jms.SendOptions) error {
	if p.behavior != nil {
		if suppress := p.behavior.TransformSend(msg, &opts); suppress {
			return p.suppressedError()
		}
	}
	return p.Producer.Send(msg, opts)
}

func (p *faultProducer) SendTo(dest jms.Destination, msg *jms.Message, opts jms.SendOptions) error {
	if p.behavior != nil {
		if suppress := p.behavior.TransformSend(msg, &opts); suppress {
			return p.suppressedError()
		}
	}
	return p.Producer.SendTo(dest, msg, opts)
}

// suppressedError maps a suppressed send to its reported outcome:
// silent success, unless the behaviour opts into erroring.
func (p *faultProducer) suppressedError() error {
	if e, ok := p.behavior.(Erroring); ok {
		return e.SendError()
	}
	return nil
}

type faultConsumer struct {
	jms.Consumer
	behavior RecvBehavior

	mu      sync.Mutex
	pending []*jms.Message
}

func (c *faultConsumer) Receive(timeout time.Duration) (*jms.Message, error) {
	c.mu.Lock()
	if len(c.pending) > 0 {
		msg := c.pending[0]
		c.pending = c.pending[1:]
		c.mu.Unlock()
		return msg, nil
	}
	c.mu.Unlock()
	msg, err := c.Consumer.Receive(timeout)
	if err != nil {
		return nil, err
	}
	if msg == nil {
		// Timed out: let a stashing behaviour release what it holds.
		if fl, ok := c.behavior.(Flusher); ok {
			outs := fl.Flush()
			if len(outs) > 0 {
				c.mu.Lock()
				c.pending = append(c.pending, outs[1:]...)
				c.mu.Unlock()
				return outs[0], nil
			}
		}
		return nil, nil
	}
	if c.behavior == nil {
		return msg, nil
	}
	outs := c.behavior.TransformReceive(msg)
	if len(outs) == 0 {
		// Swallowed: present it as a timeout.
		return nil, nil
	}
	c.mu.Lock()
	c.pending = append(c.pending, outs[1:]...)
	c.mu.Unlock()
	return outs[0], nil
}

func (c *faultConsumer) ReceiveNoWait() (*jms.Message, error) {
	return c.Receive(time.Nanosecond)
}

// SetListener is not supported on fault-injected consumers; the harness
// uses synchronous receives.
func (c *faultConsumer) SetListener(l jms.Listener) error {
	return jms.ErrInvalidArgument
}
