package faults

import (
	"testing"
	"time"

	"jmsharness/internal/jms"
)

// These tests drive the fault behaviors directly through their
// SendBehavior/RecvBehavior hooks, pinning down the exact transformation
// each wrapper applies — the conformance tests in faults_test.go verify
// the end-to-end detection, these verify the mechanics.

func msg(s string) *jms.Message {
	return &jms.Message{Body: jms.BytesBody([]byte(s))}
}

func TestDropperSuppressesEveryNth(t *testing.T) {
	send := NewDropper(nil, 3).NewSend()
	var dropped []int
	for i := 1; i <= 9; i++ {
		if send.TransformSend(msg("m"), &jms.SendOptions{}) {
			dropped = append(dropped, i)
		}
	}
	want := []int{3, 6, 9}
	if len(dropped) != len(want) {
		t.Fatalf("dropped %v, want %v", dropped, want)
	}
	for i := range want {
		if dropped[i] != want[i] {
			t.Fatalf("dropped %v, want %v", dropped, want)
		}
	}
}

func TestTTLIgnorerStripsTTL(t *testing.T) {
	send := NewTTLIgnorer(nil).NewSend()
	opts := &jms.SendOptions{TTL: time.Minute}
	if send.TransformSend(msg("m"), opts) {
		t.Error("ttl-ignorer must not drop the message")
	}
	if opts.TTL != 0 {
		t.Errorf("TTL = %v after transform, want 0", opts.TTL)
	}
}

func TestOverEagerExpirerDropsAnyTTL(t *testing.T) {
	send := NewOverEagerExpirer(nil).NewSend()
	if !send.TransformSend(msg("m"), &jms.SendOptions{TTL: time.Hour}) {
		t.Error("a message with a generous TTL must be 'expired'")
	}
	if send.TransformSend(msg("m"), &jms.SendOptions{}) {
		t.Error("a message without TTL must pass through")
	}
}

func TestDuplicatorCountAndIdentity(t *testing.T) {
	recv := NewDuplicator(nil, 3).NewRecv()
	total := 0
	for i := 1; i <= 9; i++ {
		m := msg("m")
		out := recv.TransformReceive(m)
		wantLen := 1
		if i%3 == 0 {
			wantLen = 2
		}
		if len(out) != wantLen {
			t.Fatalf("receive %d: %d messages out, want %d", i, len(out), wantLen)
		}
		if wantLen == 2 {
			if out[0] != m {
				t.Errorf("receive %d: original not delivered first", i)
			}
			if out[1] == m {
				t.Errorf("receive %d: duplicate aliases the original", i)
			}
			if out[1].Redelivered {
				t.Errorf("receive %d: duplicate must NOT be flagged redelivered (that is the bug)", i)
			}
		}
		total += len(out)
	}
	if total != 12 {
		t.Errorf("9 receives produced %d deliveries, want 12", total)
	}
}

func TestReordererWindow(t *testing.T) {
	recv := NewReorderer(nil, 3).NewRecv()
	in := []*jms.Message{msg("1"), msg("2"), msg("3"), msg("4"), msg("5"), msg("6"), msg("7")}
	var out []*jms.Message
	for _, m := range in {
		out = append(out, recv.TransformReceive(m)...)
	}
	// Every 3rd message is held back exactly one slot: 1 2 4 3 5 7 6.
	want := []*jms.Message{in[0], in[1], in[3], in[2], in[4], in[6], in[5]}
	if len(out) != len(want) {
		t.Fatalf("delivered %d messages, want %d", len(out), len(want))
	}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("position %d: got %q want %q", i, out[i].Body, want[i].Body)
		}
	}
}

func TestCorrupterFlipsEveryNthPayload(t *testing.T) {
	recv := NewCorrupter(nil, 2).NewRecv()
	first := recv.TransformReceive(msg("hello"))
	if got := string(first[0].Body.(jms.BytesBody)); got != "hello" {
		t.Errorf("message 1 corrupted: %q", got)
	}
	second := recv.TransformReceive(msg("hello"))
	if got := string(second[0].Body.(jms.BytesBody)); got == "hello" {
		t.Error("message 2 not corrupted")
	}

	// The corruption must survive every body kind, including empty ones.
	empty := &jms.Message{Body: jms.BytesBody(nil)}
	recv.TransformReceive(empty) // 3rd: passthrough
	out := recv.TransformReceive(empty)
	if got, ok := out[0].Body.(jms.TextBody); !ok || string(got) != "corrupted" {
		t.Errorf("empty body corruption fallback: %#v", out[0].Body)
	}

	text := &jms.Message{Body: jms.TextBody("Hello")}
	recv.TransformReceive(text) // 5th: passthrough
	out = recv.TransformReceive(&jms.Message{Body: jms.TextBody("Hello")})
	if got := string(out[0].Body.(jms.TextBody)); got == "Hello" {
		t.Error("text body not corrupted")
	}
}

func TestTrivialDeliversNothing(t *testing.T) {
	recv := NewTrivial(nil).NewRecv()
	for i := 0; i < 5; i++ {
		if out := recv.TransformReceive(msg("m")); len(out) != 0 {
			t.Fatalf("trivial provider delivered %d messages", len(out))
		}
	}
}

func TestPriorityInverterStashAndFlush(t *testing.T) {
	recv := NewPriorityInverter(nil, 2).NewRecv()
	high := &jms.Message{Priority: 9, Body: jms.BytesBody([]byte("h"))}
	if out := recv.TransformReceive(high); len(out) != 0 {
		t.Fatalf("high-priority message not stashed: %d out", len(out))
	}
	low1 := &jms.Message{Priority: 1, Body: jms.BytesBody([]byte("l1"))}
	if out := recv.TransformReceive(low1); len(out) != 1 || out[0] != low1 {
		t.Fatalf("first low delivery wrong: %v", out)
	}
	low2 := &jms.Message{Priority: 1, Body: jms.BytesBody([]byte("l2"))}
	out := recv.TransformReceive(low2)
	if len(out) != 2 || out[0] != low2 || out[1] != high {
		t.Fatalf("second low must release the stash after it: %v", out)
	}
	// Flush drains whatever is still held so a delay never becomes a drop.
	recv.TransformReceive(high)
	f, ok := recv.(Flusher)
	if !ok {
		t.Fatal("priority inverter must implement Flusher")
	}
	if out := f.Flush(); len(out) != 1 || out[0] != high {
		t.Fatalf("flush returned %v", out)
	}
	if out := f.Flush(); len(out) != 0 {
		t.Fatalf("second flush returned %v", out)
	}
}
