package faults

import (
	"fmt"
	"time"

	"jmsharness/internal/jms"
)

// NewDropper returns a provider that silently discards every nth send
// while reporting success — the classic lost-message bug that
// Property 2 (required messages) exists to catch.
func NewDropper(inner jms.ConnectionFactory, n int) *Factory {
	return &Factory{
		Inner: inner,
		NewSend: func() SendBehavior {
			return &counterSend{n: n, act: func(*jms.Message, *jms.SendOptions) bool { return true }}
		},
	}
}

// NewTTLIgnorer returns a provider that strips time-to-live from every
// send, so messages that should expire are delivered anyway — the
// Property 5 part-one violation ("time-to-live should not be simply
// ignored").
func NewTTLIgnorer(inner jms.ConnectionFactory) *Factory {
	return &Factory{
		Inner: inner,
		NewSend: func() SendBehavior {
			return sendFunc(func(_ *jms.Message, opts *jms.SendOptions) bool {
				opts.TTL = 0
				return false
			})
		},
	}
}

// NewOverEagerExpirer returns a provider that silently "expires" (drops)
// every message sent with any time-to-live at all, no matter how
// generous — the Property 5 part-two violation.
func NewOverEagerExpirer(inner jms.ConnectionFactory) *Factory {
	return &Factory{
		Inner: inner,
		NewSend: func() SendBehavior {
			return sendFunc(func(_ *jms.Message, opts *jms.SendOptions) bool {
				return opts.TTL > 0
			})
		},
	}
}

// NewDuplicator returns a provider that delivers every nth received
// message twice, without flagging the copy as redelivered — caught by
// the no-duplicates check in auto/client acknowledgement modes.
func NewDuplicator(inner jms.ConnectionFactory, n int) *Factory {
	return &Factory{
		Inner: inner,
		NewRecv: func() RecvBehavior {
			count := 0
			return recvFunc(func(msg *jms.Message) []*jms.Message {
				count++
				if count%n == 0 {
					return []*jms.Message{msg, msg.Clone()}
				}
				return []*jms.Message{msg}
			})
		},
	}
}

// NewReorderer returns a provider that holds back every nth received
// message and delivers it after its successor — a Property 3 (FIFO
// ordering) violation.
func NewReorderer(inner jms.ConnectionFactory, n int) *Factory {
	return &Factory{
		Inner: inner,
		NewRecv: func() RecvBehavior {
			count := 0
			var held *jms.Message
			return recvFunc(func(msg *jms.Message) []*jms.Message {
				count++
				if held != nil {
					out := []*jms.Message{msg, held}
					held = nil
					return out
				}
				if count%n == 0 {
					held = msg
					return nil
				}
				return []*jms.Message{msg}
			})
		},
	}
}

// NewCorrupter returns a provider that flips payload bytes of every nth
// received message — a Property 1 (delivery integrity) violation caught
// by the checksum comparison.
func NewCorrupter(inner jms.ConnectionFactory, n int) *Factory {
	return &Factory{
		Inner: inner,
		NewRecv: func() RecvBehavior {
			count := 0
			return recvFunc(func(msg *jms.Message) []*jms.Message {
				count++
				if count%n == 0 {
					corrupt(msg)
				}
				return []*jms.Message{msg}
			})
		},
	}
}

// NewTrivial returns the paper's trivial provider: sends succeed but
// nothing is ever delivered. It satisfies every safety property — the
// reason the harness also measures performance.
func NewTrivial(inner jms.ConnectionFactory) *Factory {
	return &Factory{
		Inner: inner,
		NewRecv: func() RecvBehavior {
			return recvFunc(func(*jms.Message) []*jms.Message { return nil })
		},
	}
}

// NewPriorityInverter returns a provider that stalls every
// high-priority (≥5) message until hold lower-priority messages have
// been delivered — a Property 4 violation under mixed-priority load.
func NewPriorityInverter(inner jms.ConnectionFactory, hold int) *Factory {
	return &Factory{
		Inner: inner,
		NewRecv: func() RecvBehavior {
			return &priorityInverter{hold: hold}
		},
	}
}

// priorityInverter stashes high-priority messages and releases them only
// after enough low-priority traffic (or on idle, so the delay never
// becomes a drop).
type priorityInverter struct {
	hold  int
	lows  int
	stash []*jms.Message
}

var (
	_ RecvBehavior = (*priorityInverter)(nil)
	_ Flusher      = (*priorityInverter)(nil)
)

func (p *priorityInverter) TransformReceive(msg *jms.Message) []*jms.Message {
	if msg.Priority >= 5 {
		p.stash = append(p.stash, msg)
		if len(p.stash) > 64 {
			return p.Flush()
		}
		return nil
	}
	p.lows++
	out := []*jms.Message{msg}
	if p.lows%p.hold == 0 && len(p.stash) > 0 {
		out = append(out, p.stash...)
		p.stash = nil
	}
	return out
}

// Flush implements Flusher.
func (p *priorityInverter) Flush() []*jms.Message {
	out := p.stash
	p.stash = nil
	return out
}

// NewRejector returns a provider that rejects every nth send with an
// error, modelling an overloaded broker shedding load. Rejected sends
// raise an exception to the producer (so they are not "sent" per
// Definition 1 and owe no delivery — every safety property still
// holds), but the rejection *rate* trips a QoS rejection-ceiling check.
func NewRejector(inner jms.ConnectionFactory, n int) *Factory {
	return &Factory{
		Inner: inner,
		NewSend: func() SendBehavior {
			return &rejector{counterSend: counterSend{
				n:   n,
				act: func(*jms.Message, *jms.SendOptions) bool { return true },
			}}
		},
	}
}

// rejector is a counterSend whose suppressed sends surface an error.
type rejector struct {
	counterSend
}

var (
	_ SendBehavior = (*rejector)(nil)
	_ Erroring     = (*rejector)(nil)
)

// SendError implements Erroring.
func (r *rejector) SendError() error { return errRejected }

var errRejected = fmt.Errorf("faults: send rejected (provider overloaded)")

// NewThrottler returns a provider that stalls every send by the given
// pause before letting it through. Nothing is lost, reordered or
// delayed on the delivery side — but the achievable send rate collapses
// to ~1/pause, which a QoS throughput-floor check must catch.
func NewThrottler(inner jms.ConnectionFactory, pause time.Duration) *Factory {
	return &Factory{
		Inner: inner,
		NewSend: func() SendBehavior {
			return sendFunc(func(*jms.Message, *jms.SendOptions) bool {
				time.Sleep(pause)
				return false
			})
		},
	}
}

// NewDelayer returns a provider that adds a fixed receive-side delay to
// every message, for fairness and comparison experiments.
func NewDelayer(inner jms.ConnectionFactory, delay time.Duration) *Factory {
	return &Factory{
		Inner: inner,
		NewRecv: func() RecvBehavior {
			return recvFunc(func(msg *jms.Message) []*jms.Message {
				time.Sleep(delay)
				return []*jms.Message{msg}
			})
		},
	}
}

// corrupt flips a byte of the message payload in a way that survives
// every body kind.
func corrupt(msg *jms.Message) {
	switch body := msg.Body.(type) {
	case jms.BytesBody:
		if len(body) > 0 {
			body[0] ^= 0xFF
			return
		}
	case jms.TextBody:
		if len(body) > 0 {
			b := []byte(body)
			b[0] ^= 0x20
			msg.Body = jms.TextBody(b)
			return
		}
	case jms.ObjectBody:
		if len(body.Data) > 0 {
			body.Data[0] ^= 0xFF
			msg.Body = body
			return
		}
	}
	msg.Body = jms.TextBody("corrupted")
}

// sendFunc adapts a function to SendBehavior.
type sendFunc func(*jms.Message, *jms.SendOptions) bool

func (f sendFunc) TransformSend(msg *jms.Message, opts *jms.SendOptions) bool { return f(msg, opts) }

// recvFunc adapts a function to RecvBehavior.
type recvFunc func(*jms.Message) []*jms.Message

func (f recvFunc) TransformReceive(msg *jms.Message) []*jms.Message { return f(msg) }

// counterSend suppresses (or otherwise acts on) every nth send.
type counterSend struct {
	n     int
	count int
	act   func(*jms.Message, *jms.SendOptions) bool
}

func (c *counterSend) TransformSend(msg *jms.Message, opts *jms.SendOptions) bool {
	c.count++
	if c.n > 0 && c.count%c.n == 0 {
		return c.act(msg, opts)
	}
	return false
}
