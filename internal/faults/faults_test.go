package faults

import (
	"testing"
	"time"

	"jmsharness/internal/analysis"
	"jmsharness/internal/broker"
	"jmsharness/internal/harness"
	"jmsharness/internal/jms"
	"jmsharness/internal/model"
	"jmsharness/internal/trace"
)

// runTest executes a short harness run against the given provider.
func runTest(t *testing.T, factory jms.ConnectionFactory, cfg harness.Config) *trace.Trace {
	t.Helper()
	tr, err := harness.NewRunner(factory, nil).Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func newInner(t *testing.T, profile broker.Profile) *broker.Broker {
	t.Helper()
	b, err := broker.New(broker.Options{Name: "inner", Profile: profile})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = b.Close() })
	return b
}

func baseConfig(name string) harness.Config {
	return harness.Config{
		Name:        name,
		Destination: jms.Queue("fq-" + name),
		Producers:   []harness.ProducerConfig{{ID: "p1", Rate: 400, BodySize: 32}},
		Consumers:   []harness.ConsumerConfig{{ID: "c1"}},
		Warmup:      10 * time.Millisecond,
		Run:         200 * time.Millisecond,
		Warmdown:    150 * time.Millisecond,
	}
}

// checkCatches asserts that the checker flags wantProp (and that the
// clean companion properties in mustHold still pass).
func checkCatches(t *testing.T, tr *trace.Trace, cfg model.Config, wantProp model.Property, mustHold []model.Property) {
	t.Helper()
	report, err := model.Check(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, ok := report.Result(wantProp)
	if !ok {
		t.Fatalf("property %s not in report", wantProp)
	}
	if len(res.Violations) == 0 {
		t.Errorf("seeded %s violation NOT caught:\n%s", wantProp, report)
	}
	for _, p := range mustHold {
		if r, ok := report.Result(p); ok && len(r.Violations) > 0 {
			t.Errorf("collateral violations in %s: %v", p, r.Violations)
		}
	}
}

func TestCleanProviderPasses(t *testing.T) {
	inner := newInner(t, broker.Unlimited())
	tr := runTest(t, inner, baseConfig("clean"))
	report, err := model.Check(tr, model.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() {
		t.Fatalf("clean provider flagged:\n%s", report)
	}
}

func TestDropperCaught(t *testing.T) {
	inner := newInner(t, broker.Unlimited())
	tr := runTest(t, NewDropper(inner, 3), baseConfig("dropper"))
	checkCatches(t, tr, model.DefaultConfig(), model.PropRequiredMessages,
		[]model.Property{model.PropDeliveryIntegrity, model.PropMessageOrdering, model.PropNoDuplicates})
}

func TestDuplicatorCaught(t *testing.T) {
	inner := newInner(t, broker.Unlimited())
	tr := runTest(t, NewDuplicator(inner, 4), baseConfig("duplicator"))
	checkCatches(t, tr, model.DefaultConfig(), model.PropNoDuplicates,
		[]model.Property{model.PropDeliveryIntegrity, model.PropRequiredMessages})
}

func TestReordererCaught(t *testing.T) {
	inner := newInner(t, broker.Unlimited())
	tr := runTest(t, NewReorderer(inner, 5), baseConfig("reorderer"))
	checkCatches(t, tr, model.DefaultConfig(), model.PropMessageOrdering,
		[]model.Property{model.PropDeliveryIntegrity, model.PropRequiredMessages, model.PropNoDuplicates})
}

func TestReordererCaughtByAutomaton(t *testing.T) {
	inner := newInner(t, broker.Unlimited())
	tr := runTest(t, NewReorderer(inner, 5), baseConfig("reorderer-ioa"))
	report, err := model.Check(tr, model.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, ok := report.Result(model.PropFIFOAutomaton)
	if !ok || len(res.Violations) == 0 {
		t.Error("I/O-automaton cross-check missed the reordering")
	}
}

func TestCorrupterCaught(t *testing.T) {
	inner := newInner(t, broker.Unlimited())
	tr := runTest(t, NewCorrupter(inner, 4), baseConfig("corrupter"))
	checkCatches(t, tr, model.DefaultConfig(), model.PropDeliveryIntegrity,
		[]model.Property{model.PropMessageOrdering, model.PropNoDuplicates})
}

func TestTTLIgnorerCaught(t *testing.T) {
	// Provider with real latency, so 1ms-TTL messages should expire; the
	// wrapper makes the provider ignore TTL and deliver them anyway.
	inner := newInner(t, broker.Profile{Name: "latent", BaseLatency: 15 * time.Millisecond})
	cfg := baseConfig("ttl-ignorer")
	cfg.Producers[0].TTLs = []time.Duration{0, time.Millisecond}
	tr := runTest(t, NewTTLIgnorer(inner), cfg)
	checkCatches(t, tr, model.DefaultConfig(), model.PropExpiredMessages,
		[]model.Property{model.PropDeliveryIntegrity, model.PropRequiredMessages})
}

func TestOverEagerExpirerCaught(t *testing.T) {
	inner := newInner(t, broker.Unlimited())
	cfg := baseConfig("over-eager")
	cfg.Producers[0].TTLs = []time.Duration{0, time.Hour}
	tr := runTest(t, NewOverEagerExpirer(inner), cfg)
	checkCatches(t, tr, model.DefaultConfig(), model.PropExpiredMessages,
		[]model.Property{model.PropDeliveryIntegrity, model.PropRequiredMessages, model.PropMessageOrdering})
}

func TestPriorityInverterCaught(t *testing.T) {
	inner := newInner(t, broker.Unlimited())
	cfg := baseConfig("pri-inverter")
	cfg.Producers[0].Priorities = []jms.Priority{1, 9}
	cfg.Run = 300 * time.Millisecond
	tr := runTest(t, NewPriorityInverter(inner, 5), cfg)
	checkCatches(t, tr, model.DefaultConfig(), model.PropMessagePriority,
		[]model.Property{model.PropDeliveryIntegrity, model.PropRequiredMessages})
}

func TestTrivialProviderPassesSafetyFailsThroughput(t *testing.T) {
	// The paper's point: the trivial provider satisfies every safety
	// property; only performance analysis exposes it.
	inner := newInner(t, broker.Unlimited())
	tr := runTest(t, NewTrivial(inner), baseConfig("trivial"))
	report, err := model.Check(tr, model.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() {
		t.Errorf("trivial provider must pass safety:\n%s", report)
	}
	m, err := analysis.Analyze(tr, analysis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Consumer.Count != 0 {
		t.Errorf("trivial provider delivered %d messages", m.Consumer.Count)
	}
	if m.Producer.Count == 0 {
		t.Error("trivial provider should still accept sends")
	}
}

func TestDelayerAddsDelay(t *testing.T) {
	inner := newInner(t, broker.Unlimited())
	cfg := baseConfig("delayer")
	cfg.Producers[0].Rate = 100
	tr := runTest(t, NewDelayer(inner, 5*time.Millisecond), cfg)
	m, err := analysis.Analyze(tr, analysis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Delay.Mean < 4*time.Millisecond {
		t.Errorf("mean delay %v, want >= ~5ms", m.Delay.Mean)
	}
}

func TestFaultConsumerListenerRejected(t *testing.T) {
	inner := newInner(t, broker.Unlimited())
	f := NewTrivial(inner)
	conn, err := f.CreateConnection()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	sess, err := conn.CreateSession(false, jms.AckAuto)
	if err != nil {
		t.Fatal(err)
	}
	c, err := sess.CreateConsumer(jms.Queue("q"))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetListener(func(*jms.Message) {}); err == nil {
		t.Error("listener on fault consumer should be rejected")
	}
}

func TestFaultWrapperPreservesEndpoint(t *testing.T) {
	inner := newInner(t, broker.Unlimited())
	f := NewDuplicator(inner, 2)
	conn, err := f.CreateConnection()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	sess, err := conn.CreateSession(false, jms.AckAuto)
	if err != nil {
		t.Fatal(err)
	}
	c, err := sess.CreateConsumer(jms.Queue("ep"))
	if err != nil {
		t.Fatal(err)
	}
	if c.EndpointID() != "queue:ep" {
		t.Errorf("EndpointID = %q", c.EndpointID())
	}
}
