package explore

import (
	"fmt"
	"strings"
	"time"

	"jmsharness/internal/broker"
	"jmsharness/internal/chaos"
	"jmsharness/internal/cluster"
	"jmsharness/internal/core"
	"jmsharness/internal/faults"
	"jmsharness/internal/jms"
	"jmsharness/internal/model"
	"jmsharness/internal/replica"
	"jmsharness/internal/wire"
)

// latentProfile is the controlled-latency broker profile used by expiry
// probes: deliveries take at least BaseLatency, so a 1ms TTL genuinely
// should expire in flight.
func latentProfile() broker.Profile {
	return broker.Profile{Name: "fz-latent", BaseLatency: 15 * time.Millisecond}
}

// buildStack constructs the provider stack a scenario runs against and
// returns the factory plus a cleanup function.
func buildStack(spec StackSpec) (jms.ConnectionFactory, func(), error) {
	var (
		inner   jms.ConnectionFactory
		cleanup func()
	)
	profile := broker.Unlimited()
	if spec.Latent {
		profile = latentProfile()
	}
	switch spec.Kind {
	case StackBroker:
		b, err := broker.New(broker.Options{Name: "fz", Profile: profile})
		if err != nil {
			return nil, nil, err
		}
		inner, cleanup = b, func() { _ = b.Close() }

	case StackCluster:
		if spec.Replicated {
			// Explicit heartbeat tuning: probe scenarios run for well
			// under a second, so detection must complete inside the
			// warmdown — the conservative package defaults would leave
			// the victim's backlog unadopted until after the trace ends.
			m, err := replica.NewLocal(spec.Nodes, replica.Options{
				Profile:         profile,
				Seed:            1,
				HeartbeatEvery:  25 * time.Millisecond,
				HeartbeatMisses: 4,
			})
			if err != nil {
				return nil, nil, err
			}
			// The manager's cluster is the factory (and NodeCrasher); the
			// manager itself owns detection, promotion and teardown.
			inner, cleanup = m.Cluster(), func() { _ = m.Close() }
			break
		}
		c, err := cluster.NewLocal(spec.Nodes, cluster.LocalOptions{NamePrefix: "fz", Profile: profile, Seed: 1})
		if err != nil {
			return nil, nil, err
		}
		inner, cleanup = c, func() { _ = c.Close() }

	case StackWire:
		b, err := broker.New(broker.Options{Name: "fz-wire", Profile: profile})
		if err != nil {
			return nil, nil, err
		}
		srv, err := wire.NewServer(b, "127.0.0.1:0")
		if err != nil {
			_ = b.Close()
			return nil, nil, err
		}
		srv.Start()
		if spec.Chaos != ChaosNone {
			proxy, err := chaosProxy(spec, srv.Addr())
			if err != nil {
				_ = srv.Close()
				_ = b.Close()
				return nil, nil, err
			}
			inner = wire.NewFactory(proxy.Addr()).
				WithCallTimeout(10 * time.Second).
				WithReconnect(wire.ReconnectPolicy{Enabled: true, Seed: spec.ChaosSeed})
			cleanup = func() { _ = proxy.Close(); _ = srv.Close(); _ = b.Close() }
		} else {
			inner = wire.NewFactory(srv.Addr())
			cleanup = func() { _ = srv.Close(); _ = b.Close() }
		}

	default:
		return nil, nil, fmt.Errorf("explore: unknown stack kind %q", spec.Kind)
	}

	factory, err := wrapFault(inner, spec)
	if err != nil {
		cleanup()
		return nil, nil, err
	}
	return factory, cleanup, nil
}

// chaosProxy interposes the scenario's network-fault profile between
// the wire client and server. Only lossless profiles exist here — flaky
// adds latency and jitter, partition black-holes the link mid-run and
// heals — so a correct provider behind them must still pass every
// property; the reconnecting factory plus send dedup keeps that true
// even if a connection does drop under the proxy.
func chaosProxy(spec StackSpec, target string) (*chaos.Proxy, error) {
	opts := chaos.Options{Target: target, Seed: spec.ChaosSeed}
	switch spec.Chaos {
	case ChaosFlaky:
		opts.Latency = 2 * time.Millisecond
		opts.Jitter = 2 * time.Millisecond
	case ChaosPartition:
		// Generated runs are 200-300ms: partition a third of the way in,
		// heal well before warmdown so everything in flight drains.
		opts.Schedule = []chaos.Fault{{
			At:       90 * time.Millisecond,
			Kind:     chaos.FaultPartition,
			Dir:      chaos.Both,
			Duration: 50 * time.Millisecond,
		}}
	default:
		return nil, fmt.Errorf("explore: unknown chaos profile %q", spec.Chaos)
	}
	return chaos.New(opts)
}

// wrapFault applies the scenario's fault wrapper, if any.
func wrapFault(inner jms.ConnectionFactory, spec StackSpec) (jms.ConnectionFactory, error) {
	n := spec.FaultN
	if n <= 0 {
		n = 3
	}
	switch spec.Fault {
	case FaultNone:
		return inner, nil
	case FaultDropper:
		return faults.NewDropper(inner, n), nil
	case FaultDuplicator:
		return faults.NewDuplicator(inner, n), nil
	case FaultReorderer:
		return faults.NewReorderer(inner, n), nil
	case FaultCorrupter:
		return faults.NewCorrupter(inner, n), nil
	case FaultTTLIgnorer:
		return faults.NewTTLIgnorer(inner), nil
	case FaultOverEagerExpirer:
		return faults.NewOverEagerExpirer(inner), nil
	default:
		return nil, fmt.Errorf("explore: unknown fault %q", spec.Fault)
	}
}

// Execute runs one scenario end to end: build the stack, run the
// harness, check every safety property.
func Execute(sc *Scenario) (*core.Result, error) {
	factory, cleanup, err := buildStack(sc.Stack)
	if err != nil {
		return nil, err
	}
	defer cleanup()
	cfg, err := sc.HarnessConfig()
	if err != nil {
		return nil, err
	}
	opts := core.DefaultOptions()
	opts.Model.AllowDuplicates = sc.AllowDuplicates
	// Property 4 compares wall-clock mean delays, and explorer scenarios
	// are short runs on a machine that is often saturated (race
	// detector, fuzz workers, parallel packages), where scheduling noise
	// alone spans several milliseconds. Widen the absolute slack so only
	// gross, systematic inversions count; none of the explorer's fault
	// wrappers targets priority, so this costs the oracle nothing.
	opts.Model.Priority.AbsoluteSlack = 25 * time.Millisecond
	return core.RunAndAnalyze(factory, cfg, opts)
}

// Unexpected compares the result against the scenario's oracle
// expectation and returns "" when they agree: a clean stack must violate
// nothing, and a known-faulty stack must be flagged by the matching
// property. Anything else is a finding worth shrinking.
func Unexpected(sc *Scenario, res *core.Result) string {
	if want, faulty := ExpectedProperty(sc.Stack.Fault); faulty {
		if r, ok := res.Conformance.Result(want); !ok || len(r.Violations) == 0 {
			return fmt.Sprintf("fault %s not flagged by %s", sc.Stack.Fault, want)
		}
		return ""
	}
	if violated := res.Conformance.ViolatedProperties(); len(violated) > 0 {
		names := make([]string, len(violated))
		for i, p := range violated {
			names[i] = string(p)
		}
		return "clean stack violated " + strings.Join(names, ", ")
	}
	return ""
}

// sameFinding reports whether a shrunk candidate still reproduces the
// original finding class: for a missed fault, the matching property is
// still silent; for a clean-stack violation, at least one of the
// originally violated properties still fires.
func sameFinding(orig *Scenario, origViolated []model.Property, cand *Scenario, res *core.Result) bool {
	if want, faulty := ExpectedProperty(orig.Stack.Fault); faulty {
		r, ok := res.Conformance.Result(want)
		return !ok || len(r.Violations) == 0
	}
	for _, p := range origViolated {
		if r, ok := res.Conformance.Result(p); ok && len(r.Violations) > 0 {
			return true
		}
	}
	return false
}
