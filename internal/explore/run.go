package explore

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"jmsharness/internal/broker"
	"jmsharness/internal/chaos"
	"jmsharness/internal/cluster"
	"jmsharness/internal/core"
	"jmsharness/internal/faults"
	"jmsharness/internal/jms"
	"jmsharness/internal/model"
	"jmsharness/internal/replica"
	"jmsharness/internal/wire"
)

// latentProfile is the controlled-latency broker profile used by expiry
// probes: deliveries take at least BaseLatency, so a 1ms TTL genuinely
// should expire in flight.
func latentProfile() broker.Profile {
	return broker.Profile{Name: "fz-latent", BaseLatency: 15 * time.Millisecond}
}

// buildStack constructs the provider stack a scenario runs against and
// returns the factory plus a cleanup function.
func buildStack(sc *Scenario) (jms.ConnectionFactory, func(), error) {
	var (
		inner   jms.ConnectionFactory
		cleanup func()
	)
	spec := sc.Stack
	profile := broker.Unlimited()
	if spec.Latent {
		profile = latentProfile()
	}
	if spec.QoSFault == QoSFaultLatency {
		// The latency fault lives in the provider, not a receive-side
		// wrapper: a per-consumer sleep would serialize deliveries and
		// fake FIFO/priority violations, whereas broker-level latency
		// delays every message alike and stays safety-clean.
		profile.Name = "fz-qos-latent"
		profile.BaseLatency = spec.QoSDelay
	}
	switch spec.Kind {
	case StackBroker:
		b, err := broker.New(broker.Options{Name: "fz", Profile: profile})
		if err != nil {
			return nil, nil, err
		}
		inner, cleanup = b, func() { _ = b.Close() }

	case StackCluster:
		if spec.Replicated {
			// Explicit heartbeat tuning: probe scenarios run for well
			// under a second, so detection must complete inside the
			// warmdown — the conservative package defaults would leave
			// the victim's backlog unadopted until after the trace ends.
			// The miss threshold stays high enough that a generated link
			// partition (60-99ms) cannot cross the detection budget:
			// witness probes travel the same chaos-wrapped links as the
			// replication stream, so a partitioned link blinds its
			// witness for the partition's whole duration.
			ropts := replica.Options{
				Profile:           profile,
				Seed:              1,
				HeartbeatEvery:    25 * time.Millisecond,
				HeartbeatMisses:   8,
				SyncTimeout:       spec.SyncTimeout,
				ReplicationFactor: spec.ReplicationFactor,
				QuorumSize:        spec.Quorum,
			}
			lp := newLinkChaos(sc)
			if lp != nil {
				ropts.WrapLink = lp.wrap
			}
			m, err := replica.NewLocal(spec.Nodes, ropts)
			if err != nil {
				if lp != nil {
					lp.close()
				}
				return nil, nil, err
			}
			// The manager's cluster is the factory (and NodeCrasher); the
			// manager itself owns detection, promotion and teardown.
			inner, cleanup = m.Cluster(), func() {
				_ = m.Close()
				if lp != nil {
					lp.close()
				}
			}
			break
		}
		c, err := cluster.NewLocal(spec.Nodes, cluster.LocalOptions{NamePrefix: "fz", Profile: profile, Seed: 1})
		if err != nil {
			return nil, nil, err
		}
		inner, cleanup = c, func() { _ = c.Close() }

	case StackWire:
		b, err := broker.New(broker.Options{Name: "fz-wire", Profile: profile})
		if err != nil {
			return nil, nil, err
		}
		srv, err := wire.NewServer(b, "127.0.0.1:0")
		if err != nil {
			_ = b.Close()
			return nil, nil, err
		}
		srv.Start()
		var wf *wire.Factory
		if spec.Chaos != ChaosNone {
			proxy, err := chaosProxy(spec, srv.Addr())
			if err != nil {
				_ = srv.Close()
				_ = b.Close()
				return nil, nil, err
			}
			wf = wire.NewFactory(proxy.Addr()).
				WithCallTimeout(10 * time.Second).
				WithReconnect(wire.ReconnectPolicy{Enabled: true, Seed: spec.ChaosSeed})
			cleanup = func() { _ = proxy.Close(); _ = srv.Close(); _ = b.Close() }
		} else {
			wf = wire.NewFactory(srv.Addr())
			cleanup = func() { _ = srv.Close(); _ = b.Close() }
		}
		if spec.Pipelined {
			window := spec.PipeWindow
			if window == 0 {
				window = 32
			}
			wf = wf.WithPipelining(window)
		}
		inner = wf

	default:
		return nil, nil, fmt.Errorf("explore: unknown stack kind %q", spec.Kind)
	}

	factory, err := wrapFault(inner, spec)
	if err != nil {
		cleanup()
		return nil, nil, err
	}
	return factory, cleanup, nil
}

// chaosProxy interposes the scenario's network-fault profile between
// the wire client and server. Only lossless profiles exist here — flaky
// adds latency and jitter, partition black-holes the link mid-run and
// heals — so a correct provider behind them must still pass every
// property; the reconnecting factory plus send dedup keeps that true
// even if a connection does drop under the proxy.
func chaosProxy(spec StackSpec, target string) (*chaos.Proxy, error) {
	opts := chaos.Options{Target: target, Seed: spec.ChaosSeed}
	switch spec.Chaos {
	case ChaosFlaky:
		opts.Latency = 2 * time.Millisecond
		opts.Jitter = 2 * time.Millisecond
	case ChaosPartition:
		// Generated runs are 200-300ms: partition a third of the way in,
		// heal well before warmdown so everything in flight drains.
		opts.Schedule = []chaos.Fault{{
			At:       90 * time.Millisecond,
			Kind:     chaos.FaultPartition,
			Dir:      chaos.Both,
			Duration: 50 * time.Millisecond,
		}}
	default:
		return nil, fmt.Errorf("explore: unknown chaos profile %q", spec.Chaos)
	}
	return chaos.New(opts)
}

// linkChaos interposes chaos proxies on a replicated cluster's
// inter-node replication links, lazily — one proxy per link, created at
// dial time. Links touching a partitioned node carry that node's
// partition schedule. The failure detector's witness probes travel
// these same links, so a partition does raise suspicion on the nodes it
// cuts off — but promotion needs a majority of live witnesses to agree,
// and a single node's partitioned links never blind more than a
// minority for longer than the detection budget tolerates, so the link
// degrades and reattaches without a false promotion.
type linkChaos struct {
	mu     sync.Mutex
	m      map[[2]int]*chaos.Proxy
	faults map[int][]chaos.Fault
}

// newLinkChaos returns the link interposer for the scenario's
// link-partition events, or nil when there are none.
func newLinkChaos(sc *Scenario) *linkChaos {
	faults := map[int][]chaos.Fault{}
	for _, e := range sc.Events {
		if !e.LinkPartition {
			continue
		}
		// Fault.At counts from proxy start; links dial when the stack is
		// built, just before the harness starts, so the scenario offset
		// carries over within a few milliseconds.
		faults[e.Node] = append(faults[e.Node], chaos.Fault{
			At:       e.At,
			Kind:     chaos.FaultPartition,
			Dir:      chaos.Both,
			Duration: e.Downtime,
		})
	}
	if len(faults) == 0 {
		return nil
	}
	return &linkChaos{m: map[[2]int]*chaos.Proxy{}, faults: faults}
}

func (lc *linkChaos) wrap(from, to int, addr string) string {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	key := [2]int{from, to}
	if p, ok := lc.m[key]; ok {
		return p.Addr()
	}
	schedule := append(append([]chaos.Fault{}, lc.faults[from]...), lc.faults[to]...)
	p, err := chaos.New(chaos.Options{Target: addr, Schedule: schedule})
	if err != nil {
		return addr // fall back to the direct link
	}
	lc.m[key] = p
	return p.Addr()
}

func (lc *linkChaos) close() {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	for _, p := range lc.m {
		_ = p.Close()
	}
}

// wrapFault applies the scenario's fault wrapper, if any.
func wrapFault(inner jms.ConnectionFactory, spec StackSpec) (jms.ConnectionFactory, error) {
	n := spec.FaultN
	if n <= 0 {
		n = 3
	}
	switch spec.Fault {
	case FaultNone:
	case FaultDropper:
		inner = faults.NewDropper(inner, n)
	case FaultDuplicator:
		inner = faults.NewDuplicator(inner, n)
	case FaultReorderer:
		inner = faults.NewReorderer(inner, n)
	case FaultCorrupter:
		inner = faults.NewCorrupter(inner, n)
	case FaultTTLIgnorer:
		inner = faults.NewTTLIgnorer(inner)
	case FaultOverEagerExpirer:
		inner = faults.NewOverEagerExpirer(inner)
	default:
		return nil, fmt.Errorf("explore: unknown fault %q", spec.Fault)
	}
	// QoS faults layer independently of the safety wrappers. Latency is
	// handled at stack-build time (broker profile), so only the send-path
	// faults appear here.
	switch spec.QoSFault {
	case QoSFaultNone, QoSFaultLatency:
	case QoSFaultReject:
		inner = faults.NewRejector(inner, spec.QoSEveryN)
	case QoSFaultThrottle:
		inner = faults.NewThrottler(inner, spec.QoSDelay)
	default:
		return nil, fmt.Errorf("explore: unknown qos fault %q", spec.QoSFault)
	}
	return inner, nil
}

// Execute runs one scenario end to end: build the stack, run the
// harness, check every safety property.
func Execute(sc *Scenario) (*core.Result, error) {
	factory, cleanup, err := buildStack(sc)
	if err != nil {
		return nil, err
	}
	defer cleanup()
	cfg, err := sc.HarnessConfig()
	if err != nil {
		return nil, err
	}
	opts := core.DefaultOptions()
	opts.Model.AllowDuplicates = sc.AllowDuplicates
	// Property 4 compares wall-clock mean delays, and explorer scenarios
	// are short runs on a machine that is often saturated (race
	// detector, fuzz workers, parallel packages), where scheduling noise
	// alone spans several milliseconds. Widen the absolute slack so only
	// gross, systematic inversions count; none of the explorer's fault
	// wrappers targets priority, so this costs the oracle nothing.
	opts.Model.Priority.AbsoluteSlack = 25 * time.Millisecond
	// Generated contracts are evaluated exactly as written: their budgets
	// already carry the margin that makes them noise-proof, so no extra
	// slack factor is applied here (unlike jmsbench's CI gates).
	opts.QoS = sc.Contract
	return core.RunAndAnalyze(factory, cfg, opts)
}

// Unexpected compares the result against the scenario's oracle
// expectation, in both formal dimensions, and returns "" when they
// agree: a clean stack must violate nothing — no safety property, no
// contract check — a known-faulty stack must be flagged by the matching
// property, and a QoS-faulted stack must stay safety-clean while the
// matching contract check fires. Anything else is a finding worth
// shrinking.
func Unexpected(sc *Scenario, res *core.Result) string {
	if want, faulty := ExpectedProperty(sc.Stack.Fault); faulty {
		if r, ok := res.Conformance.Result(want); !ok || len(r.Violations) == 0 {
			return fmt.Sprintf("fault %s not flagged by %s", sc.Stack.Fault, want)
		}
		return ""
	}
	if violated := res.Conformance.ViolatedProperties(); len(violated) > 0 {
		names := make([]string, len(violated))
		for i, p := range violated {
			names[i] = string(p)
		}
		return "clean stack violated " + strings.Join(names, ", ")
	}
	if want, faulted := ExpectedQoSKind(sc.Stack.QoSFault); faulted {
		// Only the matching check is asserted — a throttled provider may
		// collaterally stretch delays, say, and that is the fault working,
		// not the oracle misfiring (mirroring the safety discipline, where
		// a dropper is only required to trip Property 2).
		if !res.QoS.Failed(want) {
			return fmt.Sprintf("qos fault %s not flagged by %s", sc.Stack.QoSFault, want)
		}
		return ""
	}
	if res.QoS != nil {
		if kinds := res.QoS.Violated(); len(kinds) > 0 {
			return "clean stack violated qos " + strings.Join(kinds, ", ")
		}
	}
	return ""
}

// sameFinding reports whether a shrunk candidate still reproduces the
// original finding class: for a missed fault (safety or QoS), the
// matching check is still silent; for a clean-stack violation, at least
// one of the originally violated properties or contract checks still
// fires.
func sameFinding(orig *Scenario, origViolated []model.Property, origQoS []string, cand *Scenario, res *core.Result) bool {
	if want, faulty := ExpectedProperty(orig.Stack.Fault); faulty {
		r, ok := res.Conformance.Result(want)
		return !ok || len(r.Violations) == 0
	}
	if want, faulted := ExpectedQoSKind(orig.Stack.QoSFault); faulted {
		// A shrink pass that strips the fault or the contract has changed
		// the question, not reproduced the answer.
		if cand.Stack.QoSFault != orig.Stack.QoSFault || cand.Contract == nil {
			return false
		}
		return !res.QoS.Failed(want)
	}
	for _, p := range origViolated {
		if r, ok := res.Conformance.Result(p); ok && len(r.Violations) > 0 {
			return true
		}
	}
	if res.QoS != nil {
		for _, kind := range origQoS {
			if res.QoS.Failed(kind) {
				return true
			}
		}
	}
	return false
}
