package explore

import "testing"

// FuzzConformance is the explorer as a native Go fuzz target: every
// input seed derives a scenario, and the verdict must agree with the
// oracle — clean stacks violate nothing, known-faulty wrappers are
// flagged by the matching property. Run bounded fuzzing with
//
//	go test -fuzz=FuzzConformance -fuzztime=30s ./internal/explore
//
// The seed corpus under testdata/fuzz/FuzzConformance covers one full
// fault-residue cycle, so plain `go test` already exercises every
// wrapper through this path.
func FuzzConformance(f *testing.F) {
	f.Add(uint64(42))
	f.Fuzz(func(t *testing.T, seed uint64) {
		sc := Generate(seed)
		res, err := Execute(sc)
		if err != nil {
			t.Fatalf("seed %d (%s): %v", seed, sc.Name, err)
		}
		if reason := Unexpected(sc, res); reason != "" {
			repro, _ := sc.Marshal()
			t.Fatalf("seed %d (%s): %s\n%s\nrepro:\n%s", seed, sc.Name, reason, res.Conformance, repro)
		}
	})
}
