// Package explore is a randomized conformance explorer: a deterministic,
// seed-driven scenario generator, executor and shrinker that drives the
// existing harness/model pipeline across every provider stack the repo
// has (in-process broker, N-node cluster, wire server) and across the
// fault-wrapper library.
//
// The paper's approach checks safety properties on whatever scenarios a
// human thought to write; Deussen & Tobies argue test cases should come
// from formal purposes, not enumeration. Here the purpose is fixed — the
// five safety properties plus the no-duplicates extension — and the
// scenarios are derived mechanically from a single uint64 seed: topology
// (queues, topics, temporary queues, selectors, durable subscribers), a
// fleet of producers/consumers with randomized priorities, TTLs, ack
// modes and transactions, a provider stack, and an event schedule with
// mid-run consumer cycling and node crash/restart.
//
// The oracle is inverted as well as applied: seeds whose residue selects
// a known-faulty wrapper (Dropper, Duplicator, Reorderer, Corrupter,
// TTLIgnorer, OverEagerExpirer) must produce violations attributed to
// the matching property, and clean stacks must produce none. Any other
// verdict is a finding; a delta-debugging shrinker then minimizes the
// scenario and emits a replayable JSON repro.
package explore

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"jmsharness/internal/harness"
	"jmsharness/internal/jms"
	"jmsharness/internal/model"
)

// Stack kinds.
const (
	StackBroker  = "broker"
	StackCluster = "cluster"
	StackWire    = "wire"
)

// Fault wrapper names. Empty means a clean stack.
const (
	FaultNone             = ""
	FaultDropper          = "dropper"
	FaultDuplicator       = "duplicator"
	FaultReorderer        = "reorderer"
	FaultCorrupter        = "corrupter"
	FaultTTLIgnorer       = "ttl-ignorer"
	FaultOverEagerExpirer = "over-eager-expirer"
)

// ExpectedProperty maps a fault wrapper to the safety property that must
// flag it — the oracle-inversion table.
func ExpectedProperty(fault string) (model.Property, bool) {
	switch fault {
	case FaultDropper:
		return model.PropRequiredMessages, true
	case FaultDuplicator:
		return model.PropNoDuplicates, true
	case FaultReorderer:
		return model.PropMessageOrdering, true
	case FaultCorrupter:
		return model.PropDeliveryIntegrity, true
	case FaultTTLIgnorer, FaultOverEagerExpirer:
		return model.PropExpiredMessages, true
	default:
		return "", false
	}
}

// StackSpec selects the provider stack a scenario runs against.
type StackSpec struct {
	// Kind is one of broker, cluster, wire.
	Kind string `json:"kind"`
	// Nodes is the cluster size (cluster stacks only).
	Nodes int `json:"nodes,omitempty"`
	// Replicated gives each destination a WAL-shipping follower with
	// failure-detected promotion (cluster stacks only, needs Nodes >= 2).
	// It is the stack for failover scenarios: a NoRestart node kill must
	// be absorbed by promotion, not recovered in place.
	Replicated bool `json:"replicated,omitempty"`
	// Latent gives the underlying broker(s) a base delivery latency, so
	// short-TTL messages genuinely should expire in flight (the expiry
	// probe configuration).
	Latent bool `json:"latent,omitempty"`
	// Fault names the fault wrapper applied outermost; empty means none.
	Fault string `json:"fault,omitempty"`
	// FaultN parameterises every-nth-message faults.
	FaultN int `json:"fault_n,omitempty"`
	// Chaos names the network-fault profile interposed between the wire
	// client and server (wire stacks only): "" for none, "flaky" for
	// latency+jitter, "partition" for a mid-run partition that heals.
	// Only lossless profiles are generated — the provider stack is
	// correct, so a chaotic-but-lossless network must not produce
	// findings.
	Chaos string `json:"chaos,omitempty"`
	// ChaosSeed drives the chaos proxy's jitter generator.
	ChaosSeed uint64 `json:"chaos_seed,omitempty"`
}

// Chaos profile names for StackSpec.Chaos.
const (
	ChaosNone      = ""
	ChaosFlaky     = "flaky"
	ChaosPartition = "partition"
)

// ProducerSpec is the JSON-serializable form of one producer.
type ProducerSpec struct {
	ID string `json:"id"`
	// Dest is "queue:name" or "topic:name"; empty iff TempOf is set.
	Dest string `json:"dest,omitempty"`
	// TempOf directs the producer at the named consumer's temp queue.
	TempOf      string          `json:"temp_of,omitempty"`
	Rate        float64         `json:"rate"`
	BodyKind    int             `json:"body_kind,omitempty"`
	BodySize    int             `json:"body_size,omitempty"`
	Priorities  []int           `json:"priorities,omitempty"`
	NonPersist  bool            `json:"non_persistent,omitempty"`
	TTLs        []time.Duration `json:"ttls,omitempty"`
	Transacted  bool            `json:"transacted,omitempty"`
	TxBatch     int             `json:"tx_batch,omitempty"`
	AbortEvery  int             `json:"abort_every,omitempty"`
	MaxMessages int             `json:"max_messages,omitempty"`
}

// ConsumerSpec is the JSON-serializable form of one consumer.
type ConsumerSpec struct {
	ID string `json:"id"`
	// Dest is "queue:name" or "topic:name"; empty iff TempQueue is set.
	Dest       string        `json:"dest,omitempty"`
	TempQueue  bool          `json:"temp_queue,omitempty"`
	Durable    bool          `json:"durable,omitempty"`
	SubName    string        `json:"sub_name,omitempty"`
	ClientID   string        `json:"client_id,omitempty"`
	Selector   string        `json:"selector,omitempty"`
	AckMode    int           `json:"ack_mode,omitempty"`
	Transacted bool          `json:"transacted,omitempty"`
	TxBatch    int           `json:"tx_batch,omitempty"`
	CycleEvery time.Duration `json:"cycle_every,omitempty"`
}

// EventSpec schedules one fault injection (crash/restart) during a run.
type EventSpec struct {
	At time.Duration `json:"at"`
	// Node is the cluster node to crash; -1 crashes the whole provider.
	Node     int           `json:"node"`
	Downtime time.Duration `json:"downtime,omitempty"`
	// NoRestart makes the kill permanent: the node stays down for the
	// rest of the run. Only generated against replicated cluster stacks,
	// where failover — not restart — is the expected recovery.
	NoRestart bool `json:"no_restart,omitempty"`
}

// Scenario is one complete generated test: stack, workload, schedule.
// It round-trips through JSON, which is the repro format.
type Scenario struct {
	Seed      uint64         `json:"seed"`
	Name      string         `json:"name"`
	Stack     StackSpec      `json:"stack"`
	Producers []ProducerSpec `json:"producers"`
	Consumers []ConsumerSpec `json:"consumers"`
	Events    []EventSpec    `json:"events,omitempty"`
	Warmup    time.Duration  `json:"warmup"`
	Run       time.Duration  `json:"run"`
	Warmdown  time.Duration  `json:"warmdown"`
	// AllowDuplicates relaxes the no-duplicates check (set when a
	// consumer uses dups-ok acknowledgement).
	AllowDuplicates bool `json:"allow_duplicates,omitempty"`
}

// Workers counts the scenario's producers plus consumers.
func (sc *Scenario) Workers() int { return len(sc.Producers) + len(sc.Consumers) }

// parseDest parses the "queue:x" / "topic:y" destination form.
func parseDest(s string) (jms.Destination, error) {
	switch {
	case strings.HasPrefix(s, "queue:"):
		return jms.Queue(strings.TrimPrefix(s, "queue:")), nil
	case strings.HasPrefix(s, "topic:"):
		return jms.Topic(strings.TrimPrefix(s, "topic:")), nil
	default:
		return nil, fmt.Errorf("explore: destination %q is not queue:* or topic:*", s)
	}
}

// HarnessConfig converts the scenario to a runnable harness test.
func (sc *Scenario) HarnessConfig() (harness.Config, error) {
	cfg := harness.Config{
		Name:     sc.Name,
		Warmup:   sc.Warmup,
		Run:      sc.Run,
		Warmdown: sc.Warmdown,
		Seed:     sc.Seed,
	}
	for _, p := range sc.Producers {
		pc := harness.ProducerConfig{
			ID:           p.ID,
			Rate:         p.Rate,
			BodyKind:     jms.BodyKind(p.BodyKind),
			BodySize:     p.BodySize,
			TTLs:         p.TTLs,
			Transacted:   p.Transacted,
			TxBatch:      p.TxBatch,
			AbortEvery:   p.AbortEvery,
			MaxMessages:  p.MaxMessages,
			SendToTempOf: p.TempOf,
		}
		if p.NonPersist {
			pc.Mode = jms.NonPersistent
		}
		if p.Dest != "" {
			d, err := parseDest(p.Dest)
			if err != nil {
				return cfg, err
			}
			pc.Destination = d
		}
		for _, pri := range p.Priorities {
			pc.Priorities = append(pc.Priorities, jms.Priority(pri))
		}
		cfg.Producers = append(cfg.Producers, pc)
	}
	for _, c := range sc.Consumers {
		cc := harness.ConsumerConfig{
			ID:         c.ID,
			TempQueue:  c.TempQueue,
			Durable:    c.Durable,
			SubName:    c.SubName,
			ClientID:   c.ClientID,
			Selector:   c.Selector,
			AckMode:    jms.AckMode(c.AckMode),
			Transacted: c.Transacted,
			TxBatch:    c.TxBatch,
			CycleEvery: c.CycleEvery,
		}
		if c.Dest != "" {
			d, err := parseDest(c.Dest)
			if err != nil {
				return cfg, err
			}
			cc.Destination = d
		}
		cfg.Consumers = append(cfg.Consumers, cc)
	}
	for _, e := range sc.Events {
		cfg.Faults = append(cfg.Faults, harness.FaultEvent{At: e.At, Node: e.Node, Downtime: e.Downtime, NoRestart: e.NoRestart})
	}
	return cfg, nil
}

// Validate reports whether the scenario is runnable.
func (sc *Scenario) Validate() error {
	if sc.Stack.Kind != StackBroker && sc.Stack.Kind != StackCluster && sc.Stack.Kind != StackWire {
		return fmt.Errorf("explore: unknown stack kind %q", sc.Stack.Kind)
	}
	if sc.Stack.Kind == StackCluster && sc.Stack.Nodes <= 0 {
		return fmt.Errorf("explore: cluster stack needs nodes > 0")
	}
	if sc.Stack.Replicated {
		if sc.Stack.Kind != StackCluster {
			return fmt.Errorf("explore: replicated stacks require the cluster kind")
		}
		if sc.Stack.Nodes < 2 {
			return fmt.Errorf("explore: replicated stacks need nodes >= 2 for a distinct follower")
		}
	}
	for i, e := range sc.Events {
		if e.NoRestart && !sc.Stack.Replicated {
			return fmt.Errorf("explore: event %d is a permanent kill, which only replicated stacks survive", i)
		}
	}
	if _, ok := ExpectedProperty(sc.Stack.Fault); !ok && sc.Stack.Fault != FaultNone {
		return fmt.Errorf("explore: unknown fault %q", sc.Stack.Fault)
	}
	switch sc.Stack.Chaos {
	case ChaosNone, ChaosFlaky, ChaosPartition:
	default:
		return fmt.Errorf("explore: unknown chaos profile %q", sc.Stack.Chaos)
	}
	if sc.Stack.Chaos != ChaosNone && sc.Stack.Kind != StackWire {
		return fmt.Errorf("explore: chaos profile %q requires the wire stack", sc.Stack.Chaos)
	}
	cfg, err := sc.HarnessConfig()
	if err != nil {
		return err
	}
	return cfg.Validate()
}

// Marshal renders the scenario as indented JSON, the repro format.
func (sc *Scenario) Marshal() ([]byte, error) {
	return json.MarshalIndent(sc, "", "  ")
}

// LoadScenario reads a JSON repro file.
func LoadScenario(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var sc Scenario
	if err := json.Unmarshal(data, &sc); err != nil {
		return nil, fmt.Errorf("explore: parsing %s: %w", path, err)
	}
	if err := sc.Validate(); err != nil {
		return nil, fmt.Errorf("explore: %s: %w", path, err)
	}
	return &sc, nil
}

// WriteRepro writes the scenario to path as indented JSON.
func (sc *Scenario) WriteRepro(path string) error {
	data, err := sc.Marshal()
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
