// Package explore is a randomized conformance explorer: a deterministic,
// seed-driven scenario generator, executor and shrinker that drives the
// existing harness/model pipeline across every provider stack the repo
// has (in-process broker, N-node cluster, wire server) and across the
// fault-wrapper library.
//
// The paper's approach checks safety properties on whatever scenarios a
// human thought to write; Deussen & Tobies argue test cases should come
// from formal purposes, not enumeration. Here the purpose is fixed — the
// five safety properties plus the no-duplicates extension — and the
// scenarios are derived mechanically from a single uint64 seed: topology
// (queues, topics, temporary queues, selectors, durable subscribers), a
// fleet of producers/consumers with randomized priorities, TTLs, ack
// modes and transactions, a provider stack, and an event schedule with
// mid-run consumer cycling and node crash/restart.
//
// The oracle is inverted as well as applied: seeds whose residue selects
// a known-faulty wrapper (Dropper, Duplicator, Reorderer, Corrupter,
// TTLIgnorer, OverEagerExpirer) must produce violations attributed to
// the matching property, and clean stacks must produce none. Any other
// verdict is a finding; a delta-debugging shrinker then minimizes the
// scenario and emits a replayable JSON repro.
package explore

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"jmsharness/internal/harness"
	"jmsharness/internal/jms"
	"jmsharness/internal/model"
	"jmsharness/internal/qos"
)

// Stack kinds.
const (
	StackBroker  = "broker"
	StackCluster = "cluster"
	StackWire    = "wire"
)

// Fault wrapper names. Empty means a clean stack.
const (
	FaultNone             = ""
	FaultDropper          = "dropper"
	FaultDuplicator       = "duplicator"
	FaultReorderer        = "reorderer"
	FaultCorrupter        = "corrupter"
	FaultTTLIgnorer       = "ttl-ignorer"
	FaultOverEagerExpirer = "over-eager-expirer"
)

// QoS fault names for StackSpec.QoSFault: quantitative misbehaviour
// that leaves every safety property intact but must trip the matching
// contract check. Empty means none.
const (
	QoSFaultNone = ""
	// QoSFaultLatency gives the broker a per-delivery base latency of
	// QoSDelay — deliveries are correct, complete and ordered, just
	// slow. Matching check: the delay-percentile budget.
	QoSFaultLatency = "latency"
	// QoSFaultReject errors every QoSEveryN-th send (load shedding).
	// Rejected sends are not "sent" per Definition 1 so safety holds;
	// the rejection ratio trips the overload-rejection ceiling.
	QoSFaultReject = "reject"
	// QoSFaultThrottle stalls every send by QoSDelay, collapsing the
	// achievable rate. Matching check: the throughput floor.
	QoSFaultThrottle = "throttle"
)

// ExpectedQoSKind maps a QoS fault to the contract check kind that must
// flag it — the quantitative half of the oracle-inversion table.
func ExpectedQoSKind(fault string) (string, bool) {
	switch fault {
	case QoSFaultLatency:
		return qos.KindDelayP95, true
	case QoSFaultReject:
		return qos.KindRejectionCeiling, true
	case QoSFaultThrottle:
		return qos.KindThroughputFloor, true
	default:
		return "", false
	}
}

// ExpectedProperty maps a fault wrapper to the safety property that must
// flag it — the oracle-inversion table.
func ExpectedProperty(fault string) (model.Property, bool) {
	switch fault {
	case FaultDropper:
		return model.PropRequiredMessages, true
	case FaultDuplicator:
		return model.PropNoDuplicates, true
	case FaultReorderer:
		return model.PropMessageOrdering, true
	case FaultCorrupter:
		return model.PropDeliveryIntegrity, true
	case FaultTTLIgnorer, FaultOverEagerExpirer:
		return model.PropExpiredMessages, true
	default:
		return "", false
	}
}

// StackSpec selects the provider stack a scenario runs against.
type StackSpec struct {
	// Kind is one of broker, cluster, wire.
	Kind string `json:"kind"`
	// Nodes is the cluster size (cluster stacks only).
	Nodes int `json:"nodes,omitempty"`
	// Replicated gives each destination WAL-shipping followers with
	// failure-detected promotion (cluster stacks only, needs Nodes >= 2).
	// It is the stack for failover scenarios: a NoRestart node kill must
	// be absorbed by promotion, not recovered in place.
	Replicated bool `json:"replicated,omitempty"`
	// ReplicationFactor is the follower count per destination on a
	// replicated stack; zero keeps the package default of 1. Must leave a
	// distinct follower set, so at most Nodes-1.
	ReplicationFactor int `json:"replication_factor,omitempty"`
	// Quorum is how many of those followers must acknowledge a write
	// before the client sees it succeed; zero keeps the package default
	// (a majority of ReplicationFactor). At most ReplicationFactor.
	Quorum int `json:"quorum,omitempty"`
	// Latent gives the underlying broker(s) a base delivery latency, so
	// short-TTL messages genuinely should expire in flight (the expiry
	// probe configuration).
	Latent bool `json:"latent,omitempty"`
	// Fault names the fault wrapper applied outermost; empty means none.
	Fault string `json:"fault,omitempty"`
	// FaultN parameterises every-nth-message faults.
	FaultN int `json:"fault_n,omitempty"`
	// Pipelined enables credit-windowed producer pipelining on the wire
	// client (wire stacks only): sends stream without per-send replies
	// and settle via batched completions, with reconnect replaying the
	// unacked window under the server's send dedup. The conformance
	// expectation is unchanged — a pipelined clean stack must violate
	// nothing, duplicates included.
	Pipelined bool `json:"pipelined,omitempty"`
	// PipeWindow overrides the pipelining credit window; zero keeps the
	// factory default.
	PipeWindow int `json:"pipe_window,omitempty"`
	// Chaos names the network-fault profile interposed between the wire
	// client and server (wire stacks only): "" for none, "flaky" for
	// latency+jitter, "partition" for a mid-run partition that heals.
	// Only lossless profiles are generated — the provider stack is
	// correct, so a chaotic-but-lossless network must not produce
	// findings.
	Chaos string `json:"chaos,omitempty"`
	// ChaosSeed drives the chaos proxy's jitter generator.
	ChaosSeed uint64 `json:"chaos_seed,omitempty"`
	// QoSFault names the quantitative fault injected for QoS probes
	// (see the QoSFault* constants); safety-clean by construction.
	QoSFault string `json:"qos_fault,omitempty"`
	// QoSDelay parameterises latency (per-delivery base latency) and
	// throttle (per-send stall) QoS faults.
	QoSDelay time.Duration `json:"qos_delay,omitempty"`
	// QoSEveryN parameterises the reject QoS fault: every nth send
	// errors.
	QoSEveryN int `json:"qos_every_n,omitempty"`
	// SyncTimeout overrides the replicated cluster's semisync wait
	// (replicated stacks only); zero keeps the package default. Link
	// partition probes lower it so a mid-run partition demonstrably
	// degrades — and then heals — within the scenario.
	SyncTimeout time.Duration `json:"sync_timeout,omitempty"`
}

// Chaos profile names for StackSpec.Chaos.
const (
	ChaosNone      = ""
	ChaosFlaky     = "flaky"
	ChaosPartition = "partition"
)

// ProducerSpec is the JSON-serializable form of one producer.
type ProducerSpec struct {
	ID string `json:"id"`
	// Dest is "queue:name" or "topic:name"; empty iff TempOf is set.
	Dest string `json:"dest,omitempty"`
	// TempOf directs the producer at the named consumer's temp queue.
	TempOf      string          `json:"temp_of,omitempty"`
	Rate        float64         `json:"rate"`
	BodyKind    int             `json:"body_kind,omitempty"`
	BodySize    int             `json:"body_size,omitempty"`
	Priorities  []int           `json:"priorities,omitempty"`
	NonPersist  bool            `json:"non_persistent,omitempty"`
	TTLs        []time.Duration `json:"ttls,omitempty"`
	Transacted  bool            `json:"transacted,omitempty"`
	TxBatch     int             `json:"tx_batch,omitempty"`
	AbortEvery  int             `json:"abort_every,omitempty"`
	MaxMessages int             `json:"max_messages,omitempty"`
}

// ConsumerSpec is the JSON-serializable form of one consumer.
type ConsumerSpec struct {
	ID string `json:"id"`
	// Dest is "queue:name" or "topic:name"; empty iff TempQueue is set.
	Dest       string        `json:"dest,omitempty"`
	TempQueue  bool          `json:"temp_queue,omitempty"`
	Durable    bool          `json:"durable,omitempty"`
	SubName    string        `json:"sub_name,omitempty"`
	ClientID   string        `json:"client_id,omitempty"`
	Selector   string        `json:"selector,omitempty"`
	AckMode    int           `json:"ack_mode,omitempty"`
	Transacted bool          `json:"transacted,omitempty"`
	TxBatch    int           `json:"tx_batch,omitempty"`
	CycleEvery time.Duration `json:"cycle_every,omitempty"`
}

// EventSpec schedules one fault injection (crash/restart) during a run.
type EventSpec struct {
	At time.Duration `json:"at"`
	// Node is the cluster node to crash; -1 crashes the whole provider.
	Node     int           `json:"node"`
	Downtime time.Duration `json:"downtime,omitempty"`
	// NoRestart makes the kill permanent: the node stays down for the
	// rest of the run. Only generated against replicated cluster stacks,
	// where failover — not restart — is the expected recovery.
	NoRestart bool `json:"no_restart,omitempty"`
	// LinkPartition turns the event into a replication-link partition
	// instead of a crash: every replication link from or to Node is
	// black-holed for Downtime, then heals. No broker dies — the link
	// degrades and reattaches, which must stay invisible to every
	// safety property. Replicated stacks only.
	LinkPartition bool `json:"link_partition,omitempty"`
}

// Scenario is one complete generated test: stack, workload, schedule.
// It round-trips through JSON, which is the repro format.
type Scenario struct {
	Seed      uint64         `json:"seed"`
	Name      string         `json:"name"`
	Stack     StackSpec      `json:"stack"`
	Producers []ProducerSpec `json:"producers"`
	Consumers []ConsumerSpec `json:"consumers"`
	Events    []EventSpec    `json:"events,omitempty"`
	Warmup    time.Duration  `json:"warmup"`
	Run       time.Duration  `json:"run"`
	Warmdown  time.Duration  `json:"warmdown"`
	// AllowDuplicates relaxes the no-duplicates check (set when a
	// consumer uses dups-ok acknowledgement).
	AllowDuplicates bool `json:"allow_duplicates,omitempty"`
	// Contract is the scenario's QoS contract, evaluated over the trace
	// alongside the safety properties; nil means no quantitative checks.
	Contract *qos.Contract `json:"contract,omitempty"`
}

// Workers counts the scenario's producers plus consumers.
func (sc *Scenario) Workers() int { return len(sc.Producers) + len(sc.Consumers) }

// parseDest parses the "queue:x" / "topic:y" destination form.
func parseDest(s string) (jms.Destination, error) {
	switch {
	case strings.HasPrefix(s, "queue:"):
		return jms.Queue(strings.TrimPrefix(s, "queue:")), nil
	case strings.HasPrefix(s, "topic:"):
		return jms.Topic(strings.TrimPrefix(s, "topic:")), nil
	default:
		return nil, fmt.Errorf("explore: destination %q is not queue:* or topic:*", s)
	}
}

// HarnessConfig converts the scenario to a runnable harness test.
func (sc *Scenario) HarnessConfig() (harness.Config, error) {
	cfg := harness.Config{
		Name:     sc.Name,
		Warmup:   sc.Warmup,
		Run:      sc.Run,
		Warmdown: sc.Warmdown,
		Seed:     sc.Seed,
	}
	for _, p := range sc.Producers {
		pc := harness.ProducerConfig{
			ID:           p.ID,
			Rate:         p.Rate,
			BodyKind:     jms.BodyKind(p.BodyKind),
			BodySize:     p.BodySize,
			TTLs:         p.TTLs,
			Transacted:   p.Transacted,
			TxBatch:      p.TxBatch,
			AbortEvery:   p.AbortEvery,
			MaxMessages:  p.MaxMessages,
			SendToTempOf: p.TempOf,
		}
		if p.NonPersist {
			pc.Mode = jms.NonPersistent
		}
		if p.Dest != "" {
			d, err := parseDest(p.Dest)
			if err != nil {
				return cfg, err
			}
			pc.Destination = d
		}
		for _, pri := range p.Priorities {
			pc.Priorities = append(pc.Priorities, jms.Priority(pri))
		}
		cfg.Producers = append(cfg.Producers, pc)
	}
	for _, c := range sc.Consumers {
		cc := harness.ConsumerConfig{
			ID:         c.ID,
			TempQueue:  c.TempQueue,
			Durable:    c.Durable,
			SubName:    c.SubName,
			ClientID:   c.ClientID,
			Selector:   c.Selector,
			AckMode:    jms.AckMode(c.AckMode),
			Transacted: c.Transacted,
			TxBatch:    c.TxBatch,
			CycleEvery: c.CycleEvery,
		}
		if c.Dest != "" {
			d, err := parseDest(c.Dest)
			if err != nil {
				return cfg, err
			}
			cc.Destination = d
		}
		cfg.Consumers = append(cfg.Consumers, cc)
	}
	for _, e := range sc.Events {
		if e.LinkPartition {
			// Link partitions are injected at the stack layer (chaos
			// proxies on the replication links), not by the harness.
			continue
		}
		cfg.Faults = append(cfg.Faults, harness.FaultEvent{At: e.At, Node: e.Node, Downtime: e.Downtime, NoRestart: e.NoRestart})
	}
	return cfg, nil
}

// Validate reports whether the scenario is runnable.
func (sc *Scenario) Validate() error {
	if sc.Stack.Kind != StackBroker && sc.Stack.Kind != StackCluster && sc.Stack.Kind != StackWire {
		return fmt.Errorf("explore: unknown stack kind %q", sc.Stack.Kind)
	}
	if sc.Stack.Kind == StackCluster && sc.Stack.Nodes <= 0 {
		return fmt.Errorf("explore: cluster stack needs nodes > 0")
	}
	if sc.Stack.Replicated {
		if sc.Stack.Kind != StackCluster {
			return fmt.Errorf("explore: replicated stacks require the cluster kind")
		}
		if sc.Stack.Nodes < 2 {
			return fmt.Errorf("explore: replicated stacks need nodes >= 2 for a distinct follower")
		}
		if sc.Stack.ReplicationFactor < 0 || sc.Stack.ReplicationFactor > sc.Stack.Nodes-1 {
			return fmt.Errorf("explore: replication factor %d needs %d distinct followers out of %d nodes",
				sc.Stack.ReplicationFactor, sc.Stack.ReplicationFactor, sc.Stack.Nodes)
		}
		rf := sc.Stack.ReplicationFactor
		if rf == 0 {
			rf = 1
		}
		if sc.Stack.Quorum < 0 || sc.Stack.Quorum > rf {
			return fmt.Errorf("explore: quorum %d exceeds replication factor %d", sc.Stack.Quorum, rf)
		}
	} else if sc.Stack.ReplicationFactor != 0 || sc.Stack.Quorum != 0 {
		return fmt.Errorf("explore: replication_factor/quorum require a replicated stack")
	}
	for i, e := range sc.Events {
		if e.NoRestart && !sc.Stack.Replicated {
			return fmt.Errorf("explore: event %d is a permanent kill, which only replicated stacks survive", i)
		}
		if e.LinkPartition {
			if !sc.Stack.Replicated {
				return fmt.Errorf("explore: event %d partitions replication links, which need a replicated stack", i)
			}
			if e.Downtime <= 0 {
				return fmt.Errorf("explore: event %d is a link partition with no duration", i)
			}
			if e.Node < 0 || e.Node >= sc.Stack.Nodes {
				return fmt.Errorf("explore: event %d partitions links of node %d outside the cluster", i, e.Node)
			}
		}
	}
	if _, ok := ExpectedProperty(sc.Stack.Fault); !ok && sc.Stack.Fault != FaultNone {
		return fmt.Errorf("explore: unknown fault %q", sc.Stack.Fault)
	}
	switch sc.Stack.QoSFault {
	case QoSFaultNone:
	case QoSFaultLatency, QoSFaultThrottle:
		if sc.Stack.QoSDelay <= 0 {
			return fmt.Errorf("explore: qos fault %q needs qos_delay > 0", sc.Stack.QoSFault)
		}
	case QoSFaultReject:
		if sc.Stack.QoSEveryN <= 0 {
			return fmt.Errorf("explore: qos fault reject needs qos_every_n > 0")
		}
	default:
		return fmt.Errorf("explore: unknown qos fault %q", sc.Stack.QoSFault)
	}
	if sc.Stack.QoSFault != QoSFaultNone && sc.Contract == nil {
		return fmt.Errorf("explore: qos fault %q without a contract to flag it", sc.Stack.QoSFault)
	}
	if sc.Contract != nil {
		if err := sc.Contract.Validate(); err != nil {
			return err
		}
	}
	if sc.Stack.SyncTimeout != 0 && !sc.Stack.Replicated {
		return fmt.Errorf("explore: sync_timeout requires a replicated stack")
	}
	switch sc.Stack.Chaos {
	case ChaosNone, ChaosFlaky, ChaosPartition:
	default:
		return fmt.Errorf("explore: unknown chaos profile %q", sc.Stack.Chaos)
	}
	if sc.Stack.Chaos != ChaosNone && sc.Stack.Kind != StackWire {
		return fmt.Errorf("explore: chaos profile %q requires the wire stack", sc.Stack.Chaos)
	}
	if sc.Stack.Pipelined && sc.Stack.Kind != StackWire {
		return fmt.Errorf("explore: pipelining requires the wire stack")
	}
	if sc.Stack.PipeWindow != 0 && !sc.Stack.Pipelined {
		return fmt.Errorf("explore: pipe_window requires pipelined")
	}
	if sc.Stack.PipeWindow < 0 {
		return fmt.Errorf("explore: pipe_window must be >= 0")
	}
	cfg, err := sc.HarnessConfig()
	if err != nil {
		return err
	}
	return cfg.Validate()
}

// Marshal renders the scenario as indented JSON, the repro format.
func (sc *Scenario) Marshal() ([]byte, error) {
	return json.MarshalIndent(sc, "", "  ")
}

// LoadScenario reads a JSON repro file.
func LoadScenario(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var sc Scenario
	if err := json.Unmarshal(data, &sc); err != nil {
		return nil, fmt.Errorf("explore: parsing %s: %w", path, err)
	}
	if err := sc.Validate(); err != nil {
		return nil, fmt.Errorf("explore: %s: %w", path, err)
	}
	return &sc, nil
}

// WriteRepro writes the scenario to path as indented JSON.
func (sc *Scenario) WriteRepro(path string) error {
	data, err := sc.Marshal()
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
