package explore

import (
	"bytes"
	"path/filepath"
	"testing"
	"time"

	"jmsharness/internal/model"
)

// TestGenerateDeterministic checks that scenario derivation is a pure
// function of the seed: replaying a repro by seed must rebuild the exact
// same scenario.
func TestGenerateDeterministic(t *testing.T) {
	for s := uint64(0); s <= 100; s++ {
		a, err := Generate(s).Marshal()
		if err != nil {
			t.Fatalf("seed %d: %v", s, err)
		}
		b, err := Generate(s).Marshal()
		if err != nil {
			t.Fatalf("seed %d: %v", s, err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("seed %d: two generations differ:\n%s\n---\n%s", s, a, b)
		}
	}
}

// TestGeneratedScenariosValidate checks every generated scenario is
// runnable without executing it.
func TestGeneratedScenariosValidate(t *testing.T) {
	for s := uint64(0); s <= 200; s++ {
		if err := Generate(s).Validate(); err != nil {
			t.Errorf("seed %d: %v", s, err)
		}
	}
}

// TestScenarioRoundTrip checks the JSON repro format round-trips.
func TestScenarioRoundTrip(t *testing.T) {
	for s := uint64(1); s <= 24; s++ {
		sc := Generate(s)
		path := filepath.Join(t.TempDir(), "repro.json")
		if err := sc.WriteRepro(path); err != nil {
			t.Fatalf("seed %d: write: %v", s, err)
		}
		loaded, err := LoadScenario(path)
		if err != nil {
			t.Fatalf("seed %d: load: %v", s, err)
		}
		a, _ := sc.Marshal()
		b, _ := loaded.Marshal()
		if !bytes.Equal(a, b) {
			t.Errorf("seed %d: round trip changed the scenario:\n%s\n---\n%s", s, a, b)
		}
	}
}

// TestOracleInversionTable checks the fault→property table and the seed
// residue schedule: any 12 consecutive seeds cover all six wrappers.
func TestOracleInversionTable(t *testing.T) {
	want := map[string]model.Property{
		FaultDropper:          model.PropRequiredMessages,
		FaultDuplicator:       model.PropNoDuplicates,
		FaultReorderer:        model.PropMessageOrdering,
		FaultCorrupter:        model.PropDeliveryIntegrity,
		FaultTTLIgnorer:       model.PropExpiredMessages,
		FaultOverEagerExpirer: model.PropExpiredMessages,
	}
	for fault, prop := range want {
		got, ok := ExpectedProperty(fault)
		if !ok || got != prop {
			t.Errorf("ExpectedProperty(%s) = %v,%v want %v", fault, got, ok, prop)
		}
	}
	if _, ok := ExpectedProperty(FaultNone); ok {
		t.Error("FaultNone must not map to a property")
	}
	seen := map[string]bool{}
	for s := uint64(100); s < 100+faultCycle; s++ {
		seen[Generate(s).Stack.Fault] = true
	}
	for fault := range want {
		if !seen[fault] {
			t.Errorf("12 consecutive seeds did not cover %s", fault)
		}
	}
}

// TestSmokeCorpus is the fixed-seed conformance corpus: one full fault
// cycle executed through Explore. Clean stacks must satisfy every safety
// property and each known-faulty wrapper must be flagged by its matching
// property — zero findings either way.
func TestSmokeCorpus(t *testing.T) {
	sum, err := Explore(1, Options{
		Duration:     5 * time.Minute,
		MaxScenarios: faultCycle,
		Log:          t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range sum.Findings {
		t.Errorf("seed %d: %s\n%s", f.Seed, f.Reason, f.Report)
	}
	if sum.Scenarios != faultCycle {
		t.Errorf("ran %d scenarios, want %d", sum.Scenarios, faultCycle)
	}
	covered, all := sum.CoveredFaults()
	if !all {
		t.Errorf("fault coverage incomplete: %v", covered)
	}
}

// TestChaosScenariosExecute runs one generated scenario per chaos
// profile (seed 24 draws wire+flaky, seed 3 wire+partition): a lossless
// chaotic network in front of a correct provider must produce zero
// findings, exercising the chaos proxy and the reconnecting wire client
// as ordinary scenario stacks.
func TestChaosScenariosExecute(t *testing.T) {
	for _, seed := range []uint64{24, 3} {
		sc := Generate(seed)
		if sc.Stack.Kind != StackWire || sc.Stack.Chaos == ChaosNone {
			t.Fatalf("seed %d: expected a wire+chaos scenario, got %+v", seed, sc.Stack)
		}
		res, err := Execute(sc)
		if err != nil {
			t.Fatalf("seed %d (%s): %v", seed, sc.Stack.Chaos, err)
		}
		if reason := Unexpected(sc, res); reason != "" {
			t.Errorf("seed %d (%s): %s\n%s", seed, sc.Stack.Chaos, reason, res.Conformance.String())
		}
	}
}

// TestFailoverScenarioExecutes runs the first generated replicated
// failover probe (seed 28 draws it): a three-node replicated cluster
// with a permanent mid-run node kill. Promotion must absorb the kill —
// every safety property holds straight through the detection window,
// so any finding at all is a regression in the replica subsystem.
func TestFailoverScenarioExecutes(t *testing.T) {
	sc := Generate(28)
	if !sc.Stack.Replicated || len(sc.Events) == 0 || !sc.Events[0].NoRestart {
		t.Fatalf("seed 28: expected a replicated failover probe, got %+v events %+v", sc.Stack, sc.Events)
	}
	res, err := Execute(sc)
	if err != nil {
		t.Fatal(err)
	}
	if reason := Unexpected(sc, res); reason != "" {
		t.Errorf("failover probe: %s\n%s", reason, res.Conformance.String())
	}
}

// TestCrashRedeliveryRepro replays the checked-in minimized repro of a
// real bug the explorer found (seed 5 of the development sweep): the
// broker recovered delivered-but-unacknowledged persistent messages
// after a crash without setting the JMSRedelivered flag, so their
// redelivery looked like a FIFO violation. The scenario: one producer,
// one lazily-acknowledging (dups-ok) consumer, one mid-run crash. The
// replay must now satisfy every property, deterministically.
func TestCrashRedeliveryRepro(t *testing.T) {
	sc, err := LoadScenario(filepath.Join("testdata", "crash-redelivery-flag.json"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		res, err := Execute(sc)
		if err != nil {
			t.Fatalf("replay %d: %v", i, err)
		}
		if reason := Unexpected(sc, res); reason != "" {
			t.Errorf("replay %d: %s\n%s", i, reason, res.Conformance)
		}
	}
}

// TestShrinkInjectedBug injects a bug (a message-dropping wrapper the
// oracle is not told about) into a deliberately busy scenario and checks
// the shrinker reduces it to a minimal deterministic repro: at most 3
// workers and at most 10 messages.
func TestShrinkInjectedBug(t *testing.T) {
	sc := &Scenario{
		Seed:  1,
		Name:  "injected-dropper",
		Stack: StackSpec{Kind: StackBroker, Fault: FaultDropper, FaultN: 3},
		Producers: []ProducerSpec{
			{ID: "p0", Dest: "queue:shrink.q", Rate: 400, BodySize: 64},
			{ID: "p1", Dest: "queue:shrink.q", Rate: 300, BodySize: 32, Priorities: []int{1, 9}},
		},
		Consumers: []ConsumerSpec{
			{ID: "c0", Dest: "queue:shrink.q"},
			{ID: "c1", Dest: "queue:shrink.q", AckMode: 2},
			{ID: "c2", Dest: "topic:shrink.t"},
		},
		Warmup:   10 * time.Millisecond,
		Run:      120 * time.Millisecond,
		Warmdown: 150 * time.Millisecond,
	}
	// The "finding": a clean-looking run violating required-messages.
	interesting := func(cand *Scenario) (bool, error) {
		res, err := Execute(cand)
		if err != nil {
			return false, err
		}
		r, ok := res.Conformance.Result(model.PropRequiredMessages)
		return ok && len(r.Violations) > 0, nil
	}
	if ok, err := interesting(sc); err != nil || !ok {
		t.Fatalf("injected bug not visible before shrinking (ok=%v err=%v)", ok, err)
	}

	shrunk, attempts := Shrink(sc, interesting, ShrinkOptions{MaxAttempts: 40, Log: t.Logf})
	t.Logf("shrunk to %d workers in %d attempts", shrunk.Workers(), attempts)
	if shrunk.Workers() > 3 {
		t.Errorf("shrunk scenario has %d workers, want <= 3", shrunk.Workers())
	}
	total := 0
	for _, p := range shrunk.Producers {
		if p.MaxMessages <= 0 {
			t.Errorf("producer %s kept an unbounded message count", p.ID)
			continue
		}
		total += p.MaxMessages
	}
	if total > 10 {
		t.Errorf("shrunk scenario sends up to %d messages, want <= 10", total)
	}
	// The minimized repro must still reproduce, twice in a row.
	for i := 0; i < 2; i++ {
		ok, err := interesting(shrunk)
		if err != nil {
			t.Fatalf("replay %d: %v", i, err)
		}
		if !ok {
			t.Errorf("replay %d of the shrunk scenario no longer reproduces", i)
		}
	}
}

// TestPipelinedChaosScenarioExecutes runs a generated wire scenario
// that composes producer pipelining with the mid-run partition chaos
// profile — the duplicate hazard the pipelined path must pin down: a
// reconnect replays the unacked credit window with its original dedup
// tokens, so sends that reached the provider before the partition must
// settle from the server's dedup cache, not apply twice. Zero findings
// expected, including no-duplicates.
func TestPipelinedChaosScenarioExecutes(t *testing.T) {
	var sc *Scenario
	var seed uint64
	for s := uint64(0); s < 500; s++ {
		c := Generate(s)
		if c.Stack.Kind == StackWire && c.Stack.Pipelined && c.Stack.Chaos == ChaosPartition {
			sc, seed = c, s
			break
		}
	}
	if sc == nil {
		t.Fatal("no seed in 0..499 draws a pipelined wire+partition scenario")
	}
	res, err := Execute(sc)
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	if reason := Unexpected(sc, res); reason != "" {
		t.Errorf("seed %d (window %d): %s\n%s", seed, sc.Stack.PipeWindow, reason, res.Conformance.String())
	}
}
