package explore

import (
	"fmt"
	"path/filepath"
	"time"

	"jmsharness/internal/core"
)

// Options configures an explorer sweep.
type Options struct {
	// Duration bounds the sweep's wall-clock time; zero means 30s.
	Duration time.Duration
	// MaxScenarios bounds how many scenarios run; zero means unlimited
	// (within Duration).
	MaxScenarios int
	// Shrink minimizes unexpected scenarios before reporting them.
	Shrink bool
	// ShrinkBudget caps candidate executions per shrink; zero means 60.
	ShrinkBudget int
	// ReproDir is where repro JSON files are written; empty disables
	// writing.
	ReproDir string
	// Log receives progress lines; nil disables them.
	Log func(format string, args ...any)
}

// Finding is one scenario whose verdict disagreed with the oracle.
type Finding struct {
	// Seed generated the original scenario.
	Seed uint64
	// Reason describes the disagreement.
	Reason string
	// Scenario is the (possibly shrunk) reproduction.
	Scenario *Scenario
	// ReproPath is where the repro JSON was written, if anywhere.
	ReproPath string
	// Report is the conformance report of the reproduction.
	Report string
}

// Summary aggregates one sweep.
type Summary struct {
	// Scenarios counts executed scenarios; CleanOK and FaultsFlagged
	// count the expected verdicts among them.
	Scenarios    int
	CleanOK      int
	FaultsByKind map[string]int
	// QoSProbes counts scenarios carrying a quantitative contract;
	// QoSByFault counts, per seeded QoS fault, the ones the matching
	// contract check flagged as expected.
	QoSProbes  int
	QoSByFault map[string]int
	// Findings are the unexpected verdicts, minimized when shrinking is
	// enabled.
	Findings []Finding
}

// Explore sweeps seeds seed, seed+1, ... until the time or scenario
// budget runs out, executing each generated scenario and comparing the
// verdict to the oracle expectation. Unexpected verdicts are shrunk (if
// configured) and returned as findings.
func Explore(seed uint64, opts Options) (*Summary, error) {
	if opts.Duration <= 0 {
		opts.Duration = 30 * time.Second
	}
	logf := opts.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}
	sum := &Summary{FaultsByKind: map[string]int{}, QoSByFault: map[string]int{}}
	deadline := time.Now().Add(opts.Duration)

	for s := seed; time.Now().Before(deadline); s++ {
		if opts.MaxScenarios > 0 && sum.Scenarios >= opts.MaxScenarios {
			break
		}
		sc := Generate(s)
		res, err := Execute(sc)
		if err != nil {
			return sum, fmt.Errorf("explore: seed %d (%s): %w", s, sc.Name, err)
		}
		sum.Scenarios++
		if sc.Contract != nil {
			sum.QoSProbes++
		}
		reason := Unexpected(sc, res)
		if reason == "" {
			switch {
			case sc.Stack.Fault != FaultNone:
				sum.FaultsByKind[sc.Stack.Fault]++
				want, _ := ExpectedProperty(sc.Stack.Fault)
				logf("seed %-6d %-28s ok (flagged by %s)", s, sc.Name, want)
			case sc.Stack.QoSFault != QoSFaultNone:
				sum.QoSByFault[sc.Stack.QoSFault]++
				want, _ := ExpectedQoSKind(sc.Stack.QoSFault)
				logf("seed %-6d %-28s ok (flagged by qos %s)", s, sc.Name, want)
			default:
				sum.CleanOK++
				logf("seed %-6d %-28s ok (clean)", s, sc.Name)
			}
			continue
		}

		logf("seed %-6d %-28s FINDING: %s", s, sc.Name, reason)
		finding := Finding{Seed: s, Reason: reason, Scenario: sc, Report: findingReport(res)}
		if opts.Shrink {
			origViolated := res.Conformance.ViolatedProperties()
			var origQoS []string
			if res.QoS != nil {
				origQoS = res.QoS.Violated()
			}
			shrunk, attempts := Shrink(sc, func(cand *Scenario) (bool, error) {
				r, err := Execute(cand)
				if err != nil {
					return false, err
				}
				return sameFinding(sc, origViolated, origQoS, cand, r), nil
			}, ShrinkOptions{MaxAttempts: opts.ShrinkBudget, Log: logf})
			logf("seed %-6d shrunk to %d workers in %d attempts", s, shrunk.Workers(), attempts)
			finding.Scenario = shrunk
			if r, err := Execute(shrunk); err == nil {
				finding.Report = findingReport(r)
			}
		}
		if opts.ReproDir != "" {
			path := filepath.Join(opts.ReproDir, fmt.Sprintf("repro-seed-%d.json", s))
			if err := finding.Scenario.WriteRepro(path); err != nil {
				return sum, fmt.Errorf("explore: writing repro: %w", err)
			}
			finding.ReproPath = path
			logf("seed %-6d repro written to %s", s, path)
		}
		sum.Findings = append(sum.Findings, finding)
	}
	return sum, nil
}

// findingReport renders the parts of a result a finding cares about:
// the conformance report plus, when a contract was evaluated, the QoS
// report.
func findingReport(res *core.Result) string {
	s := res.Conformance.String()
	if res.QoS != nil {
		s += res.QoS.String()
	}
	return s
}

// CoveredFaults reports which fault wrappers the sweep exercised and
// confirmed flagged; the bool is true when all known wrappers were.
func (s *Summary) CoveredFaults() (map[string]int, bool) {
	all := true
	for _, fault := range []string{
		FaultDropper, FaultDuplicator, FaultReorderer,
		FaultCorrupter, FaultTTLIgnorer, FaultOverEagerExpirer,
	} {
		if s.FaultsByKind[fault] == 0 {
			all = false
		}
	}
	return s.FaultsByKind, all
}
