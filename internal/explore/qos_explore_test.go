package explore

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"jmsharness/internal/core"
	"jmsharness/internal/qos"
	"jmsharness/internal/replica"
)

// TestQoSProbeGeneration pins the QoS probe shapes to fixed seeds (the
// probes draw from independent RNG streams, so these draws can only
// change if the streams themselves do) and checks the fault→check
// table.
func TestQoSProbeGeneration(t *testing.T) {
	wantKind := map[string]string{
		QoSFaultLatency:  qos.KindDelayP95,
		QoSFaultReject:   qos.KindRejectionCeiling,
		QoSFaultThrottle: qos.KindThroughputFloor,
	}
	for fault, kind := range wantKind {
		got, ok := ExpectedQoSKind(fault)
		if !ok || got != kind {
			t.Errorf("ExpectedQoSKind(%s) = %v,%v want %v", fault, got, ok, kind)
		}
	}
	if _, ok := ExpectedQoSKind(QoSFaultNone); ok {
		t.Error("QoSFaultNone must not map to a check kind")
	}

	pins := map[uint64]string{
		16: QoSFaultNone,
		15: QoSFaultLatency,
		26: QoSFaultReject,
		5:  QoSFaultThrottle,
	}
	for seed, fault := range pins {
		sc := Generate(seed)
		if sc.Contract == nil || sc.Stack.QoSFault != fault {
			t.Errorf("seed %d: want qos probe with fault %q, got %+v", seed, fault, sc.Stack)
		}
	}
	sc := Generate(2)
	if !sc.Stack.Replicated || len(sc.Events) != 1 || !sc.Events[0].LinkPartition || sc.Contract == nil {
		t.Errorf("seed 2: want link-partition probe, got %+v events %+v", sc.Stack, sc.Events)
	}
	if sc.Stack.SyncTimeout <= 0 || sc.Stack.SyncTimeout >= sc.Events[0].Downtime {
		t.Errorf("seed 2: sync timeout %v must be positive and inside the %v partition",
			sc.Stack.SyncTimeout, sc.Events[0].Downtime)
	}
}

// TestQoSOracleInversion executes the first 50 contract-bearing
// scenarios of the fixed seed range and requires every verdict to agree
// with the oracle, in both directions: seeded QoS faults flagged by the
// matching check, clean (and link-partitioned) stacks flagged by
// nothing — safety or QoS.
func TestQoSOracleInversion(t *testing.T) {
	var seeds []uint64
	for s := uint64(0); s < 2000 && len(seeds) < 50; s++ {
		if Generate(s).Contract != nil {
			seeds = append(seeds, s)
		}
	}
	if len(seeds) < 50 {
		t.Fatalf("only %d contract scenarios in the scanned range", len(seeds))
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			t.Parallel()
			sc := Generate(seed)
			res, err := Execute(sc)
			if err != nil {
				t.Fatalf("%s: %v", sc.Name, err)
			}
			if reason := Unexpected(sc, res); reason != "" {
				t.Errorf("%s: %s\n%s", sc.Name, reason, res)
			}
		})
	}
}

// TestShrinkQoSViolation injects a QoS bug — a contract whose
// throughput floor the offered load can never meet — into a busy
// scenario and checks the shrinker reduces it, via the production
// sameFinding predicate, to a minimal repro that round-trips through
// the JSON repro format and still violates on replay.
func TestShrinkQoSViolation(t *testing.T) {
	sc := &Scenario{
		Seed:  7,
		Name:  "unattainable-floor",
		Stack: StackSpec{Kind: StackBroker},
		Contract: &qos.Contract{
			Name:       "floor-too-high",
			WarmupTrim: 10 * time.Millisecond,
			MinWindow:  40 * time.Millisecond,
			Checks: []qos.Check{
				{Kind: qos.KindThroughputFloor, MinPerSec: 1e6},
				{Kind: qos.KindDelayP95, Max: time.Second},
			},
		},
		Producers: []ProducerSpec{
			{ID: "p0", Dest: "queue:shrink.q", Rate: 300, BodySize: 64},
			{ID: "p1", Dest: "queue:shrink.q", Rate: 200, BodySize: 32, Priorities: []int{1, 9}},
		},
		Consumers: []ConsumerSpec{
			{ID: "c0", Dest: "queue:shrink.q"},
			{ID: "c1", Dest: "queue:shrink.q", AckMode: 1},
			{ID: "c2", Dest: "topic:shrink.t"},
		},
		Warmup:   10 * time.Millisecond,
		Run:      120 * time.Millisecond,
		Warmdown: 150 * time.Millisecond,
	}
	res, err := Execute(sc)
	if err != nil {
		t.Fatal(err)
	}
	reason := Unexpected(sc, res)
	if !strings.Contains(reason, "violated qos "+qos.KindThroughputFloor) {
		t.Fatalf("want a throughput-floor finding before shrinking, got %q", reason)
	}
	origQoS := res.QoS.Violated()

	interesting := func(cand *Scenario) (bool, error) {
		r, err := Execute(cand)
		if err != nil {
			return false, err
		}
		return sameFinding(sc, nil, origQoS, cand, r), nil
	}
	shrunk, attempts := Shrink(sc, interesting, ShrinkOptions{MaxAttempts: 40, Log: t.Logf})
	t.Logf("shrunk to %d workers in %d attempts", shrunk.Workers(), attempts)
	if shrunk.Workers() > 2 {
		t.Errorf("shrunk scenario has %d workers, want <= 2", shrunk.Workers())
	}
	if shrunk.Contract == nil {
		t.Fatal("shrinker dropped the load-bearing contract")
	}

	// The minimized repro must survive the JSON round trip and violate
	// the same check on replay, twice.
	path := filepath.Join(t.TempDir(), "qos-repro.json")
	if err := shrunk.WriteRepro(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadScenario(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		r, err := Execute(loaded)
		if err != nil {
			t.Fatalf("replay %d: %v", i, err)
		}
		if !r.QoS.Failed(qos.KindThroughputFloor) {
			t.Errorf("replay %d of the shrunk repro no longer violates the floor", i)
		}
	}
}

// linkPartitionScenario is the deterministic replication-link drill the
// WrapLink tests share: a three-node replicated cluster, semisync with
// a 30ms timeout, and every node's replication links partitioned for
// 80ms mid-run (partitioning all three removes any dependence on which
// node the hash assigns a queue's primary or follower to).
func linkPartitionScenario() *Scenario {
	sc := &Scenario{
		Seed: 11,
		Name: "link-partition-drill",
		Stack: StackSpec{
			Kind:        StackCluster,
			Nodes:       3,
			Replicated:  true,
			SyncTimeout: 30 * time.Millisecond,
		},
		Contract: &qos.Contract{
			Name:       "partition-tolerance",
			WarmupTrim: 20 * time.Millisecond,
			MinSamples: 12,
			MinWindow:  100 * time.Millisecond,
			Checks: []qos.Check{
				{Kind: qos.KindThroughputFloor, MinPerSec: 20},
				{Kind: qos.KindRejectionCeiling, MaxRatio: 0.05},
			},
		},
		Producers: []ProducerSpec{
			{ID: "p0", Dest: "queue:lp.q0", Rate: 200, BodySize: 32},
			{ID: "p1", Dest: "queue:lp.q1", Rate: 200, BodySize: 32},
		},
		Consumers: []ConsumerSpec{
			{ID: "c0", Dest: "queue:lp.q0"},
			{ID: "c1", Dest: "queue:lp.q1"},
		},
		Warmup:   10 * time.Millisecond,
		Run:      250 * time.Millisecond,
		Warmdown: 400 * time.Millisecond,
	}
	for node := 0; node < 3; node++ {
		sc.Events = append(sc.Events, EventSpec{
			At:            70 * time.Millisecond,
			Node:          node,
			Downtime:      80 * time.Millisecond,
			LinkPartition: true,
		})
	}
	return sc
}

// TestLinkPartitionDegradesAndHeals is the WrapLink chaos drill run
// against the manager directly, so the replication event log is
// observable: partitioning every replication link (not killing any
// node) must degrade semisync within the timeout, heal after the
// partition lifts, never trigger a promotion (the failure detector
// pings nodes directly), and leave both the safety properties and the
// scenario contract intact.
func TestLinkPartitionDegradesAndHeals(t *testing.T) {
	sc := linkPartitionScenario()
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	lp := newLinkChaos(sc)
	if lp == nil {
		t.Fatal("scenario has no link partitions")
	}
	defer lp.close()
	m, err := replica.NewLocal(sc.Stack.Nodes, replica.Options{
		Seed:            1,
		HeartbeatEvery:  25 * time.Millisecond,
		HeartbeatMisses: 4,
		SyncTimeout:     sc.Stack.SyncTimeout,
		WrapLink:        lp.wrap,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	cfg, err := sc.HarnessConfig()
	if err != nil {
		t.Fatal(err)
	}
	opts := core.DefaultOptions()
	opts.QoS = sc.Contract
	res, err := core.RunAndAnalyze(m.Cluster(), cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if reason := Unexpected(sc, res); reason != "" {
		t.Errorf("partition drill: %s\n%s", reason, res)
	}

	degraded, restored := false, false
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && !(degraded && restored) {
		degraded, restored = false, false
		for _, e := range m.Events() {
			if strings.Contains(e, "degraded") {
				degraded = true
			}
			if strings.Contains(e, "sync restored") {
				restored = true
			}
			if strings.Contains(e, "promot") {
				t.Fatalf("link partition triggered a promotion: %s", e)
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !degraded {
		t.Errorf("no replication link degraded during the partition; events:\n%s",
			strings.Join(m.Events(), "\n"))
	}
	if !restored {
		t.Errorf("no replication link resynced after the partition healed; events:\n%s",
			strings.Join(m.Events(), "\n"))
	}
}

// TestShrinkPreservesPartition gives the link-partition drill a delay
// budget the semisync stall must break — the first send on each link
// after the partition starts waits the full 30ms timeout before
// degrading — and checks the shrinker keeps the partition events (and
// the replicated stack they require): dropping them heals the delays
// and loses the finding.
func TestShrinkPreservesPartition(t *testing.T) {
	sc := linkPartitionScenario()
	sc.Contract.Checks = []qos.Check{{Kind: qos.KindDelayP99, Max: 12 * time.Millisecond}}
	res, err := Execute(sc)
	if err != nil {
		t.Fatal(err)
	}
	reason := Unexpected(sc, res)
	if !strings.Contains(reason, "violated qos "+qos.KindDelayP99) {
		t.Fatalf("want a delay-p99 finding before shrinking, got %q\n%s", reason, res)
	}
	origQoS := res.QoS.Violated()

	interesting := func(cand *Scenario) (bool, error) {
		r, err := Execute(cand)
		if err != nil {
			return false, err
		}
		return sameFinding(sc, nil, origQoS, cand, r), nil
	}
	shrunk, attempts := Shrink(sc, interesting, ShrinkOptions{MaxAttempts: 30, Log: t.Logf})
	t.Logf("shrunk to %d workers, %d events in %d attempts", shrunk.Workers(), len(shrunk.Events), attempts)
	partitions := 0
	for _, e := range shrunk.Events {
		if e.LinkPartition {
			partitions++
		}
	}
	if partitions == 0 {
		t.Fatalf("shrinker dropped every load-bearing partition event: %+v", shrunk.Events)
	}
	if !shrunk.Stack.Replicated {
		t.Error("shrinker stripped replication out from under the partition events")
	}
	if shrunk.Contract == nil {
		t.Error("shrinker dropped the load-bearing contract")
	}
}
