package explore

import (
	"fmt"
	"time"

	"jmsharness/internal/qos"
)

// ShrinkOptions bounds a shrink run.
type ShrinkOptions struct {
	// MaxAttempts caps the number of candidate executions; zero means 60.
	MaxAttempts int
	// Log receives progress lines; nil disables them.
	Log func(format string, args ...any)
}

// messageLadder is the descending MaxMessages schedule the shrinker
// walks: it stops at the smallest cap that still reproduces.
var messageLadder = []int{40, 20, 10, 5, 3, 2, 1}

// Shrink delta-debugs a scenario down to a minimal reproduction:
// schedule events, consumers and producers are dropped one at a time,
// message counts are capped, the run is shortened, the stack is
// simplified to a plain broker, and incidental worker features
// (transactions, selectors, cycling, priorities, body kinds) are
// stripped — keeping each change only if interesting(candidate) still
// reports true. interesting is typically "re-execute and check the same
// verdict"; executions it performs count toward MaxAttempts via this
// function's bookkeeping, so pass a plain predicate.
func Shrink(sc *Scenario, interesting func(*Scenario) (bool, error), opts ShrinkOptions) (*Scenario, int) {
	budget := opts.MaxAttempts
	if budget <= 0 {
		budget = 60
	}
	logf := opts.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}
	cur := sc.clone()
	attempts := 0

	// try runs one candidate, spending budget; returns whether it still
	// reproduces (and is valid at all).
	try := func(cand *Scenario, what string) bool {
		if attempts >= budget {
			return false
		}
		if err := cand.Validate(); err != nil {
			return false
		}
		attempts++
		ok, err := interesting(cand)
		if err != nil || !ok {
			return false
		}
		logf("shrink: kept %s (%d workers)", what, cand.Workers())
		return true
	}

	for pass := 0; pass < 8; pass++ {
		changed := false

		// 1. Drop schedule events, all at once first.
		if len(cur.Events) > 0 {
			cand := cur.clone()
			cand.Events = nil
			if try(cand, "drop all events") {
				cur, changed = cand, true
			} else {
				for i := 0; i < len(cur.Events); i++ {
					cand := cur.clone()
					cand.Events = append(cand.Events[:i:i], cand.Events[i+1:]...)
					if try(cand, "drop one event") {
						cur, changed = cand, true
						i--
					}
				}
			}
		}

		// 2. Drop consumers (cascading producers aimed at their temp
		// queues), keeping at least one of each.
		for i := 0; i < len(cur.Consumers) && len(cur.Consumers) > 1; i++ {
			cand := cur.clone()
			victim := cand.Consumers[i].ID
			cand.Consumers = append(cand.Consumers[:i:i], cand.Consumers[i+1:]...)
			var prods []ProducerSpec
			for _, p := range cand.Producers {
				if p.TempOf != victim {
					prods = append(prods, p)
				}
			}
			if len(prods) == 0 {
				continue
			}
			cand.Producers = prods
			if try(cand, "drop consumer "+victim) {
				cur, changed = cand, true
				i--
			}
		}

		// 3. Drop producers.
		for i := 0; i < len(cur.Producers) && len(cur.Producers) > 1; i++ {
			cand := cur.clone()
			victim := cand.Producers[i].ID
			cand.Producers = append(cand.Producers[:i:i], cand.Producers[i+1:]...)
			if try(cand, "drop producer "+victim) {
				cur, changed = cand, true
				i--
			}
		}

		// 4. Cap message counts, walking the ladder down.
		for _, limit := range messageLadder {
			need := false
			for _, p := range cur.Producers {
				if p.MaxMessages == 0 || p.MaxMessages > limit {
					need = true
				}
			}
			if !need {
				continue
			}
			cand := cur.clone()
			for i := range cand.Producers {
				if cand.Producers[i].MaxMessages == 0 || cand.Producers[i].MaxMessages > limit {
					cand.Producers[i].MaxMessages = limit
				}
			}
			if !try(cand, fmt.Sprintf("cap messages at %d", limit)) {
				break
			}
			cur, changed = cand, true
		}

		// 5. Shorten the run.
		for cur.Run > 50*time.Millisecond {
			cand := cur.clone()
			cand.Run = cur.Run / 2
			if cand.Run < 50*time.Millisecond {
				cand.Run = 50 * time.Millisecond
			}
			if !try(cand, "halve run") {
				break
			}
			cur, changed = cand, true
		}

		// 6. Strip the chaos proxy, then simplify the stack to a plain
		// broker (keeping the fault wrapper and latency profile, which
		// may be load-bearing).
		if cur.Stack.Chaos != ChaosNone {
			cand := cur.clone()
			cand.Stack.Chaos = ChaosNone
			cand.Stack.ChaosSeed = 0
			if try(cand, "strip chaos proxy") {
				cur, changed = cand, true
			}
		}
		// Strip producer pipelining before simplifying the stack: a
		// finding that survives on blocking sends is not about the
		// credit window, the completion batching or the replay path.
		if cur.Stack.Pipelined {
			cand := cur.clone()
			cand.Stack.Pipelined = false
			cand.Stack.PipeWindow = 0
			if try(cand, "strip pipelining") {
				cur, changed = cand, true
			}
		}
		// Strip link-partition chaos on its own first: a finding that
		// survives with the links healthy is not about degradation or
		// reattachment.
		if cur.Stack.Replicated {
			hasLinkChaos := false
			for _, e := range cur.Events {
				hasLinkChaos = hasLinkChaos || e.LinkPartition
			}
			if hasLinkChaos {
				cand := cur.clone()
				cand.dropLinkPartitions()
				if try(cand, "strip link chaos") {
					cur, changed = cand, true
				}
			}
		}
		// Walk the replication factor down before stripping replication
		// entirely: a finding that reproduces at R=1 is not about the
		// quorum fan-out.
		for cur.Stack.ReplicationFactor > 1 {
			cand := cur.clone()
			cand.Stack.ReplicationFactor--
			if cand.Stack.Quorum > cand.Stack.ReplicationFactor {
				cand.Stack.Quorum = cand.Stack.ReplicationFactor
			}
			if !try(cand, "reduce replication factor") {
				break
			}
			cur, changed = cand, true
		}
		if cur.Stack.Replicated {
			// Strip replication before simplifying the topology: a plain
			// cluster cannot survive the permanent kills replication
			// absorbs, so those events become crash/restart cycles — and
			// link partitions (like the semisync timeout and the quorum
			// settings) only exist on replicated stacks, so they go too.
			cand := cur.clone()
			cand.Stack.Replicated = false
			cand.Stack.SyncTimeout = 0
			cand.Stack.ReplicationFactor = 0
			cand.Stack.Quorum = 0
			cand.dropLinkPartitions()
			for i := range cand.Events {
				cand.Events[i].NoRestart = false
			}
			if try(cand, "strip replication") {
				cur, changed = cand, true
			}
		}
		if cur.Stack.Kind != StackBroker {
			cand := cur.clone()
			cand.Stack.Kind = StackBroker
			cand.Stack.Nodes = 0
			cand.Stack.Replicated = false
			cand.Stack.SyncTimeout = 0
			cand.Stack.ReplicationFactor = 0
			cand.Stack.Quorum = 0
			cand.Stack.Chaos = ChaosNone
			cand.Stack.ChaosSeed = 0
			cand.Stack.Pipelined = false
			cand.Stack.PipeWindow = 0
			cand.dropLinkPartitions()
			for i := range cand.Events {
				cand.Events[i].Node = -1
				cand.Events[i].NoRestart = false
			}
			if try(cand, "stack -> broker") {
				cur, changed = cand, true
			}
		}

		// 6b. Strip the QoS dimension when it is not load-bearing: drop
		// the contract together with any seeded QoS fault (a fault
		// without its contract is an unjudged scenario, which Validate
		// rejects). For QoS findings sameFinding keeps both, so this pass
		// only fires on safety findings that happen to carry a contract.
		if cur.Contract != nil || cur.Stack.QoSFault != QoSFaultNone {
			cand := cur.clone()
			cand.Contract = nil
			cand.Stack.QoSFault = QoSFaultNone
			cand.Stack.QoSDelay = 0
			cand.Stack.QoSEveryN = 0
			if try(cand, "strip qos contract") {
				cur, changed = cand, true
			}
		}

		// 7. Strip incidental worker features.
		for i := range cur.Producers {
			p := cur.Producers[i]
			if p.Transacted || p.AbortEvery != 0 || len(p.Priorities) > 0 || p.BodyKind != 0 || p.NonPersist {
				cand := cur.clone()
				cand.Producers[i].Transacted = false
				cand.Producers[i].TxBatch = 0
				cand.Producers[i].AbortEvery = 0
				cand.Producers[i].Priorities = nil
				cand.Producers[i].BodyKind = 0
				cand.Producers[i].NonPersist = false
				if try(cand, "simplify producer "+p.ID) {
					cur, changed = cand, true
				}
			}
			if len(cur.Producers[i].TTLs) > 0 {
				cand := cur.clone()
				cand.Producers[i].TTLs = nil
				if try(cand, "drop TTLs of "+p.ID) {
					cur, changed = cand, true
				}
			}
		}
		for i := range cur.Consumers {
			c := cur.Consumers[i]
			if c.Selector != "" || c.CycleEvery != 0 || c.Transacted || c.AckMode != 0 || c.Durable {
				cand := cur.clone()
				cand.Consumers[i].Selector = ""
				cand.Consumers[i].CycleEvery = 0
				cand.Consumers[i].Transacted = false
				cand.Consumers[i].TxBatch = 0
				cand.Consumers[i].AckMode = 0
				cand.Consumers[i].Durable = false
				cand.Consumers[i].SubName = ""
				cand.Consumers[i].ClientID = ""
				if try(cand, "simplify consumer "+c.ID) {
					cur, changed = cand, true
				}
			}
		}

		if !changed || attempts >= budget {
			break
		}
	}
	return cur, attempts
}

// clone deep-copies a scenario so shrink candidates never alias.
func (sc *Scenario) clone() *Scenario {
	out := *sc
	out.Producers = append([]ProducerSpec(nil), sc.Producers...)
	for i := range out.Producers {
		out.Producers[i].Priorities = append([]int(nil), out.Producers[i].Priorities...)
		out.Producers[i].TTLs = append([]time.Duration(nil), out.Producers[i].TTLs...)
	}
	out.Consumers = append([]ConsumerSpec(nil), sc.Consumers...)
	out.Events = append([]EventSpec(nil), sc.Events...)
	if sc.Contract != nil {
		c := *sc.Contract
		c.Checks = append([]qos.Check(nil), sc.Contract.Checks...)
		out.Contract = &c
	}
	return &out
}

// dropLinkPartitions removes every link-partition event; they only make
// sense on replicated stacks.
func (sc *Scenario) dropLinkPartitions() {
	var events []EventSpec
	for _, e := range sc.Events {
		if !e.LinkPartition {
			events = append(events, e)
		}
	}
	sc.Events = events
}
