package explore

import (
	"fmt"
	"time"

	"jmsharness/internal/jms"
	"jmsharness/internal/qos"
	"jmsharness/internal/stats"
)

// faultCycle is the seed-residue schedule: every run of 12 consecutive
// seeds contains six clean scenarios and one scenario per known-faulty
// wrapper, so a sweep of any 12 seeds exercises the full oracle-inversion
// table.
const faultCycle = 12

var faultByResidue = map[uint64]string{
	6:  FaultDropper,
	7:  FaultDuplicator,
	8:  FaultReorderer,
	9:  FaultCorrupter,
	10: FaultTTLIgnorer,
	11: FaultOverEagerExpirer,
}

// Generate derives a complete scenario from one seed. The derivation is
// pure: the same seed always yields the same scenario.
func Generate(seed uint64) *Scenario {
	if fault, ok := faultByResidue[seed%faultCycle]; ok {
		return faultScenario(seed, fault)
	}
	return cleanScenario(seed)
}

// faultScenario builds the scenario for a known-faulty stack. The shapes
// mirror internal/faults' oracle tests: a steady single-stream workload
// that the matching property provably flags.
func faultScenario(seed uint64, fault string) *Scenario {
	rng := stats.NewRNG(seed)
	sc := &Scenario{
		Seed:     seed,
		Name:     fmt.Sprintf("seed-%d-%s", seed, fault),
		Stack:    StackSpec{Kind: StackBroker, Fault: fault, FaultN: 2 + rng.Intn(3)},
		Warmup:   10 * time.Millisecond,
		Run:      200 * time.Millisecond,
		Warmdown: 150 * time.Millisecond,
	}
	p := ProducerSpec{ID: "p1", Dest: "queue:fz.q0", Rate: 400, BodySize: 32}
	switch fault {
	case FaultTTLIgnorer:
		// Real latency so 1ms-TTL messages genuinely should expire; the
		// wrapper strips TTL and the provider delivers them anyway.
		sc.Stack.Latent = true
		p.TTLs = []time.Duration{0, time.Millisecond}
	case FaultOverEagerExpirer:
		// Generous TTLs the wrapper nevertheless "expires".
		p.TTLs = []time.Duration{0, time.Hour}
	}
	sc.Producers = []ProducerSpec{p}
	sc.Consumers = []ConsumerSpec{{ID: "c1", Dest: "queue:fz.q0"}}
	return sc
}

// failoverProbe rewrites a cluster scenario into the replicated
// failover shape: two persistent steady queue streams, one permanent
// node kill partway through the run, and a warm-down long enough for
// the witness-quorum failure detector (200ms at the explorer's
// heartbeat settings) plus the drain. The oracle expectation is the
// strictest one the explorer has — a clean stack, so any violation at
// all is a finding.
func failoverProbe(sc *Scenario, rng *stats.RNG) *Scenario {
	sc.Name = fmt.Sprintf("seed-%d-failover-probe", sc.Seed)
	sc.Stack.Replicated = true
	if sc.Stack.Nodes < 3 {
		// Three nodes keep a full primary+follower pair for every
		// destination even after the kill.
		sc.Stack.Nodes = 3
	}
	drawQuorum(sc)
	sc.Warmdown = 500 * time.Millisecond
	for i := 0; i < 2; i++ {
		q := fmt.Sprintf("queue:fz.fo%d", i)
		sc.Producers = append(sc.Producers, ProducerSpec{
			ID: fmt.Sprintf("p%d", i), Dest: q, Rate: 200, BodySize: 32,
		})
		sc.Consumers = append(sc.Consumers, ConsumerSpec{
			ID: fmt.Sprintf("c%d", i), Dest: q,
		})
	}
	sc.Events = []EventSpec{{
		At:        sc.Warmup + sc.Run*time.Duration(30+rng.Intn(30))/100,
		Node:      rng.Intn(sc.Stack.Nodes),
		NoRestart: true,
	}}
	return sc
}

// drawQuorum draws a replication factor and quorum size for a
// replicated probe stack from an independent stream: R in {2,3} clamped
// to the distinct-follower ceiling, Q anywhere in [1, R]. Like every
// other upgrade draw, the separate stream means adding quorum
// replication never shifted what any existing seed generates — the same
// probe shapes simply gained wider cover.
func drawQuorum(sc *Scenario) {
	qrng := stats.NewRNG(sc.Seed ^ 0x7f4a7c159e3779b9)
	r := 2 + qrng.Intn(2)
	if max := sc.Stack.Nodes - 1; r > max {
		r = max
	}
	sc.Stack.ReplicationFactor = r
	sc.Stack.Quorum = 1 + qrng.Intn(r)
}

// linkPartitionProbe rewrites a cluster scenario into the replication-
// link partition shape: a replicated cluster whose inter-node
// replication links all partition mid-run and heal, with a semisync
// timeout short enough that the partition demonstrably degrades the
// links before they reattach. No node dies, so the expectation is the
// strictest one — zero violations, safety or QoS.
func linkPartitionProbe(sc *Scenario, rng *stats.RNG) *Scenario {
	sc.Name = fmt.Sprintf("seed-%d-link-partition-probe", sc.Seed)
	sc.Stack.Replicated = true
	if sc.Stack.Nodes < 3 {
		sc.Stack.Nodes = 3
	}
	drawQuorum(sc)
	// Degrade well inside the partition: the default 2s semisync wait
	// would outlast the whole scenario and hide the drill entirely.
	sc.Stack.SyncTimeout = 30 * time.Millisecond
	sc.Warmdown = 400 * time.Millisecond
	for i := 0; i < 2; i++ {
		q := fmt.Sprintf("queue:fz.lp%d", i)
		sc.Producers = append(sc.Producers, ProducerSpec{
			ID: fmt.Sprintf("p%d", i), Dest: q, Rate: 200, BodySize: 32,
		})
		sc.Consumers = append(sc.Consumers, ConsumerSpec{
			ID: fmt.Sprintf("c%d", i), Dest: q,
		})
	}
	sc.Events = []EventSpec{{
		At:            sc.Warmup + sc.Run*time.Duration(20+rng.Intn(30))/100,
		Node:          rng.Intn(sc.Stack.Nodes),
		Downtime:      time.Duration(60+rng.Intn(40)) * time.Millisecond,
		LinkPartition: true,
	}}
	sc.Contract = &qos.Contract{
		Name:       "fz-link-partition",
		WarmupTrim: 25 * time.Millisecond,
		MinSamples: 12,
		MinWindow:  100 * time.Millisecond,
		Checks: []qos.Check{
			// Degraded links stall producers for up to the partition
			// duration plus the semisync timeout; the floor only asserts
			// the cluster kept moving, not that it was unaffected.
			{Kind: qos.KindThroughputFloor, MinPerSec: 20},
			{Kind: qos.KindRejectionCeiling, MaxRatio: 0.05},
		},
	}
	return sc
}

// qosProbe rewrites a broker scenario into the quantitative-contract
// shape: one steady stream judged against a delay budget, a throughput
// floor and a rejection ceiling, with (three times in four) a seeded
// QoS fault — provider latency, send rejection, or send throttling —
// that must be flagged by exactly its matching check while every safety
// property still holds. The clean variant pins the other direction: a
// healthy broker must violate nothing. Budgets leave an order of
// magnitude between a healthy in-process broker (sub-millisecond
// delays, the full offered rate) and the seeded faults, so scheduler
// noise on a loaded CI host cannot flip a verdict in either direction.
func qosProbe(sc *Scenario, qrng *stats.RNG) *Scenario {
	sc.Run = time.Duration(300+qrng.Intn(100)) * time.Millisecond
	sc.Warmdown = 300 * time.Millisecond
	variant := "clean"
	switch qrng.Intn(4) {
	case 1:
		variant = QoSFaultLatency
		sc.Stack.QoSFault = QoSFaultLatency
		// Well above the 50ms p95 budget, well below the warmdown (so
		// everything still delivers and Property 2 holds).
		sc.Stack.QoSDelay = time.Duration(80+qrng.Intn(50)) * time.Millisecond
	case 2:
		variant = QoSFaultReject
		sc.Stack.QoSFault = QoSFaultReject
		// Every 2nd or 3rd send rejected: ratio 1/3..1/2 against a 0.10
		// ceiling.
		sc.Stack.QoSEveryN = 2 + qrng.Intn(2)
	case 3:
		variant = QoSFaultThrottle
		sc.Stack.QoSFault = QoSFaultThrottle
		// Each send stalls 60-90ms, collapsing the offered 150/s to
		// ~11-17/s against a 30/s floor.
		sc.Stack.QoSDelay = time.Duration(60+qrng.Intn(30)) * time.Millisecond
	}
	sc.Name = fmt.Sprintf("seed-%d-qos-%s", sc.Seed, variant)
	sc.Producers = []ProducerSpec{{ID: "p0", Dest: "queue:fz.qos", Rate: 150, BodySize: 64}}
	sc.Consumers = []ConsumerSpec{{ID: "c0", Dest: "queue:fz.qos"}}
	sc.Contract = &qos.Contract{
		Name:       "fz-qos",
		WarmupTrim: 25 * time.Millisecond,
		MinSamples: 12,
		MinWindow:  100 * time.Millisecond,
		Checks: []qos.Check{
			{Kind: qos.KindDelayP95, Max: 50 * time.Millisecond},
			{Kind: qos.KindThroughputFloor, MinPerSec: 30},
			{Kind: qos.KindRejectionCeiling, MaxRatio: 0.10},
		},
	}
	return sc
}

// cleanScenario builds a randomized scenario against a clean stack. The
// generator is free within "clean by construction" rules — combinations
// the model cannot distinguish from provider misbehaviour are avoided:
//
//   - every producer shares one priority list (Property 4 compares
//     per-priority delays globally, so skewed per-producer priorities
//     would fake an inversion);
//   - TTLs are either absent or far above any plausible latency, except
//     in the dedicated expiry-probe shape where the broker's latency is
//     controlled (TTL ≈ latency is genuinely ambiguous);
//   - crash events are never combined with temp-queue pairs (a queue
//     that dies with the provider mid-flight leaves sends the model
//     would have to guess about) and never scheduled on wire stacks
//     (the TCP client factory cannot crash the remote server);
//   - consumer transactions never abort (a rolled-back receive is
//     legitimately redelivered, but which consumer gets the redelivery
//     is provider choice, so collateral ordering noise is possible);
//   - a transacted multi-priority producer never uses a TxBatch that is
//     a multiple of the priority-list length (every batch would end on
//     the same priority, and commit-visibility skew between the last
//     and first message of consecutive batches fakes an inversion).
func cleanScenario(seed uint64) *Scenario {
	rng := stats.NewRNG(seed)
	sc := &Scenario{
		Seed:     seed,
		Name:     fmt.Sprintf("seed-%d-clean", seed),
		Warmup:   10 * time.Millisecond,
		Run:      time.Duration(200+rng.Intn(100)) * time.Millisecond,
		Warmdown: 200 * time.Millisecond,
	}

	// Stack: broker half the time, cluster and wire a quarter each.
	switch rng.Intn(4) {
	case 0, 1:
		sc.Stack = StackSpec{Kind: StackBroker}
	case 2:
		sc.Stack = StackSpec{Kind: StackCluster, Nodes: 2 + rng.Intn(3)}
	default:
		sc.Stack = StackSpec{Kind: StackWire}
	}

	// Cluster stacks upgrade, one time in three, to the replicated
	// failover probe: WAL-shipping followers plus a permanent mid-run
	// node kill that promotion — not restart — must absorb. Like the
	// chaos draw below, it uses an independent stream so adding failover
	// never shifted any other seed's scenario. The probe shape is
	// deliberately conservative (persistent steady queues, auto-ack):
	// the point is that every safety property holds straight through the
	// kill, the detection window and the promotion, not that failover
	// composes with every workload knob at once.
	if sc.Stack.Kind == StackCluster {
		frng := stats.NewRNG(seed ^ 0xf41107e2fa170be5)
		if frng.Intn(3) == 0 {
			return failoverProbe(sc, frng)
		}
		// The remaining cluster scenarios upgrade, one time in four, to
		// the replication-link partition probe. Again an independent
		// stream: adding the probe must not shift what any existing seed
		// generates.
		prng := stats.NewRNG(seed ^ 0x6a09e667f3bcc909)
		if prng.Intn(4) == 0 {
			return linkPartitionProbe(sc, prng)
		}
	}

	// Wire stacks run through the chaos proxy half the time. The draw
	// uses an independent stream so adding chaos never shifted any
	// existing seed's scenario, and only lossless profiles appear (see
	// the clean-by-construction rules: a chaotic but lossless network
	// must not produce findings against a correct provider).
	if sc.Stack.Kind == StackWire {
		crng := stats.NewRNG(seed ^ 0x9e3779b97f4a7c15)
		switch crng.Intn(4) {
		case 0:
			sc.Stack.Chaos = ChaosFlaky
			sc.Stack.ChaosSeed = crng.Uint64()
		case 1:
			sc.Stack.Chaos = ChaosPartition
			sc.Stack.ChaosSeed = crng.Uint64()
		}
		// Half the wire stacks pipeline their producers through the
		// credit-windowed async send path — batched completions, send
		// dedup, reconnect replay of the unacked window. Independent
		// stream, as always: adding pipelining must not shift what any
		// existing seed generates. Composing with the chaos draw above is
		// deliberate — replay-after-partition is exactly the duplicate
		// hazard the no-duplicates property must keep pinned down.
		wrng := stats.NewRNG(seed ^ 0xc2b2ae3d27d4eb4f)
		if wrng.Intn(2) == 0 {
			sc.Stack.Pipelined = true
			sc.Stack.PipeWindow = 1 << (2 + wrng.Intn(5)) // 4..64
		}
	}

	// Broker stacks upgrade, one time in four, to the quantitative QoS
	// probe — the explorer's second oracle direction. Independent stream,
	// same reasoning as above.
	if sc.Stack.Kind == StackBroker {
		qrng := stats.NewRNG(seed ^ 0x5bd1e995c6b37f21)
		if qrng.Intn(4) == 0 {
			return qosProbe(sc, qrng)
		}
	}

	// The expiry probe: a latent broker, short TTLs, one plain stream.
	// Kept minimal on purpose — it verifies that the provider *does*
	// expire what it must and delivers the rest.
	if sc.Stack.Kind == StackBroker && rng.Intn(5) == 0 {
		sc.Stack.Latent = true
		sc.Name = fmt.Sprintf("seed-%d-expiry-probe", seed)
		sc.Producers = []ProducerSpec{{
			ID: "p0", Dest: "queue:fz.exp", Rate: 300, BodySize: 32,
			TTLs: []time.Duration{0, time.Millisecond},
		}}
		sc.Consumers = []ConsumerSpec{{ID: "c0", Dest: "queue:fz.exp"}}
		return sc
	}

	// Crash schedule, decided early so later choices can respect it.
	withCrash := sc.Stack.Kind != StackWire && rng.Intn(3) == 0
	if withCrash {
		n := 1 + rng.Intn(2)
		for i := 0; i < n; i++ {
			ev := EventSpec{
				At:       sc.Warmup + sc.Run*time.Duration(20+rng.Intn(40))/100,
				Node:     -1,
				Downtime: 20 * time.Millisecond,
			}
			if sc.Stack.Kind == StackCluster && rng.Intn(2) == 0 {
				ev.Node = rng.Intn(sc.Stack.Nodes)
			}
			sc.Events = append(sc.Events, ev)
		}
	}

	// Topology: one or two destinations, each queue or topic.
	type dest struct {
		name    string
		isTopic bool
	}
	dests := make([]dest, 1+rng.Intn(2))
	for i := range dests {
		isTopic := rng.Intn(2) == 0
		kind := "queue"
		if isTopic {
			kind = "topic"
		}
		dests[i] = dest{name: fmt.Sprintf("%s:fz.d%d", kind, i), isTopic: isTopic}
	}

	// Shared QoS regimes (see the priority/TTL rules above).
	var priorities []int
	switch rng.Intn(3) {
	case 1:
		priorities = []int{1, 9}
	case 2:
		priorities = []int{0, 4, 9}
	}
	var ttls []time.Duration
	if rng.Intn(3) == 0 {
		ttls = []time.Duration{0, time.Hour}
	}
	bodyKinds := []jms.BodyKind{jms.BodyBytes, jms.BodyText, jms.BodyMap, jms.BodyStream, jms.BodyObject}

	// Producers: one or two, each on a random destination.
	nProd := 1 + rng.Intn(2)
	for i := 0; i < nProd; i++ {
		p := ProducerSpec{
			ID:         fmt.Sprintf("p%d", i),
			Dest:       dests[rng.Intn(len(dests))].name,
			Rate:       float64(150 + rng.Intn(250)),
			BodyKind:   int(bodyKinds[rng.Intn(len(bodyKinds))]),
			BodySize:   32 + rng.Intn(224),
			Priorities: priorities,
			TTLs:       ttls,
			NonPersist: rng.Intn(4) == 0,
		}
		if rng.Intn(3) == 0 {
			p.Transacted = true
			p.TxBatch = 2 + rng.Intn(4)
			// Keep the batch length coprime-ish with the priority cycle:
			// if every batch ends on the same priority, that priority is
			// systematically committed (made visible) sooner than the
			// ones stuck waiting at the front of the next batch, which
			// fakes a priority inversion on an honest provider.
			if len(p.Priorities) > 1 && p.TxBatch%len(p.Priorities) == 0 {
				p.TxBatch++
			}
			if rng.Intn(2) == 0 {
				p.AbortEvery = 3 + rng.Intn(3)
			}
		}
		sc.Producers = append(sc.Producers, p)
	}

	// Consumers: one or two per destination.
	ci := 0
	for _, d := range dests {
		selector := ""
		if rng.Intn(4) == 0 {
			// Uniform, always-true selector: exercises the selector path
			// in every provider without changing the required sets.
			selector = "JMSPriority >= 0"
		}
		nCons := 1 + rng.Intn(2)
		for j := 0; j < nCons; j++ {
			c := ConsumerSpec{
				ID:       fmt.Sprintf("c%d", ci),
				Dest:     d.name,
				Selector: selector,
			}
			switch rng.Intn(4) {
			case 1:
				c.AckMode = int(jms.AckClient)
			case 2:
				c.AckMode = int(jms.AckDupsOK)
				sc.AllowDuplicates = true
			case 3:
				c.Transacted = true
				c.TxBatch = 2 + rng.Intn(3)
			}
			if d.isTopic && rng.Intn(3) == 0 {
				c.Durable = true
				c.SubName = fmt.Sprintf("sub%d", ci)
				c.ClientID = fmt.Sprintf("fz-client-%d", ci)
			}
			if rng.Intn(4) == 0 {
				c.CycleEvery = time.Duration(40+rng.Intn(50)) * time.Millisecond
			}
			sc.Consumers = append(sc.Consumers, c)
			ci++
		}
	}

	// Temp-queue request/reply pair, when no crash is scheduled.
	if !withCrash && rng.Intn(4) == 0 {
		owner := fmt.Sprintf("c%d", ci)
		tc := ConsumerSpec{ID: owner, TempQueue: true}
		if rng.Intn(3) == 0 {
			tc.CycleEvery = time.Duration(60+rng.Intn(40)) * time.Millisecond
		}
		sc.Consumers = append(sc.Consumers, tc)
		sc.Producers = append(sc.Producers, ProducerSpec{
			ID:         fmt.Sprintf("p%d", nProd),
			TempOf:     owner,
			Rate:       150,
			BodySize:   48,
			Priorities: priorities,
			TTLs:       ttls,
		})
	}
	return sc
}
