package selector

import (
	"strconv"
)

// parser is a recursive-descent parser over the lexer, with one token
// of lookahead.
type parser struct {
	lex  *lexer
	tok  token
	prev int // position of the current token, for errors
}

// Parse compiles a selector expression. The empty string compiles to a
// selector matching every message, as in JMS.
func Parse(expr string) (*Selector, error) {
	if isBlank(expr) {
		return &Selector{src: expr}, nil
	}
	p := &parser{lex: &lexer{src: expr}}
	if err := p.advance(); err != nil {
		return nil, err
	}
	root, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, p.errf("unexpected %q after expression", p.tok.text)
	}
	return &Selector{src: expr, root: root}, nil
}

func isBlank(s string) bool {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case ' ', '\t', '\n', '\r':
		default:
			return false
		}
	}
	return true
}

func (p *parser) errf(format string, args ...any) error {
	return p.lex.errf(p.tok.pos, format, args...)
}

func (p *parser) advance() error {
	tok, err := p.lex.next()
	if err != nil {
		return err
	}
	p.prev = p.tok.pos
	p.tok = tok
	return nil
}

// accept consumes the current token if it is the given keyword.
func (p *parser) acceptKeyword(kw string) (bool, error) {
	if p.tok.kind == tokKeyword && p.tok.text == kw {
		return true, p.advance()
	}
	return false, nil
}

// expectOp consumes the given punctuation or fails.
func (p *parser) expectOp(op string) error {
	if p.tok.kind != tokOp || p.tok.text != op {
		return p.errf("expected %q, found %q", op, p.tok.text)
	}
	return p.advance()
}

// acceptOp consumes the current token if it is the given punctuation.
func (p *parser) acceptOp(op string) (bool, error) {
	if p.tok.kind == tokOp && p.tok.text == op {
		return true, p.advance()
	}
	return false, nil
}

// parseOr handles: and-expr (OR and-expr)*
func (p *parser) parseOr() (expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for {
		ok, err := p.acceptKeyword("OR")
		if err != nil {
			return nil, err
		}
		if !ok {
			return left, nil
		}
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = orExpr{left: left, right: right}
	}
}

// parseAnd handles: not-expr (AND not-expr)*
func (p *parser) parseAnd() (expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for {
		ok, err := p.acceptKeyword("AND")
		if err != nil {
			return nil, err
		}
		if !ok {
			return left, nil
		}
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = andExpr{left: left, right: right}
	}
}

// parseNot handles: [NOT] comparison
func (p *parser) parseNot() (expr, error) {
	ok, err := p.acceptKeyword("NOT")
	if err != nil {
		return nil, err
	}
	if ok {
		inner, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return notExpr{inner: inner}, nil
	}
	return p.parseComparison()
}

// parseComparison handles: additive [(=|<>|<|<=|>|>=) additive |
// [NOT] BETWEEN additive AND additive | [NOT] IN (...) |
// [NOT] LIKE 'pattern' [ESCAPE 'c'] | IS [NOT] NULL]
func (p *parser) parseComparison() (expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	// IS [NOT] NULL
	if ok, err := p.acceptKeyword("IS"); err != nil {
		return nil, err
	} else if ok {
		negated, err := p.acceptKeyword("NOT")
		if err != nil {
			return nil, err
		}
		if ok, err := p.acceptKeyword("NULL"); err != nil {
			return nil, err
		} else if !ok {
			return nil, p.errf("expected NULL after IS")
		}
		return isNullExpr{inner: left, negated: negated}, nil
	}
	// Optional NOT before BETWEEN/IN/LIKE.
	negated, err := p.acceptKeyword("NOT")
	if err != nil {
		return nil, err
	}
	if ok, err := p.acceptKeyword("BETWEEN"); err != nil {
		return nil, err
	} else if ok {
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if ok, err := p.acceptKeyword("AND"); err != nil {
			return nil, err
		} else if !ok {
			return nil, p.errf("expected AND in BETWEEN")
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return betweenExpr{inner: left, lo: lo, hi: hi, negated: negated}, nil
	}
	if ok, err := p.acceptKeyword("IN"); err != nil {
		return nil, err
	} else if ok {
		return p.parseIn(left, negated)
	}
	if ok, err := p.acceptKeyword("LIKE"); err != nil {
		return nil, err
	} else if ok {
		return p.parseLike(left, negated)
	}
	if negated {
		return nil, p.errf("expected BETWEEN, IN or LIKE after NOT")
	}
	// Plain comparison operators.
	if p.tok.kind == tokOp {
		switch p.tok.text {
		case "=", "<>", "<", "<=", ">", ">=":
			op := p.tok.text
			if err := p.advance(); err != nil {
				return nil, err
			}
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return cmpExpr{op: op, left: left, right: right}, nil
		}
	}
	return left, nil
}

// parseIn handles: IN ( 'a' , 'b' , ... )
func (p *parser) parseIn(left expr, negated bool) (expr, error) {
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	var items []string
	for {
		if p.tok.kind != tokString {
			return nil, p.errf("IN list requires string literals, found %q", p.tok.text)
		}
		items = append(items, p.tok.text)
		if err := p.advance(); err != nil {
			return nil, err
		}
		if ok, err := p.acceptOp(","); err != nil {
			return nil, err
		} else if !ok {
			break
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return inExpr{inner: left, items: items, negated: negated}, nil
}

// parseLike handles: LIKE 'pattern' [ESCAPE 'c']
func (p *parser) parseLike(left expr, negated bool) (expr, error) {
	if p.tok.kind != tokString {
		return nil, p.errf("LIKE requires a string pattern, found %q", p.tok.text)
	}
	pattern := p.tok.text
	if err := p.advance(); err != nil {
		return nil, err
	}
	escape := byte(0)
	if ok, err := p.acceptKeyword("ESCAPE"); err != nil {
		return nil, err
	} else if ok {
		if p.tok.kind != tokString || len(p.tok.text) != 1 {
			return nil, p.errf("ESCAPE requires a single-character string")
		}
		escape = p.tok.text[0]
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	return likeExpr{inner: left, pattern: pattern, escape: escape, negated: negated}, nil
}

// parseAdditive handles: multiplicative ((+|-) multiplicative)*
func (p *parser) parseAdditive() (expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokOp && (p.tok.text == "+" || p.tok.text == "-") {
		op := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		left = arithExpr{op: op, left: left, right: right}
	}
	return left, nil
}

// parseMultiplicative handles: unary ((*|/) unary)*
func (p *parser) parseMultiplicative() (expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokOp && (p.tok.text == "*" || p.tok.text == "/") {
		op := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = arithExpr{op: op, left: left, right: right}
	}
	return left, nil
}

// parseUnary handles: [-|+] primary
func (p *parser) parseUnary() (expr, error) {
	if p.tok.kind == tokOp && (p.tok.text == "-" || p.tok.text == "+") {
		neg := p.tok.text == "-"
		if err := p.advance(); err != nil {
			return nil, err
		}
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if neg {
			return negExpr{inner: inner}, nil
		}
		return inner, nil
	}
	return p.parsePrimary()
}

// parsePrimary handles literals, identifiers and parenthesised
// expressions.
func (p *parser) parsePrimary() (expr, error) {
	switch p.tok.kind {
	case tokString:
		v := strValue(p.tok.text)
		return litExpr{v: v}, p.advance()
	case tokInt:
		n, err := strconv.ParseInt(p.tok.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad integer literal %q", p.tok.text)
		}
		return litExpr{v: numValue(float64(n))}, p.advance()
	case tokFloat:
		f, err := strconv.ParseFloat(p.tok.text, 64)
		if err != nil {
			return nil, p.errf("bad numeric literal %q", p.tok.text)
		}
		return litExpr{v: numValue(f)}, p.advance()
	case tokKeyword:
		switch p.tok.text {
		case "TRUE":
			return litExpr{v: boolValue(true)}, p.advance()
		case "FALSE":
			return litExpr{v: boolValue(false)}, p.advance()
		}
		return nil, p.errf("unexpected keyword %q", p.tok.text)
	case tokIdent:
		name := p.tok.text
		return identExpr{name: name}, p.advance()
	case tokOp:
		if p.tok.text == "(" {
			if err := p.advance(); err != nil {
				return nil, err
			}
			inner, err := p.parseOr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return inner, nil
		}
	}
	return nil, p.errf("unexpected %q", p.tok.text)
}
