// Package selector implements JMS message selectors: the SQL-92
// conditional-expression subset a consumer can use to receive only the
// messages it is interested in (JMS 1.0.2 §3.8). The paper's harness
// configures consumers "with different message production, persistence,
// durability and other characteristics"; selectors are part of that
// configuration surface.
//
// Supported grammar: identifiers (message properties and JMSPriority /
// JMSType / JMSCorrelationID / JMSMessageID / JMSDeliveryMode headers),
// string/number/boolean literals, comparison (=, <>, <, <=, >, >=),
// arithmetic (+, -, *, /, unary -), AND / OR / NOT, BETWEEN ... AND,
// [NOT] IN (...), [NOT] LIKE with % and _ wildcards and ESCAPE, and IS
// [NOT] NULL. Evaluation follows SQL three-valued logic: comparisons
// involving a missing property are unknown, and only messages for which
// the whole expression is true are selected.
package selector

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer tokens.
type tokenKind uint8

const (
	tokEOF tokenKind = iota + 1
	tokIdent
	tokString
	tokInt
	tokFloat
	tokOp      // punctuation operator: = <> < <= > >= + - * / ( ) ,
	tokKeyword // AND OR NOT BETWEEN IN LIKE ESCAPE IS NULL TRUE FALSE
)

// token is one lexical unit.
type token struct {
	kind tokenKind
	text string // canonical text (keywords upper-cased)
	pos  int
}

// keywords are the reserved words, in canonical upper case.
var keywords = map[string]bool{
	"AND": true, "OR": true, "NOT": true, "BETWEEN": true, "IN": true,
	"LIKE": true, "ESCAPE": true, "IS": true, "NULL": true,
	"TRUE": true, "FALSE": true,
}

// lexer splits a selector expression into tokens.
type lexer struct {
	src string
	pos int
}

// Error is a selector syntax or type error with position information.
type Error struct {
	Pos  int
	Msg  string
	Expr string
}

// Error implements error.
func (e *Error) Error() string {
	return fmt.Sprintf("selector: %s at position %d in %q", e.Msg, e.Pos, e.Expr)
}

func (l *lexer) errf(pos int, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...), Expr: l.src}
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) && unicode.IsSpace(rune(l.src[l.pos])) {
		l.pos++
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case c == '\'':
		return l.lexString()
	case c >= '0' && c <= '9' || c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]):
		return l.lexNumber()
	case isIdentStart(c):
		return l.lexIdent()
	}
	// Punctuation operators, longest first.
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "<>", "<=", ">=":
		l.pos += 2
		return token{kind: tokOp, text: two, pos: start}, nil
	}
	switch c {
	case '=', '<', '>', '+', '-', '*', '/', '(', ')', ',':
		l.pos++
		return token{kind: tokOp, text: string(c), pos: start}, nil
	}
	return token{}, l.errf(start, "unexpected character %q", c)
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentStart(c byte) bool {
	return c == '_' || c == '$' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool { return isIdentStart(c) || isDigit(c) || c == '.' }

// lexString parses a single-quoted SQL string; ” escapes a quote.
func (l *lexer) lexString() (token, error) {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				b.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			return token{kind: tokString, text: b.String(), pos: start}, nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return token{}, l.errf(start, "unterminated string literal")
}

// lexNumber parses an integer or floating-point literal.
func (l *lexer) lexNumber() (token, error) {
	start := l.pos
	isFloat := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case isDigit(c):
			l.pos++
		case c == '.' && !isFloat:
			isFloat = true
			l.pos++
		case (c == 'e' || c == 'E') && l.pos > start:
			isFloat = true
			l.pos++
			if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
				l.pos++
			}
		default:
			goto done
		}
	}
done:
	text := l.src[start:l.pos]
	kind := tokInt
	if isFloat {
		kind = tokFloat
	}
	return token{kind: kind, text: text, pos: start}, nil
}

// lexIdent parses an identifier or keyword.
func (l *lexer) lexIdent() (token, error) {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
		l.pos++
	}
	text := l.src[start:l.pos]
	upper := strings.ToUpper(text)
	if keywords[upper] {
		return token{kind: tokKeyword, text: upper, pos: start}, nil
	}
	return token{kind: tokIdent, text: text, pos: start}, nil
}
