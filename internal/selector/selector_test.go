package selector

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"jmsharness/internal/jms"
)

// msgWith builds a message with the given properties.
func msgWith(props map[string]jms.Value) *jms.Message {
	m := jms.NewTextMessage("body")
	m.Priority = 6
	m.Mode = jms.Persistent
	m.Type = "quote"
	m.CorrelationID = "corr-1"
	m.ID = "ID:x-1"
	for k, v := range props {
		m.SetProperty(k, v)
	}
	return m
}

// matches compiles expr and evaluates it against a message with props.
func matches(t *testing.T, expr string, props map[string]jms.Value) bool {
	t.Helper()
	sel, err := Parse(expr)
	if err != nil {
		t.Fatalf("Parse(%q): %v", expr, err)
	}
	return sel.Matches(msgWith(props))
}

func TestEmptySelectorMatchesAll(t *testing.T) {
	sel, err := Parse("  ")
	if err != nil {
		t.Fatal(err)
	}
	if !sel.IsEmpty() || !sel.Matches(msgWith(nil)) {
		t.Error("blank selector should match everything")
	}
}

func TestComparisons(t *testing.T) {
	props := map[string]jms.Value{
		"price":  jms.Float64(42.5),
		"qty":    jms.Int64(10),
		"region": jms.Str("EU"),
		"active": jms.Bool(true),
	}
	cases := []struct {
		expr string
		want bool
	}{
		{"price = 42.5", true},
		{"price <> 42.5", false},
		{"price > 40", true},
		{"price >= 42.5", true},
		{"price < 42.5", false},
		{"price <= 42.5", true},
		{"qty = 10", true},
		{"qty > 10", false},
		{"region = 'EU'", true},
		{"region = 'US'", false},
		{"region <> 'US'", true},
		{"active = TRUE", true},
		{"active = FALSE", false},
		{"active <> FALSE", true},
		// Mixed types never compare true.
		{"region = 10", false},
		{"price = 'EU'", false},
	}
	for _, c := range cases {
		if got := matches(t, c.expr, props); got != c.want {
			t.Errorf("%q = %t, want %t", c.expr, got, c.want)
		}
	}
}

func TestArithmetic(t *testing.T) {
	props := map[string]jms.Value{"a": jms.Int64(6), "b": jms.Int64(4)}
	cases := []struct {
		expr string
		want bool
	}{
		{"a + b = 10", true},
		{"a - b = 2", true},
		{"a * b = 24", true},
		{"a / b = 1.5", true},
		{"-a = -6", true},
		{"a + b * 2 = 14", true},   // precedence
		{"(a + b) * 2 = 20", true}, // parens
		{"a / 0 = 1", false},       // division by zero is unknown
		{"2 + 2 = 4", true},
	}
	for _, c := range cases {
		if got := matches(t, c.expr, props); got != c.want {
			t.Errorf("%q = %t, want %t", c.expr, got, c.want)
		}
	}
}

func TestLogic(t *testing.T) {
	props := map[string]jms.Value{"x": jms.Int64(1), "y": jms.Int64(2)}
	cases := []struct {
		expr string
		want bool
	}{
		{"x = 1 AND y = 2", true},
		{"x = 1 AND y = 3", false},
		{"x = 9 OR y = 2", true},
		{"x = 9 OR y = 9", false},
		{"NOT x = 9", true},
		{"NOT (x = 1 AND y = 2)", false},
		{"x = 1 AND y = 2 OR x = 9", true}, // AND binds tighter
	}
	for _, c := range cases {
		if got := matches(t, c.expr, props); got != c.want {
			t.Errorf("%q = %t, want %t", c.expr, got, c.want)
		}
	}
}

func TestThreeValuedLogic(t *testing.T) {
	props := map[string]jms.Value{"known": jms.Int64(1)}
	cases := []struct {
		expr string
		want bool
	}{
		// Comparisons with a missing property are unknown: not selected.
		{"missing = 1", false},
		{"missing <> 1", false},
		{"NOT missing = 1", false},
		// unknown OR true = true; unknown AND false = false (rejected
		// either way), unknown AND true = unknown (rejected).
		{"missing = 1 OR known = 1", true},
		{"missing = 1 AND known = 1", false},
		{"missing = 1 OR known = 9", false},
		// IS NULL sees through the unknown.
		{"missing IS NULL", true},
		{"missing IS NOT NULL", false},
		{"known IS NULL", false},
		{"known IS NOT NULL", true},
	}
	for _, c := range cases {
		if got := matches(t, c.expr, props); got != c.want {
			t.Errorf("%q = %t, want %t", c.expr, got, c.want)
		}
	}
}

func TestBetweenInLike(t *testing.T) {
	props := map[string]jms.Value{
		"qty":  jms.Int64(15),
		"code": jms.Str("ORD-1234"),
	}
	cases := []struct {
		expr string
		want bool
	}{
		{"qty BETWEEN 10 AND 20", true},
		{"qty BETWEEN 10 AND 15", true}, // inclusive
		{"qty BETWEEN 16 AND 20", false},
		{"qty NOT BETWEEN 16 AND 20", true},
		{"code IN ('ORD-1234', 'ORD-9')", true},
		{"code IN ('ORD-9')", false},
		{"code NOT IN ('ORD-9')", true},
		{"code LIKE 'ORD-%'", true},
		{"code LIKE 'ORD-___4'", true},
		{"code LIKE 'ORD-__4'", false},
		{"code NOT LIKE 'X%'", true},
		{"code LIKE '%1234'", true},
		{"code LIKE '%999'", false},
	}
	for _, c := range cases {
		if got := matches(t, c.expr, props); got != c.want {
			t.Errorf("%q = %t, want %t", c.expr, got, c.want)
		}
	}
}

func TestLikeEscape(t *testing.T) {
	props := map[string]jms.Value{"s": jms.Str("100%"), "t": jms.Str("100x")}
	if !matches(t, `s LIKE '100!%' ESCAPE '!'`, props) {
		t.Error("escaped %% should match literal %%")
	}
	if matches(t, `t LIKE '100!%' ESCAPE '!'`, props) {
		t.Error("escaped %% must not act as wildcard")
	}
}

func TestHeaderFields(t *testing.T) {
	cases := []struct {
		expr string
		want bool
	}{
		{"JMSPriority > 4", true},
		{"JMSPriority = 6", true},
		{"JMSDeliveryMode = 2", true}, // persistent
		{"JMSType = 'quote'", true},
		{"JMSCorrelationID = 'corr-1'", true},
		{"JMSMessageID LIKE 'ID:%'", true},
	}
	for _, c := range cases {
		if got := matches(t, c.expr, nil); got != c.want {
			t.Errorf("%q = %t, want %t", c.expr, got, c.want)
		}
	}
}

func TestStringEscapesAndCaseInsensitiveKeywords(t *testing.T) {
	props := map[string]jms.Value{"name": jms.Str("o'brien")}
	if !matches(t, "name = 'o''brien'", props) {
		t.Error("doubled quote should escape")
	}
	if !matches(t, "name = 'o''brien' and not name = 'x'", props) {
		t.Error("keywords should be case-insensitive")
	}
}

func TestBytesPropertyIsNull(t *testing.T) {
	props := map[string]jms.Value{"blob": jms.Bytes([]byte{1})}
	if matches(t, "blob = 'x'", props) {
		t.Error("byte-array property should be unselectable")
	}
	if !matches(t, "blob IS NULL", props) {
		t.Error("byte-array property should read as null")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"price >",
		"price = ",
		"(price = 1",
		"price = 'unterminated",
		"price BETWEEN 1",
		"price BETWEEN 1 OR 2",
		"code IN ()",
		"code IN (1)",
		"code LIKE 5",
		"code LIKE 'x' ESCAPE 'ab'",
		"price = 1 extra",
		"AND price = 1",
		"price @ 1",
		"NOT",
		"price IS 5",
		"price NOT 5",
	}
	for _, expr := range bad {
		if _, err := Parse(expr); err == nil {
			t.Errorf("Parse(%q) should fail", expr)
		}
	}
}

func TestErrorReportsPosition(t *testing.T) {
	_, err := Parse("price @ 1")
	if err == nil {
		t.Fatal("expected error")
	}
	serr, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if serr.Pos != 6 || !strings.Contains(serr.Error(), "position 6") {
		t.Errorf("error = %v", serr)
	}
}

// TestLikeMatchProperty cross-checks the LIKE matcher against a naive
// regexp-free oracle on random inputs: a pattern built from the string
// itself with substitutions must always match.
func TestLikeMatchProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(12)
		s := make([]byte, n)
		for i := range s {
			s[i] = byte('a' + r.Intn(3))
		}
		// Derive a pattern that must match: replace some chars with _,
		// and some runs with %.
		var pat strings.Builder
		i := 0
		for i < len(s) {
			switch r.Intn(4) {
			case 0:
				pat.WriteByte('_')
				i++
			case 1:
				pat.WriteByte('%')
				i += r.Intn(len(s) - i + 1)
			default:
				pat.WriteByte(s[i])
				i++
			}
		}
		if r.Intn(2) == 0 {
			pat.WriteByte('%')
		}
		if !likeMatch(string(s), pat.String(), 0) {
			t.Logf("s=%q pattern=%q should match", s, pat.String())
			return false
		}
		// A pattern longer than the string with no wildcards must fail.
		if !strings.ContainsAny(pat.String(), "%") {
			if likeMatch(string(s)+"x", pat.String(), 0) {
				t.Logf("s=%q pattern=%q must not match longer string", s, pat.String())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestSelectorNeverPanicsProperty fuzzes the parser with random byte
// strings: it must return an error or a working selector, never panic.
func TestSelectorNeverPanicsProperty(t *testing.T) {
	m := msgWith(map[string]jms.Value{"a": jms.Int64(1)})
	f := func(expr string) bool {
		sel, err := Parse(expr)
		if err != nil {
			return true
		}
		_ = sel.Matches(m)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSelectorString(t *testing.T) {
	sel, err := Parse("a = 1")
	if err != nil {
		t.Fatal(err)
	}
	if sel.String() != "a = 1" {
		t.Errorf("String = %q", sel.String())
	}
}

func BenchmarkSelectorMatch(b *testing.B) {
	sel, err := Parse("region IN ('EU', 'US') AND price BETWEEN 10 AND 100 AND code LIKE 'ORD-%'")
	if err != nil {
		b.Fatal(err)
	}
	m := msgWith(map[string]jms.Value{
		"region": jms.Str("EU"),
		"price":  jms.Float64(55),
		"code":   jms.Str("ORD-777"),
	})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !sel.Matches(m) {
			b.Fatal("should match")
		}
	}
}

func BenchmarkSelectorParse(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse("region IN ('EU','US') AND price > 10 OR qty BETWEEN 1 AND 5"); err != nil {
			b.Fatal(err)
		}
	}
}
