package selector

import (
	"jmsharness/internal/jms"
)

// valueKind classifies evaluation results. SQL three-valued logic is
// realised by vNull flowing through operators.
type valueKind uint8

const (
	vNull valueKind = iota
	vBool
	vNum
	vStr
)

// value is the result of evaluating a subexpression.
type value struct {
	kind valueKind
	b    bool
	f    float64
	s    string
}

func nullValue() value         { return value{kind: vNull} }
func boolValue(b bool) value   { return value{kind: vBool, b: b} }
func numValue(f float64) value { return value{kind: vNum, f: f} }
func strValue(s string) value  { return value{kind: vStr, s: s} }

// tval is a three-valued truth value.
type tval uint8

const (
	tUnknown tval = iota
	tTrue
	tFalse
)

func fromBool(b bool) tval {
	if b {
		return tTrue
	}
	return tFalse
}

// truth interprets a value as a condition.
func (v value) truth() tval {
	if v.kind == vBool {
		return fromBool(v.b)
	}
	return tUnknown
}

// expr is an AST node.
type expr interface {
	eval(m *jms.Message) value
}

// litExpr is a literal.
type litExpr struct{ v value }

func (e litExpr) eval(*jms.Message) value { return e.v }

// identExpr resolves a message property or JMS header field.
type identExpr struct{ name string }

func (e identExpr) eval(m *jms.Message) value {
	switch e.name {
	case "JMSPriority":
		return numValue(float64(m.Priority))
	case "JMSDeliveryMode":
		return numValue(float64(m.Mode))
	case "JMSType":
		return strValue(m.Type)
	case "JMSCorrelationID":
		return strValue(m.CorrelationID)
	case "JMSMessageID":
		return strValue(m.ID)
	}
	v, ok := m.Property(e.name)
	if !ok {
		return nullValue()
	}
	switch v.Kind() {
	case jms.KindBool:
		b, _ := v.AsBool()
		return boolValue(b)
	case jms.KindInt64:
		i, _ := v.AsInt64()
		return numValue(float64(i))
	case jms.KindFloat64:
		f, _ := v.AsFloat64()
		return numValue(f)
	case jms.KindString:
		s, _ := v.AsString()
		return strValue(s)
	default:
		// Byte arrays are not selectable types in JMS.
		return nullValue()
	}
}

// notExpr is logical NOT (unknown stays unknown).
type notExpr struct{ inner expr }

func (e notExpr) eval(m *jms.Message) value {
	switch e.inner.eval(m).truth() {
	case tTrue:
		return boolValue(false)
	case tFalse:
		return boolValue(true)
	default:
		return nullValue()
	}
}

// andExpr is SQL AND: false dominates unknown.
type andExpr struct{ left, right expr }

func (e andExpr) eval(m *jms.Message) value {
	l := e.left.eval(m).truth()
	if l == tFalse {
		return boolValue(false)
	}
	r := e.right.eval(m).truth()
	switch {
	case r == tFalse:
		return boolValue(false)
	case l == tTrue && r == tTrue:
		return boolValue(true)
	default:
		return nullValue()
	}
}

// orExpr is SQL OR: true dominates unknown.
type orExpr struct{ left, right expr }

func (e orExpr) eval(m *jms.Message) value {
	l := e.left.eval(m).truth()
	if l == tTrue {
		return boolValue(true)
	}
	r := e.right.eval(m).truth()
	switch {
	case r == tTrue:
		return boolValue(true)
	case l == tFalse && r == tFalse:
		return boolValue(false)
	default:
		return nullValue()
	}
}

// cmpExpr compares two values; mixed or null operands yield unknown.
type cmpExpr struct {
	op          string
	left, right expr
}

func (e cmpExpr) eval(m *jms.Message) value {
	l, r := e.left.eval(m), e.right.eval(m)
	if l.kind == vNull || r.kind == vNull {
		return nullValue()
	}
	switch {
	case l.kind == vNum && r.kind == vNum:
		return boolValue(cmpOrdered(e.op, l.f, r.f))
	case l.kind == vStr && r.kind == vStr:
		// JMS restricts string comparison to = and <>.
		switch e.op {
		case "=":
			return boolValue(l.s == r.s)
		case "<>":
			return boolValue(l.s != r.s)
		default:
			return nullValue()
		}
	case l.kind == vBool && r.kind == vBool:
		switch e.op {
		case "=":
			return boolValue(l.b == r.b)
		case "<>":
			return boolValue(l.b != r.b)
		default:
			return nullValue()
		}
	default:
		// Incompatible types never compare true.
		return nullValue()
	}
}

func cmpOrdered(op string, a, b float64) bool {
	switch op {
	case "=":
		return a == b
	case "<>":
		return a != b
	case "<":
		return a < b
	case "<=":
		return a <= b
	case ">":
		return a > b
	default: // ">="
		return a >= b
	}
}

// arithExpr is numeric arithmetic; non-numeric or null operands yield
// null. Division by zero yields null (SQL semantics are undefined; null
// is the safe choice).
type arithExpr struct {
	op          string
	left, right expr
}

func (e arithExpr) eval(m *jms.Message) value {
	l, r := e.left.eval(m), e.right.eval(m)
	if l.kind != vNum || r.kind != vNum {
		return nullValue()
	}
	switch e.op {
	case "+":
		return numValue(l.f + r.f)
	case "-":
		return numValue(l.f - r.f)
	case "*":
		return numValue(l.f * r.f)
	default: // "/"
		if r.f == 0 {
			return nullValue()
		}
		return numValue(l.f / r.f)
	}
}

// negExpr is unary minus.
type negExpr struct{ inner expr }

func (e negExpr) eval(m *jms.Message) value {
	v := e.inner.eval(m)
	if v.kind != vNum {
		return nullValue()
	}
	return numValue(-v.f)
}

// betweenExpr is [NOT] BETWEEN lo AND hi (inclusive, numeric).
type betweenExpr struct {
	inner, lo, hi expr
	negated       bool
}

func (e betweenExpr) eval(m *jms.Message) value {
	v, lo, hi := e.inner.eval(m), e.lo.eval(m), e.hi.eval(m)
	if v.kind != vNum || lo.kind != vNum || hi.kind != vNum {
		return nullValue()
	}
	in := v.f >= lo.f && v.f <= hi.f
	if e.negated {
		in = !in
	}
	return boolValue(in)
}

// inExpr is [NOT] IN ('a', 'b', ...) over strings.
type inExpr struct {
	inner   expr
	items   []string
	negated bool
}

func (e inExpr) eval(m *jms.Message) value {
	v := e.inner.eval(m)
	if v.kind != vStr {
		return nullValue()
	}
	found := false
	for _, item := range e.items {
		if v.s == item {
			found = true
			break
		}
	}
	if e.negated {
		found = !found
	}
	return boolValue(found)
}

// likeExpr is [NOT] LIKE with % (any run) and _ (any single character)
// wildcards and an optional escape character.
type likeExpr struct {
	inner   expr
	pattern string
	escape  byte
	negated bool
}

func (e likeExpr) eval(m *jms.Message) value {
	v := e.inner.eval(m)
	if v.kind != vStr {
		return nullValue()
	}
	matched := likeMatch(v.s, e.pattern, e.escape)
	if e.negated {
		matched = !matched
	}
	return boolValue(matched)
}

// likeMatch implements SQL LIKE matching with backtracking over %.
func likeMatch(s, pattern string, escape byte) bool {
	return likeMatchAt(s, 0, pattern, 0, escape)
}

func likeMatchAt(s string, si int, pattern string, pi int, escape byte) bool {
	for pi < len(pattern) {
		c := pattern[pi]
		switch {
		case escape != 0 && c == escape && pi+1 < len(pattern):
			// Escaped literal character.
			if si >= len(s) || s[si] != pattern[pi+1] {
				return false
			}
			si++
			pi += 2
		case c == '%':
			// Try every suffix.
			for skip := si; skip <= len(s); skip++ {
				if likeMatchAt(s, skip, pattern, pi+1, escape) {
					return true
				}
			}
			return false
		case c == '_':
			if si >= len(s) {
				return false
			}
			si++
			pi++
		default:
			if si >= len(s) || s[si] != c {
				return false
			}
			si++
			pi++
		}
	}
	return si == len(s)
}

// isNullExpr is IS [NOT] NULL.
type isNullExpr struct {
	inner   expr
	negated bool
}

func (e isNullExpr) eval(m *jms.Message) value {
	isNull := e.inner.eval(m).kind == vNull
	if e.negated {
		isNull = !isNull
	}
	return boolValue(isNull)
}

// Selector is a compiled message selector.
type Selector struct {
	src  string
	root expr // nil matches everything
}

// String returns the source expression.
func (s *Selector) String() string { return s.src }

// IsEmpty reports whether the selector matches every message.
func (s *Selector) IsEmpty() bool { return s.root == nil }

// Matches reports whether the message satisfies the selector. Per SQL
// three-valued logic, only an expression evaluating to true selects the
// message; false and unknown both reject it.
func (s *Selector) Matches(m *jms.Message) bool {
	if s.root == nil {
		return true
	}
	return s.root.eval(m).truth() == tTrue
}
