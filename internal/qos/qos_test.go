package qos

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"jmsharness/internal/trace"
)

// traceBuilder assembles a synthetic phased trace with exact timings,
// so every judgement semantics test controls its inputs precisely.
type traceBuilder struct {
	t0  time.Time
	seq int64
	evs []trace.Event
}

func newTraceBuilder() *traceBuilder {
	return &traceBuilder{t0: time.Unix(1000, 0)}
}

func (b *traceBuilder) add(off time.Duration, ev trace.Event) {
	b.seq++
	ev.Seq = b.seq
	ev.Node = "qos-test"
	ev.Time = b.t0.Add(off)
	b.evs = append(b.evs, ev)
}

func (b *traceBuilder) phase(off time.Duration, name string) {
	b.add(off, trace.Event{Type: trace.EventPhase, Detail: name})
}

// msg logs a full send+deliver for one message; deliverOff <= 0 skips
// the delivery (an undelivered message).
func (b *traceBuilder) msg(uid, dest, consumer string, sendOff, deliverOff time.Duration) {
	b.add(sendOff, trace.Event{Type: trace.EventSendStart, MsgUID: uid, Dest: dest, Producer: producerOf(uid)})
	b.add(sendOff, trace.Event{Type: trace.EventSendEnd, MsgUID: uid, Dest: dest, Producer: producerOf(uid)})
	if deliverOff > 0 {
		b.add(deliverOff, trace.Event{Type: trace.EventDeliver, MsgUID: uid, Dest: dest, Consumer: consumer})
	}
}

func (b *traceBuilder) failedSend(uid, dest string, off time.Duration) {
	b.add(off, trace.Event{Type: trace.EventSendStart, MsgUID: uid, Dest: dest})
	b.add(off, trace.Event{Type: trace.EventSendEnd, MsgUID: uid, Dest: dest, Err: "rejected"})
}

func (b *traceBuilder) crash(off time.Duration) {
	b.add(off, trace.Event{Type: trace.EventCrash})
}

func (b *traceBuilder) trace() *trace.Trace {
	// Events must be time-ordered like a merged trace; the builder is
	// used with monotone offsets except deliveries, so sort stably.
	evs := append([]trace.Event(nil), b.evs...)
	for i := 1; i < len(evs); i++ {
		for j := i; j > 0 && evs[j].Time.Before(evs[j-1].Time); j-- {
			evs[j], evs[j-1] = evs[j-1], evs[j]
		}
	}
	return &trace.Trace{Events: evs}
}

func producerOf(uid string) string {
	if i := strings.LastIndexByte(uid, '/'); i >= 0 {
		return uid[:i]
	}
	return uid
}

// standardPhases marks warmup at 0, run at 10ms..210ms, warmdown to
// 400ms — a 200ms run window.
func standardPhases(b *traceBuilder) {
	b.phase(0, trace.PhaseWarmup)
	b.phase(10*time.Millisecond, trace.PhaseRun)
	b.phase(210*time.Millisecond, trace.PhaseWarmdown)
	b.phase(400*time.Millisecond, trace.PhaseDone)
}

// steadyStream logs n messages on dest at fixed spacing across the run
// window, each delivered after delay.
func steadyStream(b *traceBuilder, dest, consumer string, n int, delay time.Duration) {
	start := 12 * time.Millisecond
	spacing := 190 * time.Millisecond / time.Duration(n)
	for i := 0; i < n; i++ {
		off := start + spacing*time.Duration(i)
		b.msg(trace.MessageUID("p-"+dest, int64(i+1)), dest, consumer, off, off+delay)
	}
}

func mustEvaluate(t *testing.T, c *Contract, tr *trace.Trace) *Report {
	t.Helper()
	rep, err := c.EvaluateTrace(tr)
	if err != nil {
		t.Fatalf("EvaluateTrace: %v", err)
	}
	return rep
}

func onlyResult(t *testing.T, rep *Report) Result {
	t.Helper()
	if len(rep.Results) != 1 {
		t.Fatalf("want 1 result, got %d: %v", len(rep.Results), rep.Results)
	}
	return rep.Results[0]
}

func TestDelayPercentileJudgement(t *testing.T) {
	b := newTraceBuilder()
	standardPhases(b)
	steadyStream(b, "queue:q", "c0", 40, 2*time.Millisecond)

	pass := &Contract{Name: "t", Checks: []Check{{Kind: KindDelayP95, Max: 5 * time.Millisecond}}}
	if res := onlyResult(t, mustEvaluate(t, pass, b.trace())); !res.Passed || res.Skipped {
		t.Fatalf("2ms delays must pass a 5ms p95 budget: %+v", res)
	}
	fail := &Contract{Name: "t", Checks: []Check{{Kind: KindDelayP95, Max: time.Millisecond}}}
	res := onlyResult(t, mustEvaluate(t, fail, b.trace()))
	if res.Passed || res.Skipped {
		t.Fatalf("2ms delays must fail a 1ms p95 budget: %+v", res)
	}
	if res.Detail == "" || res.Observed == "" || res.Budget == "" {
		t.Fatalf("failed result must carry budget/observed/detail: %+v", res)
	}
}

func TestPercentilesDistinguishTail(t *testing.T) {
	// 90 fast messages and 10 slow ones: p50 passes a tight budget,
	// p99 must catch the tail.
	b := newTraceBuilder()
	standardPhases(b)
	for i := 0; i < 100; i++ {
		off := 12*time.Millisecond + time.Duration(i)*1900*time.Microsecond
		delay := time.Millisecond
		if i%10 == 0 {
			delay = 50 * time.Millisecond
		}
		b.msg(trace.MessageUID("p0", int64(i+1)), "queue:q", "c0", off, off+delay)
	}
	tr := b.trace()
	c := &Contract{Name: "t", Checks: []Check{
		{Kind: KindDelayP50, Max: 5 * time.Millisecond},
		{Kind: KindDelayP99, Max: 5 * time.Millisecond},
	}}
	rep := mustEvaluate(t, c, tr)
	p50, _ := rep.Result(KindDelayP50)
	p99, _ := rep.Result(KindDelayP99)
	if !p50.Passed {
		t.Fatalf("p50 should pass with a 10%% slow tail: %+v", p50)
	}
	if p99.Passed || p99.Skipped {
		t.Fatalf("p99 must catch the 50ms tail: %+v", p99)
	}
}

func TestWarmupTrimExcludesRampSamples(t *testing.T) {
	b := newTraceBuilder()
	standardPhases(b)
	// Ramp: 15 slow messages in the first 20ms of the run window.
	for i := 0; i < 15; i++ {
		off := 11*time.Millisecond + time.Duration(i)*time.Millisecond
		b.msg(trace.MessageUID("ramp", int64(i+1)), "queue:q", "c0", off, off+80*time.Millisecond)
	}
	// Steady state: 40 fast messages from 40ms on.
	for i := 0; i < 40; i++ {
		off := 40*time.Millisecond + time.Duration(i)*4*time.Millisecond
		b.msg(trace.MessageUID("steady", int64(i+1)), "queue:q", "c0", off, off+time.Millisecond)
	}
	tr := b.trace()
	check := []Check{{Kind: KindDelayP95, Max: 10 * time.Millisecond}}

	untrimmed := &Contract{Name: "t", Checks: check}
	if res := onlyResult(t, mustEvaluate(t, untrimmed, tr)); res.Passed {
		t.Fatalf("without trim the 80ms ramp tail must fail the 10ms budget: %+v", res)
	}
	trimmed := &Contract{Name: "t", WarmupTrim: 30 * time.Millisecond, Checks: check}
	if res := onlyResult(t, mustEvaluate(t, trimmed, tr)); !res.Passed || res.Skipped {
		t.Fatalf("a 30ms trim must discard the ramp samples: %+v", res)
	}
}

func TestMinSamplesSkipsNotFails(t *testing.T) {
	b := newTraceBuilder()
	standardPhases(b)
	steadyStream(b, "queue:q", "c0", 5, 90*time.Millisecond) // way over budget, but only 5 samples
	c := &Contract{Name: "t", MinSamples: 10, Checks: []Check{{Kind: KindDelayP95, Max: time.Millisecond}}}
	res := onlyResult(t, mustEvaluate(t, c, b.trace()))
	if !res.Skipped {
		t.Fatalf("5 samples under MinSamples=10 must skip, not judge: %+v", res)
	}
	if rep := mustEvaluate(t, c, b.trace()); !rep.OK() {
		t.Fatalf("a skipped check must not fail the report")
	}
}

func TestMinWindowSkipsRateChecks(t *testing.T) {
	b := newTraceBuilder()
	standardPhases(b)
	steadyStream(b, "queue:q", "c0", 20, time.Millisecond)
	c := &Contract{Name: "t", MinWindow: time.Second, Checks: []Check{
		{Kind: KindThroughputFloor, MinPerSec: 1},
		{Kind: KindProducerFloor, MinPerSec: 1},
	}}
	rep := mustEvaluate(t, c, b.trace())
	for _, res := range rep.Results {
		if !res.Skipped {
			t.Fatalf("200ms window under MinWindow=1s must skip rate checks: %+v", res)
		}
	}
}

func TestThroughputFloorJudgement(t *testing.T) {
	b := newTraceBuilder()
	standardPhases(b)
	steadyStream(b, "queue:q", "c0", 40, time.Millisecond) // ~200/s over the 200ms window
	pass := &Contract{Name: "t", Checks: []Check{{Kind: KindThroughputFloor, MinPerSec: 100}}}
	if res := onlyResult(t, mustEvaluate(t, pass, b.trace())); !res.Passed || res.Skipped {
		t.Fatalf("~200/s must pass a 100/s floor: %+v", res)
	}
	fail := &Contract{Name: "t", Checks: []Check{{Kind: KindThroughputFloor, MinPerSec: 300}}}
	if res := onlyResult(t, mustEvaluate(t, fail, b.trace())); res.Passed || res.Skipped {
		t.Fatalf("~200/s must fail a 300/s floor: %+v", res)
	}
	// Zero deliveries is a FAIL (the paper's trivial provider), never a
	// skip — sample thresholds must not mask total silence.
	b2 := newTraceBuilder()
	standardPhases(b2)
	for i := 0; i < 20; i++ {
		off := 12*time.Millisecond + time.Duration(i)*5*time.Millisecond
		b2.msg(trace.MessageUID("p0", int64(i+1)), "queue:q", "c0", off, 0)
	}
	trivial := &Contract{Name: "t", Checks: []Check{{Kind: KindThroughputFloor, MinPerSec: 10}}}
	if res := onlyResult(t, mustEvaluate(t, trivial, b2.trace())); res.Passed || res.Skipped {
		t.Fatalf("zero deliveries must fail the floor outright: %+v", res)
	}
}

func TestSlackSemantics(t *testing.T) {
	b := newTraceBuilder()
	standardPhases(b)
	steadyStream(b, "queue:q", "c0", 40, 8*time.Millisecond) // ~200/s, 8ms delays
	// Tight budgets that fail at slack 1...
	checks := []Check{
		{Kind: KindDelayP95, Max: 5 * time.Millisecond},
		{Kind: KindThroughputFloor, MinPerSec: 300},
	}
	tight := &Contract{Name: "t", Checks: checks}
	rep := mustEvaluate(t, tight, b.trace())
	if rep.OK() {
		t.Fatalf("tight contract must fail at slack 1: %s", rep)
	}
	// ...pass once slack widens the budget and relaxes the floor.
	slacked := &Contract{Name: "t", SlackFactor: 2, Checks: checks}
	rep = mustEvaluate(t, slacked, b.trace())
	if !rep.OK() {
		t.Fatalf("slack 2 must widen 5ms->10ms and relax 300/s->150/s: %s", rep)
	}
	// WithSlack composes multiplicatively and never mutates the original.
	doubled := tight.WithSlack(2)
	if tight.SlackFactor != 0 {
		t.Fatalf("WithSlack mutated the receiver")
	}
	if doubled.SlackFactor != 2 {
		t.Fatalf("WithSlack(2) on slack 1 contract: got %v", doubled.SlackFactor)
	}
	if again := doubled.WithSlack(3); again.SlackFactor != 6 {
		t.Fatalf("WithSlack must compose: got %v", again.SlackFactor)
	}
	if same := tight.WithSlack(1); same != tight {
		t.Fatalf("WithSlack(1) must be a no-op")
	}
}

func TestRejectionCeiling(t *testing.T) {
	b := newTraceBuilder()
	standardPhases(b)
	for i := 0; i < 30; i++ {
		off := 12*time.Millisecond + time.Duration(i)*6*time.Millisecond
		uid := trace.MessageUID("p0", int64(i+1))
		if i%3 == 0 { // every third send rejected -> ratio 1/3
			b.failedSend(uid, "queue:q", off)
			continue
		}
		b.msg(uid, "queue:q", "c0", off, off+time.Millisecond)
	}
	tr := b.trace()
	pass := &Contract{Name: "t", Checks: []Check{{Kind: KindRejectionCeiling, MaxRatio: 0.5}}}
	if res := onlyResult(t, mustEvaluate(t, pass, tr)); !res.Passed || res.Skipped {
		t.Fatalf("ratio 1/3 must pass a 0.5 ceiling: %+v", res)
	}
	fail := &Contract{Name: "t", Checks: []Check{{Kind: KindRejectionCeiling, MaxRatio: 0.1}}}
	if res := onlyResult(t, mustEvaluate(t, fail, tr)); res.Passed || res.Skipped {
		t.Fatalf("ratio 1/3 must fail a 0.1 ceiling: %+v", res)
	}
}

func TestConsumerFairness(t *testing.T) {
	b := newTraceBuilder()
	standardPhases(b)
	// Two consumers with skewed mean delays (1ms vs 41ms), plus one
	// straggler consumer below the sample threshold that must not count.
	for i := 0; i < 20; i++ {
		off := 12*time.Millisecond + time.Duration(i)*9*time.Millisecond
		b.msg(trace.MessageUID("pa", int64(i+1)), "queue:q", "fast", off, off+time.Millisecond)
		b.msg(trace.MessageUID("pb", int64(i+1)), "queue:q", "slow", off, off+41*time.Millisecond)
	}
	b.msg(trace.MessageUID("pc", 1), "queue:q", "straggler", 15*time.Millisecond, 15*time.Millisecond+time.Hour)
	tr := b.trace()
	fail := &Contract{Name: "t", Checks: []Check{{Kind: KindConsumerFairness, Max: 10 * time.Millisecond}}}
	if res := onlyResult(t, mustEvaluate(t, fail, tr)); res.Passed || res.Skipped {
		t.Fatalf("40ms mean-delay skew must fail a 10ms unfairness budget: %+v", res)
	}
	pass := &Contract{Name: "t", Checks: []Check{{Kind: KindConsumerFairness, Max: 50 * time.Millisecond}}}
	if res := onlyResult(t, mustEvaluate(t, pass, tr)); !res.Passed || res.Skipped {
		t.Fatalf("skew ~28ms stddev must pass a 50ms budget: %+v", res)
	}
	// One consumer only: skipped, not judged.
	b2 := newTraceBuilder()
	standardPhases(b2)
	steadyStream(b2, "queue:q", "c0", 20, time.Millisecond)
	solo := &Contract{Name: "t", Checks: []Check{{Kind: KindConsumerFairness, Max: time.Millisecond}}}
	if res := onlyResult(t, mustEvaluate(t, solo, b2.trace())); !res.Skipped {
		t.Fatalf("fairness needs two qualifying consumers: %+v", res)
	}
}

func TestCrashRecoveryMeasures(t *testing.T) {
	b := newTraceBuilder()
	standardPhases(b)
	// Deliveries every 5ms until 60ms, crash at 63ms, recovery delivery
	// at 143ms: unavailability = 143-60 = 83ms, MTTR = 143-63 = 80ms.
	for i := 0; i < 10; i++ {
		off := 12*time.Millisecond + time.Duration(i)*5*time.Millisecond
		b.msg(trace.MessageUID("p0", int64(i+1)), "queue:q", "c0", off, off+3*time.Millisecond)
	}
	b.crash(63 * time.Millisecond)
	b.msg(trace.MessageUID("p0", 11), "queue:q", "c0", 140*time.Millisecond, 143*time.Millisecond)
	tr := b.trace()

	c := &Contract{Name: "t", Checks: []Check{
		{Kind: KindUnavailability, Max: 100 * time.Millisecond},
		{Kind: KindMTTR, Max: 100 * time.Millisecond},
	}}
	rep := mustEvaluate(t, c, tr)
	if !rep.OK() {
		t.Fatalf("83ms/80ms must pass 100ms budgets: %s", rep)
	}
	una, _ := rep.Result(KindUnavailability)
	mttr, _ := rep.Result(KindMTTR)
	if una.Observed != "83ms" {
		t.Fatalf("unavailability observed = %q, want 83ms", una.Observed)
	}
	if mttr.Observed != "80ms" {
		t.Fatalf("mttr observed = %q, want 80ms", mttr.Observed)
	}

	tight := &Contract{Name: "t", Checks: []Check{{Kind: KindMTTR, Max: 50 * time.Millisecond}}}
	if res := onlyResult(t, mustEvaluate(t, tight, tr)); res.Passed || res.Skipped {
		t.Fatalf("80ms MTTR must fail a 50ms budget: %+v", res)
	}

	// Crash-free traces skip both measures.
	b2 := newTraceBuilder()
	standardPhases(b2)
	steadyStream(b2, "queue:q", "c0", 20, time.Millisecond)
	rep = mustEvaluate(t, c, b2.trace())
	for _, res := range rep.Results {
		if !res.Skipped {
			t.Fatalf("crash measures must skip on crash-free traces: %+v", res)
		}
	}
}

func TestScopeRestrictsMeasurement(t *testing.T) {
	b := newTraceBuilder()
	standardPhases(b)
	steadyStream(b, "queue:fast", "cf", 30, time.Millisecond)
	steadyStream(b, "queue:slow", "cs", 30, 60*time.Millisecond)
	tr := b.trace()
	c := &Contract{Name: "t", Checks: []Check{
		{Kind: KindDelayP95, Scope: "queue:fast", Max: 10 * time.Millisecond},
		{Kind: KindDelayP95, Scope: "queue:slow", Max: 10 * time.Millisecond},
	}}
	rep := mustEvaluate(t, c, tr)
	if len(rep.Results) != 2 {
		t.Fatalf("want 2 results, got %d", len(rep.Results))
	}
	if !rep.Results[0].Passed {
		t.Fatalf("fast queue must pass its own budget: %+v", rep.Results[0])
	}
	if rep.Results[1].Passed {
		t.Fatalf("slow queue must fail on its own scope: %+v", rep.Results[1])
	}
	if got := rep.Violated(); len(got) != 1 || got[0] != KindDelayP95 {
		t.Fatalf("Violated = %v", got)
	}
}

func TestEvaluateHops(t *testing.T) {
	hops := HopSet{
		"wire-rtt": {Count: 100, P50: time.Millisecond, P95: 4 * time.Millisecond, P99: 9 * time.Millisecond},
		"settle":   {Count: 3, P95: time.Hour},
	}
	c := &Contract{Name: "t", MinSamples: 10, Checks: []Check{
		{Kind: KindHopP95, Scope: "wire-rtt", Max: 5 * time.Millisecond},
		{Kind: KindHopP99, Scope: "wire-rtt", Max: 5 * time.Millisecond},
		{Kind: KindHopP95, Scope: "settle", Max: time.Millisecond},
		{Kind: KindHopP95, Scope: "missing", Max: time.Millisecond},
		{Kind: KindDelayP95, Max: time.Millisecond},
	}}
	rep, err := c.EvaluateHops(hops)
	if err != nil {
		t.Fatalf("EvaluateHops: %v", err)
	}
	if !rep.Results[0].Passed {
		t.Fatalf("4ms p95 must pass 5ms: %+v", rep.Results[0])
	}
	if rep.Results[1].Passed || rep.Results[1].Skipped {
		t.Fatalf("9ms p99 must fail 5ms: %+v", rep.Results[1])
	}
	for i := 2; i <= 4; i++ {
		if !rep.Results[i].Skipped {
			t.Fatalf("result %d must skip (under-sampled, missing hop, or trace check): %+v", i, rep.Results[i])
		}
	}
	// And the inverse: hop checks skip under EvaluateTrace.
	b := newTraceBuilder()
	standardPhases(b)
	steadyStream(b, "queue:q", "c0", 20, time.Millisecond)
	hopOnly := &Contract{Name: "t", Checks: []Check{{Kind: KindHopP95, Scope: "wire-rtt", Max: time.Millisecond}}}
	if res := onlyResult(t, mustEvaluate(t, hopOnly, b.trace())); !res.Skipped {
		t.Fatalf("hop checks must skip against a trace: %+v", res)
	}
}

func TestContractJSONRoundTrip(t *testing.T) {
	c := &Contract{
		Name:        "round-trip",
		SlackFactor: 1.5,
		WarmupTrim:  25 * time.Millisecond,
		MinSamples:  12,
		MinWindow:   100 * time.Millisecond,
		Checks: []Check{
			{Kind: KindDelayP95, Scope: "queue:q", Max: 40 * time.Millisecond},
			{Kind: KindThroughputFloor, MinPerSec: 30},
			{Kind: KindRejectionCeiling, MaxRatio: 0.1},
		},
	}
	data, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "contract.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadContract(path)
	if err != nil {
		t.Fatalf("LoadContract: %v", err)
	}
	if got.Name != c.Name || got.SlackFactor != c.SlackFactor || got.WarmupTrim != c.WarmupTrim ||
		got.MinSamples != c.MinSamples || got.MinWindow != c.MinWindow || len(got.Checks) != len(c.Checks) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, c)
	}
	for i := range c.Checks {
		if got.Checks[i] != c.Checks[i] {
			t.Fatalf("check %d mismatch: %+v vs %+v", i, got.Checks[i], c.Checks[i])
		}
	}
}

func TestContractValidation(t *testing.T) {
	bad := []*Contract{
		{Name: "empty"},
		{Name: "kind", Checks: []Check{{Kind: "bogus", Max: time.Second}}},
		{Name: "nomax", Checks: []Check{{Kind: KindDelayP95}}},
		{Name: "nofloor", Checks: []Check{{Kind: KindThroughputFloor}}},
		{Name: "negslack", SlackFactor: -1, Checks: []Check{{Kind: KindDelayP95, Max: time.Second}}},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("contract %q must fail validation", c.Name)
		}
	}
	good := &Contract{Name: "ok", Checks: []Check{{Kind: KindMTTR, Max: time.Second}}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid contract rejected: %v", err)
	}
}

func TestSlackFromEnv(t *testing.T) {
	cases := map[string]float64{
		"":    1,
		"2.5": 2.5,
		"0.5": 1, // below 1 clamps: env slack never tightens budgets
		"abc": 1,
		"3":   3,
	}
	for v, want := range cases {
		t.Setenv("JMSQOS_SLACK", v)
		if got := SlackFromEnv(); got != want {
			t.Fatalf("SlackFromEnv(%q) = %v, want %v", v, got, want)
		}
	}
}

func TestReportRendering(t *testing.T) {
	rep := &Report{Contract: "r", Results: []Result{
		{Kind: KindDelayP95, Budget: "<=5ms", Observed: "2ms", Passed: true},
		{Kind: KindThroughputFloor, Budget: ">=30.0/s", Observed: "12.0/s", Detail: "under floor"},
		{Kind: KindMTTR, Budget: "<=100ms", Skipped: true, Detail: "no crash in trace"},
	}}
	s := rep.String()
	for _, want := range []string{"OK", "FAIL", "SKIPPED", "under floor", "delay-p95"} {
		if !strings.Contains(s, want) {
			t.Fatalf("report rendering missing %q:\n%s", want, s)
		}
	}
	if rep.OK() {
		t.Fatalf("report with a failed check must not be OK")
	}
	if !rep.Failed(KindThroughputFloor) || rep.Failed(KindDelayP95) || rep.Failed(KindMTTR) {
		t.Fatalf("Failed attribution wrong: %v", rep.Violated())
	}
}
