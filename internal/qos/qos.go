// Package qos promotes the harness's performance measures into
// first-class quantitative conformance checks, the MoCheQoS direction:
// a Contract is a set of per-scenario quality-of-service obligations —
// delay-percentile budgets, throughput floors, fairness bounds across
// consumers, overload-rejection ceilings, failover MTTR and
// unavailability budgets — evaluated over the same merged traces (and
// span exports) the safety model consumes, and reported with the same
// flag/attribution discipline as Properties 1–5: a seeded overload or
// latency fault must be flagged by its matching check, a clean stack by
// none.
//
// A flaky quantitative gate is worse than no gate, so every evaluation
// is scheduler-noise-proofed: measurements are windowed to the run
// phase with an additional WarmupTrim, checks below MinSamples or
// MinWindow are SKIPPED rather than failed, and a SlackFactor widens
// budgets (and shrinks floors) uniformly so a loaded CI host can be
// tuned in one place without rewriting every contract.
package qos

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"jmsharness/internal/stats"
	"jmsharness/internal/trace"
)

// Check kinds. Duration-budget kinds compare an observed duration
// against Max; floor kinds compare an observed rate against MinPerSec;
// ratio kinds compare an observed ratio against MaxRatio.
const (
	// KindDelayP50/P95/P99 budget the given percentile of message delay
	// (send start → delivery start) for messages produced in the
	// measurement window.
	KindDelayP50 = "delay-p50"
	KindDelayP95 = "delay-p95"
	KindDelayP99 = "delay-p99"
	// KindThroughputFloor floors the consumed message rate over the
	// measurement window; KindProducerFloor floors the produced rate.
	KindThroughputFloor = "throughput-floor"
	KindProducerFloor   = "producer-floor"
	// KindConsumerFairness budgets the standard deviation of per-consumer
	// mean delays (the paper's unfairness measure as a bound).
	KindConsumerFairness = "consumer-fairness"
	// KindRejectionCeiling bounds the fraction of send attempts that
	// errored in the window — the overload-rejection ceiling.
	KindRejectionCeiling = "rejection-ceiling"
	// KindUnavailability budgets the longest delivery gap spanning an
	// injected crash (last delivery before the kill to first after);
	// KindMTTR budgets crash → first subsequent delivery. Both are
	// skipped on crash-free traces.
	KindUnavailability = "unavailability"
	KindMTTR           = "mttr"
	// KindHopP50/P95/P99 budget per-hop span latencies (Scope names the
	// hop); they evaluate against span exports, not traces.
	KindHopP50 = "hop-p50"
	KindHopP95 = "hop-p95"
	KindHopP99 = "hop-p99"
)

// Check is one quantitative obligation inside a Contract.
type Check struct {
	// Kind selects the measure (see the Kind constants).
	Kind string `json:"kind"`
	// Scope restricts the measurement: empty means the whole trace; a
	// destination string ("queue:x", "topic:y") restricts trace checks
	// to that destination; for hop kinds it names the hop stage.
	Scope string `json:"scope,omitempty"`
	// Max is the duration budget (delay, fairness, unavailability, MTTR
	// and hop kinds).
	Max time.Duration `json:"max,omitempty"`
	// MinPerSec is the rate floor (throughput/producer floors).
	MinPerSec float64 `json:"min_per_sec,omitempty"`
	// MaxRatio is the ratio ceiling (rejection-ceiling).
	MaxRatio float64 `json:"max_ratio,omitempty"`
}

// Label renders the check's identity for reports.
func (c Check) Label() string {
	if c.Scope == "" {
		return c.Kind
	}
	return c.Kind + "[" + c.Scope + "]"
}

// Contract is a named set of QoS checks plus the noise-proofing knobs
// their evaluation shares.
type Contract struct {
	Name string `json:"name"`
	// SlackFactor uniformly widens duration budgets and ratio ceilings
	// (multiplied) and relaxes rate floors (divided). Zero means 1 (no
	// slack). It exists so a loaded CI host tunes every budget at once.
	SlackFactor float64 `json:"slack_factor,omitempty"`
	// WarmupTrim shifts the start of the measurement window this far
	// past the run-phase start, discarding ramp-up samples.
	WarmupTrim time.Duration `json:"warmup_trim,omitempty"`
	// MinSamples is the minimum sample count below which sample-based
	// checks are skipped instead of judged. Zero means 10.
	MinSamples int `json:"min_samples,omitempty"`
	// MinWindow is the minimum measurement window below which rate
	// checks are skipped (a 10ms window turns one scheduler blip into a
	// fake rate collapse).
	MinWindow time.Duration `json:"min_window,omitempty"`
	Checks    []Check       `json:"checks"`
}

// slack returns the effective slack factor (always ≥ a tiny epsilon).
func (c *Contract) slack() float64 {
	if c.SlackFactor <= 0 {
		return 1
	}
	return c.SlackFactor
}

// minSamples returns the effective minimum sample threshold.
func (c *Contract) minSamples() int {
	if c.MinSamples <= 0 {
		return 10
	}
	return c.MinSamples
}

// WithSlack returns a copy of the contract with the slack factor
// multiplied by f (callers apply environment slack without mutating a
// shared contract). f ≤ 1 returns the contract unchanged.
func (c *Contract) WithSlack(f float64) *Contract {
	if c == nil || f <= 1 {
		return c
	}
	out := *c
	out.SlackFactor = c.slack() * f
	out.Checks = append([]Check(nil), c.Checks...)
	return &out
}

// Validate reports whether the contract is well-formed.
func (c *Contract) Validate() error {
	if len(c.Checks) == 0 {
		return fmt.Errorf("qos: contract %q has no checks", c.Name)
	}
	if c.SlackFactor < 0 {
		return fmt.Errorf("qos: contract %q has negative slack factor", c.Name)
	}
	for i, ck := range c.Checks {
		switch ck.Kind {
		case KindDelayP50, KindDelayP95, KindDelayP99, KindConsumerFairness,
			KindUnavailability, KindMTTR, KindHopP50, KindHopP95, KindHopP99:
			if ck.Max <= 0 {
				return fmt.Errorf("qos: check %d (%s) needs max > 0", i, ck.Label())
			}
		case KindThroughputFloor, KindProducerFloor:
			if ck.MinPerSec <= 0 {
				return fmt.Errorf("qos: check %d (%s) needs min_per_sec > 0", i, ck.Label())
			}
		case KindRejectionCeiling:
			if ck.MaxRatio < 0 {
				return fmt.Errorf("qos: check %d (%s) needs max_ratio >= 0", i, ck.Label())
			}
		default:
			return fmt.Errorf("qos: check %d has unknown kind %q", i, ck.Kind)
		}
	}
	return nil
}

// Result is the verdict on one check — same discipline as the model's
// PropertyResult: a skipped check is neither pass nor fail.
type Result struct {
	Kind     string `json:"kind"`
	Scope    string `json:"scope,omitempty"`
	Budget   string `json:"budget"`
	Observed string `json:"observed"`
	Passed   bool   `json:"passed"`
	Skipped  bool   `json:"skipped,omitempty"`
	// Detail explains a skip or carries the raw numbers behind a fail.
	Detail string `json:"detail,omitempty"`
}

// Label renders the result's check identity.
func (r Result) Label() string { return Check{Kind: r.Kind, Scope: r.Scope}.Label() }

// Report is the contract-evaluation outcome for one run.
type Report struct {
	Contract string   `json:"contract"`
	Results  []Result `json:"results"`
}

// OK reports whether no check failed (skipped checks do not fail).
func (r *Report) OK() bool {
	for _, res := range r.Results {
		if !res.Skipped && !res.Passed {
			return false
		}
	}
	return true
}

// Violated returns the kinds of all failed checks, in report order.
func (r *Report) Violated() []string {
	var kinds []string
	for _, res := range r.Results {
		if !res.Skipped && !res.Passed {
			kinds = append(kinds, res.Kind)
		}
	}
	return kinds
}

// Failed reports whether any check of the given kind failed.
func (r *Report) Failed(kind string) bool {
	if r == nil {
		return false
	}
	for _, res := range r.Results {
		if res.Kind == kind && !res.Skipped && !res.Passed {
			return true
		}
	}
	return false
}

// Result returns the first result of the given kind.
func (r *Report) Result(kind string) (Result, bool) {
	for _, res := range r.Results {
		if res.Kind == kind {
			return res, true
		}
	}
	return Result{}, false
}

// String renders the report in the model.Report style.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "qos contract %s\n", r.Contract)
	for _, res := range r.Results {
		verdict := "OK"
		switch {
		case res.Skipped:
			verdict = "SKIPPED"
		case !res.Passed:
			verdict = "FAIL"
		}
		fmt.Fprintf(&b, "  %-28s budget=%-12s observed=%-12s %s", res.Label(), res.Budget, res.Observed, verdict)
		if res.Detail != "" {
			fmt.Fprintf(&b, " (%s)", res.Detail)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Observations is the windowed measurement set one scope's checks are
// judged against. FromTrace computes it; tests may build it directly.
type Observations struct {
	// Window is the measurement window length (run phase minus
	// WarmupTrim); zero or negative means no usable window.
	Window time.Duration
	// Delays are send-start→delivery delays, in seconds, of messages
	// produced in the window (delivered any time).
	Delays []float64
	// ConsumerDelays breaks Delays down by consuming consumer.
	ConsumerDelays map[string][]float64
	// Produced and Consumed count successful sends / deliveries in the
	// window.
	Produced int
	Consumed int
	// SendAttempts and SendErrors count send completions (including
	// errored ones) in the window, for the rejection ratio.
	SendAttempts int
	SendErrors   int
	// Crashes counts injected crashes in the whole trace; Unavailable
	// and MTTR are the worst crash-spanning delivery gap and worst
	// crash→first-delivery time (whole trace, not windowed — recovery
	// happens in the warmdown).
	Crashes     int
	Unavailable time.Duration
	MTTR        time.Duration
}

// FromTrace computes the observations for one scope ("" = everything,
// otherwise a destination string) with the given warmup trim.
func FromTrace(tr *trace.Trace, scope string, trim time.Duration) (*Observations, error) {
	if len(tr.Events) == 0 {
		return nil, fmt.Errorf("qos: empty trace")
	}
	start := tr.Events[0].Time
	end := tr.Events[len(tr.Events)-1].Time
	halfOpen := false
	if s, e, ok := tr.PhaseBounds(trace.PhaseRun); ok {
		start, end = s, e
		halfOpen = true
	}
	start = start.Add(trim)
	o := &Observations{
		Window:         end.Sub(start),
		ConsumerDelays: map[string][]float64{},
	}
	inWindow := func(t time.Time) bool {
		if t.Before(start) {
			return false
		}
		if halfOpen {
			return t.Before(end)
		}
		return !t.After(end)
	}
	inScope := func(dest string) bool { return scope == "" || dest == scope }

	sendStart := map[string]time.Time{}
	producedInWindow := map[string]bool{}
	for i := range tr.Events {
		ev := &tr.Events[i]
		switch ev.Type {
		case trace.EventSendStart:
			if inScope(ev.Dest) {
				sendStart[ev.MsgUID] = ev.Time
			}
		case trace.EventSendEnd:
			if !inScope(ev.Dest) || !inWindow(ev.Time) {
				continue
			}
			o.SendAttempts++
			if ev.Err != "" {
				o.SendErrors++
				continue
			}
			o.Produced++
			producedInWindow[ev.MsgUID] = true
		case trace.EventCrash:
			o.Crashes++
		}
	}

	// Delivery pass: windowed consumption, delays of window-produced
	// messages, and the full in-scope delivery timeline for the
	// crash-recovery measures.
	var deliverTimes []time.Time
	for i := range tr.Events {
		ev := &tr.Events[i]
		if ev.Type != trace.EventDeliver || !inScope(ev.Dest) {
			continue
		}
		deliverTimes = append(deliverTimes, ev.Time)
		if inWindow(ev.Time) {
			o.Consumed++
		}
		if !producedInWindow[ev.MsgUID] {
			continue
		}
		st, ok := sendStart[ev.MsgUID]
		if !ok {
			continue
		}
		d := ev.Time.Sub(st).Seconds()
		o.Delays = append(o.Delays, d)
		o.ConsumerDelays[ev.Consumer] = append(o.ConsumerDelays[ev.Consumer], d)
	}

	if o.Crashes > 0 {
		traceEnd := tr.Events[len(tr.Events)-1].Time
		for i := range tr.Events {
			ev := &tr.Events[i]
			if ev.Type != trace.EventCrash {
				continue
			}
			prev, next := ev.Time, traceEnd
			haveNext := false
			for _, dt := range deliverTimes {
				if !dt.After(ev.Time) {
					prev = dt
					continue
				}
				next = dt
				haveNext = true
				break
			}
			gap := next.Sub(prev)
			if gap > o.Unavailable {
				o.Unavailable = gap
			}
			mttr := next.Sub(ev.Time)
			if !haveNext {
				// Never recovered on this scope: charge to the trace end.
				mttr = traceEnd.Sub(ev.Time)
			}
			if mttr > o.MTTR {
				o.MTTR = mttr
			}
		}
	}
	return o, nil
}

// EvaluateTrace judges every trace-based check of the contract against
// the trace. Hop checks are skipped (they need span data; see
// EvaluateHops).
func (c *Contract) EvaluateTrace(tr *trace.Trace) (*Report, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	rep := &Report{Contract: c.Name}
	cache := map[string]*Observations{}
	for _, ck := range c.Checks {
		if isHopKind(ck.Kind) {
			rep.Results = append(rep.Results, Result{
				Kind: ck.Kind, Scope: ck.Scope,
				Budget:  budgetDuration(ck.Max, c.slack()),
				Skipped: true, Detail: "hop checks need span data",
			})
			continue
		}
		o, ok := cache[ck.Scope]
		if !ok {
			var err error
			o, err = FromTrace(tr, ck.Scope, c.WarmupTrim)
			if err != nil {
				return nil, err
			}
			cache[ck.Scope] = o
		}
		rep.Results = append(rep.Results, c.judge(ck, o))
	}
	return rep, nil
}

// Evaluate judges the contract against pre-computed observations (all
// checks share the one scope the observations were built for).
func (c *Contract) Evaluate(o *Observations) *Report {
	rep := &Report{Contract: c.Name}
	for _, ck := range c.Checks {
		if isHopKind(ck.Kind) {
			rep.Results = append(rep.Results, Result{
				Kind: ck.Kind, Scope: ck.Scope,
				Budget:  budgetDuration(ck.Max, c.slack()),
				Skipped: true, Detail: "hop checks need span data",
			})
			continue
		}
		rep.Results = append(rep.Results, c.judge(ck, o))
	}
	return rep
}

// HopQuantiles is the per-hop latency summary hop checks evaluate
// against (converted from the experiments' span aggregation).
type HopQuantiles struct {
	Count int
	P50   time.Duration
	P95   time.Duration
	P99   time.Duration
}

// HopSet maps hop stage name → quantiles.
type HopSet map[string]HopQuantiles

// EvaluateHops judges the contract's hop checks against a span-derived
// hop set; trace-based checks are skipped.
func (c *Contract) EvaluateHops(hops HopSet) (*Report, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	rep := &Report{Contract: c.Name}
	for _, ck := range c.Checks {
		if !isHopKind(ck.Kind) {
			rep.Results = append(rep.Results, Result{
				Kind: ck.Kind, Scope: ck.Scope,
				Budget:  c.budgetFor(ck),
				Skipped: true, Detail: "trace checks need a trace",
			})
			continue
		}
		budget := time.Duration(float64(ck.Max) * c.slack())
		res := Result{Kind: ck.Kind, Scope: ck.Scope, Budget: budgetDuration(ck.Max, c.slack())}
		h, ok := hops[ck.Scope]
		if !ok || h.Count < c.minSamples() {
			res.Skipped = true
			res.Detail = fmt.Sprintf("n=%d < min samples %d", h.Count, c.minSamples())
			rep.Results = append(rep.Results, res)
			continue
		}
		observed := h.P95
		switch ck.Kind {
		case KindHopP50:
			observed = h.P50
		case KindHopP99:
			observed = h.P99
		}
		res.Observed = observed.Round(time.Microsecond).String()
		res.Passed = observed <= budget
		if !res.Passed {
			res.Detail = fmt.Sprintf("hop %s over budget by %s", ck.Scope, (observed - budget).Round(time.Microsecond))
		}
		rep.Results = append(rep.Results, res)
	}
	return rep, nil
}

// judge evaluates one trace-based check against the observations.
func (c *Contract) judge(ck Check, o *Observations) Result {
	res := Result{Kind: ck.Kind, Scope: ck.Scope, Budget: c.budgetFor(ck)}
	slack := c.slack()
	minN := c.minSamples()
	skip := func(format string, args ...any) Result {
		res.Skipped = true
		res.Detail = fmt.Sprintf(format, args...)
		return res
	}
	failBy := func(format string, args ...any) {
		res.Detail = fmt.Sprintf(format, args...)
	}

	switch ck.Kind {
	case KindDelayP50, KindDelayP95, KindDelayP99:
		if len(o.Delays) < minN {
			return skip("n=%d < min samples %d", len(o.Delays), minN)
		}
		q := 0.50
		switch ck.Kind {
		case KindDelayP95:
			q = 0.95
		case KindDelayP99:
			q = 0.99
		}
		observed := time.Duration(stats.Quantile(o.Delays, q) * float64(time.Second))
		budget := time.Duration(float64(ck.Max) * slack)
		res.Observed = observed.Round(time.Microsecond).String()
		res.Passed = observed <= budget
		if !res.Passed {
			failBy("over budget by %s (n=%d)", (observed - budget).Round(time.Microsecond), len(o.Delays))
		}

	case KindConsumerFairness:
		var means []float64
		for _, ds := range o.ConsumerDelays {
			if len(ds) >= minN {
				means = append(means, stats.MeanOf(ds))
			}
		}
		if len(means) < 2 {
			return skip("%d consumers with >= %d samples, need 2", len(means), minN)
		}
		observed := time.Duration(stats.StdDevOf(means) * float64(time.Second))
		budget := time.Duration(float64(ck.Max) * slack)
		res.Observed = observed.Round(time.Microsecond).String()
		res.Passed = observed <= budget
		if !res.Passed {
			failBy("unfairness over budget by %s across %d consumers", (observed - budget).Round(time.Microsecond), len(means))
		}

	case KindThroughputFloor, KindProducerFloor:
		if o.Window <= 0 || o.Window < c.MinWindow {
			return skip("window %s < min window %s", o.Window, c.MinWindow)
		}
		count := o.Consumed
		if ck.Kind == KindProducerFloor {
			count = o.Produced
		}
		observed := float64(count) / o.Window.Seconds()
		floor := ck.MinPerSec / slack
		res.Observed = fmt.Sprintf("%.1f/s", observed)
		res.Passed = observed >= floor
		if !res.Passed {
			failBy("%.1f/s under floor %.1f/s (n=%d over %s)", observed, floor, count, o.Window)
		}

	case KindRejectionCeiling:
		if o.SendAttempts < minN {
			return skip("attempts=%d < min samples %d", o.SendAttempts, minN)
		}
		observed := float64(o.SendErrors) / float64(o.SendAttempts)
		ceiling := ck.MaxRatio * slack
		res.Observed = fmt.Sprintf("%.3f", observed)
		res.Passed = observed <= ceiling
		if !res.Passed {
			failBy("%d/%d sends rejected, ceiling %.3f", o.SendErrors, o.SendAttempts, ceiling)
		}

	case KindUnavailability, KindMTTR:
		if o.Crashes == 0 {
			return skip("no crash in trace")
		}
		observed := o.Unavailable
		if ck.Kind == KindMTTR {
			observed = o.MTTR
		}
		budget := time.Duration(float64(ck.Max) * slack)
		res.Observed = observed.Round(time.Microsecond).String()
		res.Passed = observed <= budget
		if !res.Passed {
			failBy("over budget by %s across %d crashes", (observed - budget).Round(time.Microsecond), o.Crashes)
		}

	default:
		return skip("unknown kind %q", ck.Kind)
	}
	return res
}

// budgetFor renders a check's slack-adjusted budget.
func (c *Contract) budgetFor(ck Check) string {
	slack := c.slack()
	switch ck.Kind {
	case KindThroughputFloor, KindProducerFloor:
		return fmt.Sprintf(">=%.1f/s", ck.MinPerSec/slack)
	case KindRejectionCeiling:
		return fmt.Sprintf("<=%.3f", ck.MaxRatio*slack)
	default:
		return budgetDuration(ck.Max, slack)
	}
}

func budgetDuration(max time.Duration, slack float64) string {
	return "<=" + time.Duration(float64(max)*slack).Round(time.Microsecond).String()
}

func isHopKind(kind string) bool {
	return kind == KindHopP50 || kind == KindHopP95 || kind == KindHopP99
}

// LoadContract reads and validates a JSON contract file (the
// `jmsanalyze -contract` input format).
func LoadContract(path string) (*Contract, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var c Contract
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("qos: parsing %s: %w", path, err)
	}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("qos: %s: %w", path, err)
	}
	return &c, nil
}

// SlackFromEnv reads the shared CI slack factor from JMSQOS_SLACK
// (a float ≥ 1; unset, empty or invalid means 1). ci.sh exports it in
// one place so loaded-host tuning is a one-line change.
func SlackFromEnv() float64 {
	v := os.Getenv("JMSQOS_SLACK")
	if v == "" {
		return 1
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil || f < 1 {
		return 1
	}
	return f
}
