// Package cluster federates N broker nodes behind a single jms-API
// provider, the repository's first horizontal-scale step beyond one
// broker process. A routing front-end shards destinations across nodes
// by consistent hashing (pluggable Placement policy):
//
//   - A queue lives entirely on one node — every send and every
//     receive for it is routed there, so per-destination FIFO order is
//     preserved end to end without cross-node coordination.
//   - A topic publish is forwarded to every node hosting a
//     subscription for it (tracked by a subscriber registry, with a
//     conservative all-nodes fallback for nodes that may carry durable
//     state the front-end has not seen). Each subscription lives on
//     exactly one node, so no subscriber sees duplicates.
//   - A durable subscription's node is derived from its (clientID,
//     name) identity, so a subscriber that reconnects — even through a
//     fresh front-end — finds its accumulated backlog.
//
// Nodes are plain jms.ConnectionFactory values: in-process brokers
// (internal/broker), remote wire servers (internal/wire), or any mix.
// Node crash/restart composes with the store-backed recovery path of
// the in-process broker, so persistent delivery and durable
// subscriptions survive a node death. The harness tests a Cluster
// exactly as it tests a single provider — which is the paper's point:
// conformance tooling that survives provider evolution.
package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"jmsharness/internal/broker"
	"jmsharness/internal/jms"
	"jmsharness/internal/obs"
	"jmsharness/internal/store"
	"jmsharness/internal/wire"
)

// Node is one member of the cluster.
type Node struct {
	// Name labels the node in metrics and /clusterz. Names must be
	// unique within a cluster.
	Name string
	// Factory is the node's provider. In-process brokers keep their
	// crash-injection capability; remote wire factories are opaque.
	Factory jms.ConnectionFactory
	// ForwardAlways opts this node into receiving every topic publish
	// regardless of the front-end's subscriber registry. Set it for
	// nodes that may hold durable subscriptions the front-end did not
	// create (a broker recovered from a pre-existing store, a remote
	// broker with prior clients); without it such subscriptions would
	// silently miss publishes until a subscriber reconnects through
	// this front-end.
	ForwardAlways bool
}

// Options configures a Cluster.
type Options struct {
	// Nodes are the cluster members; at least one is required.
	Nodes []Node
	// Placement is the sharding policy; nil means a consistent-hash
	// ring over len(Nodes) with DefaultReplicas virtual nodes.
	Placement Placement
	// Metrics receives the cluster's instruments (per-node routed/
	// forwarded counters under "cluster.*" and the routing-latency
	// histogram). Nil means a private registry, still readable through
	// Metrics().
	Metrics *obs.Registry
	// Spans receives one forward-hop span per topic copy fanned out to
	// an extra node, linking cross-node deliveries into one trace. Nil
	// disables the cluster-side spans (messages still carry their
	// trace context either way).
	Spans obs.SpanRecorder
}

// Cluster is a sharded federation of broker nodes. It implements
// jms.ConnectionFactory and is safe for concurrent use.
type Cluster struct {
	nodes []Node
	place Placement

	reg     *obs.Registry
	met     clusterMetrics
	spans   obs.SpanRecorder
	anonSeq atomic.Int64

	mu        sync.Mutex
	topics    map[string]*topicState  // topic name -> forwarding state
	temps     map[string]int          // temporary queue name -> owning node
	queues    map[string]int          // queue name -> owning node (observed)
	pins      map[string]int          // placement key -> promotion-elected node
	clientIDs map[string]*clusterConn // cluster-wide client-ID claims
	crashed   []bool                  // front-end's view of CrashNode state
	down      []bool                  // nodes declared dead by failure detection
	closed    bool

	// epoch is the routing epoch, bumped by every MarkNodeDown so
	// observers (and fenced ex-primaries) can tell stale routing state
	// from current.
	epoch atomic.Int64
	// replStatus, when set by the replication manager, supplies the
	// Replication section of Status. A function (rather than data)
	// avoids an import cycle: replica imports cluster, never the
	// reverse.
	replStatus func() *ReplicationStatus

	// owned holds resources the cluster created itself (NewLocal
	// brokers) and must close.
	owned []func() error
}

// topicState tracks which nodes must receive a topic's publishes.
type topicState struct {
	// refs counts live consumers (non-durable subscribers and active
	// durable subscribers) per node.
	refs map[int]int
	// durables maps a durable subscription key to its node; entries
	// survive consumer close and disappear on Unsubscribe, because the
	// subscription keeps accumulating messages while inactive.
	durables map[string]int
}

// clusterMetrics resolves the cluster's instruments once at
// construction, one counter pair per node.
type clusterMetrics struct {
	routed    []*obs.Counter // queue messages routed to node i
	forwarded []*obs.Counter // topic publish copies forwarded to node i
	consumers []*obs.Gauge   // live consumers on node i
	routeNs   *obs.Histogram // full cluster-side send latency, ns
}

// New returns a cluster over the given nodes.
func New(opts Options) (*Cluster, error) {
	if len(opts.Nodes) == 0 {
		return nil, fmt.Errorf("cluster: no nodes")
	}
	names := map[string]bool{}
	for i := range opts.Nodes {
		if opts.Nodes[i].Name == "" {
			opts.Nodes[i].Name = fmt.Sprintf("node-%d", i)
		}
		if opts.Nodes[i].Factory == nil {
			return nil, fmt.Errorf("cluster: node %s has no factory", opts.Nodes[i].Name)
		}
		if names[opts.Nodes[i].Name] {
			return nil, fmt.Errorf("cluster: duplicate node name %s", opts.Nodes[i].Name)
		}
		names[opts.Nodes[i].Name] = true
	}
	if opts.Placement == nil {
		ring, err := NewHashRing(len(opts.Nodes), 0)
		if err != nil {
			return nil, err
		}
		opts.Placement = ring
	}
	if opts.Metrics == nil {
		opts.Metrics = obs.NewRegistry()
	}
	// Same typed-nil guard as broker.New: a nil *obs.Spans in the
	// interface field must read as "disabled".
	if s, ok := opts.Spans.(*obs.Spans); opts.Spans == nil || (ok && s == nil) {
		opts.Spans = obs.NopSpans()
	}
	c := &Cluster{
		nodes:     opts.Nodes,
		place:     opts.Placement,
		reg:       opts.Metrics,
		spans:     opts.Spans,
		topics:    map[string]*topicState{},
		temps:     map[string]int{},
		queues:    map[string]int{},
		pins:      map[string]int{},
		clientIDs: map[string]*clusterConn{},
		crashed:   make([]bool, len(opts.Nodes)),
		down:      make([]bool, len(opts.Nodes)),
	}
	c.met = clusterMetrics{
		routed:    make([]*obs.Counter, len(c.nodes)),
		forwarded: make([]*obs.Counter, len(c.nodes)),
		consumers: make([]*obs.Gauge, len(c.nodes)),
		routeNs:   c.reg.Histogram("cluster.route_ns", nil),
	}
	for i, n := range c.nodes {
		c.met.routed[i] = c.reg.Counter("cluster.routed." + n.Name)
		c.met.forwarded[i] = c.reg.Counter("cluster.forwarded." + n.Name)
		c.met.consumers[i] = c.reg.Gauge("cluster.consumers." + n.Name)
	}
	c.reg.Gauge("cluster.nodes").Set(int64(len(c.nodes)))
	return c, nil
}

// LocalOptions configures NewLocal.
type LocalOptions struct {
	// NamePrefix prefixes node (and broker) names; default "node".
	NamePrefix string
	// Profile is the per-node performance profile (the zero profile
	// applies no shaping).
	Profile broker.Profile
	// Stables are per-node stable stores; nil (or nil entries) mean
	// in-memory stores. Length must be 0 or n.
	Stables []store.Store
	// Placement, Metrics, Spans and Seed are as in Options; Spans is
	// additionally handed to every local broker, so node enqueue spans
	// and cluster forward hops land in one recorder.
	Placement Placement
	Metrics   *obs.Registry
	Spans     obs.SpanRecorder
	Seed      uint64
}

// NewLocal builds a cluster of n fresh in-process brokers, the common
// configuration for tests and the scale experiments. The brokers are
// owned by the cluster and closed by Close.
func NewLocal(n int, opts LocalOptions) (*Cluster, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster: need n > 0 local nodes, got %d", n)
	}
	if opts.NamePrefix == "" {
		opts.NamePrefix = "node"
	}
	if len(opts.Stables) != 0 && len(opts.Stables) != n {
		return nil, fmt.Errorf("cluster: %d stores for %d nodes", len(opts.Stables), n)
	}
	nodes := make([]Node, 0, n)
	var owned []func() error
	for i := 0; i < n; i++ {
		var stable store.Store
		if len(opts.Stables) == n {
			stable = opts.Stables[i]
		}
		b, err := broker.New(broker.Options{
			Name:    fmt.Sprintf("%s-%d", opts.NamePrefix, i),
			Profile: opts.Profile,
			Stable:  stable,
			Seed:    opts.Seed + uint64(i)*31,
			Metrics: opts.Metrics,
			Spans:   opts.Spans,
		})
		if err != nil {
			for _, cl := range owned {
				_ = cl()
			}
			return nil, err
		}
		owned = append(owned, b.Close)
		nodes = append(nodes, Node{Name: b.Name(), Factory: b})
	}
	c, err := New(Options{Nodes: nodes, Placement: opts.Placement, Metrics: opts.Metrics, Spans: opts.Spans})
	if err != nil {
		for _, cl := range owned {
			_ = cl()
		}
		return nil, err
	}
	c.owned = owned
	return c, nil
}

var _ jms.ConnectionFactory = (*Cluster)(nil)

// Metrics returns the cluster's metrics registry.
func (c *Cluster) Metrics() *obs.Registry { return c.reg }

// recordForward emits one routing/forwarding hop span.
func (c *Cluster) recordForward(tid string, hop int64, msgID string, node int, start time.Time) {
	c.spans.RecordHop(obs.Span{
		TraceID:  tid,
		Hop:      hop,
		Kind:     obs.KindForward,
		Node:     "cluster",
		MsgID:    msgID,
		Endpoint: c.nodes[node].Name,
		SentAt:   start,
		EndedAt:  time.Now(),
	})
}

// Placement returns the cluster's placement policy.
func (c *Cluster) Placement() Placement { return c.place }

// NumNodes returns the cluster size.
func (c *Cluster) NumNodes() int { return len(c.nodes) }

// NodeName returns the name of node i.
func (c *Cluster) NodeName(i int) string { return c.nodes[i].Name }

// NodeFactory returns node i's connection factory — for NewLocal
// clusters the *broker.Broker itself, which callers may type-assert to
// reach broker-level capabilities (fencing, adoption).
func (c *Cluster) NodeFactory(i int) jms.ConnectionFactory { return c.nodes[i].Factory }

// QueueNode returns the node index owning the named queue (following
// the temporary-queue registry for "TEMP." names). Nodes declared dead
// by MarkNodeDown are skipped in ranking order, so after a promotion
// the queue's traffic lands on its former follower.
func (c *Cluster) QueueNode(name string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n, ok := c.temps[name]; ok {
		return n
	}
	return c.pickLiveLocked(queueKey(name))
}

// queueNodeObserved is QueueNode plus recording the queue for Status.
func (c *Cluster) queueNodeObserved(name string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n, ok := c.temps[name]; ok {
		return n
	}
	n := c.pickLiveLocked(queueKey(name))
	c.queues[name] = n
	return n
}

// DurableNode returns the node index hosting the durable subscription
// (clientID, subName).
func (c *Cluster) DurableNode(clientID, subName string) int {
	return c.pickLive(durableKey(clientID, subName))
}

// topicTargets returns the node indices a publish on topic must reach:
// every node with a registered subscription, every ForwardAlways node,
// and — when that union is empty — the topic's home node, so the
// message is still stamped and accounted by exactly one provider (a
// publish with no subscribers is dropped there, as on a single
// broker).
func (c *Cluster) topicTargets(topic string) []int {
	set := map[int]bool{}
	c.mu.Lock()
	if ts, ok := c.topics[topic]; ok {
		for n := range ts.refs {
			set[n] = true
		}
		for _, n := range ts.durables {
			set[n] = true
		}
	}
	c.mu.Unlock()
	for i := range c.nodes {
		if c.nodes[i].ForwardAlways {
			set[i] = true
		}
	}
	if len(set) == 0 {
		return []int{c.pickLive(topicKey(topic))}
	}
	out := make([]int, 0, len(set))
	for i := range c.nodes {
		if set[i] {
			out = append(out, i)
		}
	}
	return out
}

// topicState returns (creating if needed) the forwarding state of a
// topic. Callers hold c.mu.
func (c *Cluster) topicStateLocked(topic string) *topicState {
	ts, ok := c.topics[topic]
	if !ok {
		ts = &topicState{refs: map[int]int{}, durables: map[string]int{}}
		c.topics[topic] = ts
	}
	return ts
}

// addConsumerRef registers a live consumer on node for topic and
// returns the matching (idempotent) release.
func (c *Cluster) addConsumerRef(topic string, node int) (release func()) {
	c.mu.Lock()
	c.topicStateLocked(topic).refs[node]++
	c.mu.Unlock()
	c.met.consumers[node].Inc()
	var once sync.Once
	return func() {
		once.Do(func() {
			c.mu.Lock()
			if ts, ok := c.topics[topic]; ok {
				ts.refs[node]--
				if ts.refs[node] <= 0 {
					delete(ts.refs, node)
				}
			}
			c.mu.Unlock()
			c.met.consumers[node].Dec()
		})
	}
}

// trackConsumer counts a live consumer on node in the per-node gauge
// and returns the matching (idempotent through the caller's sync.Once)
// release. Topic consumers use addConsumerRef instead, which also
// maintains the forwarding table.
func (c *Cluster) trackConsumer(node int) (release func()) {
	c.met.consumers[node].Inc()
	var once sync.Once
	return func() { once.Do(func() { c.met.consumers[node].Dec() }) }
}

// claimClientID claims id for conn cluster-wide. Node brokers enforce
// client-ID uniqueness only among their own connections, and a cluster
// connection touches an unpredictable subset of nodes — so uniqueness
// across cluster connections must be enforced here at the front-end.
func (c *Cluster) claimClientID(id string, conn *clusterConn) error {
	if id == "" {
		return fmt.Errorf("%w: empty client ID", jms.ErrInvalidArgument)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if holder, ok := c.clientIDs[id]; ok && holder != conn {
		return jms.ErrClientIDInUse
	}
	c.clientIDs[id] = conn
	return nil
}

// releaseClientID releases conn's claim on id when it closes.
func (c *Cluster) releaseClientID(id string, conn *clusterConn) {
	c.mu.Lock()
	if c.clientIDs[id] == conn {
		delete(c.clientIDs, id)
	}
	c.mu.Unlock()
}

// addDurable pins a durable subscription's topic forwarding to node;
// the pin survives consumer close and is removed by removeDurable.
func (c *Cluster) addDurable(topic, key string, node int) {
	c.mu.Lock()
	c.topicStateLocked(topic).durables[key] = node
	c.mu.Unlock()
}

// removeDurable drops a durable pin after Unsubscribe. The topic is
// unknown to the caller (Unsubscribe carries only the name), so every
// topic's table is checked.
func (c *Cluster) removeDurable(key string) {
	c.mu.Lock()
	for _, ts := range c.topics {
		delete(ts.durables, key)
	}
	c.mu.Unlock()
}

// registerTemp records a created temporary queue's owning node.
func (c *Cluster) registerTemp(name string, node int) {
	c.mu.Lock()
	c.temps[name] = node
	c.mu.Unlock()
}

// unregisterTemps drops temp-queue routes when their owning connection
// closes.
func (c *Cluster) unregisterTemps(names []string) {
	if len(names) == 0 {
		return
	}
	c.mu.Lock()
	for _, n := range names {
		delete(c.temps, n)
	}
	c.mu.Unlock()
}

// CreateConnection implements jms.ConnectionFactory. Node connections
// are opened lazily as destinations route to them, so a connection can
// be created (and work against healthy shards) while another node is
// down.
func (c *Cluster) CreateConnection() (jms.Connection, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, fmt.Errorf("cluster: %w", jms.ErrClosed)
	}
	return newClusterConn(c), nil
}

// Crash implements the harness's Crashable on the whole federation:
// every crash-capable node is crashed. Nodes that do not support crash
// injection (remote wire factories) are untouched.
func (c *Cluster) Crash() {
	for i := range c.nodes {
		c.CrashNode(i)
	}
}

// Restart recovers every node crashed through this front-end.
func (c *Cluster) Restart() error {
	var first error
	for i := range c.nodes {
		c.mu.Lock()
		crashed := c.crashed[i]
		c.mu.Unlock()
		if !crashed {
			continue
		}
		if err := c.RestartNode(i); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// crashable is the node-level crash-injection surface (implemented by
// the in-process broker).
type crashable interface {
	Crash()
	Restart() error
}

// CrashNode crashes node i if it supports crash injection, reporting
// whether it did. The node's volatile state is lost; its stable store
// survives for RestartNode.
func (c *Cluster) CrashNode(i int) bool {
	cr, ok := c.nodes[i].Factory.(crashable)
	if !ok {
		return false
	}
	c.mu.Lock()
	c.crashed[i] = true
	// The crashed node force-closes its consumers; drop the stale
	// non-durable forwarding refs so publishes stop targeting it (the
	// durable pins stay — those subscriptions recover with the node).
	for _, ts := range c.topics {
		delete(ts.refs, i)
	}
	c.mu.Unlock()
	cr.Crash()
	c.met.consumers[i].Set(0)
	return true
}

// RestartNode recovers node i from its stable store.
func (c *Cluster) RestartNode(i int) error {
	cr, ok := c.nodes[i].Factory.(crashable)
	if !ok {
		return fmt.Errorf("cluster: node %s does not support crash injection", c.nodes[i].Name)
	}
	if err := cr.Restart(); err != nil {
		return err
	}
	c.mu.Lock()
	c.crashed[i] = false
	c.mu.Unlock()
	return nil
}

// Close marks the cluster closed and closes any nodes it owns
// (NewLocal brokers). Externally supplied factories stay open — their
// lifecycle belongs to the caller.
func (c *Cluster) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	owned := c.owned
	c.owned = nil
	c.mu.Unlock()
	var first error
	for _, cl := range owned {
		if err := cl(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// NodeStatus is one node's row in the /clusterz snapshot.
type NodeStatus struct {
	Index     int    `json:"index"`
	Name      string `json:"name"`
	Kind      string `json:"kind"`
	Crashable bool   `json:"crashable"`
	Crashed   bool   `json:"crashed"`
	// Down marks nodes declared dead by failure detection (routing
	// skips them even if they come back).
	Down bool `json:"down"`
	// Routed counts queue messages routed to the node, Forwarded the
	// topic publish copies sent to it, Consumers its live consumers.
	Routed    int64 `json:"routed"`
	Forwarded int64 `json:"forwarded"`
	Consumers int64 `json:"consumers"`
	// Queues is the number of distinct queues observed routing here.
	Queues int `json:"queues"`
}

// Status is the /clusterz snapshot: topology, placement and per-node
// routing counters.
type Status struct {
	Nodes     []NodeStatus `json:"nodes"`
	Placement string       `json:"placement"`
	// Topics maps each known topic to the node indices its publishes
	// currently forward to.
	Topics map[string][]int `json:"topics"`
	// TempQueues is the number of live temporary-queue routes.
	TempQueues int `json:"temp_queues"`
	// Epoch is the routing epoch (bumped per MarkNodeDown).
	Epoch int64 `json:"epoch"`
	// Replication is present when a replication manager is attached.
	Replication *ReplicationStatus `json:"replication,omitempty"`
}

// nodeKind labels a node's factory type for Status.
func nodeKind(f jms.ConnectionFactory) string {
	switch f.(type) {
	case *broker.Broker:
		return "broker"
	case *wire.Factory:
		return "wire"
	default:
		return "custom"
	}
}

// Status returns a point-in-time snapshot of the cluster for the
// /clusterz endpoint.
func (c *Cluster) Status() Status {
	st := Status{
		Placement: c.place.Name(),
		Topics:    map[string][]int{},
	}
	queuesPerNode := make([]int, len(c.nodes))
	c.mu.Lock()
	for _, n := range c.queues {
		queuesPerNode[n]++
	}
	st.TempQueues = len(c.temps)
	for _, n := range c.temps {
		queuesPerNode[n]++
	}
	crashed := append([]bool(nil), c.crashed...)
	down := append([]bool(nil), c.down...)
	replStatus := c.replStatus
	topics := make([]string, 0, len(c.topics))
	for t := range c.topics {
		topics = append(topics, t)
	}
	c.mu.Unlock()
	st.Epoch = c.epoch.Load()
	if replStatus != nil {
		st.Replication = replStatus()
	}
	for _, t := range topics {
		st.Topics[t] = c.topicTargets(t)
	}
	for i, n := range c.nodes {
		_, canCrash := n.Factory.(crashable)
		st.Nodes = append(st.Nodes, NodeStatus{
			Index:     i,
			Name:      n.Name,
			Kind:      nodeKind(n.Factory),
			Crashable: canCrash,
			Crashed:   crashed[i],
			Down:      down[i],
			Routed:    c.met.routed[i].Value(),
			Forwarded: c.met.forwarded[i].Value(),
			Consumers: c.met.consumers[i].Value(),
			Queues:    queuesPerNode[i],
		})
	}
	return st
}
