package cluster

import (
	"fmt"
	"testing"
)

func TestHashRingDeterministicAndInRange(t *testing.T) {
	r, err := NewHashRing(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("queue:q-%d", i)
		n := r.Node(key)
		if n < 0 || n >= 4 {
			t.Fatalf("Node(%q) = %d, out of range", key, n)
		}
		if again := r.Node(key); again != n {
			t.Fatalf("Node(%q) unstable: %d then %d", key, n, again)
		}
	}
}

func TestHashRingBalance(t *testing.T) {
	const nodes, keys = 4, 10000
	r, err := NewHashRing(nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, nodes)
	for i := 0; i < keys; i++ {
		counts[r.Node(fmt.Sprintf("queue:dest-%d", i))]++
	}
	for n, c := range counts {
		frac := float64(c) / keys
		if frac < 0.10 || frac > 0.45 {
			t.Errorf("node %d holds %.1f%% of keys; want roughly balanced (counts %v)", n, frac*100, counts)
		}
	}
}

// TestHashRingStability is the consistent-hashing property itself:
// growing the ring from n to n+1 nodes must relocate only a small
// fraction of keys (ideally 1/(n+1)), where modulo relocates almost
// all of them.
func TestHashRingStability(t *testing.T) {
	const keys = 10000
	r4, _ := NewHashRing(4, 0)
	r5, _ := NewHashRing(5, 0)
	moved := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("queue:dest-%d", i)
		if r4.Node(key) != r5.Node(key) {
			moved++
		}
	}
	frac := float64(moved) / keys
	if frac > 0.40 { // ideal is 0.20 for 4 -> 5; allow vnode noise
		t.Errorf("ring growth moved %.1f%% of keys; consistent hashing should move ~20%%", frac*100)
	}

	m4, _ := NewModulo(4)
	m5, _ := NewModulo(5)
	movedMod := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("queue:dest-%d", i)
		if m4.Node(key) != m5.Node(key) {
			movedMod++
		}
	}
	if movedMod <= moved {
		t.Errorf("modulo moved %d keys, ring moved %d; ring should be strictly more stable", movedMod, moved)
	}
}

func TestPlacementByName(t *testing.T) {
	for name, want := range map[string]string{
		"":          "hash-ring",
		"hash-ring": "hash-ring",
		"hashring":  "hash-ring",
		"modulo":    "modulo",
		"mod":       "modulo",
	} {
		p, err := PlacementByName(name, 3)
		if err != nil {
			t.Fatalf("PlacementByName(%q): %v", name, err)
		}
		if p.Name() != want {
			t.Errorf("PlacementByName(%q).Name() = %q, want %q", name, p.Name(), want)
		}
	}
	if _, err := PlacementByName("nope", 3); err == nil {
		t.Error("unknown policy should fail")
	}
	if _, err := NewHashRing(0, 0); err == nil {
		t.Error("zero-node ring should fail")
	}
	if _, err := NewModulo(-1); err == nil {
		t.Error("negative modulo should fail")
	}
}
