package cluster

import (
	"testing"
	"time"

	"jmsharness/internal/jms"
	"jmsharness/internal/obs"
)

// newTracedCluster builds an n-node local cluster whose brokers and
// front-end share one span recorder.
func newTracedCluster(t *testing.T, n int) (*obs.Spans, *Cluster) {
	t.Helper()
	reg := obs.NewRegistry()
	spans := obs.NewSpans(reg, obs.DefaultMaxInFlight, obs.DefaultKeep)
	c, err := NewLocal(n, LocalOptions{NamePrefix: t.Name(), Seed: 7, Metrics: reg, Spans: spans})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return spans, c
}

// tracedSpans returns the completed spans carrying tid, polling briefly
// because acknowledgement (which completes enqueue spans) is
// asynchronous with respect to Receive returning.
func tracedSpans(spans *obs.Spans, tid string, wantAtLeast int) []obs.Span {
	deadline := time.Now().Add(3 * time.Second)
	for {
		var got []obs.Span
		for _, sp := range spans.Recent() {
			if sp.TraceID == tid {
				got = append(got, sp)
			}
		}
		if len(got) >= wantAtLeast || time.Now().After(deadline) {
			return got
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestClusterQueueTraceLinksHops routes one queue send through the
// cluster front-end and checks the forward hop and the owning node's
// enqueue lifecycle land under the producer's trace ID.
func TestClusterQueueTraceLinksHops(t *testing.T) {
	spans, c := newTracedCluster(t, 3)
	_, sess := openSession(t, c)
	q := jms.Queue("traced.q")
	p, err := sess.CreateProducer(q)
	if err != nil {
		t.Fatal(err)
	}
	m := jms.NewTextMessage("x")
	if err := p.Send(m, jms.DefaultSendOptions()); err != nil {
		t.Fatal(err)
	}
	tid := obs.MessageTraceID(m)
	if tid == "" {
		t.Fatal("cluster send did not stamp a trace ID")
	}
	if _, routed := m.Property(obs.TraceHopProperty); routed {
		t.Error("caller's message still carries the hop marker after send: reuse would not re-mint")
	}

	cons, err := sess.CreateConsumer(q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cons.Receive(3 * time.Second)
	if err != nil || got == nil {
		t.Fatalf("receive: msg=%v err=%v", got, err)
	}
	if obs.MessageTraceID(got) != tid {
		t.Errorf("delivered trace ID = %q, want %q", obs.MessageTraceID(got), tid)
	}
	if hop := obs.MessageTraceHop(got); hop != 1 {
		t.Errorf("delivered hop = %d, want 1 (one routing boundary)", hop)
	}

	linked := tracedSpans(spans, tid, 2)
	kinds := map[string]int{}
	for _, sp := range linked {
		kinds[sp.Kind]++
	}
	if kinds[obs.KindForward] != 1 || kinds[obs.KindEnqueue] != 1 {
		t.Errorf("trace %s spans = %v, want 1 forward + 1 enqueue", tid, kinds)
	}
}

// TestClusterTopicForwardLinksHops publishes once to a topic with
// subscribers spread over the nodes: every forwarded copy's hop and
// every node's enqueue lifecycle must link under one trace ID, each
// copy having crossed exactly one boundary.
func TestClusterTopicForwardLinksHops(t *testing.T) {
	spans, c := newTracedCluster(t, 3)
	_, sess := openSession(t, c)
	topic := jms.Topic("traced.fan")
	var subs []jms.Consumer
	for i := 0; i < 4; i++ {
		s, err := sess.CreateConsumer(topic)
		if err != nil {
			t.Fatal(err)
		}
		subs = append(subs, s)
	}
	p, err := sess.CreateProducer(topic)
	if err != nil {
		t.Fatal(err)
	}
	m := jms.NewTextMessage("fan")
	if err := p.Send(m, jms.DefaultSendOptions()); err != nil {
		t.Fatal(err)
	}
	tid := obs.MessageTraceID(m)
	if tid == "" {
		t.Fatal("publish did not stamp a trace ID")
	}

	for i, s := range subs {
		got, err := s.Receive(3 * time.Second)
		if err != nil || got == nil {
			t.Fatalf("subscriber %d: msg=%v err=%v", i, got, err)
		}
		if obs.MessageTraceID(got) != tid {
			t.Errorf("subscriber %d trace ID = %q, want %q", i, obs.MessageTraceID(got), tid)
		}
		if hop := obs.MessageTraceHop(got); hop != 1 {
			t.Errorf("subscriber %d hop = %d, want 1 (clones must not cascade hops)", i, hop)
		}
	}

	// One forward hop per node that received a copy, one enqueue
	// lifecycle per subscriber endpoint, all under tid.
	st := c.Status()
	nodesWithSubs := 0
	for _, ns := range st.Nodes {
		if ns.Forwarded > 0 || ns.Routed > 0 {
			nodesWithSubs++
		}
	}
	linked := tracedSpans(spans, tid, nodesWithSubs+len(subs))
	kinds := map[string]int{}
	for _, sp := range linked {
		kinds[sp.Kind]++
	}
	if kinds[obs.KindForward] < 1 {
		t.Errorf("trace %s recorded no forward hops (spans: %v)", tid, kinds)
	}
	if kinds[obs.KindEnqueue] != len(subs) {
		t.Errorf("trace %s enqueue spans = %d, want %d (one per subscriber)", tid, kinds[obs.KindEnqueue], len(subs))
	}
}
