package cluster

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"jmsharness/internal/broker"
	"jmsharness/internal/core"
	"jmsharness/internal/faults"
	"jmsharness/internal/harness"
	"jmsharness/internal/jms"
	"jmsharness/internal/model"
	"jmsharness/internal/store"
)

// clusterSuite is the stock conformance schedule pointed at a cluster:
// the same workload shapes the daemon prince schedules against a single
// provider, plus a sharded multi-queue test only a cluster can fail in
// interesting ways.
func clusterSuite() []harness.Config {
	const (
		warm = 50 * time.Millisecond
		run  = 300 * time.Millisecond
		down = 200 * time.Millisecond
	)
	shardedQueues := harness.Config{
		Name:     "sharded-queues",
		Warmup:   warm,
		Run:      run,
		Warmdown: down,
	}
	for i := 0; i < 4; i++ {
		q := jms.Queue(fmt.Sprintf("cluster.shard-%d", i))
		shardedQueues.Producers = append(shardedQueues.Producers,
			harness.ProducerConfig{ID: fmt.Sprintf("p%d", i), Rate: 100, BodySize: 64, Destination: q})
		shardedQueues.Consumers = append(shardedQueues.Consumers,
			harness.ConsumerConfig{ID: fmt.Sprintf("c%d", i), Destination: q})
	}
	return []harness.Config{
		{
			Name:        "queue-basic",
			Destination: jms.Queue("cluster.orders"),
			Producers: []harness.ProducerConfig{
				{ID: "p1", Rate: 150, BodySize: 256},
				{ID: "p2", Rate: 150, BodySize: 256},
			},
			Consumers: []harness.ConsumerConfig{{ID: "c1"}, {ID: "c2"}},
			Warmup:    warm, Run: run, Warmdown: down,
		},
		{
			Name:        "pubsub-durable",
			Destination: jms.Topic("cluster.prices"),
			Producers:   []harness.ProducerConfig{{ID: "pub", Rate: 150, BodySize: 128}},
			Consumers: []harness.ConsumerConfig{
				{ID: "sub1"},
				{ID: "dur1", Durable: true, SubName: "audit", ClientID: "cluster-client"},
			},
			Warmup: warm, Run: run, Warmdown: down,
		},
		{
			Name:        "transactions",
			Destination: jms.Queue("cluster.tx"),
			Producers: []harness.ProducerConfig{
				{ID: "txp", Rate: 150, BodySize: 128, Transacted: true, TxBatch: 5, AbortEvery: 4},
			},
			Consumers: []harness.ConsumerConfig{{ID: "txc", Transacted: true, TxBatch: 3}},
			Warmup:    warm, Run: run, Warmdown: down,
		},
		{
			Name:        "priority-and-expiry",
			Destination: jms.Queue("cluster.qos"),
			Producers: []harness.ProducerConfig{
				{ID: "qp", Rate: 200, BodySize: 64,
					Priorities: []jms.Priority{1, 9},
					TTLs:       []time.Duration{0, time.Millisecond}},
			},
			Consumers: []harness.ConsumerConfig{{ID: "qc"}},
			Warmup:    warm, Run: run, Warmdown: down,
		},
		shardedQueues,
	}
}

// TestClusterConformanceFourNodes runs the full conformance suite —
// Properties 1–5 and the no-duplicates extension — against a 4-node
// cluster exactly as against any provider, and expects zero violations.
// This is the tentpole acceptance test: federation must be invisible to
// the formal model.
func TestClusterConformanceFourNodes(t *testing.T) {
	c := newTestCluster(t, 4)
	results, err := core.RunSuite(c, clusterSuite(), core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range results {
		if !res.OK() {
			t.Errorf("test %s violated the specification:\n%s", res.Test, res.Conformance)
		}
		if res.Stats.Delivers == 0 {
			t.Errorf("test %s delivered nothing", res.Test)
		}
	}
	// The front-end actually routed: every node took queue traffic or
	// topic forwards.
	for _, ns := range c.Status().Nodes {
		if ns.Routed == 0 && ns.Forwarded == 0 {
			t.Errorf("node %s saw no traffic across the whole suite", ns.Name)
		}
	}
}

// TestClusterHarnessCrashRecovery drives the harness's crash injection
// against the federation: every node crashes mid-run, restarts from its
// stable store, and persistent delivery must still conform.
func TestClusterHarnessCrashRecovery(t *testing.T) {
	stables := make([]store.Store, 3)
	for i := range stables {
		stables[i] = store.NewMemory()
	}
	c, err := NewLocal(3, LocalOptions{NamePrefix: "hc", Stables: stables})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	cfg := harness.Config{
		Name:        "cluster-crash",
		Destination: jms.Queue("cluster.crashq"),
		Producers:   []harness.ProducerConfig{{ID: "p1", Rate: 300, BodySize: 32, Mode: jms.Persistent}},
		Consumers:   []harness.ConsumerConfig{{ID: "c1"}},
		Warmup:      10 * time.Millisecond,
		Run:         300 * time.Millisecond,
		Warmdown:    250 * time.Millisecond,
		CrashAfter:  100 * time.Millisecond,
	}
	tr, err := harness.NewRunner(c, nil).Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.HasCrash() {
		t.Fatal("no crash event recorded")
	}
	report, err := model.Check(tr, model.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() {
		t.Fatalf("persistent delivery across a cluster-wide crash failed:\n%s", report)
	}
}

// TestDurableSubscriberNodeCrash pins a durable subscription to the
// node the placement gives it and crashes exactly that node mid-run,
// while the publisher keeps forwarding persistent messages to the
// topic. The subscription and its undelivered backlog must recover from
// the node's stable store, and the whole trace must still satisfy the
// specification — the one-node outage may delay durable delivery but
// never lose or reorder it.
func TestDurableSubscriberNodeCrash(t *testing.T) {
	stables := make([]store.Store, 3)
	for i := range stables {
		stables[i] = store.NewMemory()
	}
	c, err := NewLocal(3, LocalOptions{NamePrefix: "edge", Stables: stables})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })

	const (
		clientID = "edge-client"
		subName  = "edge-audit"
	)
	durNode := c.DurableNode(clientID, subName)
	cfg := harness.Config{
		Name:        "durable-node-crash",
		Destination: jms.Topic("cluster.edge"),
		Producers:   []harness.ProducerConfig{{ID: "pub", Rate: 300, BodySize: 64, Mode: jms.Persistent}},
		Consumers: []harness.ConsumerConfig{
			{ID: "dur", Durable: true, SubName: subName, ClientID: clientID},
		},
		Warmup:   20 * time.Millisecond,
		Run:      300 * time.Millisecond,
		Warmdown: 250 * time.Millisecond,
		Faults:   []harness.FaultEvent{{At: 100 * time.Millisecond, Node: durNode, Downtime: 40 * time.Millisecond}},
	}
	tr, err := harness.NewRunner(c, nil).Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.HasCrash() {
		t.Fatal("no crash event recorded")
	}
	report, err := model.Check(tr, model.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() {
		t.Fatalf("durable subscription on node %d did not survive its crash:\n%s", durNode, report)
	}
}

// TestTempQueueRoutingAfterRestart checks the front-end's temp-queue
// route registry outlives node failures: the name → node mapping lives
// with the owning connection, not the node, so after any node (even the
// owner) crashes and restarts, producers on other connections still
// route replies to the same shard.
func TestTempQueueRoutingAfterRestart(t *testing.T) {
	stables := make([]store.Store, 3)
	for i := range stables {
		stables[i] = store.NewMemory()
	}
	c, err := NewLocal(3, LocalOptions{NamePrefix: "temps", Stables: stables})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })

	_, ownerSess := openSession(t, c)
	q, err := ownerSess.CreateTemporaryQueue()
	if err != nil {
		t.Fatal(err)
	}
	owner := c.QueueNode(q.Name())
	cons, err := ownerSess.CreateConsumer(q)
	if err != nil {
		t.Fatal(err)
	}
	_, otherSess := openSession(t, c)
	sendText(t, otherSess, q, "before")
	if got := receiveText(t, cons); got != "before" {
		t.Fatalf("pre-restart reply: got %q", got)
	}

	// A bystander node bouncing must not disturb the route.
	bystander := (owner + 1) % c.NumNodes()
	if !c.CrashNode(bystander) {
		t.Fatalf("node %d was already down", bystander)
	}
	if err := c.RestartNode(bystander); err != nil {
		t.Fatal(err)
	}
	if got := c.QueueNode(q.Name()); got != owner {
		t.Fatalf("temp queue rerouted to node %d after bystander restart, want %d", got, owner)
	}
	sendText(t, otherSess, q, "after-bystander")
	if got := receiveText(t, cons); got != "after-bystander" {
		t.Fatalf("post-bystander reply: got %q", got)
	}

	// The owner itself bouncing keeps the route; only the volatile
	// contents and the old consumer die with the crash, so a fresh
	// responder still reaches a fresh receiver on the same shard.
	if !c.CrashNode(owner) {
		t.Fatalf("node %d was already down", owner)
	}
	if err := c.RestartNode(owner); err != nil {
		t.Fatal(err)
	}
	if got := c.QueueNode(q.Name()); got != owner {
		t.Fatalf("temp queue rerouted to node %d after owner restart, want %d", got, owner)
	}
	_, freshSess := openSession(t, c)
	freshCons, err := freshSess.CreateConsumer(q)
	if err != nil {
		t.Fatal(err)
	}
	_, senderSess := openSession(t, c)
	sendText(t, senderSess, q, "after-owner")
	if got := receiveText(t, freshCons); got != "after-owner" {
		t.Fatalf("post-owner-restart reply: got %q", got)
	}
}

// TestSeededFaultAttribution is the regression guard for per-node
// blame: a 3-node cluster where one node's provider silently drops
// every 3rd send must produce Property 1–3 violations only on
// destinations placed on that node — the checker, fed nothing but the
// trace, attributes the fault to the right shard.
func TestSeededFaultAttribution(t *testing.T) {
	const faultyNode = 1
	nodes := make([]Node, 3)
	for i := range nodes {
		b, err := broker.New(broker.Options{Name: fmt.Sprintf("seed-%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = b.Close() })
		nodes[i] = Node{Name: b.Name(), Factory: b}
		if i == faultyNode {
			nodes[i].Factory = faults.NewDropper(b, 3)
		}
	}
	c, err := New(Options{Nodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })

	// Enough queues that both the faulty node and healthy nodes own
	// some; placement is deterministic, so this is stable.
	faultyQueues := map[string]bool{}
	healthy := 0
	cfg := harness.Config{
		Name:     "fault-attribution",
		Warmup:   40 * time.Millisecond,
		Run:      300 * time.Millisecond,
		Warmdown: 200 * time.Millisecond,
	}
	for i := 0; i < 6; i++ {
		name := fmt.Sprintf("cluster.blame-%d", i)
		if c.QueueNode(name) == faultyNode {
			faultyQueues[name] = true
		} else {
			healthy++
		}
		cfg.Producers = append(cfg.Producers,
			harness.ProducerConfig{ID: fmt.Sprintf("p%d", i), Rate: 120, BodySize: 64, Destination: jms.Queue(name)})
		cfg.Consumers = append(cfg.Consumers,
			harness.ConsumerConfig{ID: fmt.Sprintf("c%d", i), Destination: jms.Queue(name)})
	}
	if len(faultyQueues) == 0 || healthy == 0 {
		t.Fatalf("degenerate placement: %d faulty, %d healthy queues", len(faultyQueues), healthy)
	}

	tr, err := harness.NewRunner(c, nil).Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	report, err := model.Check(tr, model.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	prop123 := map[model.Property]bool{
		model.PropDeliveryIntegrity: true,
		model.PropRequiredMessages:  true,
		model.PropMessageOrdering:   true,
	}
	var attributed int
	for _, v := range report.Violations() {
		if !prop123[v.Property] || v.Endpoint == "" {
			continue
		}
		name := strings.TrimPrefix(v.Endpoint, "queue:")
		if !faultyQueues[name] {
			t.Errorf("violation on healthy destination %s: %s", v.Endpoint, v)
			continue
		}
		attributed++
	}
	if attributed == 0 {
		t.Fatalf("seeded dropper produced no attributed Property 1-3 violations:\n%s", report)
	}
	if res, ok := report.Result(model.PropRequiredMessages); !ok || len(res.Violations) == 0 {
		t.Errorf("dropper should violate required-messages:\n%s", report)
	}
}
