package cluster

import (
	"fmt"
	"sync"
	"time"

	"jmsharness/internal/jms"
	"jmsharness/internal/obs"
)

// clusterConn is the front-end jms.Connection: it fans out to at most
// one connection per node, opened lazily the first time a destination
// routes there. Lazy opening is what makes the cluster usable while a
// node is down — CreateConnection succeeds, work against healthy
// shards proceeds, and only operations routed to the dead node fail.
type clusterConn struct {
	c *Cluster

	mu        sync.Mutex
	clientID  string
	started   bool
	closed    bool
	nodeConns []jms.Connection
	sessions  map[*clusterSession]struct{}
	temps     []string // temporary queues created through this connection
}

var _ jms.Connection = (*clusterConn)(nil)

func newClusterConn(c *Cluster) *clusterConn {
	return &clusterConn{
		c:         c,
		nodeConns: make([]jms.Connection, len(c.nodes)),
		sessions:  map[*clusterSession]struct{}{},
	}
}

// nodeConn returns (opening if needed) this connection's link to node
// i, with the connection's client ID and started state applied.
func (cc *clusterConn) nodeConn(i int) (jms.Connection, error) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.nodeConnLocked(i)
}

func (cc *clusterConn) nodeConnLocked(i int) (jms.Connection, error) {
	if cc.closed {
		return nil, jms.ErrClosed
	}
	if cc.nodeConns[i] != nil {
		return cc.nodeConns[i], nil
	}
	nc, err := cc.c.nodes[i].Factory.CreateConnection()
	if err != nil {
		return nil, fmt.Errorf("cluster: node %s: %w", cc.c.nodes[i].Name, err)
	}
	if cc.clientID != "" {
		if err := nc.SetClientID(cc.clientID); err != nil {
			_ = nc.Close()
			return nil, fmt.Errorf("cluster: node %s: %w", cc.c.nodes[i].Name, err)
		}
	}
	if cc.started {
		if err := nc.Start(); err != nil {
			_ = nc.Close()
			return nil, fmt.Errorf("cluster: node %s: %w", cc.c.nodes[i].Name, err)
		}
	}
	cc.nodeConns[i] = nc
	return nc, nil
}

// SetClientID implements jms.Connection. The ID is claimed
// cluster-wide at the front-end (two cluster connections may never
// share one even when their destinations land on disjoint nodes) and
// replayed onto each node connection as it opens.
func (cc *clusterConn) SetClientID(id string) error {
	cc.mu.Lock()
	if cc.closed {
		cc.mu.Unlock()
		return jms.ErrClosed
	}
	if cc.clientID != "" {
		cc.mu.Unlock()
		return fmt.Errorf("%w: client ID already set to %q", jms.ErrInvalidArgument, cc.clientID)
	}
	if len(cc.sessions) > 0 {
		cc.mu.Unlock()
		return fmt.Errorf("%w: client ID must be set before creating sessions", jms.ErrInvalidArgument)
	}
	cc.mu.Unlock()
	if err := cc.c.claimClientID(id, cc); err != nil {
		return err
	}
	cc.mu.Lock()
	cc.clientID = id
	cc.mu.Unlock()
	return nil
}

// ClientID implements jms.Connection.
func (cc *clusterConn) ClientID() string {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.clientID
}

// CreateSession implements jms.Connection.
func (cc *clusterConn) CreateSession(transacted bool, ackMode jms.AckMode) (jms.Session, error) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if cc.closed {
		return nil, jms.ErrClosed
	}
	if !transacted && !ackMode.Valid() {
		return nil, fmt.Errorf("%w: ack mode %d", jms.ErrInvalidArgument, ackMode)
	}
	s := &clusterSession{
		conn:       cc,
		transacted: transacted,
		ackMode:    ackMode,
		nodeSess:   make([]jms.Session, len(cc.c.nodes)),
		consumers:  map[*clusterConsumer]struct{}{},
		producers:  map[*clusterProducer]struct{}{},
	}
	cc.sessions[s] = struct{}{}
	return s, nil
}

// Start implements jms.Connection.
func (cc *clusterConn) Start() error {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if cc.closed {
		return jms.ErrClosed
	}
	cc.started = true
	var first error
	for _, nc := range cc.nodeConns {
		if nc == nil {
			continue
		}
		if err := nc.Start(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Stop implements jms.Connection.
func (cc *clusterConn) Stop() error {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if cc.closed {
		return jms.ErrClosed
	}
	cc.started = false
	var first error
	for _, nc := range cc.nodeConns {
		if nc == nil {
			continue
		}
		if err := nc.Stop(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Close implements jms.Connection.
func (cc *clusterConn) Close() error {
	cc.mu.Lock()
	if cc.closed {
		cc.mu.Unlock()
		return nil
	}
	cc.closed = true
	sessions := make([]*clusterSession, 0, len(cc.sessions))
	for s := range cc.sessions {
		sessions = append(sessions, s)
	}
	cc.sessions = map[*clusterSession]struct{}{}
	conns := cc.nodeConns
	cc.nodeConns = make([]jms.Connection, len(cc.c.nodes))
	temps := cc.temps
	cc.temps = nil
	clientID := cc.clientID
	cc.mu.Unlock()

	// Session close runs the consumer releases (topic forwarding refs,
	// consumer gauges) before the node connections go away.
	for _, s := range sessions {
		_ = s.Close()
	}
	var first error
	for _, nc := range conns {
		if nc == nil {
			continue
		}
		if err := nc.Close(); err != nil && first == nil {
			first = err
		}
	}
	cc.c.unregisterTemps(temps)
	if clientID != "" {
		cc.c.releaseClientID(clientID, cc)
	}
	return first
}

// removeSession forgets a session the client closed directly.
func (cc *clusterConn) removeSession(s *clusterSession) {
	cc.mu.Lock()
	delete(cc.sessions, s)
	cc.mu.Unlock()
}

// registerTemp records a temp queue for cleanup when the connection
// closes.
func (cc *clusterConn) registerTemp(name string) {
	cc.mu.Lock()
	cc.temps = append(cc.temps, name)
	cc.mu.Unlock()
}

// clusterSession fans a jms.Session out across nodes: per-node inner
// sessions open lazily with the session's transaction/ack settings,
// and session-wide operations (Commit, Acknowledge, ...) apply to
// every inner session in node order.
//
// A transacted cluster session is NOT atomic across nodes: Commit
// commits the per-node transactions sequentially, so a node crash in
// the middle can land a unit of work partially. Within one node — and
// therefore within any single destination, since a destination never
// spans nodes — full transaction semantics hold.
type clusterSession struct {
	conn       *clusterConn
	transacted bool
	ackMode    jms.AckMode

	mu        sync.Mutex
	closed    bool
	nodeSess  []jms.Session
	consumers map[*clusterConsumer]struct{}
	producers map[*clusterProducer]struct{}
}

var _ jms.Session = (*clusterSession)(nil)

// nodeSession returns (opening if needed) the inner session on node i.
func (s *clusterSession) nodeSession(i int) (jms.Session, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nodeSessionLocked(i)
}

func (s *clusterSession) nodeSessionLocked(i int) (jms.Session, error) {
	if s.closed {
		return nil, jms.ErrClosed
	}
	if s.nodeSess[i] != nil {
		return s.nodeSess[i], nil
	}
	nc, err := s.conn.nodeConn(i)
	if err != nil {
		return nil, err
	}
	ns, err := nc.CreateSession(s.transacted, s.ackMode)
	if err != nil {
		return nil, fmt.Errorf("cluster: node %s: %w", s.conn.c.nodes[i].Name, err)
	}
	s.nodeSess[i] = ns
	return ns, nil
}

// Transacted implements jms.Session.
func (s *clusterSession) Transacted() bool { return s.transacted }

// AckMode implements jms.Session.
func (s *clusterSession) AckMode() jms.AckMode { return s.ackMode }

// CreateProducer implements jms.Session. The producer holds no node
// resources until its first send routes somewhere.
func (s *clusterSession) CreateProducer(dest jms.Destination) (jms.Producer, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, jms.ErrClosed
	}
	if dest != nil && dest.Name() == "" {
		return nil, fmt.Errorf("%w: empty destination name", jms.ErrInvalidDestination)
	}
	p := &clusterProducer{
		sess:      s,
		dest:      dest,
		nodeProds: make([]jms.Producer, len(s.conn.c.nodes)),
	}
	s.producers[p] = struct{}{}
	return p, nil
}

// CreateConsumer implements jms.Session.
func (s *clusterSession) CreateConsumer(dest jms.Destination) (jms.Consumer, error) {
	return s.CreateConsumerWithSelector(dest, "")
}

// CreateConsumerWithSelector implements jms.Session. A queue consumer
// is placed on the queue's owning node; a non-durable subscriber is
// placed by its own (fresh) placement key and registered so publishes
// forward to its node for as long as it lives.
func (s *clusterSession) CreateConsumerWithSelector(dest jms.Destination, selectorExpr string) (jms.Consumer, error) {
	if dest == nil || dest.Name() == "" {
		return nil, fmt.Errorf("%w: nil destination", jms.ErrInvalidDestination)
	}
	c := s.conn.c
	var node int
	var release func()
	switch dest.Kind() {
	case jms.KindQueue:
		node = c.queueNodeObserved(dest.Name())
	case jms.KindTopic:
		node = c.pickLive(anonKey(dest.Name(), c.anonSeq.Add(1)))
		release = c.addConsumerRef(dest.Name(), node)
	default:
		return nil, fmt.Errorf("%w: %v", jms.ErrInvalidDestination, dest)
	}
	ns, err := s.nodeSession(node)
	if err != nil {
		if release != nil {
			release()
		}
		return nil, err
	}
	inner, err := ns.CreateConsumerWithSelector(dest, selectorExpr)
	if err != nil {
		if release != nil {
			release()
		}
		return nil, err
	}
	if release == nil {
		release = c.trackConsumer(node)
	}
	return s.wrapConsumer(inner, release)
}

// CreateDurableSubscriber implements jms.Session.
func (s *clusterSession) CreateDurableSubscriber(topic jms.Topic, name string) (jms.Consumer, error) {
	return s.CreateDurableSubscriberWithSelector(topic, name, "")
}

// CreateDurableSubscriberWithSelector implements jms.Session. The
// subscription's node follows deterministically from its (clientID,
// name) identity, so a subscriber reconnecting later — even through a
// different front-end over the same nodes — reaches the node holding
// its backlog. The topic's forwarding table pins the node until
// Unsubscribe, because the subscription accumulates messages while
// inactive.
func (s *clusterSession) CreateDurableSubscriberWithSelector(topic jms.Topic, name, selectorExpr string) (jms.Consumer, error) {
	clientID := s.conn.ClientID()
	if clientID == "" {
		return nil, jms.ErrNoClientID
	}
	if name == "" {
		return nil, fmt.Errorf("%w: empty subscription name", jms.ErrInvalidArgument)
	}
	c := s.conn.c
	key := durableKey(clientID, name)
	node := c.pickLive(key)
	ns, err := s.nodeSession(node)
	if err != nil {
		return nil, err
	}
	inner, err := ns.CreateDurableSubscriberWithSelector(topic, name, selectorExpr)
	if err != nil {
		return nil, err
	}
	c.addDurable(topic.Name(), key, node)
	return s.wrapConsumer(inner, c.trackConsumer(node))
}

// CreateBrowser implements jms.Session, routing to the queue's node.
func (s *clusterSession) CreateBrowser(queue jms.Queue, selectorExpr string) (jms.Browser, error) {
	if queue.Name() == "" {
		return nil, fmt.Errorf("%w: empty queue name", jms.ErrInvalidDestination)
	}
	ns, err := s.nodeSession(s.conn.c.queueNodeObserved(queue.Name()))
	if err != nil {
		return nil, err
	}
	return ns.CreateBrowser(queue, selectorExpr)
}

// CreateTemporaryQueue implements jms.Session. The node mints the
// queue's name; the front-end records name → node so later producers
// (typically request/reply responders following a ReplyTo header)
// route to it, and drops the route when the owning connection closes.
func (s *clusterSession) CreateTemporaryQueue() (jms.Queue, error) {
	c := s.conn.c
	node := c.pickLive(anonKey("temp", c.anonSeq.Add(1)))
	ns, err := s.nodeSession(node)
	if err != nil {
		return "", err
	}
	q, err := ns.CreateTemporaryQueue()
	if err != nil {
		return "", err
	}
	c.registerTemp(q.Name(), node)
	s.conn.registerTemp(q.Name())
	return q, nil
}

// Unsubscribe implements jms.Session, routed by the subscription's
// placement key.
func (s *clusterSession) Unsubscribe(name string) error {
	clientID := s.conn.ClientID()
	if clientID == "" {
		return jms.ErrNoClientID
	}
	c := s.conn.c
	key := durableKey(clientID, name)
	ns, err := s.nodeSession(c.pickLive(key))
	if err != nil {
		return err
	}
	if err := ns.Unsubscribe(name); err != nil {
		return err
	}
	c.removeDurable(key)
	return nil
}

// eachOpenSession applies op to every inner session already opened, in
// node order, returning the first error.
func (s *clusterSession) eachOpenSession(op func(jms.Session) error) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return jms.ErrClosed
	}
	open := make([]jms.Session, 0, len(s.nodeSess))
	for _, ns := range s.nodeSess {
		if ns != nil {
			open = append(open, ns)
		}
	}
	s.mu.Unlock()
	var first error
	for _, ns := range open {
		if err := op(ns); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Commit implements jms.Session (sequentially per node; see the type
// comment for the atomicity caveat).
func (s *clusterSession) Commit() error {
	if !s.transacted {
		return jms.ErrNotTransacted
	}
	return s.eachOpenSession(jms.Session.Commit)
}

// Rollback implements jms.Session.
func (s *clusterSession) Rollback() error {
	if !s.transacted {
		return jms.ErrNotTransacted
	}
	return s.eachOpenSession(jms.Session.Rollback)
}

// Acknowledge implements jms.Session.
func (s *clusterSession) Acknowledge() error {
	if s.transacted {
		return jms.ErrTransacted
	}
	return s.eachOpenSession(jms.Session.Acknowledge)
}

// Recover implements jms.Session.
func (s *clusterSession) Recover() error {
	if s.transacted {
		return jms.ErrTransacted
	}
	return s.eachOpenSession(jms.Session.Recover)
}

// Close implements jms.Session.
func (s *clusterSession) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	consumers := make([]*clusterConsumer, 0, len(s.consumers))
	for c := range s.consumers {
		consumers = append(consumers, c)
	}
	s.consumers = map[*clusterConsumer]struct{}{}
	s.producers = map[*clusterProducer]struct{}{}
	inner := s.nodeSess
	s.nodeSess = make([]jms.Session, len(inner))
	s.mu.Unlock()

	for _, c := range consumers {
		c.release()
	}
	var first error
	for _, ns := range inner {
		if ns == nil {
			continue
		}
		if err := ns.Close(); err != nil && first == nil {
			first = err
		}
	}
	s.conn.removeSession(s)
	return first
}

// wrapConsumer registers a consumer wrapper with the session.
func (s *clusterSession) wrapConsumer(inner jms.Consumer, release func()) (jms.Consumer, error) {
	cw := &clusterConsumer{sess: s, inner: inner, releaseFn: release}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		release()
		_ = inner.Close()
		return nil, jms.ErrClosed
	}
	s.consumers[cw] = struct{}{}
	s.mu.Unlock()
	return cw, nil
}

// removeConsumer forgets a consumer the client closed directly.
func (s *clusterSession) removeConsumer(cw *clusterConsumer) {
	s.mu.Lock()
	delete(s.consumers, cw)
	s.mu.Unlock()
}

// clusterProducer routes sends: a queue message goes to the queue's
// owning node, a topic publish goes to every node the topic's
// forwarding table names. Per-node unidentified inner producers open
// lazily.
type clusterProducer struct {
	sess *clusterSession
	dest jms.Destination

	mu        sync.Mutex
	closed    bool
	nodeProds []jms.Producer
}

var _ jms.Producer = (*clusterProducer)(nil)

// Destination implements jms.Producer.
func (p *clusterProducer) Destination() jms.Destination { return p.dest }

// nodeProducer returns (opening if needed) the unidentified inner
// producer on node i.
func (p *clusterProducer) nodeProducer(i int) (jms.Producer, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, jms.ErrClosed
	}
	if p.nodeProds[i] != nil {
		return p.nodeProds[i], nil
	}
	ns, err := p.sess.nodeSession(i)
	if err != nil {
		return nil, err
	}
	np, err := ns.CreateProducer(nil)
	if err != nil {
		return nil, err
	}
	p.nodeProds[i] = np
	return np, nil
}

// Send implements jms.Producer.
func (p *clusterProducer) Send(msg *jms.Message, opts jms.SendOptions) error {
	if p.dest == nil {
		return fmt.Errorf("%w: unidentified producer requires SendTo", jms.ErrInvalidDestination)
	}
	return p.SendTo(p.dest, msg, opts)
}

// SendTo implements jms.Producer.
func (p *clusterProducer) SendTo(dest jms.Destination, msg *jms.Message, opts jms.SendOptions) error {
	if dest == nil || dest.Name() == "" {
		return fmt.Errorf("%w: nil destination", jms.ErrInvalidDestination)
	}
	if err := opts.Validate(); err != nil {
		return err
	}
	c := p.sess.conn.c
	start := time.Now()
	defer func() { c.met.routeNs.Observe(time.Since(start).Nanoseconds()) }()

	// The front-end is the outermost producer layer for a clustered
	// send: it establishes the trace context, and every copy routed to
	// a node is one trace hop. The hop marker is cleared from the
	// caller's own message afterwards so reusing the object starts a
	// fresh trace (clones handed to nodes keep their routed context).
	tid := obs.StampTrace(msg)
	defer obs.ClearTraceRouting(msg)

	switch dest.Kind() {
	case jms.KindQueue:
		node := c.queueNodeObserved(dest.Name())
		np, err := p.nodeProducer(node)
		if err != nil {
			return err
		}
		hop := obs.AdvanceTraceHop(msg)
		if err := np.SendTo(dest, msg, opts); err != nil {
			return err
		}
		c.met.routed[node].Inc()
		c.recordForward(tid, hop, msg.ID, node, start)
		return nil
	case jms.KindTopic:
		targets := c.topicTargets(dest.Name())
		// The first target receives msg itself so the caller observes
		// the provider-stamped ID/timestamp; further targets receive
		// clones. Each node stamps its copy independently — consumer
		// identity in the harness rides on message properties, which
		// clones share. Clones are taken before any hop advance so
		// every fanned-out copy crosses the same single hop.
		outs := make([]*jms.Message, len(targets))
		for i := range targets {
			if i == 0 {
				outs[i] = msg
			} else {
				outs[i] = msg.Clone()
			}
		}
		var first error
		for i, node := range targets {
			out := outs[i]
			hop := obs.AdvanceTraceHop(out)
			np, err := p.nodeProducer(node)
			if err == nil {
				err = np.SendTo(dest, out, opts)
			}
			if err != nil {
				if first == nil {
					first = err
				}
				continue
			}
			c.met.forwarded[node].Inc()
			c.recordForward(tid, hop, out.ID, node, start)
		}
		return first
	default:
		return fmt.Errorf("%w: %v", jms.ErrInvalidDestination, dest)
	}
}

// Close implements jms.Producer.
func (p *clusterProducer) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	prods := p.nodeProds
	p.nodeProds = make([]jms.Producer, len(prods))
	p.mu.Unlock()
	var first error
	for _, np := range prods {
		if np == nil {
			continue
		}
		if err := np.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// clusterConsumer wraps a node consumer so its close (or its
// session's) unwinds the front-end bookkeeping exactly once.
type clusterConsumer struct {
	sess      *clusterSession
	inner     jms.Consumer
	releaseFn func()
	once      sync.Once
}

var _ jms.Consumer = (*clusterConsumer)(nil)

func (cw *clusterConsumer) release() { cw.once.Do(cw.releaseFn) }

// Destination implements jms.Consumer.
func (cw *clusterConsumer) Destination() jms.Destination { return cw.inner.Destination() }

// EndpointID implements jms.Consumer.
func (cw *clusterConsumer) EndpointID() string { return cw.inner.EndpointID() }

// Receive implements jms.Consumer.
func (cw *clusterConsumer) Receive(timeout time.Duration) (*jms.Message, error) {
	return cw.inner.Receive(timeout)
}

// ReceiveNoWait implements jms.Consumer.
func (cw *clusterConsumer) ReceiveNoWait() (*jms.Message, error) { return cw.inner.ReceiveNoWait() }

// SetListener implements jms.Consumer.
func (cw *clusterConsumer) SetListener(l jms.Listener) error { return cw.inner.SetListener(l) }

// Close implements jms.Consumer.
func (cw *clusterConsumer) Close() error {
	cw.release()
	cw.sess.removeConsumer(cw)
	return cw.inner.Close()
}
