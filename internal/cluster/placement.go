package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Placement decides which node of the cluster owns a placement key. The
// router derives keys from destinations and subscriptions:
//
//	"queue:<name>"                    a queue and every message on it
//	"durable:<clientID>/<subName>"    a durable subscription
//	"anon:<topic>#<seq>"              a non-durable subscription
//	"topic:<name>"                    a topic's home (stamping) node
//
// A placement must be deterministic: the same key always maps to the
// same node index for the life of the cluster, because a queue's FIFO
// order and a durable subscription's accumulated backlog both live on
// the owning node. Implementations must be safe for concurrent use.
type Placement interface {
	// Name labels the policy in reports and BENCH json files.
	Name() string
	// Node maps key to a node index in [0, nodes).
	Node(key string) int
}

// RankedPlacement extends Placement with a key's full node preference
// order: Ranked(key)[0] equals Node(key) and the remaining entries are
// the failover order. Replication places a destination's follower on
// Ranked(key)[1] — for a hash ring, the next distinct node walking the
// ring from the key — and routing falls through the ranking when nodes
// are marked down.
type RankedPlacement interface {
	Placement
	// Ranked returns every node index exactly once, preference first.
	// The returned slice is freshly allocated.
	Ranked(key string) []int
}

// hash64 is the stable key hash shared by the built-in placements:
// FNV-1a followed by a splitmix64-style finalizer. Raw FNV-1a of short
// sequential keys ("queue:q-1", "queue:q-2", ...) clusters — similar
// inputs land on nearby ring arcs and the placement skews badly; the
// multiply-xorshift rounds spread them over the full 64-bit space.
func hash64(key string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// HashRing is a consistent-hash placement: each node projects Replicas
// virtual points onto a 64-bit ring and a key belongs to the first
// point at or after its hash. Relative to modulo placement, growing a
// ring from n to n+1 nodes relocates only ~1/(n+1) of the keys, which
// is what makes resharding a future cluster cheap.
type HashRing struct {
	nodes  int
	points []ringPoint
}

type ringPoint struct {
	hash uint64
	node int
}

// DefaultReplicas is the virtual-node count used when none is given;
// enough points that 4-node rings spread small key sets evenly.
const DefaultReplicas = 128

// NewHashRing builds a ring over nodes (> 0) with replicas virtual
// points per node (<= 0 chooses DefaultReplicas).
func NewHashRing(nodes, replicas int) (*HashRing, error) {
	if nodes <= 0 {
		return nil, fmt.Errorf("cluster: hash ring needs nodes > 0, got %d", nodes)
	}
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	r := &HashRing{nodes: nodes, points: make([]ringPoint, 0, nodes*replicas)}
	for n := 0; n < nodes; n++ {
		for v := 0; v < replicas; v++ {
			r.points = append(r.points, ringPoint{
				hash: hash64(fmt.Sprintf("node-%d#%d", n, v)),
				node: n,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r, nil
}

// Name implements Placement.
func (r *HashRing) Name() string { return "hash-ring" }

// Nodes returns the ring's node count.
func (r *HashRing) Nodes() int { return r.nodes }

// Node implements Placement.
func (r *HashRing) Node(key string) int {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].node
}

// Ranked implements RankedPlacement: distinct nodes in ring-walk order
// starting at the key's point.
func (r *HashRing) Ranked(key string) []int {
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]int, 0, r.nodes)
	seen := make([]bool, r.nodes)
	for i := 0; i < len(r.points) && len(out) < r.nodes; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}

// Modulo is the naive placement alternative: hash(key) mod nodes. It
// balances as well as the ring for uniform keys but relocates almost
// every key when the node count changes; it exists as the baseline
// policy for placement comparisons.
type Modulo struct {
	nodes int
}

// NewModulo returns a modulo placement over nodes (> 0).
func NewModulo(nodes int) (*Modulo, error) {
	if nodes <= 0 {
		return nil, fmt.Errorf("cluster: modulo placement needs nodes > 0, got %d", nodes)
	}
	return &Modulo{nodes: nodes}, nil
}

// Name implements Placement.
func (m *Modulo) Name() string { return "modulo" }

// Node implements Placement.
func (m *Modulo) Node(key string) int { return int(hash64(key) % uint64(m.nodes)) }

// Ranked implements RankedPlacement: the owner followed by the nodes in
// increasing index order (wrapping).
func (m *Modulo) Ranked(key string) []int {
	out := make([]int, m.nodes)
	start := m.Node(key)
	for i := range out {
		out[i] = (start + i) % m.nodes
	}
	return out
}

// PlacementByName builds a named policy for CLI use.
func PlacementByName(name string, nodes int) (Placement, error) {
	switch name {
	case "hash-ring", "hashring", "":
		return NewHashRing(nodes, 0)
	case "modulo", "mod":
		return NewModulo(nodes)
	default:
		return nil, fmt.Errorf("cluster: unknown placement policy %q", name)
	}
}

// Placement keys. Kept in one place so the router and the tests agree
// on the mapping.

func queueKey(name string) string { return "queue:" + name }

func topicKey(name string) string { return "topic:" + name }

func durableKey(clientID, subName string) string { return "durable:" + clientID + "/" + subName }

func anonKey(topic string, seq int64) string { return fmt.Sprintf("anon:%s#%d", topic, seq) }
