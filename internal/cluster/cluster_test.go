package cluster

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"jmsharness/internal/broker"
	"jmsharness/internal/jms"
	"jmsharness/internal/store"
	"jmsharness/internal/wire"
)

// newTestCluster builds an n-node local cluster that closes with the
// test.
func newTestCluster(t *testing.T, n int) *Cluster {
	t.Helper()
	c, err := NewLocal(n, LocalOptions{NamePrefix: t.Name(), Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

// openSession opens a started connection and a session on it.
func openSession(t *testing.T, f jms.ConnectionFactory) (jms.Connection, jms.Session) {
	t.Helper()
	conn, err := f.CreateConnection()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = conn.Close() })
	if err := conn.Start(); err != nil {
		t.Fatal(err)
	}
	sess, err := conn.CreateSession(false, jms.AckAuto)
	if err != nil {
		t.Fatal(err)
	}
	return conn, sess
}

func sendText(t *testing.T, sess jms.Session, dest jms.Destination, bodies ...string) {
	t.Helper()
	p, err := sess.CreateProducer(dest)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for _, body := range bodies {
		if err := p.Send(jms.NewTextMessage(body), jms.DefaultSendOptions()); err != nil {
			t.Fatalf("send %q: %v", body, err)
		}
	}
}

func receiveText(t *testing.T, cons jms.Consumer) string {
	t.Helper()
	msg, err := cons.Receive(3 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if msg == nil {
		t.Fatal("receive timed out")
	}
	return string(msg.Body.(jms.TextBody))
}

// TestQueueFIFOThroughCluster sends a numbered stream through one queue
// and checks the cluster preserves FIFO order end to end — the
// single-owner-per-queue property.
func TestQueueFIFOThroughCluster(t *testing.T) {
	c := newTestCluster(t, 4)
	_, sess := openSession(t, c)
	q := jms.Queue("fifo")
	var bodies []string
	for i := 0; i < 50; i++ {
		bodies = append(bodies, fmt.Sprintf("m-%03d", i))
	}
	sendText(t, sess, q, bodies...)
	cons, err := sess.CreateConsumer(q)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if got, want := receiveText(t, cons), fmt.Sprintf("m-%03d", i); got != want {
			t.Fatalf("message %d: got %q, want %q", i, got, want)
		}
	}
}

// TestQueuesSpreadAcrossNodes checks sharding actually shards: many
// queues land on more than one node and the routed counters agree with
// the placement.
func TestQueuesSpreadAcrossNodes(t *testing.T) {
	c := newTestCluster(t, 4)
	_, sess := openSession(t, c)
	nodesUsed := map[int]bool{}
	for i := 0; i < 12; i++ {
		q := jms.Queue(fmt.Sprintf("spread-%d", i))
		nodesUsed[c.QueueNode(q.Name())] = true
		sendText(t, sess, q, "x")
	}
	if len(nodesUsed) < 2 {
		t.Fatalf("12 queues on %d node(s); placement is not spreading", len(nodesUsed))
	}
	st := c.Status()
	var routed int64
	for _, ns := range st.Nodes {
		routed += ns.Routed
		if (ns.Routed > 0) != nodesUsed[ns.Index] {
			t.Errorf("node %d routed=%d, placement says used=%t", ns.Index, ns.Routed, nodesUsed[ns.Index])
		}
	}
	if routed != 12 {
		t.Errorf("total routed = %d, want 12", routed)
	}
	if st.Placement != "hash-ring" {
		t.Errorf("placement = %q", st.Placement)
	}
}

// TestTopicFanout subscribes twice (the subscriptions may land on
// different nodes), publishes once, and expects exactly one copy per
// subscriber.
func TestTopicFanout(t *testing.T) {
	c := newTestCluster(t, 3)
	_, sess := openSession(t, c)
	topic := jms.Topic("fan")
	var subs []jms.Consumer
	for i := 0; i < 4; i++ {
		s, err := sess.CreateConsumer(topic)
		if err != nil {
			t.Fatal(err)
		}
		subs = append(subs, s)
	}
	sendText(t, sess, topic, "hello")
	for i, s := range subs {
		if got := receiveText(t, s); got != "hello" {
			t.Fatalf("subscriber %d: got %q", i, got)
		}
		if extra, err := s.ReceiveNoWait(); err != nil || extra != nil {
			t.Fatalf("subscriber %d: duplicate delivery %v (err %v)", i, extra, err)
		}
	}
}

// TestTopicNoSubscribersDrops checks a publish with no subscribers
// anywhere still succeeds (and is dropped at the topic's home node,
// exactly as on a single broker).
func TestTopicNoSubscribersDrops(t *testing.T) {
	c := newTestCluster(t, 3)
	_, sess := openSession(t, c)
	sendText(t, sess, jms.Topic("void"), "nobody-hears-this")
	var forwarded int64
	for _, ns := range c.Status().Nodes {
		forwarded += ns.Forwarded
	}
	if forwarded != 1 {
		t.Errorf("forwarded %d copies of a subscriber-less publish, want 1 (home node)", forwarded)
	}
}

// TestDurableAccumulatesOffline closes a durable subscriber, publishes
// while it is away, and expects the backlog on reconnect — through a
// different connection, which must route to the same node.
func TestDurableAccumulatesOffline(t *testing.T) {
	c := newTestCluster(t, 4)
	topic := jms.Topic("dur")

	conn1, err := c.CreateConnection()
	if err != nil {
		t.Fatal(err)
	}
	if err := conn1.SetClientID("cid"); err != nil {
		t.Fatal(err)
	}
	sess1, err := conn1.CreateSession(false, jms.AckAuto)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := sess1.CreateDurableSubscriber(topic, "audit")
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.Close(); err != nil {
		t.Fatal(err)
	}
	if err := conn1.Close(); err != nil {
		t.Fatal(err)
	}

	// Publish while the subscriber is offline, from a fresh connection.
	_, pubSess := openSession(t, c)
	sendText(t, pubSess, topic, "while-away-1", "while-away-2")

	conn2, err := c.CreateConnection()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = conn2.Close() })
	if err := conn2.SetClientID("cid"); err != nil {
		t.Fatal(err)
	}
	if err := conn2.Start(); err != nil {
		t.Fatal(err)
	}
	sess2, err := conn2.CreateSession(false, jms.AckAuto)
	if err != nil {
		t.Fatal(err)
	}
	sub2, err := sess2.CreateDurableSubscriber(topic, "audit")
	if err != nil {
		t.Fatal(err)
	}
	if got := receiveText(t, sub2); got != "while-away-1" {
		t.Fatalf("got %q", got)
	}
	if got := receiveText(t, sub2); got != "while-away-2" {
		t.Fatalf("got %q", got)
	}
	if err := sub2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sess2.Unsubscribe("audit"); err != nil {
		t.Fatal(err)
	}
	// The forwarding pin must be gone: a new publish forwards only to
	// the topic's home node.
	sendText(t, pubSess, topic, "after-unsubscribe")
}

// TestDurableSurvivesNodeCrash crashes the node hosting a durable
// subscription and checks the store-backed recovery path brings the
// backlog through.
func TestDurableSurvivesNodeCrash(t *testing.T) {
	stables := make([]store.Store, 4)
	for i := range stables {
		stables[i] = store.NewMemory()
	}
	c, err := NewLocal(4, LocalOptions{NamePrefix: "crash", Stables: stables, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	topic := jms.Topic("crash-topic")

	conn, err := c.CreateConnection()
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.SetClientID("cc"); err != nil {
		t.Fatal(err)
	}
	sess, err := conn.CreateSession(false, jms.AckAuto)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := sess.CreateDurableSubscriber(topic, "ledger")
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.Close(); err != nil {
		t.Fatal(err)
	}

	_, pubSess := openSession(t, c)
	sendText(t, pubSess, topic, "persist-1", "persist-2")

	node := c.DurableNode("cc", "ledger")
	_ = conn.Close() // the crash will sever it anyway; close first for a clean teardown
	if !c.CrashNode(node) {
		t.Fatalf("node %d did not accept crash injection", node)
	}
	if c.Status().Nodes[node].Crashed != true {
		t.Error("status does not show the node crashed")
	}
	if err := c.RestartNode(node); err != nil {
		t.Fatal(err)
	}

	conn2, err := c.CreateConnection()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = conn2.Close() })
	if err := conn2.SetClientID("cc"); err != nil {
		t.Fatal(err)
	}
	if err := conn2.Start(); err != nil {
		t.Fatal(err)
	}
	sess2, err := conn2.CreateSession(false, jms.AckAuto)
	if err != nil {
		t.Fatal(err)
	}
	sub2, err := sess2.CreateDurableSubscriber(topic, "ledger")
	if err != nil {
		t.Fatal(err)
	}
	if got := receiveText(t, sub2); got != "persist-1" {
		t.Fatalf("got %q, want persist-1", got)
	}
	if got := receiveText(t, sub2); got != "persist-2" {
		t.Fatalf("got %q, want persist-2", got)
	}
}

// TestQueueSurvivesClusterCrashRestart exercises the Crashable surface
// the harness drives: crash the whole federation, restart, and expect
// persistent queue messages back.
func TestQueueSurvivesClusterCrashRestart(t *testing.T) {
	stables := make([]store.Store, 3)
	for i := range stables {
		stables[i] = store.NewMemory()
	}
	c, err := NewLocal(3, LocalOptions{NamePrefix: "allcrash", Stables: stables})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	_, sess := openSession(t, c)
	sendText(t, sess, jms.Queue("persistq"), "a", "b")

	c.Crash()
	if err := c.Restart(); err != nil {
		t.Fatal(err)
	}

	_, sess2 := openSession(t, c)
	cons, err := sess2.CreateConsumer(jms.Queue("persistq"))
	if err != nil {
		t.Fatal(err)
	}
	if got := receiveText(t, cons); got != "a" {
		t.Fatalf("got %q, want a", got)
	}
	if got := receiveText(t, cons); got != "b" {
		t.Fatalf("got %q, want b", got)
	}
}

// TestCrashedNodeFailsItsDestinationsOnly checks partial availability:
// destinations on live nodes keep working while the dead node's
// destinations error.
func TestCrashedNodeFailsItsDestinationsOnly(t *testing.T) {
	c := newTestCluster(t, 3)
	// Find two queues on different nodes.
	deadQ, liveQ := "", ""
	deadNode := -1
	for i := 0; i < 64 && (deadQ == "" || liveQ == ""); i++ {
		name := fmt.Sprintf("pa-%d", i)
		switch n := c.QueueNode(name); {
		case deadQ == "":
			deadQ, deadNode = name, n
		case n != deadNode:
			liveQ = name
		}
	}
	if liveQ == "" {
		t.Fatal("could not find queues on two distinct nodes")
	}
	if !c.CrashNode(deadNode) {
		t.Fatal("crash injection refused")
	}
	_, sess := openSession(t, c)
	p, err := sess.CreateProducer(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.SendTo(jms.Queue(liveQ), jms.NewTextMessage("ok"), jms.DefaultSendOptions()); err != nil {
		t.Fatalf("send to live node: %v", err)
	}
	if err := p.SendTo(jms.Queue(deadQ), jms.NewTextMessage("boom"), jms.DefaultSendOptions()); err == nil {
		t.Fatal("send to crashed node unexpectedly succeeded")
	}
	if err := c.RestartNode(deadNode); err != nil {
		t.Fatal(err)
	}
	if err := p.SendTo(jms.Queue(deadQ), jms.NewTextMessage("back"), jms.DefaultSendOptions()); err == nil {
		// The old node connection died with the crash; a send may need a
		// fresh connection depending on provider. Either outcome is
		// acceptable here as long as a *new* connection works.
		_ = err
	}
	_, sess2 := openSession(t, c)
	p2, err := sess2.CreateProducer(jms.Queue(deadQ))
	if err != nil {
		t.Fatal(err)
	}
	if err := p2.Send(jms.NewTextMessage("recovered"), jms.DefaultSendOptions()); err != nil {
		t.Fatalf("send after restart: %v", err)
	}
}

// TestTemporaryQueueRouting creates a temp queue on one connection and
// replies to it from another — the request/reply shape. The responder
// must route to the creating node; only the creator may consume.
func TestTemporaryQueueRouting(t *testing.T) {
	c := newTestCluster(t, 4)
	conn, sess := openSession(t, c)
	tq, err := sess.CreateTemporaryQueue()
	if err != nil {
		t.Fatal(err)
	}
	cons, err := sess.CreateConsumer(tq)
	if err != nil {
		t.Fatal(err)
	}
	// A different connection acts as the responder.
	_, respSess := openSession(t, c)
	sendText(t, respSess, tq, "reply")
	if got := receiveText(t, cons); got != "reply" {
		t.Fatalf("got %q", got)
	}
	// Foreign connections may not consume from it.
	if _, err := respSess.CreateConsumer(tq); err == nil {
		t.Error("foreign connection consumed from a temporary queue")
	}
	if c.Status().TempQueues != 1 {
		t.Errorf("TempQueues = %d, want 1", c.Status().TempQueues)
	}
	if err := conn.Close(); err != nil {
		t.Fatal(err)
	}
	if got := c.Status().TempQueues; got != 0 {
		t.Errorf("TempQueues after owner close = %d, want 0", got)
	}
}

// TestClientIDClaimedClusterWide enforces client-ID uniqueness at the
// front-end even when the two connections never touch a common node.
func TestClientIDClaimedClusterWide(t *testing.T) {
	c := newTestCluster(t, 4)
	c1, err := c.CreateConnection()
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.SetClientID("dup"); err != nil {
		t.Fatal(err)
	}
	c2, err := c.CreateConnection()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c2.Close() })
	if err := c2.SetClientID("dup"); !errors.Is(err, jms.ErrClientIDInUse) {
		t.Fatalf("second claim: %v, want ErrClientIDInUse", err)
	}
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c2.SetClientID("dup"); err != nil {
		t.Fatalf("claim after release: %v", err)
	}
	// Durable subscriber on a session without a client ID fails.
	c3, err := c.CreateConnection()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c3.Close() })
	s3, err := c3.CreateSession(false, jms.AckAuto)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s3.CreateDurableSubscriber(jms.Topic("t"), "s"); !errors.Is(err, jms.ErrNoClientID) {
		t.Errorf("durable without client ID: %v", err)
	}
	if err := c3.SetClientID("late"); err == nil {
		t.Error("SetClientID after CreateSession should fail")
	}
}

// TestTransactedSessionThroughCluster commits and rolls back across a
// sharded queue.
func TestTransactedSessionThroughCluster(t *testing.T) {
	c := newTestCluster(t, 3)
	conn, err := c.CreateConnection()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = conn.Close() })
	if err := conn.Start(); err != nil {
		t.Fatal(err)
	}
	sess, err := conn.CreateSession(true, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !sess.Transacted() {
		t.Fatal("session not transacted")
	}
	q := jms.Queue("txq")
	p, err := sess.CreateProducer(q)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Send(jms.NewTextMessage("uncommitted"), jms.DefaultSendOptions()); err != nil {
		t.Fatal(err)
	}
	if err := sess.Rollback(); err != nil {
		t.Fatal(err)
	}
	if err := p.Send(jms.NewTextMessage("committed"), jms.DefaultSendOptions()); err != nil {
		t.Fatal(err)
	}
	if err := sess.Commit(); err != nil {
		t.Fatal(err)
	}

	_, sess2 := openSession(t, c)
	cons, err := sess2.CreateConsumer(q)
	if err != nil {
		t.Fatal(err)
	}
	if got := receiveText(t, cons); got != "committed" {
		t.Fatalf("got %q, want committed (rollback leaked?)", got)
	}
	if extra, err := cons.ReceiveNoWait(); err != nil || extra != nil {
		t.Fatalf("extra message after commit: %v (err %v)", extra, err)
	}
	// Transaction-state errors surface without touching any node.
	if err := sess.Acknowledge(); !errors.Is(err, jms.ErrTransacted) {
		t.Errorf("Acknowledge on transacted session: %v", err)
	}
	if err := sess2.Commit(); !errors.Is(err, jms.ErrNotTransacted) {
		t.Errorf("Commit on non-transacted session: %v", err)
	}
}

// TestMixedLocalAndWireNodes federates an in-process broker with a
// remote broker behind a real TCP wire server — the mixed-node mode.
func TestMixedLocalAndWireNodes(t *testing.T) {
	local, err := broker.New(broker.Options{Name: "local-node"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = local.Close() })
	remoteInner, err := broker.New(broker.Options{Name: "remote-node"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = remoteInner.Close() })
	srv, err := wire.NewServer(remoteInner, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	t.Cleanup(func() { _ = srv.Close() })

	c, err := New(Options{Nodes: []Node{
		{Name: "local", Factory: local},
		{Name: "remote", Factory: wire.NewFactory(srv.Addr())},
	}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })

	_, sess := openSession(t, c)
	// Find one queue on each node and round-trip through both.
	qLocal, qRemote := "", ""
	for i := 0; i < 64 && (qLocal == "" || qRemote == ""); i++ {
		name := fmt.Sprintf("mixed-%d", i)
		if c.QueueNode(name) == 0 {
			qLocal = name
		} else {
			qRemote = name
		}
	}
	for _, q := range []string{qLocal, qRemote} {
		sendText(t, sess, jms.Queue(q), "via "+q)
		cons, err := sess.CreateConsumer(jms.Queue(q))
		if err != nil {
			t.Fatal(err)
		}
		if got := receiveText(t, cons); got != "via "+q {
			t.Fatalf("queue %s: got %q", q, got)
		}
		if err := cons.Close(); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Status()
	if st.Nodes[0].Kind != "broker" || st.Nodes[1].Kind != "wire" {
		t.Errorf("node kinds = %s/%s, want broker/wire", st.Nodes[0].Kind, st.Nodes[1].Kind)
	}
	if st.Nodes[1].Crashable {
		t.Error("wire node should not report crash injection")
	}
	if c.CrashNode(1) {
		t.Error("CrashNode on a wire node should refuse")
	}
}

// TestOptionValidation covers the constructor error paths.
func TestOptionValidation(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Error("empty cluster should fail")
	}
	b, err := broker.New(broker.Options{Name: "v"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = b.Close() })
	if _, err := New(Options{Nodes: []Node{{Name: "a", Factory: b}, {Name: "a", Factory: b}}}); err == nil {
		t.Error("duplicate node names should fail")
	}
	if _, err := New(Options{Nodes: []Node{{Name: "a"}}}); err == nil {
		t.Error("nil factory should fail")
	}
	if _, err := NewLocal(0, LocalOptions{}); err == nil {
		t.Error("zero-node local cluster should fail")
	}
	if _, err := NewLocal(2, LocalOptions{Stables: make([]store.Store, 1)}); err == nil {
		t.Error("store/node count mismatch should fail")
	}
}
