package cluster

// Failover support for replicated destinations (internal/replica): the
// failure detector declares a node dead through MarkNodeDown, which
// bumps the routing epoch, fences the dead node's provider so a
// not-actually-dead primary refuses writes issued under stale routing,
// and makes every ranked-placement lookup fall through to the key's
// next live node — the follower that is being promoted.

// fenceable is implemented by providers (the in-process broker) that
// can refuse service after being superseded. Fencing is sticky: it
// survives Crash/Restart, because a fenced node that restarts is still
// not the destination's primary.
type fenceable interface {
	Fence()
}

// pickLive returns the first live node in key's ranking.
func (c *Cluster) pickLive(key string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.pickLiveLocked(key)
}

// pickLiveLocked is pickLive under c.mu. A promotion pin overrides the
// placement ranking: when replication elects the most-caught-up
// follower as a key's new primary, routing must land there rather than
// on the ranking's next node, or the adopted backlog would be
// unreachable. With no ranked placement (or every node down) it falls
// back to the primary placement.
func (c *Cluster) pickLiveLocked(key string) int {
	if n, ok := c.pins[key]; ok && !c.down[n] {
		return n
	}
	primary := c.place.Node(key)
	if !c.down[primary] {
		return primary
	}
	if rp, ok := c.place.(RankedPlacement); ok {
		for _, n := range rp.Ranked(key) {
			if !c.down[n] {
				return n
			}
		}
	}
	return primary
}

// RankedLive returns key's ranking restricted to live nodes, preference
// first. A promotion pin moves its node to the front so the replication
// manager's primary derivation (index 0) agrees with routing after a
// most-caught-up election. With no ranked placement it returns just the
// live owner (or nothing).
func (c *Cluster) RankedLive(key string) []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	rp, ok := c.place.(RankedPlacement)
	if !ok {
		n := c.place.Node(key)
		if c.down[n] {
			return nil
		}
		return []int{n}
	}
	out := make([]int, 0, len(c.nodes))
	for _, n := range rp.Ranked(key) {
		if !c.down[n] {
			out = append(out, n)
		}
	}
	if p, ok := c.pins[key]; ok && !c.down[p] {
		reordered := make([]int, 0, len(out))
		reordered = append(reordered, p)
		for _, n := range out {
			if n != p {
				reordered = append(reordered, n)
			}
		}
		out = reordered
	}
	return out
}

// PinQueue pins a queue's routing (and replication primariness) to a
// node, overriding placement ranking until that node itself dies. The
// replication manager pins each adopted endpoint to its elected
// most-caught-up holder during promotion.
func (c *Cluster) PinQueue(name string, node int) {
	c.mu.Lock()
	c.pins[queueKey(name)] = node
	if _, ok := c.queues[name]; ok {
		c.queues[name] = node
	}
	c.mu.Unlock()
}

// PinDurable pins a durable subscription's routing to a node, including
// its topic-forwarding entry so publishes accumulate on the adopter.
func (c *Cluster) PinDurable(clientID, subName string, node int) {
	key := durableKey(clientID, subName)
	c.mu.Lock()
	c.pins[key] = node
	for _, ts := range c.topics {
		if _, ok := ts.durables[key]; ok {
			ts.durables[key] = node
		}
	}
	c.mu.Unlock()
}

// RankedLiveQueue is RankedLive for a queue name, and RankedLiveDurable
// for a durable subscription — exported so the replication layer shares
// the router's exact key derivation.
func (c *Cluster) RankedLiveQueue(name string) []int { return c.RankedLive(queueKey(name)) }

// RankedLiveDurable is RankedLive for a durable subscription identity.
func (c *Cluster) RankedLiveDurable(clientID, subName string) []int {
	return c.RankedLive(durableKey(clientID, subName))
}

// NodeDown reports whether node i has been declared dead.
func (c *Cluster) NodeDown(i int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.down[i]
}

// RoutingEpoch returns the current routing epoch. It starts at 0 and
// MarkNodeDown bumps it.
func (c *Cluster) RoutingEpoch() int64 { return c.epoch.Load() }

// MarkNodeDown declares node i dead for routing: every destination it
// owned remaps to the next live node in ranking order, its stale
// forwarding state is dropped, its provider is fenced (if it supports
// fencing) so a zombie primary cannot accept writes, and the routing
// epoch advances. Idempotent; returns the epoch in force after the
// call. It does not crash the node — the caller (failure detector)
// already believes it dead.
func (c *Cluster) MarkNodeDown(i int) int64 {
	c.mu.Lock()
	if c.down[i] {
		c.mu.Unlock()
		return c.epoch.Load()
	}
	c.down[i] = true
	// Promotion pins pointing at the dead node are void — the next
	// election re-pins. Drop them before remapping so the lookups below
	// fall through to the ranking.
	for key, n := range c.pins {
		if n == i {
			delete(c.pins, key)
		}
	}
	// Stale queue-route observations: recompute against the new down
	// set so Status and the next send agree immediately.
	for name, n := range c.queues {
		if n == i {
			c.queues[name] = c.pickLiveLocked(queueKey(name))
		}
	}
	// A dead node serves no subscribers; non-durable refs die with it
	// and durable pins remap to the subscription's next live node so
	// publishes keep accumulating for the promoted backlog. (key is
	// already the full "durable:..." placement key — addDurable stores
	// durableKey() output — so it is used as-is.)
	for _, ts := range c.topics {
		delete(ts.refs, i)
		for key, n := range ts.durables {
			if n == i {
				ts.durables[key] = c.pickLiveLocked(key)
			}
		}
	}
	// Temp queues are connection-scoped volatile state; routes to the
	// dead node are garbage the owning consumer will replace.
	for name, n := range c.temps {
		if n == i {
			delete(c.temps, name)
		}
	}
	epoch := c.epoch.Add(1)
	c.mu.Unlock()
	if f, ok := c.nodes[i].Factory.(fenceable); ok {
		f.Fence()
	}
	c.met.consumers[i].Set(0)
	return epoch
}

// SetReplicationStatus registers the function Status uses to populate
// its Replication section; the replication manager calls this once at
// startup.
func (c *Cluster) SetReplicationStatus(f func() *ReplicationStatus) {
	c.mu.Lock()
	c.replStatus = f
	c.mu.Unlock()
}

// FollowerStatus is one follower's view of a destination's replication
// cover for /clusterz.
type FollowerStatus struct {
	Node int `json:"node"`
	// Acked is the follower's cumulative apply cursor for the primary's
	// stream — how far this copy is known to have caught up.
	Acked uint64 `json:"acked"`
	// Degraded reports the primary has detached this link from the
	// quorum barrier (timeout or peer death); the follower no longer
	// counts toward the quorum until it catches back up.
	Degraded bool `json:"degraded"`
}

// DestinationReplica is one destination's replica assignment for
// /clusterz.
type DestinationReplica struct {
	// Endpoint is the destination's placement identity ("queue:<name>"
	// or "durable:<clientID>/<subName>").
	Endpoint string `json:"endpoint"`
	Primary  int    `json:"primary"`
	// Follower is the most-preferred follower (-1 when the destination
	// has no live follower at all); Followers lists every replica with
	// its acked offset and link health.
	Follower  int              `json:"follower"`
	Followers []FollowerStatus `json:"followers,omitempty"`
	// QuorumSize is the number of healthy follower acks this
	// destination's writes wait for (the configured quorum clamped to
	// the live follower count); QuorumMet reports whether enough
	// non-degraded links exist right now to satisfy it.
	QuorumSize int  `json:"quorum_size,omitempty"`
	QuorumMet  bool `json:"quorum_met"`
}

// ReplicaLink is one replication link's progress for /clusterz.
type ReplicaLink struct {
	From string `json:"from"`
	To   string `json:"to"`
	// LagRecords is how many committed records the follower has not yet
	// acknowledged; LagBytes their payload volume.
	LagRecords int64 `json:"lag_records"`
	LagBytes   int64 `json:"lag_bytes"`
	// Degraded reports the link timed out and detached: the primary is
	// acknowledging writes without waiting for this follower until it
	// catches back up.
	Degraded bool `json:"degraded"`
}

// NodeSuspicion is one node some witness has probed and missed but that
// has not yet been declared dead, for /clusterz.
type NodeSuspicion struct {
	Node string `json:"node"`
	// Misses is the worst consecutive-miss count any live witness
	// currently holds against the node.
	Misses int `json:"misses"`
	// Votes is how many witnesses are past the promotion threshold;
	// the node is declared dead when a majority of live witnesses vote.
	Votes int `json:"votes"`
}

// ReplicationStatus is the Replication section of Status, supplied by
// the replication manager.
type ReplicationStatus struct {
	// Promotions counts follower promotions since startup;
	// LastPromotionEpoch is the routing epoch the most recent one
	// installed (0 when none happened).
	Promotions         int64 `json:"promotions"`
	LastPromotionEpoch int64 `json:"last_promotion_epoch"`
	// ReplicationFactor is the configured follower count per
	// destination; QuorumSize how many of them must acknowledge before
	// a write is acked to the client.
	ReplicationFactor int `json:"replication_factor"`
	QuorumSize        int `json:"quorum_size"`
	// Suspected lists nodes currently missing heartbeats — pinged and
	// unresponsive, but below the promotion threshold. A node that is
	// actually dead transits through here on its way to promotion; a
	// briefly-stalled one appears and clears.
	Suspected []NodeSuspicion `json:"suspected,omitempty"`
	// Destinations lists the primary/follower assignment of every
	// destination observed so far.
	Destinations []DestinationReplica `json:"destinations"`
	// Links lists per-link replication lag.
	Links []ReplicaLink `json:"links"`
}
