package daemon

import (
	"fmt"
	"net/rpc"
	"sort"
	"strings"
	"time"

	"jmsharness/internal/clock"
	"jmsharness/internal/core"
	"jmsharness/internal/harness"
	"jmsharness/internal/trace"
	"jmsharness/internal/tracedb"
)

// Client is the prince's handle on one test daemon.
type Client struct {
	addr string
	name string
	rpc  *rpc.Client
	// offset is the daemon clock's estimated offset relative to the
	// prince (set by SyncClocks).
	offset time.Duration
}

// DialDaemon connects to a daemon's RPC endpoint.
func DialDaemon(addr string) (*Client, error) {
	registerGobTypes()
	rc, err := rpc.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("daemon: dialing %s: %w", addr, err)
	}
	var reply PingReply
	if err := rc.Call("Daemon.Ping", PingArgs{}, &reply); err != nil {
		_ = rc.Close()
		return nil, fmt.Errorf("daemon: pinging %s: %w", addr, err)
	}
	return &Client{addr: addr, name: reply.Name, rpc: rc}, nil
}

// Name returns the daemon's self-reported name.
func (c *Client) Name() string { return c.name }

// Offset returns the daemon clock's estimated offset relative to the
// prince.
func (c *Client) Offset() time.Duration { return c.offset }

// Metrics fetches a counters/gauges snapshot from the daemon.
func (c *Client) Metrics() (MetricsReply, error) {
	var reply MetricsReply
	if err := c.rpc.Call("Daemon.Metrics", MetricsArgs{}, &reply); err != nil {
		return MetricsReply{}, fmt.Errorf("daemon: metrics from %s: %w", c.name, err)
	}
	return reply, nil
}

// Close releases the RPC connection.
func (c *Client) Close() error { return c.rpc.Close() }

// Prince schedules tests across daemons, collects their logs, merges
// them on a common timeline, stores them, and analyses them.
type Prince struct {
	clients []*Client
	db      *tracedb.DB
	clk     clock.Clock

	// Progress, when non-nil, receives one-line live status updates
	// while a distributed run is in flight, built from each daemon's
	// harness progress counters (polled over the Metrics RPC).
	Progress func(line string)
	// ProgressEvery throttles Progress lines; zero means one second.
	ProgressEvery time.Duration
}

// NewPrince connects to the daemons at addrs. clk may be nil for real
// time; db may be nil for a fresh in-memory results store.
func NewPrince(addrs []string, db *tracedb.DB, clk clock.Clock) (*Prince, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("daemon: prince needs at least one daemon")
	}
	if db == nil {
		db = tracedb.New()
	}
	if clk == nil {
		clk = clock.Real()
	}
	p := &Prince{db: db, clk: clk}
	for _, addr := range addrs {
		c, err := DialDaemon(addr)
		if err != nil {
			p.Close()
			return nil, err
		}
		p.clients = append(p.clients, c)
	}
	return p, nil
}

// Close disconnects from all daemons.
func (p *Prince) Close() {
	for _, c := range p.clients {
		_ = c.Close()
	}
	p.clients = nil
}

// Daemons returns the connected daemons.
func (p *Prince) Daemons() []*Client { return p.clients }

// DB returns the prince's results store.
func (p *Prince) DB() *tracedb.DB { return p.db }

// SyncClocks estimates each daemon clock's offset relative to the
// prince with NTP-style ping exchanges, enabling cross-node trace
// merging (the paper relied on NTP's millisecond synchronisation).
func (p *Prince) SyncClocks(samplesPerDaemon int) error {
	if samplesPerDaemon <= 0 {
		samplesPerDaemon = 8
	}
	for _, c := range p.clients {
		samples := make([]clock.Sample, 0, samplesPerDaemon)
		for i := 0; i < samplesPerDaemon; i++ {
			t1 := p.clk.Now()
			var reply PingReply
			if err := c.rpc.Call("Daemon.Ping", PingArgs{}, &reply); err != nil {
				return fmt.Errorf("daemon: syncing %s: %w", c.name, err)
			}
			t4 := p.clk.Now()
			samples = append(samples, clock.Sample{
				LocalSend: t1, RemoteRx: reply.Now, RemoteTx: reply.Now, LocalRecv: t4,
			})
		}
		// The sample measures daemon-relative-to-prince; traces are
		// adjusted by subtracting the offset of the node that logged
		// them, so store the daemon's offset (remote minus local).
		offset, err := clock.EstimateOffset(samples)
		if err != nil {
			return fmt.Errorf("daemon: syncing %s: %w", c.name, err)
		}
		c.offset = offset
	}
	return nil
}

// Assignment maps one part of a distributed test to a daemon.
type Assignment struct {
	// Daemon indexes into the prince's daemon list.
	Daemon int
	// Config is the part to run there. Its Node field is overwritten
	// with the daemon's name so per-node logs merge cleanly.
	Config harness.Config
}

// SplitConfig partitions a test's producers and consumers round-robin
// across n parts, preserving the test-level settings — the paper's
// "number of tests ... run in separate Java virtual machines and
// distributed across several systems".
func SplitConfig(cfg harness.Config, n int) []harness.Config {
	if n <= 1 {
		return []harness.Config{cfg}
	}
	parts := make([]harness.Config, n)
	for i := range parts {
		parts[i] = cfg
		parts[i].Producers = nil
		parts[i].Consumers = nil
		parts[i].Name = fmt.Sprintf("%s.part%d", cfg.Name, i)
	}
	for i, pc := range cfg.Producers {
		parts[i%n].Producers = append(parts[i%n].Producers, pc)
	}
	for i, cc := range cfg.Consumers {
		parts[i%n].Consumers = append(parts[i%n].Consumers, cc)
	}
	// Drop empty parts (possible when there are fewer workers than
	// parts).
	out := parts[:0]
	for _, part := range parts {
		if len(part.Producers)+len(part.Consumers) > 0 {
			out = append(out, part)
		}
	}
	return out
}

// RunDistributed prepares each assignment on its daemon, starts them
// together, waits for completion, collects and merges the logs (with
// clock-offset correction) and stores the merged trace under testID.
func (p *Prince) RunDistributed(testID string, assignments []Assignment) (*trace.Trace, error) {
	if len(assignments) == 0 {
		return nil, fmt.Errorf("daemon: test %q has no assignments", testID)
	}
	type placed struct {
		client *Client
		id     string
	}
	placements := make([]placed, 0, len(assignments))
	for i, a := range assignments {
		if a.Daemon < 0 || a.Daemon >= len(p.clients) {
			return nil, fmt.Errorf("daemon: assignment %d names unknown daemon %d", i, a.Daemon)
		}
		client := p.clients[a.Daemon]
		cfg := a.Config
		cfg.Node = client.name
		id := fmt.Sprintf("%s#%d", testID, i)
		if err := client.rpc.Call("Daemon.Prepare", PrepareArgs{TestID: id, Config: cfg}, &PrepareReply{}); err != nil {
			return nil, fmt.Errorf("daemon: preparing %s on %s: %w", id, client.name, err)
		}
		placements = append(placements, placed{client: client, id: id})
	}
	// Coordinated start.
	for _, pl := range placements {
		if err := pl.client.rpc.Call("Daemon.Start", StartArgs{TestID: pl.id}, &StartReply{}); err != nil {
			return nil, fmt.Errorf("daemon: starting %s on %s: %w", pl.id, pl.client.name, err)
		}
	}
	// Monitor for completion (or failure), emitting periodic progress
	// lines while tests are in flight. Filter a copy: placements is
	// still needed in order for Collect below.
	remaining := append([]placed(nil), placements...)
	lastProgress := p.clk.Now()
	for len(remaining) > 0 {
		next := remaining[:0]
		for _, pl := range remaining {
			var status StatusReply
			if err := pl.client.rpc.Call("Daemon.Status", StatusArgs{TestID: pl.id}, &status); err != nil {
				return nil, fmt.Errorf("daemon: polling %s on %s: %w", pl.id, pl.client.name, err)
			}
			switch status.State {
			case StateDone:
			case StateFailed:
				return nil, fmt.Errorf("daemon: test %s failed on %s: %s", pl.id, pl.client.name, status.Err)
			default:
				next = append(next, pl)
			}
		}
		remaining = next
		if len(remaining) == 0 {
			break
		}
		lastProgress = p.emitProgress(testID, lastProgress)
		p.clk.Sleep(20 * time.Millisecond)
	}
	// Collect and merge.
	logs := make([][]trace.Event, 0, len(placements))
	offsets := map[string]time.Duration{}
	for _, pl := range placements {
		var collected CollectReply
		if err := pl.client.rpc.Call("Daemon.Collect", CollectArgs{TestID: pl.id}, &collected); err != nil {
			return nil, fmt.Errorf("daemon: collecting %s from %s: %w", pl.id, pl.client.name, err)
		}
		logs = append(logs, collected.Events)
		offsets[pl.client.name] = pl.client.offset
	}
	tr := trace.Merge(logs, offsets)
	p.db.BulkLoad(testID, tr.Events)
	return tr, nil
}

// emitProgress builds one live status line from every daemon's harness
// counters and hands it to Progress, throttled to ProgressEvery. It
// returns the timestamp of the last emission (updated when a line was
// emitted, unchanged otherwise).
func (p *Prince) emitProgress(testID string, last time.Time) time.Time {
	if p.Progress == nil {
		return last
	}
	every := p.ProgressEvery
	if every <= 0 {
		every = time.Second
	}
	now := p.clk.Now()
	if now.Sub(last) < every {
		return last
	}
	type nodeProgress struct {
		name       string
		sent, recv int64
	}
	nodes := make([]nodeProgress, 0, len(p.clients))
	var totalSent, totalRecv int64
	for _, c := range p.clients {
		reply, err := c.Metrics()
		if err != nil {
			// Progress is best-effort; a daemon mid-shutdown or an older
			// daemon without the Metrics RPC must not fail the run.
			continue
		}
		np := nodeProgress{
			name: c.name,
			sent: reply.Counters["harness.sent"],
			recv: reply.Counters["harness.recv"],
		}
		totalSent += np.sent
		totalRecv += np.recv
		nodes = append(nodes, np)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].name < nodes[j].name })
	var b strings.Builder
	fmt.Fprintf(&b, "%s: sent=%d recv=%d", testID, totalSent, totalRecv)
	for _, np := range nodes {
		fmt.Fprintf(&b, " [%s s=%d r=%d]", np.name, np.sent, np.recv)
	}
	p.Progress(b.String())
	return now
}

// RunAndAnalyze runs a test split across all connected daemons and
// returns the full analysis.
func (p *Prince) RunAndAnalyze(cfg harness.Config, opts core.Options) (*core.Result, error) {
	parts := SplitConfig(cfg, len(p.clients))
	assignments := make([]Assignment, len(parts))
	for i, part := range parts {
		assignments[i] = Assignment{Daemon: i % len(p.clients), Config: part}
	}
	tr, err := p.RunDistributed(cfg.Name, assignments)
	if err != nil {
		return nil, err
	}
	return core.Analyze(cfg.Name, tr, opts)
}
