package daemon

import (
	"errors"
	"fmt"
	"net"
	"net/rpc"
	"sort"
	"strings"
	"sync"
	"time"

	"jmsharness/internal/clock"
	"jmsharness/internal/core"
	"jmsharness/internal/harness"
	"jmsharness/internal/trace"
	"jmsharness/internal/tracedb"
)

// ErrDeadline marks an RPC that exceeded its per-call deadline: the
// daemon's connection is torn down, because a reply that may arrive
// arbitrarily late can no longer be trusted.
var ErrDeadline = errors.New("daemon: call deadline exceeded")

// ErrDaemonDown marks a daemon that stopped answering heartbeats while
// a distributed run was in flight.
var ErrDaemonDown = errors.New("daemon: unresponsive")

// defaultDialTimeout bounds DialDaemon; defaultCallTimeout bounds every
// control RPC a Client issues. Both exist so a dead or wedged daemon
// surfaces as a prompt named error instead of a hang.
const (
	defaultDialTimeout = 5 * time.Second
	defaultCallTimeout = 10 * time.Second
)

// Client is the prince's handle on one test daemon.
type Client struct {
	addr        string
	name        string
	rpc         *rpc.Client
	callTimeout time.Duration
	// offset is the daemon clock's estimated offset relative to the
	// prince (set by SyncClocks).
	offset time.Duration
}

// DialDaemon connects to a daemon's RPC endpoint with the default
// dial timeout.
func DialDaemon(addr string) (*Client, error) {
	return DialDaemonTimeout(addr, defaultDialTimeout)
}

// DialDaemonTimeout connects to a daemon's RPC endpoint, bounding both
// the TCP dial and the initial ping by timeout.
func DialDaemonTimeout(addr string, timeout time.Duration) (*Client, error) {
	registerGobTypes()
	if timeout <= 0 {
		timeout = defaultDialTimeout
	}
	sock, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("daemon: dialing %s: %w", addr, err)
	}
	c := &Client{addr: addr, rpc: rpc.NewClient(sock), callTimeout: defaultCallTimeout}
	var reply PingReply
	if err := c.call("Daemon.Ping", PingArgs{}, &reply, timeout); err != nil {
		_ = c.rpc.Close()
		return nil, fmt.Errorf("daemon: pinging %s: %w", addr, err)
	}
	c.name = reply.Name
	return c, nil
}

// WithCallTimeout overrides the per-call deadline (zero restores the
// default). Returns the client for chaining.
func (c *Client) WithCallTimeout(d time.Duration) *Client {
	if d <= 0 {
		d = defaultCallTimeout
	}
	c.callTimeout = d
	return c
}

// call issues one RPC bounded by deadline. On expiry the connection is
// closed — net/rpc has no per-call cancellation, so tearing the socket
// down is what releases the pending call — and the error names the
// daemon and wraps ErrDeadline.
func (c *Client) call(method string, args, reply any, deadline time.Duration) error {
	if deadline <= 0 {
		deadline = c.callTimeout
	}
	pending := c.rpc.Go(method, args, reply, make(chan *rpc.Call, 1))
	timer := time.NewTimer(deadline)
	defer timer.Stop()
	select {
	case <-pending.Done:
		return pending.Error
	case <-timer.C:
		_ = c.rpc.Close()
		who := c.name
		if who == "" {
			who = c.addr
		}
		return fmt.Errorf("daemon: %s on %s after %v: %w", method, who, deadline, ErrDeadline)
	}
}

// Name returns the daemon's self-reported name.
func (c *Client) Name() string { return c.name }

// Offset returns the daemon clock's estimated offset relative to the
// prince.
func (c *Client) Offset() time.Duration { return c.offset }

// Metrics fetches a counters/gauges snapshot from the daemon.
func (c *Client) Metrics() (MetricsReply, error) {
	var reply MetricsReply
	if err := c.call("Daemon.Metrics", MetricsArgs{}, &reply, 0); err != nil {
		return MetricsReply{}, fmt.Errorf("daemon: metrics from %s: %w", c.name, err)
	}
	return reply, nil
}

// Close releases the RPC connection.
func (c *Client) Close() error { return c.rpc.Close() }

// Prince schedules tests across daemons, collects their logs, merges
// them on a common timeline, stores them, and analyses them.
type Prince struct {
	clients []*Client
	db      *tracedb.DB
	clk     clock.Clock

	// Progress, when non-nil, receives one-line live status updates
	// while a distributed run is in flight, built from each daemon's
	// harness progress counters (polled over the Metrics RPC).
	Progress func(line string)
	// ProgressEvery throttles Progress lines; zero means one second.
	ProgressEvery time.Duration
	// HeartbeatEvery is the liveness-ping interval while a distributed
	// run is in flight; zero means 250ms. Heartbeats run on real time
	// regardless of the prince's clock: they watch the network, not the
	// workload.
	HeartbeatEvery time.Duration
	// HeartbeatMisses is how many consecutive missed heartbeats declare
	// a daemon dead; zero means 4.
	HeartbeatMisses int
}

// NewPrince connects to the daemons at addrs. clk may be nil for real
// time; db may be nil for a fresh in-memory results store.
func NewPrince(addrs []string, db *tracedb.DB, clk clock.Clock) (*Prince, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("daemon: prince needs at least one daemon")
	}
	if db == nil {
		db = tracedb.New()
	}
	if clk == nil {
		clk = clock.Real()
	}
	p := &Prince{db: db, clk: clk}
	for _, addr := range addrs {
		c, err := DialDaemon(addr)
		if err != nil {
			p.Close()
			return nil, err
		}
		p.clients = append(p.clients, c)
	}
	return p, nil
}

// Close disconnects from all daemons.
func (p *Prince) Close() {
	for _, c := range p.clients {
		_ = c.Close()
	}
	p.clients = nil
}

// Daemons returns the connected daemons.
func (p *Prince) Daemons() []*Client { return p.clients }

// DB returns the prince's results store.
func (p *Prince) DB() *tracedb.DB { return p.db }

// SyncClocks estimates each daemon clock's offset relative to the
// prince with NTP-style ping exchanges, enabling cross-node trace
// merging (the paper relied on NTP's millisecond synchronisation).
func (p *Prince) SyncClocks(samplesPerDaemon int) error {
	if samplesPerDaemon <= 0 {
		samplesPerDaemon = 8
	}
	for _, c := range p.clients {
		samples := make([]clock.Sample, 0, samplesPerDaemon)
		for i := 0; i < samplesPerDaemon; i++ {
			t1 := p.clk.Now()
			var reply PingReply
			if err := c.call("Daemon.Ping", PingArgs{}, &reply, 0); err != nil {
				return fmt.Errorf("daemon: syncing %s: %w", c.name, err)
			}
			t4 := p.clk.Now()
			samples = append(samples, clock.Sample{
				LocalSend: t1, RemoteRx: reply.Now, RemoteTx: reply.Now, LocalRecv: t4,
			})
		}
		// The sample measures daemon-relative-to-prince; traces are
		// adjusted by subtracting the offset of the node that logged
		// them, so store the daemon's offset (remote minus local).
		offset, err := clock.EstimateOffset(samples)
		if err != nil {
			return fmt.Errorf("daemon: syncing %s: %w", c.name, err)
		}
		c.offset = offset
	}
	return nil
}

// Assignment maps one part of a distributed test to a daemon.
type Assignment struct {
	// Daemon indexes into the prince's daemon list.
	Daemon int
	// Config is the part to run there. Its Node field is overwritten
	// with the daemon's name so per-node logs merge cleanly.
	Config harness.Config
}

// SplitConfig partitions a test's producers and consumers round-robin
// across n parts, preserving the test-level settings — the paper's
// "number of tests ... run in separate Java virtual machines and
// distributed across several systems".
func SplitConfig(cfg harness.Config, n int) []harness.Config {
	if n <= 1 {
		return []harness.Config{cfg}
	}
	parts := make([]harness.Config, n)
	for i := range parts {
		parts[i] = cfg
		parts[i].Producers = nil
		parts[i].Consumers = nil
		parts[i].Name = fmt.Sprintf("%s.part%d", cfg.Name, i)
	}
	for i, pc := range cfg.Producers {
		parts[i%n].Producers = append(parts[i%n].Producers, pc)
	}
	for i, cc := range cfg.Consumers {
		parts[i%n].Consumers = append(parts[i%n].Consumers, cc)
	}
	// Drop empty parts (possible when there are fewer workers than
	// parts).
	out := parts[:0]
	for _, part := range parts {
		if len(part.Producers)+len(part.Consumers) > 0 {
			out = append(out, part)
		}
	}
	return out
}

// RunDistributed prepares each assignment on its daemon, starts them
// together, waits for completion, collects and merges the logs (with
// clock-offset correction) and stores the merged trace under testID.
func (p *Prince) RunDistributed(testID string, assignments []Assignment) (*trace.Trace, error) {
	if len(assignments) == 0 {
		return nil, fmt.Errorf("daemon: test %q has no assignments", testID)
	}
	type placed struct {
		client *Client
		id     string
	}
	placements := make([]placed, 0, len(assignments))
	for i, a := range assignments {
		if a.Daemon < 0 || a.Daemon >= len(p.clients) {
			return nil, fmt.Errorf("daemon: assignment %d names unknown daemon %d", i, a.Daemon)
		}
		client := p.clients[a.Daemon]
		cfg := a.Config
		cfg.Node = client.name
		id := fmt.Sprintf("%s#%d", testID, i)
		if err := client.call("Daemon.Prepare", PrepareArgs{TestID: id, Config: cfg}, &PrepareReply{}, 0); err != nil {
			return nil, fmt.Errorf("daemon: preparing %s on %s: %w", id, client.name, err)
		}
		placements = append(placements, placed{client: client, id: id})
	}
	// Coordinated start.
	for _, pl := range placements {
		if err := pl.client.call("Daemon.Start", StartArgs{TestID: pl.id}, &StartReply{}, 0); err != nil {
			return nil, fmt.Errorf("daemon: starting %s on %s: %w", pl.id, pl.client.name, err)
		}
	}
	// Heartbeat each involved daemon for the duration of the wait, so a
	// killed or wedged daemon fails the run with its name attached
	// within the heartbeat deadline instead of hanging the poll loop.
	involved := make([]*Client, 0, len(placements))
	seen := map[*Client]bool{}
	for _, pl := range placements {
		if !seen[pl.client] {
			seen[pl.client] = true
			involved = append(involved, pl.client)
		}
	}
	stopHeartbeats, heartbeatFailed := p.startHeartbeats(involved)
	defer stopHeartbeats()
	// Monitor for completion (or failure), emitting periodic progress
	// lines while tests are in flight. Filter a copy: placements is
	// still needed in order for Collect below.
	remaining := append([]placed(nil), placements...)
	lastProgress := p.clk.Now()
	for len(remaining) > 0 {
		select {
		case err := <-heartbeatFailed:
			return nil, err
		default:
		}
		next := remaining[:0]
		for _, pl := range remaining {
			var status StatusReply
			if err := pl.client.call("Daemon.Status", StatusArgs{TestID: pl.id}, &status, 0); err != nil {
				// A heartbeat-declared death severs the connection, which
				// is often what failed this poll — prefer its diagnosis.
				select {
				case hbErr := <-heartbeatFailed:
					return nil, hbErr
				default:
				}
				return nil, fmt.Errorf("daemon: polling %s on %s: %w", pl.id, pl.client.name, err)
			}
			switch status.State {
			case StateDone:
			case StateFailed:
				return nil, fmt.Errorf("daemon: test %s failed on %s: %s", pl.id, pl.client.name, status.Err)
			default:
				next = append(next, pl)
			}
		}
		remaining = next
		if len(remaining) == 0 {
			break
		}
		lastProgress = p.emitProgress(testID, lastProgress)
		p.clk.Sleep(20 * time.Millisecond)
	}
	stopHeartbeats()
	// Collect and merge.
	logs := make([][]trace.Event, 0, len(placements))
	offsets := map[string]time.Duration{}
	for _, pl := range placements {
		var collected CollectReply
		if err := pl.client.call("Daemon.Collect", CollectArgs{TestID: pl.id}, &collected, 0); err != nil {
			return nil, fmt.Errorf("daemon: collecting %s from %s: %w", pl.id, pl.client.name, err)
		}
		logs = append(logs, collected.Events)
		offsets[pl.client.name] = pl.client.offset
	}
	tr := trace.Merge(logs, offsets)
	p.db.BulkLoad(testID, tr.Events)
	return tr, nil
}

// startHeartbeats pings each client on a real-time ticker until stop is
// called. After HeartbeatMisses consecutive failures the daemon's name
// and last error land on failed (buffered; first death wins) wrapped in
// ErrDaemonDown. stop is idempotent and waits for the monitors to exit.
func (p *Prince) startHeartbeats(clients []*Client) (stop func(), failed <-chan error) {
	every := p.HeartbeatEvery
	if every <= 0 {
		every = 250 * time.Millisecond
	}
	misses := p.HeartbeatMisses
	if misses <= 0 {
		misses = 4
	}
	done := make(chan struct{})
	fail := make(chan error, 1)
	var wg sync.WaitGroup
	for _, c := range clients {
		wg.Add(1)
		go func(c *Client) {
			defer wg.Done()
			ticker := time.NewTicker(every)
			defer ticker.Stop()
			missed := 0
			for {
				select {
				case <-done:
					return
				case <-ticker.C:
				}
				// Unlike Client.call, a slow ping is counted, not acted
				// on: only the full run of misses severs the connection.
				var reply PingReply
				pending := c.rpc.Go("Daemon.Ping", PingArgs{}, &reply, make(chan *rpc.Call, 1))
				timer := time.NewTimer(every)
				var err error
				select {
				case <-pending.Done:
					err = pending.Error
				case <-timer.C:
					err = fmt.Errorf("no reply within %v", every)
				case <-done:
					timer.Stop()
					return
				}
				timer.Stop()
				if err == nil {
					missed = 0
					continue
				}
				missed++
				if missed < misses {
					continue
				}
				// Declared dead: publish the diagnosis first, THEN sever
				// the connection — closing releases any control RPC
				// blocked on this daemon, and its error path must find
				// the heartbeat verdict already waiting.
				select {
				case fail <- fmt.Errorf("daemon: %s missed %d heartbeats %v apart (%v): %w",
					c.name, missed, every, err, ErrDaemonDown):
				default:
				}
				_ = c.rpc.Close()
				return
			}
		}(c)
	}
	return sync.OnceFunc(func() { close(done); wg.Wait() }), fail
}

// emitProgress builds one live status line from every daemon's harness
// counters and hands it to Progress, throttled to ProgressEvery. It
// returns the timestamp of the last emission (updated when a line was
// emitted, unchanged otherwise).
func (p *Prince) emitProgress(testID string, last time.Time) time.Time {
	if p.Progress == nil {
		return last
	}
	every := p.ProgressEvery
	if every <= 0 {
		every = time.Second
	}
	now := p.clk.Now()
	if now.Sub(last) < every {
		return last
	}
	type nodeProgress struct {
		name       string
		sent, recv int64
	}
	nodes := make([]nodeProgress, 0, len(p.clients))
	var totalSent, totalRecv int64
	for _, c := range p.clients {
		reply, err := c.Metrics()
		if err != nil {
			// Progress is best-effort; a daemon mid-shutdown or an older
			// daemon without the Metrics RPC must not fail the run.
			continue
		}
		np := nodeProgress{
			name: c.name,
			sent: reply.Counters["harness.sent"],
			recv: reply.Counters["harness.recv"],
		}
		totalSent += np.sent
		totalRecv += np.recv
		nodes = append(nodes, np)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].name < nodes[j].name })
	var b strings.Builder
	fmt.Fprintf(&b, "%s: sent=%d recv=%d", testID, totalSent, totalRecv)
	for _, np := range nodes {
		fmt.Fprintf(&b, " [%s s=%d r=%d]", np.name, np.sent, np.recv)
	}
	p.Progress(b.String())
	return now
}

// RunAndAnalyze runs a test split across all connected daemons and
// returns the full analysis.
func (p *Prince) RunAndAnalyze(cfg harness.Config, opts core.Options) (*core.Result, error) {
	parts := SplitConfig(cfg, len(p.clients))
	assignments := make([]Assignment, len(parts))
	for i, part := range parts {
		assignments[i] = Assignment{Daemon: i % len(p.clients), Config: part}
	}
	tr, err := p.RunDistributed(cfg.Name, assignments)
	if err != nil {
		return nil, err
	}
	return core.Analyze(cfg.Name, tr, opts)
}
