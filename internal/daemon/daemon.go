// Package daemon implements the distributed coordination layer of the
// paper's Figure 4: "The running of a test is handled by test daemons,
// usually one to a machine. The test daemons are responsible for
// launching the tests, starting the tests in a coordinated fashion and
// monitoring the tests for completion (or failure). The test daemons are
// coordinated by a daemon prince, a program responsible for scheduling
// tests and ensuring that the test daemons stay coordinated."
//
// Coordination uses Go's net/rpc in place of Java RMI — like the paper,
// deliberately a different transport from the middleware under test.
// Collected logs are merged with NTP-style clock-offset correction
// (internal/clock) and inserted into the results store
// (internal/tracedb), with analysis performed by internal/core.
package daemon

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"net/rpc"
	"sync"
	"time"

	"jmsharness/internal/clock"
	"jmsharness/internal/harness"
	"jmsharness/internal/jms"
	"jmsharness/internal/obs"
	"jmsharness/internal/trace"
)

// registerGobTypes makes the interface-typed configuration fields
// transportable over net/rpc. gob.Register is idempotent for a fixed
// type/name pair, so calling this from every constructor is safe.
func registerGobTypes() {
	gob.Register(jms.Queue(""))
	gob.Register(jms.Topic(""))
}

// Test states reported by Status.
const (
	StatePreparing = "preparing"
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
)

// testRun tracks one test executing on the daemon.
type testRun struct {
	state   string
	err     string
	events  []trace.Event
	startCh chan struct{}
	done    chan struct{}
}

// Daemon executes tests against a provider on behalf of the prince. It
// is exported as the net/rpc service "Daemon".
type Daemon struct {
	name    string
	factory jms.ConnectionFactory
	clk     clock.Clock
	reg     *obs.Registry

	runsRunning *obs.Gauge
	runsDone    *obs.Counter
	runsFailed  *obs.Counter

	mu   sync.Mutex
	runs map[string]*testRun

	listener net.Listener
	server   *rpc.Server
	serveWG  sync.WaitGroup

	connMu sync.Mutex
	conns  map[net.Conn]struct{}
}

// NewDaemon returns a daemon named name that runs tests against
// factory. clk may be nil for real time.
func NewDaemon(name string, factory jms.ConnectionFactory, clk clock.Clock) *Daemon {
	registerGobTypes()
	if clk == nil {
		clk = clock.Real()
	}
	reg := obs.NewRegistry()
	return &Daemon{
		name:        name,
		factory:     factory,
		clk:         clk,
		reg:         reg,
		runsRunning: reg.Gauge("daemon.runs_running"),
		runsDone:    reg.Counter("daemon.runs_done"),
		runsFailed:  reg.Counter("daemon.runs_failed"),
		runs:        map[string]*testRun{},
	}
}

// Metrics returns the daemon's registry: its own run-lifecycle
// instruments plus the harness progress counters of every test it has
// executed. Counters are cumulative over the daemon's lifetime, so the
// prince can derive progress deltas while a run is in flight.
func (d *Daemon) Metrics() *obs.Registry { return d.reg }

// Listen starts serving RPC on addr (e.g. "127.0.0.1:0") and returns
// the bound address.
func (d *Daemon) Listen(addr string) (string, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("daemon: listening on %s: %w", addr, err)
	}
	d.listener = l
	d.server = rpc.NewServer()
	if err := d.server.RegisterName("Daemon", &service{d: d}); err != nil {
		_ = l.Close()
		return "", fmt.Errorf("daemon: registering service: %w", err)
	}
	d.serveWG.Add(1)
	go func() {
		defer d.serveWG.Done()
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			d.connMu.Lock()
			if d.conns == nil {
				d.conns = map[net.Conn]struct{}{}
			}
			d.conns[conn] = struct{}{}
			d.connMu.Unlock()
			d.serveWG.Add(1)
			go func() {
				defer d.serveWG.Done()
				d.server.ServeConn(conn)
				d.connMu.Lock()
				delete(d.conns, conn)
				d.connMu.Unlock()
			}()
		}
	}()
	return l.Addr().String(), nil
}

// Close stops the RPC listener and severs every accepted connection, so
// connected princes observe the death promptly (a deadline-bounded call
// error or a missed heartbeat) instead of talking to a half-dead peer.
func (d *Daemon) Close() error {
	if d.listener == nil {
		return nil
	}
	err := d.listener.Close()
	d.connMu.Lock()
	for conn := range d.conns {
		_ = conn.Close()
	}
	d.connMu.Unlock()
	return err
}

// service is the RPC-exposed surface (kept separate so Daemon's own
// methods don't have to follow the net/rpc signature).
type service struct {
	d *Daemon
}

// PingArgs is the Ping request.
type PingArgs struct{}

// PingReply reports daemon identity and clock, for health checking and
// NTP-style offset estimation.
type PingReply struct {
	Name string
	Now  time.Time
}

// Ping reports liveness, identity and the daemon's clock reading.
func (s *service) Ping(_ PingArgs, reply *PingReply) error {
	reply.Name = s.d.name
	reply.Now = s.d.clk.Now()
	return nil
}

// PrepareArgs registers a test for later coordinated start.
type PrepareArgs struct {
	TestID string
	Config harness.Config
}

// PrepareReply is empty.
type PrepareReply struct{}

// Prepare validates and registers a test.
func (s *service) Prepare(args PrepareArgs, _ *PrepareReply) error {
	if err := args.Config.Validate(); err != nil {
		return err
	}
	s.d.mu.Lock()
	defer s.d.mu.Unlock()
	if _, exists := s.d.runs[args.TestID]; exists {
		return fmt.Errorf("daemon %s: test %q already prepared", s.d.name, args.TestID)
	}
	run := &testRun{state: StatePreparing, startCh: make(chan struct{}), done: make(chan struct{})}
	s.d.runs[args.TestID] = run
	cfg := args.Config
	go func() {
		<-run.startCh
		s.d.runsRunning.Inc()
		tr, err := harness.NewRunner(s.d.factory, s.d.clk).WithMetrics(s.d.reg).Run(cfg)
		s.d.runsRunning.Dec()
		s.d.mu.Lock()
		defer s.d.mu.Unlock()
		if err != nil {
			run.state = StateFailed
			run.err = err.Error()
			s.d.runsFailed.Inc()
		} else {
			run.state = StateDone
			run.events = tr.Events
			s.d.runsDone.Inc()
		}
		close(run.done)
	}()
	return nil
}

// StartArgs begins execution of a prepared test.
type StartArgs struct {
	TestID string
}

// StartReply is empty.
type StartReply struct{}

// Start releases a prepared test to run.
func (s *service) Start(args StartArgs, _ *StartReply) error {
	s.d.mu.Lock()
	defer s.d.mu.Unlock()
	run, ok := s.d.runs[args.TestID]
	if !ok {
		return fmt.Errorf("daemon %s: unknown test %q", s.d.name, args.TestID)
	}
	if run.state != StatePreparing {
		return fmt.Errorf("daemon %s: test %q already started", s.d.name, args.TestID)
	}
	run.state = StateRunning
	close(run.startCh)
	return nil
}

// StatusArgs queries a test's state.
type StatusArgs struct {
	TestID string
}

// StatusReply reports a test's state.
type StatusReply struct {
	State string
	Err   string
}

// Status reports the state of a test.
func (s *service) Status(args StatusArgs, reply *StatusReply) error {
	s.d.mu.Lock()
	defer s.d.mu.Unlock()
	run, ok := s.d.runs[args.TestID]
	if !ok {
		return fmt.Errorf("daemon %s: unknown test %q", s.d.name, args.TestID)
	}
	reply.State = run.state
	reply.Err = run.err
	return nil
}

// CollectArgs retrieves a finished test's log.
type CollectArgs struct {
	TestID string
}

// CollectReply carries the collected events.
type CollectReply struct {
	Events []trace.Event
}

// Collect returns a completed test's events and forgets the test, as
// the paper's daemons return logs to the prince after completion.
func (s *service) Collect(args CollectArgs, reply *CollectReply) error {
	s.d.mu.Lock()
	defer s.d.mu.Unlock()
	run, ok := s.d.runs[args.TestID]
	if !ok {
		return fmt.Errorf("daemon %s: unknown test %q", s.d.name, args.TestID)
	}
	if run.state != StateDone && run.state != StateFailed {
		return fmt.Errorf("daemon %s: test %q is %s", s.d.name, args.TestID, run.state)
	}
	if run.state == StateFailed {
		return errors.New(run.err)
	}
	reply.Events = run.events
	delete(s.d.runs, args.TestID)
	return nil
}

// MetricsArgs is the Metrics request.
type MetricsArgs struct{}

// MetricsReply carries a counters/gauges snapshot of the daemon's
// registry (histograms stay local; they are served over the daemon's
// HTTP introspection endpoint instead).
type MetricsReply struct {
	Counters map[string]int64
	Gauges   map[string]int64
}

// Metrics returns a snapshot of the daemon's instruments, so the
// prince can report live progress while distributed tests run.
func (s *service) Metrics(_ MetricsArgs, reply *MetricsReply) error {
	snap := s.d.reg.Snapshot()
	reply.Counters = snap.Counters
	reply.Gauges = snap.Gauges
	return nil
}
