package daemon

import (
	"strings"
	"testing"
	"time"

	"jmsharness/internal/broker"
	"jmsharness/internal/clock"
	"jmsharness/internal/core"
	"jmsharness/internal/harness"
	"jmsharness/internal/jms"
	"jmsharness/internal/model"
	"jmsharness/internal/wire"
)

// cluster is a full Figure-4 deployment on loopback: a broker behind a
// wire server, n test daemons, and a prince.
type cluster struct {
	broker *broker.Broker
	server *wire.Server
	prince *Prince
}

func startCluster(t *testing.T, daemons int) *cluster {
	t.Helper()
	b, err := broker.New(broker.Options{Name: "clustered"})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := wire.NewServer(b, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	addrs := make([]string, 0, daemons)
	for i := 0; i < daemons; i++ {
		d := NewDaemon(
			"daemon-"+string(rune('A'+i)),
			wire.NewFactory(srv.Addr()),
			nil,
		)
		addr, err := d.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = d.Close() })
		addrs = append(addrs, addr)
	}
	prince, err := NewPrince(addrs, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		prince.Close()
		_ = srv.Close()
		_ = b.Close()
	})
	return &cluster{broker: b, server: srv, prince: prince}
}

func TestPingAndNames(t *testing.T) {
	c := startCluster(t, 2)
	ds := c.prince.Daemons()
	if len(ds) != 2 {
		t.Fatalf("%d daemons", len(ds))
	}
	if ds[0].Name() != "daemon-A" || ds[1].Name() != "daemon-B" {
		t.Errorf("names = %s, %s", ds[0].Name(), ds[1].Name())
	}
}

func TestSyncClocks(t *testing.T) {
	c := startCluster(t, 1)
	if err := c.prince.SyncClocks(4); err != nil {
		t.Fatal(err)
	}
	// Same machine: offset should be tiny.
	if off := c.prince.Daemons()[0].Offset(); off > 50*time.Millisecond || off < -50*time.Millisecond {
		t.Errorf("loopback offset = %v", off)
	}
}

func TestSyncClocksDetectsSkew(t *testing.T) {
	// A daemon on a skewed clock must be detected so its trace
	// timestamps can be corrected.
	b, err := broker.New(broker.Options{Name: "skewb"})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	skewed := clock.NewSkewed(clock.Real(), 3*time.Second, 0)
	d := NewDaemon("skewed", b, skewed)
	addr, err := d.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	p, err := NewPrince([]string{addr}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := p.SyncClocks(8); err != nil {
		t.Fatal(err)
	}
	off := p.Daemons()[0].Offset()
	if off < 2900*time.Millisecond || off > 3100*time.Millisecond {
		t.Errorf("estimated offset = %v, want ~3s", off)
	}
}

func TestSplitConfig(t *testing.T) {
	cfg := harness.Config{
		Name:        "split",
		Destination: jms.Queue("q"),
		Run:         time.Second,
		Producers: []harness.ProducerConfig{
			{ID: "p1", Rate: 1}, {ID: "p2", Rate: 1}, {ID: "p3", Rate: 1},
		},
		Consumers: []harness.ConsumerConfig{{ID: "c1"}, {ID: "c2"}},
	}
	parts := SplitConfig(cfg, 2)
	if len(parts) != 2 {
		t.Fatalf("%d parts", len(parts))
	}
	if len(parts[0].Producers) != 2 || len(parts[1].Producers) != 1 {
		t.Errorf("producer split = %d/%d", len(parts[0].Producers), len(parts[1].Producers))
	}
	if len(parts[0].Consumers) != 1 || len(parts[1].Consumers) != 1 {
		t.Errorf("consumer split = %d/%d", len(parts[0].Consumers), len(parts[1].Consumers))
	}
	if parts[0].Name == parts[1].Name {
		t.Error("part names must differ")
	}
	single := SplitConfig(cfg, 1)
	if len(single) != 1 || len(single[0].Producers) != 3 {
		t.Error("n=1 should be identity")
	}
	// More parts than workers: empties dropped.
	many := SplitConfig(cfg, 10)
	if len(many) > 5 {
		t.Errorf("%d non-empty parts from 5 workers", len(many))
	}
}

// TestDistributedEndToEnd is the full Figure-4 integration test:
// producers on daemon A, consumers on daemon B, one shared provider
// behind the wire protocol, coordinated by the prince; the merged trace
// must satisfy the formal model.
func TestDistributedEndToEnd(t *testing.T) {
	c := startCluster(t, 2)
	if err := c.prince.SyncClocks(4); err != nil {
		t.Fatal(err)
	}
	cfg := harness.Config{
		Name:        "dist",
		Destination: jms.Queue("distq"),
		Producers: []harness.ProducerConfig{
			{ID: "p1", Rate: 150, BodySize: 64},
			{ID: "p2", Rate: 150, BodySize: 64},
		},
		Consumers: []harness.ConsumerConfig{{ID: "c1"}, {ID: "c2"}},
		Warmup:    20 * time.Millisecond,
		Run:       250 * time.Millisecond,
		Warmdown:  400 * time.Millisecond,
	}
	res, err := c.prince.RunAndAnalyze(cfg, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("distributed run failed conformance:\n%s", res)
	}
	if res.Stats.Nodes != 2 {
		t.Errorf("merged trace has %d nodes, want 2", res.Stats.Nodes)
	}
	if res.Performance.Consumer.Count == 0 {
		t.Error("nothing delivered")
	}
	// The prince stored the merged trace.
	if c.prince.DB().Count("dist") == 0 {
		t.Error("results store empty")
	}
}

func TestDistributedFailureReported(t *testing.T) {
	c := startCluster(t, 1)
	// An invalid part must be rejected at Prepare time.
	bad := harness.Config{Name: "bad"}
	_, err := c.prince.RunDistributed("bad", []Assignment{{Daemon: 0, Config: bad}})
	if err == nil || !strings.Contains(err.Error(), "preparing") {
		t.Errorf("err = %v", err)
	}
	// Unknown daemon index.
	if _, err := c.prince.RunDistributed("x", []Assignment{{Daemon: 9}}); err == nil {
		t.Error("unknown daemon accepted")
	}
	// No assignments.
	if _, err := c.prince.RunDistributed("x", nil); err == nil {
		t.Error("empty assignment list accepted")
	}
}

func TestDaemonRPCLifecycleErrors(t *testing.T) {
	c := startCluster(t, 1)
	client := c.prince.Daemons()[0]
	// Start before prepare.
	err := client.rpc.Call("Daemon.Start", StartArgs{TestID: "ghost"}, &StartReply{})
	if err == nil {
		t.Error("start of unknown test accepted")
	}
	// Status of unknown test.
	if err := client.rpc.Call("Daemon.Status", StatusArgs{TestID: "ghost"}, &StatusReply{}); err == nil {
		t.Error("status of unknown test accepted")
	}
	// Collect before done.
	cfg := harness.Config{
		Name:        "pending",
		Destination: jms.Queue("q"),
		Producers:   []harness.ProducerConfig{{ID: "p", Rate: 10}},
		Run:         100 * time.Millisecond,
	}
	if err := client.rpc.Call("Daemon.Prepare", PrepareArgs{TestID: "t1", Config: cfg}, &PrepareReply{}); err != nil {
		t.Fatal(err)
	}
	if err := client.rpc.Call("Daemon.Collect", CollectArgs{TestID: "t1"}, &CollectReply{}); err == nil {
		t.Error("collect of unstarted test accepted")
	}
	// Double prepare.
	if err := client.rpc.Call("Daemon.Prepare", PrepareArgs{TestID: "t1", Config: cfg}, &PrepareReply{}); err == nil {
		t.Error("double prepare accepted")
	}
	// Run it to completion so goroutines finish.
	if err := client.rpc.Call("Daemon.Start", StartArgs{TestID: "t1"}, &StartReply{}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		var status StatusReply
		if err := client.rpc.Call("Daemon.Status", StatusArgs{TestID: "t1"}, &status); err != nil {
			t.Fatal(err)
		}
		if status.State == StateDone || status.State == StateFailed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("test never finished")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Double start after completion.
	if err := client.rpc.Call("Daemon.Start", StartArgs{TestID: "t1"}, &StartReply{}); err == nil {
		t.Error("double start accepted")
	}
}

func TestPrinceRequiresDaemons(t *testing.T) {
	if _, err := NewPrince(nil, nil, nil); err == nil {
		t.Error("prince with no daemons accepted")
	}
	if _, err := NewPrince([]string{"127.0.0.1:1"}, nil, nil); err == nil {
		t.Error("unreachable daemon accepted")
	}
}

func TestModelOnDistributedTrace(t *testing.T) {
	// Split pub/sub across daemons: publisher on A, durable subscriber
	// on B.
	c := startCluster(t, 2)
	if err := c.prince.SyncClocks(4); err != nil {
		t.Fatal(err)
	}
	cfg := harness.Config{
		Name:        "dist-pubsub",
		Destination: jms.Topic("distt"),
		Producers:   []harness.ProducerConfig{{ID: "pub", Rate: 200, BodySize: 32}},
		Consumers: []harness.ConsumerConfig{
			{ID: "sub", Durable: true, SubName: "ds", ClientID: "dc"},
		},
		Warmup:   20 * time.Millisecond,
		Run:      200 * time.Millisecond,
		Warmdown: 400 * time.Millisecond,
	}
	parts := SplitConfig(cfg, 2)
	assignments := make([]Assignment, len(parts))
	for i, part := range parts {
		assignments[i] = Assignment{Daemon: i, Config: part}
	}
	tr, err := c.prince.RunDistributed("dist-pubsub", assignments)
	if err != nil {
		t.Fatal(err)
	}
	report, err := model.Check(tr, model.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() {
		t.Fatalf("distributed pub/sub failed:\n%s", report)
	}
}
