package daemon

import (
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"jmsharness/internal/broker"
	"jmsharness/internal/chaos"
	"jmsharness/internal/core"
	"jmsharness/internal/harness"
	"jmsharness/internal/jms"
	"jmsharness/internal/wire"
)

// TestDialDaemonTimeoutStalledListener dials a listener that accepts
// and then says nothing: the dial must fail with ErrDeadline within the
// timeout instead of hanging on the initial ping.
func TestDialDaemonTimeoutStalledListener(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			sock, err := ln.Accept()
			if err != nil {
				return
			}
			defer sock.Close() // hold open, never speak RPC
		}
	}()
	start := time.Now()
	_, err = DialDaemonTimeout(ln.Addr().String(), 200*time.Millisecond)
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("dial of stalled listener: got %v, want ErrDeadline", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("dial took %v", elapsed)
	}
}

// TestKilledDaemonFailsRunWithAttribution kills one daemon of a
// two-daemon cluster mid-run: RunDistributed must fail promptly with an
// error naming the dead daemon, not hang waiting on it.
func TestKilledDaemonFailsRunWithAttribution(t *testing.T) {
	b, err := broker.New(broker.Options{Name: "doomed-cluster"})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := wire.NewServer(b, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	t.Cleanup(func() {
		_ = srv.Close()
		_ = b.Close()
	})
	daemons := make([]*Daemon, 2)
	addrs := make([]string, 2)
	for i := range daemons {
		d := NewDaemon("daemon-"+string(rune('A'+i)), wire.NewFactory(srv.Addr()), nil)
		addr, err := d.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = d.Close() })
		daemons[i] = d
		addrs[i] = addr
	}
	prince, err := NewPrince(addrs, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(prince.Close)
	prince.HeartbeatEvery = 50 * time.Millisecond
	prince.HeartbeatMisses = 2

	cfg := harness.Config{
		Name:        "doomed",
		Destination: jms.Queue("doomedq"),
		Producers:   []harness.ProducerConfig{{ID: "p1", Rate: 50, BodySize: 32}, {ID: "p2", Rate: 50, BodySize: 32}},
		Consumers:   []harness.ConsumerConfig{{ID: "c1"}, {ID: "c2"}},
		Run:         10 * time.Second, // far longer than the kill delay
	}
	go func() {
		time.Sleep(200 * time.Millisecond)
		_ = daemons[1].Close()
	}()
	start := time.Now()
	_, err = prince.RunAndAnalyze(cfg, core.DefaultOptions())
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("run with a killed daemon reported success")
	}
	if !strings.Contains(err.Error(), "daemon-B") {
		t.Fatalf("error does not name the dead daemon: %v", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("death detected only after %v: %v", elapsed, err)
	}
}

// TestWedgedDaemonHeartbeatDeclaresDeath black-holes the prince→daemon
// link mid-run with a chaos partition: the daemon process is alive but
// unreachable, so only the heartbeat can notice. The run must fail with
// ErrDaemonDown naming the daemon, well before the per-call deadline.
func TestWedgedDaemonHeartbeatDeclaresDeath(t *testing.T) {
	b, err := broker.New(broker.Options{Name: "wedged-cluster"})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := wire.NewServer(b, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	t.Cleanup(func() {
		_ = srv.Close()
		_ = b.Close()
	})
	d := NewDaemon("daemon-W", wire.NewFactory(srv.Addr()), nil)
	addr, err := d.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = d.Close() })
	proxy, err := chaos.New(chaos.Options{Target: addr})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = proxy.Close() })

	prince, err := NewPrince([]string{proxy.Addr()}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(prince.Close)
	prince.HeartbeatEvery = 50 * time.Millisecond
	prince.HeartbeatMisses = 3

	cfg := harness.Config{
		Name:        "wedged",
		Destination: jms.Queue("wedgedq"),
		Producers:   []harness.ProducerConfig{{ID: "p1", Rate: 50, BodySize: 32}},
		Consumers:   []harness.ConsumerConfig{{ID: "c1"}},
		Run:         10 * time.Second,
	}
	go func() {
		time.Sleep(200 * time.Millisecond)
		proxy.Partition(chaos.Both)
	}()
	start := time.Now()
	_, err = prince.RunAndAnalyze(cfg, core.DefaultOptions())
	elapsed := time.Since(start)
	if !errors.Is(err, ErrDaemonDown) {
		t.Fatalf("run through a black-holed link: got %v, want ErrDaemonDown", err)
	}
	if !strings.Contains(err.Error(), "daemon-W") {
		t.Fatalf("error does not name the wedged daemon: %v", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("death detected only after %v", elapsed)
	}
}
