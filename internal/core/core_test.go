package core

import (
	"strings"
	"testing"
	"time"

	"jmsharness/internal/broker"
	"jmsharness/internal/faults"
	"jmsharness/internal/harness"
	"jmsharness/internal/jms"
	"jmsharness/internal/model"
)

func testConfig(name string) harness.Config {
	return harness.Config{
		Name:        name,
		Destination: jms.Queue("coreq-" + name),
		Producers:   []harness.ProducerConfig{{ID: "p1", Rate: 300, BodySize: 32}},
		Consumers:   []harness.ConsumerConfig{{ID: "c1"}},
		Warmup:      10 * time.Millisecond,
		Run:         150 * time.Millisecond,
		Warmdown:    100 * time.Millisecond,
	}
}

func newBroker(t *testing.T) *broker.Broker {
	t.Helper()
	b, err := broker.New(broker.Options{Name: "core"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = b.Close() })
	return b
}

func TestRunAndAnalyzeCleanProvider(t *testing.T) {
	b := newBroker(t)
	res, err := RunAndAnalyze(b, testConfig("clean"), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("clean provider failed:\n%s", res)
	}
	if res.Performance.Consumer.Count == 0 {
		t.Error("no throughput measured")
	}
	out := res.String()
	for _, want := range []string{"conformance", "performance", "delivery-integrity", "msgs/s"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestRunAndAnalyzeFlagsFaultyProvider(t *testing.T) {
	b := newBroker(t)
	res, err := RunAndAnalyze(faults.NewDropper(b, 3), testConfig("faulty"), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() {
		t.Error("dropper passed conformance")
	}
	if r, ok := res.Conformance.Result(model.PropRequiredMessages); !ok || len(r.Violations) == 0 {
		t.Error("required-messages not flagged")
	}
}

func TestRunSuite(t *testing.T) {
	b := newBroker(t)
	cfgs := []harness.Config{testConfig("s1"), testConfig("s2")}
	results, err := RunSuite(b, cfgs, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results", len(results))
	}
	for _, r := range results {
		if !r.OK() {
			t.Errorf("test %s failed:\n%s", r.Test, r)
		}
	}
}

func TestRunSuiteAbortsOnRunError(t *testing.T) {
	b := newBroker(t)
	bad := testConfig("bad")
	bad.Producers = nil
	bad.Consumers = nil
	results, err := RunSuite(b, []harness.Config{testConfig("ok"), bad}, DefaultOptions())
	if err == nil {
		t.Error("invalid config should abort the suite")
	}
	if len(results) != 1 {
		t.Errorf("partial results = %d, want 1", len(results))
	}
}

func TestAnalyzeRejectsBrokenTrace(t *testing.T) {
	if _, err := RunAndAnalyze(newBroker(t), harness.Config{Name: "x"}, DefaultOptions()); err == nil {
		t.Error("invalid config accepted")
	}
}
